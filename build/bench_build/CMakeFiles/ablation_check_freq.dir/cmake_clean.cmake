file(REMOVE_RECURSE
  "../bench/ablation_check_freq"
  "../bench/ablation_check_freq.pdb"
  "CMakeFiles/ablation_check_freq.dir/ablation_check_freq.cpp.o"
  "CMakeFiles/ablation_check_freq.dir/ablation_check_freq.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_check_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

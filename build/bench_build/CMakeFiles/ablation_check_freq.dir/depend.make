# Empty dependencies file for ablation_check_freq.
# This may be replaced when dependencies are built.

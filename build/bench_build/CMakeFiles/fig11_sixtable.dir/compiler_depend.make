# Empty compiler generated dependencies file for fig11_sixtable.
# This may be replaced when dependencies are built.

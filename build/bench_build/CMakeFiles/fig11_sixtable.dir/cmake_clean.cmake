file(REMOVE_RECURSE
  "../bench/fig11_sixtable"
  "../bench/fig11_sixtable.pdb"
  "CMakeFiles/fig11_sixtable.dir/fig11_sixtable.cpp.o"
  "CMakeFiles/fig11_sixtable.dir/fig11_sixtable.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sixtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

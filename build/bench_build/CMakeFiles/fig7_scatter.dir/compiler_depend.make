# Empty compiler generated dependencies file for fig7_scatter.
# This may be replaced when dependencies are built.

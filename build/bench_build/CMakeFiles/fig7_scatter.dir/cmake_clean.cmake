file(REMOVE_RECURSE
  "../bench/fig7_scatter"
  "../bench/fig7_scatter.pdb"
  "CMakeFiles/fig7_scatter.dir/fig7_scatter.cpp.o"
  "CMakeFiles/fig7_scatter.dir/fig7_scatter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/inspect_query"
  "../bench/inspect_query.pdb"
  "CMakeFiles/inspect_query.dir/inspect_query.cpp.o"
  "CMakeFiles/inspect_query.dir/inspect_query.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

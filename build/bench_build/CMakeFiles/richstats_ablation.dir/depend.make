# Empty dependencies file for richstats_ablation.
# This may be replaced when dependencies are built.

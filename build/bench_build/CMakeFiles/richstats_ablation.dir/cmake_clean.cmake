file(REMOVE_RECURSE
  "../bench/richstats_ablation"
  "../bench/richstats_ablation.pdb"
  "CMakeFiles/richstats_ablation.dir/richstats_ablation.cpp.o"
  "CMakeFiles/richstats_ablation.dir/richstats_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/richstats_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

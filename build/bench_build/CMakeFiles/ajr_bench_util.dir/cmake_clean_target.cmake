file(REMOVE_RECURSE
  "libajr_bench_util.a"
)

# Empty dependencies file for ajr_bench_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ajr_bench_util.dir/harness_util.cc.o"
  "CMakeFiles/ajr_bench_util.dir/harness_util.cc.o.d"
  "libajr_bench_util.a"
  "libajr_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajr_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/fig9_driving"
  "../bench/fig9_driving.pdb"
  "CMakeFiles/fig9_driving.dir/fig9_driving.cpp.o"
  "CMakeFiles/fig9_driving.dir/fig9_driving.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_driving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

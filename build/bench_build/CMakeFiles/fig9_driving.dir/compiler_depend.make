# Empty compiler generated dependencies file for fig9_driving.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig10_window"
  "../bench/fig10_window.pdb"
  "CMakeFiles/fig10_window.dir/fig10_window.cpp.o"
  "CMakeFiles/fig10_window.dir/fig10_window.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/table1_dataset"
  "../bench/table1_dataset.pdb"
  "CMakeFiles/table1_dataset.dir/table1_dataset.cpp.o"
  "CMakeFiles/table1_dataset.dir/table1_dataset.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig8_inner.
# This may be replaced when dependencies are built.

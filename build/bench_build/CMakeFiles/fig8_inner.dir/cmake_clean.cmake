file(REMOVE_RECURSE
  "../bench/fig8_inner"
  "../bench/fig8_inner.pdb"
  "CMakeFiles/fig8_inner.dir/fig8_inner.cpp.o"
  "CMakeFiles/fig8_inner.dir/fig8_inner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_inner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libajr_workload.a"
)

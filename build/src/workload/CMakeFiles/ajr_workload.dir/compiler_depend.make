# Empty compiler generated dependencies file for ajr_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ajr_workload.dir/dmv.cc.o"
  "CMakeFiles/ajr_workload.dir/dmv.cc.o.d"
  "CMakeFiles/ajr_workload.dir/templates.cc.o"
  "CMakeFiles/ajr_workload.dir/templates.cc.o.d"
  "libajr_workload.a"
  "libajr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ajr_storage.dir/bplus_tree.cc.o"
  "CMakeFiles/ajr_storage.dir/bplus_tree.cc.o.d"
  "CMakeFiles/ajr_storage.dir/cursors.cc.o"
  "CMakeFiles/ajr_storage.dir/cursors.cc.o.d"
  "CMakeFiles/ajr_storage.dir/heap_table.cc.o"
  "CMakeFiles/ajr_storage.dir/heap_table.cc.o.d"
  "libajr_storage.a"
  "libajr_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajr_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bplus_tree.cc" "src/storage/CMakeFiles/ajr_storage.dir/bplus_tree.cc.o" "gcc" "src/storage/CMakeFiles/ajr_storage.dir/bplus_tree.cc.o.d"
  "/root/repo/src/storage/cursors.cc" "src/storage/CMakeFiles/ajr_storage.dir/cursors.cc.o" "gcc" "src/storage/CMakeFiles/ajr_storage.dir/cursors.cc.o.d"
  "/root/repo/src/storage/heap_table.cc" "src/storage/CMakeFiles/ajr_storage.dir/heap_table.cc.o" "gcc" "src/storage/CMakeFiles/ajr_storage.dir/heap_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/types/CMakeFiles/ajr_types.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/ajr_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ajr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

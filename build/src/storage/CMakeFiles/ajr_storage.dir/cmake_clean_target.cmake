file(REMOVE_RECURSE
  "libajr_storage.a"
)

# Empty dependencies file for ajr_storage.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ajr_expr.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ajr_expr.dir/evaluator.cc.o"
  "CMakeFiles/ajr_expr.dir/evaluator.cc.o.d"
  "CMakeFiles/ajr_expr.dir/expr.cc.o"
  "CMakeFiles/ajr_expr.dir/expr.cc.o.d"
  "CMakeFiles/ajr_expr.dir/range_extraction.cc.o"
  "CMakeFiles/ajr_expr.dir/range_extraction.cc.o.d"
  "libajr_expr.a"
  "libajr_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajr_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libajr_expr.a"
)

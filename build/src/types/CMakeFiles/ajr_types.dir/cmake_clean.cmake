file(REMOVE_RECURSE
  "CMakeFiles/ajr_types.dir/schema.cc.o"
  "CMakeFiles/ajr_types.dir/schema.cc.o.d"
  "CMakeFiles/ajr_types.dir/value.cc.o"
  "CMakeFiles/ajr_types.dir/value.cc.o.d"
  "libajr_types.a"
  "libajr_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajr_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

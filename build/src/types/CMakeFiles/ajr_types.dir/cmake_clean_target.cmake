file(REMOVE_RECURSE
  "libajr_types.a"
)

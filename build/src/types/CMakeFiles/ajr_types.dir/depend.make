# Empty dependencies file for ajr_types.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libajr_common.a"
)

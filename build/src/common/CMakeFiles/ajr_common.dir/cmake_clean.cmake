file(REMOVE_RECURSE
  "CMakeFiles/ajr_common.dir/random.cc.o"
  "CMakeFiles/ajr_common.dir/random.cc.o.d"
  "CMakeFiles/ajr_common.dir/status.cc.o"
  "CMakeFiles/ajr_common.dir/status.cc.o.d"
  "CMakeFiles/ajr_common.dir/string_util.cc.o"
  "CMakeFiles/ajr_common.dir/string_util.cc.o.d"
  "libajr_common.a"
  "libajr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

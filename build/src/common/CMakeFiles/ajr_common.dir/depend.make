# Empty dependencies file for ajr_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ajr_adaptive.dir/controller.cc.o"
  "CMakeFiles/ajr_adaptive.dir/controller.cc.o.d"
  "CMakeFiles/ajr_adaptive.dir/monitor.cc.o"
  "CMakeFiles/ajr_adaptive.dir/monitor.cc.o.d"
  "libajr_adaptive.a"
  "libajr_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajr_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

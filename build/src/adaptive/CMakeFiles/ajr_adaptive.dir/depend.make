# Empty dependencies file for ajr_adaptive.
# This may be replaced when dependencies are built.

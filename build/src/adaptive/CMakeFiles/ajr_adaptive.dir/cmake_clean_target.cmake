file(REMOVE_RECURSE
  "libajr_adaptive.a"
)

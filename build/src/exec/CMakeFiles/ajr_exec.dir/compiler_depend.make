# Empty compiler generated dependencies file for ajr_exec.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ajr_exec.dir/pipeline_executor.cc.o"
  "CMakeFiles/ajr_exec.dir/pipeline_executor.cc.o.d"
  "CMakeFiles/ajr_exec.dir/reference_executor.cc.o"
  "CMakeFiles/ajr_exec.dir/reference_executor.cc.o.d"
  "libajr_exec.a"
  "libajr_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajr_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libajr_exec.a"
)

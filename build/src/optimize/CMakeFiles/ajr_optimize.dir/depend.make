# Empty dependencies file for ajr_optimize.
# This may be replaced when dependencies are built.

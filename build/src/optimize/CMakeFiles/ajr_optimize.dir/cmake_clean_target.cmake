file(REMOVE_RECURSE
  "libajr_optimize.a"
)

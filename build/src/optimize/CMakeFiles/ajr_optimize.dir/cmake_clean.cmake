file(REMOVE_RECURSE
  "CMakeFiles/ajr_optimize.dir/cost_model.cc.o"
  "CMakeFiles/ajr_optimize.dir/cost_model.cc.o.d"
  "CMakeFiles/ajr_optimize.dir/planner.cc.o"
  "CMakeFiles/ajr_optimize.dir/planner.cc.o.d"
  "CMakeFiles/ajr_optimize.dir/query.cc.o"
  "CMakeFiles/ajr_optimize.dir/query.cc.o.d"
  "CMakeFiles/ajr_optimize.dir/selectivity.cc.o"
  "CMakeFiles/ajr_optimize.dir/selectivity.cc.o.d"
  "libajr_optimize.a"
  "libajr_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajr_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ajr_catalog.
# This may be replaced when dependencies are built.

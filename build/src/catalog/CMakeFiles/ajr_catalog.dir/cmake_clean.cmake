file(REMOVE_RECURSE
  "CMakeFiles/ajr_catalog.dir/catalog.cc.o"
  "CMakeFiles/ajr_catalog.dir/catalog.cc.o.d"
  "libajr_catalog.a"
  "libajr_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajr_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libajr_catalog.a"
)

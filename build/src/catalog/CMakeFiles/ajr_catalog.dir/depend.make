# Empty dependencies file for ajr_catalog.
# This may be replaced when dependencies are built.

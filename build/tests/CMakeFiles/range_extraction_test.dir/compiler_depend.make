# Empty compiler generated dependencies file for range_extraction_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/range_extraction_test.dir/expr/range_extraction_test.cc.o"
  "CMakeFiles/range_extraction_test.dir/expr/range_extraction_test.cc.o.d"
  "range_extraction_test"
  "range_extraction_test.pdb"
  "range_extraction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_extraction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

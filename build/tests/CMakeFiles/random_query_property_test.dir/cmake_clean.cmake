file(REMOVE_RECURSE
  "CMakeFiles/random_query_property_test.dir/exec/random_query_property_test.cc.o"
  "CMakeFiles/random_query_property_test.dir/exec/random_query_property_test.cc.o.d"
  "random_query_property_test"
  "random_query_property_test.pdb"
  "random_query_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_query_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/adaptive_behavior_test.dir/exec/adaptive_behavior_test.cc.o"
  "CMakeFiles/adaptive_behavior_test.dir/exec/adaptive_behavior_test.cc.o.d"
  "adaptive_behavior_test"
  "adaptive_behavior_test.pdb"
  "adaptive_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/dmv_test.dir/workload/dmv_test.cc.o"
  "CMakeFiles/dmv_test.dir/workload/dmv_test.cc.o.d"
  "dmv_test"
  "dmv_test.pdb"
  "dmv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

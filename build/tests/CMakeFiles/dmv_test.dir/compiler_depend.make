# Empty compiler generated dependencies file for dmv_test.
# This may be replaced when dependencies are built.

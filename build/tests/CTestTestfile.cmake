# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/range_extraction_test[1]_include.cmake")
include("/root/repo/build/tests/heap_table_test[1]_include.cmake")
include("/root/repo/build/tests/bplus_tree_test[1]_include.cmake")
include("/root/repo/build/tests/cursors_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/selectivity_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/dmv_test[1]_include.cmake")
include("/root/repo/build/tests/templates_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_executor_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/random_query_property_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/streaming_skew.dir/streaming_skew.cpp.o"
  "CMakeFiles/streaming_skew.dir/streaming_skew.cpp.o.d"
  "streaming_skew"
  "streaming_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/streaming_skew.cpp" "examples/CMakeFiles/streaming_skew.dir/streaming_skew.cpp.o" "gcc" "examples/CMakeFiles/streaming_skew.dir/streaming_skew.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/ajr_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/adaptive/CMakeFiles/ajr_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ajr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/optimize/CMakeFiles/ajr_optimize.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/ajr_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ajr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/ajr_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/ajr_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ajr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for streaming_skew.
# This may be replaced when dependencies are built.

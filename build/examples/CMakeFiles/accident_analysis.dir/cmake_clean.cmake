file(REMOVE_RECURSE
  "CMakeFiles/accident_analysis.dir/accident_analysis.cpp.o"
  "CMakeFiles/accident_analysis.dir/accident_analysis.cpp.o.d"
  "accident_analysis"
  "accident_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accident_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

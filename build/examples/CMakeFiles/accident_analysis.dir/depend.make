# Empty dependencies file for accident_analysis.
# This may be replaced when dependencies are built.

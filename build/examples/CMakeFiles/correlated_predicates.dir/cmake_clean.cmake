file(REMOVE_RECURSE
  "CMakeFiles/correlated_predicates.dir/correlated_predicates.cpp.o"
  "CMakeFiles/correlated_predicates.dir/correlated_predicates.cpp.o.d"
  "correlated_predicates"
  "correlated_predicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlated_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

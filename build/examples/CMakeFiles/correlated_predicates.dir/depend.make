# Empty dependencies file for correlated_predicates.
# This may be replaced when dependencies are built.

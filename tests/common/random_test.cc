#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>

namespace ajr {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextUint64InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, NextInt64Inclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt64(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng a(5), b(5);
  Rng fa = a.Fork(1), fb = b.Fork(1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(fa.Next64(), fb.Next64());
  }
  Rng c(5);
  Rng fc = c.Fork(2);
  Rng d(5);
  Rng fd = d.Fork(1);
  EXPECT_NE(fc.Next64(), fd.Next64());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(21);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be equal
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, UniformWhenExponentZero) {
  ZipfDistribution z(10, 0.0);
  for (size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(z.Pmf(k), 0.1, 1e-12);
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution z(1000, 1.1);
  double sum = 0;
  for (size_t k = 0; k < z.n(); ++k) sum += z.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, SkewFavorsHead) {
  ZipfDistribution z(100, 1.0);
  Rng rng(31);
  std::map<size_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[z.Sample(&rng)]++;
  // Head item should receive close to its PMF share.
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, z.Pmf(0), 0.01);
  EXPECT_GT(counts[0], counts[50] * 10);
}

TEST(ZipfTest, SampleWithinDomain) {
  ZipfDistribution z(5, 2.0);
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(z.Sample(&rng), 5u);
  }
}

class ZipfExponentSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentSweep, HeadProbabilityMonotoneInExponent) {
  double s = GetParam();
  ZipfDistribution lo(50, s);
  ZipfDistribution hi(50, s + 0.5);
  EXPECT_LT(lo.Pmf(0), hi.Pmf(0));
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentSweep,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5, 2.0));

}  // namespace
}  // namespace ajr

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "exec/pipeline_executor.h"
#include "exec/probe_cache_shared.h"
#include "optimize/planner.h"
#include "runtime/parallel_executor.h"
#include "runtime/shared_scan.h"
#include "workload/dmv.h"
#include "workload/templates.h"

namespace ajr {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, BasicAccounting) {
  Histogram h;
  for (uint64_t v : {10u, 20u, 30u, 40u}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 100u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 40u);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
}

TEST(HistogramTest, QuantileWithinBucketError) {
  // Log2 octaves with 8 linear sub-buckets bound the relative quantile
  // error at 12.5%. Check against exact order statistics of 1..1000.
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  for (double q : {0.10, 0.50, 0.95, 0.99}) {
    double exact = q * 1000.0;
    double got = h.Quantile(q);
    EXPECT_NEAR(got, exact, exact * 0.125 + 1.0) << "q=" << q;
  }
}

TEST(HistogramTest, QuantilesClampedToObservedRange) {
  Histogram h;
  h.Record(100);
  h.Record(200);
  EXPECT_GE(h.Quantile(0.0), 100.0);
  EXPECT_LE(h.Quantile(1.0), 200.0);
}

TEST(HistogramTest, SingleSampleAllQuantilesEqual) {
  Histogram h;
  h.Record(777);
  EXPECT_DOUBLE_EQ(h.Quantile(0.01), 777.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.50), 777.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 777.0);
}

TEST(HistogramTest, HandlesExtremeSamples) {
  Histogram h;
  h.Record(0);
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), UINT64_MAX);
}

TEST(HistogramTest, Reset) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(MetricsRegistryTest, GetCounterReturnsStablePointer) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("engine.test");
  Counter* b = reg.GetCounter("engine.test");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(reg.GetCounter("engine.test")->value(), 3u);
}

TEST(MetricsRegistryTest, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.FindCounter("absent"), nullptr);
  EXPECT_EQ(reg.FindHistogram("absent"), nullptr);
  reg.GetCounter("present");
  reg.GetHistogram("present_h");
  EXPECT_NE(reg.FindCounter("present"), nullptr);
  EXPECT_NE(reg.FindHistogram("present_h"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotListsMetricsSortedByName) {
  MetricsRegistry reg;
  reg.GetCounter("b.second")->Add(2);
  reg.GetCounter("a.first")->Add(1);
  reg.GetHistogram("c.lat_us")->Record(100);
  std::string snap = reg.Snapshot();
  size_t pa = snap.find("a.first 1");
  size_t pb = snap.find("b.second 2");
  size_t pc = snap.find("c.lat_us count=1");
  ASSERT_NE(pa, std::string::npos) << snap;
  ASSERT_NE(pb, std::string::npos) << snap;
  ASSERT_NE(pc, std::string::npos) << snap;
  EXPECT_LT(pa, pb);
}

TEST(MetricsRegistryTest, ResetAllKeepsRegistrations) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("x");
  Histogram* h = reg.GetHistogram("y");
  c->Add(9);
  h->Record(9);
  reg.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.FindCounter("x"), c);  // registration survives
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(MetricsRegistryTest, ExecutorExportsProbeCounters) {
  // An executor handed a registry must flush its batched-probe stats into
  // the exec.probe_* counters; without set_metrics it must not touch the
  // global registry.
  Catalog catalog;
  DmvConfig config;
  config.num_owners = 500;
  ASSERT_TRUE(GenerateDmv(&catalog, config).ok());
  Planner planner(&catalog);
  auto plan = planner.Plan(DmvQueryGenerator::Example1());
  ASSERT_TRUE(plan.ok()) << plan.status();

  MetricsRegistry reg;
  PipelineExecutor exec(plan->get());
  exec.set_metrics(&reg);
  auto stats = exec.Execute(nullptr);
  ASSERT_TRUE(stats.ok()) << stats.status();

  for (const char* name :
       {"exec.probe_cache_hits", "exec.probe_cache_misses", "exec.probe_batches",
        "exec.probe_batch_keys", "exec.probe_descents_saved"}) {
    ASSERT_NE(reg.FindCounter(name), nullptr) << name;
  }
  EXPECT_EQ(reg.FindCounter("exec.probe_batches")->value(), stats->probe_batches);
  EXPECT_EQ(reg.FindCounter("exec.probe_batch_keys")->value(),
            stats->probe_batch_keys);
  EXPECT_EQ(reg.FindCounter("exec.probe_cache_hits")->value(),
            stats->probe_cache_hits);
  EXPECT_EQ(reg.FindCounter("exec.probe_cache_misses")->value(),
            stats->probe_cache_misses);
  EXPECT_EQ(reg.FindCounter("exec.probe_descents_saved")->value(),
            stats->probe_descents_saved);
  EXPECT_GT(stats->probe_batches, 0u);

  // A second executor accumulates into the same counters.
  auto plan2 = planner.Plan(DmvQueryGenerator::Example2());
  ASSERT_TRUE(plan2.ok());
  PipelineExecutor exec2(plan2->get());
  exec2.set_metrics(&reg);
  auto stats2 = exec2.Execute(nullptr);
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(reg.FindCounter("exec.probe_batches")->value(),
            stats->probe_batches + stats2->probe_batches);
}

TEST(MetricsRegistryTest, ExecutorExportsPolicyCounters) {
  // The executor flushes the AdaptationPolicy's decision accounting into
  // the exec.policy_* counters next to the probe flush: one counter per
  // PolicyStats field, each equal to the ExecStats copy of that field.
  Catalog catalog;
  DmvConfig config;
  config.num_owners = 500;
  ASSERT_TRUE(GenerateDmv(&catalog, config).ok());
  Planner planner(&catalog);
  auto plan = planner.Plan(DmvQueryGenerator::Example1());
  ASSERT_TRUE(plan.ok()) << plan.status();

  MetricsRegistry reg;
  PipelineExecutor exec(plan->get());
  exec.set_metrics(&reg);
  auto stats = exec.Execute(nullptr);
  ASSERT_TRUE(stats.ok()) << stats.status();

  for (const char* name :
       {"exec.policy_decisions", "exec.policy_reorders", "exec.policy_switches",
        "exec.policy_regret_x1000"}) {
    ASSERT_NE(reg.FindCounter(name), nullptr) << name;
  }
  EXPECT_EQ(reg.FindCounter("exec.policy_decisions")->value(),
            stats->policy_decisions);
  EXPECT_EQ(reg.FindCounter("exec.policy_reorders")->value(),
            stats->policy_reorders);
  EXPECT_EQ(reg.FindCounter("exec.policy_switches")->value(),
            stats->policy_switches);
  EXPECT_EQ(reg.FindCounter("exec.policy_regret_x1000")->value(),
            stats->policy_regret_x1000);
  // The default (rank) policy is consulted at every depleted-state check,
  // so a query that adapted must have recorded decisions.
  EXPECT_EQ(stats->policy_decisions,
            stats->inner_checks + stats->driving_checks);
  // Rank policy reports no regret: it never explores.
  EXPECT_EQ(stats->policy_regret_x1000, 0u);
}

TEST(MetricsRegistryTest, ParallelExecutorExportsSharingCounters) {
  // Two runs of one query against the same SharedScanRegistry and
  // SharedProbeCache: the warm run attaches to the retained pass (a full
  // physical pass saved) and hits the shared cache, and the executor must
  // flush both into the exec.shared_scan_* / exec.probe_cache_shared_*
  // counters, each equal to the cumulative ExecStats totals.
  Catalog catalog;
  DmvConfig config;
  config.num_owners = 500;
  ASSERT_TRUE(GenerateDmv(&catalog, config).ok());
  Planner planner(&catalog);
  auto plan = planner.Plan(DmvQueryGenerator::Example1());
  ASSERT_TRUE(plan.ok()) << plan.status();

  MetricsRegistry reg;
  SharedScanRegistry scan_registry;
  SharedProbeCache shared_cache;
  ParallelExecOptions popts;
  popts.dop = 1;
  popts.force_parallel = true;  // one worker: deterministic morsel order
  popts.morsel_size = 64;
  popts.scan_registry = &scan_registry;
  popts.shared_cache = &shared_cache;

  ExecStats total;
  for (int run = 0; run < 2; ++run) {
    ParallelPipelineExecutor exec(plan->get(), AdaptiveOptions{}, popts);
    exec.set_metrics(&reg);
    auto stats = exec.Execute(nullptr);
    ASSERT_TRUE(stats.ok()) << stats.status();
    total.shared_scan_attaches += stats->shared_scan_attaches;
    total.shared_scan_passes_saved += stats->shared_scan_passes_saved;
    total.probe_cache_shared_hits += stats->probe_cache_shared_hits;
    total.probe_cache_shared_misses += stats->probe_cache_shared_misses;
    total.probe_cache_shared_conflicts += stats->probe_cache_shared_conflicts;
  }

  for (const char* name :
       {"exec.shared_scan_attaches", "exec.shared_scan_passes_saved",
        "exec.shared_scan_morsels_produced", "exec.shared_scan_morsels_consumed",
        "exec.probe_cache_shared_hits", "exec.probe_cache_shared_misses",
        "exec.probe_cache_shared_stripe_conflicts"}) {
    ASSERT_NE(reg.FindCounter(name), nullptr) << name;
  }
  EXPECT_EQ(reg.FindCounter("exec.shared_scan_attaches")->value(),
            total.shared_scan_attaches);
  EXPECT_EQ(reg.FindCounter("exec.shared_scan_passes_saved")->value(),
            total.shared_scan_passes_saved);
  EXPECT_EQ(reg.FindCounter("exec.probe_cache_shared_hits")->value(),
            total.probe_cache_shared_hits);
  EXPECT_EQ(reg.FindCounter("exec.probe_cache_shared_misses")->value(),
            total.probe_cache_shared_misses);
  EXPECT_EQ(reg.FindCounter("exec.probe_cache_shared_stripe_conflicts")->value(),
            total.probe_cache_shared_conflicts);
  // The warm run re-attached (one attach per promoted leg of run 2) and
  // replayed the retained pass without a physical scan.
  EXPECT_GT(total.shared_scan_attaches, 0u);
  EXPECT_GT(total.shared_scan_passes_saved, 0u);
  EXPECT_GT(total.probe_cache_shared_hits, 0u);
  // Single-threaded runs must never see stripe-lock contention.
  EXPECT_EQ(total.probe_cache_shared_conflicts, 0u);
}

TEST(MetricsRegistryTest, ConcurrentGetAndRecord) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Racing create-on-first-use against recording through the result.
      Counter* c = reg.GetCounter("shared.counter");
      Histogram* h = reg.GetHistogram("shared.hist");
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c->Add();
        h->Record(i + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.FindCounter("shared.counter")->value(), kThreads * kPerThread);
  EXPECT_EQ(reg.FindHistogram("shared.hist")->count(), kThreads * kPerThread);
}

}  // namespace
}  // namespace ajr

#include "common/status.h"

#include <gtest/gtest.h>

namespace ajr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad column");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad column");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad column");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotSupported), "NotSupported");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> sor(42);
  ASSERT_TRUE(sor.ok());
  EXPECT_EQ(*sor, 42);
  EXPECT_EQ(sor.value_or(0), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> sor(Status::NotFound("nope"));
  ASSERT_FALSE(sor.ok());
  EXPECT_EQ(sor.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(sor.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> sor(std::make_unique<int>(7));
  ASSERT_TRUE(sor.ok());
  std::unique_ptr<int> v = std::move(sor).value();
  EXPECT_EQ(*v, 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  AJR_ASSIGN_OR_RETURN(int h, Half(x));
  AJR_RETURN_IF_ERROR(Status::OK());
  *out = h;
  return Status::OK();
}

TEST(StatusOrTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UseMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = UseMacros(3, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ajr

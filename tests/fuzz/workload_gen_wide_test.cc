// Audit of the generator's wide profile (GeneratorOptions::WideProfile)
// and of the n<=5 assumptions the fuzz stack grew up with: width coverage
// across 6..20 tables, the output-size cap that keeps the brute-force
// reference tractable at 20 legs, exactness of EstimateTreeJoinSize as an
// upper bound on real output, shrinker transforms at high table indices
// (edge renumbering past the old 5-table ceiling), determinism, and
// plannability of the widest specs.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "exec/reference_executor.h"
#include "optimize/planner.h"
#include "testing/workload_gen.h"

namespace ajr {
namespace {

using ajr::testing::DropEdge;
using ajr::testing::DropTable;
using ajr::testing::EstimateTreeJoinSize;
using ajr::testing::GeneratorOptions;
using ajr::testing::GenerateWorkload;
using ajr::testing::kMaxGeneratorTables;
using ajr::testing::WorkloadSpec;

TEST(WorkloadGenWideTest, WidthsCoverTheFullRange) {
  const GeneratorOptions wide = GeneratorOptions::WideProfile();
  std::set<size_t> seen;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    WorkloadSpec spec = GenerateWorkload(seed, wide);
    ASSERT_GE(spec.tables.size(), wide.min_tables) << "seed " << seed;
    ASSERT_LE(spec.tables.size(), kMaxGeneratorTables) << "seed " << seed;
    ASSERT_TRUE(spec.query.Validate().ok()) << "seed " << seed;
    seen.insert(spec.tables.size());
  }
  // 200 seeds must reach both ends of the axis, including genuinely wide
  // cases — the whole point of the profile.
  EXPECT_EQ(*seen.begin(), wide.min_tables);
  EXPECT_EQ(*seen.rbegin(), kMaxGeneratorTables);
  EXPECT_GE(seen.size(), 12u) << "width histogram has large holes";
}

TEST(WorkloadGenWideTest, OutputCapIsHonored) {
  const GeneratorOptions wide = GeneratorOptions::WideProfile();
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    WorkloadSpec spec = GenerateWorkload(seed, wide);
    const double est = EstimateTreeJoinSize(spec.tables, spec.query.edges);
    // The cap loop halves the largest table until the estimate fits; the
    // only escape is the degenerate floor where no table can shrink.
    size_t largest = 0;
    for (const auto& t : spec.tables) largest = std::max(largest, t.rows.size());
    EXPECT_TRUE(est <= wide.max_output_rows || largest <= 2)
        << "seed " << seed << ": est=" << est << " largest=" << largest;
  }
}

TEST(WorkloadGenWideTest, TreeEstimateBoundsRealOutput) {
  // EstimateTreeJoinSize is exact for the predicate-free spanning tree;
  // local predicates and extra (cyclic) edges only filter, so the real
  // result can never exceed it. A handful of seeds through the reference
  // executor checks the bound end to end.
  const GeneratorOptions wide = GeneratorOptions::WideProfile();
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    WorkloadSpec spec = GenerateWorkload(seed, wide);
    auto catalog = spec.Materialize();
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    auto rows = ExecuteReference(**catalog, spec.query);
    ASSERT_TRUE(rows.ok()) << "seed " << seed << ": " << rows.status();
    EXPECT_LE(static_cast<double>(rows->size()),
              EstimateTreeJoinSize(spec.tables, spec.query.edges))
        << "seed " << seed;
  }
}

TEST(WorkloadGenWideTest, ShrinkerTransformsSurviveHighTableIndices) {
  // Find a genuinely wide spec, then exercise the structural transforms at
  // indices far beyond the default profile's 5-table ceiling.
  const GeneratorOptions wide = GeneratorOptions::WideProfile();
  WorkloadSpec spec;
  uint64_t seed = 1;
  for (;; ++seed) {
    spec = GenerateWorkload(seed, wide);
    if (spec.tables.size() >= 14) break;
    ASSERT_LT(seed, 200u) << "no >=14-table spec in the first seeds";
  }
  const size_t n = spec.tables.size();

  // Dropping a high-index table renumbers edges and keeps the spec
  // materializable and valid.
  for (size_t t : {n - 1, n / 2}) {
    auto dropped = DropTable(spec, t);
    if (!dropped.has_value()) continue;  // drop may disconnect — that's legal
    ASSERT_EQ(dropped->tables.size(), n - 1);
    ASSERT_TRUE(dropped->query.Validate().ok()) << "dropping table " << t;
    for (const auto& e : dropped->query.edges) {
      EXPECT_LT(e.left, n - 1);
      EXPECT_LT(e.right, n - 1);
    }
    EXPECT_TRUE(dropped->Materialize().ok());
  }
  // At least one of the last two tables must be droppable in a tree-plus-
  // extra-edges topology (a leaf always is).
  EXPECT_TRUE(DropTable(spec, n - 1).has_value() ||
              DropTable(spec, n - 2).has_value());

  // Dropping a spanning-tree edge disconnects the graph unless an extra
  // edge covers it; DropEdge must refuse exactly the disconnecting drops.
  for (size_t e = 0; e < spec.query.edges.size(); ++e) {
    auto dropped = DropEdge(spec, e);
    if (!dropped.has_value()) continue;
    ASSERT_TRUE(dropped->query.Validate().ok()) << "dropping edge " << e;
    EXPECT_EQ(dropped->query.edges.size(), spec.query.edges.size() - 1);
  }
  // Extra (cyclic) edges beyond the spanning tree are always droppable.
  for (size_t e = n - 1; e < spec.query.edges.size(); ++e) {
    EXPECT_TRUE(DropEdge(spec, e).has_value()) << "extra edge " << e;
  }
}

TEST(WorkloadGenWideTest, WideGenerationIsDeterministic) {
  const GeneratorOptions wide = GeneratorOptions::WideProfile();
  for (uint64_t seed : {3u, 57u, 131u}) {
    WorkloadSpec a = GenerateWorkload(seed, wide);
    WorkloadSpec b = GenerateWorkload(seed, wide);
    EXPECT_EQ(a.ToRepro(), b.ToRepro()) << "seed " << seed;
  }
}

TEST(WorkloadGenWideTest, WidestSpecsPlanThroughTheGreedySeed) {
  // 20-table specs must materialize and plan; above the enumeration
  // threshold the initial order is the greedy seed and must be a
  // permutation of all legs.
  const GeneratorOptions wide = GeneratorOptions::WideProfile();
  WorkloadSpec spec;
  uint64_t seed = 1;
  for (;; ++seed) {
    spec = GenerateWorkload(seed, wide);
    if (spec.tables.size() == kMaxGeneratorTables) break;
    ASSERT_LT(seed, 400u) << "no 20-table spec in the first seeds";
  }
  auto catalog = spec.Materialize();
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  Planner planner(catalog->get());
  auto plan = planner.Plan(spec.query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  std::vector<size_t> order = (*plan)->initial_order;
  std::sort(order.begin(), order.end());
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(order.size(), kMaxGeneratorTables);
}

}  // namespace
}  // namespace ajr

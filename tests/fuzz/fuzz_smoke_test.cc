// Fixed-seed smoke coverage for the fuzzing subsystem (ctest label: fuzz).
//
// Three properties, all deterministic and fast enough for every CI run:
//   1. a band of fixed seeds runs differentially clean (no mismatches, no
//      invariant violations) under the full configuration spread;
//   2. the oracle catches deliberately injected executor bugs — double
//      emission and disabled positional predicates — and the shrinker
//      reduces the double-emission repro to <= 3 tables;
//   3. generation and shrinking are deterministic and validity-preserving.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "testing/oracle.h"
#include "testing/shrinker.h"
#include "testing/workload_gen.h"

namespace ajr {
namespace testing {
namespace {

constexpr uint64_t kCleanSeeds = 40;

TEST(FuzzSmoke, FixedSeedBandIsClean) {
  for (uint64_t seed = 1; seed <= kCleanSeeds; ++seed) {
    WorkloadSpec spec = GenerateWorkload(seed);
    auto failure = RunDifferential(spec);
    ASSERT_TRUE(failure.ok()) << failure.status().ToString();
    if (failure->has_value()) {
      FAIL() << (*failure)->ToString() << "\n" << spec.ToRepro();
    }
  }
}

TEST(FuzzSmoke, GenerationIsDeterministic) {
  for (uint64_t seed : {3ull, 17ull, 123456789ull}) {
    WorkloadSpec a = GenerateWorkload(seed);
    WorkloadSpec b = GenerateWorkload(seed);
    EXPECT_EQ(a.ToRepro(), b.ToRepro()) << "seed " << seed;
    EXPECT_EQ(a.seed, seed);
    EXPECT_TRUE(a.query.Validate().ok());
  }
}

TEST(FuzzSmoke, TransformsPreserveValidity) {
  WorkloadSpec spec = GenerateWorkload(7);
  for (size_t t = 0; t < spec.tables.size(); ++t) {
    if (auto s = DropTable(spec, t)) {
      EXPECT_TRUE(s->query.Validate().ok());
    }
    if (auto s = DropPredicate(spec, t)) {
      EXPECT_TRUE(s->query.Validate().ok());
    }
    if (auto s = HalveRows(spec, t, 0)) {
      EXPECT_TRUE(s->query.Validate().ok());
    }
  }
  for (size_t e = 0; e < spec.query.edges.size(); ++e) {
    if (auto s = DropEdge(spec, e)) {
      EXPECT_TRUE(s->query.Validate().ok());
    }
  }
  for (size_t i = 0; i < spec.query.output.size(); ++i) {
    if (auto s = DropOutputColumn(spec, i)) {
      EXPECT_TRUE(s->query.Validate().ok());
    }
  }
}

/// Finds the first seed in [1, limit] whose workload fails under `options`.
std::optional<std::pair<WorkloadSpec, FailureReport>> FirstFailure(
    const DifferentialOptions& options, uint64_t limit) {
  for (uint64_t seed = 1; seed <= limit; ++seed) {
    WorkloadSpec spec = GenerateWorkload(seed);
    auto failure = RunDifferential(spec, options);
    if (!failure.ok()) ADD_FAILURE() << failure.status().ToString();
    if (failure.ok() && failure->has_value()) return {{spec, **failure}};
  }
  return std::nullopt;
}

TEST(FuzzSmoke, InjectedDoubleEmitIsCaughtAndShrunk) {
  FaultInjection faults;
  faults.double_emit = true;
  DifferentialOptions options;
  options.faults = &faults;

  auto found = FirstFailure(options, 20);
  ASSERT_TRUE(found.has_value())
      << "double-emission bug survived 20 seeds undetected";
  // The duplicate must be visible to the invariant layer (I1), not just the
  // result diff: every emitted RID tuple appears twice.
  EXPECT_EQ(found->second.kind, "invariant") << found->second.ToString();
  EXPECT_NE(found->second.detail.find("I1"), std::string::npos)
      << found->second.detail;

  ShrinkResult shrunk =
      Shrink(found->first, SameKindFailure(options, found->second.kind));
  EXPECT_LE(shrunk.spec.tables.size(), 3u) << shrunk.spec.ToRepro();
  EXPECT_LT(shrunk.spec.TotalRows(), found->first.TotalRows());
  // The minimum must still reproduce (Shrink only keeps failing candidates,
  // but re-check end to end through the public API).
  auto replay = RunDifferential(shrunk.spec, options);
  ASSERT_TRUE(replay.ok());
  ASSERT_TRUE(replay->has_value());
  EXPECT_EQ((*replay)->kind, "invariant");
}

TEST(FuzzSmoke, InjectedPositionalPredicateBugIsCaught) {
  FaultInjection faults;
  faults.disable_positional_predicates = true;
  DifferentialOptions options;
  options.faults = &faults;

  // Without positional predicates a demoted driving leg re-emits its
  // already-processed prefix (the Sec 4.2 duplicate bug). It only fires on
  // seeds whose run actually switches the driving table, so scan a wider
  // band than for double_emit.
  auto found = FirstFailure(options, 60);
  ASSERT_TRUE(found.has_value())
      << "positional-predicate bug survived 60 seeds undetected";
  EXPECT_TRUE(found->second.kind == "invariant" ||
              found->second.kind == "result-mismatch")
      << found->second.ToString();
}

}  // namespace
}  // namespace testing
}  // namespace ajr

// Cancellation under fuzz workloads (ctest label: stress; run under TSan).
//
// Submits generated workloads to the concurrent QueryEngine and cancels
// each query at a random point in its lifetime — before it is picked up,
// mid-execution, or after completion. The contract under test: a cancelled
// query terminates with status Cancelled and NO partial rows; a query that
// wins the race completes with exactly the reference result. Nothing in
// between.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/random.h"
#include "exec/reference_executor.h"
#include "runtime/query_engine.h"
#include "testing/oracle.h"
#include "testing/workload_gen.h"

namespace ajr {
namespace testing {
namespace {

TEST(FuzzCancel, CancelledOrExactNeverPartial) {
  Rng rng(2026);
  constexpr uint64_t kWorkloads = 6;
  constexpr int kRoundsPerWorkload = 24;

  uint64_t cancelled = 0;
  uint64_t completed = 0;
  for (uint64_t seed = 101; seed < 101 + kWorkloads; ++seed) {
    WorkloadSpec spec = GenerateWorkload(seed);
    auto catalog = spec.Materialize();
    ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
    auto expected = ExecuteReference(**catalog, spec.query);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    SortRows(&*expected);

    QueryEngineOptions engine_options;
    engine_options.num_workers = 4;
    QueryEngine engine(catalog->get(), engine_options);

    for (int round = 0; round < kRoundsPerWorkload; ++round) {
      QuerySpec qs;
      qs.query = spec.query;
      qs.adaptive = AggressiveAdaptiveOptions();
      qs.collect_rows = true;
      auto handle = engine.Submit(std::move(qs));
      ASSERT_TRUE(handle.ok()) << handle.status().ToString();

      // Cancel after 0..300us: early rounds hit the queue, later ones the
      // executor's depleted-state polls or the done state.
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.NextInt64(0, 300)));
      handle->Cancel();

      const QueryResult& result = handle->Wait();
      if (result.status.ok()) {
        ++completed;
        std::vector<Row> rows = result.rows;
        SortRows(&rows);
        ASSERT_EQ(rows.size(), expected->size())
            << "seed " << seed << " round " << round
            << ": completed query lost or duplicated rows";
        ASSERT_TRUE(rows == *expected) << "seed " << seed << " round " << round;
      } else {
        ++cancelled;
        ASSERT_EQ(result.status.code(), StatusCode::kCancelled)
            << result.status.ToString();
        ASSERT_TRUE(result.rows.empty())
            << "cancelled query leaked " << result.rows.size()
            << " partial rows (seed " << seed << " round " << round << ")";
      }
    }
    engine.Shutdown();
  }
  // The race must actually explore both outcomes across the run.
  EXPECT_GT(cancelled, 0u) << "no query was ever cancelled in flight";
  RecordProperty("cancelled", static_cast<int>(cancelled));
  RecordProperty("completed", static_cast<int>(completed));
}

// Same contract, morsel-parallel: a query running dop worker pipelines over
// the shared dispenser is cancelled at a random point. Any worker's cancel
// poll must abort the whole fleet (coordinator Abort wakes drain barriers),
// and the outcome is still all-or-nothing: Cancelled with no partial rows,
// or OK with exactly the reference multiset.
TEST(FuzzCancel, ParallelCancelledOrExactNeverPartial) {
  Rng rng(4051);
  constexpr uint64_t kWorkloads = 4;
  constexpr int kRoundsPerWorkload = 16;
  const size_t kDops[] = {2, 4};

  // Larger tables than the default fuzz sizing: a parallel query over
  // 15-row tables finishes before Cancel() can ever land mid-flight, and
  // the whole point here is aborting a running fleet through the drain
  // barrier.
  GeneratorOptions gen_options;
  gen_options.min_tables = 3;
  gen_options.max_tables = 4;
  gen_options.min_rows = 250;
  gen_options.max_rows = 450;

  uint64_t cancelled = 0;
  uint64_t completed = 0;
  for (uint64_t seed = 301; seed < 301 + kWorkloads; ++seed) {
    WorkloadSpec spec = GenerateWorkload(seed, gen_options);
    auto catalog = spec.Materialize();
    ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
    auto expected = ExecuteReference(**catalog, spec.query);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    SortRows(&*expected);

    QueryEngineOptions engine_options;
    engine_options.num_workers = 4;
    QueryEngine engine(catalog->get(), engine_options);

    for (int round = 0; round < kRoundsPerWorkload; ++round) {
      QuerySpec qs;
      qs.query = spec.query;
      qs.adaptive = AggressiveAdaptiveOptions();
      qs.dop = kDops[round % 2];
      qs.morsel_size = 4;  // many dispenser round-trips per query
      qs.collect_rows = true;
      auto handle = engine.Submit(std::move(qs));
      ASSERT_TRUE(handle.ok()) << handle.status().ToString();

      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.NextInt64(0, 300)));
      handle->Cancel();

      const QueryResult& result = handle->Wait();
      if (result.status.ok()) {
        ++completed;
        std::vector<Row> rows = result.rows;
        SortRows(&rows);
        ASSERT_EQ(rows.size(), expected->size())
            << "seed " << seed << " round " << round
            << ": completed parallel query lost or duplicated rows";
        ASSERT_TRUE(rows == *expected) << "seed " << seed << " round " << round;
      } else {
        ++cancelled;
        ASSERT_EQ(result.status.code(), StatusCode::kCancelled)
            << result.status.ToString();
        ASSERT_TRUE(result.rows.empty())
            << "cancelled parallel query leaked " << result.rows.size()
            << " partial rows (seed " << seed << " round " << round << ")";
      }
    }
    engine.Shutdown();
  }
  EXPECT_GT(cancelled, 0u) << "no parallel query was ever cancelled in flight";
  RecordProperty("cancelled", static_cast<int>(cancelled));
  RecordProperty("completed", static_cast<int>(completed));
}

}  // namespace
}  // namespace testing
}  // namespace ajr

// Differential fuzzing driver for the adaptive executor.
//
// Draws seeds from an atomic counter, generates one workload per seed
// (testing/workload_gen.h), and runs each through the differential oracle
// (testing/oracle.h): ReferenceExecutor vs PipelineExecutor under the
// default configuration spread, with the invariant checker attached. The
// first failure stops all workers, is greedily shrunk to a minimal spec,
// and printed as a self-contained repro plus a one-line replay command.
//
// Usage:
//   fuzz_differential [--seed N] [--count N] [--duration SECONDS]
//                     [--jobs N] [--inject none|nopos|dup]
//                     [--policy rank|regret|static] [--index btree|art]
//                     [--share] [--wide] [--expect-failure] [--no-shrink]
//                     [--start-seed N]
//
//   --seed N          run exactly seed N (replay mode)
//   --wide            generate with GeneratorOptions::WideProfile (6-20
//                     tables, tight output cap) instead of the default
//                     2-5 table profile; replay lines carry the flag
//   --count N         number of cases (default 200; ignored with --duration)
//   --duration S      keep fuzzing for S seconds of wall clock
//   --jobs N          worker threads (default 1)
//   --inject nopos    disable positional predicates (Sec 4.2 duplicate bug)
//   --inject dup      emit every output row twice
//   --policy P        restrict the config spread to one AdaptationPolicy
//                     (default: the full spread across all policies)
//   --index B         run the index-backend axis: configs selecting backend
//                     B plus their work_class twins on the other backend,
//                     so result multisets AND work/stat accounting are
//                     compared across btree/art on every seed (mutually
//                     exclusive with --policy)
//   --share           run the cross-query sharing axis: shared-scan /
//                     shared-probe-cache modes in one work_class against
//                     sharing-off, each warm-re-run against its retained
//                     registry/cache (mutually exclusive with the other
//                     axes)
//   --expect-failure  exit 0 only if a failure IS found (oracle self-test)
//   --no-shrink       print the raw failing spec without minimizing
//
// Exit status: 0 = clean run (or failure found under --expect-failure),
// 1 = failure found (or none found under --expect-failure), 2 = bad usage.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "adaptive/policy.h"
#include "testing/oracle.h"
#include "testing/shrinker.h"
#include "testing/workload_gen.h"

namespace {

using ajr::FaultInjection;
using ajr::testing::DifferentialOptions;
using ajr::testing::FailureReport;
using ajr::testing::GenerateWorkload;
using ajr::testing::RunDifferential;
using ajr::testing::SameKindFailure;
using ajr::testing::Shrink;
using ajr::testing::ShrinkResult;
using ajr::testing::WorkloadSpec;

struct Flags {
  std::optional<uint64_t> seed;
  uint64_t start_seed = 1;
  uint64_t count = 200;
  std::optional<double> duration_seconds;
  unsigned jobs = 1;
  std::string inject = "none";
  std::optional<ajr::PolicyKind> policy;
  std::optional<ajr::IndexBackend> index;
  bool share = false;
  bool wide = false;
  bool expect_failure = false;
  bool no_shrink = false;
};

/// Parses both `--flag=value` and `--flag value`. Returns false on usage
/// errors (message already printed).
bool ParseFlags(int argc, char** argv, Flags* flags) {
  auto value_of = [&](int* i, const char* name, const char* arg) -> const char* {
    size_t name_len = std::strlen(name);
    if (arg[name_len] == '=') return arg + name_len + 1;
    if (*i + 1 < argc) return argv[++*i];
    std::fprintf(stderr, "missing value for %s\n", name);
    return nullptr;
  };
  auto matches = [](const char* arg, const char* name) {
    size_t n = std::strlen(name);
    return std::strncmp(arg, name, n) == 0 && (arg[n] == '\0' || arg[n] == '=');
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if (matches(arg, "--seed")) {
      if ((v = value_of(&i, "--seed", arg)) == nullptr) return false;
      flags->seed = std::strtoull(v, nullptr, 10);
    } else if (matches(arg, "--start-seed")) {
      if ((v = value_of(&i, "--start-seed", arg)) == nullptr) return false;
      flags->start_seed = std::strtoull(v, nullptr, 10);
    } else if (matches(arg, "--count")) {
      if ((v = value_of(&i, "--count", arg)) == nullptr) return false;
      flags->count = std::strtoull(v, nullptr, 10);
    } else if (matches(arg, "--duration")) {
      if ((v = value_of(&i, "--duration", arg)) == nullptr) return false;
      flags->duration_seconds = std::strtod(v, nullptr);
    } else if (matches(arg, "--jobs")) {
      if ((v = value_of(&i, "--jobs", arg)) == nullptr) return false;
      flags->jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      if (flags->jobs == 0) flags->jobs = 1;
    } else if (matches(arg, "--inject")) {
      if ((v = value_of(&i, "--inject", arg)) == nullptr) return false;
      flags->inject = v;
      if (flags->inject != "none" && flags->inject != "nopos" &&
          flags->inject != "dup") {
        std::fprintf(stderr, "--inject must be none|nopos|dup, got %s\n", v);
        return false;
      }
    } else if (matches(arg, "--policy")) {
      if ((v = value_of(&i, "--policy", arg)) == nullptr) return false;
      flags->policy = ajr::ParsePolicyKind(v);
      if (!flags->policy.has_value()) {
        std::fprintf(stderr, "--policy must be rank|regret|static, got %s\n", v);
        return false;
      }
    } else if (matches(arg, "--index")) {
      if ((v = value_of(&i, "--index", arg)) == nullptr) return false;
      flags->index = ajr::ParseIndexBackend(v);
      if (!flags->index.has_value()) {
        std::fprintf(stderr, "--index must be btree|art, got %s\n", v);
        return false;
      }
    } else if (std::strcmp(arg, "--share") == 0) {
      flags->share = true;
    } else if (std::strcmp(arg, "--wide") == 0) {
      flags->wide = true;
    } else if (std::strcmp(arg, "--expect-failure") == 0) {
      flags->expect_failure = true;
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      flags->no_shrink = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg);
      return false;
    }
  }
  return true;
}

struct SharedState {
  std::atomic<uint64_t> next_seed{0};
  std::atomic<uint64_t> cases_run{0};
  std::atomic<bool> stop{false};
  std::mutex mu;
  std::optional<FailureReport> failure;  // first failure wins
  WorkloadSpec failing_spec;
  std::string harness_error;
};

void Worker(const Flags& flags, const DifferentialOptions& options,
            std::chrono::steady_clock::time_point deadline, uint64_t end_seed,
            SharedState* shared) {
  while (!shared->stop.load(std::memory_order_relaxed)) {
    if (flags.duration_seconds.has_value()) {
      if (std::chrono::steady_clock::now() >= deadline) return;
    }
    uint64_t seed = shared->next_seed.fetch_add(1, std::memory_order_relaxed);
    if (!flags.duration_seconds.has_value() && seed >= end_seed) return;

    WorkloadSpec spec = GenerateWorkload(
        seed, flags.wide ? ajr::testing::GeneratorOptions::WideProfile()
                         : ajr::testing::GeneratorOptions{});
    auto outcome = RunDifferential(spec, options);
    shared->cases_run.fetch_add(1, std::memory_order_relaxed);
    if (outcome.ok() && !outcome->has_value()) continue;

    std::lock_guard<std::mutex> lock(shared->mu);
    if (shared->stop.exchange(true)) return;  // someone else failed first
    if (!outcome.ok()) {
      shared->harness_error = outcome.status().ToString();
    } else {
      shared->failure = **outcome;
      shared->failing_spec = std::move(spec);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  FaultInjection faults;
  faults.disable_positional_predicates = flags.inject == "nopos";
  faults.double_emit = flags.inject == "dup";
  DifferentialOptions options;
  if (flags.inject != "none") options.faults = &faults;
  if (static_cast<int>(flags.policy.has_value()) +
          static_cast<int>(flags.index.has_value()) +
          static_cast<int>(flags.share) >
      1) {
    std::fprintf(stderr,
                 "--policy, --index, and --share are mutually exclusive axes\n");
    return 2;
  }
  if (flags.policy.has_value()) {
    options.configs = ajr::testing::ConfigsForPolicy(*flags.policy);
  }
  if (flags.index.has_value()) {
    options.configs = ajr::testing::ConfigsForBackend(*flags.index);
  }
  if (flags.share) {
    options.configs = ajr::testing::ConfigsForShare();
  }

  SharedState shared;
  const auto start = std::chrono::steady_clock::now();
  auto deadline = start;
  uint64_t end_seed = 0;
  if (flags.seed.has_value()) {
    shared.next_seed = *flags.seed;
    end_seed = *flags.seed + 1;
    flags.duration_seconds.reset();
    flags.jobs = 1;
  } else {
    shared.next_seed = flags.start_seed;
    end_seed = flags.start_seed + flags.count;
    if (flags.duration_seconds.has_value()) {
      deadline = start + std::chrono::microseconds(static_cast<int64_t>(
                             *flags.duration_seconds * 1e6));
    }
  }

  std::vector<std::thread> workers;
  for (unsigned i = 0; i < flags.jobs; ++i) {
    workers.emplace_back(Worker, std::cref(flags), std::cref(options), deadline,
                         end_seed, &shared);
  }
  for (std::thread& w : workers) w.join();

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf(
      "fuzz_differential: %llu cases in %.1fs (%.0f cases/s), inject=%s, "
      "policy=%s, index=%s, share=%s, profile=%s\n",
      static_cast<unsigned long long>(shared.cases_run.load()), elapsed,
      shared.cases_run.load() / (elapsed > 0 ? elapsed : 1),
      flags.inject.c_str(),
      flags.policy.has_value() ? ajr::PolicyKindName(*flags.policy) : "all",
      flags.index.has_value() ? ajr::IndexBackendName(*flags.index) : "all",
      flags.share ? "on" : "off", flags.wide ? "wide" : "default");

  if (!shared.harness_error.empty()) {
    std::fprintf(stderr, "HARNESS ERROR: %s\n", shared.harness_error.c_str());
    return 1;
  }
  if (!shared.failure.has_value()) {
    if (flags.expect_failure) {
      std::fprintf(stderr,
                   "EXPECTED a failure (--expect-failure) but all cases "
                   "passed\n");
      return 1;
    }
    std::printf("OK: 0 mismatches, 0 invariant violations\n");
    return 0;
  }

  std::printf("\nFAILURE:\n%s\n", shared.failure->ToString().c_str());
  WorkloadSpec minimal = shared.failing_spec;
  if (!flags.no_shrink) {
    ShrinkResult shrunk = Shrink(
        shared.failing_spec, SameKindFailure(options, shared.failure->kind));
    std::printf("shrunk: %zu accepted transforms over %zu attempts "
                "(%zu -> %zu tables, %zu -> %zu rows)\n",
                shrunk.accepted, shrunk.attempts,
                shared.failing_spec.tables.size(), shrunk.spec.tables.size(),
                shared.failing_spec.TotalRows(), shrunk.spec.TotalRows());
    minimal = std::move(shrunk.spec);
  }
  std::printf("\n---- minimal repro ----\n%s", minimal.ToRepro().c_str());
  std::string axis;
  if (flags.policy.has_value()) {
    axis = std::string(" --policy ") + ajr::PolicyKindName(*flags.policy);
  } else if (flags.index.has_value()) {
    axis = std::string(" --index ") + ajr::IndexBackendName(*flags.index);
  } else if (flags.share) {
    axis = " --share";
  }
  std::printf("replay: fuzz_differential --seed %llu --inject %s%s%s\n",
              static_cast<unsigned long long>(shared.failure->seed),
              flags.inject.c_str(), axis.c_str(), flags.wide ? " --wide" : "");
  return flags.expect_failure ? 0 : 1;
}

// QueryEngine behaviour: concurrent serving produces serial results,
// cancellation and deadlines surface their distinct statuses, handles have
// future-like semantics, and the metrics registry observes it all.

#include "runtime/query_engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "workload/dmv.h"
#include "workload/templates.h"

namespace ajr {
namespace {

using std::chrono::milliseconds;

QueryEngineOptions Workers(size_t n) {
  QueryEngineOptions options;
  options.num_workers = n;
  return options;
}

// One-shot gate for coordinating a worker-side sink with the test thread.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }
  bool WaitFor(milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

class QueryEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    DmvConfig config;
    config.num_owners = 3000;
    ASSERT_TRUE(GenerateDmv(catalog_, config).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  // Serial oracle: plan + execute on the calling thread.
  static uint64_t SerialRowCount(const JoinQuery& q) {
    Planner planner(catalog_);
    auto plan = planner.Plan(q);
    EXPECT_TRUE(plan.ok()) << plan.status();
    PipelineExecutor exec(plan->get());
    auto stats = exec.Execute(nullptr);
    EXPECT_TRUE(stats.ok()) << stats.status();
    return stats.ok() ? stats->rows_out : 0;
  }

  static QueryHandle MustSubmit(QueryEngine* engine, QuerySpec spec) {
    auto handle = engine->Submit(std::move(spec));
    EXPECT_TRUE(handle.ok()) << handle.status();
    return handle.ok() ? *handle : QueryHandle();
  }

  static Catalog* catalog_;
};

Catalog* QueryEngineTest::catalog_ = nullptr;

TEST_F(QueryEngineTest, ConcurrentSubmissionMatchesSerialRowCounts) {
  DmvQueryGenerator gen(catalog_);
  auto queries = gen.GenerateMix(4);  // 4 variants x 5 templates = 20 queries
  ASSERT_TRUE(queries.ok()) << queries.status();

  std::vector<uint64_t> serial;
  serial.reserve(queries->size());
  for (const JoinQuery& q : *queries) serial.push_back(SerialRowCount(q));

  MetricsRegistry metrics;
  QueryEngineOptions options;
  options.num_workers = 4;
  options.metrics = &metrics;
  QueryEngine engine(catalog_, options);
  std::vector<QueryHandle> handles;
  for (const JoinQuery& q : *queries) {
    QuerySpec spec;
    spec.query = q;
    handles.push_back(MustSubmit(&engine, std::move(spec)));
  }
  uint64_t total_rows = 0;
  for (size_t i = 0; i < handles.size(); ++i) {
    const QueryResult& result = handles[i].Wait();
    ASSERT_TRUE(result.status.ok()) << handles[i].name() << ": " << result.status;
    EXPECT_EQ(result.stats.rows_out, serial[i]) << handles[i].name();
    total_rows += result.stats.rows_out;
  }
  engine.Shutdown();

  EXPECT_EQ(metrics.FindCounter("engine.queries_submitted")->value(),
            queries->size());
  EXPECT_EQ(metrics.FindCounter("engine.queries_finished")->value(),
            queries->size());
  EXPECT_EQ(metrics.FindCounter("engine.queries_cancelled")->value(), 0u);
  EXPECT_EQ(metrics.FindCounter("engine.rows_out")->value(), total_rows);
  EXPECT_EQ(metrics.FindHistogram("engine.query_latency_us")->count(),
            queries->size());
}

TEST_F(QueryEngineTest, CollectRowsReturnsTheResultSet) {
  JoinQuery q = DmvQueryGenerator::Example1();
  uint64_t expected = SerialRowCount(q);
  ASSERT_GT(expected, 0u);

  QueryEngine engine(catalog_, Workers(1));
  QuerySpec spec;
  spec.query = q;
  spec.collect_rows = true;
  QueryHandle h = MustSubmit(&engine, std::move(spec));
  const QueryResult& result = h.Wait();
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.rows.size(), expected);
  EXPECT_EQ(result.stats.rows_out, expected);
}

TEST_F(QueryEngineTest, MorselParallelQueriesMatchSerialRowCounts) {
  DmvQueryGenerator gen(catalog_);
  auto queries = gen.GenerateMix(1);  // one variant per template
  ASSERT_TRUE(queries.ok()) << queries.status();

  MetricsRegistry metrics;
  QueryEngineOptions options;
  options.num_workers = 4;
  options.metrics = &metrics;
  QueryEngine engine(catalog_, options);
  for (const JoinQuery& q : *queries) {
    uint64_t expected = SerialRowCount(q);
    QuerySpec spec;
    spec.query = q;
    spec.dop = 4;  // intra-query parallelism, capped at the pool size
    spec.morsel_size = 16;
    QueryHandle h = MustSubmit(&engine, std::move(spec));
    const QueryResult& result = h.Wait();
    ASSERT_TRUE(result.status.ok()) << h.name() << ": " << result.status;
    EXPECT_EQ(result.stats.rows_out, expected) << h.name();
  }
  engine.Shutdown();

  EXPECT_EQ(metrics.FindCounter("exec.parallel_queries")->value(),
            queries->size());
  EXPECT_GT(metrics.FindCounter("exec.parallel_morsels")->value(), 0u);
}

TEST_F(QueryEngineTest, CancelStopsARunningQueryMidFlight) {
  QueryEngine engine(catalog_, Workers(1));
  Gate started, cancel_issued;
  bool first_row = true;
  QuerySpec spec;
  spec.query = DmvQueryGenerator::Example1();
  // The sink runs on the worker: park the query mid-execution on its first
  // output row until the test has issued Cancel().
  spec.sink = [&](const Row&) {
    if (first_row) {
      first_row = false;
      started.Open();
      cancel_issued.Wait();
    }
  };
  QueryHandle h = MustSubmit(&engine, std::move(spec));
  started.Wait();  // the query is provably mid-execution now
  EXPECT_FALSE(h.done());
  h.Cancel();
  cancel_issued.Open();
  const QueryResult& result = h.Wait();
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(h.state(), QueryState::kDone);
}

TEST_F(QueryEngineTest, CancelTerminatesAQueuedQueryWithoutRunningIt) {
  QueryEngine engine(catalog_, Workers(1));
  Gate blocker_started, release;
  bool first_row = true;
  QuerySpec blocker;
  blocker.query = DmvQueryGenerator::Example1();
  blocker.sink = [&](const Row&) {
    if (first_row) {
      first_row = false;
      blocker_started.Open();
      release.Wait();
    }
  };
  QueryHandle blocking = MustSubmit(&engine, std::move(blocker));
  blocker_started.Wait();

  // The single worker is busy: this query sits in the queue.
  QuerySpec queued;
  queued.query = DmvQueryGenerator::Example2();
  bool queued_ran = false;
  queued.sink = [&queued_ran](const Row&) { queued_ran = true; };
  QueryHandle h = MustSubmit(&engine, std::move(queued));
  EXPECT_EQ(h.state(), QueryState::kQueued);
  h.Cancel();
  release.Open();

  EXPECT_EQ(h.Wait().status.code(), StatusCode::kCancelled);
  EXPECT_FALSE(queued_ran) << "a query cancelled while queued must not execute";
  EXPECT_TRUE(blocking.Wait().status.ok());
}

TEST_F(QueryEngineTest, ZeroTimeoutExpiresBeforeExecution) {
  QueryEngine engine(catalog_, Workers(1));
  QuerySpec spec;
  spec.query = DmvQueryGenerator::Example1();
  spec.timeout = milliseconds(0);
  QueryHandle h = MustSubmit(&engine, std::move(spec));
  EXPECT_EQ(h.Wait().status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(QueryEngineTest, DeadlinePassingMidQueryStopsTheQuery) {
  QueryEngine engine(catalog_, Workers(1));
  bool first_row = true;
  QuerySpec spec;
  spec.query = DmvQueryGenerator::Example1();
  spec.timeout = milliseconds(20);
  // Sleep past the deadline inside the sink: the executor must notice at a
  // later depleted state and stop with the deadline status.
  spec.sink = [&first_row](const Row&) {
    if (first_row) {
      first_row = false;
      std::this_thread::sleep_for(milliseconds(60));
    }
  };
  QueryHandle h = MustSubmit(&engine, std::move(spec));
  EXPECT_EQ(h.Wait().status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(QueryEngineTest, CancelAndDeadlineStatusesAreDistinct) {
  EXPECT_NE(StatusCode::kCancelled, StatusCode::kDeadlineExceeded);
  EXPECT_NE(Status::Cancelled("x").code(), Status::DeadlineExceeded("x").code());
}

TEST_F(QueryEngineTest, HandleSemantics) {
  QueryEngine engine(catalog_, Workers(1));
  Gate started, release;
  bool first_row = true;
  QuerySpec spec;
  spec.query = DmvQueryGenerator::Example1();
  spec.sink = [&](const Row&) {
    if (first_row) {
      first_row = false;
      started.Open();
      release.Wait();
    }
  };
  QueryHandle h = MustSubmit(&engine, std::move(spec));
  ASSERT_TRUE(h.valid());
  started.Wait();
  EXPECT_FALSE(h.done());
  EXPECT_FALSE(h.WaitFor(milliseconds(1)));
  QueryHandle copy = h;  // copyable view of the same session
  release.Open();
  EXPECT_TRUE(h.WaitFor(milliseconds(10000)));
  EXPECT_TRUE(h.done());
  EXPECT_EQ(h.state(), QueryState::kDone);
  EXPECT_TRUE(copy.done());
  EXPECT_EQ(&copy.Wait(), &h.Wait()) << "copies share one result";
}

TEST_F(QueryEngineTest, SubmitAfterShutdownFails) {
  QueryEngine engine(catalog_, Workers(1));
  engine.Shutdown();
  QuerySpec spec;
  spec.query = DmvQueryGenerator::Example1();
  auto handle = engine.Submit(std::move(spec));
  EXPECT_FALSE(handle.ok());
}

TEST_F(QueryEngineTest, InvalidQueryFailsFastWithoutEnqueueing) {
  MetricsRegistry metrics;
  QueryEngineOptions options;
  options.num_workers = 1;
  options.metrics = &metrics;
  QueryEngine engine(catalog_, options);
  QuerySpec spec;  // default JoinQuery: no tables, fails Validate()
  auto handle = engine.Submit(std::move(spec));
  EXPECT_FALSE(handle.ok());
  const Counter* submitted = metrics.FindCounter("engine.queries_submitted");
  ASSERT_NE(submitted, nullptr);
  EXPECT_EQ(submitted->value(), 0u);
}

TEST_F(QueryEngineTest, ShutdownDrainsQueuedQueries) {
  QueryEngine engine(catalog_, Workers(1));
  DmvQueryGenerator gen(catalog_);
  std::vector<QueryHandle> handles;
  for (size_t variant = 0; variant < 6; ++variant) {
    auto q = gen.Generate(1, variant);
    ASSERT_TRUE(q.ok()) << q.status();
    QuerySpec spec;
    spec.query = *q;
    handles.push_back(MustSubmit(&engine, std::move(spec)));
  }
  engine.Shutdown();  // must run everything already accepted
  for (QueryHandle& h : handles) {
    EXPECT_TRUE(h.done());
    EXPECT_TRUE(h.Wait().status.ok()) << h.Wait().status;
  }
}

}  // namespace
}  // namespace ajr

#include "runtime/shared_scan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/work_counter.h"
#include "storage/cursors.h"
#include "storage/heap_table.h"

namespace ajr {
namespace {

// A small table whose full scan crosses several morsel boundaries and ends
// on a partial morsel (23 rows / morsel 5 = 4 full + 1 partial).
constexpr size_t kRows = 23;
constexpr size_t kMorsel = 5;

std::unique_ptr<HeapTable> MakeTable() {
  auto t = std::make_unique<HeapTable>(
      "t", Schema({{"id", DataType::kInt64}}));
  for (size_t i = 0; i < kRows; ++i) {
    EXPECT_TRUE(t->Append({Value(static_cast<int64_t>(i))}).ok());
  }
  return t;
}

/// The reference: a private MorselDriver-style fill loop over its own
/// cursor — morsel boundaries, the partial tail morsel, and the final
/// empty pull's charge are exactly what shared attachments must replay.
struct PrivateScan {
  std::vector<std::vector<Rid>> morsels;
  uint64_t work = 0;
};

PrivateScan RunPrivate(const HeapTable& t) {
  PrivateScan out;
  WorkCounter wc;
  TableScanCursor cursor(&t);
  Rid rid;
  for (;;) {
    std::vector<Rid> m;
    while (m.size() < kMorsel && cursor.Next(&wc, &rid)) m.push_back(rid);
    if (m.empty()) break;
    out.morsels.push_back(std::move(m));
  }
  out.work = wc.total();
  return out;
}

/// Drains an attachment to cover, returning its charged work total.
uint64_t Drain(SharedScanAttachment* att,
               std::vector<std::vector<Rid>>* morsels) {
  WorkCounter wc;
  ParallelMorsel m;
  while (att->Next(&m, &wc)) morsels->push_back(m.rids);
  return wc.total();
}

std::vector<Rid> Flatten(const std::vector<std::vector<Rid>>& morsels) {
  std::vector<Rid> out;
  for (const auto& m : morsels) out.insert(out.end(), m.begin(), m.end());
  return out;
}

void Attach(SharedScanRegistry* reg, const HeapTable& t,
            SharedScanAttachment* att) {
  reg->AttachOrCreate(
      "sig", [&t] { return std::make_unique<TableScanCursor>(&t); }, kMorsel,
      /*record_positions=*/false, att);
}

TEST(SharedScanTest, SingleAttachmentMatchesPrivateScanExactly) {
  auto t = MakeTable();
  const PrivateScan ref = RunPrivate(*t);
  ASSERT_EQ(ref.morsels.size(), 5u);

  SharedScanRegistry reg;
  SharedScanAttachment att;
  Attach(&reg, *t, &att);
  EXPECT_FALSE(att.attached_existing());
  EXPECT_FALSE(att.started_mid_pass());

  std::vector<std::vector<Rid>> got;
  const uint64_t work = Drain(&att, &got);
  EXPECT_EQ(got, ref.morsels) << "shared morsel stream diverged from private";
  EXPECT_EQ(work, ref.work) << "replayed work is not bit-identical";
  EXPECT_TRUE(att.covered());
  EXPECT_EQ(att.produced(), ref.morsels.size());
  EXPECT_EQ(att.consumed(), ref.morsels.size());
  EXPECT_EQ(reg.num_passes(), 1u);
}

TEST(SharedScanTest, MidPassJoinerWrapsAndCovers) {
  auto t = MakeTable();
  const PrivateScan ref = RunPrivate(*t);

  SharedScanRegistry reg;
  SharedScanAttachment a;
  Attach(&reg, *t, &a);

  // A produces the first two morsels, then B joins the live pass at its
  // frontier (circular attach).
  WorkCounter a_wc;
  ParallelMorsel m;
  std::vector<std::vector<Rid>> a_morsels;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(a.Next(&m, &a_wc));
    a_morsels.push_back(m.rids);
  }

  SharedScanAttachment b;
  Attach(&reg, *t, &b);
  EXPECT_TRUE(b.attached_existing());
  EXPECT_TRUE(b.started_mid_pass())
      << "a joiner of a live in-flight pass must start at the frontier";

  std::vector<std::vector<Rid>> b_morsels;
  const uint64_t b_work = Drain(&b, &b_morsels);
  while (a.Next(&m, &a_wc)) a_morsels.push_back(m.rids);

  // Both attachments cover the full scan — B in wrapped order — and each
  // charges exactly what a private scan would have.
  std::vector<Rid> expect = Flatten(ref.morsels);
  std::vector<Rid> a_flat = Flatten(a_morsels);
  std::vector<Rid> b_flat = Flatten(b_morsels);
  EXPECT_EQ(a_flat, expect) << "creator's order must be plain scan order";
  ASSERT_EQ(b_morsels.size(), ref.morsels.size());
  EXPECT_NE(b_flat, expect) << "mid-pass joiner should consume wrapped";
  std::sort(a_flat.begin(), a_flat.end());
  std::sort(b_flat.begin(), b_flat.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(a_flat, expect);
  EXPECT_EQ(b_flat, expect);
  EXPECT_EQ(a_wc.total(), ref.work);
  EXPECT_EQ(b_work, ref.work);
  // The scan was produced physically once, cooperatively.
  EXPECT_EQ(a.produced() + b.produced(), ref.morsels.size());
}

TEST(SharedScanTest, WarmAttachmentReplaysRetainedPassWithoutProducing) {
  auto t = MakeTable();
  const PrivateScan ref = RunPrivate(*t);

  SharedScanRegistry reg;
  {
    SharedScanAttachment a;
    Attach(&reg, *t, &a);
    std::vector<std::vector<Rid>> tmp;
    Drain(&a, &tmp);
  }
  // The completed pass is retained; a warm joiner replays it front to back
  // and performs no physical scan at all (passes-saved accounting keys off
  // covered() && produced() == 0).
  SharedScanAttachment warm;
  Attach(&reg, *t, &warm);
  EXPECT_TRUE(warm.attached_existing());
  EXPECT_FALSE(warm.started_mid_pass());

  std::vector<std::vector<Rid>> got;
  const uint64_t work = Drain(&warm, &got);
  EXPECT_EQ(got, ref.morsels);
  EXPECT_EQ(work, ref.work);
  EXPECT_EQ(warm.produced(), 0u);
  EXPECT_TRUE(warm.covered());
  EXPECT_EQ(reg.num_passes(), 1u);
}

TEST(SharedScanTest, StalledPassIsJoinedAtMorselZero) {
  auto t = MakeTable();
  const PrivateScan ref = RunPrivate(*t);

  SharedScanRegistry reg;
  {
    // A produces two morsels and detaches without covering — the pass is
    // now stalled: incomplete, with nobody driving it forward.
    SharedScanAttachment a;
    Attach(&reg, *t, &a);
    WorkCounter wc;
    ParallelMorsel m;
    ASSERT_TRUE(a.Next(&m, &wc));
    ASSERT_TRUE(a.Next(&m, &wc));
  }
  // The next joiner must start at morsel 0 (plain scan order, demotion
  // safe), replaying the stalled prefix and producing the rest itself.
  SharedScanAttachment b;
  Attach(&reg, *t, &b);
  EXPECT_TRUE(b.attached_existing());
  EXPECT_FALSE(b.started_mid_pass())
      << "a stalled pass has no momentum to ride — join at 0";

  std::vector<std::vector<Rid>> got;
  const uint64_t work = Drain(&b, &got);
  EXPECT_EQ(got, ref.morsels) << "stalled-pass replay must be in scan order";
  EXPECT_EQ(work, ref.work);
  EXPECT_EQ(b.produced(), ref.morsels.size() - 2);
}

TEST(SharedScanTest, DistinctSignaturesGetDistinctPasses) {
  auto t = MakeTable();
  SharedScanRegistry reg;
  SharedScanAttachment a, b;
  reg.AttachOrCreate(
      "sig-a", [&] { return std::make_unique<TableScanCursor>(t.get()); },
      kMorsel, false, &a);
  reg.AttachOrCreate(
      "sig-b", [&] { return std::make_unique<TableScanCursor>(t.get()); },
      kMorsel, false, &b);
  EXPECT_FALSE(b.attached_existing());
  EXPECT_EQ(reg.num_passes(), 2u);
}

}  // namespace
}  // namespace ajr

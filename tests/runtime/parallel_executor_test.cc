// Morsel-parallel executor tests (ctest label: stress; run under TSan).
//
// The contract under test, per ISSUE 5:
//   * dop <= 1 is the untouched serial path — bit-identical rows, work
//     units, stats, and event log to a plain PipelineExecutor run;
//   * dop > 1 preserves the row MULTISET (interleaving is free), and the
//     merged stats account for every worker's output;
//   * adaptation still happens: the shared coordinator's merged-statistics
//     checks produce driving switches on the paper's misestimated
//     templates, and switched runs stay exact;
//   * the MorselDriver dispenses the driving scan exactly once regardless
//     of morsel size;
//   * WorkerLease degrades dop on a busy pool instead of deadlocking.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <vector>

#include "exec/adaptive_coordinator.h"
#include "exec/pipeline_executor.h"
#include "exec/reference_executor.h"
#include "runtime/morsel.h"
#include "runtime/parallel_executor.h"
#include "runtime/thread_pool.h"
#include "runtime/worker_lease.h"
#include "testing/oracle.h"
#include "workload/dmv.h"
#include "workload/templates.h"

namespace ajr {
namespace {

class ParallelExecutorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    DmvConfig config;
    config.num_owners = 3000;
    ASSERT_TRUE(GenerateDmv(catalog_, config).ok());
    // Minimal statistics: initial plans carry the misestimates that make
    // run-time reordering fire (the paper's baseline).
    planner_ = new Planner(catalog_, PlannerOptions{StatsTier::kMinimal});
  }
  static void TearDownTestSuite() {
    delete planner_;
    delete catalog_;
    catalog_ = nullptr;
    planner_ = nullptr;
  }

  static StatusOr<std::unique_ptr<PipelinePlan>> Plan(const JoinQuery& q) {
    return planner_->Plan(q);
  }

  static ExecStats RunSerial(const PipelinePlan* plan, AdaptiveOptions options,
                             std::vector<Row>* rows_out) {
    PipelineExecutor exec(plan, options);
    std::vector<Row> rows;
    auto stats = exec.Execute([&rows](const Row& r) { rows.push_back(r); });
    EXPECT_TRUE(stats.ok()) << stats.status();
    if (rows_out != nullptr) *rows_out = std::move(rows);
    return stats.ok() ? *stats : ExecStats{};
  }

  static ExecStats RunParallel(const PipelinePlan* plan,
                               AdaptiveOptions options,
                               ParallelExecOptions parallel,
                               std::vector<Row>* rows_out) {
    ParallelPipelineExecutor exec(plan, options, parallel);
    std::vector<Row> rows;
    auto stats = exec.Execute([&rows](const Row& r) { rows.push_back(r); });
    EXPECT_TRUE(stats.ok()) << stats.status();
    if (rows_out != nullptr) *rows_out = std::move(rows);
    return stats.ok() ? *stats : ExecStats{};
  }

  static std::vector<Row> Reference(const JoinQuery& q) {
    auto rows = ExecuteReference(*catalog_, q);
    EXPECT_TRUE(rows.ok()) << rows.status();
    std::vector<Row> out = rows.ok() ? *rows : std::vector<Row>{};
    SortRows(&out);
    return out;
  }

  /// The adaptive_behavior_test settings that make switches deterministic
  /// enough to assert on: no backoff, no hysteresis margins.
  static AdaptiveOptions Strict() {
    AdaptiveOptions o;
    o.check_backoff = false;
    o.inner_benefit_epsilon = 0.0;
    o.switch_benefit_threshold = 1.0;
    o.min_edge_pairs = 1.0;
    o.min_leg_samples = 4;
    return o;
  }

  static Catalog* catalog_;
  static Planner* planner_;
};

Catalog* ParallelExecutorTest::catalog_ = nullptr;
Planner* ParallelExecutorTest::planner_ = nullptr;

// dop = 1 must be the serial executor verbatim: same rows IN THE SAME
// ORDER, same work units, same adaptation events. This is the PR's
// determinism contract (fig7/fig11 reproductions must not move).
TEST_F(ParallelExecutorTest, Dop1BitIdenticalToSerial) {
  DmvQueryGenerator gen(catalog_);
  for (int t = 1; t <= kNumFourTableTemplates; ++t) {
    for (size_t v = 0; v < 3; ++v) {
      auto q = gen.Generate(t, v);
      ASSERT_TRUE(q.ok()) << q.status();
      auto plan = Plan(*q);
      ASSERT_TRUE(plan.ok()) << plan.status();

      std::vector<Row> serial_rows;
      ExecStats serial = RunSerial(plan->get(), Strict(), &serial_rows);

      ParallelExecOptions parallel;
      parallel.dop = 1;
      parallel.morsel_size = 7;  // must be ignored on the serial path
      std::vector<Row> par_rows;
      ExecStats par = RunParallel(plan->get(), Strict(), parallel, &par_rows);

      EXPECT_EQ(par_rows, serial_rows) << "T" << t << " v" << v;
      EXPECT_EQ(par.rows_out, serial.rows_out);
      EXPECT_EQ(par.work_units, serial.work_units) << "T" << t << " v" << v;
      EXPECT_EQ(par.driving_rows_produced, serial.driving_rows_produced);
      EXPECT_EQ(par.inner_checks, serial.inner_checks);
      EXPECT_EQ(par.inner_reorders, serial.inner_reorders);
      EXPECT_EQ(par.driving_checks, serial.driving_checks);
      EXPECT_EQ(par.driving_switches, serial.driving_switches);
      EXPECT_EQ(par.initial_order, serial.initial_order);
      EXPECT_EQ(par.final_order, serial.final_order);
      EXPECT_EQ(par.events, serial.events) << "T" << t << " v" << v;
      EXPECT_EQ(par.parallel_workers, 0u)
          << "serial delegation must not report a fleet";
    }
  }
}

// dop > 1: the row multiset equals the reference for every template, at
// several dops and morsel sizes, with adaptation fully on.
TEST_F(ParallelExecutorTest, ParallelRowMultisetMatchesReference) {
  DmvQueryGenerator gen(catalog_);
  const size_t kDops[] = {2, 4};
  const size_t kMorsels[] = {3, 64};
  for (int t = 1; t <= kNumFourTableTemplates; ++t) {
    auto q = gen.Generate(t, 1);
    ASSERT_TRUE(q.ok()) << q.status();
    auto plan = Plan(*q);
    ASSERT_TRUE(plan.ok()) << plan.status();
    std::vector<Row> expected = Reference(*q);

    for (size_t dop : kDops) {
      for (size_t morsel : kMorsels) {
        ParallelExecOptions parallel;
        parallel.dop = dop;
        parallel.morsel_size = morsel;
        std::vector<Row> rows;
        ExecStats stats =
            RunParallel(plan->get(), Strict(), parallel, &rows);
        SortRows(&rows);
        EXPECT_EQ(rows, expected)
            << "T" << t << " dop=" << dop << " morsel=" << morsel;
        EXPECT_EQ(stats.rows_out, expected.size());
      }
    }
  }
}

// The ART probe backend under morsel parallelism: every template at
// dop 2 and 4 must reproduce the reference multiset, and the serial path
// must stay bit-identical to the B+-tree backend in every stat the
// adaptive controller can see (the canonical work-charging contract).
// Runs under TSan with the stress label: concurrent workers probe the
// same read-only ArtIndex.
TEST_F(ParallelExecutorTest, ArtBackendParallelMatchesReference) {
  DmvQueryGenerator gen(catalog_);
  for (int t = 1; t <= kNumFourTableTemplates; ++t) {
    auto q = gen.Generate(t, 2);
    ASSERT_TRUE(q.ok()) << q.status();
    auto plan = Plan(*q);
    ASSERT_TRUE(plan.ok()) << plan.status();
    std::vector<Row> expected = Reference(*q);

    AdaptiveOptions art = Strict();
    art.index_backend = IndexBackend::kArt;

    // Serial: ART vs B+-tree must agree bit-for-bit on rows AND stats.
    std::vector<Row> btree_rows, art_rows;
    ExecStats bt = RunSerial(plan->get(), Strict(), &btree_rows);
    ExecStats ar = RunSerial(plan->get(), art, &art_rows);
    EXPECT_EQ(art_rows, btree_rows) << "T" << t;
    EXPECT_EQ(ar.work_units, bt.work_units) << "T" << t;
    EXPECT_EQ(ar.inner_reorders, bt.inner_reorders);
    EXPECT_EQ(ar.driving_switches, bt.driving_switches);
    EXPECT_EQ(ar.final_order, bt.final_order);
    EXPECT_EQ(ar.events, bt.events) << "T" << t;

    for (size_t dop : {size_t{2}, size_t{4}}) {
      ParallelExecOptions parallel;
      parallel.dop = dop;
      parallel.morsel_size = 5;
      std::vector<Row> rows;
      ExecStats stats = RunParallel(plan->get(), art, parallel, &rows);
      SortRows(&rows);
      EXPECT_EQ(rows, expected) << "T" << t << " dop=" << dop;
      EXPECT_EQ(stats.rows_out, expected.size());
    }
  }
}

// Six-table plans cross more inner levels and reorder more; same contract.
TEST_F(ParallelExecutorTest, SixTableParallelMatchesReference) {
  DmvQueryGenerator gen(catalog_);
  for (int t = 1; t <= kNumSixTableTemplates; ++t) {
    auto q = gen.GenerateSixTable(t, 0);
    ASSERT_TRUE(q.ok()) << q.status();
    auto plan = Plan(*q);
    ASSERT_TRUE(plan.ok()) << plan.status();
    std::vector<Row> expected = Reference(*q);

    ParallelExecOptions parallel;
    parallel.dop = 4;
    parallel.morsel_size = 16;
    std::vector<Row> rows;
    ExecStats stats = RunParallel(plan->get(), Strict(), parallel, &rows);
    SortRows(&rows);
    EXPECT_EQ(rows, expected) << "S" << t;
    EXPECT_EQ(stats.rows_out, expected.size());
  }
}

// Merged stats must account for the whole fleet: every worker's rows sum
// to the total, morsels and folds are reported, and per-worker stats are
// exposed.
TEST_F(ParallelExecutorTest, MergedStatsAccountForTheFleet) {
  DmvQueryGenerator gen(catalog_);
  auto q = gen.Generate(3, 0);
  ASSERT_TRUE(q.ok()) << q.status();
  auto plan = Plan(*q);
  ASSERT_TRUE(plan.ok()) << plan.status();

  ParallelExecOptions parallel;
  parallel.dop = 4;
  parallel.morsel_size = 8;
  ParallelPipelineExecutor exec(plan->get(), Strict(), parallel);
  std::vector<Row> rows;
  std::mutex mu;
  auto stats = exec.Execute([&rows, &mu](const Row& r) {
    std::lock_guard<std::mutex> lock(mu);
    rows.push_back(r);
  });
  ASSERT_TRUE(stats.ok()) << stats.status();

  EXPECT_EQ(stats->rows_out, rows.size());
  EXPECT_GE(stats->parallel_workers, 1u);
  EXPECT_LE(stats->parallel_workers, 4u);
  EXPECT_GT(stats->morsels, 1u) << "morsel_size=8 must split the scan";
  EXPECT_GT(stats->monitor_folds, 0u);

  ASSERT_EQ(exec.worker_stats().size(), 4u);
  uint64_t worker_rows = 0;
  uint64_t worker_morsels = 0;
  for (const ExecStats& ws : exec.worker_stats()) {
    worker_rows += ws.rows_out;
    worker_morsels += ws.morsels;
  }
  EXPECT_EQ(worker_rows, stats->rows_out);
  EXPECT_EQ(worker_morsels, stats->morsels);
}

// The point of the shared coordinator: merged-statistics checks still
// produce driving switches on the misestimated templates, and the
// switched runs remain exact. Mirrors adaptive_behavior_test's
// DrivingSwitchesActuallyOccurAcrossTheMix at dop = 4.
TEST_F(ParallelExecutorTest, DrivingSwitchesOccurUnderMergedStatistics) {
  DmvQueryGenerator gen(catalog_);
  uint64_t switches = 0;
  for (int t = 1; t <= kNumFourTableTemplates; ++t) {
    for (size_t v = 0; v < 4; ++v) {
      auto q = gen.Generate(t, v);
      ASSERT_TRUE(q.ok()) << q.status();
      auto plan = Plan(*q);
      ASSERT_TRUE(plan.ok()) << plan.status();
      std::vector<Row> expected = Reference(*q);

      ParallelExecOptions parallel;
      parallel.dop = 4;
      parallel.morsel_size = 8;   // frequent barriers: switches can land
      parallel.fold_interval = 1; // fold after every morsel
      std::vector<Row> rows;
      ExecStats stats =
          RunParallel(plan->get(), Strict(), parallel, &rows);
      SortRows(&rows);
      ASSERT_EQ(rows, expected) << "T" << t << " v" << v << " diverged after "
                                << stats.driving_switches << " switches";
      switches += stats.driving_switches;
    }
  }
  EXPECT_GT(switches, 0u)
      << "no parallel run ever switched its driving leg; the coordinator "
         "checks are vacuous";
}

// The MorselDriver must dispense the promoted scan exactly once: the
// concatenation of small morsels equals one giant morsel, in order.
TEST_F(ParallelExecutorTest, MorselDriverDispensesScanExactlyOnce) {
  DmvQueryGenerator gen(catalog_);
  auto q = gen.Generate(2, 0);
  ASSERT_TRUE(q.ok()) << q.status();
  auto plan = Plan(*q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const size_t t0 = (*plan)->initial_order[0];

  auto drain = [&](size_t morsel_size) {
    MorselDriver driver(plan->get(), morsel_size, /*record_positions=*/false);
    EXPECT_TRUE(driver.Promote(t0).ok());
    std::vector<Rid> rids;
    ParallelMorsel m;
    while (driver.Fill(&m, /*worker=*/0)) {
      EXPECT_LE(m.rids.size(), morsel_size);
      rids.insert(rids.end(), m.rids.begin(), m.rids.end());
      EXPECT_TRUE(driver.high_water().has_value());
    }
    EXPECT_EQ(driver.dispensed_entries(t0),
              static_cast<double>(rids.size()));
    return rids;
  };

  std::vector<Rid> small = drain(3);
  std::vector<Rid> large = drain(1u << 20);
  EXPECT_EQ(small, large);
  EXPECT_FALSE(small.empty());
  std::set<Rid> unique(small.begin(), small.end());
  EXPECT_EQ(unique.size(), small.size()) << "dispenser duplicated an entry";
}

// A lease on a fully busy pool must revoke its tasks and return without
// deadlock (the caller then runs as the only worker); on an idle pool the
// tasks actually run.
TEST_F(ParallelExecutorTest, WorkerLeaseDegradesOnBusyPoolAndRunsOnIdle) {
  // Busy pool: its single thread is parked on a gate, so no lease task
  // can start; Finish() must revoke all of them and return immediately.
  {
    ThreadPool pool(1);
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    });
    std::atomic<int> ran{0};
    {
      WorkerLease lease(&pool, 3, [&](size_t) { ran.fetch_add(1); });
      lease.Finish();
      EXPECT_EQ(lease.started(), 0u);
    }
    EXPECT_EQ(ran.load(), 0);
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    pool.Shutdown();
    EXPECT_EQ(ran.load(), 0) << "revoked task ran after Finish()";
  }
  // Idle pool: both tasks start (2 threads, 2 tasks), Finish waits for
  // them, started() reports the truth.
  {
    ThreadPool pool(2);
    std::mutex mu;
    std::condition_variable cv;
    size_t running = 0;
    bool release = false;
    std::atomic<int> ran{0};
    WorkerLease lease(&pool, 2, [&](size_t) {
      {
        std::unique_lock<std::mutex> lock(mu);
        ++running;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
      }
      ran.fetch_add(1);
    });
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return running == 2; });
      release = true;
    }
    cv.notify_all();
    lease.Finish();
    EXPECT_EQ(lease.started(), 2u);
    EXPECT_EQ(ran.load(), 2);
    pool.Shutdown();
  }
}

// Per-worker invariant checkers through the public observer hook: I1-I5
// hold on every worker pipeline, and no RID tuple is emitted by two
// workers (the cross-worker half of Sec 4.2's duplicate prevention).
TEST_F(ParallelExecutorTest, PerWorkerInvariantsAndCrossWorkerUniqueness) {
  DmvQueryGenerator gen(catalog_);
  auto q = gen.Generate(4, 0);  // the paper's degradation template
  ASSERT_TRUE(q.ok()) << q.status();
  auto plan = Plan(*q);
  ASSERT_TRUE(plan.ok()) << plan.status();

  std::vector<size_t> cards;
  for (const TableEntry* entry : (*plan)->entries) {
    cards.push_back(entry->table().num_rows());
  }

  constexpr size_t kDop = 4;
  std::vector<std::unique_ptr<testing::InvariantChecker>> checkers;
  std::vector<ExecObserver*> observers;
  for (size_t w = 0; w < kDop; ++w) {
    checkers.push_back(std::make_unique<testing::InvariantChecker>(cards));
    observers.push_back(checkers.back().get());
  }

  ParallelExecOptions parallel;
  parallel.dop = kDop;
  parallel.morsel_size = 8;
  parallel.fold_interval = 1;
  ParallelPipelineExecutor exec(plan->get(),
                                testing::AggressiveAdaptiveOptions(),
                                parallel);
  exec.set_worker_observers(observers);
  auto stats = exec.Execute(nullptr);
  ASSERT_TRUE(stats.ok()) << stats.status();

  std::set<std::string> all_keys;
  size_t emitted_total = 0;
  for (size_t w = 0; w < kDop; ++w) {
    checkers[w]->FinalCheck(exec.worker_stats()[w]);
    for (const std::string& v : checkers[w]->violations()) {
      ADD_FAILURE() << "worker " << w << ": " << v;
    }
    all_keys.insert(checkers[w]->emitted_keys().begin(),
                    checkers[w]->emitted_keys().end());
    emitted_total += checkers[w]->emitted_keys().size();
  }
  EXPECT_EQ(all_keys.size(), emitted_total)
      << "two workers emitted the same RID tuple";
  EXPECT_EQ(stats->rows_out, all_keys.size());
}

}  // namespace
}  // namespace ajr

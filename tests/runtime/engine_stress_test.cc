// Concurrency stress for the runtime, built to run under ThreadSanitizer
// (cmake -DAJR_SANITIZE=thread, then `ctest -L stress`). Registered with
// the CTest label "stress".
//
// The tests hammer the shared surfaces from many threads at once:
// submitters racing the worker pool, cancellations racing execution and
// completion, handles polled while their queries run, and the thread pool's
// submit/shutdown edge. Assertions are deliberately coarse — terminal
// status is one of the allowed three, OK results match the serial oracle —
// because the point is the interleavings TSan observes, not new functional
// coverage.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "runtime/query_engine.h"
#include "runtime/thread_pool.h"
#include "workload/dmv.h"
#include "workload/templates.h"

namespace ajr {
namespace {

QueryEngineOptions Workers(size_t n) {
  QueryEngineOptions options;
  options.num_workers = n;
  return options;
}

class EngineStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    DmvConfig config;
    config.num_owners = 1500;  // small: TSan multiplies runtimes ~10x
    ASSERT_TRUE(GenerateDmv(catalog_, config).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  static Catalog* catalog_;
};

Catalog* EngineStressTest::catalog_ = nullptr;

TEST_F(EngineStressTest, ThreadPoolRunsEveryTaskExactlyOnce) {
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 500;
  ThreadPool pool(4);
  Counter executed;
  std::atomic<int> rejected{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kTasksEach; ++i) {
        if (!pool.Submit([&executed] { executed.Add(); })) rejected.fetch_add(1);
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.Shutdown();  // drains the queue before joining
  EXPECT_EQ(executed.value() + static_cast<uint64_t>(rejected.load()),
            kSubmitters * kTasksEach);
  EXPECT_EQ(rejected.load(), 0) << "no Shutdown ran concurrently: nothing rejected";
  // After shutdown every submit is refused.
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST_F(EngineStressTest, ConcurrentSubmittersWithRacingCancellations) {
  // Serial oracle for every (template, variant) the stress uses.
  DmvQueryGenerator gen(catalog_);
  Planner planner(catalog_);
  constexpr size_t kVariants = 4;
  uint64_t serial_rows[kNumFourTableTemplates + 1][kVariants];
  for (int t = 1; t <= kNumFourTableTemplates; ++t) {
    for (size_t v = 0; v < kVariants; ++v) {
      auto q = gen.Generate(t, v);
      ASSERT_TRUE(q.ok()) << q.status();
      auto plan = planner.Plan(*q);
      ASSERT_TRUE(plan.ok()) << plan.status();
      PipelineExecutor exec(plan->get());
      auto stats = exec.Execute(nullptr);
      ASSERT_TRUE(stats.ok()) << stats.status();
      serial_rows[t][v] = stats->rows_out;
    }
  }

  MetricsRegistry metrics;
  QueryEngineOptions options;
  options.num_workers = 4;
  options.metrics = &metrics;
  QueryEngine engine(catalog_, options);

  constexpr int kSubmitters = 4;
  constexpr int kQueriesEach = 15;
  std::atomic<uint64_t> ok_queries{0}, stopped_queries{0}, mismatches{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      DmvQueryGenerator local_gen(catalog_);
      for (int i = 0; i < kQueriesEach; ++i) {
        int template_id = 1 + (s + i) % kNumFourTableTemplates;
        size_t variant = static_cast<size_t>(i) % kVariants;
        auto q = local_gen.Generate(template_id, variant);
        ASSERT_TRUE(q.ok());
        QuerySpec spec;
        spec.query = *q;
        if (i % 5 == 3) spec.timeout = std::chrono::milliseconds(1);
        auto handle = engine.Submit(std::move(spec));
        ASSERT_TRUE(handle.ok()) << handle.status();
        // Every third query: cancel from the submitter, racing execution.
        if (i % 3 == 0) handle->Cancel();
        const QueryResult& result = handle->Wait();
        switch (result.status.code()) {
          case StatusCode::kOk:
            ok_queries.fetch_add(1);
            if (result.stats.rows_out != serial_rows[template_id][variant]) {
              mismatches.fetch_add(1);
            }
            break;
          case StatusCode::kCancelled:
          case StatusCode::kDeadlineExceeded:
            stopped_queries.fetch_add(1);
            break;
          default:
            ADD_FAILURE() << "unexpected status: " << result.status;
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  engine.Shutdown();

  EXPECT_EQ(mismatches.load(), 0u)
      << "OK queries must produce exactly the serial row counts";
  EXPECT_EQ(ok_queries.load() + stopped_queries.load(),
            static_cast<uint64_t>(kSubmitters * kQueriesEach));
  // Engine accounting agrees with what the submitters observed.
  EXPECT_EQ(metrics.FindCounter("engine.queries_submitted")->value(),
            static_cast<uint64_t>(kSubmitters * kQueriesEach));
  EXPECT_EQ(metrics.FindCounter("engine.queries_finished")->value(),
            ok_queries.load());
  EXPECT_EQ(metrics.FindCounter("engine.queries_cancelled")->value() +
                metrics.FindCounter("engine.queries_timed_out")->value(),
            stopped_queries.load());
}

TEST_F(EngineStressTest, ManyThreadsPollOneHandle) {
  QueryEngine engine(catalog_, Workers(2));
  DmvQueryGenerator gen(catalog_);
  for (int round = 0; round < 4; ++round) {
    auto q = gen.Generate(1 + round % kNumFourTableTemplates, 0);
    ASSERT_TRUE(q.ok());
    QuerySpec spec;
    spec.query = *q;
    auto handle = engine.Submit(std::move(spec));
    ASSERT_TRUE(handle.ok());
    std::vector<std::thread> pollers;
    for (int p = 0; p < 6; ++p) {
      pollers.emplace_back([h = *handle] {
        // Copies of the handle racing Wait/WaitFor/done/state/Cancel-free
        // reads against the worker publishing the result.
        while (!h.WaitFor(std::chrono::milliseconds(1))) {
          (void)h.done();
          (void)h.state();
        }
        EXPECT_TRUE(h.done());
        EXPECT_TRUE(h.Wait().status.ok()) << h.Wait().status;
      });
    }
    for (auto& t : pollers) t.join();
  }
}

TEST_F(EngineStressTest, ShutdownRacesInFlightQueries) {
  for (int round = 0; round < 8; ++round) {
    QueryEngine engine(catalog_, Workers(2));
    DmvQueryGenerator gen(catalog_);
    std::vector<QueryHandle> handles;
    for (int i = 0; i < 6; ++i) {
      auto q = gen.Generate(1 + i % kNumFourTableTemplates, i);
      ASSERT_TRUE(q.ok());
      QuerySpec spec;
      spec.query = *q;
      auto handle = engine.Submit(std::move(spec));
      ASSERT_TRUE(handle.ok());
      handles.push_back(*handle);
    }
    if (round % 2 == 0) handles[round % 6].Cancel();
    engine.Shutdown();  // races workers mid-query; must drain, not drop
    for (QueryHandle& h : handles) {
      ASSERT_TRUE(h.done());
      StatusCode code = h.Wait().status.code();
      EXPECT_TRUE(code == StatusCode::kOk || code == StatusCode::kCancelled)
          << h.Wait().status;
    }
  }
}

}  // namespace
}  // namespace ajr

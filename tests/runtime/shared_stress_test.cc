// Concurrency stress for the cross-query sharing surfaces, built to run
// under ThreadSanitizer (cmake -DAJR_SANITIZE=thread, `ctest -L stress`).
//
// Concurrent queries with share_scan + share_cache enabled hammer ONE
// engine-owned SharedScanRegistry and ONE striped SharedProbeCache, at
// dop 2 and dop 4, over several generated workloads. The functional
// assertion is the strongest one available: every query's collected row
// multiset equals the brute-force ReferenceExecutor's — sharing may change
// wall time, never results. The interleavings TSan observes (cooperative
// pass production, circular attach/detach, stripe lock traffic) are the
// actual point.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "exec/reference_executor.h"
#include "runtime/query_engine.h"
#include "testing/workload_gen.h"

namespace ajr {
namespace {

TEST(SharedStressTest, ConcurrentSharedQueriesMatchReference) {
  // Two submitters per round keep >= 2 queries concurrently attached to the
  // same pass / cache stripes; repeated submissions re-attach warm.
  constexpr int kSubmitters = 2;
  constexpr int kQueriesEach = 4;
  const uint64_t seeds[] = {11, 23, 47};

  for (size_t dop : {size_t{2}, size_t{4}}) {
    for (uint64_t seed : seeds) {
      testing::WorkloadSpec spec = testing::GenerateWorkload(seed);
      auto catalog = spec.Materialize();
      ASSERT_TRUE(catalog.ok()) << catalog.status();
      auto expected = ExecuteReference(**catalog, spec.query);
      ASSERT_TRUE(expected.ok()) << expected.status();
      SortRows(&*expected);

      QueryEngineOptions options;
      options.num_workers = 4;
      QueryEngine engine(catalog->get(), options);
      std::vector<std::thread> submitters;
      for (int s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&] {
          for (int i = 0; i < kQueriesEach; ++i) {
            QuerySpec qs;
            qs.query = spec.query;
            qs.dop = dop;
            qs.morsel_size = 5;  // tiny: many morsels -> much pass traffic
            qs.share_scan = true;
            qs.share_cache = true;
            qs.collect_rows = true;
            auto handle = engine.Submit(std::move(qs));
            ASSERT_TRUE(handle.ok()) << handle.status();
            const QueryResult& result = handle->Wait();
            ASSERT_TRUE(result.status.ok()) << result.status;
            std::vector<Row> rows = result.rows;
            SortRows(&rows);
            EXPECT_EQ(rows == *expected, true)
                << "seed " << seed << " dop " << dop << ": shared run rows ("
                << rows.size() << ") diverge from reference ("
                << expected->size() << ")";
          }
        });
      }
      for (std::thread& t : submitters) t.join();
      engine.Shutdown();
    }
  }
}

}  // namespace
}  // namespace ajr

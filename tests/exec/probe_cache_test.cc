#include "exec/probe_cache.h"

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"

namespace ajr {
namespace {

std::vector<Rid> Rids(std::initializer_list<Rid> rids) { return rids; }

TEST(ProbeCacheTest, InsertLookupRoundtrip) {
  ProbeCache cache(4);
  EXPECT_EQ(cache.Lookup(IndexKey::Int64(7), 0), nullptr);
  cache.Insert(IndexKey::Int64(7), 0, Rids({10, 11, 12}), 3, 42);
  const ProbeCache::Result* r = cache.Lookup(IndexKey::Int64(7), 0);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->matches, Rids({10, 11, 12}));
  EXPECT_EQ(r->fetched, 3u);
  EXPECT_EQ(r->work_units, 42u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ProbeCacheTest, EpochIsPartOfTheKey) {
  ProbeCache cache(4);
  cache.Insert(IndexKey::Int64(7), 0, Rids({1}), 1, 10);
  EXPECT_EQ(cache.Lookup(IndexKey::Int64(7), 1), nullptr)
      << "entry from epoch 0 visible at epoch 1";
  cache.Insert(IndexKey::Int64(7), 1, Rids({2}), 1, 20);
  ASSERT_NE(cache.Lookup(IndexKey::Int64(7), 0), nullptr);
  EXPECT_EQ(cache.Lookup(IndexKey::Int64(7), 0)->matches, Rids({1}));
  EXPECT_EQ(cache.Lookup(IndexKey::Int64(7), 1)->matches, Rids({2}));
}

TEST(ProbeCacheTest, LruEvictionOrder) {
  ProbeCache cache(3);
  cache.Insert(IndexKey::Int64(1), 0, Rids({1}), 1, 1);
  cache.Insert(IndexKey::Int64(2), 0, Rids({2}), 1, 1);
  cache.Insert(IndexKey::Int64(3), 0, Rids({3}), 1, 1);
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_NE(cache.Lookup(IndexKey::Int64(1), 0), nullptr);
  cache.Insert(IndexKey::Int64(4), 0, Rids({4}), 1, 1);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_NE(cache.Lookup(IndexKey::Int64(1), 0), nullptr);
  EXPECT_EQ(cache.Lookup(IndexKey::Int64(2), 0), nullptr) << "LRU not evicted";
  EXPECT_NE(cache.Lookup(IndexKey::Int64(3), 0), nullptr);
  EXPECT_NE(cache.Lookup(IndexKey::Int64(4), 0), nullptr);
}

TEST(ProbeCacheTest, CapacityZeroDisables) {
  ProbeCache cache(0);
  cache.Insert(IndexKey::Int64(1), 0, Rids({1}), 1, 1);
  EXPECT_EQ(cache.Lookup(IndexKey::Int64(1), 0), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  cache.Clear();
}

TEST(ProbeCacheTest, OversizedEntriesAreNotCached) {
  ProbeCache cache(4);
  std::vector<Rid> huge(ProbeCache::kMaxMatchesPerEntry + 1, 1);
  cache.Insert(IndexKey::Int64(1), 0, huge, huge.size(), 1);
  EXPECT_EQ(cache.Lookup(IndexKey::Int64(1), 0), nullptr);
  std::vector<Rid> max(ProbeCache::kMaxMatchesPerEntry, 1);
  cache.Insert(IndexKey::Int64(2), 0, max, max.size(), 1);
  EXPECT_NE(cache.Lookup(IndexKey::Int64(2), 0), nullptr);
}

TEST(ProbeCacheTest, StringKeysOwnTheirBytes) {
  ProbeCache cache(4);
  {
    std::string transient = "hello_world_key";
    cache.Insert(IndexKey::String(transient), 0, Rids({5}), 1, 7);
    transient.assign("scribbled_over!");
  }
  std::string probe = "hello_world_key";
  const ProbeCache::Result* r = cache.Lookup(IndexKey::String(probe), 0);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->matches, Rids({5}));
  // Same bytes, different type identity: an int64 key never matches.
  EXPECT_EQ(cache.Lookup(IndexKey::Int64(5), 0), nullptr);
}

TEST(ProbeCacheTest, ReinsertRefreshesValueAndRecency) {
  ProbeCache cache(2);
  cache.Insert(IndexKey::Int64(1), 0, Rids({1}), 1, 1);
  cache.Insert(IndexKey::Int64(2), 0, Rids({2}), 1, 1);
  cache.Insert(IndexKey::Int64(1), 0, Rids({10, 11}), 2, 9);
  EXPECT_EQ(cache.size(), 2u);
  const ProbeCache::Result* r = cache.Lookup(IndexKey::Int64(1), 0);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->matches, Rids({10, 11}));
  EXPECT_EQ(r->work_units, 9u);
  // 2 is now the LRU entry.
  cache.Insert(IndexKey::Int64(3), 0, Rids({3}), 1, 1);
  EXPECT_EQ(cache.Lookup(IndexKey::Int64(2), 0), nullptr);
}

TEST(ProbeCacheTest, ClearEmptiesButKeepsWorking) {
  ProbeCache cache(4);
  for (int64_t k = 0; k < 4; ++k) {
    cache.Insert(IndexKey::Int64(k), 0, Rids({static_cast<Rid>(k)}), 1, 1);
  }
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  for (int64_t k = 0; k < 4; ++k) {
    EXPECT_EQ(cache.Lookup(IndexKey::Int64(k), 0), nullptr);
  }
  cache.Insert(IndexKey::Int64(9), 0, Rids({9}), 1, 1);
  ASSERT_NE(cache.Lookup(IndexKey::Int64(9), 0), nullptr);
}

// Model check: the flat slot-array + open-addressed index + intrusive LRU
// must behave exactly like the obvious map + recency list over long random
// op sequences (the backward-shift deletion and in-place victim recycling
// are where subtle bugs would live).
TEST(ProbeCacheTest, MatchesReferenceModelUnderChurn) {
  Rng rng(20070402);
  for (size_t capacity : {1u, 2u, 3u, 8u, 17u}) {
    ProbeCache cache(capacity);
    std::list<std::pair<int64_t, uint32_t>> lru;  // front = most recent
    std::map<std::pair<int64_t, uint32_t>, std::vector<Rid>> model;
    auto model_touch = [&](std::pair<int64_t, uint32_t> k) {
      for (auto it = lru.begin(); it != lru.end(); ++it) {
        if (*it == k) {
          lru.erase(it);
          break;
        }
      }
      lru.push_front(k);
    };
    for (int op = 0; op < 4000; ++op) {
      std::pair<int64_t, uint32_t> k = {
          rng.NextInt64(0, static_cast<int64_t>(capacity) * 3),
          static_cast<uint32_t>(rng.NextInt64(0, 1))};
      IndexKey key = IndexKey::Int64(k.first);
      if (rng.NextBool(0.5)) {
        const ProbeCache::Result* got = cache.Lookup(key, k.second);
        auto it = model.find(k);
        if (it == model.end()) {
          ASSERT_EQ(got, nullptr) << "op " << op << ": phantom hit";
        } else {
          ASSERT_NE(got, nullptr) << "op " << op << ": lost entry";
          ASSERT_EQ(got->matches, it->second) << "op " << op;
          model_touch(k);
        }
      } else {
        std::vector<Rid> matches(static_cast<size_t>(rng.NextInt64(0, 4)),
                                 static_cast<Rid>(op));
        cache.Insert(key, k.second, matches, matches.size(), static_cast<uint64_t>(op));
        if (model.count(k) == 0 && model.size() == capacity) {
          model.erase(lru.back());
          lru.pop_back();
        }
        model[k] = matches;
        model_touch(k);
      }
      ASSERT_EQ(cache.size(), model.size()) << "op " << op;
    }
  }
}

}  // namespace
}  // namespace ajr

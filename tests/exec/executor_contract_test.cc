// Executor API contracts: the single-use rule, cancellation/deadline status
// surfacing, and the driving-check back-off schedule observed end to end.

#include <gtest/gtest.h>

#include <chrono>

#include "adaptive/controller.h"
#include "common/cancellation.h"
#include "exec/pipeline_executor.h"
#include "workload/dmv.h"
#include "workload/templates.h"

namespace ajr {
namespace {

class ExecutorContractTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    DmvConfig config;
    config.num_owners = 3000;
    ASSERT_TRUE(GenerateDmv(catalog_, config).ok());
    planner_ = new Planner(catalog_);
  }
  static void TearDownTestSuite() {
    delete planner_;
    delete catalog_;
    catalog_ = nullptr;
    planner_ = nullptr;
  }

  static std::unique_ptr<PipelinePlan> Plan(const JoinQuery& q) {
    auto plan = planner_->Plan(q);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return plan.ok() ? std::move(*plan) : nullptr;
  }

  static Catalog* catalog_;
  static Planner* planner_;
};

Catalog* ExecutorContractTest::catalog_ = nullptr;
Planner* ExecutorContractTest::planner_ = nullptr;

// ------------------------------------------------------------- single-use

TEST_F(ExecutorContractTest, SecondExecuteReturnsInternalError) {
  auto plan = Plan(DmvQueryGenerator::Example1());
  ASSERT_NE(plan, nullptr);
  PipelineExecutor exec(plan.get());
  auto first = exec.Execute(nullptr);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = exec.Execute(nullptr);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kInternal);
  EXPECT_NE(second.status().message().find("single-use"), std::string::npos)
      << second.status();
}

TEST_F(ExecutorContractTest, SingleUseHoldsEvenAfterAnEarlyStop) {
  // A run terminated by cancellation still consumes the executor.
  auto plan = Plan(DmvQueryGenerator::Example1());
  ASSERT_NE(plan, nullptr);
  CancellationToken token;
  token.Cancel();
  PipelineExecutor exec(plan.get());
  exec.set_cancellation_token(&token);
  EXPECT_EQ(exec.Execute(nullptr).status().code(), StatusCode::kCancelled);
  EXPECT_EQ(exec.Execute(nullptr).status().code(), StatusCode::kInternal);
}

// ------------------------------------------------- cancellation & deadline

TEST_F(ExecutorContractTest, PreCancelledTokenStopsBeforeAnyRow) {
  auto plan = Plan(DmvQueryGenerator::Example1());
  ASSERT_NE(plan, nullptr);
  CancellationToken token;
  token.Cancel();
  PipelineExecutor exec(plan.get());
  exec.set_cancellation_token(&token);
  size_t rows = 0;
  auto stats = exec.Execute([&rows](const Row&) { ++rows; });
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(rows, 0u);
}

TEST_F(ExecutorContractTest, ExpiredDeadlineSurfacesDeadlineExceeded) {
  auto plan = Plan(DmvQueryGenerator::Example1());
  ASSERT_NE(plan, nullptr);
  CancellationToken token;
  token.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  PipelineExecutor exec(plan.get());
  exec.set_cancellation_token(&token);
  auto stats = exec.Execute(nullptr);
  ASSERT_FALSE(stats.ok());
  // Distinct from kCancelled: callers must be able to tell the two apart.
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ExecutorContractTest, NullTokenRunsToCompletion) {
  auto plan = Plan(DmvQueryGenerator::Example1());
  ASSERT_NE(plan, nullptr);
  PipelineExecutor exec(plan.get());
  exec.set_cancellation_token(nullptr);
  EXPECT_TRUE(exec.Execute(nullptr).ok());
}

// --------------------------------------------------- back-off integration

// Mirror of the executor's level-0 check cadence: a check fires when
// `interval()` rows were produced since the last check, and one trailing
// opportunity exists between the final row and scan depletion.
uint64_t SimulateDrivingChecks(uint64_t rows_produced, uint64_t c, bool backoff) {
  CheckBackoff b(c, backoff);
  uint64_t produced = 0;
  uint64_t checks = 0;
  for (uint64_t r = 0; r < rows_produced; ++r) {
    if (produced >= b.interval()) {
      ++checks;
      produced = 0;
      b.OnUnproductiveCheck();
    }
    ++produced;
  }
  if (produced >= b.interval()) ++checks;
  return checks;
}

TEST_F(ExecutorContractTest, DrivingCheckCadenceMatchesBackoffSchedule) {
  // Threshold so high that no switch can ever fire: every check is
  // unproductive, so stats.driving_checks must equal the pure schedule.
  for (bool backoff : {false, true}) {
    AdaptiveOptions options;
    options.reorder_inners = false;
    options.reorder_driving = true;
    options.check_frequency = 10;
    options.check_backoff = backoff;
    options.switch_benefit_threshold = 1e18;

    auto plan = Plan(DmvQueryGenerator::Example1());
    ASSERT_NE(plan, nullptr);
    PipelineExecutor exec(plan.get(), options);
    auto stats = exec.Execute(nullptr);
    ASSERT_TRUE(stats.ok()) << stats.status();
    ASSERT_EQ(stats->driving_switches, 0u);
    ASSERT_GT(stats->driving_rows_produced, 100u)
        << "query too small to exercise the schedule";
    EXPECT_EQ(stats->driving_checks,
              SimulateDrivingChecks(stats->driving_rows_produced, 10, backoff))
        << "backoff=" << backoff;
  }
}

TEST_F(ExecutorContractTest, BackoffReducesCheckCountOnStableRuns) {
  ExecStats fixed, backed_off;
  for (bool backoff : {false, true}) {
    AdaptiveOptions options;
    options.reorder_inners = false;
    options.reorder_driving = true;
    options.check_frequency = 10;
    options.check_backoff = backoff;
    options.switch_benefit_threshold = 1e18;
    auto plan = Plan(DmvQueryGenerator::Example1());
    ASSERT_NE(plan, nullptr);
    PipelineExecutor exec(plan.get(), options);
    auto stats = exec.Execute(nullptr);
    ASSERT_TRUE(stats.ok()) << stats.status();
    (backoff ? backed_off : fixed) = *stats;
  }
  // Same work, far fewer checks.
  EXPECT_EQ(backed_off.rows_out, fixed.rows_out);
  EXPECT_EQ(backed_off.driving_rows_produced, fixed.driving_rows_produced);
  EXPECT_LT(backed_off.driving_checks, fixed.driving_checks / 2);
}

}  // namespace
}  // namespace ajr

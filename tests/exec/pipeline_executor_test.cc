#include "exec/pipeline_executor.h"

#include <gtest/gtest.h>

#include "exec/reference_executor.h"
#include "workload/dmv.h"
#include "workload/templates.h"

namespace ajr {
namespace {

class PipelineExecutorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    DmvConfig config;
    config.num_owners = 3000;
    ASSERT_TRUE(GenerateDmv(catalog_, config).ok());
    planner_ = new Planner(catalog_);
  }
  static void TearDownTestSuite() {
    delete planner_;
    delete catalog_;
    catalog_ = nullptr;
    planner_ = nullptr;
  }

  static std::vector<Row> RunPipeline(const JoinQuery& q, AdaptiveOptions options,
                                      ExecStats* stats_out = nullptr) {
    auto plan = planner_->Plan(q);
    EXPECT_TRUE(plan.ok()) << plan.status();
    PipelineExecutor exec(plan->get(), options);
    std::vector<Row> rows;
    auto stats = exec.Execute([&rows](const Row& r) { rows.push_back(r); });
    EXPECT_TRUE(stats.ok()) << stats.status();
    if (stats_out != nullptr && stats.ok()) *stats_out = *stats;
    SortRows(&rows);
    return rows;
  }

  static std::vector<Row> RunReference(const JoinQuery& q) {
    auto rows = ExecuteReference(*catalog_, q);
    EXPECT_TRUE(rows.ok()) << rows.status();
    std::vector<Row> out = rows.ok() ? *rows : std::vector<Row>{};
    SortRows(&out);
    return out;
  }

  static AdaptiveOptions Static() {
    AdaptiveOptions o;
    o.reorder_inners = false;
    o.reorder_driving = false;
    return o;
  }

  static AdaptiveOptions Aggressive() {
    // Check after every row, no hysteresis, tiny window: maximizes the
    // number of switches, which is exactly what the duplicate/loss property
    // tests want to stress.
    AdaptiveOptions o;
    o.check_frequency = 1;
    o.switch_benefit_threshold = 1.0;
    o.history_window = 8;
    o.min_edge_pairs = 1;
    o.min_leg_samples = 1;
    return o;
  }

  static Catalog* catalog_;
  static Planner* planner_;
};

Catalog* PipelineExecutorTest::catalog_ = nullptr;
Planner* PipelineExecutorTest::planner_ = nullptr;

TEST_F(PipelineExecutorTest, StaticMatchesReferenceOnExample1) {
  JoinQuery q = DmvQueryGenerator::Example1();
  auto expected = RunReference(q);
  auto got = RunPipeline(q, Static());
  EXPECT_EQ(got, expected);
  EXPECT_FALSE(expected.empty()) << "query should match some rows at this scale";
}

TEST_F(PipelineExecutorTest, StaticMatchesReferenceOnExample2) {
  JoinQuery q = DmvQueryGenerator::Example2();
  EXPECT_EQ(RunPipeline(q, Static()), RunReference(q));
}

TEST_F(PipelineExecutorTest, StaticMatchesReferenceOnExample3) {
  JoinQuery q = DmvQueryGenerator::Example3();
  EXPECT_EQ(RunPipeline(q, Static()), RunReference(q));
}

TEST_F(PipelineExecutorTest, AdaptiveMatchesReferenceOnExamples) {
  for (const JoinQuery& q :
       {DmvQueryGenerator::Example1(), DmvQueryGenerator::Example2(),
        DmvQueryGenerator::Example3()}) {
    ExecStats stats;
    auto got = RunPipeline(q, Aggressive(), &stats);
    EXPECT_EQ(got, RunReference(q)) << q.name;
    EXPECT_EQ(stats.rows_out, got.size());
  }
}

// The headline no-duplicates / no-losses property: under the most
// switch-happy configuration, every template instance must produce exactly
// the reference multiset.
class TemplateOracleSweep : public PipelineExecutorTest,
                            public ::testing::WithParamInterface<int> {};

TEST_P(TemplateOracleSweep, AggressiveAdaptiveMatchesReference) {
  DmvQueryGenerator gen(catalog_);
  for (size_t variant = 0; variant < 6; ++variant) {
    auto q = gen.Generate(GetParam(), variant);
    ASSERT_TRUE(q.ok()) << q.status();
    auto expected = RunReference(*q);
    ExecStats stats;
    auto got = RunPipeline(*q, Aggressive(), &stats);
    EXPECT_EQ(got, expected) << q->name << ": " << q->ToString();
    // Also the static plan must agree.
    auto static_rows = RunPipeline(*q, Static());
    EXPECT_EQ(static_rows, expected) << q->name;
  }
}

INSTANTIATE_TEST_SUITE_P(Templates, TemplateOracleSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST_F(PipelineExecutorTest, SixTableAdaptiveMatchesReference) {
  DmvQueryGenerator gen(catalog_);
  for (int t = 1; t <= kNumSixTableTemplates; ++t) {
    auto q = gen.GenerateSixTable(t, 0);
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(RunPipeline(*q, Aggressive()), RunReference(*q)) << q->name;
  }
}

TEST_F(PipelineExecutorTest, InnerOnlyAndDrivingOnlyModesMatchReference) {
  DmvQueryGenerator gen(catalog_);
  auto q = gen.Generate(1, 2);
  ASSERT_TRUE(q.ok());
  auto expected = RunReference(*q);

  AdaptiveOptions inner_only = Aggressive();
  inner_only.reorder_driving = false;
  EXPECT_EQ(RunPipeline(*q, inner_only), expected);

  AdaptiveOptions driving_only = Aggressive();
  driving_only.reorder_inners = false;
  EXPECT_EQ(RunPipeline(*q, driving_only), expected);
}

TEST_F(PipelineExecutorTest, StatsAreConsistent) {
  JoinQuery q = DmvQueryGenerator::Example1();
  ExecStats stats;
  auto rows = RunPipeline(q, Aggressive(), &stats);
  EXPECT_EQ(stats.rows_out, rows.size());
  EXPECT_GT(stats.work_units, 0u);
  EXPECT_GT(stats.driving_rows_produced, 0u);
  ASSERT_EQ(stats.initial_order.size(), 4u);
  ASSERT_EQ(stats.final_order.size(), 4u);
  EXPECT_GE(stats.inner_checks, stats.inner_reorders);
  EXPECT_GE(stats.driving_checks, stats.driving_switches);
  EXPECT_EQ(stats.order_switches(), stats.inner_reorders + stats.driving_switches);
}

TEST_F(PipelineExecutorTest, StaticModeNeverSwitches) {
  JoinQuery q = DmvQueryGenerator::Example1();
  ExecStats stats;
  RunPipeline(q, Static(), &stats);
  EXPECT_EQ(stats.inner_checks, 0u);
  EXPECT_EQ(stats.driving_checks, 0u);
  EXPECT_EQ(stats.inner_reorders, 0u);
  EXPECT_EQ(stats.driving_switches, 0u);
  EXPECT_EQ(stats.initial_order, stats.final_order);
}

TEST_F(PipelineExecutorTest, DeterministicAcrossRuns) {
  DmvQueryGenerator gen(catalog_);
  auto q = gen.Generate(3, 1);
  ASSERT_TRUE(q.ok());
  ExecStats a, b;
  auto rows_a = RunPipeline(*q, Aggressive(), &a);
  auto rows_b = RunPipeline(*q, Aggressive(), &b);
  EXPECT_EQ(rows_a, rows_b);
  EXPECT_EQ(a.work_units, b.work_units);
  EXPECT_EQ(a.inner_reorders, b.inner_reorders);
  EXPECT_EQ(a.driving_switches, b.driving_switches);
  EXPECT_EQ(a.final_order, b.final_order);
}

TEST_F(PipelineExecutorTest, TwoTableQueryWorks) {
  JoinQuery q = DmvQueryGenerator::Example2();
  ExecStats stats;
  auto rows = RunPipeline(q, Aggressive(), &stats);
  EXPECT_EQ(rows, RunReference(q));
  ASSERT_EQ(stats.final_order.size(), 2u);
}

TEST_F(PipelineExecutorTest, SingleTableQueryWorks) {
  JoinQuery q;
  q.name = "single";
  q.tables = {{"c", "car"}};
  q.local_predicates = {ColCmp("make", CompareOp::kEq, Value("Mazda"))};
  q.output = {{0, "model"}};
  auto expected = RunReference(q);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(RunPipeline(q, Aggressive()), expected);
}

TEST_F(PipelineExecutorTest, EmptyResultQueryWorks) {
  JoinQuery q = DmvQueryGenerator::Example1();
  q.local_predicates[0] = ColCmp("country1", CompareOp::kEq, Value("Atlantis"));
  EXPECT_TRUE(RunPipeline(q, Aggressive()).empty());
  EXPECT_TRUE(RunReference(q).empty());
}

TEST_F(PipelineExecutorTest, NullSinkCountsRows) {
  auto plan = planner_->Plan(DmvQueryGenerator::Example1());
  ASSERT_TRUE(plan.ok());
  PipelineExecutor exec(plan->get(), Static());
  auto stats = exec.Execute(nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_out, RunReference(DmvQueryGenerator::Example1()).size());
}

TEST_F(PipelineExecutorTest, ExecutorIsSingleUse) {
  auto plan = planner_->Plan(DmvQueryGenerator::Example2());
  ASSERT_TRUE(plan.ok());
  PipelineExecutor exec(plan->get(), Static());
  ASSERT_TRUE(exec.Execute(nullptr).ok());
  EXPECT_FALSE(exec.Execute(nullptr).ok());
}

// Window-size sweep at aggressive checking: correctness must hold for any w.
class WindowSweep : public PipelineExecutorTest,
                    public ::testing::WithParamInterface<size_t> {};

TEST_P(WindowSweep, CorrectUnderAnyWindowSize) {
  DmvQueryGenerator gen(catalog_);
  auto q = gen.Generate(1, 0);
  ASSERT_TRUE(q.ok());
  AdaptiveOptions o = Aggressive();
  o.history_window = GetParam();
  EXPECT_EQ(RunPipeline(*q, o), RunReference(*q));
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(1u, 2u, 10u, 100u, 1000u));

// ---- Batched probes & memoization ------------------------------------------
//
// Batching, hinted descent, and the probe cache are execution strategies:
// every stat the adaptive controller can observe must be bit-identical to
// per-row execution, under every adaptation mode.

namespace {

AdaptiveOptions WithProbes(AdaptiveOptions o, size_t batch, size_t cache) {
  o.probe_batch_size = batch;
  o.probe_cache_entries = cache;
  return o;
}

void ExpectSameLogicalWork(const ExecStats& a, const ExecStats& b,
                           const char* what) {
  EXPECT_EQ(a.work_units, b.work_units) << what;
  EXPECT_EQ(a.rows_out, b.rows_out) << what;
  EXPECT_EQ(a.driving_rows_produced, b.driving_rows_produced) << what;
  EXPECT_EQ(a.inner_checks, b.inner_checks) << what;
  EXPECT_EQ(a.inner_reorders, b.inner_reorders) << what;
  EXPECT_EQ(a.driving_checks, b.driving_checks) << what;
  EXPECT_EQ(a.driving_switches, b.driving_switches) << what;
  EXPECT_EQ(a.final_order, b.final_order) << what;
  EXPECT_EQ(a.events, b.events) << what;
}

}  // namespace

TEST_F(PipelineExecutorTest, BatchedProbesMatchPerRowExecution) {
  DmvQueryGenerator gen(catalog_);
  for (int tmpl : {1, 2, 3, 4, 5}) {
    auto q = gen.Generate(tmpl, 0);
    ASSERT_TRUE(q.ok());
    for (AdaptiveOptions base : {Static(), AdaptiveOptions{}, Aggressive()}) {
      ExecStats per_row, batched, memoized;
      auto rows_per_row = RunPipeline(*q, WithProbes(base, 1, 0), &per_row);
      auto rows_batched = RunPipeline(*q, WithProbes(base, 64, 0), &batched);
      auto rows_memoized = RunPipeline(*q, WithProbes(base, 64, 128), &memoized);
      EXPECT_EQ(rows_batched, rows_per_row) << q->name;
      EXPECT_EQ(rows_memoized, rows_per_row) << q->name;
      ExpectSameLogicalWork(per_row, batched, q->name.c_str());
      ExpectSameLogicalWork(per_row, memoized, q->name.c_str());
      // Per-row execution must not report batch activity.
      EXPECT_EQ(per_row.probe_batches, 0u);
      EXPECT_EQ(per_row.probe_cache_hits + per_row.probe_cache_misses, 0u);
    }
  }
}

TEST_F(PipelineExecutorTest, BatchedProbeStatsArePopulated) {
  JoinQuery q = DmvQueryGenerator::Example1();
  ExecStats stats;
  RunPipeline(q, WithProbes(Aggressive(), 64, 128), &stats);
  EXPECT_GT(stats.probe_batches, 0u);
  EXPECT_GE(stats.probe_batch_keys, stats.probe_batches);
  // Every cache-eligible probe resolves as a hit or a miss; the DMV join
  // keys repeat (many cars per owner), so both sides must show up.
  EXPECT_GT(stats.probe_cache_misses, 0u);
  EXPECT_GT(stats.probe_cache_hits, 0u);
  EXPECT_GE(stats.probe_descents_saved, stats.probe_cache_hits);
}

TEST_F(PipelineExecutorTest, WarmCacheAcrossDemotionMatchesPerRow) {
  // Aggressive driving switches demote and re-promote legs while their
  // caches are warm; the epoch tag plus the positional-predicate bypass
  // must keep results and accounting identical to per-row execution.
  DmvQueryGenerator gen(catalog_);
  for (int tmpl : {2, 4}) {
    for (size_t variant = 0; variant < 3; ++variant) {
      auto q = gen.Generate(tmpl, variant);
      ASSERT_TRUE(q.ok());
      ExecStats per_row, memoized;
      auto rows_per_row = RunPipeline(*q, WithProbes(Aggressive(), 1, 0), &per_row);
      auto rows_memoized = RunPipeline(*q, WithProbes(Aggressive(), 64, 64),
                                       &memoized);
      EXPECT_EQ(rows_memoized, rows_per_row) << q->name;
      ExpectSameLogicalWork(per_row, memoized, q->name.c_str());
    }
  }
}

}  // namespace
}  // namespace ajr

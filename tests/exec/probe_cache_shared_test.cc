#include "exec/probe_cache_shared.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace ajr {
namespace {

std::vector<Rid> Rids(std::initializer_list<Rid> rids) { return rids; }

// Distinct stable "index object" addresses for leg signatures.
int kIndexA, kIndexB;

TEST(SharedProbeCacheTest, InsertLookupRoundtrip) {
  SharedProbeCache cache(/*entries_per_stripe=*/4, /*stripes=*/4);
  const uint64_t sig = SharedProbeCache::LegSignature(&kIndexA, "", 0);
  SharedProbeCache::Result r;
  bool conflict = false;
  EXPECT_FALSE(cache.Lookup(sig, IndexKey::Int64(7), &r, &conflict));
  cache.Insert(sig, IndexKey::Int64(7), Rids({10, 11, 12}), 3, 42, &conflict);
  ASSERT_TRUE(cache.Lookup(sig, IndexKey::Int64(7), &r, &conflict));
  EXPECT_EQ(r.matches, Rids({10, 11, 12}));
  EXPECT_EQ(r.fetched, 3u);
  EXPECT_EQ(r.work_units, 42u);
  EXPECT_FALSE(conflict) << "single-threaded access reported lock contention";
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SharedProbeCacheTest, LegSignatureSeparatesLegs) {
  // Each component of the leg identity — index object, predicate
  // fingerprint, epoch — must produce a distinct result space.
  const uint64_t base = SharedProbeCache::LegSignature(&kIndexA, "x > 1", 0);
  EXPECT_NE(base, SharedProbeCache::LegSignature(&kIndexB, "x > 1", 0));
  EXPECT_NE(base, SharedProbeCache::LegSignature(&kIndexA, "x > 2", 0));
  EXPECT_NE(base, SharedProbeCache::LegSignature(&kIndexA, "x > 1", 1));

  SharedProbeCache cache(4, 4);
  SharedProbeCache::Result r;
  bool conflict = false;
  cache.Insert(base, IndexKey::Int64(1), Rids({1}), 1, 10, &conflict);
  EXPECT_FALSE(cache.Lookup(SharedProbeCache::LegSignature(&kIndexB, "x > 1", 0),
                            IndexKey::Int64(1), &r, &conflict));
  EXPECT_FALSE(cache.Lookup(SharedProbeCache::LegSignature(&kIndexA, "x > 2", 0),
                            IndexKey::Int64(1), &r, &conflict));
  EXPECT_FALSE(cache.Lookup(SharedProbeCache::LegSignature(&kIndexA, "x > 1", 1),
                            IndexKey::Int64(1), &r, &conflict));
  EXPECT_TRUE(cache.Lookup(base, IndexKey::Int64(1), &r, &conflict));
}

TEST(SharedProbeCacheTest, HotKeysSurviveUnrelatedLegDemotion) {
  // Regression: the per-leg ProbeCache's epoch bump retires the WHOLE
  // cache on any demotion. With the epoch folded into the leg signature,
  // demoting leg B must leave leg A's hot entries live — even when they
  // hash into the same stripe (stripes=1 forces that worst case).
  SharedProbeCache cache(/*entries_per_stripe=*/8, /*stripes=*/1);
  const uint64_t leg_a = SharedProbeCache::LegSignature(&kIndexA, "", 0);
  uint64_t leg_b = SharedProbeCache::LegSignature(&kIndexB, "", 0);
  bool conflict = false;
  for (int64_t k = 0; k < 3; ++k) {
    cache.Insert(leg_a, IndexKey::Int64(k), Rids({static_cast<Rid>(k)}), 1, 7,
                 &conflict);
    cache.Insert(leg_b, IndexKey::Int64(k), Rids({static_cast<Rid>(100 + k)}),
                 1, 9, &conflict);
  }

  // Leg B demotes: its epoch bumps, so its signature changes and its old
  // entries become unreachable. Leg A's signature is untouched.
  leg_b = SharedProbeCache::LegSignature(&kIndexB, "", 1);
  SharedProbeCache::Result r;
  for (int64_t k = 0; k < 3; ++k) {
    EXPECT_TRUE(cache.Lookup(leg_a, IndexKey::Int64(k), &r, &conflict))
        << "leg A key " << k << " evicted by leg B's demotion";
    EXPECT_EQ(r.matches, Rids({static_cast<Rid>(k)}));
    EXPECT_FALSE(cache.Lookup(leg_b, IndexKey::Int64(k), &r, &conflict))
        << "leg B key " << k << " visible across its own demotion";
  }
}

TEST(SharedProbeCacheTest, LruEvictionWithinStripe) {
  SharedProbeCache cache(/*entries_per_stripe=*/3, /*stripes=*/1);
  const uint64_t sig = SharedProbeCache::LegSignature(&kIndexA, "", 0);
  SharedProbeCache::Result r;
  bool conflict = false;
  cache.Insert(sig, IndexKey::Int64(1), Rids({1}), 1, 1, &conflict);
  cache.Insert(sig, IndexKey::Int64(2), Rids({2}), 1, 1, &conflict);
  cache.Insert(sig, IndexKey::Int64(3), Rids({3}), 1, 1, &conflict);
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_TRUE(cache.Lookup(sig, IndexKey::Int64(1), &r, &conflict));
  cache.Insert(sig, IndexKey::Int64(4), Rids({4}), 1, 1, &conflict);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.Lookup(sig, IndexKey::Int64(1), &r, &conflict));
  EXPECT_FALSE(cache.Lookup(sig, IndexKey::Int64(2), &r, &conflict))
      << "LRU not evicted";
  EXPECT_TRUE(cache.Lookup(sig, IndexKey::Int64(3), &r, &conflict));
  EXPECT_TRUE(cache.Lookup(sig, IndexKey::Int64(4), &r, &conflict));
}

TEST(SharedProbeCacheTest, CapacityZeroDisables) {
  SharedProbeCache cache(/*entries_per_stripe=*/0, /*stripes=*/4);
  const uint64_t sig = SharedProbeCache::LegSignature(&kIndexA, "", 0);
  SharedProbeCache::Result r;
  bool conflict = false;
  cache.Insert(sig, IndexKey::Int64(1), Rids({1}), 1, 1, &conflict);
  EXPECT_FALSE(cache.Lookup(sig, IndexKey::Int64(1), &r, &conflict));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SharedProbeCacheTest, StringKeysAreCopiedNotBorrowed) {
  // IndexKey borrows string bytes from a query-lifetime pool; the shared
  // cache outlives the query, so it must own a copy.
  SharedProbeCache cache(4, 4);
  const uint64_t sig = SharedProbeCache::LegSignature(&kIndexA, "", 0);
  bool conflict = false;
  {
    std::string transient = "hot-key";
    cache.Insert(sig, IndexKey::String(transient), Rids({5}), 1, 3, &conflict);
    transient.assign("clobbered");
  }
  std::string fresh = "hot-key";
  SharedProbeCache::Result r;
  ASSERT_TRUE(cache.Lookup(sig, IndexKey::String(fresh), &r, &conflict));
  EXPECT_EQ(r.matches, Rids({5}));
}

TEST(SharedProbeCacheTest, ConcurrentHammerOneKeyStaysConsistent) {
  // Many threads inserting and looking up a small hot set: every hit must
  // return one of the values some thread inserted for that key (entries are
  // copied out under the stripe lock, so no torn reads).
  SharedProbeCache cache(/*entries_per_stripe=*/16, /*stripes=*/2);
  const uint64_t sig = SharedProbeCache::LegSignature(&kIndexA, "", 0);
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, sig, t, &failures] {
      bool conflict = false;
      for (int i = 0; i < kOps; ++i) {
        const int64_t k = i % 8;
        cache.Insert(sig, IndexKey::Int64(k), Rids({static_cast<Rid>(k)}), 1,
                     static_cast<uint64_t>(k) + 1, &conflict);
        SharedProbeCache::Result r;
        if (cache.Lookup(sig, IndexKey::Int64(k), &r, &conflict)) {
          if (r.matches != Rids({static_cast<Rid>(k)}) ||
              r.work_units != static_cast<uint64_t>(k) + 1) {
            ++failures[t];
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t << " observed a torn entry";
  }
}

}  // namespace
}  // namespace ajr

// Wide-join regression battery (DESIGN.md §13): hand-built 12-table chain
// and 16-table star worlds — both above the planner's greedy-seed
// threshold — pushed through the differential oracle (I1-I5 under the full
// config spread), plus direct checks that a deliberately corrupted initial
// order repairs to the greedy seed's result multiset and does strictly
// less work than running the corruption to completion, and that
// morsel-parallel execution at dop 4 agrees with serial execution.
//
// Registered with the `stress` label so the TSan build covers the
// dop-4 paths at width 16.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adaptive/policy.h"
#include "exec/pipeline_executor.h"
#include "exec/reference_executor.h"
#include "optimize/greedy_order.h"
#include "optimize/planner.h"
#include "runtime/parallel_executor.h"
#include "testing/oracle.h"
#include "testing/workload_gen.h"

namespace ajr {
namespace {

using ajr::testing::RunDifferential;
using ajr::testing::TableSpec;
using ajr::testing::WorkloadSpec;

// 12-table chain c0 -k- c1 -k- ... -k- c11. Matching keys 0..15 in every
// table; c5 and c9 duplicate each key (fan-out 2); table t also carries
// 3*t never-matching rows so estimated cardinalities differ leg to leg
// (greedy vs anti-greedy orders genuinely diverge). c7's key is
// unindexed, forcing a scan-probe fallback mid-chain. c3's predicate
// drops keys 12..15.
WorkloadSpec ChainSpec12() {
  WorkloadSpec spec;
  const size_t n = 12;
  for (size_t t = 0; t < n; ++t) {
    TableSpec table;
    table.name = "c" + std::to_string(t);
    table.columns = {{"k", DataType::kInt64}, {"w", DataType::kInt64}};
    const size_t copies = (t == 5 || t == 9) ? 2 : 1;
    for (size_t c = 0; c < copies; ++c) {
      for (int64_t k = 0; k < 16; ++k) table.rows.push_back({Value(k), Value(k)});
    }
    for (size_t e = 0; e < 3 * t; ++e) {
      table.rows.push_back(
          {Value(static_cast<int64_t>(1000 + 100 * t + e)), Value(int64_t{0})});
    }
    if (t != 7) table.indexed_columns = {"k"};
    spec.tables.push_back(std::move(table));
  }
  JoinQuery& q = spec.query;
  q.name = "wide_chain12";
  for (size_t t = 0; t < n; ++t) {
    q.tables.push_back({"a" + std::to_string(t), "c" + std::to_string(t)});
  }
  for (size_t t = 1; t < n; ++t) q.edges.push_back({t - 1, "k", t, "k", t - 1});
  q.local_predicates.assign(n, nullptr);
  q.local_predicates[3] = ColCmp("w", CompareOp::kLe, Value(int64_t{11}));
  q.output = {{0, "k"}, {n - 1, "w"}};
  return spec;
}

// 16-table star: center s0 (48 rows, keys 0..11 four times each) joined to
// 15 dimensions on k. Dimensions hold one row per key except d2 (three —
// planted fan-out skew) plus 2*t never-matching rows each; d4's predicate
// keeps keys 0..7; d11's key is unindexed.
WorkloadSpec StarSpec16() {
  WorkloadSpec spec;
  const size_t n = 16;
  TableSpec center;
  center.name = "s0";
  center.columns = {{"k", DataType::kInt64}, {"w", DataType::kInt64}};
  for (int64_t r = 0; r < 48; ++r) center.rows.push_back({Value(r % 12), Value(r)});
  center.indexed_columns = {"k"};
  spec.tables.push_back(std::move(center));
  for (size_t t = 1; t < n; ++t) {
    TableSpec dim;
    dim.name = "d" + std::to_string(t);
    dim.columns = {{"k", DataType::kInt64}, {"w", DataType::kInt64}};
    const size_t copies = t == 2 ? 3 : 1;
    for (size_t c = 0; c < copies; ++c) {
      for (int64_t k = 0; k < 12; ++k) dim.rows.push_back({Value(k), Value(k)});
    }
    for (size_t e = 0; e < 2 * t; ++e) {
      dim.rows.push_back(
          {Value(static_cast<int64_t>(1000 + 100 * t + e)), Value(int64_t{0})});
    }
    if (t != 11) dim.indexed_columns = {"k"};
    spec.tables.push_back(std::move(dim));
  }
  JoinQuery& q = spec.query;
  q.name = "wide_star16";
  q.tables.push_back({"a0", "s0"});
  for (size_t t = 1; t < n; ++t) {
    q.tables.push_back({"a" + std::to_string(t), "d" + std::to_string(t)});
  }
  for (size_t t = 1; t < n; ++t) q.edges.push_back({0, "k", t, "k", t - 1});
  q.local_predicates.assign(n, nullptr);
  q.local_predicates[4] = ColCmp("w", CompareOp::kLe, Value(int64_t{7}));
  q.output = {{0, "k"}, {n - 1, "w"}};
  return spec;
}

std::vector<Row> RunPlan(const PipelinePlan& plan, const AdaptiveOptions& opts,
                         uint64_t* work_units = nullptr) {
  PipelineExecutor exec(&plan, opts);
  std::vector<Row> rows;
  auto stats = exec.Execute([&rows](const Row& r) { rows.push_back(r); });
  EXPECT_TRUE(stats.ok()) << stats.status();
  if (stats.ok() && work_units != nullptr) *work_units = stats->work_units;
  SortRows(&rows);
  return rows;
}

AdaptiveOptions StaticOptions() {
  AdaptiveOptions off;
  off.reorder_inners = false;
  off.reorder_driving = false;
  return off;
}

TEST(WideJoinTest, ChainDifferentialClean) {
  auto outcome = RunDifferential(ChainSpec12());
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->has_value()) << (*outcome)->ToString();
}

TEST(WideJoinTest, StarDifferentialClean) {
  auto outcome = RunDifferential(StarSpec16());
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->has_value()) << (*outcome)->ToString();
}

// A corrupted (anti-greedy) seed must still produce exactly the greedy
// seed's result multiset under both adaptive policies, and adaptation must
// beat running the corruption statically (work units are deterministic on
// these plans, so the strict inequality is stable).
void CheckCorruptedSeedRepair(const WorkloadSpec& spec) {
  auto catalog = spec.Materialize();
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  auto expected = ExecuteReference(**catalog, spec.query);
  ASSERT_TRUE(expected.ok()) << expected.status();
  SortRows(&*expected);

  Planner planner(catalog->get());
  auto plan = planner.Plan(spec.query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const PipelinePlan& greedy_plan = **plan;
  // The widths here sit above the greedy-seed threshold.
  ASSERT_EQ(greedy_plan.initial_order,
            GreedyCardinalityOrder(greedy_plan.EstimatedCostInputs()));
  PipelinePlan corrupt_plan = greedy_plan;
  corrupt_plan.initial_order =
      AntiGreedyCardinalityOrder(greedy_plan.EstimatedCostInputs());
  ASSERT_NE(corrupt_plan.initial_order, greedy_plan.initial_order);

  uint64_t wu_greedy = 0, wu_corrupt = 0;
  EXPECT_EQ(RunPlan(greedy_plan, StaticOptions(), &wu_greedy), *expected);
  EXPECT_EQ(RunPlan(corrupt_plan, StaticOptions(), &wu_corrupt), *expected);
  EXPECT_GT(wu_corrupt, wu_greedy) << "corruption is supposed to hurt";

  for (PolicyKind kind : {PolicyKind::kRank, PolicyKind::kRegret}) {
    AdaptiveOptions adapt = ajr::testing::AggressiveAdaptiveOptions();
    adapt.policy = kind;
    uint64_t wu_repaired = 0;
    EXPECT_EQ(RunPlan(corrupt_plan, adapt, &wu_repaired), *expected)
        << "policy=" << PolicyKindName(kind);
    // Rank must win back work even on these miniature worlds. The regret
    // policy's UCB exploration legitimately costs more than the corruption
    // at this scale (dozens of driving rows), so its work recovery is
    // asserted at realistic scale by bench/wide_join instead; here only
    // the result multiset is on the hook.
    if (kind == PolicyKind::kRank) {
      EXPECT_LT(wu_repaired, wu_corrupt)
          << "rank policy failed to recover any of the corrupted seed's damage";
    }
  }
}

TEST(WideJoinTest, ChainCorruptedSeedRepairs) {
  CheckCorruptedSeedRepair(ChainSpec12());
}

TEST(WideJoinTest, StarCorruptedSeedRepairs) {
  CheckCorruptedSeedRepair(StarSpec16());
}

// Morsel-parallel execution must preserve the result multiset at every
// dop, from both the greedy and the corrupted seed.
void CheckParallelAgreement(const WorkloadSpec& spec) {
  auto catalog = spec.Materialize();
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  auto expected = ExecuteReference(**catalog, spec.query);
  ASSERT_TRUE(expected.ok()) << expected.status();
  SortRows(&*expected);

  Planner planner(catalog->get());
  auto plan = planner.Plan(spec.query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  PipelinePlan corrupt_plan = **plan;
  corrupt_plan.initial_order =
      AntiGreedyCardinalityOrder((*plan)->EstimatedCostInputs());

  AdaptiveOptions adapt = ajr::testing::AggressiveAdaptiveOptions();
  for (const PipelinePlan* p : {plan->get(), &corrupt_plan}) {
    for (size_t dop : {size_t{1}, size_t{4}}) {
      ParallelExecOptions popts;
      popts.dop = dop;
      popts.morsel_size = 5;  // tiny morsels: many folds and drain barriers
      ParallelPipelineExecutor exec(p, adapt, popts);
      std::vector<Row> rows;
      auto stats = exec.Execute([&rows](const Row& r) { rows.push_back(r); });
      ASSERT_TRUE(stats.ok()) << stats.status();
      SortRows(&rows);
      EXPECT_EQ(rows, *expected)
          << spec.query.name << " dop=" << dop
          << " corrupted=" << (p == &corrupt_plan);
    }
  }
}

TEST(WideJoinTest, ChainParallelDopAgreement) {
  CheckParallelAgreement(ChainSpec12());
}

TEST(WideJoinTest, StarParallelDopAgreement) {
  CheckParallelAgreement(StarSpec16());
}

}  // namespace
}  // namespace ajr

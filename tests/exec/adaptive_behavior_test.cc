// Behavioural tests for the adaptive machinery: these assert that the
// interesting events actually HAPPEN (so the oracle-equality property tests
// are not vacuously passing on never-switching plans) and that the
// positional-predicate machinery survives them.

#include <gtest/gtest.h>

#include "exec/pipeline_executor.h"
#include "exec/reference_executor.h"
#include "workload/dmv.h"
#include "workload/templates.h"

namespace ajr {
namespace {

class AdaptiveBehaviorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    DmvConfig config;
    config.num_owners = 3000;
    ASSERT_TRUE(GenerateDmv(catalog_, config).ok());
    // The paper's baseline: minimal statistics, so initial plans carry the
    // misestimates that make the run-time switch.
    planner_ = new Planner(catalog_, PlannerOptions{StatsTier::kMinimal});
  }
  static void TearDownTestSuite() {
    delete planner_;
    delete catalog_;
    catalog_ = nullptr;
    planner_ = nullptr;
  }

  static ExecStats RunAdaptive(const JoinQuery& q, AdaptiveOptions options,
                               std::vector<Row>* rows_out = nullptr) {
    auto plan = planner_->Plan(q);
    EXPECT_TRUE(plan.ok()) << plan.status();
    PipelineExecutor exec(plan->get(), options);
    std::vector<Row> rows;
    auto stats = exec.Execute([&rows](const Row& r) { rows.push_back(r); });
    EXPECT_TRUE(stats.ok()) << stats.status();
    SortRows(&rows);
    if (rows_out != nullptr) *rows_out = std::move(rows);
    return stats.ok() ? *stats : ExecStats{};
  }

  static std::vector<Row> Reference(const JoinQuery& q) {
    auto rows = ExecuteReference(*catalog_, q);
    EXPECT_TRUE(rows.ok()) << rows.status();
    std::vector<Row> out = rows.ok() ? *rows : std::vector<Row>{};
    SortRows(&out);
    return out;
  }

  static AdaptiveOptions Strict() {
    AdaptiveOptions o;
    o.check_backoff = false;
    o.inner_benefit_epsilon = 0.0;
    o.switch_benefit_threshold = 1.0;
    o.min_edge_pairs = 1.0;
    o.min_leg_samples = 4;
    return o;
  }

  static Catalog* catalog_;
  static Planner* planner_;
};

Catalog* AdaptiveBehaviorTest::catalog_ = nullptr;
Planner* AdaptiveBehaviorTest::planner_ = nullptr;

TEST_F(AdaptiveBehaviorTest, DrivingSwitchesActuallyOccurAcrossTheMix) {
  // If no template ever switched, the oracle-equality sweeps would prove
  // nothing about driving-switch correctness.
  DmvQueryGenerator gen(catalog_);
  uint64_t switches = 0, reorders = 0;
  for (int t = 1; t <= kNumFourTableTemplates; ++t) {
    for (size_t v = 0; v < 6; ++v) {
      auto q = gen.Generate(t, v);
      ASSERT_TRUE(q.ok());
      ExecStats stats = RunAdaptive(*q, Strict());
      switches += stats.driving_switches;
      reorders += stats.inner_reorders;
    }
  }
  EXPECT_GT(switches, 5u);
  EXPECT_GT(reorders, 0u);
}

TEST_F(AdaptiveBehaviorTest, RepromotionResumesSavedCursorWithoutDuplicates) {
  // T2/q1 under this seed switches o -> c and later back c -> o: the second
  // promotion must resume o's saved cursor (its processed prefix stays
  // excluded), and the result multiset must be exact.
  DmvQueryGenerator gen(catalog_, /*seed=*/20070415);
  auto q = gen.Generate(2, 1);
  ASSERT_TRUE(q.ok());
  std::vector<Row> rows;
  ExecStats stats = RunAdaptive(*q, AdaptiveOptions{}, &rows);
  ASSERT_GE(stats.driving_switches, 2u) << "expected a switch and a switch-back";
  // The event log must show two different promotions.
  bool saw_away = false, saw_back = false;
  for (const auto& event : stats.events) {
    if (event.find("o -> c") != std::string::npos) saw_away = true;
    if (event.find("c -> o") != std::string::npos) saw_back = true;
  }
  EXPECT_TRUE(saw_away);
  EXPECT_TRUE(saw_back);
  EXPECT_EQ(rows, Reference(*q));
}

TEST_F(AdaptiveBehaviorTest, SwitchedQueriesStillExactUnderPaperStrictSettings) {
  DmvQueryGenerator gen(catalog_);
  for (int t = 1; t <= kNumFourTableTemplates; ++t) {
    for (size_t v = 0; v < 4; ++v) {
      auto q = gen.Generate(t, v);
      ASSERT_TRUE(q.ok());
      std::vector<Row> rows;
      RunAdaptive(*q, Strict(), &rows);
      EXPECT_EQ(rows, Reference(*q)) << q->name;
    }
  }
}

TEST_F(AdaptiveBehaviorTest, EventLogDescribesEveryMove) {
  DmvQueryGenerator gen(catalog_);
  auto q = gen.Generate(2, 1);
  ASSERT_TRUE(q.ok());
  ExecStats stats = RunAdaptive(*q, Strict());
  EXPECT_EQ(stats.events.size(), stats.order_switches());
  for (const auto& event : stats.events) {
    EXPECT_TRUE(event.find("driving switch") != std::string::npos ||
                event.find("inner reorder") != std::string::npos)
        << event;
  }
}

TEST_F(AdaptiveBehaviorTest, BackoffReducesChecksButKeepsCorrectness) {
  DmvQueryGenerator gen(catalog_);
  auto q = gen.Generate(3, 0);
  ASSERT_TRUE(q.ok());
  AdaptiveOptions with_backoff;  // default: backoff on
  AdaptiveOptions without = with_backoff;
  without.check_backoff = false;
  std::vector<Row> rows_a, rows_b;
  ExecStats a = RunAdaptive(*q, with_backoff, &rows_a);
  ExecStats b = RunAdaptive(*q, without, &rows_b);
  EXPECT_EQ(rows_a, rows_b);
  EXPECT_LE(a.inner_checks + a.driving_checks, b.inner_checks + b.driving_checks);
}

TEST_F(AdaptiveBehaviorTest, MeasuredWorkNeverBlowsUpRelativeToStatic) {
  // Adaptation may add bounded overhead but must not multiply the work: a
  // regression here means a reorder broke duplicate prevention or probing.
  DmvQueryGenerator gen(catalog_);
  for (int t = 1; t <= kNumFourTableTemplates; ++t) {
    auto q = gen.Generate(t, 2);
    ASSERT_TRUE(q.ok());
    AdaptiveOptions off;
    off.reorder_inners = false;
    off.reorder_driving = false;
    ExecStats base = RunAdaptive(*q, off);
    ExecStats adaptive = RunAdaptive(*q, AdaptiveOptions{});
    EXPECT_LT(adaptive.work_units, base.work_units * 2 + 10000) << q->name;
  }
}

TEST_F(AdaptiveBehaviorTest, FallbackScanProbeWorksWithoutJoinIndex) {
  // A join column without an index must fall back to a filtered table scan
  // probe and stay correct.
  Catalog catalog;
  auto a = catalog.CreateTable("a", Schema({{"k", DataType::kInt64}}));
  auto b = catalog.CreateTable("b", Schema({{"k", DataType::kInt64}}));
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*a)->table().Append({Value(i % 10)}).ok());
    ASSERT_TRUE((*b)->table().Append({Value(i % 25)}).ok());
  }
  ASSERT_TRUE(catalog.AnalyzeAll().ok());  // no indexes at all
  JoinQuery q;
  q.name = "no_index";
  q.tables = {{"a", "a"}, {"b", "b"}};
  q.edges = {{0, "k", 1, "k", 0}};
  q.local_predicates = {ColCmp("k", CompareOp::kLt, Value(5)), nullptr};
  q.output = {{0, "k"}, {1, "k"}};
  Planner planner(&catalog);
  auto plan = planner.Plan(q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  PipelineExecutor exec(plan->get(), AdaptiveOptions{});
  std::vector<Row> rows;
  auto stats = exec.Execute([&rows](const Row& r) { rows.push_back(r); });
  ASSERT_TRUE(stats.ok());
  SortRows(&rows);
  auto expected = ExecuteReference(catalog, q);
  ASSERT_TRUE(expected.ok());
  SortRows(&*expected);
  EXPECT_EQ(rows, *expected);
  // 25 'a' rows pass k<5 (values 0..4, five each); each matches two 'b' rows.
  EXPECT_EQ(rows.size(), 50u);
}

}  // namespace
}  // namespace ajr

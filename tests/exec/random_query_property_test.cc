// Randomized property suite: for randomly generated schemas, data, join
// graphs (chains, stars, and CYCLES), predicates, and index availability,
// the pipelined executor — static or under maximally aggressive adaptation —
// must produce exactly the reference executor's result multiset.
//
// This is the repository's broadest correctness net: it exercises
// multi-range index scans, scan-probe fallbacks (missing indexes), the
// cyclic-join-graph path (Sec 3.3's composite-rank caveat: extra edges are
// applied as residual join predicates), positional predicates under forced
// driving switches, and cursor resume on re-promotion.

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/pipeline_executor.h"
#include "exec/reference_executor.h"
#include "optimize/planner.h"

namespace ajr {
namespace {

struct RandomWorld {
  Catalog catalog;
  JoinQuery query;
};

// Builds a random 3-5 table world and a valid connected query over it.
std::unique_ptr<RandomWorld> BuildWorld(uint64_t seed) {
  Rng rng(seed);
  auto world = std::make_unique<RandomWorld>();
  const size_t num_tables = 3 + rng.NextUint64(3);

  // Every table: key column k (join domain 0..19), payload v (0..49),
  // grp (0..4). Cardinalities vary so rank orders differ.
  for (size_t t = 0; t < num_tables; ++t) {
    std::string name = "t" + std::to_string(t);
    auto entry = world->catalog.CreateTable(
        name, Schema({{"k", DataType::kInt64},
                      {"v", DataType::kInt64},
                      {"grp", DataType::kInt64}}));
    EXPECT_TRUE(entry.ok());
    size_t rows = 30 + rng.NextUint64(170);
    // Zipf-skew the join keys of half the tables.
    ZipfDistribution zipf(20, rng.NextBool() ? 1.2 : 0.0);
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_TRUE((*entry)
                      ->table()
                      .Append({Value(static_cast<int64_t>(zipf.Sample(&rng))),
                               Value(rng.NextInt64(0, 49)), Value(rng.NextInt64(0, 4))})
                      .ok());
    }
    // Indexes: k indexed with 70% probability (else the scan-probe fallback
    // runs); v indexed with 50%.
    if (rng.NextBool(0.7)) {
      EXPECT_TRUE(world->catalog.BuildIndex(name, "k", name + "_k").ok());
    }
    if (rng.NextBool(0.5)) {
      EXPECT_TRUE(world->catalog.BuildIndex(name, "v", name + "_v").ok());
    }
  }
  EXPECT_TRUE(world->catalog.AnalyzeAll().ok());

  JoinQuery& q = world->query;
  q.name = "rand" + std::to_string(seed);
  for (size_t t = 0; t < num_tables; ++t) {
    q.tables.push_back({"a" + std::to_string(t), "t" + std::to_string(t)});
  }
  // Spanning tree over the tables (random parent), plus one extra edge with
  // 40% probability -> a cyclic join graph.
  size_t edge_id = 0;
  for (size_t t = 1; t < num_tables; ++t) {
    size_t parent = rng.NextUint64(t);
    q.edges.push_back({parent, "k", t, "k", edge_id++});
  }
  if (num_tables >= 3 && rng.NextBool(0.4)) {
    size_t a = rng.NextUint64(num_tables);
    size_t b = rng.NextUint64(num_tables);
    if (a != b) {
      bool exists = false;
      for (const auto& e : q.edges) {
        if ((e.left == a && e.right == b) || (e.left == b && e.right == a)) {
          exists = true;
        }
      }
      if (!exists) q.edges.push_back({a, "v", b, "v", edge_id++});
    }
  }
  // Random local predicates.
  q.local_predicates.assign(num_tables, nullptr);
  for (size_t t = 0; t < num_tables; ++t) {
    switch (rng.NextUint64(5)) {
      case 0:
        q.local_predicates[t] = ColCmp("grp", CompareOp::kEq,
                                       Value(rng.NextInt64(0, 4)));
        break;
      case 1:
        q.local_predicates[t] =
            ColCmp("v", CompareOp::kLt, Value(rng.NextInt64(5, 45)));
        break;
      case 2:
        q.local_predicates[t] =
            Or({ColCmp("grp", CompareOp::kEq, Value(rng.NextInt64(0, 2))),
                ColCmp("grp", CompareOp::kEq, Value(rng.NextInt64(3, 4)))});
        break;
      case 3:
        q.local_predicates[t] =
            And({ColCmp("v", CompareOp::kGe, Value(rng.NextInt64(0, 20))),
                 ColCmp("k", CompareOp::kLe, Value(rng.NextInt64(5, 19)))});
        break;
      default:
        break;  // no predicate
    }
  }
  q.output = {{0, "k"}, {num_tables - 1, "v"}};
  EXPECT_TRUE(q.Validate().ok());
  return world;
}

class RandomQuerySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomQuerySweep, AllConfigurationsMatchReference) {
  auto world = BuildWorld(GetParam());
  auto expected = ExecuteReference(world->catalog, world->query);
  ASSERT_TRUE(expected.ok()) << expected.status();
  SortRows(&*expected);

  for (StatsTier tier : {StatsTier::kMinimal, StatsTier::kBase}) {
    Planner planner(&world->catalog, PlannerOptions{tier});
    auto plan = planner.Plan(world->query);
    ASSERT_TRUE(plan.ok()) << plan.status();

    AdaptiveOptions off;
    off.reorder_inners = false;
    off.reorder_driving = false;
    AdaptiveOptions aggressive;
    aggressive.check_frequency = 1;
    aggressive.switch_benefit_threshold = 1.0;
    aggressive.inner_benefit_epsilon = 0.0;
    aggressive.history_window = 4;
    aggressive.min_edge_pairs = 1;
    aggressive.min_leg_samples = 1;
    aggressive.check_backoff = false;

    for (const AdaptiveOptions& options : {off, AdaptiveOptions{}, aggressive}) {
      PipelineExecutor exec(plan->get(), options);
      std::vector<Row> rows;
      auto stats = exec.Execute([&rows](const Row& r) { rows.push_back(r); });
      ASSERT_TRUE(stats.ok()) << stats.status();
      SortRows(&rows);
      ASSERT_EQ(rows, *expected)
          << world->query.ToString() << " tier=" << static_cast<int>(tier);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQuerySweep,
                         ::testing::Range(uint64_t{1}, uint64_t{41}));

}  // namespace
}  // namespace ajr

#include "expr/evaluator.h"

#include <gtest/gtest.h>

#include "storage/heap_table.h"

namespace ajr {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  Schema schema_{{{"id", DataType::kInt64},
                  {"make", DataType::kString},
                  {"year", DataType::kInt64},
                  {"price", DataType::kDouble},
                  {"sold", DataType::kBool}}};
  Row row_ = {Value(7), Value("Mazda"), Value(1999), Value(12000.5), Value(true)};

  bool Eval(const ExprPtr& e) {
    auto bound = BindPredicate(e, schema_);
    EXPECT_TRUE(bound.ok()) << bound.status();
    return (*bound)->Eval(row_);
  }
};

TEST_F(EvaluatorTest, NullExprIsTrue) { EXPECT_TRUE(Eval(nullptr)); }

TEST_F(EvaluatorTest, ColConstComparisons) {
  EXPECT_TRUE(Eval(ColCmp("make", CompareOp::kEq, Value("Mazda"))));
  EXPECT_FALSE(Eval(ColCmp("make", CompareOp::kEq, Value("BMW"))));
  EXPECT_TRUE(Eval(ColCmp("year", CompareOp::kGt, Value(1998))));
  EXPECT_FALSE(Eval(ColCmp("year", CompareOp::kGt, Value(1999))));
  EXPECT_TRUE(Eval(ColCmp("year", CompareOp::kGe, Value(1999))));
  EXPECT_TRUE(Eval(ColCmp("year", CompareOp::kLt, Value(2000))));
  EXPECT_TRUE(Eval(ColCmp("year", CompareOp::kLe, Value(1999))));
  EXPECT_TRUE(Eval(ColCmp("year", CompareOp::kNe, Value(2005))));
  EXPECT_TRUE(Eval(ColCmp("price", CompareOp::kLt, Value(20000.0))));
}

TEST_F(EvaluatorTest, ConstColIsNormalized) {
  // 1998 < year  ==  year > 1998
  EXPECT_TRUE(Eval(Cmp(CompareOp::kLt, Lit(Value(1998)), Col("year"))));
  // 2000 > year  ==  year < 2000
  EXPECT_TRUE(Eval(Cmp(CompareOp::kGt, Lit(Value(2000)), Col("year"))));
  // 1999 <= year
  EXPECT_TRUE(Eval(Cmp(CompareOp::kLe, Lit(Value(1999)), Col("year"))));
  // 1999 >= year
  EXPECT_TRUE(Eval(Cmp(CompareOp::kGe, Lit(Value(1999)), Col("year"))));
}

TEST_F(EvaluatorTest, ColColComparison) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  auto bound = BindPredicate(Cmp(CompareOp::kLt, Col("a"), Col("b")), s);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE((*bound)->Eval({Value(1), Value(2)}));
  EXPECT_FALSE((*bound)->Eval({Value(2), Value(2)}));
}

TEST_F(EvaluatorTest, AndOrNot) {
  EXPECT_TRUE(Eval(And({ColCmp("make", CompareOp::kEq, Value("Mazda")),
                        ColCmp("year", CompareOp::kGt, Value(1990))})));
  EXPECT_FALSE(Eval(And({ColCmp("make", CompareOp::kEq, Value("Mazda")),
                         ColCmp("year", CompareOp::kGt, Value(2000))})));
  EXPECT_TRUE(Eval(Or({ColCmp("make", CompareOp::kEq, Value("BMW")),
                       ColCmp("make", CompareOp::kEq, Value("Mazda"))})));
  EXPECT_FALSE(Eval(Or({ColCmp("make", CompareOp::kEq, Value("BMW")),
                        ColCmp("make", CompareOp::kEq, Value("Audi"))})));
  EXPECT_TRUE(Eval(Not(ColCmp("make", CompareOp::kEq, Value("BMW")))));
  EXPECT_FALSE(Eval(Not(ColCmp("make", CompareOp::kEq, Value("Mazda")))));
}

TEST_F(EvaluatorTest, InPredicate) {
  EXPECT_TRUE(Eval(In("make", {Value("BMW"), Value("Mazda"), Value("Audi")})));
  EXPECT_FALSE(Eval(In("make", {Value("BMW"), Value("Audi")})));
  EXPECT_FALSE(Eval(In("make", {})));
}

TEST_F(EvaluatorTest, InPredicateEdgeCases) {
  // Single-element sets.
  EXPECT_TRUE(Eval(In("year", {Value(1999)})));
  EXPECT_FALSE(Eval(In("year", {Value(2000)})));
  // Duplicate elements are harmless.
  EXPECT_TRUE(Eval(In("year", {Value(1999), Value(1999), Value(5)})));
  // Int column with double set elements (and vice versa): numeric IN.
  EXPECT_TRUE(Eval(In("year", {Value(1999.0), Value(3.5)})));
  EXPECT_FALSE(Eval(In("year", {Value(1999.5)})));
  EXPECT_TRUE(Eval(In("price", {Value(12000.5), Value(1.0)})));
  EXPECT_FALSE(Eval(In("price", {Value(12000)})));
  // Bool IN.
  EXPECT_TRUE(Eval(In("sold", {Value(true)})));
  EXPECT_FALSE(Eval(In("sold", {Value(false)})));
  EXPECT_TRUE(Eval(In("sold", {Value(false), Value(true)})));
  // Type mismatches are a bind error, not a silent false.
  EXPECT_FALSE(BindPredicate(In("make", {Value(1)}), schema_).ok());
  EXPECT_FALSE(BindPredicate(In("year", {Value("x")}), schema_).ok());
}

TEST_F(EvaluatorTest, RowViewAndRowEvalAgree) {
  // The same program must give identical answers on the typed-page view and
  // the legacy Value row, for every leaf kind.
  HeapTable t("t", schema_);
  ASSERT_TRUE(t.Append(row_).ok());
  RowView view = t.View(0);
  const std::vector<ExprPtr> exprs = [] {
    std::vector<ExprPtr> v;
    v.push_back(ColCmp("make", CompareOp::kEq, Value("Mazda")));
    v.push_back(ColCmp("make", CompareOp::kEq, Value("BMW")));
    v.push_back(ColCmp("make", CompareOp::kLt, Value("Nissan")));
    v.push_back(ColCmp("year", CompareOp::kGt, Value(1998)));
    v.push_back(ColCmp("year", CompareOp::kLt, Value(1998.5)));
    v.push_back(ColCmp("price", CompareOp::kGe, Value(12000.5)));
    v.push_back(ColCmp("sold", CompareOp::kEq, Value(true)));
    v.push_back(In("make", {Value("BMW"), Value("Mazda")}));
    v.push_back(In("year", {Value(1999), Value(7)}));
    v.push_back(Or({ColCmp("make", CompareOp::kEq, Value("BMW")),
                    Not(ColCmp("year", CompareOp::kLe, Value(1990)))}));
    return v;
  }();
  for (const ExprPtr& e : exprs) {
    // Bound without a pool and with the table's pool: all four paths agree.
    auto plain = BindPredicate(e, schema_);
    auto pooled = BindPredicate(e, schema_, &t.pool());
    ASSERT_TRUE(plain.ok() && pooled.ok());
    bool expect = (*plain)->Eval(row_);
    EXPECT_EQ((*plain)->Eval(view), expect);
    EXPECT_EQ((*pooled)->Eval(view), expect);
    EXPECT_EQ((*pooled)->Eval(row_), expect);
  }
}

TEST_F(EvaluatorTest, PooledStringConstantFoldsWhenAbsent) {
  HeapTable t("t", schema_);
  ASSERT_TRUE(t.Append(row_).ok());
  // "Yugo" was never interned: equality folds to constant false / not-equal
  // to constant true, and both still evaluate correctly.
  auto eq = BindPredicate(ColCmp("make", CompareOp::kEq, Value("Yugo")), schema_,
                          &t.pool());
  auto ne = BindPredicate(ColCmp("make", CompareOp::kNe, Value("Yugo")), schema_,
                          &t.pool());
  ASSERT_TRUE(eq.ok() && ne.ok());
  EXPECT_FALSE((*eq)->Eval(t.View(0)));
  EXPECT_TRUE((*ne)->Eval(t.View(0)));
}

TEST_F(EvaluatorTest, FlatConjunctionAndPostfixIntrospection) {
  auto flat = BindPredicate(And({ColCmp("year", CompareOp::kGt, Value(0)),
                                 ColCmp("price", CompareOp::kLt, Value(1e9))}),
                            schema_);
  ASSERT_TRUE(flat.ok());
  EXPECT_TRUE((*flat)->is_flat_conjunction());
  auto postfix = BindPredicate(Or({ColCmp("year", CompareOp::kGt, Value(0)),
                                   ColCmp("price", CompareOp::kLt, Value(1e9))}),
                               schema_);
  ASSERT_TRUE(postfix.ok());
  EXPECT_FALSE((*postfix)->is_flat_conjunction());
}

TEST_F(EvaluatorTest, BoolLiteralPredicate) {
  EXPECT_TRUE(Eval(Lit(Value(true))));
  EXPECT_FALSE(Eval(Lit(Value(false))));
}

TEST_F(EvaluatorTest, ErrorsOnBadShapes) {
  EXPECT_FALSE(BindPredicate(Lit(Value(3)), schema_).ok());
  EXPECT_FALSE(BindPredicate(Col("make"), schema_).ok());
  EXPECT_FALSE(
      BindPredicate(ColCmp("nonexistent", CompareOp::kEq, Value(1)), schema_).ok());
  // literal-vs-literal comparison is not supported
  EXPECT_FALSE(
      BindPredicate(Cmp(CompareOp::kEq, Lit(Value(1)), Lit(Value(1))), schema_).ok());
}

TEST_F(EvaluatorTest, EvalCountedChargesWork) {
  WorkCounter wc;
  auto bound = BindPredicate(ColCmp("year", CompareOp::kGt, Value(0)), schema_);
  ASSERT_TRUE(bound.ok());
  (*bound)->EvalCounted(row_, &wc);
  (*bound)->EvalCounted(row_, &wc);
  EXPECT_EQ(wc.total(), 2 * WorkCounter::kPredicateEval);
  // Null counter is a no-op.
  EXPECT_TRUE((*bound)->EvalCounted(row_, nullptr));
}

}  // namespace
}  // namespace ajr

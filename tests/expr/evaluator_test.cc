#include "expr/evaluator.h"

#include <gtest/gtest.h>

namespace ajr {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  Schema schema_{{{"id", DataType::kInt64},
                  {"make", DataType::kString},
                  {"year", DataType::kInt64},
                  {"price", DataType::kDouble},
                  {"sold", DataType::kBool}}};
  Row row_ = {Value(7), Value("Mazda"), Value(1999), Value(12000.5), Value(true)};

  bool Eval(const ExprPtr& e) {
    auto bound = BindPredicate(e, schema_);
    EXPECT_TRUE(bound.ok()) << bound.status();
    return (*bound)->Eval(row_);
  }
};

TEST_F(EvaluatorTest, NullExprIsTrue) { EXPECT_TRUE(Eval(nullptr)); }

TEST_F(EvaluatorTest, ColConstComparisons) {
  EXPECT_TRUE(Eval(ColCmp("make", CompareOp::kEq, Value("Mazda"))));
  EXPECT_FALSE(Eval(ColCmp("make", CompareOp::kEq, Value("BMW"))));
  EXPECT_TRUE(Eval(ColCmp("year", CompareOp::kGt, Value(1998))));
  EXPECT_FALSE(Eval(ColCmp("year", CompareOp::kGt, Value(1999))));
  EXPECT_TRUE(Eval(ColCmp("year", CompareOp::kGe, Value(1999))));
  EXPECT_TRUE(Eval(ColCmp("year", CompareOp::kLt, Value(2000))));
  EXPECT_TRUE(Eval(ColCmp("year", CompareOp::kLe, Value(1999))));
  EXPECT_TRUE(Eval(ColCmp("year", CompareOp::kNe, Value(2005))));
  EXPECT_TRUE(Eval(ColCmp("price", CompareOp::kLt, Value(20000.0))));
}

TEST_F(EvaluatorTest, ConstColIsNormalized) {
  // 1998 < year  ==  year > 1998
  EXPECT_TRUE(Eval(Cmp(CompareOp::kLt, Lit(Value(1998)), Col("year"))));
  // 2000 > year  ==  year < 2000
  EXPECT_TRUE(Eval(Cmp(CompareOp::kGt, Lit(Value(2000)), Col("year"))));
  // 1999 <= year
  EXPECT_TRUE(Eval(Cmp(CompareOp::kLe, Lit(Value(1999)), Col("year"))));
  // 1999 >= year
  EXPECT_TRUE(Eval(Cmp(CompareOp::kGe, Lit(Value(1999)), Col("year"))));
}

TEST_F(EvaluatorTest, ColColComparison) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  auto bound = BindPredicate(Cmp(CompareOp::kLt, Col("a"), Col("b")), s);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE((*bound)->Eval({Value(1), Value(2)}));
  EXPECT_FALSE((*bound)->Eval({Value(2), Value(2)}));
}

TEST_F(EvaluatorTest, AndOrNot) {
  EXPECT_TRUE(Eval(And({ColCmp("make", CompareOp::kEq, Value("Mazda")),
                        ColCmp("year", CompareOp::kGt, Value(1990))})));
  EXPECT_FALSE(Eval(And({ColCmp("make", CompareOp::kEq, Value("Mazda")),
                         ColCmp("year", CompareOp::kGt, Value(2000))})));
  EXPECT_TRUE(Eval(Or({ColCmp("make", CompareOp::kEq, Value("BMW")),
                       ColCmp("make", CompareOp::kEq, Value("Mazda"))})));
  EXPECT_FALSE(Eval(Or({ColCmp("make", CompareOp::kEq, Value("BMW")),
                        ColCmp("make", CompareOp::kEq, Value("Audi"))})));
  EXPECT_TRUE(Eval(Not(ColCmp("make", CompareOp::kEq, Value("BMW")))));
  EXPECT_FALSE(Eval(Not(ColCmp("make", CompareOp::kEq, Value("Mazda")))));
}

TEST_F(EvaluatorTest, InPredicate) {
  EXPECT_TRUE(Eval(In("make", {Value("BMW"), Value("Mazda"), Value("Audi")})));
  EXPECT_FALSE(Eval(In("make", {Value("BMW"), Value("Audi")})));
  EXPECT_FALSE(Eval(In("make", {})));
}

TEST_F(EvaluatorTest, BoolLiteralPredicate) {
  EXPECT_TRUE(Eval(Lit(Value(true))));
  EXPECT_FALSE(Eval(Lit(Value(false))));
}

TEST_F(EvaluatorTest, ErrorsOnBadShapes) {
  EXPECT_FALSE(BindPredicate(Lit(Value(3)), schema_).ok());
  EXPECT_FALSE(BindPredicate(Col("make"), schema_).ok());
  EXPECT_FALSE(
      BindPredicate(ColCmp("nonexistent", CompareOp::kEq, Value(1)), schema_).ok());
  // literal-vs-literal comparison is not supported
  EXPECT_FALSE(
      BindPredicate(Cmp(CompareOp::kEq, Lit(Value(1)), Lit(Value(1))), schema_).ok());
}

TEST_F(EvaluatorTest, EvalCountedChargesWork) {
  WorkCounter wc;
  auto bound = BindPredicate(ColCmp("year", CompareOp::kGt, Value(0)), schema_);
  ASSERT_TRUE(bound.ok());
  (*bound)->EvalCounted(row_, &wc);
  (*bound)->EvalCounted(row_, &wc);
  EXPECT_EQ(wc.total(), 2 * WorkCounter::kPredicateEval);
  // Null counter is a no-op.
  EXPECT_TRUE((*bound)->EvalCounted(row_, nullptr));
}

}  // namespace
}  // namespace ajr

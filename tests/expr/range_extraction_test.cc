#include "expr/range_extraction.h"

#include <gtest/gtest.h>

namespace ajr {
namespace {

TEST(KeyRangeTest, PointContains) {
  auto r = KeyRange::Point(Value(5));
  EXPECT_TRUE(r.Contains(Value(5)));
  EXPECT_FALSE(r.Contains(Value(4)));
  EXPECT_FALSE(r.Contains(Value(6)));
  EXPECT_FALSE(r.Empty());
}

TEST(KeyRangeTest, AllContainsEverything) {
  auto r = KeyRange::All();
  EXPECT_TRUE(r.Contains(Value(INT64_MIN)));
  EXPECT_TRUE(r.Contains(Value(INT64_MAX)));
  EXPECT_FALSE(r.Empty());
}

TEST(KeyRangeTest, ExclusiveBounds) {
  KeyRange r;
  r.lo = Value(10);
  r.lo_inclusive = false;
  r.hi = Value(20);
  r.hi_inclusive = false;
  EXPECT_FALSE(r.Contains(Value(10)));
  EXPECT_TRUE(r.Contains(Value(11)));
  EXPECT_TRUE(r.Contains(Value(19)));
  EXPECT_FALSE(r.Contains(Value(20)));
}

TEST(KeyRangeTest, EmptyDetection) {
  KeyRange r;
  r.lo = Value(5);
  r.hi = Value(4);
  EXPECT_TRUE(r.Empty());
  KeyRange half;
  half.lo = Value(5);
  half.hi = Value(5);
  half.hi_inclusive = false;
  EXPECT_TRUE(half.Empty());
  EXPECT_FALSE(KeyRange::Point(Value(5)).Empty());
}

TEST(RangeExtractionTest, Equality) {
  auto ex = ExtractRanges(ColCmp("make", CompareOp::kEq, Value("Mazda")), "make");
  ASSERT_EQ(ex.ranges.size(), 1u);
  EXPECT_TRUE(ex.ranges[0].Contains(Value("Mazda")));
  EXPECT_FALSE(ex.ranges[0].Contains(Value("BMW")));
  EXPECT_EQ(ex.residual, nullptr);
  EXPECT_TRUE(ex.sargable);
}

TEST(RangeExtractionTest, OpenRange) {
  auto ex = ExtractRanges(ColCmp("salary", CompareOp::kLt, Value(50000)), "salary");
  ASSERT_EQ(ex.ranges.size(), 1u);
  EXPECT_TRUE(ex.ranges[0].Contains(Value(49999)));
  EXPECT_FALSE(ex.ranges[0].Contains(Value(50000)));
  EXPECT_FALSE(ex.ranges[0].lo.has_value());
}

TEST(RangeExtractionTest, BoundedConjunction) {
  auto e = And({ColCmp("age", CompareOp::kGt, Value(30)),
                ColCmp("age", CompareOp::kLe, Value(60))});
  auto ex = ExtractRanges(e, "age");
  ASSERT_EQ(ex.ranges.size(), 1u);
  EXPECT_FALSE(ex.ranges[0].Contains(Value(30)));
  EXPECT_TRUE(ex.ranges[0].Contains(Value(31)));
  EXPECT_TRUE(ex.ranges[0].Contains(Value(60)));
  EXPECT_FALSE(ex.ranges[0].Contains(Value(61)));
  EXPECT_EQ(ex.residual, nullptr);
}

TEST(RangeExtractionTest, OrOfEqualitiesGivesMultipleRanges) {
  // Example 1's predicate: make='Chevrolet' OR make='Mercedes'.
  auto e = Or({ColCmp("make", CompareOp::kEq, Value("Chevrolet")),
               ColCmp("make", CompareOp::kEq, Value("Mercedes"))});
  auto ex = ExtractRanges(e, "make");
  ASSERT_EQ(ex.ranges.size(), 2u);
  EXPECT_TRUE(ex.ranges[0].Contains(Value("Chevrolet")));
  EXPECT_TRUE(ex.ranges[1].Contains(Value("Mercedes")));
  EXPECT_EQ(ex.residual, nullptr);
}

TEST(RangeExtractionTest, InGivesPointRanges) {
  auto ex = ExtractRanges(In("make", {Value("B"), Value("A"), Value("C")}), "make");
  ASSERT_EQ(ex.ranges.size(), 3u);
  // sorted by lower bound
  EXPECT_TRUE(ex.ranges[0].Contains(Value("A")));
  EXPECT_TRUE(ex.ranges[2].Contains(Value("C")));
}

TEST(RangeExtractionTest, NonTargetConjunctsBecomeResidual) {
  auto e = And({ColCmp("make", CompareOp::kEq, Value("Mazda")),
                ColCmp("model", CompareOp::kEq, Value("323"))});
  auto ex = ExtractRanges(e, "make");
  ASSERT_EQ(ex.ranges.size(), 1u);
  ASSERT_NE(ex.residual, nullptr);
  EXPECT_EQ(ex.residual->ToString(), "model = '323'");
}

TEST(RangeExtractionTest, NotSargableShapesAllResidual) {
  auto e = ColCmp("make", CompareOp::kNe, Value("Mazda"));
  auto ex = ExtractRanges(e, "make");
  ASSERT_EQ(ex.ranges.size(), 1u);
  EXPECT_FALSE(ex.ranges[0].lo.has_value());
  EXPECT_FALSE(ex.ranges[0].hi.has_value());
  EXPECT_NE(ex.residual, nullptr);
  EXPECT_FALSE(ex.sargable);
}

TEST(RangeExtractionTest, MixedOrIsPoisonedByNonSargableArm) {
  auto e = Or({ColCmp("make", CompareOp::kEq, Value("A")),
               ColCmp("model", CompareOp::kEq, Value("M"))});
  auto ex = ExtractRanges(e, "make");
  EXPECT_FALSE(ex.sargable);
  ASSERT_NE(ex.residual, nullptr);
}

TEST(RangeExtractionTest, NullExprIsFullRange) {
  auto ex = ExtractRanges(nullptr, "make");
  ASSERT_EQ(ex.ranges.size(), 1u);
  EXPECT_FALSE(ex.sargable);
  EXPECT_EQ(ex.residual, nullptr);
}

TEST(RangeExtractionTest, ContradictionYieldsNoRanges) {
  auto e = And({ColCmp("age", CompareOp::kGt, Value(60)),
                ColCmp("age", CompareOp::kLt, Value(30))});
  auto ex = ExtractRanges(e, "age");
  EXPECT_TRUE(ex.ranges.empty());
}

TEST(RangeExtractionTest, IntersectRangesPairwise) {
  std::vector<KeyRange> a = {KeyRange::Point(Value(1)), KeyRange::Point(Value(5))};
  KeyRange wide;
  wide.lo = Value(2);
  wide.hi = Value(9);
  std::vector<KeyRange> b = {wide};
  auto out = IntersectRanges(a, b);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].Contains(Value(5)));
  EXPECT_FALSE(out[0].Contains(Value(1)));
}

TEST(RangeExtractionTest, NormalizeMergesOverlaps) {
  KeyRange a;
  a.lo = Value(1);
  a.hi = Value(5);
  KeyRange b;
  b.lo = Value(3);
  b.hi = Value(8);
  auto out = NormalizeRanges({b, a});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].lo->AsInt64(), 1);
  EXPECT_EQ(out[0].hi->AsInt64(), 8);
}

TEST(RangeExtractionTest, NormalizeKeepsDisjoint) {
  auto out =
      NormalizeRanges({KeyRange::Point(Value(5)), KeyRange::Point(Value(1))});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].lo->AsInt64(), 1);
  EXPECT_EQ(out[1].lo->AsInt64(), 5);
}

TEST(RangeExtractionTest, RangePlusEqualityIntersects) {
  auto e = And({ColCmp("age", CompareOp::kGt, Value(30)),
                In("age", {Value(25), Value(35), Value(45)})});
  auto ex = ExtractRanges(e, "age");
  ASSERT_EQ(ex.ranges.size(), 2u);
  EXPECT_TRUE(ex.ranges[0].Contains(Value(35)));
  EXPECT_TRUE(ex.ranges[1].Contains(Value(45)));
}

}  // namespace
}  // namespace ajr

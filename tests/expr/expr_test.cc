#include "expr/expr.h"

#include <gtest/gtest.h>

namespace ajr {
namespace {

TEST(ExprTest, BuildersProduceExpectedKinds) {
  EXPECT_EQ(Lit(Value(1))->kind(), ExprKind::kLiteral);
  EXPECT_EQ(Col("make")->kind(), ExprKind::kColumnRef);
  EXPECT_EQ(ColCmp("make", CompareOp::kEq, Value("Mazda"))->kind(),
            ExprKind::kComparison);
  EXPECT_EQ(Not(Lit(Value(true)))->kind(), ExprKind::kNot);
  EXPECT_EQ(In("make", {Value("A"), Value("B")})->kind(), ExprKind::kIn);
}

TEST(ExprTest, AndFlattensNested) {
  auto e = And({ColCmp("a", CompareOp::kEq, Value(1)),
                And({ColCmp("b", CompareOp::kEq, Value(2)),
                     ColCmp("c", CompareOp::kEq, Value(3))})});
  ASSERT_EQ(e->kind(), ExprKind::kAnd);
  EXPECT_EQ(static_cast<const LogicalExpr&>(*e).children().size(), 3u);
}

TEST(ExprTest, AndOfOneIsChild) {
  auto child = ColCmp("a", CompareOp::kEq, Value(1));
  auto e = And({child});
  EXPECT_EQ(e.get(), child.get());
}

TEST(ExprTest, AndOfNoneIsNull) {
  EXPECT_EQ(And({}), nullptr);
  EXPECT_EQ(Or({}), nullptr);
}

TEST(ExprTest, AndSkipsNullChildren) {
  auto e = And({nullptr, ColCmp("a", CompareOp::kEq, Value(1)), nullptr});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind(), ExprKind::kComparison);
}

TEST(ExprTest, AndMaybe) {
  auto a = ColCmp("a", CompareOp::kEq, Value(1));
  auto b = ColCmp("b", CompareOp::kEq, Value(2));
  EXPECT_EQ(AndMaybe(nullptr, nullptr), nullptr);
  EXPECT_EQ(AndMaybe(a, nullptr).get(), a.get());
  EXPECT_EQ(AndMaybe(nullptr, b).get(), b.get());
  auto both = AndMaybe(a, b);
  ASSERT_EQ(both->kind(), ExprKind::kAnd);
}

TEST(ExprTest, SplitConjuncts) {
  EXPECT_TRUE(SplitConjuncts(nullptr).empty());
  auto single = ColCmp("a", CompareOp::kEq, Value(1));
  auto split1 = SplitConjuncts(single);
  ASSERT_EQ(split1.size(), 1u);
  EXPECT_EQ(split1[0].get(), single.get());
  auto conj = And({ColCmp("a", CompareOp::kEq, Value(1)),
                   ColCmp("b", CompareOp::kLt, Value(2)),
                   ColCmp("c", CompareOp::kGt, Value(3))});
  EXPECT_EQ(SplitConjuncts(conj).size(), 3u);
}

TEST(ExprTest, ToStringRendersSql) {
  auto e = And({ColCmp("make", CompareOp::kEq, Value("Mazda")),
                ColCmp("year", CompareOp::kGt, Value(1998))});
  EXPECT_EQ(e->ToString(), "(make = 'Mazda') AND (year > 1998)");
  auto o = Or({ColCmp("make", CompareOp::kEq, Value("Chevrolet")),
               ColCmp("make", CompareOp::kEq, Value("Mercedes"))});
  EXPECT_EQ(o->ToString(), "(make = 'Chevrolet') OR (make = 'Mercedes')");
  EXPECT_EQ(In("m", {Value(1), Value(2)})->ToString(), "m IN (1, 2)");
  EXPECT_EQ(Not(ColCmp("a", CompareOp::kNe, Value(0)))->ToString(),
            "NOT (a <> 0)");
}

TEST(ExprTest, CompareOpNames) {
  EXPECT_STREQ(CompareOpName(CompareOp::kEq), "=");
  EXPECT_STREQ(CompareOpName(CompareOp::kNe), "<>");
  EXPECT_STREQ(CompareOpName(CompareOp::kLt), "<");
  EXPECT_STREQ(CompareOpName(CompareOp::kLe), "<=");
  EXPECT_STREQ(CompareOpName(CompareOp::kGt), ">");
  EXPECT_STREQ(CompareOpName(CompareOp::kGe), ">=");
}

}  // namespace
}  // namespace ajr

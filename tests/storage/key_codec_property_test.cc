// Property tests for the order-preserving key encodings and ScanPosition
// ordering: random and adversarial int64/double/string keys, checking that
// encoding preserves exactly the Value ordering the engine compares by.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/key_codec.h"
#include "storage/scan_position.h"
#include "types/row_layout.h"
#include "types/value.h"

namespace ajr {
namespace {

std::vector<int64_t> Int64Corpus(Rng* rng, size_t extra) {
  std::vector<int64_t> vals = {
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::min() + 1,
      -1,
      0,
      1,
      std::numeric_limits<int64_t>::max() - 1,
      std::numeric_limits<int64_t>::max(),
  };
  for (size_t i = 0; i < extra; ++i) {
    vals.push_back(static_cast<int64_t>(rng->Next64()));
  }
  return vals;
}

std::vector<double> DoubleCorpus(Rng* rng, size_t extra) {
  std::vector<double> vals = {
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::lowest(),
      -1.0,
      -std::numeric_limits<double>::min(),        // smallest normal magnitude
      -std::numeric_limits<double>::denorm_min(),  // smallest denormal
      -0.0,
      0.0,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      1.0,
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
  };
  for (size_t i = 0; i < extra; ++i) {
    switch (rng->NextUint64(3)) {
      case 0:
        vals.push_back(rng->NextGaussian() * 1e3);
        break;
      case 1:
        vals.push_back(static_cast<double>(rng->NextInt64(-1000, 1000)));
        break;
      default:
        // Random bit patterns, rejecting NaN (NaNs never enter keys).
        double d = std::bit_cast<double>(rng->Next64());
        vals.push_back(std::isnan(d) ? 0.5 : d);
    }
  }
  return vals;
}

TEST(KeyCodecProperty, Int64OrderPreservedAndRoundTrips) {
  Rng rng(42);
  std::vector<int64_t> vals = Int64Corpus(&rng, 300);
  for (int64_t a : vals) {
    EXPECT_EQ(OrderDecodeInt64(OrderEncodeInt64(a)), a);
    for (int64_t b : vals) {
      EXPECT_EQ(a < b, OrderEncodeInt64(a) < OrderEncodeInt64(b))
          << a << " vs " << b;
    }
  }
}

TEST(KeyCodecProperty, DoubleOrderPreservedExactly) {
  Rng rng(43);
  std::vector<double> vals = DoubleCorpus(&rng, 200);
  for (double a : vals) {
    for (double b : vals) {
      EXPECT_EQ(a < b, OrderEncodeDouble(a) < OrderEncodeDouble(b))
          << a << " vs " << b;
      // Strict iff: numeric equality and encoding equality coincide, which
      // is what makes -0.0 probes find stored +0.0 (see row_layout.h).
      EXPECT_EQ(a == b, OrderEncodeDouble(a) == OrderEncodeDouble(b))
          << a << " vs " << b;
    }
  }
}

TEST(KeyCodecProperty, DoubleRoundTripsNumerically) {
  Rng rng(44);
  for (double a : DoubleCorpus(&rng, 300)) {
    double back = OrderDecodeDouble(OrderEncodeDouble(a));
    // -0.0 canonicalizes to +0.0; every other value round-trips bitwise.
    EXPECT_EQ(back, a);
    if (a != 0.0) {
      EXPECT_EQ(std::bit_cast<uint64_t>(back), std::bit_cast<uint64_t>(a));
    }
  }
}

TEST(KeyCodecProperty, EncodeKeyMatchesOrderEncoders) {
  Rng rng(45);
  for (int64_t v : Int64Corpus(&rng, 50)) {
    EXPECT_EQ(EncodeKey(Value(v)).enc, OrderEncodeInt64(v));
  }
  for (double v : DoubleCorpus(&rng, 50)) {
    EXPECT_EQ(EncodeKey(Value(v)).enc, OrderEncodeDouble(v));
  }
  EXPECT_EQ(EncodeKey(Value(true)).enc, OrderEncodeBool(true));
  EXPECT_EQ(EncodeKey(Value(std::string("abc"))).str, "abc");
}

/// Cross-checks ScanPosition's positional predicate against the (key, RID)
/// tuple order defined by Value::Compare — the order the index scan
/// actually produces rows in.
template <typename T>
void CheckPositionalOrder(const std::vector<T>& keys, Rng* rng) {
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = 0; j < keys.size(); ++j) {
      Value ka(keys[i]), kb(keys[j]);
      Rid ra = static_cast<Rid>(rng->NextUint64(4));
      Rid rb = static_cast<Rid>(rng->NextUint64(4));
      ScanPosition pos = ScanPosition::AtKeyRid(ka, ra);
      int kc = pos.key().Compare(kb);
      bool expected = kc < 0 || (kc == 0 && ra < rb);
      EXPECT_EQ(pos.StrictlyBefore(kb, rb), expected)
          << ka.ToString() << "," << ra << " vs " << kb.ToString() << "," << rb;
    }
  }
}

TEST(KeyCodecProperty, ScanPositionMatchesTupleOrder) {
  Rng rng(46);
  CheckPositionalOrder(Int64Corpus(&rng, 24), &rng);
  CheckPositionalOrder(DoubleCorpus(&rng, 16), &rng);
  std::vector<std::string> strs = {"", "a", "aa", "ab", "b",
                                   std::string(200, 'z'), "zz\xffsuffix"};
  CheckPositionalOrder(strs, &rng);
  // RID-order positions: pure RID comparison.
  ScanPosition p = ScanPosition::AtRid(10);
  EXPECT_TRUE(p.StrictlyBeforeRid(11));
  EXPECT_FALSE(p.StrictlyBeforeRid(10));
  EXPECT_FALSE(p.StrictlyBeforeRid(9));
}

}  // namespace
}  // namespace ajr

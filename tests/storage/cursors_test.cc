#include "storage/cursors.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace ajr {
namespace {

// Builds a tree over keys [0, n) with rid == key (unique) when stride == 1,
// or duplicated keys when stride > 1 (key = rid / stride).
BPlusTree MakeTree(int n, int stride = 1) {
  BPlusTree tree(DataType::kInt64, 8);
  for (int rid = 0; rid < n; ++rid) {
    tree.Insert(Value(rid / stride), static_cast<Rid>(rid));
  }
  return tree;
}

std::vector<Rid> DrainCursor(ScanCursor* cursor) {
  std::vector<Rid> out;
  Rid rid;
  while (cursor->Next(nullptr, &rid)) out.push_back(rid);
  return out;
}

TEST(TableScanCursorTest, ScansAllRidsInOrder) {
  HeapTable t("t", Schema({{"x", DataType::kInt64}}));
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(t.Append({Value(i)}).ok());
  TableScanCursor c(&t);
  auto rids = DrainCursor(&c);
  ASSERT_EQ(rids.size(), 10u);
  for (size_t i = 0; i < rids.size(); ++i) EXPECT_EQ(rids[i], i);
}

TEST(TableScanCursorTest, PositionAndResume) {
  HeapTable t("t", Schema({{"x", DataType::kInt64}}));
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(t.Append({Value(i)}).ok());
  TableScanCursor c(&t);
  Rid rid;
  ASSERT_TRUE(c.Next(nullptr, &rid));
  ASSERT_TRUE(c.Next(nullptr, &rid));
  EXPECT_EQ(rid, 1u);
  ScanPosition pos = c.CurrentPosition();
  EXPECT_EQ(pos.order, ScanOrder::kRidOrder);
  EXPECT_EQ(pos.rid, 1u);

  TableScanCursor c2(&t);
  ASSERT_TRUE(c2.ResumeFrom(pos).ok());
  auto rest = DrainCursor(&c2);
  ASSERT_EQ(rest.size(), 8u);
  EXPECT_EQ(rest.front(), 2u);
  EXPECT_EQ(rest.back(), 9u);
}

TEST(TableScanCursorTest, ResumeRejectsWrongOrder) {
  HeapTable t("t", Schema({{"x", DataType::kInt64}}));
  TableScanCursor c(&t);
  EXPECT_FALSE(c.ResumeFrom(ScanPosition::AtKeyRid(Value(1), 0)).ok());
}

TEST(TableScanCursorTest, ResetRestarts) {
  HeapTable t("t", Schema({{"x", DataType::kInt64}}));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(t.Append({Value(i)}).ok());
  TableScanCursor c(&t);
  Rid rid;
  ASSERT_TRUE(c.Next(nullptr, &rid));
  c.Reset();
  auto all = DrainCursor(&c);
  EXPECT_EQ(all.size(), 3u);
}

TEST(IndexScanCursorTest, FullScan) {
  auto tree = MakeTree(100);
  IndexScanCursor c(&tree, {KeyRange::All()});
  auto rids = DrainCursor(&c);
  ASSERT_EQ(rids.size(), 100u);
  for (size_t i = 0; i < rids.size(); ++i) EXPECT_EQ(rids[i], i);
}

TEST(IndexScanCursorTest, PointRange) {
  auto tree = MakeTree(100, /*stride=*/4);  // keys 0..24, 4 rids each
  IndexScanCursor c(&tree, {KeyRange::Point(Value(5))});
  auto rids = DrainCursor(&c);
  ASSERT_EQ(rids.size(), 4u);
  EXPECT_EQ(rids.front(), 20u);
  EXPECT_EQ(rids.back(), 23u);
}

TEST(IndexScanCursorTest, BoundedRangeWithExclusivity) {
  auto tree = MakeTree(20);
  KeyRange r;
  r.lo = Value(5);
  r.lo_inclusive = false;
  r.hi = Value(10);
  r.hi_inclusive = true;
  IndexScanCursor c(&tree, {r});
  auto rids = DrainCursor(&c);
  ASSERT_EQ(rids.size(), 5u);
  EXPECT_EQ(rids.front(), 6u);
  EXPECT_EQ(rids.back(), 10u);
}

TEST(IndexScanCursorTest, MultiRangeScansInKeyOrder) {
  // Example 1 shape: make IN ('Chevrolet', 'Mercedes') as two point ranges.
  auto tree = MakeTree(30, /*stride=*/3);  // keys 0..9
  IndexScanCursor c(&tree, {KeyRange::Point(Value(2)), KeyRange::Point(Value(7))});
  auto rids = DrainCursor(&c);
  ASSERT_EQ(rids.size(), 6u);
  EXPECT_EQ(rids[0], 6u);
  EXPECT_EQ(rids[2], 8u);
  EXPECT_EQ(rids[3], 21u);
  EXPECT_EQ(rids[5], 23u);
}

TEST(IndexScanCursorTest, EmptyRangesYieldNothing) {
  auto tree = MakeTree(10);
  IndexScanCursor c(&tree, {});
  Rid rid;
  EXPECT_FALSE(c.Next(nullptr, &rid));
  IndexScanCursor c2(&tree, {KeyRange::Point(Value(99))});
  EXPECT_FALSE(c2.Next(nullptr, &rid));
}

TEST(IndexScanCursorTest, PositionAndResumeWithinRange) {
  auto tree = MakeTree(30, /*stride=*/3);  // keys 0..9, 3 rids each
  IndexScanCursor c(&tree, {KeyRange::All()});
  Rid rid;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(c.Next(nullptr, &rid));
  EXPECT_EQ(rid, 4u);  // key 1, second rid
  ScanPosition pos = c.CurrentPosition();
  EXPECT_EQ(pos.order, ScanOrder::kKeyRidOrder);
  EXPECT_EQ(pos.key().AsInt64(), 1);
  EXPECT_EQ(pos.rid, 4u);

  IndexScanCursor c2(&tree, {KeyRange::All()});
  ASSERT_TRUE(c2.ResumeFrom(pos).ok());
  auto rest = DrainCursor(&c2);
  ASSERT_EQ(rest.size(), 25u);
  EXPECT_EQ(rest.front(), 5u);
}

TEST(IndexScanCursorTest, ResumeAcrossRangeBoundary) {
  auto tree = MakeTree(30, /*stride=*/3);
  std::vector<KeyRange> ranges = {KeyRange::Point(Value(2)), KeyRange::Point(Value(7))};
  IndexScanCursor c(&tree, ranges);
  Rid rid;
  // Consume all of range 1 (rids 6,7,8).
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(c.Next(nullptr, &rid));
  ScanPosition pos = c.CurrentPosition();

  IndexScanCursor c2(&tree, ranges);
  ASSERT_TRUE(c2.ResumeFrom(pos).ok());
  auto rest = DrainCursor(&c2);
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest.front(), 21u);
}

TEST(IndexScanCursorTest, ResumeRejectsWrongOrder) {
  auto tree = MakeTree(5);
  IndexScanCursor c(&tree, {KeyRange::All()});
  EXPECT_FALSE(c.ResumeFrom(ScanPosition::AtRid(3)).ok());
}

TEST(IndexProbeTest, YieldsAllMatches) {
  auto tree = MakeTree(40, /*stride=*/4);  // keys 0..9, 4 rids each
  IndexProbe probe(&tree);
  probe.Seek(Value(3), nullptr);
  std::vector<Rid> rids;
  Rid rid;
  while (probe.Next(nullptr, &rid)) rids.push_back(rid);
  ASSERT_EQ(rids.size(), 4u);
  EXPECT_EQ(rids.front(), 12u);
  EXPECT_EQ(rids.back(), 15u);
}

TEST(IndexProbeTest, MissingKeyYieldsNothing) {
  auto tree = MakeTree(10);
  IndexProbe probe(&tree);
  probe.Seek(Value(99), nullptr);
  Rid rid;
  EXPECT_FALSE(probe.Next(nullptr, &rid));
}

TEST(IndexProbeTest, ReusableAcrossSeeks) {
  auto tree = MakeTree(20, /*stride=*/2);
  IndexProbe probe(&tree);
  Rid rid;
  probe.Seek(Value(4), nullptr);
  int n1 = 0;
  while (probe.Next(nullptr, &rid)) ++n1;
  probe.Seek(Value(9), nullptr);
  int n2 = 0;
  while (probe.Next(nullptr, &rid)) ++n2;
  EXPECT_EQ(n1, 2);
  EXPECT_EQ(n2, 2);
}

TEST(IndexProbeTest, ChargesWork) {
  auto tree = MakeTree(1000);
  WorkCounter wc;
  IndexProbe probe(&tree);
  probe.Seek(Value(500), &wc);
  uint64_t after_seek = wc.total();
  EXPECT_GE(after_seek, WorkCounter::kIndexNodeVisit);
  Rid rid;
  while (probe.Next(&wc, &rid)) {
  }
  EXPECT_GT(wc.total(), after_seek);
}

// Property test: cursor over random ranges equals brute-force filter.
class IndexScanRangeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexScanRangeSweep, MatchesBruteForce) {
  Rng rng(GetParam());
  const int n = 500;
  std::vector<int64_t> keys;
  BPlusTree tree(DataType::kInt64, 8);
  for (int rid = 0; rid < n; ++rid) {
    int64_t k = rng.NextInt64(0, 60);
    keys.push_back(k);
    tree.Insert(Value(k), static_cast<Rid>(rid));
  }
  // Random disjoint ranges via NormalizeRanges.
  std::vector<KeyRange> ranges;
  int num_ranges = 1 + static_cast<int>(rng.NextUint64(4));
  for (int i = 0; i < num_ranges; ++i) {
    KeyRange r;
    int64_t lo = rng.NextInt64(0, 60);
    int64_t hi = lo + rng.NextInt64(0, 10);
    r.lo = Value(lo);
    r.hi = Value(hi);
    r.lo_inclusive = rng.NextBool();
    r.hi_inclusive = rng.NextBool();
    ranges.push_back(r);
  }
  ranges = NormalizeRanges(std::move(ranges));

  IndexScanCursor c(&tree, ranges);
  auto got = DrainCursor(&c);

  // Brute force: all (key, rid) sorted, filtered by range membership.
  std::vector<std::pair<int64_t, Rid>> sorted;
  for (int rid = 0; rid < n; ++rid) sorted.push_back({keys[rid], static_cast<Rid>(rid)});
  std::sort(sorted.begin(), sorted.end());
  std::vector<Rid> expected;
  for (const auto& [k, rid] : sorted) {
    for (const auto& r : ranges) {
      if (r.Contains(Value(k))) {
        expected.push_back(rid);
        break;
      }
    }
  }
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexScanRangeSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace ajr

// Property suite for ArtIndex, the read-only ART twin of the B+-tree.
//
// The two halves of the backend contract are exercised against reference
// models: result parity (every probe returns the same RID multiset as both a
// std::map model and the sibling B+-tree, for hits and misses, hinted and
// fresh) and charge parity (every probe charges exactly the work units the
// sibling B+-tree charges for the same key — the bit-identical-accounting
// guarantee the adaptive controller and the differential oracle rely on).
// Structural tests cover the ART specifics: byte-order iteration matching
// IndexKey order, Node4 -> 16 -> 48 -> 256 arity growth, path-compression
// edge keys (long shared prefixes, embedded NULs, prefix-ordered strings),
// and the codec corners (-0.0 vs +0.0, INT64_MIN/MAX).

#include "storage/art_index.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/work_counter.h"
#include "storage/bplus_tree.h"
#include "storage/key_codec.h"

namespace ajr {
namespace {

/// Probes `key` through the tree and the ART (fresh path) and requires
/// identical RIDs and identical work-unit charges.
void CheckProbeParity(const BPlusTree& tree, const ArtIndex& art,
                      const IndexKey& key) {
  WorkCounter tree_wc, art_wc;
  std::vector<Rid> tree_rids, art_rids;
  tree.Probe(key, &tree_wc, &tree_rids);
  art.Probe(key, &art_wc, &art_rids);
  ASSERT_EQ(tree_rids, art_rids);
  ASSERT_EQ(tree_wc.total(), art_wc.total())
      << "charge diverged on a probe with " << tree_rids.size() << " matches";
}

/// Builds the ART from `tree`, validates invariants, and cross-checks every
/// model key (hit) plus the given miss keys against both backends.
void CheckAgainstModel(const BPlusTree& tree,
                       const std::map<int64_t, std::vector<Rid>>& model,
                       const std::vector<int64_t>& miss_keys) {
  auto art = ArtIndex::BuildFromTree(tree);
  ASSERT_TRUE(art->CheckInvariants().ok()) << art->CheckInvariants().message();
  ASSERT_EQ(art->size(), tree.size());
  ASSERT_EQ(art->num_groups(), model.size());
  for (const auto& [k, rids] : model) {
    WorkCounter wc;
    std::vector<Rid> got;
    art->Probe(IndexKey::Int64(k), &wc, &got);
    ASSERT_EQ(got, rids) << "key " << k;
    CheckProbeParity(tree, *art, IndexKey::Int64(k));
  }
  for (int64_t k : miss_keys) {
    if (model.count(k) != 0) continue;
    WorkCounter wc;
    std::vector<Rid> got;
    art->Probe(IndexKey::Int64(k), &wc, &got);
    ASSERT_TRUE(got.empty()) << "miss key " << k << " returned RIDs";
    CheckProbeParity(tree, *art, IndexKey::Int64(k));
  }
}

TEST(ArtIndexTest, InsertProbeRoundTripVsMapModel) {
  Rng rng(20260809);
  for (int round = 0; round < 20; ++round) {
    // Alternate insert-built and bulk-loaded trees and vary the fanout so
    // both canonical leaf shapes (uniform packing and organic splits) are
    // covered.
    size_t fanout = static_cast<size_t>(rng.NextInt64(4, 16));
    BPlusTree tree(DataType::kInt64, fanout);
    std::map<int64_t, std::vector<Rid>> model;
    size_t n = static_cast<size_t>(rng.NextInt64(0, 400));
    int64_t key_span = rng.NextInt64(1, 200);  // dense spans force duplicates
    bool bulk = round % 2 == 0;
    std::vector<IndexEntry> entries;
    for (size_t i = 0; i < n; ++i) {
      int64_t k = rng.NextInt64(-key_span, key_span);
      Rid rid = static_cast<Rid>(i);
      model[k].push_back(rid);
      if (bulk) {
        entries.push_back({Value(k), rid});
      } else {
        tree.Insert(Value(k), rid);
      }
    }
    if (bulk) {
      std::sort(entries.begin(), entries.end());
      ASSERT_TRUE(tree.BulkLoad(std::move(entries)).ok());
    }
    std::vector<int64_t> misses;
    for (int i = 0; i < 50; ++i) {
      misses.push_back(rng.NextInt64(-key_span * 3, key_span * 3));
    }
    misses.push_back(INT64_MIN);
    misses.push_back(INT64_MAX);
    CheckAgainstModel(tree, model, misses);
  }
}

TEST(ArtIndexTest, EmptyIndexMatchesEmptyTree) {
  BPlusTree tree(DataType::kInt64);
  auto art = ArtIndex::BuildFromTree(tree);
  ASSERT_TRUE(art->CheckInvariants().ok());
  EXPECT_EQ(art->size(), 0u);
  EXPECT_EQ(art->num_groups(), 0u);
  CheckProbeParity(tree, *art, IndexKey::Int64(42));
  // Hinted probes on an empty index are misses with the canonical charge.
  auto state = art->NewProbeState();
  WorkCounter wc;
  std::vector<Rid> rids;
  art->ProbeHinted(IndexKey::Int64(7), state.get(), &wc, &rids);
  WorkCounter tree_wc;
  std::vector<Rid> tree_rids;
  tree.Probe(IndexKey::Int64(7), &tree_wc, &tree_rids);
  EXPECT_EQ(wc.total(), tree_wc.total());
  EXPECT_TRUE(rids.empty());
}

TEST(ArtIndexTest, ByteOrderIterationMatchesIndexKeyOrder) {
  Rng rng(7);
  // Strings with embedded NULs, shared prefixes, and prefix-of-each-other
  // pairs: group iteration must follow Value order, which is byte order.
  BPlusTree tree(DataType::kString, 8);
  std::vector<std::string> keys = {
      std::string("\0", 1),          std::string("\0\0", 2),
      std::string("\0a", 2),         "",
      "a",                           "ab",
      "abc",                         "abd",
      std::string("ab\0", 3),        std::string("ab\0\xff", 4),
      "b",                           "ba"};
  for (int i = 0; i < 200; ++i) {
    std::string s;
    for (int j = rng.NextInt64(0, 6); j > 0; --j) {
      s.push_back(static_cast<char>(rng.NextInt64(0, 3)));  // tiny alphabet
    }
    keys.push_back(s);
  }
  Rid rid = 0;
  for (const std::string& k : keys) tree.Insert(Value(k), rid++);
  auto art = ArtIndex::BuildFromTree(tree);
  ASSERT_TRUE(art->CheckInvariants().ok()) << art->CheckInvariants().message();
  for (size_t g = 1; g < art->num_groups(); ++g) {
    ASSERT_LT(art->GroupKey(g - 1).Compare(art->GroupKey(g)), 0)
        << "groups out of IndexKey order at " << g;
  }
  // Every inserted key probes back with parity; near-miss prefixes miss.
  for (const std::string& k : keys) {
    CheckProbeParity(tree, *art, IndexKey::String(k));
    CheckProbeParity(tree, *art, IndexKey::String(k + "x"));
    CheckProbeParity(tree, *art, IndexKey::String(k + std::string("\0", 1)));
  }
}

TEST(ArtIndexTest, NodeGrowth4To16To48To256) {
  // Distinct branch bytes at one position drive the branching node's arity:
  // keys i << 40 differ in byte 2 of the big-endian order encoding.
  auto build = [](int64_t distinct) {
    BPlusTree tree(DataType::kInt64);
    std::vector<IndexEntry> entries;
    for (int64_t i = 0; i < distinct; ++i) {
      entries.push_back({Value(i << 40), static_cast<Rid>(i)});
    }
    std::sort(entries.begin(), entries.end());
    EXPECT_TRUE(tree.BulkLoad(std::move(entries)).ok());
    return ArtIndex::BuildFromTree(tree);
  };
  auto counts3 = build(3)->node_counts();
  EXPECT_EQ(counts3.n4, 1u);
  EXPECT_EQ(counts3.n16 + counts3.n48 + counts3.n256, 0u);
  auto counts10 = build(10)->node_counts();
  EXPECT_EQ(counts10.n16, 1u);
  EXPECT_EQ(counts10.n4 + counts10.n48 + counts10.n256, 0u);
  auto counts30 = build(30)->node_counts();
  EXPECT_EQ(counts30.n48, 1u);
  EXPECT_EQ(counts30.n4 + counts30.n16 + counts30.n256, 0u);
  auto counts200 = build(200)->node_counts();
  EXPECT_EQ(counts200.n256, 1u);
  EXPECT_EQ(counts200.n4 + counts200.n16 + counts200.n48, 0u);
}

TEST(ArtIndexTest, PathCompressionEdgeKeys) {
  // Long shared prefixes collapse into compressed paths; keys differing
  // only in the final byte, and keys that extend one another, must all
  // resolve. Probes that diverge inside a compressed prefix (before, after,
  // and mid-prefix) must miss with the canonical charge.
  BPlusTree tree(DataType::kString, 8);
  std::string deep(100, 'p');
  std::vector<std::string> keys = {deep + "a", deep + "b", deep + "ba",
                                   deep + std::string("b\0", 2), "q", "qq"};
  Rid rid = 0;
  for (const std::string& k : keys) tree.Insert(Value(k), rid++);
  auto art = ArtIndex::BuildFromTree(tree);
  ASSERT_TRUE(art->CheckInvariants().ok()) << art->CheckInvariants().message();
  for (const std::string& k : keys) CheckProbeParity(tree, *art, IndexKey::String(k));
  std::vector<std::string> probes = {
      deep,                       // ends inside the compressed path
      deep.substr(0, 50) + "z",   // diverges above the prefix
      deep.substr(0, 50),         // ends mid-prefix
      deep + "c",                 // past every branch byte
      deep + "A",                 // before every branch byte
      "",
      std::string(200, 'p')};     // overruns every stored key
  for (const std::string& p : probes) {
    CheckProbeParity(tree, *art, IndexKey::String(p));
  }
}

TEST(ArtIndexTest, CodecCornerKeys) {
  // -0.0 canonicalizes to +0.0 in the codec; both probes must find the
  // same entries. INT64_MIN/MAX sit at the radix extremes.
  BPlusTree dtree(DataType::kDouble, 8);
  dtree.Insert(Value(0.0), 1);
  dtree.Insert(Value(-0.0), 2);
  dtree.Insert(Value(1.5), 3);
  dtree.Insert(Value(-1.5), 4);
  auto dart = ArtIndex::BuildFromTree(dtree);
  ASSERT_TRUE(dart->CheckInvariants().ok());
  for (double v : {0.0, -0.0, 1.5, -1.5, 2.5, -2.5}) {
    CheckProbeParity(dtree, *dart, IndexKey::Double(v));
  }
  WorkCounter wc;
  std::vector<Rid> rids;
  dart->Probe(IndexKey::Double(-0.0), &wc, &rids);
  EXPECT_EQ(rids, (std::vector<Rid>{1, 2}));

  BPlusTree itree(DataType::kInt64, 8);
  itree.Insert(Value(INT64_MIN), 1);
  itree.Insert(Value(INT64_MAX), 2);
  itree.Insert(Value(int64_t{0}), 3);
  itree.Insert(Value(int64_t{-1}), 4);
  auto iart = ArtIndex::BuildFromTree(itree);
  ASSERT_TRUE(iart->CheckInvariants().ok());
  for (int64_t v : {INT64_MIN, INT64_MAX, int64_t{0}, int64_t{-1}, int64_t{1},
                    INT64_MIN + 1, INT64_MAX - 1}) {
    CheckProbeParity(itree, *iart, IndexKey::Int64(v));
  }
}

TEST(ArtIndexTest, HintedProbesMatchFreshAcrossKeyMixes) {
  Rng rng(991);
  for (int round = 0; round < 10; ++round) {
    size_t fanout = static_cast<size_t>(rng.NextInt64(4, 32));
    BPlusTree tree(DataType::kInt64, fanout);
    std::vector<IndexEntry> entries;
    size_t n = static_cast<size_t>(rng.NextInt64(50, 2000));
    for (size_t i = 0; i < n; ++i) {
      entries.push_back(
          {Value(rng.NextInt64(0, static_cast<int64_t>(n / 2))),
           static_cast<Rid>(i)});
    }
    std::sort(entries.begin(), entries.end());
    ASSERT_TRUE(tree.BulkLoad(std::move(entries)).ok());
    auto art = ArtIndex::BuildFromTree(tree);
    ASSERT_TRUE(art->CheckInvariants().ok());

    // The executor's batch pattern: mostly-ascending runs with occasional
    // backward jumps and uniform noise, resolved through one ProbeState.
    auto state = art->NewProbeState();
    int64_t cursor = 0;
    for (int i = 0; i < 500; ++i) {
      double roll = rng.NextDouble();
      if (roll < 0.7) {
        cursor += rng.NextInt64(0, 3);
      } else if (roll < 0.85) {
        cursor = rng.NextInt64(0, static_cast<int64_t>(n / 2));
      } else {
        cursor -= rng.NextInt64(1, 20);
      }
      IndexKey key = IndexKey::Int64(cursor);
      WorkCounter fresh_wc, hint_wc;
      std::vector<Rid> fresh_rids, hint_rids;
      tree.Probe(key, &fresh_wc, &fresh_rids);
      art->ProbeHinted(key, state.get(), &hint_wc, &hint_rids);
      ASSERT_EQ(fresh_rids, hint_rids) << "key " << cursor;
      ASSERT_EQ(fresh_wc.total(), hint_wc.total())
          << "hinted charge diverged at key " << cursor;
    }
    // Reset forgets the position but changes nothing observable.
    state->Reset();
    CheckProbeParity(tree, *art, IndexKey::Int64(0));
  }
}

TEST(ArtIndexTest, BtreeProbeHintedMatchesFreshToo) {
  // The B+-tree's own Index-interface hinted path must honor the same
  // contract (it wraps SeekHinted, but the wiring deserves its own check).
  Rng rng(5);
  BPlusTree tree(DataType::kInt64, 8);
  std::vector<IndexEntry> entries;
  for (size_t i = 0; i < 500; ++i) {
    entries.push_back({Value(rng.NextInt64(0, 200)), static_cast<Rid>(i)});
  }
  std::sort(entries.begin(), entries.end());
  ASSERT_TRUE(tree.BulkLoad(std::move(entries)).ok());
  const Index& idx = tree;
  auto state = idx.NewProbeState();
  for (int64_t k = -5; k < 210; ++k) {
    IndexKey key = IndexKey::Int64(k);
    WorkCounter fresh_wc, hint_wc;
    std::vector<Rid> fresh_rids, hint_rids;
    idx.Probe(key, &fresh_wc, &fresh_rids);
    idx.ProbeHinted(key, state.get(), &hint_wc, &hint_rids);
    ASSERT_EQ(fresh_rids, hint_rids) << "key " << k;
    ASSERT_EQ(fresh_wc.total(), hint_wc.total()) << "key " << k;
  }
}

TEST(ArtIndexTest, Node16LowerBoundSimdMatchesScalarExhaustively) {
  // The SIMD Node16 key search must agree with the scalar reference on
  // every (sorted key set, probe byte) pair: random ascending unique key
  // sets at every count 0..16, crossed with all 256 probe bytes. The tail
  // of the 16-byte buffer is filled with adversarial garbage (0x00 / 0xFF /
  // random) to prove the count mask really excludes unused lanes.
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    uint32_t count = static_cast<uint32_t>(rng.NextInt64(0, 16));
    bool distinct[256] = {};
    uint32_t n = 0;
    while (n < count) {
      uint8_t k = static_cast<uint8_t>(rng.NextInt64(0, 255));
      if (!distinct[k]) {
        distinct[k] = true;
        ++n;
      }
    }
    uint8_t keys[16];
    uint32_t pos = 0;
    for (int k = 0; k < 256; ++k) {
      if (distinct[k]) keys[pos++] = static_cast<uint8_t>(k);
    }
    for (uint32_t i = count; i < 16; ++i) {
      int64_t roll = rng.NextInt64(0, 2);
      keys[i] = roll == 0 ? 0x00 : roll == 1 ? 0xFF
                : static_cast<uint8_t>(rng.NextInt64(0, 255));
    }
    for (int b = 0; b <= 255; ++b) {
      uint8_t probe = static_cast<uint8_t>(b);
      ASSERT_EQ(ArtIndex::Node16LowerBound(keys, count, probe),
                ArtIndex::Node16LowerBoundScalar(keys, count, probe))
          << "count " << count << " byte " << b;
    }
  }
}

TEST(ArtIndexTest, CapabilityGates) {
  BPlusTree tree(DataType::kInt64);
  auto art = ArtIndex::BuildFromTree(tree);
  EXPECT_EQ(art->backend(), IndexBackend::kArt);
  EXPECT_FALSE(art->SupportsRangeScan());
  EXPECT_FALSE(art->SupportsPositional());
  EXPECT_EQ(tree.backend(), IndexBackend::kBTree);
  EXPECT_TRUE(tree.SupportsRangeScan());
  EXPECT_TRUE(tree.SupportsPositional());
  EXPECT_EQ(IndexBackendName(IndexBackend::kArt), std::string("art"));
  EXPECT_EQ(ParseIndexBackend("btree"), IndexBackend::kBTree);
  EXPECT_EQ(ParseIndexBackend("bogus"), std::nullopt);
}

}  // namespace
}  // namespace ajr

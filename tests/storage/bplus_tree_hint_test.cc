// Property tests for hinted descent: SeekHinted / SeekAfterHinted must be
// drop-in replacements for Seek / SeekAfter — byte-identical iterator
// positions AND identical work-unit charges — over arbitrary key sequences
// (sorted runs, backward jumps, uniform noise) against trees of varied
// shape. The batched executor relies on both halves of this contract: the
// position for correctness, the as-if-fresh charge for bit-identical
// adaptation accounting.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "common/work_counter.h"
#include "storage/bplus_tree.h"
#include "storage/key_codec.h"

namespace ajr {
namespace {

/// Seeks `key` both ways and requires identical position and charge; then
/// walks both iterators a few entries to confirm the positions stay glued.
/// Returns whether the hinted side skipped the root descent.
bool CheckSeekPair(const BPlusTree& tree, const IndexKey& key, bool inclusive,
                   BPlusTree::SeekHint* hint, Rng* rng) {
  WorkCounter fresh_wc, hint_wc;
  BPlusTree::Iterator fresh = tree.Seek(key, inclusive, &fresh_wc);
  bool used_hint = false;
  BPlusTree::Iterator hinted =
      tree.SeekHinted(key, inclusive, hint, &hint_wc, &used_hint);
  EXPECT_EQ(fresh_wc.total(), hint_wc.total())
      << "hinted Seek charged differently (used_hint=" << used_hint << ")";
  int steps = static_cast<int>(rng->NextInt64(0, 3));
  for (int s = 0; ; ++s) {
    EXPECT_EQ(fresh.Valid(), hinted.Valid()) << "validity diverged at step " << s;
    if (!fresh.Valid() || !hinted.Valid() || s == steps) break;
    EXPECT_EQ(fresh.key_slot(), hinted.key_slot()) << "key diverged at step " << s;
    EXPECT_EQ(fresh.rid(), hinted.rid()) << "rid diverged at step " << s;
    if (fresh.key_slot() != hinted.key_slot() || fresh.rid() != hinted.rid()) break;
    fresh.Next(nullptr);
    hinted.Next(nullptr);
  }
  return used_hint;
}

void CheckSeekAfterPair(const BPlusTree& tree, const IndexKey& key, Rid rid,
                        BPlusTree::SeekHint* hint) {
  WorkCounter fresh_wc, hint_wc;
  BPlusTree::Iterator fresh = tree.SeekAfter(key, rid, &fresh_wc);
  BPlusTree::Iterator hinted = tree.SeekAfterHinted(key, rid, hint, &hint_wc);
  EXPECT_EQ(fresh_wc.total(), hint_wc.total());
  ASSERT_EQ(fresh.Valid(), hinted.Valid());
  if (fresh.Valid()) {
    ASSERT_EQ(fresh.key_slot(), hinted.key_slot());
    ASSERT_EQ(fresh.rid(), hinted.rid());
  }
}

/// A key stream with the mixes the executor produces: ascending runs
/// (sorted batches), repeats (hot keys), backward jumps (new batch after a
/// reorder), and uniform noise.
std::vector<int64_t> MixedKeySequence(Rng* rng, int64_t domain, size_t n) {
  std::vector<int64_t> keys;
  keys.reserve(n);
  int64_t cur = rng->NextInt64(0, domain);
  while (keys.size() < n) {
    switch (rng->NextInt64(0, 3)) {
      case 0: {  // ascending run
        size_t run = static_cast<size_t>(rng->NextInt64(2, 12));
        for (size_t i = 0; i < run && keys.size() < n; ++i) {
          cur += rng->NextInt64(0, 4);
          keys.push_back(cur % (domain + 1));
        }
        break;
      }
      case 1:  // repeat (hot key)
        keys.push_back(cur);
        break;
      case 2:  // backward jump
        cur = rng->NextInt64(0, cur);
        keys.push_back(cur);
        break;
      default:  // uniform
        cur = rng->NextInt64(0, domain);
        keys.push_back(cur);
        break;
    }
  }
  return keys;
}

TEST(BPlusTreeHintTest, MatchesFreshSeekOnMixedSequences) {
  Rng rng(20070401);
  for (int round = 0; round < 30; ++round) {
    size_t fanout = static_cast<size_t>(rng.NextInt64(4, 64));
    int64_t domain = rng.NextInt64(50, 5000);
    size_t n = static_cast<size_t>(rng.NextInt64(100, 3000));
    BPlusTree tree(DataType::kInt64, fanout);
    if (rng.NextBool(0.5)) {
      std::vector<BPlusTree::EncodedEntry> sorted;
      for (size_t i = 0; i < n; ++i) {
        sorted.push_back({OrderEncodeInt64(rng.NextInt64(0, domain)),
                          static_cast<Rid>(i)});
      }
      std::sort(sorted.begin(), sorted.end(),
                [](const BPlusTree::EncodedEntry& a, const BPlusTree::EncodedEntry& b) {
                  return a.key != b.key ? a.key < b.key : a.rid < b.rid;
                });
      ASSERT_TRUE(tree.BulkLoadEncoded(std::move(sorted)).ok());
    } else {
      for (size_t i = 0; i < n; ++i) {
        tree.Insert(Value(rng.NextInt64(0, domain)), static_cast<Rid>(i));
      }
    }
    ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();

    BPlusTree::SeekHint hint;
    size_t hints_used = 0;
    for (int64_t k : MixedKeySequence(&rng, domain, 400)) {
      bool inclusive = rng.NextBool(0.8);
      hints_used += CheckSeekPair(tree, IndexKey::Int64(k), inclusive, &hint, &rng);
      if (HasFailure()) return;
    }
    // The stream is ~1/4 ascending runs; the hint must actually engage.
    EXPECT_GT(hints_used, 0u) << "hint never resumed in round " << round;
  }
}

TEST(BPlusTreeHintTest, MatchesFreshSeekOnStringKeys) {
  Rng rng(42);
  BPlusTree tree(DataType::kString, /*fanout=*/8);
  for (int i = 0; i < 800; ++i) {
    tree.Insert(Value(std::string("key_") + std::to_string(rng.NextInt64(0, 300))),
                static_cast<Rid>(i));
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
  BPlusTree::SeekHint hint;
  for (int i = 0; i < 300; ++i) {
    std::string probe = "key_" + std::to_string(rng.NextInt64(0, 330));
    CheckSeekPair(tree, IndexKey::String(probe), rng.NextBool(0.8), &hint, &rng);
    if (HasFailure()) return;
  }
}

TEST(BPlusTreeHintTest, SeekAfterMatchesAcrossResume) {
  // The demotion/re-promotion pattern: a leg repeatedly resumes its scan
  // from a saved (key, rid) cursor — sometimes far ahead of the hint,
  // sometimes behind it, interleaved with plain hinted seeks.
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    size_t fanout = static_cast<size_t>(rng.NextInt64(4, 32));
    int64_t domain = rng.NextInt64(20, 500);
    BPlusTree tree(DataType::kInt64, fanout);
    std::vector<std::pair<int64_t, Rid>> entries;
    for (int i = 0; i < 1500; ++i) {
      int64_t k = rng.NextInt64(0, domain);
      tree.Insert(Value(k), static_cast<Rid>(i));
      entries.push_back({k, static_cast<Rid>(i)});
    }
    ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
    BPlusTree::SeekHint hint;
    for (int i = 0; i < 200; ++i) {
      if (rng.NextBool(0.5)) {
        // Resume after a real stored entry (a kept cursor) or a synthetic
        // (key, rid) pair that may fall between entries.
        auto [k, rid] = entries[static_cast<size_t>(
            rng.NextInt64(0, static_cast<int64_t>(entries.size()) - 1))];
        if (rng.NextBool(0.3)) rid += static_cast<Rid>(rng.NextInt64(0, 3));
        CheckSeekAfterPair(tree, IndexKey::Int64(k), rid, &hint);
      } else {
        CheckSeekPair(tree, IndexKey::Int64(rng.NextInt64(0, domain)),
                      rng.NextBool(0.8), &hint, &rng);
      }
      if (HasFailure()) return;
    }
  }
}

TEST(BPlusTreeHintTest, HintSurvivesPastEndAndEmptyTrees) {
  BPlusTree empty(DataType::kInt64);
  BPlusTree::SeekHint hint;
  WorkCounter wc;
  EXPECT_FALSE(empty.SeekHinted(IndexKey::Int64(1), true, &hint, &wc).Valid());

  BPlusTree tree(DataType::kInt64, /*fanout=*/4);
  for (int i = 0; i < 100; ++i) tree.Insert(Value(int64_t{i}), static_cast<Rid>(i));
  hint.Reset();
  Rng rng(3);
  // Past-end probes must park the hint safely; later in-range probes must
  // still agree with fresh descents.
  for (int64_t k : {int64_t{200}, int64_t{99}, int64_t{300}, int64_t{0},
                    int64_t{50}, int64_t{1000}, int64_t{51}}) {
    CheckSeekPair(tree, IndexKey::Int64(k), true, &hint, &rng);
    if (HasFailure()) return;
  }
}

}  // namespace
}  // namespace ajr

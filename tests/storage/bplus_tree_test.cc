#include "storage/bplus_tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace ajr {
namespace {

std::vector<IndexEntry> Drain(const BPlusTree& tree) {
  std::vector<IndexEntry> out;
  for (auto it = tree.SeekFirst(nullptr); it.Valid(); it.Next(nullptr)) {
    out.push_back({it.key(), it.rid()});
  }
  return out;
}

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree(DataType::kInt64);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_FALSE(tree.SeekFirst(nullptr).Valid());
  EXPECT_FALSE(tree.Seek(Value(5), true, nullptr).Valid());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, SingleInsert) {
  BPlusTree tree(DataType::kInt64);
  tree.Insert(Value(42), 7);
  auto it = tree.SeekFirst(nullptr);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().AsInt64(), 42);
  EXPECT_EQ(it.rid(), 7u);
  it.Next(nullptr);
  EXPECT_FALSE(it.Valid());
}

TEST(BPlusTreeTest, InsertsComeOutSorted) {
  BPlusTree tree(DataType::kInt64, /*fanout=*/8);
  Rng rng(17);
  std::vector<IndexEntry> expected;
  for (int i = 0; i < 2000; ++i) {
    Value key(rng.NextInt64(0, 300));
    Rid rid = static_cast<Rid>(i);
    tree.Insert(key, rid);
    expected.push_back({key, rid});
  }
  std::sort(expected.begin(), expected.end());
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
  auto got = Drain(tree);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, expected[i].key) << "at " << i;
    EXPECT_EQ(got[i].rid, expected[i].rid) << "at " << i;
  }
  EXPECT_GT(tree.height(), 1u);
}

TEST(BPlusTreeTest, StringKeys) {
  BPlusTree tree(DataType::kString, 4);
  const char* makes[] = {"Mercedes", "Audi", "Chevrolet", "BMW", "Mazda"};
  for (Rid i = 0; i < 5; ++i) tree.Insert(Value(makes[i]), i);
  auto got = Drain(tree);
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0].key.AsString(), "Audi");
  EXPECT_EQ(got[4].key.AsString(), "Mercedes");
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, DuplicateKeysOrderedByRid) {
  BPlusTree tree(DataType::kInt64, 4);
  for (Rid r : {9u, 3u, 7u, 1u, 5u}) tree.Insert(Value(10), r);
  auto got = Drain(tree);
  ASSERT_EQ(got.size(), 5u);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(got[i - 1].rid, got[i].rid);
  }
}

TEST(BPlusTreeTest, SeekInclusiveExclusive) {
  BPlusTree tree(DataType::kInt64, 4);
  for (int k : {10, 20, 20, 30}) {
    static Rid rid = 0;
    tree.Insert(Value(k), rid++);
  }
  auto inc = tree.Seek(Value(20), true, nullptr);
  ASSERT_TRUE(inc.Valid());
  EXPECT_EQ(inc.key().AsInt64(), 20);
  auto exc = tree.Seek(Value(20), false, nullptr);
  ASSERT_TRUE(exc.Valid());
  EXPECT_EQ(exc.key().AsInt64(), 30);
  auto past = tree.Seek(Value(31), true, nullptr);
  EXPECT_FALSE(past.Valid());
  auto before = tree.Seek(Value(5), true, nullptr);
  ASSERT_TRUE(before.Valid());
  EXPECT_EQ(before.key().AsInt64(), 10);
}

TEST(BPlusTreeTest, SeekAfterSkipsExactEntry) {
  BPlusTree tree(DataType::kInt64, 4);
  tree.Insert(Value(20), 5);
  tree.Insert(Value(20), 6);
  tree.Insert(Value(21), 0);
  auto it = tree.SeekAfter(Value(20), 5, nullptr);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().AsInt64(), 20);
  EXPECT_EQ(it.rid(), 6u);
  it = tree.SeekAfter(Value(20), 6, nullptr);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().AsInt64(), 21);
  it = tree.SeekAfter(Value(21), 0, nullptr);
  EXPECT_FALSE(it.Valid());
}

TEST(BPlusTreeTest, BulkLoadMatchesInserts) {
  Rng rng(23);
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 5000; ++i) {
    entries.push_back({Value(rng.NextInt64(0, 1000)), static_cast<Rid>(i)});
  }
  std::sort(entries.begin(), entries.end());

  BPlusTree bulk(DataType::kInt64, 16);
  ASSERT_TRUE(bulk.BulkLoad(entries).ok());
  ASSERT_TRUE(bulk.CheckInvariants().ok()) << bulk.CheckInvariants();
  EXPECT_EQ(bulk.size(), entries.size());

  auto got = Drain(bulk);
  ASSERT_EQ(got.size(), entries.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].Compare(entries[i]), 0) << "at " << i;
  }
}

TEST(BPlusTreeTest, BulkLoadRejectsUnsorted) {
  BPlusTree tree(DataType::kInt64);
  std::vector<IndexEntry> bad = {{Value(2), 0}, {Value(1), 0}};
  EXPECT_FALSE(tree.BulkLoad(bad).ok());
}

TEST(BPlusTreeTest, BulkLoadEmpty) {
  BPlusTree tree(DataType::kInt64);
  ASSERT_TRUE(tree.BulkLoad({}).ok());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.SeekFirst(nullptr).Valid());
}

TEST(BPlusTreeTest, SeekChargesNodeVisits) {
  BPlusTree tree(DataType::kInt64, 8);
  for (int i = 0; i < 1000; ++i) tree.Insert(Value(i), static_cast<Rid>(i));
  WorkCounter wc;
  tree.Seek(Value(500), true, &wc);
  EXPECT_GE(wc.total(), tree.height() * WorkCounter::kIndexNodeVisit);
}

TEST(BPlusTreeTest, CountFunctionsMatchBruteForce) {
  Rng rng(99);
  BPlusTree tree(DataType::kInt64, 8);
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 4000; ++i) {
    Value key(rng.NextInt64(0, 100));
    tree.Insert(key, static_cast<Rid>(i));
    entries.push_back({key, static_cast<Rid>(i)});
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
  std::sort(entries.begin(), entries.end());
  for (int64_t k : {-1, 0, 13, 50, 99, 100, 101}) {
    size_t lt = 0, le = 0;
    for (const auto& e : entries) {
      if (e.key < Value(k)) ++lt;
      if (e.key <= Value(k)) ++le;
    }
    EXPECT_EQ(tree.CountKeyLess(Value(k)), lt) << "k=" << k;
    EXPECT_EQ(tree.CountKeyLessEqual(Value(k)), le) << "k=" << k;
  }
  // CountEntriesAfter from a mid-stream position.
  IndexEntry mid = entries[entries.size() / 2];
  size_t after = 0;
  for (const auto& e : entries) {
    if (e.Compare(mid) > 0) ++after;
  }
  EXPECT_EQ(tree.CountEntriesAfter(mid.key, mid.rid), after);
}

TEST(BPlusTreeTest, CountsAfterBulkLoad) {
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 1000; ++i) entries.push_back({Value(i / 10), static_cast<Rid>(i)});
  BPlusTree tree(DataType::kInt64, 16);
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
  EXPECT_EQ(tree.CountKeyLess(Value(50)), 500u);
  EXPECT_EQ(tree.CountKeyLessEqual(Value(50)), 510u);
  EXPECT_EQ(tree.CountEntriesAfter(Value(50), 509), 490u);
}

// Property sweep: random workloads at several fanouts must preserve sorted
// order and structural invariants.
class BPlusTreeFanoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(BPlusTreeFanoutSweep, RandomWorkloadKeepsInvariants) {
  const size_t fanout = static_cast<size_t>(GetParam());
  Rng rng(1000 + fanout);
  BPlusTree tree(DataType::kInt64, fanout);
  std::vector<IndexEntry> expected;
  for (int i = 0; i < 3000; ++i) {
    Value key(rng.NextInt64(-50, 50));
    tree.Insert(key, static_cast<Rid>(i));
    expected.push_back({key, static_cast<Rid>(i)});
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
  std::sort(expected.begin(), expected.end());
  auto got = Drain(tree);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].Compare(expected[i]), 0) << "fanout " << fanout << " at " << i;
  }
  // Every present key must be findable via Seek.
  for (int k = -50; k <= 50; ++k) {
    auto it = tree.Seek(Value(k), true, nullptr);
    auto lb = std::lower_bound(expected.begin(), expected.end(),
                               IndexEntry{Value(k), 0});
    if (lb == expected.end()) {
      EXPECT_FALSE(it.Valid());
    } else {
      ASSERT_TRUE(it.Valid());
      EXPECT_EQ(it.key().Compare(lb->key), 0);
      EXPECT_EQ(it.rid(), lb->rid);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BPlusTreeFanoutSweep,
                         ::testing::Values(4, 5, 8, 16, 64, 128));

}  // namespace
}  // namespace ajr

#include "storage/heap_table.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"

namespace ajr {
namespace {

Schema TwoColSchema() {
  return Schema({{"id", DataType::kInt64}, {"name", DataType::kString}});
}

Schema AllTypesSchema() {
  return Schema({{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"b", DataType::kBool},
                 {"s", DataType::kString}});
}

TEST(HeapTableTest, AppendAssignsDenseRids) {
  HeapTable t("t", TwoColSchema());
  for (int i = 0; i < 100; ++i) {
    auto rid = t.Append({Value(i), Value("row")});
    ASSERT_TRUE(rid.ok());
    EXPECT_EQ(*rid, static_cast<Rid>(i));
  }
  EXPECT_EQ(t.num_rows(), 100u);
}

TEST(HeapTableTest, GetReturnsAppendedRow) {
  HeapTable t("t", TwoColSchema());
  ASSERT_TRUE(t.Append({Value(7), Value("seven")}).ok());
  const Row& r = t.Get(0);
  EXPECT_EQ(r[0].AsInt64(), 7);
  EXPECT_EQ(r[1].AsString(), "seven");
}

TEST(HeapTableTest, SchemaMismatchRejected) {
  HeapTable t("t", TwoColSchema());
  EXPECT_FALSE(t.Append({Value(1)}).ok());
  EXPECT_FALSE(t.Append({Value("x"), Value("y")}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(HeapTableTest, FetchChargesWork) {
  HeapTable t("t", TwoColSchema());
  ASSERT_TRUE(t.Append({Value(1), Value("a")}).ok());
  WorkCounter wc;
  t.Fetch(0, &wc);
  t.Fetch(0, &wc);
  EXPECT_EQ(wc.total(), 2 * WorkCounter::kRowFetch);
  t.Fetch(0, nullptr);  // null counter is a no-op
}

TEST(HeapTableTest, RowWriterAndViewAccessors) {
  HeapTable t("t", AllTypesSchema());
  Rid rid = t.NewRow().I64(-42).F64(2.75).Bool(true).Str("hello").Finish();
  EXPECT_EQ(rid, 0u);
  RowView v = t.View(rid);
  ASSERT_TRUE(v.valid());
  EXPECT_EQ(v.num_slots(), 4u);
  EXPECT_EQ(v.GetInt64(0), -42);
  EXPECT_DOUBLE_EQ(v.GetDouble(1), 2.75);
  EXPECT_TRUE(v.GetBool(2));
  EXPECT_EQ(v.GetString(3), "hello");
  // Materialization paths agree with the typed accessors.
  EXPECT_EQ(v.GetValue(0), Value(int64_t{-42}));
  EXPECT_EQ(v.GetValue(3), Value("hello"));
  Row r = v.ToRow();
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[1], Value(2.75));
  EXPECT_EQ(r[2], Value(true));
}

TEST(HeapTableTest, StringInterningDeduplicates) {
  HeapTable t("t", TwoColSchema());
  for (int i = 0; i < 50; ++i) {
    t.NewRow().I64(i).Str(i % 2 == 0 ? "even" : "odd").Finish();
  }
  // Only two distinct strings were ever stored.
  EXPECT_EQ(t.pool().size(), 2u);
  EXPECT_EQ(t.View(0).GetStringId(1), t.View(2).GetStringId(1));
  EXPECT_NE(t.View(0).GetStringId(1), t.View(1).GetStringId(1));
  EXPECT_EQ(t.View(49).GetString(1), "odd");
}

TEST(HeapTableDeathTest, OutOfRangeRidAborts) {
  HeapTable t("t", TwoColSchema());
  EXPECT_DEATH(t.Get(0), "AJR_CHECK failed");  // empty table
  ASSERT_TRUE(t.Append({Value(1), Value("a")}).ok());
  EXPECT_DEATH(t.Get(1), "AJR_CHECK failed");
  EXPECT_DEATH(t.View(1), "AJR_CHECK failed");
  EXPECT_DEATH(t.Fetch(1, nullptr), "AJR_CHECK failed");
  EXPECT_DEATH(t.View(static_cast<Rid>(-1)), "AJR_CHECK failed");
}

// Property test: random rows of every type round-trip through the typed
// pages bit-for-bit. Row count deliberately crosses the 4096-row page
// boundary so stitching across pages is exercised.
TEST(HeapTableTest, RandomRowsRoundTripThroughTypedPages) {
  HeapTable t("t", AllTypesSchema());
  std::vector<Row> expected;
  Rng rng(20070415);
  const size_t kRows = 2 * 4096 + 37;
  expected.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    int64_t iv = rng.NextInt64(INT64_MIN / 2, INT64_MAX / 2);
    double dv = (rng.NextDouble() - 0.5) * 1e12;
    bool bv = rng.NextBool();
    std::string sv = "s" + std::to_string(rng.NextInt64(0, 199));
    Rid rid = t.NewRow().I64(iv).F64(dv).Bool(bv).Str(sv).Finish();
    ASSERT_EQ(rid, i);
    expected.push_back({Value(iv), Value(dv), Value(bv), Value(std::move(sv))});
  }
  ASSERT_EQ(t.num_rows(), kRows);
  for (size_t i = 0; i < kRows; ++i) {
    RowView v = t.View(i);
    const Row& want = expected[i];
    // Typed accessors...
    ASSERT_EQ(v.GetInt64(0), want[0].AsInt64()) << "row " << i;
    ASSERT_EQ(v.GetDouble(1), want[1].AsDouble()) << "row " << i;
    ASSERT_EQ(v.GetBool(2), want[2].AsBool()) << "row " << i;
    ASSERT_EQ(v.GetString(3), want[3].AsString()) << "row " << i;
    // ...and the materialized row: same types, same values.
    Row got = v.ToRow();
    ASSERT_EQ(got.size(), want.size());
    for (size_t c = 0; c < want.size(); ++c) {
      ASSERT_EQ(got[c].type(), want[c].type()) << "row " << i << " col " << c;
      ASSERT_EQ(got[c], want[c]) << "row " << i << " col " << c;
    }
  }
}

}  // namespace
}  // namespace ajr

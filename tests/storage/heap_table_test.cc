#include "storage/heap_table.h"

#include <gtest/gtest.h>

namespace ajr {
namespace {

Schema TwoColSchema() {
  return Schema({{"id", DataType::kInt64}, {"name", DataType::kString}});
}

TEST(HeapTableTest, AppendAssignsDenseRids) {
  HeapTable t("t", TwoColSchema());
  for (int i = 0; i < 100; ++i) {
    auto rid = t.Append({Value(i), Value("row")});
    ASSERT_TRUE(rid.ok());
    EXPECT_EQ(*rid, static_cast<Rid>(i));
  }
  EXPECT_EQ(t.num_rows(), 100u);
}

TEST(HeapTableTest, GetReturnsAppendedRow) {
  HeapTable t("t", TwoColSchema());
  ASSERT_TRUE(t.Append({Value(7), Value("seven")}).ok());
  const Row& r = t.Get(0);
  EXPECT_EQ(r[0].AsInt64(), 7);
  EXPECT_EQ(r[1].AsString(), "seven");
}

TEST(HeapTableTest, SchemaMismatchRejected) {
  HeapTable t("t", TwoColSchema());
  EXPECT_FALSE(t.Append({Value(1)}).ok());
  EXPECT_FALSE(t.Append({Value("x"), Value("y")}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(HeapTableTest, FetchChargesWork) {
  HeapTable t("t", TwoColSchema());
  ASSERT_TRUE(t.Append({Value(1), Value("a")}).ok());
  WorkCounter wc;
  t.Fetch(0, &wc);
  t.Fetch(0, &wc);
  EXPECT_EQ(wc.total(), 2 * WorkCounter::kRowFetch);
  t.Fetch(0, nullptr);  // null counter is a no-op
}

}  // namespace
}  // namespace ajr

#include "types/schema.h"

#include <gtest/gtest.h>

namespace ajr {
namespace {

Schema CarSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"ownerid", DataType::kInt64},
                 {"make", DataType::kString},
                 {"year", DataType::kInt64}});
}

TEST(SchemaTest, ColumnLookup) {
  Schema s = CarSchema();
  EXPECT_EQ(s.num_columns(), 4u);
  auto idx = s.ColumnIndex("make");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2u);
  EXPECT_EQ(s.column(2).name, "make");
  EXPECT_EQ(s.column(2).type, DataType::kString);
}

TEST(SchemaTest, MissingColumnIsNotFound) {
  Schema s = CarSchema();
  auto idx = s.ColumnIndex("color");
  ASSERT_FALSE(idx.ok());
  EXPECT_EQ(idx.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, RowMatches) {
  Schema s = CarSchema();
  Row good = {Value(1), Value(10), Value("Mazda"), Value(1999)};
  EXPECT_TRUE(s.RowMatches(good));
  Row wrong_arity = {Value(1), Value(10)};
  EXPECT_FALSE(s.RowMatches(wrong_arity));
  Row wrong_type = {Value(1), Value(10), Value(5), Value(1999)};
  EXPECT_FALSE(s.RowMatches(wrong_type));
}

TEST(SchemaTest, ToStringListsColumns) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.ToString(), "a:INT64, b:STRING");
}

TEST(SchemaTest, EmptySchema) {
  Schema s;
  EXPECT_EQ(s.num_columns(), 0u);
  EXPECT_TRUE(s.RowMatches({}));
  EXPECT_FALSE(s.ColumnIndex("x").ok());
}

}  // namespace
}  // namespace ajr

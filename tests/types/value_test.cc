#include "types/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ajr {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value(true).type(), DataType::kBool);
  EXPECT_EQ(Value(int64_t{5}).type(), DataType::kInt64);
  EXPECT_EQ(Value(3.5).type(), DataType::kDouble);
  EXPECT_EQ(Value("hi").type(), DataType::kString);
  EXPECT_TRUE(Value(true).AsBool());
  EXPECT_EQ(Value(int64_t{5}).AsInt64(), 5);
  EXPECT_DOUBLE_EQ(Value(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, DefaultIsInt64Zero) {
  Value v;
  EXPECT_EQ(v.type(), DataType::kInt64);
  EXPECT_EQ(v.AsInt64(), 0);
}

TEST(ValueTest, IntComparison) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_EQ(Value(2), Value(2));
  EXPECT_GT(Value(3), Value(2));
  EXPECT_LE(Value(2), Value(2));
  EXPECT_GE(Value(2), Value(2));
  EXPECT_NE(Value(1), Value(2));
}

TEST(ValueTest, StringComparisonIsLexicographic) {
  EXPECT_LT(Value("Audi"), Value("BMW"));
  EXPECT_LT(Value("BMW"), Value("Mercedes"));
  EXPECT_EQ(Value("Audi"), Value("Audi"));
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_LT(Value(2), Value(2.5));
  EXPECT_GT(Value(3.5), Value(3));
}

TEST(ValueTest, BoolComparison) {
  EXPECT_LT(Value(false), Value(true));
  EXPECT_EQ(Value(true), Value(true));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("x").ToString(), "'x'");
  EXPECT_EQ(Value(true).ToString(), "true");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(7).Hash(), Value(7).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  // Different values collide with negligible probability.
  EXPECT_NE(Value(7).Hash(), Value(8).Hash());
}

TEST(ValueTest, HashConsistentAcrossNumericTypes) {
  // Value(2) == Value(2.0), so their hashes must match too — otherwise
  // hash-based IN sets silently miss cross-type members.
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_EQ(Value(2).Hash(), Value(2.0).Hash());
  EXPECT_EQ(Value(-17).Hash(), Value(-17.0).Hash());
  EXPECT_EQ(Value(0).Hash(), Value(0.0).Hash());
  // 0.0 and -0.0 compare equal, so they must hash equal as well.
  EXPECT_EQ(Value(0.0), Value(-0.0));
  EXPECT_EQ(Value(0.0).Hash(), Value(-0.0).Hash());
  EXPECT_EQ(Value(0).Hash(), Value(-0.0).Hash());
  // Non-integral doubles are not equal to any int64 and need not collide.
  EXPECT_NE(Value(2), Value(2.5));
}

TEST(ValueTest, UnorderedSetCollapsesCrossTypeNumerics) {
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value(2));
  set.insert(Value(2.0));  // equal to the int, must not add a second element
  set.insert(Value(2.5));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Value(2)));
  EXPECT_TRUE(set.count(Value(2.0)));
  EXPECT_TRUE(set.count(Value(2.5)));
  EXPECT_FALSE(set.count(Value(3)));
}

TEST(ValueTest, UsableInUnorderedSet) {
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value(1));
  set.insert(Value(1));
  set.insert(Value("a"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Value(1)));
  EXPECT_TRUE(set.count(Value("a")));
  EXPECT_FALSE(set.count(Value(2)));
}

TEST(ValueTest, AsNumeric) {
  EXPECT_DOUBLE_EQ(Value(4).AsNumeric(), 4.0);
  EXPECT_DOUBLE_EQ(Value(4.25).AsNumeric(), 4.25);
}

class ValueOrderSweep
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(ValueOrderSweep, CompareMatchesNativeOrder) {
  auto [a, b] = GetParam();
  EXPECT_EQ(Value(a).Compare(Value(b)) < 0, a < b);
  EXPECT_EQ(Value(a).Compare(Value(b)) == 0, a == b);
  EXPECT_EQ(Value(a).Compare(Value(b)) > 0, a > b);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ValueOrderSweep,
    ::testing::Values(std::pair<int64_t, int64_t>{-5, 3},
                      std::pair<int64_t, int64_t>{0, 0},
                      std::pair<int64_t, int64_t>{7, -7},
                      std::pair<int64_t, int64_t>{INT64_MIN, INT64_MAX},
                      std::pair<int64_t, int64_t>{100, 100}));

}  // namespace
}  // namespace ajr

#include "workload/dmv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace ajr {
namespace {

// One shared small-scale data set for all tests in this file (generation at
// 10K owners is the expensive part).
class DmvTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    DmvConfig config;
    config.num_owners = 10000;
    auto cards = GenerateDmv(catalog_, config);
    ASSERT_TRUE(cards.ok()) << cards.status();
    cards_ = *cards;
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  static const TableEntry& Table(const std::string& name) {
    auto t = catalog_->GetTable(name);
    EXPECT_TRUE(t.ok());
    return **t;
  }

  static Catalog* catalog_;
  static DmvCardinalities cards_;
};

Catalog* DmvTest::catalog_ = nullptr;
DmvCardinalities DmvTest::cards_;

TEST_F(DmvTest, CardinalitiesScaleLikeTable1) {
  // Paper's Table 1 ratios: Car/Owner = 1.11676, Accidents/Owner = 2.79125.
  EXPECT_EQ(cards_.owner, 10000u);
  EXPECT_EQ(cards_.demographics, 10000u);
  EXPECT_EQ(cards_.car, 11168u);       // round(10000 * 1.11676)
  EXPECT_EQ(cards_.accidents, 27913u);  // round(10000 * 2.79125)
  EXPECT_EQ(cards_.location, 5000u);
  EXPECT_EQ(cards_.time, 3652u);
}

TEST_F(DmvTest, DeterministicAcrossRuns) {
  Catalog other;
  DmvConfig config;
  config.num_owners = 500;
  auto cards = GenerateDmv(&other, config);
  ASSERT_TRUE(cards.ok());

  Catalog again;
  auto cards2 = GenerateDmv(&again, config);
  ASSERT_TRUE(cards2.ok());
  ASSERT_EQ(cards->car, cards2->car);

  const HeapTable& a = (*other.GetTable("car"))->table();
  const HeapTable& b = (*again.GetTable("car"))->table();
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (Rid r = 0; r < a.num_rows(); ++r) {
    ASSERT_EQ(a.Get(r), b.Get(r)) << "row " << r;
  }
}

TEST_F(DmvTest, ModelDeterminesMake) {
  // Example 2's correlation: every model name maps to exactly one make.
  const HeapTable& car = Table("car").table();
  std::map<std::string, std::string> model_to_make;
  for (Rid r = 0; r < car.num_rows(); ++r) {
    const Row& row = car.Get(r);
    auto [it, inserted] = model_to_make.emplace(row[3].AsString(), row[2].AsString());
    ASSERT_EQ(it->second, row[2].AsString())
        << "model " << row[3].AsString() << " appears under two makes";
  }
  EXPECT_GT(model_to_make.size(), 50u);  // most of the 100 models occur
}

TEST_F(DmvTest, CityDeterminesCountry3) {
  const HeapTable& owner = Table("owner").table();
  std::map<std::string, std::string> city_to_country;
  for (Rid r = 0; r < owner.num_rows(); ++r) {
    const Row& row = owner.Get(r);
    auto [it, inserted] = city_to_country.emplace(row[4].AsString(), row[3].AsString());
    ASSERT_EQ(it->second, row[3].AsString())
        << "city " << row[4].AsString() << " appears in two countries";
  }
}

TEST_F(DmvTest, CountrySkewHasHeavyHead) {
  const HeapTable& owner = Table("owner").table();
  size_t us = 0;
  for (Rid r = 0; r < owner.num_rows(); ++r) {
    if (owner.Get(r)[3].AsString() == "US") ++us;
  }
  double frac = static_cast<double>(us) / owner.num_rows();
  // Zipf(20, 1.0) head is ~27.8%; far above the uniform 5% the optimizer
  // assumes. Allow slack for sampling noise.
  EXPECT_GT(frac, 0.2);
  EXPECT_LT(frac, 0.4);
}

TEST_F(DmvTest, SalaryCorrelatesWithMakeTier) {
  // Example 1's correlation: P(salary < 50000) is high for economy-make
  // owners and low for luxury-make owners.
  const HeapTable& car = Table("car").table();
  const HeapTable& demo = Table("demographics").table();
  // demographics is 1:1 with owner by construction (rid == ownerid).
  auto poor_given_make = [&](const std::string& make) {
    size_t total = 0, poor = 0;
    for (Rid r = 0; r < car.num_rows(); ++r) {
      const Row& row = car.Get(r);
      if (row[2].AsString() != make) continue;
      ++total;
      int64_t ownerid = row[1].AsInt64();
      if (demo.Get(ownerid)[1].AsInt64() < 50000) ++poor;
    }
    return total == 0 ? -1.0 : static_cast<double>(poor) / total;
  };
  double chevy = poor_given_make("Chevrolet");
  double mercedes = poor_given_make("Mercedes");
  ASSERT_GE(chevy, 0.0);
  ASSERT_GE(mercedes, 0.0);
  EXPECT_GT(chevy, 0.55);
  EXPECT_LT(mercedes, 0.30);
  EXPECT_GT(chevy, mercedes * 2.5);
}

TEST_F(DmvTest, AmericanMakesRareInEurope) {
  // Example 1: "relatively few Chevrolet cars sold in Germany".
  const HeapTable& car = Table("car").table();
  const HeapTable& owner = Table("owner").table();
  size_t german_cars = 0, german_chevy = 0, us_cars = 0, us_chevy = 0;
  for (Rid r = 0; r < car.num_rows(); ++r) {
    const Row& row = car.Get(r);
    // View's string_view points into the owner table's pool (stable); a
    // reference into Get()'s temporary Row would dangle.
    std::string_view country =
        owner.View(static_cast<Rid>(row[1].AsInt64())).GetString(3);
    bool is_chevy = row[2].AsString() == "Chevrolet";
    if (country == "DE") {
      ++german_cars;
      german_chevy += is_chevy;
    } else if (country == "US") {
      ++us_cars;
      us_chevy += is_chevy;
    }
  }
  ASSERT_GT(german_cars, 100u);
  ASSERT_GT(us_cars, 100u);
  double de_frac = static_cast<double>(german_chevy) / german_cars;
  double us_frac = static_cast<double>(us_chevy) / us_cars;
  EXPECT_GT(us_frac, de_frac * 3.0);
}

TEST_F(DmvTest, ForeignKeysAreValid) {
  const HeapTable& car = Table("car").table();
  const HeapTable& acc = Table("accidents").table();
  for (Rid r = 0; r < car.num_rows(); ++r) {
    ASSERT_LT(static_cast<size_t>(car.Get(r)[1].AsInt64()), cards_.owner);
  }
  for (Rid r = 0; r < acc.num_rows(); ++r) {
    const Row& row = acc.Get(r);
    ASSERT_LT(static_cast<size_t>(row[1].AsInt64()), cards_.car);
    ASSERT_LT(static_cast<size_t>(row[5].AsInt64()), cards_.location);
    ASSERT_LT(static_cast<size_t>(row[6].AsInt64()), cards_.time);
  }
}

TEST_F(DmvTest, AccidentYearMatchesTimeDimension) {
  const HeapTable& acc = Table("accidents").table();
  const HeapTable& time = Table("time").table();
  for (Rid r = 0; r < std::min<Rid>(acc.num_rows(), 2000); ++r) {
    const Row& row = acc.Get(r);
    ASSERT_EQ(row[3].AsInt64(), time.Get(row[6].AsInt64())[1].AsInt64());
  }
}

TEST_F(DmvTest, IndexesBuiltAndConsistent) {
  const TableEntry& car = Table("car");
  ASSERT_EQ(car.indexes().size(), 5u);
  for (const auto& idx : car.indexes()) {
    EXPECT_EQ(idx->tree->size(), car.table().num_rows()) << idx->name;
    EXPECT_TRUE(idx->tree->CheckInvariants().ok()) << idx->name;
  }
  EXPECT_NE(Table("owner").FindIndexOnColumn("country3"), nullptr);
  EXPECT_NE(Table("demographics").FindIndexOnColumn("salary"), nullptr);
  EXPECT_NE(Table("accidents").FindIndexOnColumn("carid"), nullptr);
}

TEST_F(DmvTest, StatsAnalyzed) {
  const ColumnStats* stats = Table("car").GetColumnStats("make");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->ndv, DmvMakes().size());
  const ColumnStats* salary = Table("demographics").GetColumnStats("salary");
  ASSERT_NE(salary, nullptr);
  EXPECT_GT(salary->ndv, 1000u);
}

TEST_F(DmvTest, TimeDimensionIsACalendar) {
  const HeapTable& time = Table("time").table();
  const Row& first = time.Get(0);
  EXPECT_EQ(first[1].AsInt64(), 1997);
  EXPECT_EQ(first[2].AsInt64(), 1);
  EXPECT_EQ(first[3].AsInt64(), 1);
  // Row 3651 (the last of 3652) is 2006-12-31: ten years with two leap days.
  const Row& last = time.Get(time.num_rows() - 1);
  EXPECT_EQ(last[1].AsInt64(), 2006);
  EXPECT_EQ(last[2].AsInt64(), 12);
  EXPECT_EQ(last[3].AsInt64(), 31);
}

TEST(DmvConfigTest, RejectsZeroOwners) {
  Catalog catalog;
  DmvConfig config;
  config.num_owners = 0;
  EXPECT_FALSE(GenerateDmv(&catalog, config).ok());
}

TEST(DmvConfigTest, MakeUniverseIsWellFormed) {
  std::map<std::string, int> model_seen;
  for (const auto& m : DmvMakes()) {
    EXPECT_GE(m.tier, 0);
    EXPECT_LE(m.tier, 2);
    for (const char* model : m.models) {
      EXPECT_EQ(model_seen.count(model), 0u) << "duplicate model " << model;
      model_seen[model] = 1;
    }
  }
  std::map<std::string, int> city_seen;
  for (const auto& c : DmvCountries()) {
    for (const char* city : c.cities) {
      EXPECT_EQ(city_seen.count(city), 0u) << "duplicate city " << city;
      city_seen[city] = 1;
    }
  }
}

}  // namespace
}  // namespace ajr

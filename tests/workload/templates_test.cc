#include "workload/templates.h"

#include <gtest/gtest.h>

#include "workload/dmv.h"

namespace ajr {
namespace {

class TemplatesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    DmvConfig config;
    config.num_owners = 2000;
    config.build_indexes = false;  // templates only sample rows
    config.analyze = false;
    ASSERT_TRUE(GenerateDmv(catalog_, config).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static Catalog* catalog_;
};

Catalog* TemplatesTest::catalog_ = nullptr;

TEST_F(TemplatesTest, AllFourTableTemplatesValidate) {
  DmvQueryGenerator gen(catalog_);
  for (int t = 1; t <= kNumFourTableTemplates; ++t) {
    for (size_t v = 0; v < 5; ++v) {
      auto q = gen.Generate(t, v);
      ASSERT_TRUE(q.ok()) << "T" << t << "/q" << v << ": " << q.status();
      EXPECT_TRUE(q->Validate().ok());
      EXPECT_EQ(q->tables.size(), 4u);
      EXPECT_EQ(q->edges.size(), 3u);
    }
  }
}

TEST_F(TemplatesTest, UnknownTemplateRejected) {
  DmvQueryGenerator gen(catalog_);
  EXPECT_FALSE(gen.Generate(0, 0).ok());
  EXPECT_FALSE(gen.Generate(6, 0).ok());
  EXPECT_FALSE(gen.GenerateSixTable(3, 0).ok());
}

TEST_F(TemplatesTest, DeterministicPerVariant) {
  DmvQueryGenerator gen(catalog_, 99);
  auto a = gen.Generate(2, 7);
  auto b = gen.Generate(2, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ToString(), b->ToString());
  auto c = gen.Generate(2, 8);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->ToString(), c->ToString());
}

TEST_F(TemplatesTest, MixHasFiveTimesPerTemplate) {
  DmvQueryGenerator gen(catalog_);
  auto mix = gen.GenerateMix(4);
  ASSERT_TRUE(mix.ok());
  ASSERT_EQ(mix->size(), 20u);
  EXPECT_EQ((*mix)[0].name, "T1/q0");
  EXPECT_EQ((*mix)[19].name, "T5/q3");
}

TEST_F(TemplatesTest, Template1HasOrOfMakes) {
  DmvQueryGenerator gen(catalog_);
  auto q = gen.Generate(1, 0);
  ASSERT_TRUE(q.ok());
  // Car predicate is an OR, Owner has country1 equality, Demographics a
  // salary range.
  ASSERT_NE(q->local_predicates[1], nullptr);
  EXPECT_EQ(q->local_predicates[1]->kind(), ExprKind::kOr);
  EXPECT_NE(q->local_predicates[0], nullptr);
  EXPECT_NE(q->local_predicates[2], nullptr);
  EXPECT_EQ(q->local_predicates[3], nullptr);
}

TEST_F(TemplatesTest, Template2UsesCorrelatedPairs) {
  DmvQueryGenerator gen(catalog_);
  auto q = gen.Generate(2, 3);
  ASSERT_TRUE(q.ok());
  std::string car_pred = q->local_predicates[1]->ToString();
  EXPECT_NE(car_pred.find("make ="), std::string::npos);
  EXPECT_NE(car_pred.find("model ="), std::string::npos);
  std::string owner_pred = q->local_predicates[0]->ToString();
  EXPECT_NE(owner_pred.find("country3 ="), std::string::npos);
  EXPECT_NE(owner_pred.find("city ="), std::string::npos);
}

TEST_F(TemplatesTest, Template4AlwaysUsesHeadCountry) {
  DmvQueryGenerator gen(catalog_);
  for (size_t v = 0; v < 10; ++v) {
    auto q = gen.Generate(4, v);
    ASSERT_TRUE(q.ok());
    EXPECT_NE(q->local_predicates[0]->ToString().find("country3 = 'US'"),
              std::string::npos);
  }
}

TEST_F(TemplatesTest, Template5KeepsAccidentsUnfiltered) {
  DmvQueryGenerator gen(catalog_);
  auto q = gen.Generate(5, 1);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->local_predicates[3], nullptr);
  EXPECT_NE(q->local_predicates[1], nullptr);
}

TEST_F(TemplatesTest, SixTableTemplatesValidate) {
  DmvQueryGenerator gen(catalog_);
  for (int t = 1; t <= kNumSixTableTemplates; ++t) {
    auto q = gen.GenerateSixTable(t, 0);
    ASSERT_TRUE(q.ok()) << q.status();
    EXPECT_TRUE(q->Validate().ok());
    EXPECT_EQ(q->tables.size(), 6u);
    EXPECT_EQ(q->edges.size(), 5u);
  }
  auto mix = gen.GenerateSixTableMix(10);
  ASSERT_TRUE(mix.ok());
  EXPECT_EQ(mix->size(), 10u);
  EXPECT_EQ((*mix)[0].name, "S1/q0");
  EXPECT_EQ((*mix)[1].name, "S2/q0");
}

TEST(PaperExamplesTest, ExamplesValidate) {
  auto e1 = DmvQueryGenerator::Example1();
  EXPECT_TRUE(e1.Validate().ok());
  EXPECT_EQ(e1.tables.size(), 4u);
  EXPECT_NE(e1.ToString().find("Chevrolet"), std::string::npos);
  EXPECT_NE(e1.ToString().find("Germany"), std::string::npos);

  auto e2 = DmvQueryGenerator::Example2();
  EXPECT_TRUE(e2.Validate().ok());
  EXPECT_EQ(e2.tables.size(), 2u);
  EXPECT_NE(e2.ToString().find("'323'"), std::string::npos);
  EXPECT_NE(e2.ToString().find("Cairo"), std::string::npos);

  auto e3 = DmvQueryGenerator::Example3();
  EXPECT_TRUE(e3.Validate().ok());
  EXPECT_NE(e3.ToString().find("Caprice"), std::string::npos);
  EXPECT_NE(e3.ToString().find("Augusta"), std::string::npos);
}

TEST(JoinQueryTest, ValidateCatchesBadShapes) {
  JoinQuery q = DmvQueryGenerator::Example1();
  ASSERT_TRUE(q.Validate().ok());

  JoinQuery dup = q;
  dup.tables[1].alias = "o";
  EXPECT_FALSE(dup.Validate().ok());

  JoinQuery bad_edge = q;
  bad_edge.edges[0].right = 9;
  EXPECT_FALSE(bad_edge.Validate().ok());

  JoinQuery bad_arity = q;
  bad_arity.local_predicates.pop_back();
  EXPECT_FALSE(bad_arity.Validate().ok());

  JoinQuery disconnected = q;
  disconnected.edges.clear();
  EXPECT_FALSE(disconnected.Validate().ok());

  JoinQuery bad_id = q;
  bad_id.edges[1].edge_id = 7;
  EXPECT_FALSE(bad_id.Validate().ok());

  JoinQuery empty;
  EXPECT_FALSE(empty.Validate().ok());
}

TEST(JoinQueryTest, EdgeHelpers) {
  JoinQuery q = DmvQueryGenerator::Example1();
  const JoinEdge& e = q.edges[0];  // c.ownerid = o.id
  EXPECT_TRUE(e.Touches(0));
  EXPECT_TRUE(e.Touches(1));
  EXPECT_FALSE(e.Touches(2));
  EXPECT_EQ(e.Other(0), 1u);
  EXPECT_EQ(e.Other(1), 0u);
  EXPECT_EQ(e.ColumnOn(1), "ownerid");
  EXPECT_EQ(e.ColumnOn(0), "id");
  auto car_edges = q.EdgesOf(1);
  EXPECT_EQ(car_edges.size(), 2u);
}

}  // namespace
}  // namespace ajr

#include "adaptive/controller.h"

#include <gtest/gtest.h>

namespace ajr {
namespace {

// Star query: T0 hub joined to T1, T2, T3.
JoinQuery StarQuery() {
  JoinQuery q;
  q.tables = {{"t0", "T0"}, {"t1", "T1"}, {"t2", "T2"}, {"t3", "T3"}};
  q.edges = {{0, "k", 1, "k", 0}, {0, "k", 2, "k", 1}, {0, "k", 3, "k", 2}};
  q.local_predicates.assign(4, nullptr);
  return q;
}

CostInputs MakeInputs(const JoinQuery* q, std::vector<double> card,
                      std::vector<double> edge_sel) {
  CostInputs in;
  in.query = q;
  in.tables.resize(card.size());
  for (size_t i = 0; i < card.size(); ++i) {
    in.tables[i].cardinality = card[i];
    in.tables[i].local_sel = 1.0;
    in.tables[i].index_height = 2;
  }
  in.edge_sel = std::move(edge_sel);
  return in;
}

TEST(CheckInnerReorderTest, NoChangeWhenAlreadyOrdered) {
  JoinQuery q = StarQuery();
  // JC once T0 placed: T1 = 0.1, T2 = 1, T3 = 10.
  auto in = MakeInputs(&q, {10, 1000, 1000, 1000}, {0.0001, 0.001, 0.01});
  EXPECT_FALSE(CheckInnerReorder(in, {0, 1, 2, 3}, 1).has_value());
}

TEST(CheckInnerReorderTest, ReordersMisorderedTail) {
  JoinQuery q = StarQuery();
  auto in = MakeInputs(&q, {10, 1000, 1000, 1000}, {0.0001, 0.001, 0.01});
  auto tail = CheckInnerReorder(in, {0, 3, 2, 1}, 1);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(*tail, (std::vector<size_t>{1, 2, 3}));
}

TEST(CheckInnerReorderTest, OnlySegmentTailIsTouched) {
  JoinQuery q = StarQuery();
  auto in = MakeInputs(&q, {10, 1000, 1000, 1000}, {0.0001, 0.001, 0.01});
  // From position 2, only {2, 1} can be permuted; ideal is {1, 2}.
  auto tail = CheckInnerReorder(in, {0, 3, 2, 1}, 2);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(*tail, (std::vector<size_t>{1, 2}));
}

TEST(CheckInnerReorderTest, SingleLegTailIsNoop) {
  JoinQuery q = StarQuery();
  auto in = MakeInputs(&q, {10, 1000, 1000, 1000}, {0.0001, 0.001, 0.01});
  EXPECT_FALSE(CheckInnerReorder(in, {0, 1, 2, 3}, 3).has_value());
  EXPECT_FALSE(CheckInnerReorder(in, {0, 1, 2, 3}, 4).has_value());
}

class DrivingSwitchTest : public ::testing::Test {
 protected:
  DrivingSwitchTest() : q_(StarQuery()) {
    in_ = MakeInputs(&q_, {1000, 1000, 1000, 1000}, {0.001, 0.001, 0.001});
  }

  std::vector<DrivingCandidate> Candidates(std::vector<double> raw,
                                           std::vector<double> flow) {
    std::vector<DrivingCandidate> out(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      out[i] = {i, raw[i], flow[i]};
    }
    return out;
  }

  JoinQuery q_;
  CostInputs in_;
  AdaptiveOptions options_;
};

TEST_F(DrivingSwitchTest, SwitchesToMuchCheaperCandidate) {
  // Current driving leg T0 has 100k rows left; T1 would only feed 10.
  auto candidates =
      Candidates({100000, 10, 50000, 50000}, {100000, 10, 50000, 50000});
  auto decision = CheckDrivingSwitch(in_, {0, 1, 2, 3}, candidates, options_);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->new_order[0], 1u);
  EXPECT_EQ(decision->new_order.size(), 4u);
  EXPECT_LT(decision->est_best, decision->est_current);
  // New order is a permutation.
  std::vector<size_t> sorted = decision->new_order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST_F(DrivingSwitchTest, StaysWhenCurrentIsBest) {
  auto candidates = Candidates({10, 100000, 50000, 50000}, {10, 100000, 50000, 50000});
  EXPECT_FALSE(CheckDrivingSwitch(in_, {0, 1, 2, 3}, candidates, options_).has_value());
}

TEST_F(DrivingSwitchTest, ThresholdSuppressesMarginalSwitches) {
  // T1 is only ~5% cheaper: below the 1.15x default threshold.
  auto candidates =
      Candidates({10000, 9500, 50000, 50000}, {10000, 9500, 50000, 50000});
  AdaptiveOptions strict;
  strict.switch_benefit_threshold = 1.15;
  EXPECT_FALSE(CheckDrivingSwitch(in_, {0, 1, 2, 3}, candidates, strict).has_value());
  // With no hysteresis (threshold 1.0, the paper's behaviour) it switches.
  AdaptiveOptions loose;
  loose.switch_benefit_threshold = 1.0;
  auto decision = CheckDrivingSwitch(in_, {0, 1, 2, 3}, candidates, loose);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->new_order[0], 1u);
}

TEST_F(DrivingSwitchTest, CandidateInnersAreRankOrdered) {
  // Make T3 highly filtering so it should come right after the new driving
  // leg T1 (T0 must come first among inners for connectivity: the star hub).
  in_.edge_sel = {0.001, 0.001, 0.00001};
  auto candidates = Candidates({100000, 10, 500, 500}, {100000, 10, 500, 500});
  auto decision = CheckDrivingSwitch(in_, {0, 1, 2, 3}, candidates, options_);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->new_order[0], 1u);
  // T0 is the only table connected to T1 -> forced second.
  EXPECT_EQ(decision->new_order[1], 0u);
  // Then T3 (rank far below T2).
  EXPECT_EQ(decision->new_order[2], 3u);
}

}  // namespace
}  // namespace ajr

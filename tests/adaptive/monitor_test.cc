#include "adaptive/monitor.h"

#include <gtest/gtest.h>

namespace ajr {
namespace {

TEST(RatioWindowTest, EmptyUsesFallback) {
  RatioWindow w(10);
  EXPECT_DOUBLE_EQ(w.Estimate(0.25), 0.25);
  EXPECT_EQ(w.count(), 0u);
}

TEST(RatioWindowTest, SimpleMeanOverWindow) {
  RatioWindow w(10);
  w.Record(1, 2);
  w.Record(3, 2);
  EXPECT_DOUBLE_EQ(w.Estimate(0), 1.0);  // (1+3)/(2+2)
  EXPECT_EQ(w.count(), 2u);
  EXPECT_DOUBLE_EQ(w.denominator_sum(), 4.0);
}

TEST(RatioWindowTest, EvictsBeyondCapacity) {
  RatioWindow w(3);
  w.Record(0, 1);
  w.Record(0, 1);
  w.Record(0, 1);
  w.Record(9, 1);  // evicts the first 0/1
  EXPECT_EQ(w.count(), 3u);
  EXPECT_DOUBLE_EQ(w.Estimate(0), 3.0);  // (0+0+9)/3
}

TEST(RatioWindowTest, WindowForgetsOldRegime) {
  // First 100 observations say 1.0, next 100 say 0.0; window of 50 only
  // remembers the new regime.
  RatioWindow w(50);
  for (int i = 0; i < 100; ++i) w.Record(1, 1);
  for (int i = 0; i < 100; ++i) w.Record(0, 1);
  EXPECT_DOUBLE_EQ(w.Estimate(0.5), 0.0);
}

TEST(RatioWindowTest, WeightedFavorsRecent) {
  RatioWindow simple(100, AveragingMode::kSimple);
  RatioWindow weighted(100, AveragingMode::kWeighted);
  for (int i = 0; i < 50; ++i) {
    simple.Record(1, 1);
    weighted.Record(1, 1);
  }
  for (int i = 0; i < 50; ++i) {
    simple.Record(0, 1);
    weighted.Record(0, 1);
  }
  // Both see 50/50, but the weighted estimate leans toward the recent 0s
  // (EWMA with alpha = 2/(w+1) over 50 zeros: (1-alpha)^50 ~ 0.37).
  EXPECT_DOUBLE_EQ(simple.Estimate(1), 0.5);
  EXPECT_LT(weighted.Estimate(1), 0.45);
}

TEST(RatioWindowTest, ResetClears) {
  RatioWindow w(10);
  w.Record(5, 10);
  w.Reset();
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.Estimate(0.7), 0.7);
}

TEST(LegMonitorTest, EstimatesJcLocalSelPc) {
  LegMonitor m(100, AveragingMode::kSimple);
  EXPECT_FALSE(m.has_data());
  EXPECT_DOUBLE_EQ(m.Jc(2.5), 2.5);  // fallback
  // 3 incoming rows: 4,2,0 rows survive edges; 2,1,0 survive local preds.
  m.RecordIncomingRow(4, 2, 100);
  m.RecordIncomingRow(2, 1, 60);
  m.RecordIncomingRow(0, 0, 20);
  EXPECT_TRUE(m.has_data());
  EXPECT_DOUBLE_EQ(m.Jc(0), 1.0);  // (2+1+0)/3
  // LocalSel is Laplace-smoothed toward the fallback with 8 pseudo-samples:
  // raw 3/6 becomes (3 + fb*8) / (6 + 8).
  EXPECT_DOUBLE_EQ(m.LocalSel(0), 3.0 / 14);
  EXPECT_DOUBLE_EQ(m.LocalSel(0.5), 0.5);  // smoothing toward 0.5 is neutral
  EXPECT_DOUBLE_EQ(m.Pc(0), 60.0);         // 180/3
  EXPECT_EQ(m.incoming_total(), 3u);
}

TEST(DrivingMonitorTest, ResidualSelectivity) {
  DrivingMonitor m(100, AveragingMode::kSimple);
  EXPECT_DOUBLE_EQ(m.ResidualSel(0.8), 0.8);
  for (int i = 0; i < 10; ++i) m.RecordScannedEntry(i % 4 == 0);
  EXPECT_EQ(m.scanned_total(), 10u);
  EXPECT_EQ(m.produced_total(), 3u);
  EXPECT_DOUBLE_EQ(m.ResidualSel(0), 0.3);
}

TEST(EdgeMonitorTest, SelectivityWithMinPairs) {
  EdgeMonitor m(100, AveragingMode::kSimple);
  EXPECT_DOUBLE_EQ(m.Selectivity(0.01, 8), 0.01);  // no data -> fallback
  m.Record(4, 2);  // 4 candidate pairs, 2 matches
  // Below the min-pairs threshold, keep the optimizer estimate.
  EXPECT_DOUBLE_EQ(m.Selectivity(0.01, 8), 0.01);
  m.Record(6, 1);
  // 10 pairs >= 8 -> trust the (smoothed) measurement. Two pseudo-probes of
  // average mass 5 at the 0.01 fallback rate blend in:
  // (3 + 0.01*10) / (10 + 10) = 0.155.
  EXPECT_DOUBLE_EQ(m.Selectivity(0.01, 8), 0.155);
  // With much more evidence, the measured ratio dominates.
  for (int i = 0; i < 100; ++i) m.Record(6, 1);
  EXPECT_NEAR(m.Selectivity(0.01, 8), 1.0 / 6, 0.01);
  EXPECT_TRUE(m.has_data());
}

TEST(MonitorMergeTest, TakeDeltaAbsorbMatchesDirectRecording) {
  // Two workers record disjoint halves of a stream; folding their deltas
  // into a merged monitor must reproduce the single-monitor lifetime
  // ratios (the parallel coordinator's statistics contract). Estimates use
  // windowed observations, so compare against a monitor that saw the same
  // aggregates, not the raw per-row stream.
  LegMonitor w1(100, AveragingMode::kSimple);
  LegMonitor w2(100, AveragingMode::kSimple);
  LegMonitor merged(100, AveragingMode::kSimple);
  w1.RecordIncomingRow(4, 2, 100);
  w1.RecordIncomingRow(2, 1, 60);
  w2.RecordIncomingRow(0, 0, 20);
  w2.RecordIncomingRow(6, 3, 40);
  merged.Absorb(w1.TakeDelta());
  merged.Absorb(w2.TakeDelta());
  EXPECT_EQ(merged.incoming_total(), 4u);
  EXPECT_DOUBLE_EQ(merged.Jc(0), 6.0 / 4);          // (2+1+0+3)/4
  EXPECT_DOUBLE_EQ(merged.Pc(0), 220.0 / 4);        // (100+60+20+40)/4
  // Deltas are exact increments: a second TakeDelta after no new rows is
  // empty and absorbing it changes nothing.
  LegMonitor::Delta empty = w1.TakeDelta();
  EXPECT_DOUBLE_EQ(empty.jc_den, 0.0);
  merged.Absorb(empty);
  EXPECT_EQ(merged.incoming_total(), 4u);
  // New observations after a TakeDelta are picked up by the next one.
  w1.RecordIncomingRow(2, 2, 10);
  merged.Absorb(w1.TakeDelta());
  EXPECT_EQ(merged.incoming_total(), 5u);
  EXPECT_DOUBLE_EQ(merged.Jc(0), 8.0 / 5);

  DrivingMonitor d1(100, AveragingMode::kSimple);
  DrivingMonitor dm(100, AveragingMode::kSimple);
  for (int i = 0; i < 10; ++i) d1.RecordScannedEntry(i % 4 == 0);
  dm.Absorb(d1.TakeDelta());
  EXPECT_EQ(dm.scanned_total(), 10u);
  EXPECT_EQ(dm.produced_total(), 3u);
  EXPECT_DOUBLE_EQ(dm.ResidualSel(0), 0.3);

  EdgeMonitor e1(100, AveragingMode::kSimple);
  EdgeMonitor em(100, AveragingMode::kSimple);
  for (int i = 0; i < 101; ++i) e1.Record(6, 1);
  em.Absorb(e1.TakeDelta());
  EXPECT_TRUE(em.has_data());
  EXPECT_NEAR(em.Selectivity(0.01, 8), 1.0 / 6, 0.01);
}

class WindowSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(WindowSizeSweep, CapacityIsRespected) {
  RatioWindow w(GetParam());
  for (int i = 0; i < 5000; ++i) w.Record(1, 1);
  // Batching rounds the retained span up to whole batches (batch size is
  // ~capacity/32), so the window may hold slightly more than `capacity`
  // raw observations but never less, and never more than two extra batches.
  size_t batch = GetParam() <= 32 ? 1 : GetParam() / 32;
  EXPECT_GE(w.count(), GetParam());
  EXPECT_LE(w.count(), GetParam() + 2 * batch);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WindowSizeSweep,
                         ::testing::Values(1u, 10u, 100u, 500u, 1000u));

}  // namespace
}  // namespace ajr

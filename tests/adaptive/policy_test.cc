// AdaptationPolicy behavioural suite (DESIGN.md §12).
//
// Three contracts, one per shipped policy:
//
//   * RankPolicy is the paper's brain *moved*, not rewritten: on the fig7
//     four-table mix it must reproduce the pre-refactor executor's decision
//     trace bit-for-bit — work units, check/reorder counters, adaptation
//     event strings, final orders. The golden below was captured from the
//     executor BEFORE the policy extraction (same workload: DMV 5000
//     owners, seed 20070415, minimal-stats planner, default options).
//
//   * StaticPolicy never decides anything: no checks fire, no events are
//     logged, the optimizer's order runs unchanged — even when the
//     reorder_* flags are on (PolicyKind::kStatic overrides them).
//
//   * RegretBoundedPolicy converges: on a 3-table workload with a planted
//     pathological initial order (driving the fat table), UCB1 exploration
//     must identify and adopt the cheap driving leg, and exploration must
//     not cost correctness (exact multiset vs the reference executor).

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "adaptive/policy.h"
#include "exec/pipeline_executor.h"
#include "exec/reference_executor.h"
#include "optimize/planner.h"
#include "testing/workload_gen.h"
#include "workload/dmv.h"
#include "workload/templates.h"

namespace ajr {
namespace {

// ---- Golden trace ---------------------------------------------------------
//
// Captured from the pre-policy executor (commit before the AdaptationPolicy
// extraction) on: DMV num_owners=5000 seed=20070415, Planner at
// StatsTier::kMinimal, DmvQueryGenerator(seed 20070415).GenerateMix(6),
// default AdaptiveOptions. One "query" line per query (deterministic work
// units, row/check/reorder counters, final order) and one "  event" line
// per adaptation event, byte-for-byte.
const char* const kGoldenFig7Trace =
    "query T1/q0 wu=12105 rows=22 drove=460 ic=8 ir=0 dc=6 ds=1 order=1,0,2,3\n"
    "  event driving switch after 10 rows: o -> c (est remaining 19313 -> 11349 wu); order c o d a\n"
    "query T1/q1 wu=17613 rows=162 drove=578 ic=10 ir=0 dc=7 ds=1 order=1,0,2,3\n"
    "  event driving switch after 10 rows: o -> c (est remaining 36318 -> 11126 wu); order c o d a\n"
    "query T1/q2 wu=2504 rows=12 drove=85 ic=4 ir=0 dc=3 ds=0 order=0,1,2,3\n"
    "query T1/q3 wu=10042 rows=46 drove=372 ic=6 ir=0 dc=5 ds=0 order=0,1,2,3\n"
    "query T1/q4 wu=7842 rows=41 drove=292 ic=6 ir=0 dc=8 ds=2 order=0,1,2,3\n"
    "  event driving switch after 70 rows: o -> c (est remaining 5452 -> 4611 wu); order c o d a\n"
    "  event driving switch after 80 rows: c -> o (est remaining 11439 -> 5440 wu); order o c d a\n"
    "query T1/q5 wu=7472 rows=14 drove=282 ic=5 ir=0 dc=4 ds=0 order=0,1,2,3\n"
    "query T2/q0 wu=5014 rows=18 drove=138 ic=5 ir=0 dc=4 ds=1 order=1,0,2,3\n"
    "  event driving switch after 10 rows: o -> c (est remaining 11208 -> 1504 wu); order c o d a\n"
    "query T2/q1 wu=720 rows=0 drove=19 ic=1 ir=0 dc=1 ds=0 order=0,1,2,3\n"
    "query T2/q2 wu=1032 rows=0 drove=25 ic=1 ir=0 dc=1 ds=0 order=0,1,2,3\n"
    "query T2/q3 wu=1806 rows=0 drove=31 ic=2 ir=0 dc=2 ds=0 order=0,1,2,3\n"
    "query T2/q4 wu=2786 rows=7 drove=46 ic=3 ir=0 dc=3 ds=1 order=1,0,2,3\n"
    "  event driving switch after 10 rows: o -> c (est remaining 19659 -> 1532 wu); order c o d a\n"
    "query T2/q5 wu=3413 rows=0 drove=92 ic=4 ir=0 dc=5 ds=2 order=0,1,2,3\n"
    "  event driving switch after 10 rows: o -> c (est remaining 2308 -> 1526 wu); order c o d a\n"
    "  event driving switch after 20 rows: c -> o (est remaining 2892 -> 2288 wu); order o c d a\n"
    "query T3/q0 wu=6720 rows=4 drove=239 ic=9 ir=3 dc=5 ds=1 order=1,0,3,2\n"
    "  event driving switch after 10 rows: o -> c (est remaining 7680 -> 4726 wu); order c o d a\n"
    "  event inner reorder at position 2 after 63 driving rows; order c o a(jc=0.311,rank=-0.0383) d(jc=0.537,rank=-0.0257)\n"
    "  event inner reorder at position 2 after 91 driving rows; order c o d(jc=0.460,rank=-0.0300) a(jc=0.486,rank=-0.0239)\n"
    "  event inner reorder at position 2 after 133 driving rows; order c o a(jc=0.413,rank=-0.0290) d(jc=0.595,rank=-0.0225)\n"
    "query T3/q1 wu=11002 rows=41 drove=333 ic=9 ir=0 dc=6 ds=1 order=1,0,2,3\n"
    "  event driving switch after 10 rows: o -> c (est remaining 34032 -> 5423 wu); order c o d a\n"
    "query T3/q2 wu=5966 rows=0 drove=237 ic=5 ir=0 dc=7 ds=2 order=0,1,2,3\n"
    "  event driving switch after 30 rows: o -> c (est remaining 5002 -> 2135 wu); order c o d a\n"
    "  event driving switch after 40 rows: c -> o (est remaining 8646 -> 4983 wu); order o c d a\n"
    "query T3/q3 wu=1846 rows=0 drove=70 ic=3 ir=0 dc=3 ds=0 order=0,1,2,3\n"
    "query T3/q4 wu=10110 rows=3 drove=362 ic=8 ir=0 dc=6 ds=1 order=1,0,2,3\n"
    "  event driving switch after 10 rows: o -> c (est remaining 34032 -> 5423 wu); order c o d a\n"
    "query T3/q5 wu=2652 rows=0 drove=91 ic=5 ir=1 dc=3 ds=0 order=0,2,1,3\n"
    "  event inner reorder at position 1 after 70 driving rows; order o d(jc=0.127,rank=-0.0485) c(jc=0.173,rank=-0.0437) a(jc=0.333,rank=-0.0370)\n"
    "query T4/q0 wu=2935 rows=0 drove=36 ic=2 ir=0 dc=2 ds=1 order=1,0,2,3\n"
    "  event driving switch after 10 rows: o -> c (est remaining 10201 -> 1408 wu); order c o d a\n"
    "query T4/q1 wu=4039 rows=0 drove=65 ic=3 ir=0 dc=3 ds=1 order=1,0,2,3\n"
    "  event driving switch after 10 rows: o -> c (est remaining 10171 -> 1406 wu); order c o d a\n"
    "query T4/q2 wu=4076 rows=15 drove=107 ic=4 ir=0 dc=4 ds=1 order=1,0,2,3\n"
    "  event driving switch after 10 rows: o -> c (est remaining 12387 -> 1403 wu); order c o d a\n"
    "query T4/q3 wu=5720 rows=8 drove=145 ic=4 ir=0 dc=4 ds=1 order=1,0,2,3\n"
    "  event driving switch after 10 rows: o -> c (est remaining 10201 -> 1408 wu); order c o d a\n"
    "query T4/q4 wu=2215 rows=0 drove=42 ic=3 ir=0 dc=3 ds=1 order=1,0,2,3\n"
    "  event driving switch after 10 rows: o -> c (est remaining 19639 -> 1412 wu); order c o d a\n"
    "query T4/q5 wu=4568 rows=5 drove=115 ic=4 ir=0 dc=4 ds=1 order=1,0,2,3\n"
    "  event driving switch after 10 rows: o -> c (est remaining 10201 -> 1408 wu); order c o d a\n"
    "query T5/q0 wu=3348 rows=0 drove=108 ic=3 ir=0 dc=3 ds=0 order=1,0,2,3\n"
    "query T5/q1 wu=1430 rows=0 drove=10 ic=1 ir=0 dc=1 ds=0 order=1,0,2,3\n"
    "query T5/q2 wu=2174 rows=0 drove=42 ic=2 ir=0 dc=2 ds=0 order=1,0,2,3\n"
    "query T5/q3 wu=1792 rows=0 drove=25 ic=1 ir=0 dc=1 ds=0 order=1,0,2,3\n"
    "query T5/q4 wu=2316 rows=1 drove=53 ic=2 ir=0 dc=2 ds=0 order=1,0,2,3\n"
    "query T5/q5 wu=2614 rows=0 drove=82 ic=3 ir=0 dc=3 ds=0 order=1,0,2,3\n";

class PolicyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    DmvConfig config;
    config.num_owners = 5000;
    config.seed = 20070415;
    ASSERT_TRUE(GenerateDmv(catalog_, config).ok());
    planner_ = new Planner(catalog_, PlannerOptions{StatsTier::kMinimal});
  }
  static void TearDownTestSuite() {
    delete planner_;
    delete catalog_;
    catalog_ = nullptr;
    planner_ = nullptr;
  }

  static std::vector<JoinQuery> GoldenMix() {
    DmvQueryGenerator gen(catalog_, /*seed=*/20070415);
    auto queries = gen.GenerateMix(6);
    EXPECT_TRUE(queries.ok()) << queries.status();
    return queries.ok() ? *queries : std::vector<JoinQuery>{};
  }

  /// Renders one executed query in the golden capture's format.
  static std::string TraceLine(const JoinQuery& q, const ExecStats& stats) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "query %s wu=%llu rows=%llu drove=%llu ic=%llu ir=%llu "
                  "dc=%llu ds=%llu order=",
                  q.name.c_str(),
                  static_cast<unsigned long long>(stats.work_units),
                  static_cast<unsigned long long>(stats.rows_out),
                  static_cast<unsigned long long>(stats.driving_rows_produced),
                  static_cast<unsigned long long>(stats.inner_checks),
                  static_cast<unsigned long long>(stats.inner_reorders),
                  static_cast<unsigned long long>(stats.driving_checks),
                  static_cast<unsigned long long>(stats.driving_switches));
    std::string line = buf;
    for (size_t i = 0; i < stats.final_order.size(); ++i) {
      if (i > 0) line += ',';
      line += std::to_string(stats.final_order[i]);
    }
    line += '\n';
    for (const std::string& e : stats.events) {
      line += "  event " + e + '\n';
    }
    return line;
  }

  static Catalog* catalog_;
  static Planner* planner_;
};

Catalog* PolicyTest::catalog_ = nullptr;
Planner* PolicyTest::planner_ = nullptr;

TEST_F(PolicyTest, RankPolicyReproducesPreRefactorTrace) {
  std::string trace;
  for (const JoinQuery& q : GoldenMix()) {
    auto plan = planner_->Plan(q);
    ASSERT_TRUE(plan.ok()) << plan.status();
    AdaptiveOptions options;  // defaults: PolicyKind::kRank, SwitchBoth
    PipelineExecutor exec(plan->get(), options);
    auto stats = exec.Execute(nullptr);
    ASSERT_TRUE(stats.ok()) << q.name << ": " << stats.status();
    // Every consultation and adoption flowed through the policy: its
    // accounting must agree with the executor's own counters.
    EXPECT_EQ(stats->policy_decisions, stats->inner_checks + stats->driving_checks)
        << q.name;
    EXPECT_EQ(stats->policy_switches, stats->driving_switches) << q.name;
    EXPECT_EQ(stats->policy_regret_x1000, 0u) << q.name;
    trace += TraceLine(q, *stats);
  }
  EXPECT_EQ(trace, kGoldenFig7Trace)
      << "RankPolicy diverged from the pre-refactor executor";
}

TEST_F(PolicyTest, StaticPolicyNeverDecides) {
  // Rank pass for the completeness cross-check: static execution must
  // produce the same row counts, it just never reorders.
  for (const JoinQuery& q : GoldenMix()) {
    auto plan = planner_->Plan(q);
    ASSERT_TRUE(plan.ok()) << plan.status();
    const std::vector<size_t> initial = (*plan)->initial_order;

    AdaptiveOptions rank_options;
    PipelineExecutor rank_exec(plan->get(), rank_options);
    auto rank_stats = rank_exec.Execute(nullptr);
    ASSERT_TRUE(rank_stats.ok()) << q.name;

    AdaptiveOptions options;
    options.policy = PolicyKind::kStatic;
    // kStatic must override the (enabled) reorder flags.
    ASSERT_TRUE(options.reorder_inners && options.reorder_driving);
    PipelineExecutor exec(plan->get(), options);
    auto stats = exec.Execute(nullptr);
    ASSERT_TRUE(stats.ok()) << q.name << ": " << stats.status();

    EXPECT_EQ(stats->policy_decisions, 0u) << q.name;
    EXPECT_EQ(stats->inner_checks, 0u) << q.name;
    EXPECT_EQ(stats->driving_checks, 0u) << q.name;
    EXPECT_EQ(stats->inner_reorders, 0u) << q.name;
    EXPECT_EQ(stats->driving_switches, 0u) << q.name;
    EXPECT_TRUE(stats->events.empty()) << q.name;
    EXPECT_EQ(stats->final_order, initial) << q.name;
    EXPECT_EQ(stats->rows_out, rank_stats->rows_out)
        << q.name << ": policies must agree on the result multiset";
  }
}

// ---- Regret-bounded convergence ------------------------------------------

/// Three tables with sharply different driving costs, joined in a chain on
/// `k`: big (1000 rows, 20 per key) — mid (50 rows) — small (10 rows).
/// Driving small touches 10 scan rows for the full 200-row result; driving
/// big touches 1000. The best driving leg is unambiguous.
testing::WorkloadSpec ConvergenceWorkload() {
  testing::WorkloadSpec spec;
  auto table = [](std::string name, size_t rows, int64_t key_mod) {
    testing::TableSpec t;
    t.name = std::move(name);
    t.columns = {{"k", DataType::kInt64}, {"v", DataType::kInt64}};
    for (size_t i = 0; i < rows; ++i) {
      t.rows.push_back({Value(static_cast<int64_t>(i) % key_mod),
                        Value(static_cast<int64_t>(i))});
    }
    t.indexed_columns = {"k"};
    return t;
  };
  spec.tables.push_back(table("big", 1000, 50));
  spec.tables.push_back(table("mid", 50, 50));
  spec.tables.push_back(table("small", 10, 10));

  JoinQuery& q = spec.query;
  q.name = "regret_convergence";
  q.tables = {{"big", "big"}, {"mid", "mid"}, {"small", "small"}};
  q.edges = {{0, "k", 1, "k", 0}, {1, "k", 2, "k", 1}};
  q.local_predicates = {nullptr, nullptr, nullptr};
  q.output = {{0, "v"}, {2, "v"}};
  return spec;
}

TEST(RegretPolicyTest, ConvergesToCheapDrivingLegUnderPlantedBadOrder) {
  testing::WorkloadSpec spec = ConvergenceWorkload();
  auto catalog = spec.Materialize();
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  Planner planner(catalog->get(), PlannerOptions{StatsTier::kMinimal});
  auto plan = planner.Plan(spec.query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Plant the pathological order: drive the fat table.
  (*plan)->initial_order = {0, 1, 2};

  AdaptiveOptions options;
  options.policy = PolicyKind::kRegret;
  options.check_frequency = 1;   // a decision at every driving row
  options.check_backoff = false; // keep deciding even when arms repeat

  auto policy = std::make_unique<RegretBoundedPolicy>(options);
  RegretBoundedPolicy* raw = policy.get();
  PipelineExecutor exec(plan->get(), options);
  exec.set_policy(std::move(policy));
  std::vector<Row> rows;
  auto stats = exec.Execute([&rows](const Row& r) { rows.push_back(r); });
  ASSERT_TRUE(stats.ok()) << stats.status();

  // Exploration never costs correctness: exact multiset vs brute force.
  auto expected = ExecuteReference(**catalog, spec.query);
  ASSERT_TRUE(expected.ok()) << expected.status();
  SortRows(&rows);
  SortRows(&*expected);
  EXPECT_EQ(rows, *expected);
  EXPECT_EQ(stats->rows_out, 200u);

  // 3 tables => all 3! = 6 permutations are arms; within one query's
  // horizon UCB1 must have covered the whole space (every arm pulled)
  // and kept deciding past the initial sweep.
  std::vector<RegretBoundedPolicy::ArmView> arms = raw->arms();
  ASSERT_EQ(arms.size(), 6u);
  EXPECT_GT(stats->policy_decisions, arms.size());
  for (const auto& arm : arms) {
    EXPECT_GT(arm.pulls, 0u) << "unexplored arm";
  }

  // Exploration moved the pipeline off the planted order, and the run
  // finished driving the cheap 10-row table (everything here is
  // deterministic: same workload, same arms, same UCB tie-breaks).
  ASSERT_FALSE(stats->final_order.empty());
  EXPECT_NE(stats->final_order, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(stats->final_order[0], 2u)
      << "executor should finish driving the 10-row table";
  EXPECT_GT(stats->driving_switches, 0u);
  // Empirical regret was accrued (exploration has a price) and reported.
  EXPECT_GT(stats->policy_regret_x1000, 0u);
}

TEST(RegretPolicyTest, Ucb1ConvergesToBestArmOverSyntheticSlices) {
  // Pure bandit check, decoupled from executor slice sizes: a simulated
  // 3-table environment where driving table 2 yields reward ~0.9 per
  // slice and the others ~0.05 / ~0.02. Over a long horizon UCB1 must
  // concentrate pulls on the best arm while the per-pull regret of the
  // exploration tax stays bounded.
  AdaptiveOptions options;
  options.policy = PolicyKind::kRegret;
  RegretBoundedPolicy policy(options);

  // Slice yield (rows, work) by driving leg of the order in effect.
  auto slice = [](size_t driving) -> std::pair<uint64_t, uint64_t> {
    switch (driving) {
      case 2: return {900, 100};  // reward 0.9
      case 1: return {10, 190};   // reward 0.05
      default: return {4, 196};   // reward 0.02
    }
  };

  std::vector<size_t> order = {0, 1, 2};  // planted worst order
  uint64_t rows = 0, work = 0;
  constexpr int kDecisions = 600;
  for (int i = 0; i < kDecisions; ++i) {
    auto [dr, dw] = slice(order[0]);
    rows += dr;
    work += dw;
    PolicySnapshot snapshot;
    snapshot.point = DecisionPoint::kDrivingBoundary;
    snapshot.order = &order;
    snapshot.rows_out = rows;
    snapshot.work_units = work;
    snapshot.epoch = policy.stats().decisions;
    PolicyDecision d = policy.Decide(snapshot);
    if (d.changed()) order = d.new_order;
  }

  std::vector<RegretBoundedPolicy::ArmView> arms = policy.arms();
  ASSERT_EQ(arms.size(), 6u);
  size_t most_pulled = 0;
  size_t best_mean = 0;
  uint64_t total_pulls = 0;
  for (size_t i = 0; i < arms.size(); ++i) {
    total_pulls += arms[i].pulls;
    if (arms[i].pulls > arms[most_pulled].pulls) most_pulled = i;
    if (arms[i].mean_reward > arms[best_mean].mean_reward) best_mean = i;
  }
  EXPECT_EQ(arms[most_pulled].order[0], 2u)
      << "UCB1 should exploit the high-reward driving leg";
  EXPECT_EQ(arms[best_mean].order[0], 2u);
  // The best arm dominates: more pulls than all suboptimal-driving arms
  // combined.
  uint64_t best_driving_pulls = 0;
  for (const auto& arm : arms) {
    if (arm.order[0] == 2) best_driving_pulls += arm.pulls;
  }
  EXPECT_GT(best_driving_pulls, total_pulls - best_driving_pulls);
  // Regret is the exploration tax only — far below the linear worst case
  // (always playing a ~0.05 arm would accrue ~0.85 per pull).
  EXPECT_GT(policy.stats().cumulative_regret, 0.0);
  EXPECT_LT(policy.stats().cumulative_regret, 0.3 * total_pulls);
}

TEST(PolicyKindTest, NamesRoundTrip) {
  for (PolicyKind kind :
       {PolicyKind::kRank, PolicyKind::kRegret, PolicyKind::kStatic}) {
    auto parsed = ParsePolicyKind(PolicyKindName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParsePolicyKind("greedy").has_value());
  EXPECT_FALSE(ParsePolicyKind("").has_value());
}

TEST(PolicyKindTest, MakePolicySelectsByKind) {
  AdaptiveOptions options;
  EXPECT_STREQ(MakePolicy(options)->name(), "rank");
  options.policy = PolicyKind::kRegret;
  EXPECT_STREQ(MakePolicy(options)->name(), "regret");
  options.policy = PolicyKind::kStatic;
  std::unique_ptr<AdaptationPolicy> st = MakePolicy(options);
  EXPECT_STREQ(st->name(), "static");
  // kStatic overrides the reorder flags: both capabilities off.
  EXPECT_FALSE(st->adapts_inners());
  EXPECT_FALSE(st->adapts_driving());
}

}  // namespace
}  // namespace ajr

// Edge cases of the adaptive decision machinery: the CheckDrivingSwitch
// benefit threshold exactly at its boundary, cold monitors below
// min_leg_samples, and the check back-off schedule.

#include <gtest/gtest.h>

#include "adaptive/controller.h"
#include "adaptive/monitor.h"

namespace ajr {
namespace {

// ---------------------------------------------------------------- backoff

TEST(CheckBackoffTest, StartsAtBase) {
  CheckBackoff b(10, /*enabled=*/true);
  EXPECT_EQ(b.interval(), 10u);
}

TEST(CheckBackoffTest, UnproductiveChecksDoubleTheInterval) {
  CheckBackoff b(10, true);
  b.OnUnproductiveCheck();
  EXPECT_EQ(b.interval(), 20u);
  b.OnUnproductiveCheck();
  EXPECT_EQ(b.interval(), 40u);
  b.OnUnproductiveCheck();
  EXPECT_EQ(b.interval(), 80u);
}

TEST(CheckBackoffTest, CapsAtBaseTimesMaxBackoff) {
  CheckBackoff b(10, true);
  for (int i = 0; i < 20; ++i) b.OnUnproductiveCheck();
  EXPECT_EQ(b.interval(), 10u * AdaptiveOptions::kMaxBackoff);
  b.OnUnproductiveCheck();  // already capped: stays put
  EXPECT_EQ(b.interval(), 10u * AdaptiveOptions::kMaxBackoff);
}

TEST(CheckBackoffTest, ReorderResetsToBase) {
  CheckBackoff b(10, true);
  for (int i = 0; i < 5; ++i) b.OnUnproductiveCheck();
  ASSERT_GT(b.interval(), 10u);
  b.OnReorder();
  EXPECT_EQ(b.interval(), 10u);
  // And the schedule restarts from the base afterwards.
  b.OnUnproductiveCheck();
  EXPECT_EQ(b.interval(), 20u);
}

TEST(CheckBackoffTest, DisabledKeepsConstantInterval) {
  CheckBackoff b(10, /*enabled=*/false);
  for (int i = 0; i < 5; ++i) b.OnUnproductiveCheck();
  EXPECT_EQ(b.interval(), 10u);  // the paper's fixed c
  b.OnReorder();
  EXPECT_EQ(b.interval(), 10u);
}

TEST(CheckBackoffTest, ZeroBaseIsClampedToOne) {
  CheckBackoff b(0, true);
  EXPECT_EQ(b.interval(), 1u);
  b.OnUnproductiveCheck();
  EXPECT_EQ(b.interval(), 2u);
}

// ------------------------------------------------------- EffectiveLocalSel

TEST(EffectiveLocalSelTest, NoDataUsesOptimizerEstimate) {
  LegMonitor inner;
  DrivingMonitor driving;
  EXPECT_DOUBLE_EQ(EffectiveLocalSel(inner, driving, 0.25, 0.5, 16), 0.25);
}

TEST(EffectiveLocalSelTest, ColdMonitorBelowFloorDoesNotOverrideOptimizer) {
  // 5 incoming rows, every one filtered out: a young monitor reading zero.
  // Below min_leg_samples the optimizer estimate must win — otherwise the
  // cold zero makes whole candidate plans look free.
  LegMonitor inner;
  DrivingMonitor driving;
  for (int i = 0; i < 5; ++i) inner.RecordIncomingRow(1.0, 0.0, 3.0);
  ASSERT_TRUE(inner.has_data());
  ASSERT_LT(inner.incoming_total(), 16u);
  EXPECT_DOUBLE_EQ(EffectiveLocalSel(inner, driving, 0.25, 0.5, 16), 0.25);
}

TEST(EffectiveLocalSelTest, WarmMonitorOverridesOptimizer) {
  LegMonitor inner;
  DrivingMonitor driving;
  // 32 incoming rows at measured selectivity 0.5 >> optimizer's 0.01.
  for (int i = 0; i < 32; ++i) inner.RecordIncomingRow(1.0, i % 2 ? 1.0 : 0.0, 3.0);
  ASSERT_GE(inner.incoming_total(), 16u);
  double got = EffectiveLocalSel(inner, driving, 0.01, 0.5, 16);
  EXPECT_DOUBLE_EQ(got, inner.LocalSel(0.01));
  EXPECT_GT(got, 0.25);  // clearly the measurement, not the 0.01 estimate
}

TEST(EffectiveLocalSelTest, FloorBoundaryIsInclusive) {
  LegMonitor inner;
  DrivingMonitor driving;
  for (int i = 0; i < 16; ++i) inner.RecordIncomingRow(1.0, 1.0, 3.0);
  ASSERT_EQ(inner.incoming_total(), 16u);
  // Exactly at min_leg_samples the monitor qualifies.
  EXPECT_DOUBLE_EQ(EffectiveLocalSel(inner, driving, 0.01, 0.5, 16),
                   inner.LocalSel(0.01));
}

TEST(EffectiveLocalSelTest, LegThatDroveComposesSlpiWithResidual) {
  // Eq 9: S_LP = S_LPI (optimizer) * S_LPR (measured while driving).
  LegMonitor inner;
  DrivingMonitor driving;
  for (int i = 0; i < 100; ++i) driving.RecordScannedEntry(i % 4 == 0);
  ASSERT_EQ(inner.incoming_total(), 0u);
  double got = EffectiveLocalSel(inner, driving, 0.9, 0.5, 16);
  EXPECT_DOUBLE_EQ(got, 0.5 * driving.ResidualSel(1.0));
  EXPECT_NEAR(got, 0.5 * 0.25, 1e-9);
}

TEST(EffectiveLocalSelTest, WarmInnerMonitorWinsOverDrivingHistory) {
  LegMonitor inner;
  DrivingMonitor driving;
  for (int i = 0; i < 100; ++i) driving.RecordScannedEntry(false);
  for (int i = 0; i < 32; ++i) inner.RecordIncomingRow(1.0, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(EffectiveLocalSel(inner, driving, 0.1, 0.5, 16),
                   inner.LocalSel(0.1));
}

// -------------------------------------------- driving-switch threshold edge

class ThresholdBoundaryTest : public ::testing::Test {
 protected:
  ThresholdBoundaryTest() {
    q_.tables = {{"t0", "T0"}, {"t1", "T1"}, {"t2", "T2"}, {"t3", "T3"}};
    q_.edges = {{0, "k", 1, "k", 0}, {0, "k", 2, "k", 1}, {0, "k", 3, "k", 2}};
    q_.local_predicates.assign(4, nullptr);
    in_.query = &q_;
    in_.tables.resize(4);
    for (auto& t : in_.tables) {
      t.cardinality = 1000;
      t.local_sel = 1.0;
      t.index_height = 2;
    }
    in_.edge_sel = {0.001, 0.001, 0.001};
    candidates_.resize(4);
    // T1 would feed far fewer rows than the current driving leg T0.
    double raw[] = {10000, 6000, 50000, 50000};
    for (size_t i = 0; i < 4; ++i) candidates_[i] = {i, raw[i], raw[i]};
  }

  JoinQuery q_;
  CostInputs in_;
  std::vector<DrivingCandidate> candidates_;
  const std::vector<size_t> order_ = {0, 1, 2, 3};
};

TEST_F(ThresholdBoundaryTest, ThresholdExactlyAtBenefitRatioFires) {
  // Measure the actual benefit ratio with no hysteresis...
  AdaptiveOptions loose;
  loose.switch_benefit_threshold = 1.0;
  auto baseline = CheckDrivingSwitch(in_, order_, candidates_, loose);
  ASSERT_TRUE(baseline.has_value());
  ASSERT_GT(baseline->est_current, baseline->est_best);
  const double ratio = baseline->est_current / baseline->est_best;

  // ...then pin the threshold to that ratio. The contract is strict
  // less-than ("not enough benefit" only when current < best * threshold),
  // so at the exact boundary the switch FIRES. Probe one ulp-scale step on
  // each side of the boundary to make the test robust to rounding in
  // best * threshold.
  AdaptiveOptions at_boundary;
  at_boundary.switch_benefit_threshold = ratio * (1.0 - 1e-9);
  auto fires = CheckDrivingSwitch(in_, order_, candidates_, at_boundary);
  ASSERT_TRUE(fires.has_value());
  EXPECT_EQ(fires->new_order[0], 1u);

  AdaptiveOptions above_boundary;
  above_boundary.switch_benefit_threshold = ratio * (1.0 + 1e-9);
  EXPECT_FALSE(
      CheckDrivingSwitch(in_, order_, candidates_, above_boundary).has_value());
}

TEST_F(ThresholdBoundaryTest, ThresholdBelowOneStillRequiresAWinningCandidate) {
  // Even with a permissive threshold, a current plan that is already the
  // cheapest must not switch: the candidate scan (best_order) only exists
  // when some candidate costs strictly less than the current plan.
  for (size_t i = 0; i < 4; ++i) candidates_[i].raw_entries = candidates_[i].flow = 50000;
  candidates_[0].raw_entries = candidates_[0].flow = 10;  // current is best
  AdaptiveOptions permissive;
  permissive.switch_benefit_threshold = 0.5;
  EXPECT_FALSE(
      CheckDrivingSwitch(in_, order_, candidates_, permissive).has_value());
}

}  // namespace
}  // namespace ajr

#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace ajr {
namespace {

Schema CarSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"make", DataType::kString},
                 {"year", DataType::kInt64}});
}

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = catalog_.CreateTable("car", CarSchema());
    ASSERT_TRUE(t.ok());
    const char* makes[] = {"Mazda", "BMW", "Mazda", "Audi", "Mazda"};
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          (*t)->table().Append({Value(i), Value(makes[i]), Value(1990 + i)}).ok());
    }
  }
  Catalog catalog_;
};

TEST_F(CatalogTest, CreateAndGetTable) {
  auto t = catalog_.GetTable("car");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "car");
  EXPECT_EQ((*t)->table().num_rows(), 5u);
  EXPECT_FALSE(catalog_.GetTable("nope").ok());
  EXPECT_EQ(catalog_.CreateTable("car", CarSchema()).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, BuildIndexAndProbe) {
  ASSERT_TRUE(catalog_.BuildIndex("car", "make", "car_make").ok());
  auto t = catalog_.GetTable("car");
  const IndexInfo* idx = (*t)->FindIndexOnColumn("make");
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->name, "car_make");
  EXPECT_EQ(idx->column_idx, 1u);
  EXPECT_EQ(idx->tree->size(), 5u);
  EXPECT_TRUE(idx->tree->CheckInvariants().ok());

  // All three Mazdas findable in (key, rid) order.
  auto it = idx->tree->Seek(Value("Mazda"), true, nullptr);
  std::vector<Rid> rids;
  while (it.Valid() && it.key() == Value("Mazda")) {
    rids.push_back(it.rid());
    it.Next(nullptr);
  }
  EXPECT_EQ(rids, (std::vector<Rid>{0, 2, 4}));
}

TEST_F(CatalogTest, BuildIndexErrors) {
  EXPECT_EQ(catalog_.BuildIndex("nope", "make", "i").code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog_.BuildIndex("car", "nope", "i").code(), StatusCode::kNotFound);
  ASSERT_TRUE(catalog_.BuildIndex("car", "make", "i").ok());
  EXPECT_EQ(catalog_.BuildIndex("car", "year", "i").code(), StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, FindIndexByNameAndColumn) {
  ASSERT_TRUE(catalog_.BuildIndex("car", "make", "car_make").ok());
  ASSERT_TRUE(catalog_.BuildIndex("car", "year", "car_year").ok());
  auto t = catalog_.GetTable("car");
  EXPECT_NE((*t)->FindIndexByName("car_year"), nullptr);
  EXPECT_EQ((*t)->FindIndexByName("zzz"), nullptr);
  EXPECT_NE((*t)->FindIndexOnColumn("year"), nullptr);
  EXPECT_EQ((*t)->FindIndexOnColumn("id"), nullptr);
}

TEST_F(CatalogTest, AnalyzeBaseStats) {
  ASSERT_TRUE(catalog_.Analyze("car").ok());
  auto t = catalog_.GetTable("car");
  const ColumnStats* make_stats = (*t)->GetColumnStats("make");
  ASSERT_NE(make_stats, nullptr);
  EXPECT_EQ(make_stats->ndv, 3u);
  EXPECT_EQ(make_stats->min->AsString(), "Audi");
  EXPECT_EQ(make_stats->max->AsString(), "Mazda");
  EXPECT_FALSE(make_stats->has_rich());

  const ColumnStats* year_stats = (*t)->GetColumnStats("year");
  ASSERT_NE(year_stats, nullptr);
  EXPECT_EQ(year_stats->ndv, 5u);
  EXPECT_EQ(year_stats->min->AsInt64(), 1990);
  EXPECT_EQ(year_stats->max->AsInt64(), 1994);
}

TEST_F(CatalogTest, StatsAbsentBeforeAnalyze) {
  auto t = catalog_.GetTable("car");
  EXPECT_EQ((*t)->GetColumnStats("make"), nullptr);
}

TEST_F(CatalogTest, AnalyzeRichStats) {
  AnalyzeOptions opts;
  opts.rich = true;
  opts.top_k = 2;
  opts.histogram_buckets = 2;
  ASSERT_TRUE(catalog_.Analyze("car", opts).ok());
  auto t = catalog_.GetTable("car");
  const ColumnStats* make_stats = (*t)->GetColumnStats("make");
  ASSERT_NE(make_stats, nullptr);
  ASSERT_TRUE(make_stats->has_rich());
  ASSERT_EQ(make_stats->frequent.size(), 2u);
  EXPECT_EQ(make_stats->frequent[0].value.AsString(), "Mazda");
  EXPECT_EQ(make_stats->frequent[0].count, 3u);
  ASSERT_TRUE(make_stats->histogram.has_value());
}

TEST_F(CatalogTest, AnalyzeAllCoversEveryTable) {
  auto t2 = catalog_.CreateTable("owner", Schema({{"id", DataType::kInt64}}));
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE((*t2)->table().Append({Value(1)}).ok());
  ASSERT_TRUE(catalog_.AnalyzeAll().ok());
  EXPECT_NE((*catalog_.GetTable("car"))->GetColumnStats("id"), nullptr);
  EXPECT_NE((*catalog_.GetTable("owner"))->GetColumnStats("id"), nullptr);
}

TEST_F(CatalogTest, TableNamesSorted) {
  ASSERT_TRUE(catalog_.CreateTable("accidents", Schema()).ok());
  auto names = catalog_.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "accidents");
  EXPECT_EQ(names[1], "car");
}

TEST(HistogramTest, EquiDepthFractionEstimates) {
  Catalog catalog;
  auto t = catalog.CreateTable("nums", Schema({{"v", DataType::kInt64}}));
  ASSERT_TRUE(t.ok());
  // Uniform 0..999.
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE((*t)->table().Append({Value(i)}).ok());
  AnalyzeOptions opts;
  opts.rich = true;
  opts.histogram_buckets = 10;
  ASSERT_TRUE(catalog.Analyze("nums", opts).ok());
  const auto* stats = (*catalog.GetTable("nums"))->GetColumnStats("v");
  ASSERT_TRUE(stats->histogram.has_value());
  const auto& h = *stats->histogram;
  EXPECT_EQ(h.num_buckets(), 10u);
  EXPECT_NEAR(h.EstimateFractionLe(Value(499)), 0.5, 0.05);
  EXPECT_NEAR(h.EstimateFractionLe(Value(99)), 0.1, 0.05);
  EXPECT_DOUBLE_EQ(h.EstimateFractionLe(Value(-5)), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateFractionLe(Value(2000)), 1.0);
}

TEST(HistogramTest, SkewedDataCapturedByDepth) {
  Catalog catalog;
  auto t = catalog.CreateTable("skew", Schema({{"v", DataType::kInt64}}));
  ASSERT_TRUE(t.ok());
  // 90% of rows are value 1; rest uniform in [2, 100].
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = (i < 900) ? 1 : rng.NextInt64(2, 100);
    ASSERT_TRUE((*t)->table().Append({Value(v)}).ok());
  }
  AnalyzeOptions opts;
  opts.rich = true;
  opts.histogram_buckets = 10;
  ASSERT_TRUE(catalog.Analyze("skew", opts).ok());
  const auto* stats = (*catalog.GetTable("skew"))->GetColumnStats("v");
  // Frequent values must catch the heavy hitter.
  ASSERT_FALSE(stats->frequent.empty());
  EXPECT_EQ(stats->frequent[0].value.AsInt64(), 1);
  EXPECT_EQ(stats->frequent[0].count, 900u);
  // Equi-depth: value 1 already covers ~90% of the mass.
  // (vs. the uniform assumption, which would estimate ~1/ndv here)
  EXPECT_GE(stats->histogram->EstimateFractionLe(Value(1)), 0.8);
}

}  // namespace
}  // namespace ajr

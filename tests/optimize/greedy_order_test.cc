// Property tests for the cardinality-greedy wide-join seeding pass
// (optimize/greedy_order.h): permutation totality, determinism with
// smallest-index tie-breaking, optimality vs exhaustive enumeration on
// small cases, zero-cardinality robustness, the planted-skew small-first
// guarantee, and the planner's threshold handoff.

#include "optimize/greedy_order.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "optimize/planner.h"
#include "testing/workload_gen.h"

namespace ajr {
namespace {

// Star: table 0 is the center, every other table joins it on "k".
JoinQuery StarQuery(size_t n) {
  JoinQuery q;
  for (size_t t = 0; t < n; ++t) {
    q.tables.push_back({"a" + std::to_string(t), "T" + std::to_string(t)});
  }
  for (size_t t = 1; t < n; ++t) q.edges.push_back({0, "k", t, "k", t - 1});
  q.local_predicates.assign(n, nullptr);
  q.output = {{0, "k"}};
  return q;
}

JoinQuery ChainQuery(size_t n) {
  JoinQuery q;
  for (size_t t = 0; t < n; ++t) {
    q.tables.push_back({"a" + std::to_string(t), "T" + std::to_string(t)});
  }
  for (size_t t = 1; t < n; ++t) q.edges.push_back({t - 1, "k", t, "k", t - 1});
  q.local_predicates.assign(n, nullptr);
  q.output = {{0, "k"}};
  return q;
}

CostInputs MakeInputs(const JoinQuery* q, std::vector<double> card,
                      std::vector<double> edge_sel) {
  CostInputs in;
  in.query = q;
  in.tables.resize(card.size());
  for (size_t i = 0; i < card.size(); ++i) {
    in.tables[i].cardinality = card[i];
    in.tables[i].local_sel = 1.0;
    in.tables[i].index_height = 2;
  }
  in.edge_sel = std::move(edge_sel);
  return in;
}

bool IsPermutation(const std::vector<size_t>& order, size_t n) {
  if (order.size() != n) return false;
  std::vector<size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < n; ++i) {
    if (sorted[i] != i) return false;
  }
  return true;
}

// Eq 1 cost of a full order with the driving scan reading C*S_LP entries.
double OrderCost(const CostInputs& in, const std::vector<size_t>& order) {
  const double cleg = in.tables[order[0]].cardinality * in.tables[order[0]].local_sel;
  return PipelineCost(in, order, cleg, cleg);
}

TEST(GreedyOrderTest, PermutationOfAllLegsAtWidth20) {
  for (bool star : {true, false}) {
    JoinQuery q = star ? StarQuery(20) : ChainQuery(20);
    std::vector<double> card(20), sel(19);
    for (size_t t = 0; t < 20; ++t) card[t] = 10.0 + 37.0 * static_cast<double>((t * 7) % 13);
    for (size_t e = 0; e < 19; ++e) sel[e] = 0.005 + 0.01 * static_cast<double>(e % 5);
    auto in = MakeInputs(&q, card, sel);
    EXPECT_TRUE(IsPermutation(GreedyCardinalityOrder(in), 20));
    EXPECT_TRUE(IsPermutation(AntiGreedyCardinalityOrder(in), 20));
  }
}

TEST(GreedyOrderTest, DeterministicWithSmallestIndexTies) {
  // All cardinalities and selectivities equal: every round is a tie, so the
  // order must be the identity (smallest index wins each round) — and two
  // calls must agree exactly.
  JoinQuery q = StarQuery(8);
  auto in = MakeInputs(&q, std::vector<double>(8, 50.0),
                       std::vector<double>(7, 0.02));
  std::vector<size_t> expect = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(GreedyCardinalityOrder(in), expect);
  EXPECT_EQ(GreedyCardinalityOrder(in), GreedyCardinalityOrder(in));
  EXPECT_EQ(AntiGreedyCardinalityOrder(in), AntiGreedyCardinalityOrder(in));
}

TEST(GreedyOrderTest, MatchesExhaustiveEnumerationOnSmallCases) {
  // 2- and 3-table cases with monotone cardinalities: greedy must land on
  // the same Eq 1 cost as trying every permutation.
  {
    JoinQuery q = ChainQuery(2);
    auto in = MakeInputs(&q, {10, 1000}, {0.01});
    std::vector<size_t> greedy = GreedyCardinalityOrder(in);
    double best = std::numeric_limits<double>::infinity();
    std::vector<size_t> perm = {0, 1};
    do {
      best = std::min(best, OrderCost(in, perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(OrderCost(in, greedy), best, best * 1e-12);
  }
  {
    JoinQuery q = ChainQuery(3);
    auto in = MakeInputs(&q, {10, 100, 1000}, {0.01, 0.01});
    std::vector<size_t> greedy = GreedyCardinalityOrder(in);
    double best = std::numeric_limits<double>::infinity();
    std::vector<size_t> perm = {0, 1, 2};
    do {
      best = std::min(best, OrderCost(in, perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(OrderCost(in, greedy), best, best * 1e-12);
  }
  {
    JoinQuery q = StarQuery(3);
    auto in = MakeInputs(&q, {20, 400, 40}, {0.02, 0.02});
    std::vector<size_t> greedy = GreedyCardinalityOrder(in);
    double best = std::numeric_limits<double>::infinity();
    std::vector<size_t> perm = {0, 1, 2};
    do {
      best = std::min(best, OrderCost(in, perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(OrderCost(in, greedy), best, best * 1e-12);
  }
}

TEST(GreedyOrderTest, RobustToZeroCardinalityLegs) {
  JoinQuery q = StarQuery(6);
  auto in = MakeInputs(&q, {30, 0, 25, 0, 25, 30}, std::vector<double>(5, 0.05));
  std::vector<size_t> order = GreedyCardinalityOrder(in);
  ASSERT_TRUE(IsPermutation(order, 6));
  // A zero-cardinality leg has the minimum filtered cardinality; the
  // smallest-index one must drive.
  EXPECT_EQ(order[0], 1u);
  EXPECT_TRUE(IsPermutation(AntiGreedyCardinalityOrder(in), 6));
  // Zero local selectivity everywhere: still total and deterministic.
  for (auto& t : in.tables) t.local_sel = 0.0;
  EXPECT_TRUE(IsPermutation(GreedyCardinalityOrder(in), 6));
  EXPECT_EQ(GreedyCardinalityOrder(in), GreedyCardinalityOrder(in));
}

TEST(GreedyOrderTest, PlantedSkewPutsSmallLegFirst) {
  // Star center (0) with a fat dimension (1: JC 10 per row) and a skinny
  // one (2: JC 0.1 per row). Greedy must probe the skinny leg before the
  // fat one; anti-greedy must do the opposite; and the greedy order must be
  // strictly cheaper under Eq 1.
  JoinQuery q = StarQuery(3);
  auto in = MakeInputs(&q, {100, 1000, 10}, {0.01, 0.01});
  std::vector<size_t> greedy = GreedyCardinalityOrder(in);
  std::vector<size_t> anti = AntiGreedyCardinalityOrder(in);
  EXPECT_EQ(greedy, (std::vector<size_t>{2, 0, 1}));
  ASSERT_TRUE(IsPermutation(anti, 3));
  // Anti places the fat leg as early as connectivity allows.
  EXPECT_LT(std::find(greedy.begin(), greedy.end(), 2u) - greedy.begin(),
            std::find(greedy.begin(), greedy.end(), 1u) - greedy.begin());
  EXPECT_LT(std::find(anti.begin(), anti.end(), 1u) - anti.begin(),
            std::find(anti.begin(), anti.end(), 2u) - anti.begin());
  EXPECT_LT(OrderCost(in, greedy), OrderCost(in, anti));
}

TEST(GreedyOrderTest, AntiGreedyPrefixesStayConnected) {
  // The corruption order must never manufacture a cross product: every leg
  // after the first needs a join edge into the already-placed prefix.
  JoinQuery q = StarQuery(16);
  std::vector<double> card(16), sel(15);
  for (size_t t = 0; t < 16; ++t) card[t] = 5.0 + static_cast<double>(97 * t % 61);
  for (size_t e = 0; e < 15; ++e) sel[e] = 0.01 + 0.005 * static_cast<double>(e % 4);
  auto in = MakeInputs(&q, card, sel);
  for (const auto& order : {GreedyCardinalityOrder(in), AntiGreedyCardinalityOrder(in)}) {
    ASSERT_TRUE(IsPermutation(order, 16));
    uint64_t mask = uint64_t{1} << order[0];
    for (size_t i = 1; i < order.size(); ++i) {
      EXPECT_NE(ChooseProbeEdge(in, order[i], mask), SIZE_MAX)
          << "leg " << order[i] << " at position " << i << " is disconnected";
      mask |= uint64_t{1} << order[i];
    }
  }
}

TEST(GreedyOrderTest, NeighborSwapOrdersEnumerateAdjacentTranspositions) {
  std::vector<size_t> order = {3, 1, 4, 0, 2};
  auto swaps = NeighborSwapOrders(order, 1);
  ASSERT_EQ(swaps.size(), 3u);  // order.size() - from - 1
  for (const auto& cand : swaps) {
    ASSERT_EQ(cand.size(), order.size());
    EXPECT_EQ(cand[0], order[0]);  // prefix (driving leg) fixed
    size_t diffs = 0;
    for (size_t i = 0; i < order.size(); ++i) diffs += cand[i] != order[i];
    EXPECT_EQ(diffs, 2u);  // exactly one adjacent transposition
  }
  // from = 0 is clamped to 1; short tails yield no candidates.
  EXPECT_EQ(NeighborSwapOrders(order, 0).size(), 3u);
  EXPECT_EQ(NeighborSwapOrders({1, 2}, 1).size(), 0u);
  EXPECT_EQ(NeighborSwapOrders(order, 4).size(), 0u);
}

TEST(GreedyOrderTest, EstimatedJoinOutputMatchesHandComputation) {
  JoinQuery q = ChainQuery(3);
  auto in = MakeInputs(&q, {10, 100, 1000}, {0.02, 0.01});
  // Driving 0: 10 rows; JC(1|0) = 100*0.02 = 2; JC(2|0,1) = 1000*0.01 = 10.
  EXPECT_NEAR(EstimatedJoinOutput(in, {0, 1, 2}), 10 * 2 * 10, 1e-9);
}

TEST(GreedyOrderTest, PlannerSeedsWideQueriesWithGreedyOrder) {
  // Above PlannerOptions::greedy_seed_threshold the planner's initial order
  // must be exactly the cardinality-greedy order over its own estimates.
  ajr::testing::WorkloadSpec spec;
  uint64_t seed = 1;
  for (;; ++seed) {
    spec = ajr::testing::GenerateWorkload(
        seed, ajr::testing::GeneratorOptions::WideProfile());
    if (spec.tables.size() >= 10) break;
    ASSERT_LT(seed, 50u) << "no >=10-table wide spec in the first seeds";
  }
  auto catalog = spec.Materialize();
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  Planner planner(catalog->get());
  auto plan = planner.Plan(spec.query);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->initial_order,
            GreedyCardinalityOrder((*plan)->EstimatedCostInputs()));
  EXPECT_TRUE(IsPermutation((*plan)->initial_order, spec.tables.size()));
  EXPECT_GT((*plan)->est_cost, 0.0);
}

}  // namespace
}  // namespace ajr

#include "optimize/planner.h"

#include <gtest/gtest.h>

#include "workload/dmv.h"
#include "workload/templates.h"

namespace ajr {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    DmvConfig config;
    config.num_owners = 5000;
    ASSERT_TRUE(GenerateDmv(catalog_, config).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static Catalog* catalog_;
};

Catalog* PlannerTest::catalog_ = nullptr;

TEST_F(PlannerTest, PlansExample1) {
  Planner planner(catalog_);
  auto plan = planner.Plan(DmvQueryGenerator::Example1());
  ASSERT_TRUE(plan.ok()) << plan.status();
  const PipelinePlan& p = **plan;
  ASSERT_EQ(p.initial_order.size(), 4u);
  // Order is a permutation of all tables.
  std::vector<bool> seen(4, false);
  for (size_t t : p.initial_order) {
    ASSERT_LT(t, 4u);
    EXPECT_FALSE(seen[t]);
    seen[t] = true;
  }
  EXPECT_GT(p.est_cost, 0);
  // Estimates are sane probabilities.
  for (double s : p.est_local_sel) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  for (double s : p.est_edge_sel) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(PlannerTest, DrivingAccessUsesSargableIndex) {
  Planner planner(catalog_);
  auto plan = planner.Plan(DmvQueryGenerator::Example1());
  ASSERT_TRUE(plan.ok());
  // Car's driving access: the make OR-predicate is sargable on car_make.
  const DrivingAccess& car = (*plan)->access[1].driving;
  ASSERT_NE(car.index, nullptr);
  EXPECT_EQ(car.index->column, "make");
  EXPECT_EQ(car.ranges.size(), 2u);  // Chevrolet + Mercedes point ranges
  EXPECT_LT(car.est_slpi, 0.2);
  // Accidents has no local predicate: table scan access.
  const DrivingAccess& acc = (*plan)->access[3].driving;
  EXPECT_EQ(acc.index, nullptr);
  EXPECT_DOUBLE_EQ(acc.est_slpi, 1.0);
}

TEST_F(PlannerTest, ProbeIndexesResolvedPerEdge) {
  Planner planner(catalog_);
  auto plan = planner.Plan(DmvQueryGenerator::Example1());
  ASSERT_TRUE(plan.ok());
  const PipelinePlan& p = **plan;
  // Edge 0: c.ownerid = o.id. Car side probes car_ownerid, owner side owner_id.
  ASSERT_EQ(p.access[1].probe_index_by_edge.size(), 3u);
  ASSERT_NE(p.access[1].probe_index_by_edge[0], nullptr);
  EXPECT_EQ(p.access[1].probe_index_by_edge[0]->column, "ownerid");
  ASSERT_NE(p.access[0].probe_index_by_edge[0], nullptr);
  EXPECT_EQ(p.access[0].probe_index_by_edge[0]->column, "id");
  // Edge 2: c.id = a.carid.
  ASSERT_NE(p.access[3].probe_index_by_edge[2], nullptr);
  EXPECT_EQ(p.access[3].probe_index_by_edge[2]->column, "carid");
}

TEST_F(PlannerTest, IndependenceUnderestimatesCorrelatedPairs) {
  // Example 2's point: est(make='Mazda' AND model='323') is far below the
  // actual fraction of Mazda 323s (model implies make).
  Planner planner(catalog_);
  auto q = DmvQueryGenerator::Example2();
  auto plan = planner.Plan(q);
  ASSERT_TRUE(plan.ok());
  const TableEntry& car = **catalog_->GetTable("car");
  double est = (*plan)->est_local_sel[1];
  size_t actual = 0;
  for (Rid r = 0; r < car.table().num_rows(); ++r) {
    const Row& row = car.table().Get(r);
    if (row[2].AsString() == "Mazda" && row[3].AsString() == "323") ++actual;
  }
  double actual_sel = static_cast<double>(actual) / car.table().num_rows();
  if (actual > 0) {
    // The paper reports a ~13x gap for its DMV instance.
    EXPECT_LT(est, actual_sel / 3) << "est " << est << " actual " << actual_sel;
  }
}

TEST_F(PlannerTest, SixTablePlanValidates) {
  Planner planner(catalog_);
  DmvQueryGenerator gen(catalog_);
  auto q = gen.GenerateSixTable(1, 0);
  ASSERT_TRUE(q.ok());
  auto plan = planner.Plan(*q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ((*plan)->initial_order.size(), 6u);
}

TEST_F(PlannerTest, RejectsInvalidQueries) {
  Planner planner(catalog_);
  JoinQuery bad;
  EXPECT_FALSE(planner.Plan(bad).ok());
  JoinQuery unknown = DmvQueryGenerator::Example1();
  unknown.tables[0].table = "no_such_table";
  EXPECT_FALSE(planner.Plan(unknown).ok());
  JoinQuery bad_col = DmvQueryGenerator::Example1();
  bad_col.edges[0].left_column = "no_such_column";
  EXPECT_FALSE(planner.Plan(bad_col).ok());
}

TEST_F(PlannerTest, EstimatedCostInputsMatchPlan) {
  Planner planner(catalog_);
  auto plan = planner.Plan(DmvQueryGenerator::Example1());
  ASSERT_TRUE(plan.ok());
  CostInputs in = (*plan)->EstimatedCostInputs();
  ASSERT_EQ(in.tables.size(), 4u);
  EXPECT_EQ(in.query, &(*plan)->query);
  EXPECT_DOUBLE_EQ(in.tables[0].cardinality, 5000.0);  // owner at this scale
  EXPECT_EQ(in.edge_sel.size(), 3u);
}

TEST_F(PlannerTest, RichStatsChangeEstimates) {
  Catalog rich_catalog;
  DmvConfig config;
  config.num_owners = 5000;
  config.rich_stats = true;
  ASSERT_TRUE(GenerateDmv(&rich_catalog, config).ok());

  Planner base(&rich_catalog, PlannerOptions{StatsTier::kBase});
  Planner rich(&rich_catalog, PlannerOptions{StatsTier::kRich});
  // A skew-head predicate: country3 = 'US'.
  JoinQuery q = DmvQueryGenerator::Example3();
  auto pb = base.Plan(q);
  auto pr = rich.Plan(q);
  ASSERT_TRUE(pb.ok() && pr.ok());
  // Rich stats see the skew: owner selectivity estimate rises sharply.
  EXPECT_GT((*pr)->est_local_sel[0], (*pb)->est_local_sel[0] * 2);
}

}  // namespace
}  // namespace ajr

#include "optimize/cost_model.h"

#include <gtest/gtest.h>

#include "workload/templates.h"

namespace ajr {
namespace {

// A 4-table chain query shaped like the paper's Fig 1 example:
// T1 - T2 - T3 - T4 (chain edges).
JoinQuery ChainQuery() {
  JoinQuery q;
  q.tables = {{"t1", "T1"}, {"t2", "T2"}, {"t3", "T3"}, {"t4", "T4"}};
  q.edges = {{0, "k", 1, "k", 0}, {1, "k", 2, "k", 1}, {2, "k", 3, "k", 2}};
  q.local_predicates.assign(4, nullptr);
  return q;
}

CostInputs MakeInputs(const JoinQuery* q, std::vector<double> cleg,
                      std::vector<double> edge_sel) {
  CostInputs in;
  in.query = q;
  in.tables.resize(cleg.size());
  for (size_t i = 0; i < cleg.size(); ++i) {
    in.tables[i].cardinality = cleg[i];
    in.tables[i].local_sel = 1.0;
    in.tables[i].index_height = 2;
  }
  in.edge_sel = std::move(edge_sel);
  return in;
}

TEST(CostModelTest, JcAtAppliesOnlyPrecedingEdges) {
  JoinQuery q = ChainQuery();
  // Join cards: T2 per T1 row = 100 * 0.02 = 2; T3 per T2 = 1.5; etc.
  auto in = MakeInputs(&q, {50, 100, 150, 100}, {0.02, 0.01, 0.005});
  // T2 with T1 placed: edge 0 applies.
  EXPECT_NEAR(JcAt(in, 1, /*mask=*/0b0001), 2.0, 1e-9);
  // T2 with nothing placed: no edges apply -> full cardinality.
  EXPECT_NEAR(JcAt(in, 1, 0), 100.0, 1e-9);
  // T3 with T1,T2 placed: only edge 1 touches T3.
  EXPECT_NEAR(JcAt(in, 2, 0b0011), 1.5, 1e-9);
  // Local selectivity scales JC.
  in.tables[1].local_sel = 0.5;
  EXPECT_NEAR(JcAt(in, 1, 0b0001), 1.0, 1e-9);
}

TEST(CostModelTest, Figure6JcAdjustment) {
  // Sec 4.3.4: a triangle join graph; moving a table changes which edges
  // apply, and JC scales by the gained/lost S_JP — our recompute form must
  // show exactly that ratio.
  JoinQuery q;
  q.tables = {{"t1", "T1"}, {"t2", "T2"}, {"t3", "T3"}};
  q.edges = {{0, "k", 1, "k", 0},   // JP1: T1-T2
             {0, "k", 2, "k", 1},   // JP2: T1-T3
             {1, "k", 2, "k", 2}};  // JP3: T2-T3
  q.local_predicates.assign(3, nullptr);
  auto in = MakeInputs(&q, {100, 100, 100}, {0.01, 0.02, 0.03});
  // Plan T1, T2, T3: T3 sees JP2 and JP3.
  double jc3_last = JcAt(in, 2, 0b011);
  // Plan T1, T3, T2: T3 sees only JP2 -> JC divided by S_JP3.
  double jc3_mid = JcAt(in, 2, 0b001);
  EXPECT_NEAR(jc3_last / jc3_mid, 0.03, 1e-12);
  // And T2, now after T3, gains JP3: multiplied by S_JP3.
  double jc2_after_t1 = JcAt(in, 1, 0b001);
  double jc2_after_t1t3 = JcAt(in, 1, 0b101);
  EXPECT_NEAR(jc2_after_t1t3 / jc2_after_t1, 0.03, 1e-12);
}

TEST(CostModelTest, ChooseProbeEdgePicksFewestMatches) {
  JoinQuery q;
  q.tables = {{"a", "A"}, {"b", "B"}, {"c", "C"}};
  q.edges = {{0, "x", 2, "x", 0}, {1, "y", 2, "y", 1}};
  q.local_predicates.assign(3, nullptr);
  auto in = MakeInputs(&q, {100, 100, 1000}, {0.1, 0.001});
  // Probing C with both A and B placed: edge 1 gives 1 match, edge 0 gives
  // 100 -> edge 1 wins.
  EXPECT_EQ(ChooseProbeEdge(in, 2, 0b011), 1u);
  // With only A placed, edge 0 is the only option.
  EXPECT_EQ(ChooseProbeEdge(in, 2, 0b001), 0u);
  // Disconnected: B with only A placed has no edge.
  EXPECT_EQ(ChooseProbeEdge(in, 1, 0b001), SIZE_MAX);
}

TEST(CostModelTest, RankFormula) {
  EXPECT_DOUBLE_EQ(Rank(3.0, 10.0), 0.2);
  EXPECT_DOUBLE_EQ(Rank(1.0, 10.0), 0.0);   // JC=1: neutral
  EXPECT_LT(Rank(0.5, 10.0), 0.0);          // filtering joins: negative rank
}

TEST(CostModelTest, GreedyRankOrderPrefersSelectiveJoins) {
  JoinQuery q = ChainQuery();
  // Star-ify: make T1 the hub so all inners are directly connected.
  q.edges = {{0, "k", 1, "k", 0}, {0, "k", 2, "k", 1}, {0, "k", 3, "k", 2}};
  auto in = MakeInputs(&q, {10, 1000, 1000, 1000}, {0.01, 0.0001, 0.001});
  // JCs per inner once T1 placed: T2 = 10, T3 = 0.1, T4 = 1.
  auto order = GreedyRankOrder(in, {1, 2, 3}, 0b0001);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);  // most filtering first
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 1u);
}

TEST(CostModelTest, GreedyRankOrderRespectsConnectivity) {
  // Chain T1-T2-T3-T4: T3 cannot be placed before T2 even if its rank is
  // lower, because it has no edge to {T1}.
  JoinQuery q = ChainQuery();
  auto in = MakeInputs(&q, {10, 1000, 10, 10}, {0.01, 0.0001, 0.001});
  auto order = GreedyRankOrder(in, {1, 2, 3}, 0b0001);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);  // forced: only T2 connects to T1
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 3u);
}

TEST(CostModelTest, PipelineCostFollowsEq1Structure) {
  JoinQuery q = ChainQuery();
  auto in = MakeInputs(&q, {50, 1000, 1000, 1000}, {0.002, 0.0015, 0.001});
  // Hand-roll Eq 1 with the same PC/JC functions.
  std::vector<size_t> order = {0, 1, 2, 3};
  double expected = DrivingScanCost(50, in.tables[0].index_height);
  double flow = 50;
  uint64_t mask = 1;
  for (size_t i = 1; i < order.size(); ++i) {
    expected += flow * PcAt(in, order[i], mask);
    flow *= JcAt(in, order[i], mask);
    mask |= uint64_t{1} << order[i];
  }
  EXPECT_NEAR(PipelineCost(in, order, 50, 50), expected, 1e-9);
}

TEST(CostModelTest, AscendingRankOrderIsCheapest) {
  // ASI property (Eq 4): for a star query, the ascending-rank inner order
  // must not be beaten by any other permutation.
  JoinQuery q = ChainQuery();
  q.edges = {{0, "k", 1, "k", 0}, {0, "k", 2, "k", 1}, {0, "k", 3, "k", 2}};
  auto in = MakeInputs(&q, {20, 500, 800, 300}, {0.003, 0.002, 0.01});
  std::vector<size_t> inners = {1, 2, 3};
  auto best = GreedyRankOrder(in, inners, 0b0001);
  std::vector<size_t> full_best = {0};
  full_best.insert(full_best.end(), best.begin(), best.end());
  double best_cost = PipelineCost(in, full_best, 20, 20);
  std::sort(inners.begin(), inners.end());
  do {
    std::vector<size_t> order = {0};
    order.insert(order.end(), inners.begin(), inners.end());
    EXPECT_GE(PipelineCost(in, order, 20, 20) + 1e-9, best_cost)
        << "order " << inners[0] << inners[1] << inners[2];
  } while (std::next_permutation(inners.begin(), inners.end()));
}

TEST(CostModelTest, IsRankOrderedDetectsViolations) {
  JoinQuery q = ChainQuery();
  q.edges = {{0, "k", 1, "k", 0}, {0, "k", 2, "k", 1}, {0, "k", 3, "k", 2}};
  auto in = MakeInputs(&q, {10, 1000, 1000, 1000}, {0.01, 0.0001, 0.001});
  // Ideal inner order is 2, 3, 1 (see GreedyRankOrderPrefersSelectiveJoins).
  EXPECT_TRUE(IsRankOrdered(in, {0, 2, 3, 1}, 1));
  EXPECT_FALSE(IsRankOrdered(in, {0, 1, 2, 3}, 1));
  // A suffix check only considers the tail.
  EXPECT_TRUE(IsRankOrdered(in, {0, 1, 2, 3}, 2));  // given {0,1}: 2 then 3? JC2<JC3 yes
  EXPECT_TRUE(IsRankOrdered(in, {0, 1, 2, 3}, 4));  // empty tail
}

}  // namespace
}  // namespace ajr

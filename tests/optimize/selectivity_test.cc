#include "optimize/selectivity.h"

#include <gtest/gtest.h>

namespace ajr {
namespace {

// 1000-row table: id uniform 0..999, grp in {0..9} uniform, skewed 90% 'A',
// val uniform 0..99.
class SelectivityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    auto t = catalog_->CreateTable("t", Schema({{"id", DataType::kInt64},
                                                {"grp", DataType::kInt64},
                                                {"skew", DataType::kString},
                                                {"val", DataType::kInt64}}));
    ASSERT_TRUE(t.ok());
    for (int i = 0; i < 1000; ++i) {
      std::string skew = i < 900 ? "A" : std::string(1, static_cast<char>('B' + i % 20));
      ASSERT_TRUE((*t)
                      ->table()
                      .Append({Value(i), Value(i % 10), Value(skew), Value(i % 100)})
                      .ok());
    }
    AnalyzeOptions opts;
    opts.rich = true;
    opts.top_k = 5;
    ASSERT_TRUE(catalog_->Analyze("t", opts).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  static const TableEntry& T() { return **catalog_->GetTable("t"); }
  static Catalog* catalog_;
};

Catalog* SelectivityTest::catalog_ = nullptr;

TEST_F(SelectivityTest, NullPredicateIsOne) {
  SelectivityEstimator est;
  EXPECT_DOUBLE_EQ(est.EstimateLocal(T(), nullptr), 1.0);
}

TEST_F(SelectivityTest, EqualityUsesUniformNdv) {
  SelectivityEstimator est;
  // grp has ndv 10 -> 0.1 regardless of the actual value.
  EXPECT_NEAR(est.EstimateLocal(T(), ColCmp("grp", CompareOp::kEq, Value(3))), 0.1,
              1e-9);
  // skew has ndv 21; uniform assumption says 1/21 even for the 90% value.
  EXPECT_NEAR(est.EstimateLocal(T(), ColCmp("skew", CompareOp::kEq, Value("A"))),
              1.0 / 21, 1e-9);
}

TEST_F(SelectivityTest, RichStatsSeeSkew) {
  SelectivityEstimator est(StatsTier::kRich);
  // Frequent-value sketch knows 'A' covers 90%.
  EXPECT_NEAR(est.EstimateLocal(T(), ColCmp("skew", CompareOp::kEq, Value("A"))),
              0.9, 0.01);
  // Non-frequent values get the leftover mass spread over remaining NDV.
  double rare = est.EstimateLocal(T(), ColCmp("skew", CompareOp::kEq, Value("B")));
  EXPECT_LT(rare, 0.02);
  EXPECT_GT(rare, 0.0);
}

TEST_F(SelectivityTest, RangeInterpolation) {
  SelectivityEstimator est;
  // val in [0, 99]; val < 50 ~ 0.505 under uniformity.
  double sel = est.EstimateLocal(T(), ColCmp("val", CompareOp::kLt, Value(50)));
  EXPECT_NEAR(sel, 0.5, 0.02);
  double sel10 = est.EstimateLocal(T(), ColCmp("val", CompareOp::kLe, Value(9)));
  EXPECT_NEAR(sel10, 0.1, 0.02);
  double all = est.EstimateLocal(T(), ColCmp("val", CompareOp::kGe, Value(0)));
  EXPECT_NEAR(all, 1.0, 1e-9);
}

TEST_F(SelectivityTest, IndependenceMultipliesConjuncts) {
  SelectivityEstimator est;
  auto conj = And({ColCmp("grp", CompareOp::kEq, Value(3)),
                   ColCmp("val", CompareOp::kLt, Value(50))});
  double sel = est.EstimateLocal(T(), conj);
  EXPECT_NEAR(sel, 0.1 * 0.5, 0.01);
}

TEST_F(SelectivityTest, OrAndNotAndIn) {
  SelectivityEstimator est;
  auto either = Or({ColCmp("grp", CompareOp::kEq, Value(1)),
                    ColCmp("grp", CompareOp::kEq, Value(2))});
  EXPECT_NEAR(est.EstimateLocal(T(), either), 1 - 0.9 * 0.9, 1e-9);
  auto neg = Not(ColCmp("grp", CompareOp::kEq, Value(1)));
  EXPECT_NEAR(est.EstimateLocal(T(), neg), 0.9, 1e-9);
  auto in = In("grp", {Value(1), Value(2), Value(3)});
  EXPECT_NEAR(est.EstimateLocal(T(), in), 0.3, 1e-9);
  auto ne = ColCmp("grp", CompareOp::kNe, Value(1));
  EXPECT_NEAR(est.EstimateLocal(T(), ne), 0.9, 1e-9);
}

TEST_F(SelectivityTest, MissingStatsFallToDefaults) {
  Catalog fresh;
  auto t = fresh.CreateTable("u", Schema({{"x", DataType::kInt64}}));
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE((*t)->table().Append({Value(1)}).ok());
  // No ANALYZE: defaults apply.
  SelectivityEstimator est;
  EXPECT_DOUBLE_EQ(est.EstimateLocal(**fresh.GetTable("u"),
                                     ColCmp("x", CompareOp::kEq, Value(1))),
                   SelectivityEstimator::kDefaultEquality);
  EXPECT_DOUBLE_EQ(est.EstimateLocal(**fresh.GetTable("u"),
                                     ColCmp("x", CompareOp::kLt, Value(1))),
                   SelectivityEstimator::kDefaultRange);
}

TEST_F(SelectivityTest, JoinUsesContainment) {
  Catalog fresh;
  auto a = fresh.CreateTable("a", Schema({{"k", DataType::kInt64}}));
  auto b = fresh.CreateTable("b", Schema({{"k", DataType::kInt64}}));
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < 100; ++i) ASSERT_TRUE((*a)->table().Append({Value(i)}).ok());
  for (int i = 0; i < 20; ++i) ASSERT_TRUE((*b)->table().Append({Value(i % 10)}).ok());
  ASSERT_TRUE(fresh.AnalyzeAll().ok());
  SelectivityEstimator est;
  // ndv(a.k)=100, ndv(b.k)=10 -> 1/100.
  EXPECT_NEAR(est.EstimateJoin(**fresh.GetTable("a"), "k", **fresh.GetTable("b"), "k"),
              0.01, 1e-9);
}

TEST_F(SelectivityTest, MinimalTierIgnoresColumnStats) {
  // The paper's Sec 5 baseline: table sizes only, defaults everywhere —
  // even though ANALYZE has run on this table.
  SelectivityEstimator est(StatsTier::kMinimal);
  EXPECT_DOUBLE_EQ(est.EstimateLocal(T(), ColCmp("grp", CompareOp::kEq, Value(3))),
                   SelectivityEstimator::kDefaultEquality);
  EXPECT_DOUBLE_EQ(est.EstimateLocal(T(), ColCmp("val", CompareOp::kLt, Value(50))),
                   SelectivityEstimator::kDefaultRange);
  // Join fallback with sizes only: 1/max(cardinality) (key-join heuristic).
  EXPECT_DOUBLE_EQ(est.EstimateJoin(T(), "grp", T(), "val"), 1.0 / 1000);
  // Independence still multiplies the defaults.
  auto conj = And({ColCmp("grp", CompareOp::kEq, Value(3)),
                   ColCmp("skew", CompareOp::kEq, Value("A"))});
  EXPECT_NEAR(est.EstimateLocal(T(), conj), 0.04 * 0.04, 1e-12);
}

TEST_F(SelectivityTest, RangeEstimatesFromRangesDirect) {
  SelectivityEstimator est;
  KeyRange r;
  r.lo = Value(25);
  r.hi = Value(74);
  EXPECT_NEAR(est.EstimateRanges(T(), "val", {r}), 0.5, 0.02);
  // Disjoint ranges add.
  EXPECT_NEAR(est.EstimateRanges(
                  T(), "grp", {KeyRange::Point(Value(1)), KeyRange::Point(Value(2))}),
              0.2, 1e-9);
  // Unbounded range = 1.
  EXPECT_DOUBLE_EQ(est.EstimateRanges(T(), "val", {KeyRange::All()}), 1.0);
}

}  // namespace
}  // namespace ajr

#!/usr/bin/env python3
"""Compare freshly generated BENCH_*.json files against committed baselines.

    scripts/bench_delta.py <fresh_dir> [<baseline_dir>] [--threshold=PCT]

Every metric is classified by its name into higher-is-better (qps,
speedup, throughput, hit rates), lower-is-better (latencies, wall times,
work units, mismatch counts), or informational (configuration echoes like
`workers` or `hardware_concurrency`, which never gate). A move beyond the
threshold (default 15%) in the BAD direction is a regression; the exit
code is nonzero when any regression was found, so callers can gate on it.
CI keeps the perf-smoke step non-gating (`continue-on-error`) because
shared-runner wall clocks are noisy — the exit code is for humans running
the comparison on quiet hardware, and for the job-summary table this
script appends to $GITHUB_STEP_SUMMARY when that variable is set.

Harness provenance (git_sha, build_type, dop, policy, backend) is stamped
into each file by bench/harness_util; comparing across different build
types, dops, adaptation policies, or index backends is reported as a
warning because such deltas
measure the configuration, not the code. When either side of a comparison
carries the `speedups_not_meaningful` marker (bench/parallel_scaling and
bench/shared_traffic set it on hardware_concurrency=1 machines, mirroring
their WARNING lines), all dop>1 metrics and all speedup ratios are
skipped: single-core "speedups" are scheduler noise. Work-shape metrics
like `passes_per_query` (scan passes physically produced per consuming
query — lower is better) stay gated even then, because they count work,
not wall time.
Only Python stdlib is used.
"""

import json
import os
import sys

DEFAULT_THRESHOLD = 15.0

HIGHER_BETTER = ("qps", "speedup", "throughput", "hit_rate", "per_second",
                 "identity")
LOWER_BETTER = ("_ms", "_us", "wall", "latency", "seconds", "work_units",
                "mismatch", "_ns", "passes_per_query")
# Configuration echoes and activity counters: reported, never gated.
INFORMATIONAL = ("workers", "hardware_concurrency", "morsel", "queries",
                 "order_switches", "reorders", "switches", "folds", "dop",
                 "rows", "probes", "batches", "descents")


def classify(name):
    low = name.lower()
    # The marker metric contains "speedup" but is a configuration echo.
    if "not_meaningful" in low:
        return "info"
    for pat in INFORMATIONAL:
        if pat in low:
            # Lower/higher patterns win when both match (e.g. a latency
            # metric that mentions workers in its name).
            if any(p in low for p in LOWER_BETTER + HIGHER_BETTER):
                break
            return "info"
    for pat in HIGHER_BETTER:
        if pat in low:
            return "higher"
    for pat in LOWER_BETTER:
        if pat in low:
            return "lower"
    return "info"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    meta = {k: doc.get(k)
            for k in ("git_sha", "build_type", "dop", "policy", "backend")}
    return {m["name"]: m["value"] for m in doc.get("metrics", [])}, meta


def dop_of(metric):
    """Returns the dop a per-dop metric was measured at, or None.

    Matches the `<name>_dopN` / `<name>_dopN_<suffix>` convention used by
    bench/parallel_scaling (e.g. `speedup_dop4`, `work_units_dop2_vs_serial`).
    """
    low = metric.lower()
    idx = low.find("_dop")
    while idx != -1:
        digits = ""
        j = idx + 4
        while j < len(low) and low[j].isdigit():
            digits += low[j]
            j += 1
        if digits and (j == len(low) or low[j] == "_"):
            return int(digits)
        idx = low.find("_dop", idx + 1)
    return None


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    threshold = DEFAULT_THRESHOLD
    for a in sys.argv[1:]:
        if a.startswith("--threshold="):
            threshold = float(a.split("=", 1)[1])
    if not args:
        print(__doc__.strip())
        return 0
    fresh_dir = args[0]
    base_dir = args[1] if len(args) > 1 else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "bench", "baselines")

    names = sorted(n for n in os.listdir(fresh_dir)
                   if n.startswith("BENCH_") and n.endswith(".json"))
    if not names:
        print(f"no BENCH_*.json files in {fresh_dir}")
        return 0

    regressions = []
    improvements = []
    table = ["| bench | metric | baseline | fresh | delta | verdict |",
             "|---|---|---:|---:|---:|---|"]
    for name in names:
        base_path = os.path.join(base_dir, name)
        print(f"== {name} ==")
        if not os.path.exists(base_path):
            print("  (no committed baseline; skipping)")
            continue
        fresh, fmeta = load(os.path.join(fresh_dir, name))
        base, bmeta = load(base_path)
        for key in ("build_type", "dop", "policy", "backend"):
            if bmeta.get(key) is not None and fmeta.get(key) is not None \
                    and bmeta[key] != fmeta[key]:
                print(f"  WARNING: {key} differs "
                      f"(baseline={bmeta[key]}, fresh={fmeta[key]}); "
                      "deltas measure the configuration, not the code")
        single_core = fresh.get("speedups_not_meaningful") == 1 or \
            base.get("speedups_not_meaningful") == 1
        if single_core:
            print("  NOTE: speedups_not_meaningful marker set "
                  "(hardware_concurrency=1 on at least one side); "
                  "skipping dop>1 and speedup comparisons")
        for metric in sorted(set(fresh) | set(base)):
            if single_core and ((dop_of(metric) or 1) > 1 or
                                ("speedup" in metric.lower() and
                                 "not_meaningful" not in metric.lower())):
                print(f"  {metric:44s} skipped (single-core run)")
                continue
            if metric not in fresh or metric not in base:
                side = "baseline" if metric not in fresh else "fresh run"
                print(f"  {metric:44s} only in {side}")
                continue
            b, f = base[metric], fresh[metric]
            direction = classify(metric)
            if b == 0:
                verdict = "new" if f != 0 else "ok"
                print(f"  {metric:44s} {b:12.4f} -> {f:12.4f}   (baseline 0)")
                if direction == "lower" and f > 0:
                    regressions.append((name, metric, b, f, float("inf")))
                    table.append(f"| {name} | {metric} | {b:.4g} | {f:.4g} "
                                 f"| n/a | **regression** |")
                continue
            rel = (f - b) / abs(b) * 100.0
            bad = (direction == "lower" and rel > threshold) or \
                  (direction == "higher" and rel < -threshold)
            good = (direction == "lower" and rel < -threshold) or \
                   (direction == "higher" and rel > threshold)
            flag = ""
            if bad:
                flag = f"  <-- REGRESSION (>{threshold:.0f}% worse)"
                regressions.append((name, metric, b, f, rel))
            elif good:
                flag = "  (improved)"
                improvements.append((name, metric, b, f, rel))
            elif direction != "info" and abs(rel) > threshold:
                flag = "  (large move, not gated)"
            print(f"  {metric:44s} {b:12.4f} -> {f:12.4f}  {rel:+7.1f}%{flag}")
            if direction != "info" and (bad or good or abs(rel) > threshold):
                verdict = "**regression**" if bad else \
                          ("improvement" if good else "noisy")
                table.append(f"| {name} | {metric} | {b:.4g} | {f:.4g} "
                             f"| {rel:+.1f}% | {verdict} |")

    print()
    if regressions:
        print(f"{len(regressions)} regression(s) beyond {threshold:.0f}%:")
        for name, metric, b, f, rel in regressions:
            print(f"  {name}: {metric}  {b:.4g} -> {f:.4g}")
    else:
        print(f"no regressions beyond {threshold:.0f}%")
    if improvements:
        print(f"{len(improvements)} improvement(s) beyond {threshold:.0f}%")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write(f"### Perf smoke vs committed baselines "
                    f"(threshold {threshold:.0f}%)\n\n")
            if len(table) > 2:
                f.write("\n".join(table) + "\n\n")
            else:
                f.write("No metric moved beyond the threshold.\n\n")
            if regressions:
                f.write(f"**{len(regressions)} regression(s)** — see the "
                        "perf-smoke step log for the full listing.\n")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Compare freshly generated BENCH_*.json files against committed baselines.

    scripts/bench_delta.py <fresh_dir> [<baseline_dir>]

Prints one line per metric with the relative delta, flagging moves beyond
+/-10%. Exit code is always 0: wall-clock metrics on shared CI runners are
too noisy to gate on — the deltas are for humans (and for the uploaded
artifact trail), not for blocking merges. Only Python stdlib is used.
"""

import json
import os
import sys


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    return {m["name"]: m["value"] for m in doc.get("metrics", [])}


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip())
        return 0
    fresh_dir = sys.argv[1]
    base_dir = sys.argv[2] if len(sys.argv) > 2 else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "bench", "baselines")

    names = sorted(n for n in os.listdir(fresh_dir)
                   if n.startswith("BENCH_") and n.endswith(".json"))
    if not names:
        print(f"no BENCH_*.json files in {fresh_dir}")
        return 0

    for name in names:
        base_path = os.path.join(base_dir, name)
        print(f"== {name} ==")
        if not os.path.exists(base_path):
            print("  (no committed baseline; skipping)")
            continue
        fresh = load_metrics(os.path.join(fresh_dir, name))
        base = load_metrics(base_path)
        for metric in sorted(set(fresh) | set(base)):
            if metric not in fresh or metric not in base:
                side = "baseline" if metric not in fresh else "fresh run"
                print(f"  {metric:40s} only in {side}")
                continue
            b, f = base[metric], fresh[metric]
            if b == 0:
                delta = "  (baseline 0)"
            else:
                rel = (f - b) / b * 100.0
                flag = "  <-- >10% move" if abs(rel) > 10.0 else ""
                delta = f"{rel:+7.1f}%{flag}"
            print(f"  {metric:40s} {b:12.4f} -> {f:12.4f}  {delta}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

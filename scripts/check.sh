#!/usr/bin/env bash
# One-command verification: tier-1 build + full ctest, then the `stress`
# labeled suite rebuilt under ThreadSanitizer, then the fuzz smoke suite
# plus a short differential-fuzz burst rebuilt under AddressSanitizer
# (see ROADMAP.md).
#
#   scripts/check.sh            # full: tier-1 ctest + TSan stress + ASan fuzz
#   scripts/check.sh --smoke    # quick sanity on already-built binaries:
#                               # row-format checksum/speedup, stress suite,
#                               # fixed-seed fuzz smoke; no reconfigure, no
#                               # sanitizer rebuild
#
# The smoke mode is also registered as a CTest test (label `smoke`):
#   ctest -L smoke
# It deliberately avoids invoking ctest itself so it can run from inside it.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${AJR_BUILD_DIR:-${ROOT}/build}"
BUILD_TSAN="${AJR_TSAN_BUILD_DIR:-${ROOT}/build-tsan}"
BUILD_ASAN="${AJR_ASAN_BUILD_DIR:-${ROOT}/build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

smoke=0
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

if [[ "$smoke" == 1 ]]; then
  # Runs built binaries directly (no ctest recursion, no rebuild): the
  # row-format bench self-checks that typed pages and Value rows produce
  # identical scan results, the stress suite shakes the runtime, and the
  # fuzz smoke suite replays the fixed-seed differential band and the
  # injected-bug oracle self-tests.
  echo "== smoke: row-format representation check =="
  "${BUILD}/bench/row_format" --rows=20000 --iters=3
  echo
  echo "== smoke: runtime stress suite (unsanitized) =="
  "${BUILD}/tests/engine_stress_test" --gtest_brief=1
  echo
  echo "== smoke: differential-fuzz fixed seeds + oracle self-test =="
  "${BUILD}/tests/fuzz_smoke_test" --gtest_brief=1
  echo
  echo "smoke check OK"
  exit 0
fi

echo "== tier-1: configure + build (${BUILD}) =="
cmake -B "${BUILD}" -S "${ROOT}" >/dev/null
cmake --build "${BUILD}" -j "${JOBS}"

echo
echo "== tier-1: full ctest =="
ctest --test-dir "${BUILD}" -j "${JOBS}" --output-on-failure

echo
echo "== stress under ThreadSanitizer (${BUILD_TSAN}) =="
cmake -B "${BUILD_TSAN}" -S "${ROOT}" -DAJR_SANITIZE=thread >/dev/null
cmake --build "${BUILD_TSAN}" -j "${JOBS}" --target engine_stress_test \
  fuzz_cancel_test parallel_executor_test wide_join_test shared_stress_test
ctest --test-dir "${BUILD_TSAN}" -L stress --output-on-failure

echo
echo "== fuzz + ART properties under AddressSanitizer (${BUILD_ASAN}) =="
cmake -B "${BUILD_ASAN}" -S "${ROOT}" -DAJR_SANITIZE=address >/dev/null
cmake --build "${BUILD_ASAN}" -j "${JOBS}" --target fuzz_smoke_test \
  fuzz_differential art_index_test
"${BUILD_ASAN}/tests/art_index_test" --gtest_brief=1
"${BUILD_ASAN}/tests/fuzz_smoke_test" --gtest_brief=1
"${BUILD_ASAN}/tests/fuzz_differential" --count 100 --jobs "${JOBS}"
"${BUILD_ASAN}/tests/fuzz_differential" --count 40 --wide --jobs "${JOBS}"
"${BUILD_ASAN}/tests/fuzz_differential" --count 60 --index art --jobs "${JOBS}"
"${BUILD_ASAN}/tests/fuzz_differential" --count 60 --share --jobs "${JOBS}"

echo
echo "all checks OK"

#!/usr/bin/env bash
# Records the benchmark baselines as BENCH_<name>.json: the row-format
# microbenchmark, the Fig 7 adaptive-vs-static scatter, the concurrent-
# runtime throughput harness, the index-probe (batched descent /
# memoization) microbenchmark, the wide-join repair curve (n=6..20), and
# the shared-traffic harness (cross-query scan/cache sharing off vs on).
#
#   scripts/bench_baseline.sh            # writes bench/baselines/BENCH_*.json
#   scripts/bench_baseline.sh /tmp/perf  # writes elsewhere (e.g. for a CI
#                                        # run compared against the checked-in
#                                        # baselines via scripts/bench_delta.py)
#
# Scales are reduced from the paper's defaults so one run finishes in about
# a minute; the baselines track trends on a comparable machine class (same
# deterministic work units, wall times vary with hardware), they are not
# absolute performance claims. Regenerate on the machine class you compare
# against and commit the diff alongside performance-relevant changes.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${AJR_BUILD_DIR:-${ROOT}/build}"
OUT="${1:-${ROOT}/bench/baselines}"
mkdir -p "${OUT}"

echo "== baseline: row_format =="
"${BUILD}/bench/row_format" --rows=100000 --iters=5 \
  --json="${OUT}/BENCH_row_format.json"

echo
echo "== baseline: index_probe =="
"${BUILD}/bench/index_probe" --json="${OUT}/BENCH_index_probe.json"

echo
echo "== baseline: fig7_scatter (reduced scale) =="
"${BUILD}/bench/fig7_scatter" --owners=20000 --per-template=10 --reps=3 \
  --json="${OUT}/BENCH_fig7_scatter.json"

echo
echo "== baseline: concurrent_throughput (reduced scale, dop axis) =="
"${BUILD}/bench/concurrent_throughput" --owners=20000 --per-template=10 \
  --workers=4 --dops=1,2,4 --json="${OUT}/BENCH_concurrent_throughput.json"

echo
echo "== baseline: parallel_scaling (reduced scale) =="
"${BUILD}/bench/parallel_scaling" --owners=20000 --per-template=10 --reps=3 \
  --dops=1,2,4,8 --json="${OUT}/BENCH_parallel_scaling.json"

echo
echo "== baseline: wide_join (repair curve n=6..20, reduced scale) =="
"${BUILD}/bench/wide_join" --owners=12000 --per-template=1 --reps=2 \
  --json="${OUT}/BENCH_wide_join.json"

echo
echo "== baseline: shared_traffic (8 concurrent identical queries) =="
"${BUILD}/bench/shared_traffic" --owners=20000 --concurrent=8 --per-client=2 \
  --reps=2 --json="${OUT}/BENCH_shared_traffic.json"

echo
echo "baselines written to ${OUT}/"

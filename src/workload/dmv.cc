#include "workload/dmv.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/string_util.h"

namespace ajr {

const std::vector<MakeDef>& DmvMakes() {
  static const std::vector<MakeDef> kMakes = {
      // Economy (tier 0)
      {"Chevrolet", 0, 0, {"Caprice", "Impala", "Malibu", "Cavalier", "Aveo"}},
      {"Ford", 0, 0, {"Focus", "Fiesta", "Escort", "Taurus", "Ranger"}},
      {"Kia", 0, 2, {"Rio", "Sephia", "Sportage", "Cerato", "Picanto"}},
      {"Hyundai", 0, 2, {"Accent", "Elantra", "Getz", "Atos", "Matrix"}},
      {"Fiat", 0, 1, {"Punto", "Panda", "Uno", "Bravo", "Seicento"}},
      {"Dacia", 0, 1, {"Logan", "Sandero", "Solenza", "Nova", "Duster"}},
      // Mid-range (tier 1)
      {"Toyota", 1, 2, {"Corolla", "Camry", "Yaris", "Avensis", "RAV4"}},
      {"Honda", 1, 2, {"Civic", "Accord", "Jazz", "CR-V", "Prelude"}},
      {"Mazda", 1, 2, {"323", "626", "Miata", "Demio", "Premacy"}},
      {"Volkswagen", 1, 1, {"Golf", "Passat", "Polo", "Jetta", "Beetle"}},
      {"Nissan", 1, 2, {"Altima", "Sentra", "Micra", "Primera", "X-Trail"}},
      {"Peugeot", 1, 1, {"206", "307", "406", "Partner", "Expert"}},
      {"Subaru", 1, 2, {"Impreza", "Legacy", "Forester", "Outback", "Justy"}},
      // Luxury (tier 2)
      {"Mercedes", 2, 1, {"C-Class", "E-Class", "S-Class", "SLK", "ML"}},
      {"BMW", 2, 1, {"318i", "325i", "530i", "740i", "X5"}},
      {"Audi", 2, 1, {"A3", "A4", "A6", "A8", "TT"}},
      {"Porsche", 2, 1, {"911", "Boxster", "Cayenne", "Carrera", "Panamera"}},
      {"Lexus", 2, 2, {"ES300", "GS400", "LS430", "RX300", "IS200"}},
      {"Cadillac", 2, 0, {"DeVille", "Eldorado", "Seville", "Escalade", "CTS"}},
      {"Jaguar", 2, 1, {"XJ6", "XK8", "S-Type", "X-Type", "XJR"}},
  };
  return kMakes;
}

const std::vector<CountryDef>& DmvCountries() {
  static const std::vector<CountryDef> kCountries = {
      {"US", "USA", 0, {"Augusta", "Boston", "Chicago", "Dallas", "Denver", "Seattle"}},
      {"DE", "Germany", 1,
       {"Berlin", "Munich", "Hamburg", "Cologne", "Frankfurt", "Stuttgart"}},
      {"JP", "Japan", 2, {"Tokyo", "Osaka", "Nagoya", "Sapporo", "Fukuoka", "Kobe"}},
      {"FR", "France", 1, {"Paris", "Lyon", "Marseille", "Toulouse", "Nice", "Nantes"}},
      {"UK", "England", 1,
       {"London", "Manchester", "Birmingham", "Leeds", "Liverpool", "Bristol"}},
      {"CA", "Canada", 0,
       {"Toronto", "Montreal", "Vancouver", "Ottawa", "Calgary", "Quebec"}},
      {"IT", "Italy", 1, {"Rome", "Milan", "Naples", "Turin", "Palermo", "Genoa"}},
      {"BR", "Brazil", 0,
       {"SaoPaulo", "Rio", "Brasilia", "Salvador", "Fortaleza", "Recife"}},
      {"CN", "China", 2,
       {"Beijing", "Shanghai", "Guangzhou", "Shenzhen", "Chengdu", "Wuhan"}},
      {"ES", "Spain", 1,
       {"Madrid", "Barcelona", "Valencia", "Seville", "Zaragoza", "Malaga"}},
      {"MX", "Mexico", 0,
       {"MexicoCity", "Guadalajara", "Monterrey", "Puebla", "Tijuana", "Leon"}},
      {"IN", "India", 2,
       {"Mumbai", "Delhi", "Bangalore", "Chennai", "Kolkata", "Hyderabad"}},
      {"KR", "Korea", 2, {"Seoul", "Busan", "Incheon", "Daegu", "Daejeon", "Gwangju"}},
      {"NL", "Netherlands", 1,
       {"Amsterdam", "Rotterdam", "TheHague", "Utrecht", "Eindhoven", "Tilburg"}},
      {"EG", "Egypt", 1, {"Cairo", "Alexandria", "Giza", "Luxor", "Aswan", "Tanta"}},
      {"PL", "Poland", 1, {"Warsaw", "Krakow", "Lodz", "Wroclaw", "Poznan", "Gdansk"}},
      {"SE", "Sweden", 1,
       {"Stockholm", "Gothenburg", "Malmo", "Uppsala", "Vasteras", "Orebro"}},
      {"TR", "Turkey", 1, {"Istanbul", "Ankara", "Izmir", "Bursa", "Adana", "Konya"}},
      {"CH", "Switzerland", 1,
       {"Zurich", "Geneva", "Basel", "Bern", "Lausanne", "Winterthur"}},
      {"AU", "Australia", 2,
       {"Sydney", "Melbourne", "Brisbane", "Perth", "Adelaide", "Canberra"}},
  };
  return kCountries;
}

namespace {

constexpr size_t kCitiesPerCountry = 6;
constexpr size_t kModelsPerMake = 5;
constexpr int kCurrentYear = 2006;

// P(owner wealth tier): economy, mid, luxury.
constexpr double kTierProbs[3] = {0.50, 0.35, 0.15};

// P(make tier | owner tier).
constexpr double kTierPref[3][3] = {
    {0.62, 0.34, 0.04},
    {0.22, 0.58, 0.20},
    {0.04, 0.30, 0.66},
};

// Regional affinity multiplier [owner country region][make region]. The
// 0.25 entry makes US makes rare in Europe (Example 1: few Chevrolets in
// Germany).
constexpr double kRegionAffinity[3][3] = {
    {2.5, 0.8, 1.0},
    {0.25, 2.5, 0.9},
    {0.5, 0.8, 2.5},
};

// Cars-per-owner count distribution by owner tier (P(0), P(1), ...).
const std::vector<double> kCarCountDist[3] = {
    {0.35, 0.50, 0.13, 0.02},
    {0.20, 0.50, 0.25, 0.05},
    {0.08, 0.42, 0.32, 0.13, 0.05},
};

// Per-owner attributes computed during the first pass and consumed by the
// car/demographics/accident passes.
struct OwnerProfile {
  size_t country_idx;
  int tier;
  int64_t age;
  int64_t salary;
};

int SampleCategorical(Rng* rng, const double* probs, int n) {
  double u = rng->NextDouble();
  double acc = 0;
  for (int i = 0; i < n - 1; ++i) {
    acc += probs[i];
    if (u < acc) return i;
  }
  return n - 1;
}

int SampleCounts(Rng* rng, const std::vector<double>& dist) {
  double u = rng->NextDouble();
  double acc = 0;
  for (size_t i = 0; i + 1 < dist.size(); ++i) {
    acc += dist[i];
    if (u < acc) return static_cast<int>(i);
  }
  return static_cast<int>(dist.size() - 1);
}

int SamplePoisson(Rng* rng, double lambda, int cap) {
  double l = std::exp(-lambda);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng->NextDouble();
  } while (p > l && k < cap + 1);
  return std::min(k - 1, cap);
}

int64_t SampleSalary(Rng* rng, int tier) {
  double g = std::fabs(rng->NextGaussian());
  double salary = 0;
  switch (tier) {
    case 0:
      salary = 16000 + g * 13000;
      break;
    case 1:
      salary = 42000 + g * 26000;
      break;
    default:
      salary = 95000 + g * 90000;
      break;
  }
  return static_cast<int64_t>(std::min(salary, 600000.0));
}

// Precomputed cumulative make weights for each (owner tier, country region).
class MakeSampler {
 public:
  MakeSampler() {
    const auto& makes = DmvMakes();
    for (int tier = 0; tier < 3; ++tier) {
      for (int region = 0; region < 3; ++region) {
        auto& cdf = cdf_[tier][region];
        cdf.resize(makes.size());
        double acc = 0;
        for (size_t m = 0; m < makes.size(); ++m) {
          double w = kTierPref[tier][makes[m].tier] *
                     kRegionAffinity[region][makes[m].region];
          acc += w;
          cdf[m] = acc;
        }
        for (auto& c : cdf) c /= acc;
        cdf.back() = 1.0;
      }
    }
  }

  size_t Sample(Rng* rng, int owner_tier, int country_region) const {
    const auto& cdf = cdf_[owner_tier][country_region];
    double u = rng->NextDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
  }

 private:
  std::vector<double> cdf_[3][3];
};

// Scales per-owner/car target counts to an exact total by random top-up or
// trim; keeps the shape of the sampled distribution.
void AdjustToExactTotal(Rng* rng, std::vector<int>* counts, long long target) {
  long long total = 0;
  for (int c : *counts) total += c;
  while (total < target) {
    (*counts)[rng->NextUint64(counts->size())] += 1;
    ++total;
  }
  while (total > target) {
    size_t i = rng->NextUint64(counts->size());
    if ((*counts)[i] > 0) {
      (*counts)[i] -= 1;
      --total;
    }
  }
}

Status BuildDmvIndexes(Catalog* catalog) {
  struct IndexSpec {
    const char* table;
    const char* column;
    const char* name;
  };
  const IndexSpec specs[] = {
      {"owner", "id", "owner_id"},
      {"owner", "country1", "owner_country1"},
      {"owner", "country3", "owner_country3"},
      {"owner", "city", "owner_city"},
      {"owner", "age", "owner_age"},
      {"car", "id", "car_id"},
      {"car", "ownerid", "car_ownerid"},
      {"car", "make", "car_make"},
      {"car", "model", "car_model"},
      {"car", "year", "car_year"},
      {"demographics", "ownerid", "demo_ownerid"},
      {"demographics", "salary", "demo_salary"},
      {"demographics", "age", "demo_age"},
      {"accidents", "id", "acc_id"},
      {"accidents", "carid", "acc_carid"},
      {"accidents", "year", "acc_year"},
      {"accidents", "seriousness", "acc_seriousness"},
      {"accidents", "locationid", "acc_locationid"},
      {"accidents", "timeid", "acc_timeid"},
      {"location", "id", "loc_id"},
      {"location", "state", "loc_state"},
      {"location", "city", "loc_city"},
      {"time", "id", "time_id"},
      {"time", "year", "time_year"},
      {"time", "month", "time_month"},
  };
  for (const auto& s : specs) {
    AJR_RETURN_IF_ERROR(catalog->BuildIndex(s.table, s.column, s.name));
  }
  return Status::OK();
}

}  // namespace

StatusOr<DmvCardinalities> GenerateDmv(Catalog* catalog, const DmvConfig& config) {
  if (config.num_owners == 0) {
    return Status::InvalidArgument("num_owners must be positive");
  }
  const auto& countries = DmvCountries();
  const auto& makes = DmvMakes();

  AJR_ASSIGN_OR_RETURN(
      TableEntry * owner,
      catalog->CreateTable("owner", Schema({{"id", DataType::kInt64},
                                            {"name", DataType::kString},
                                            {"country1", DataType::kString},
                                            {"country3", DataType::kString},
                                            {"city", DataType::kString},
                                            {"age", DataType::kInt64}})));
  AJR_ASSIGN_OR_RETURN(
      TableEntry * car,
      catalog->CreateTable("car", Schema({{"id", DataType::kInt64},
                                          {"ownerid", DataType::kInt64},
                                          {"make", DataType::kString},
                                          {"model", DataType::kString},
                                          {"year", DataType::kInt64},
                                          {"color", DataType::kString}})));
  AJR_ASSIGN_OR_RETURN(
      TableEntry * demo,
      catalog->CreateTable("demographics", Schema({{"ownerid", DataType::kInt64},
                                                   {"salary", DataType::kInt64},
                                                   {"age", DataType::kInt64},
                                                   {"children", DataType::kInt64},
                                                   {"education", DataType::kInt64}})));
  AJR_ASSIGN_OR_RETURN(
      TableEntry * acc,
      catalog->CreateTable("accidents", Schema({{"id", DataType::kInt64},
                                                {"carid", DataType::kInt64},
                                                {"driver", DataType::kString},
                                                {"year", DataType::kInt64},
                                                {"seriousness", DataType::kInt64},
                                                {"locationid", DataType::kInt64},
                                                {"timeid", DataType::kInt64}})));
  AJR_ASSIGN_OR_RETURN(
      TableEntry * loc,
      catalog->CreateTable("location", Schema({{"id", DataType::kInt64},
                                               {"city", DataType::kString},
                                               {"state", DataType::kString},
                                               {"highway", DataType::kInt64}})));
  AJR_ASSIGN_OR_RETURN(
      TableEntry * time,
      catalog->CreateTable("time", Schema({{"id", DataType::kInt64},
                                           {"year", DataType::kInt64},
                                           {"month", DataType::kInt64},
                                           {"day", DataType::kInt64}})));

  Rng master(config.seed);
  Rng owner_rng = master.Fork(1);
  Rng car_rng = master.Fork(2);
  Rng acc_rng = master.Fork(3);
  Rng loc_rng = master.Fork(4);

  ZipfDistribution country_zipf(countries.size(), 1.0);
  ZipfDistribution city_zipf(kCitiesPerCountry, 0.9);
  ZipfDistribution model_zipf(kModelsPerMake, 1.1);
  ZipfDistribution color_zipf(8, 0.8);
  ZipfDistribution children_zipf(5, 1.2);
  ZipfDistribution seriousness_zipf(5, 1.2);
  ZipfDistribution location_zipf(config.num_locations, 0.9);
  ZipfDistribution time_zipf(config.num_time_rows, 0.7);
  const char* colors[8] = {"black", "white",  "silver", "blue",
                           "red",   "green",  "gray",   "yellow"};

  // ---- Pass 1: owners + demographics -------------------------------------
  std::vector<OwnerProfile> profiles(config.num_owners);
  owner->table().Reserve(config.num_owners);
  demo->table().Reserve(config.num_owners);
  for (size_t i = 0; i < config.num_owners; ++i) {
    OwnerProfile& p = profiles[i];
    p.country_idx = country_zipf.Sample(&owner_rng);
    size_t city_idx = city_zipf.Sample(&owner_rng);
    // country1 (origin) mostly equals the residence country: the functional
    // city->country3 dependency stays exact, country1 is merely correlated.
    size_t origin_idx = owner_rng.NextBool(0.8) ? p.country_idx
                                                : country_zipf.Sample(&owner_rng);
    p.tier = SampleCategorical(&owner_rng, kTierProbs, 3);
    p.age = 18 + static_cast<int64_t>(62 * std::pow(owner_rng.NextDouble(), 1.4));
    p.salary = SampleSalary(&owner_rng, p.tier);

    const CountryDef& residence = countries[p.country_idx];
    owner->table()
        .NewRow()
        .I64(static_cast<int64_t>(i))
        .Str(StrCat("owner_", i))
        .Str(countries[origin_idx].name)
        .Str(residence.iso)
        .Str(residence.cities[city_idx])
        .I64(p.age)
        .Finish();
    demo->table()
        .NewRow()
        .I64(static_cast<int64_t>(i))
        .I64(p.salary)
        .I64(p.age)
        .I64(static_cast<int64_t>(children_zipf.Sample(&owner_rng)))
        .I64(owner_rng.NextInt64(0, 4))
        .Finish();
  }

  // ---- Pass 2: cars -------------------------------------------------------
  std::vector<int> car_counts(config.num_owners);
  for (size_t i = 0; i < config.num_owners; ++i) {
    car_counts[i] = SampleCounts(&car_rng, kCarCountDist[profiles[i].tier]);
  }
  // The +1e-6 guards against the ratio's binary representation landing an
  // exact-half target just below .5 (e.g. 10000 * 2.79125).
  const long long car_target = std::llround(
      static_cast<double>(config.num_owners) * config.cars_per_owner + 1e-6);
  AdjustToExactTotal(&car_rng, &car_counts, car_target);

  MakeSampler make_sampler;
  struct CarProfile {
    size_t owner;
    size_t make_idx;
    int64_t year;
  };
  std::vector<CarProfile> car_profiles;
  car_profiles.reserve(static_cast<size_t>(car_target));
  car->table().Reserve(static_cast<size_t>(car_target));
  int64_t car_id = 0;
  for (size_t i = 0; i < config.num_owners; ++i) {
    const OwnerProfile& p = profiles[i];
    int region = countries[p.country_idx].region;
    for (int k = 0; k < car_counts[i]; ++k) {
      size_t make_idx = make_sampler.Sample(&car_rng, p.tier, region);
      const MakeDef& make = makes[make_idx];
      size_t model_idx = model_zipf.Sample(&car_rng);
      double age_exp = make.tier == 2 ? 1.8 : 1.1;
      int64_t year = kCurrentYear - static_cast<int64_t>(
                                        22 * std::pow(car_rng.NextDouble(), age_exp));
      car->table()
          .NewRow()
          .I64(car_id)
          .I64(static_cast<int64_t>(i))
          .Str(make.name)
          .Str(make.models[model_idx])
          .I64(year)
          .Str(colors[color_zipf.Sample(&car_rng)])
          .Finish();
      car_profiles.push_back({i, make_idx, year});
      ++car_id;
    }
  }

  // ---- Pass 3: location + time dimensions --------------------------------
  for (size_t i = 0; i < config.num_locations; ++i) {
    size_t ci = country_zipf.Sample(&loc_rng);
    size_t city_idx = city_zipf.Sample(&loc_rng);
    loc->table()
        .NewRow()
        .I64(static_cast<int64_t>(i))
        .Str(countries[ci].cities[city_idx])
        .Str(StrCat("state_", loc_rng.NextInt64(0, 49)))
        .I64(loc_rng.NextBool(0.3) ? 1 : 0)
        .Finish();
  }
  {
    static const int kDaysInMonth[12] = {31, 28, 31, 30, 31, 30,
                                         31, 31, 30, 31, 30, 31};
    int64_t year = 1997, month = 1, day = 1;
    for (size_t i = 0; i < config.num_time_rows; ++i) {
      time->table()
          .NewRow()
          .I64(static_cast<int64_t>(i))
          .I64(year)
          .I64(month)
          .I64(day)
          .Finish();
      int dim = kDaysInMonth[month - 1];
      if (month == 2 && (year % 4 == 0 && (year % 100 != 0 || year % 400 == 0))) {
        dim = 29;
      }
      if (++day > dim) {
        day = 1;
        if (++month > 12) {
          month = 1;
          ++year;
        }
      }
    }
  }

  // ---- Pass 4: accidents --------------------------------------------------
  const long long acc_target = std::llround(
      static_cast<double>(config.num_owners) * config.accidents_per_owner + 1e-6);
  std::vector<int> acc_counts(car_profiles.size());
  if (!car_profiles.empty()) {
    const double tier_factor[3] = {1.25, 1.0, 0.65};
    for (size_t c = 0; c < car_profiles.size(); ++c) {
      const CarProfile& cp = car_profiles[c];
      double age_factor = 0.4 + 0.12 * static_cast<double>(kCurrentYear - cp.year);
      double lambda = 1.55 * age_factor * tier_factor[makes[cp.make_idx].tier];
      acc_counts[c] = SamplePoisson(&acc_rng, lambda, 30);
    }
    AdjustToExactTotal(&acc_rng, &acc_counts, acc_target);
  }
  acc->table().Reserve(static_cast<size_t>(acc_target));
  int64_t acc_id = 0;
  for (size_t c = 0; c < car_profiles.size(); ++c) {
    const CarProfile& cp = car_profiles[c];
    for (int k = 0; k < acc_counts[c]; ++k) {
      // Favor recent dates: invert the zipf head onto the latest time rows.
      size_t timeid = config.num_time_rows - 1 - time_zipf.Sample(&acc_rng);
      int64_t year = time->table().View(timeid).GetInt64(1);
      std::string driver = acc_rng.NextBool(0.8)
                               ? StrCat("owner_", cp.owner)
                               : StrCat("driver_", acc_rng.NextInt64(0, 99999));
      acc->table()
          .NewRow()
          .I64(acc_id)
          .I64(static_cast<int64_t>(c))
          .Str(driver)
          .I64(year)
          .I64(static_cast<int64_t>(1 + seriousness_zipf.Sample(&acc_rng)))
          .I64(static_cast<int64_t>(location_zipf.Sample(&acc_rng)))
          .I64(static_cast<int64_t>(timeid))
          .Finish();
      ++acc_id;
    }
  }

  if (config.build_indexes) {
    AJR_RETURN_IF_ERROR(BuildDmvIndexes(catalog));
  }
  if (config.analyze) {
    AnalyzeOptions opts;
    opts.rich = config.rich_stats;
    AJR_RETURN_IF_ERROR(catalog->AnalyzeAll(opts));
  }

  DmvCardinalities cards;
  cards.owner = owner->table().num_rows();
  cards.car = car->table().num_rows();
  cards.demographics = demo->table().num_rows();
  cards.accidents = acc->table().num_rows();
  cards.location = loc->table().num_rows();
  cards.time = time->table().num_rows();
  return cards;
}

}  // namespace ajr

// DMV query templates (Sec 5 of the paper).
//
// The paper uses "five query templates whose query execution plans ... were
// mostly pipelined index nested-loop joins", all 4-table joins over
// Owner/Car/Demographics/Accidents with varying local-predicate
// combinations, plus six-table variants joining Location and Time
// (Sec 5.5). The paper does not print the templates, so these are
// reconstructed from Examples 1-3 and the per-template behaviour reported
// in Figures 8/9:
//
//  T1  Example 1 shape: OR of an economy and a luxury make on Car, a
//      country predicate on Owner, a salary cutoff on Demographics. The
//      best inner order differs between the two make groups, so inner
//      reordering fires mid-scan.
//  T2  Example 2 shape: correlated make+model pair on Car, correlated
//      country3+city pair on Owner, an age cutoff on Demographics —
//      independence misestimates drive a wrong initial order.
//  T3  Country-driven: equality on owner.country3 (often the skewed head
//      value), ranges on car.year / demographics.salary / accidents
//      seriousness; the initial driving leg is frequently wrong.
//  T4  Example 3 shape: always the skew-head country 'US' plus a city —
//      the optimizer's uniform estimate prefers the country3 index even
//      though the city index is far better (the paper's degradation case).
//  T5  Locked driving leg: a highly selective make+year pair on Car keeps
//      Car the correct driving leg, but correlation between make tier and
//      salary makes the optimizer's inner order wrong — only inner
//      reordering helps (Fig 9 shows no driving change for T5).
//
// Parameters are sampled from the actual data (so predicates hit real
// values); generation is deterministic per (template, variant, seed).

#pragma once

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/random.h"
#include "common/status.h"
#include "optimize/query.h"

namespace ajr {

/// Number of distinct 4-table templates (T1..T5).
inline constexpr int kNumFourTableTemplates = 5;
/// Number of distinct 6-table templates (S1, S2).
inline constexpr int kNumSixTableTemplates = 2;
/// Number of distinct wide templates (W1 star, W2 snowflake).
inline constexpr int kNumWideTemplates = 2;
/// Wide templates span this table-count range (the six-table skeleton plus
/// at least one extra accident arm, up to the ROADMAP's 20-table target).
inline constexpr size_t kMinWideTables = 7;
inline constexpr size_t kMaxWideTables = 20;

/// Generates parameterized queries from the DMV templates.
class DmvQueryGenerator {
 public:
  /// `catalog` must already hold the DMV tables (see GenerateDmv).
  DmvQueryGenerator(const Catalog* catalog, uint64_t seed = 7);

  /// One instance of 4-table template `template_id` (1-based, 1..5).
  /// `variant` selects the parameter draw; deterministic per
  /// (template_id, variant, seed).
  StatusOr<JoinQuery> Generate(int template_id, size_t variant) const;

  /// `per_template` instances of each of T1..T5 (the paper's ~300-query
  /// mix uses per_template = 60), ordered T1 variants first.
  StatusOr<std::vector<JoinQuery>> GenerateMix(size_t per_template) const;

  /// One instance of 6-table template `template_id` (1-based, 1..2).
  StatusOr<JoinQuery> GenerateSixTable(int template_id, size_t variant) const;

  /// `count` six-table queries alternating S1/S2 (the paper uses 100).
  StatusOr<std::vector<JoinQuery>> GenerateSixTableMix(size_t count) const;

  /// One instance of wide template `template_id` (1-based) at exactly
  /// `num_tables` tables in [kMinWideTables, kMaxWideTables]:
  ///   W1  wide star — the six-table skeleton plus accident aliases all
  ///       joined to Car, each carrying its own seriousness/year filter so
  ///       per-arm fan-out stays below 1 and the output bounded;
  ///   W2  snowflake — extra (accidents -> location, time) arms hung off
  ///       Car, with state/year predicates on the outer dimensions.
  /// Tables are appended so each joins an earlier one (the reference
  /// executor's enumeration order stays tractable). Deterministic per
  /// (template_id, num_tables, variant, seed).
  StatusOr<JoinQuery> GenerateWide(int template_id, size_t num_tables,
                                   size_t variant) const;

  /// `count` wide queries at `num_tables` tables, alternating W1/W2.
  StatusOr<std::vector<JoinQuery>> GenerateWideMix(size_t num_tables,
                                                   size_t count) const;

  /// The paper's literal Example 1 query.
  static JoinQuery Example1();
  /// The paper's literal Example 2 query (2-table).
  static JoinQuery Example2();
  /// The paper's literal Example 3 query.
  static JoinQuery Example3();

 private:
  const Catalog* catalog_;
  uint64_t seed_;
};

}  // namespace ajr

#include "workload/templates.h"

#include <string_view>

#include "common/string_util.h"
#include "workload/dmv.h"

namespace ajr {

namespace {

// Standard 4-table skeleton: o=owner, c=car, d=demographics, a=accidents.
// Edges: c.ownerid = o.id, o.id = d.ownerid, c.id = a.carid.
JoinQuery FourTableSkeleton() {
  JoinQuery q;
  q.tables = {{"o", "owner"}, {"c", "car"}, {"d", "demographics"}, {"a", "accidents"}};
  q.edges = {
      {1, "ownerid", 0, "id", 0},
      {0, "id", 2, "ownerid", 1},
      {1, "id", 3, "carid", 2},
  };
  q.local_predicates.assign(4, nullptr);
  q.output = {{0, "name"}, {3, "driver"}};
  return q;
}

// Six-table skeleton: adds l=location, t=time joined to accidents.
JoinQuery SixTableSkeleton() {
  JoinQuery q;
  q.tables = {{"o", "owner"},     {"c", "car"},  {"d", "demographics"},
              {"a", "accidents"}, {"l", "location"}, {"t", "time"}};
  q.edges = {
      {1, "ownerid", 0, "id", 0}, {0, "id", 2, "ownerid", 1},
      {1, "id", 3, "carid", 2},   {3, "locationid", 4, "id", 3},
      {3, "timeid", 5, "id", 4},
  };
  q.local_predicates.assign(6, nullptr);
  q.output = {{0, "name"}, {3, "driver"}, {4, "city"}};
  return q;
}

// Uniform random row of a table (materialized: the sampled Values seed
// predicate constants, which own their strings).
Row SampleRow(const TableEntry& entry, Rng* rng) {
  return entry.table().Get(rng->NextUint64(entry.table().num_rows()));
}

// Random make name of the given tier.
const char* SampleMakeOfTier(Rng* rng, int tier) {
  const auto& makes = DmvMakes();
  std::vector<const char*> pool;
  for (const auto& m : makes) {
    if (m.tier == tier) pool.push_back(m.name);
  }
  return pool[rng->NextUint64(pool.size())];
}

// Random European country full name (country1 domain).
const char* SampleEuropeanCountryName(Rng* rng) {
  const auto& countries = DmvCountries();
  std::vector<const char*> pool;
  for (const auto& cd : countries) {
    if (cd.region == 1) pool.push_back(cd.name);
  }
  return pool[rng->NextUint64(pool.size())];
}

}  // namespace

DmvQueryGenerator::DmvQueryGenerator(const Catalog* catalog, uint64_t seed)
    : catalog_(catalog), seed_(seed) {}

StatusOr<JoinQuery> DmvQueryGenerator::Generate(int template_id,
                                                size_t variant) const {
  if (template_id < 1 || template_id > kNumFourTableTemplates) {
    return Status::InvalidArgument(StrCat("no 4-table template ", template_id));
  }
  AJR_ASSIGN_OR_RETURN(const TableEntry* owner, catalog_->GetTable("owner"));
  AJR_ASSIGN_OR_RETURN(const TableEntry* car, catalog_->GetTable("car"));
  Rng rng(seed_ ^ (static_cast<uint64_t>(template_id) << 32) ^ variant * 0x9e3779b9ULL);

  JoinQuery q = FourTableSkeleton();
  q.name = StrCat("T", template_id, "/q", variant);
  switch (template_id) {
    case 1: {
      // Example 1 shape. The country is sampled by its natural (skewed)
      // frequency: head countries make the owner leg a bad driving choice
      // the optimizer cannot see, and the econ-OR-lux make pair makes the
      // best inner order flip between the two make groups mid-scan.
      const char* econ = SampleMakeOfTier(&rng, 0);
      const char* lux = SampleMakeOfTier(&rng, 2);
      const Row& owner_row = SampleRow(*owner, &rng);
      int64_t salary = 30000 + rng.NextInt64(0, 40000);
      q.local_predicates[1] = Or({ColCmp("make", CompareOp::kEq, Value(econ)),
                                  ColCmp("make", CompareOp::kEq, Value(lux))});
      q.local_predicates[0] = ColCmp("country1", CompareOp::kEq, owner_row[2]);
      q.local_predicates[2] = ColCmp("salary", CompareOp::kLt, Value(salary));
      break;
    }
    case 2: {
      // Example 2 shape: correlated pairs from sampled rows.
      const Row& car_row = SampleRow(*car, &rng);
      const Row& owner_row = SampleRow(*owner, &rng);
      int64_t age = 30 + rng.NextInt64(0, 35);
      q.local_predicates[1] = And({ColCmp("make", CompareOp::kEq, car_row[2]),
                                   ColCmp("model", CompareOp::kEq, car_row[3])});
      q.local_predicates[0] = And({ColCmp("country3", CompareOp::kEq, owner_row[3]),
                                   ColCmp("city", CompareOp::kEq, owner_row[4])});
      q.local_predicates[2] = ColCmp("age", CompareOp::kLt, Value(age));
      break;
    }
    case 3: {
      // Country-driven; country sampled by natural (skewed) frequency, so
      // the head value shows up often and the owner leg is frequently a
      // misestimated driving choice — the better leg (the sampled make) is
      // only discoverable at run-time.
      const Row& owner_row = SampleRow(*owner, &rng);
      const Row& car_row = SampleRow(*car, &rng);
      int64_t salary = 50000 + rng.NextInt64(0, 70000);
      int64_t serious = 2 + rng.NextInt64(0, 2);
      q.local_predicates[0] = ColCmp("country3", CompareOp::kEq, owner_row[3]);
      q.local_predicates[1] = ColCmp("make", CompareOp::kEq, car_row[2]);
      q.local_predicates[2] = ColCmp("salary", CompareOp::kGe, Value(salary));
      q.local_predicates[3] = ColCmp("seriousness", CompareOp::kGe, Value(serious));
      break;
    }
    case 4: {
      // Example 3 shape: always the skew-head country plus one of its
      // cities. The owner leg is a deceptive driving candidate: defaults
      // give its country3 index a tiny estimated entry count, but 'US' is
      // the zipf head, so a promoted owner leg scans ~28% of the index —
      // the paper's "incorrect index access path" degradation.
      const auto& us = DmvCountries().front();
      const char* city = us.cities[rng.NextUint64(6)];
      const Row& car_row = SampleRow(*car, &rng);
      int64_t year = 1998 + rng.NextInt64(0, 6);
      int64_t age = 35 + rng.NextInt64(0, 20);
      q.local_predicates[1] = And({ColCmp("make", CompareOp::kEq, car_row[2]),
                                   ColCmp("model", CompareOp::kEq, car_row[3]),
                                   ColCmp("year", CompareOp::kLe, Value(year))});
      q.local_predicates[0] = And({ColCmp("country3", CompareOp::kEq, Value(us.iso)),
                                   ColCmp("city", CompareOp::kEq, Value(city))});
      q.local_predicates[2] = ColCmp("age", CompareOp::kLt, Value(age));
      break;
    }
    case 5: {
      // Driving leg locked on Car: a *luxury* make+model pair is rare in
      // the data, so the car scan is both estimated and actually the
      // cheapest by a wide margin — the driving leg never changes. The
      // inner order, however, is wrong: defaults order Owner before
      // Demographics, but for luxury-car owners "salary < ~50k" is a far
      // stronger filter than any country predicate (Example 1's
      // correlation), so inner reordering fires (the paper's Fig 9 note).
      const char* make = SampleMakeOfTier(&rng, 2);
      const MakeDef* def = nullptr;
      for (const auto& m : DmvMakes()) {
        if (std::string_view(m.name) == make) def = &m;
      }
      const char* model = def->models[rng.NextUint64(5)];
      const char* country = SampleEuropeanCountryName(&rng);
      int64_t salary = 40000 + rng.NextInt64(0, 20000);
      q.local_predicates[1] = And({ColCmp("make", CompareOp::kEq, Value(make)),
                                   ColCmp("model", CompareOp::kEq, Value(model))});
      q.local_predicates[0] = ColCmp("country1", CompareOp::kEq, Value(country));
      q.local_predicates[2] = ColCmp("salary", CompareOp::kLt, Value(salary));
      break;
    }
    default:
      break;
  }
  AJR_RETURN_IF_ERROR(q.Validate());
  return q;
}

StatusOr<std::vector<JoinQuery>> DmvQueryGenerator::GenerateMix(
    size_t per_template) const {
  std::vector<JoinQuery> out;
  out.reserve(per_template * kNumFourTableTemplates);
  for (int t = 1; t <= kNumFourTableTemplates; ++t) {
    for (size_t v = 0; v < per_template; ++v) {
      AJR_ASSIGN_OR_RETURN(JoinQuery q, Generate(t, v));
      out.push_back(std::move(q));
    }
  }
  return out;
}

StatusOr<JoinQuery> DmvQueryGenerator::GenerateSixTable(int template_id,
                                                        size_t variant) const {
  if (template_id < 1 || template_id > kNumSixTableTemplates) {
    return Status::InvalidArgument(StrCat("no 6-table template ", template_id));
  }
  AJR_ASSIGN_OR_RETURN(const TableEntry* owner, catalog_->GetTable("owner"));
  AJR_ASSIGN_OR_RETURN(const TableEntry* car, catalog_->GetTable("car"));
  AJR_ASSIGN_OR_RETURN(const TableEntry* loc, catalog_->GetTable("location"));
  Rng rng(seed_ ^ 0x5157000ULL ^ (static_cast<uint64_t>(template_id) << 32) ^
          variant * 0x9e3779b9ULL);

  JoinQuery q = SixTableSkeleton();
  q.name = StrCat("S", template_id, "/q", variant);
  if (template_id == 1) {
    const Row& owner_row = SampleRow(*owner, &rng);
    const Row& loc_row = SampleRow(*loc, &rng);
    int64_t year = 1995 + rng.NextInt64(0, 8);
    int64_t salary = 40000 + rng.NextInt64(0, 60000);
    int64_t acc_year = 2001 + rng.NextInt64(0, 5);
    q.local_predicates[0] = ColCmp("country3", CompareOp::kEq, owner_row[3]);
    q.local_predicates[1] = ColCmp("year", CompareOp::kGe, Value(year));
    q.local_predicates[2] = ColCmp("salary", CompareOp::kLt, Value(salary));
    q.local_predicates[4] = ColCmp("state", CompareOp::kEq, loc_row[2]);
    q.local_predicates[5] = ColCmp("year", CompareOp::kEq, Value(acc_year));
  } else {
    const Row& car_row = SampleRow(*car, &rng);
    const Row& loc_row = SampleRow(*loc, &rng);
    int64_t age = 30 + rng.NextInt64(0, 35);
    int64_t month = 1 + rng.NextInt64(0, 11);
    q.local_predicates[1] = And({ColCmp("make", CompareOp::kEq, car_row[2]),
                                 ColCmp("model", CompareOp::kEq, car_row[3])});
    q.local_predicates[2] = ColCmp("age", CompareOp::kLt, Value(age));
    q.local_predicates[4] = ColCmp("city", CompareOp::kEq, loc_row[1]);
    q.local_predicates[5] = ColCmp("month", CompareOp::kEq, Value(month));
  }
  AJR_RETURN_IF_ERROR(q.Validate());
  return q;
}

StatusOr<JoinQuery> DmvQueryGenerator::GenerateWide(int template_id,
                                                    size_t num_tables,
                                                    size_t variant) const {
  if (template_id < 1 || template_id > kNumWideTemplates) {
    return Status::InvalidArgument(StrCat("no wide template ", template_id));
  }
  if (num_tables < kMinWideTables || num_tables > kMaxWideTables) {
    return Status::InvalidArgument(
        StrCat("wide templates span ", kMinWideTables, "..", kMaxWideTables,
               " tables, got ", num_tables));
  }
  AJR_ASSIGN_OR_RETURN(const TableEntry* owner, catalog_->GetTable("owner"));
  AJR_ASSIGN_OR_RETURN(const TableEntry* acc, catalog_->GetTable("accidents"));
  AJR_ASSIGN_OR_RETURN(const TableEntry* loc, catalog_->GetTable("location"));
  Rng rng(seed_ ^ 0x317DE000ULL ^ (static_cast<uint64_t>(template_id) << 40) ^
          (static_cast<uint64_t>(num_tables) << 24) ^ variant * 0x9e3779b9ULL);

  JoinQuery q = SixTableSkeleton();
  q.name = StrCat("W", template_id, "n", num_tables, "/q", variant);

  // Shared base filters (the S1 shape): enough selectivity on the paper's
  // six tables that the pipeline's head flow is modest before the arms.
  {
    const Row& owner_row = SampleRow(*owner, &rng);
    const Row& loc_row = SampleRow(*loc, &rng);
    int64_t year = 1995 + rng.NextInt64(0, 8);
    int64_t salary = 40000 + rng.NextInt64(0, 60000);
    q.local_predicates[0] = ColCmp("country3", CompareOp::kEq, owner_row[3]);
    q.local_predicates[1] = ColCmp("year", CompareOp::kGe, Value(year));
    q.local_predicates[2] = ColCmp("salary", CompareOp::kLt, Value(salary));
    q.local_predicates[4] = ColCmp("state", CompareOp::kEq, loc_row[2]);
  }

  const size_t extra = num_tables - 6;
  if (template_id == 1) {
    // W1 wide star: every extra leg is an accidents alias probed from Car.
    // Each arm carries its own seriousness+year filter, so the estimated
    // (and actual) per-arm fan-out sits below 1 and the arms differ enough
    // in selectivity that their placement order matters — the property the
    // cardinality-greedy seed and its anti-greedy corruption exercise.
    for (size_t i = 0; i < extra; ++i) {
      const size_t idx = q.tables.size();
      q.tables.push_back({StrCat("a", i + 2), "accidents"});
      q.edges.push_back({1, "id", idx, "carid", q.edges.size()});
      const Row& acc_row = SampleRow(*acc, &rng);
      int64_t serious = 2 + rng.NextInt64(0, 2);
      q.local_predicates.push_back(
          And({ColCmp("seriousness", CompareOp::kGe, Value(serious)),
               ColCmp("year", rng.NextBool() ? CompareOp::kGe : CompareOp::kLe,
                      acc_row[3])}));
    }
  } else {
    // W2 snowflake: arms of (accidents -> location, time) hung off Car,
    // with the filters out on the dimension tables — the arm's selectivity
    // is only visible after two more joins, which is exactly where
    // independence-based estimates degrade with join count.
    size_t added = 0;
    for (size_t arm = 2; added < extra; ++arm) {
      const size_t a_idx = q.tables.size();
      q.tables.push_back({StrCat("a", arm), "accidents"});
      q.edges.push_back({1, "id", a_idx, "carid", q.edges.size()});
      q.local_predicates.push_back(nullptr);
      ++added;
      if (added < extra) {
        const size_t l_idx = q.tables.size();
        const Row& loc_row = SampleRow(*loc, &rng);
        q.tables.push_back({StrCat("l", arm), "location"});
        q.edges.push_back({a_idx, "locationid", l_idx, "id", q.edges.size()});
        q.local_predicates.push_back(
            ColCmp("state", CompareOp::kEq, loc_row[2]));
        ++added;
      }
      if (added < extra) {
        const size_t t_idx = q.tables.size();
        const Row& acc_row = SampleRow(*acc, &rng);
        q.tables.push_back({StrCat("t", arm), "time"});
        q.edges.push_back({a_idx, "timeid", t_idx, "id", q.edges.size()});
        q.local_predicates.push_back(
            ColCmp("year", CompareOp::kGe, acc_row[3]));
        ++added;
      }
    }
  }
  AJR_RETURN_IF_ERROR(q.Validate());
  return q;
}

StatusOr<std::vector<JoinQuery>> DmvQueryGenerator::GenerateWideMix(
    size_t num_tables, size_t count) const {
  std::vector<JoinQuery> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    AJR_ASSIGN_OR_RETURN(
        JoinQuery q, GenerateWide(1 + static_cast<int>(i % 2), num_tables, i / 2));
    out.push_back(std::move(q));
  }
  return out;
}

StatusOr<std::vector<JoinQuery>> DmvQueryGenerator::GenerateSixTableMix(
    size_t count) const {
  std::vector<JoinQuery> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    AJR_ASSIGN_OR_RETURN(JoinQuery q,
                         GenerateSixTable(1 + static_cast<int>(i % 2), i / 2));
    out.push_back(std::move(q));
  }
  return out;
}

JoinQuery DmvQueryGenerator::Example1() {
  JoinQuery q = FourTableSkeleton();
  q.name = "Example1";
  q.local_predicates[1] = Or({ColCmp("make", CompareOp::kEq, Value("Chevrolet")),
                              ColCmp("make", CompareOp::kEq, Value("Mercedes"))});
  q.local_predicates[0] = ColCmp("country1", CompareOp::kEq, Value("Germany"));
  q.local_predicates[2] = ColCmp("salary", CompareOp::kLt, Value(int64_t{50000}));
  return q;
}

JoinQuery DmvQueryGenerator::Example2() {
  JoinQuery q;
  q.name = "Example2";
  q.tables = {{"o", "owner"}, {"c", "car"}};
  q.edges = {{1, "ownerid", 0, "id", 0}};
  q.local_predicates.assign(2, nullptr);
  q.local_predicates[1] = And({ColCmp("make", CompareOp::kEq, Value("Mazda")),
                               ColCmp("model", CompareOp::kEq, Value("323"))});
  q.local_predicates[0] = And({ColCmp("country3", CompareOp::kEq, Value("EG")),
                               ColCmp("city", CompareOp::kEq, Value("Cairo"))});
  q.output = {{0, "name"}, {1, "year"}};
  return q;
}

JoinQuery DmvQueryGenerator::Example3() {
  JoinQuery q = FourTableSkeleton();
  q.name = "Example3";
  q.local_predicates[1] = And({ColCmp("make", CompareOp::kEq, Value("Chevrolet")),
                               ColCmp("model", CompareOp::kEq, Value("Caprice"))});
  q.local_predicates[0] = And({ColCmp("country3", CompareOp::kEq, Value("US")),
                               ColCmp("city", CompareOp::kEq, Value("Augusta"))});
  q.local_predicates[2] = ColCmp("age", CompareOp::kLt, Value(int64_t{52}));
  return q;
}

}  // namespace ajr

// Synthetic DMV data set (Sec 5 of the paper).
//
// The paper evaluates on IBM's DMV data set — cars, owners, demographics,
// and accidents "with data skews and correlations among columns", extended
// with Location and Time tables for the six-table experiment (Sec 5.5).
// That data set is proprietary, so this generator synthesizes a stand-in
// engineered to exhibit the properties the paper's effects depend on:
//
//  * Zipf skew on country, city, make, model, color, accident locations.
//  * model -> make functional dependency (Example 2: '323' implies Mazda,
//    so independence underestimates combined selectivity ~13x).
//  * city -> country3 functional dependency (Example 2: Cairo implies EG).
//  * Wealth coupling: owners are drawn from wealth tiers; tier drives both
//    salary AND the make tier of their cars, so "salary < 50000" is highly
//    selective for Mercedes owners and barely selective for Chevrolet
//    owners (Example 1's value-dependent best join order).
//  * Regional make affinity: European makes dominate in European countries,
//    US makes in the Americas (Example 1: few Chevrolets in Germany).
//  * Accident rates rise with car age and fall with make tier, giving the
//    Accidents join skewed per-car fan-out.
//
// Cardinalities reproduce Table 1 exactly at the default scale
// (100,000 owners): Car 111,676, Demographics 100,000, Accidents 279,125.
// Other scales keep the same ratios.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"

namespace ajr {

/// Generator parameters. Defaults reproduce the paper's Table 1.
struct DmvConfig {
  size_t num_owners = 100000;
  uint64_t seed = 20070415;  ///< any fixed seed; equal seeds = equal data
  /// Cars per owner; 1.11676 reproduces Car = 111,676 at 100K owners.
  double cars_per_owner = 1.11676;
  /// Accidents per owner; 2.79125 reproduces Accidents = 279,125 at 100K.
  double accidents_per_owner = 2.79125;
  size_t num_locations = 5000;
  size_t num_time_rows = 3652;  ///< daily rows, 1997-01-01 .. 2006-12-31
  bool build_indexes = true;
  bool analyze = true;      ///< compute base statistics after load
  bool rich_stats = false;  ///< compute the Sec 5.3 rich statistics tier
};

/// Row counts produced by GenerateDmv (the Table 1 reproduction).
struct DmvCardinalities {
  size_t owner = 0;
  size_t car = 0;
  size_t demographics = 0;
  size_t accidents = 0;
  size_t location = 0;
  size_t time = 0;
};

/// Static description of a car make in the generator's universe.
struct MakeDef {
  const char* name;
  int tier;    ///< 0 economy, 1 mid, 2 luxury
  int region;  ///< 0 Americas, 1 Europe, 2 Asia
  const char* models[5];
};

/// The generator's make universe (model names are unique across makes).
const std::vector<MakeDef>& DmvMakes();

/// Country codes (country3), full names (country1), and per-country cities.
struct CountryDef {
  const char* iso;   ///< country3 value
  const char* name;  ///< country1 value
  int region;        ///< matches MakeDef::region
  const char* cities[6];
};
const std::vector<CountryDef>& DmvCountries();

/// Populates `catalog` with the six DMV tables, indexes, and statistics.
/// Tables created: owner, car, demographics, accidents, location, time.
StatusOr<DmvCardinalities> GenerateDmv(Catalog* catalog, const DmvConfig& config = {});

}  // namespace ajr

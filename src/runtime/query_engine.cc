#include "runtime/query_engine.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "runtime/parallel_executor.h"

namespace ajr {

namespace {

size_t ResolveWorkers(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  const auto d = std::chrono::steady_clock::now() - start;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

}  // namespace

QueryEngine::QueryEngine(const Catalog* catalog, QueryEngineOptions options)
    : catalog_(catalog),
      planner_(catalog, options.planner),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &MetricsRegistry::Global()),
      shared_cache_(options.shared_cache_entries_per_stripe,
                    options.shared_cache_stripes),
      pool_(ResolveWorkers(options.num_workers)) {
  m_.submitted = metrics_->GetCounter("engine.queries_submitted");
  m_.started = metrics_->GetCounter("engine.queries_started");
  m_.finished = metrics_->GetCounter("engine.queries_finished");
  m_.cancelled = metrics_->GetCounter("engine.queries_cancelled");
  m_.timed_out = metrics_->GetCounter("engine.queries_timed_out");
  m_.failed = metrics_->GetCounter("engine.queries_failed");
  m_.rows_out = metrics_->GetCounter("engine.rows_out");
  m_.work_units = metrics_->GetCounter("engine.work_units");
  m_.inner_reorders = metrics_->GetCounter("engine.inner_reorders");
  m_.driving_switches = metrics_->GetCounter("engine.driving_switches");
  m_.latency_us = metrics_->GetHistogram("engine.query_latency_us");
  m_.queue_wait_us = metrics_->GetHistogram("engine.queue_wait_us");
}

QueryEngine::~QueryEngine() { Shutdown(); }

StatusOr<QueryHandle> QueryEngine::Submit(QuerySpec spec) {
  AJR_RETURN_IF_ERROR(spec.query.Validate());

  auto session = std::make_shared<QuerySession>();
  session->id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  session->name = spec.query.name;
  session->submit_time = std::chrono::steady_clock::now();
  if (spec.timeout.has_value()) {
    session->token.set_deadline(session->submit_time + *spec.timeout);
  }

  // The task owns the spec; the handle shares only the session.
  auto task = [this, session,
               spec = std::make_shared<QuerySpec>(std::move(spec))]() mutable {
    RunQuery(session, *spec);
  };
  if (!pool_.Submit(std::move(task))) {
    return Status::Internal("QueryEngine is shut down");
  }
  m_.submitted->Add();
  return QueryHandle(session);
}

void QueryEngine::Shutdown() { pool_.Shutdown(); }

void QueryEngine::RunQuery(const std::shared_ptr<QuerySession>& session,
                           QuerySpec& spec) {
  {
    std::lock_guard<std::mutex> lock(session->mu);
    session->state = QueryState::kRunning;
  }
  m_.started->Add();
  m_.queue_wait_us->Record(MicrosSince(session->submit_time));

  QueryResult result;

  // A query cancelled (or expired) while queued never touches the planner.
  const StopReason queued_stop = session->token.Check();
  if (queued_stop != StopReason::kNone) {
    result.status = CancellationToken::ToStatus(queued_stop);
    FinishQuery(session, std::move(result));
    return;
  }

  auto plan_or = planner_.Plan(spec.query);
  if (!plan_or.ok()) {
    result.status = plan_or.status();
    FinishQuery(session, std::move(result));
    return;
  }
  const std::unique_ptr<PipelinePlan> plan = std::move(plan_or).value();

  // Intra-query parallelism: extra workers are leased from the same pool
  // this query runs on (a busy pool degrades the dop instead of blocking),
  // so the cap is the pool size, not pool size + 1 for the caller's thread.
  ParallelExecOptions parallel;
  parallel.dop = std::min(std::max<size_t>(1, spec.dop), pool_.num_threads());
  parallel.morsel_size = spec.morsel_size;
  parallel.pool = &pool_;
  if (spec.share_scan) parallel.scan_registry = &scan_registry_;
  if (spec.share_cache) parallel.shared_cache = &shared_cache_;
  ParallelPipelineExecutor executor(plan.get(), spec.adaptive, parallel);
  executor.set_cancellation_token(&session->token);
  executor.set_metrics(metrics_);

  RowSink sink;
  if (spec.collect_rows && spec.sink) {
    sink = [&result, user = &spec.sink](const Row& row) {
      result.rows.push_back(row);
      (*user)(row);
    };
  } else if (spec.collect_rows) {
    sink = [&result](const Row& row) { result.rows.push_back(row); };
  } else {
    sink = spec.sink;  // may be null: count-only execution
  }

  auto stats_or = executor.Execute(sink);
  if (stats_or.ok()) {
    result.status = Status::OK();
    result.stats = std::move(stats_or).value();
    m_.rows_out->Add(result.stats.rows_out);
    m_.work_units->Add(result.stats.work_units);
    m_.inner_reorders->Add(result.stats.inner_reorders);
    m_.driving_switches->Add(result.stats.driving_switches);
  } else {
    result.status = stats_or.status();
    result.rows.clear();  // a stopped query's partial rows are not a result
  }
  FinishQuery(session, std::move(result));
}

void QueryEngine::FinishQuery(const std::shared_ptr<QuerySession>& session,
                              QueryResult result) {
  switch (result.status.code()) {
    case StatusCode::kOk:
      m_.finished->Add();
      break;
    case StatusCode::kCancelled:
      m_.cancelled->Add();
      break;
    case StatusCode::kDeadlineExceeded:
      m_.timed_out->Add();
      break;
    default:
      m_.failed->Add();
      break;
  }
  m_.latency_us->Record(MicrosSince(session->submit_time));
  {
    std::lock_guard<std::mutex> lock(session->mu);
    session->result = std::move(result);
    session->state = QueryState::kDone;
  }
  session->cv.notify_all();
}

}  // namespace ajr

// Query sessions: the unit of work the engine schedules.
//
// A QuerySpec describes what to run; Submit() wraps it in a QuerySession —
// the shared state between the submitting thread and the worker that
// executes the query — and returns a QueryHandle, a cheap copyable view of
// the session with future-like semantics: Wait()/WaitFor() block until the
// terminal state, Cancel() requests cooperative cancellation, and the
// QueryResult carries the terminal Status (OK, Cancelled, DeadlineExceeded,
// or a planner/executor error) plus the ExecStats of a completed run.
//
// Thread safety: QueryHandle methods may be called from any thread, and
// from several threads at once. The session's result is written exactly
// once, under the session mutex, before `done` is published.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "adaptive/controller.h"
#include "common/status.h"
#include "exec/pipeline_executor.h"
#include "optimize/query.h"
#include "common/cancellation.h"

namespace ajr {

/// A query submission.
struct QuerySpec {
  JoinQuery query;
  /// Run-time adaptation knobs for this query.
  AdaptiveOptions adaptive;
  /// Intra-query degree of parallelism: worker pipelines over a shared
  /// morsel dispenser (see runtime/parallel_executor.h). <= 1 runs the
  /// serial executor unchanged; larger values are capped at the engine's
  /// worker-pool size.
  size_t dop = 1;
  /// Driving-scan entries per morsel in parallel runs.
  size_t morsel_size = 0;  ///< 0 = auto-size (see ParallelExecOptions)
  /// Attach this query's driving scans to the engine's SharedScanRegistry:
  /// concurrent queries over the same table ride one physical pass instead
  /// of scanning privately (runtime/shared_scan.h). Forces the morsel-
  /// parallel orchestration even at dop == 1.
  bool share_scan = false;
  /// Consult/populate the engine's cross-query SharedProbeCache
  /// (exec/probe_cache_shared.h).
  bool share_cache = false;
  /// Relative deadline, measured from Submit(); queue wait counts against
  /// it. nullopt = no deadline.
  std::optional<std::chrono::milliseconds> timeout;
  /// Collect projected output rows into QueryResult::rows. Off by default:
  /// heavy result sets should stream through `sink` instead.
  bool collect_rows = false;
  /// Optional streaming sink, invoked on the worker thread for every output
  /// row. May be null. Must be thread-compatible with the caller: the engine
  /// serializes calls per query but different queries run concurrently.
  RowSink sink;
};

/// Lifecycle of a submitted query.
enum class QueryState {
  kQueued,    ///< accepted, waiting for a worker
  kRunning,   ///< planning/executing on a worker
  kDone,      ///< terminal; result available
};

/// Terminal outcome of one query.
struct QueryResult {
  /// OK, Cancelled, DeadlineExceeded, or the planner/executor error.
  Status status;
  /// Executor counters; populated only when status.ok().
  ExecStats stats;
  /// Output rows; populated only when QuerySpec::collect_rows was set.
  std::vector<Row> rows;
};

/// Shared state of one submitted query. Engine-internal; callers interact
/// through QueryHandle.
struct QuerySession {
  uint64_t id = 0;
  std::string name;  ///< JoinQuery::name at submit time
  std::chrono::steady_clock::time_point submit_time;

  CancellationToken token;

  std::mutex mu;
  std::condition_variable cv;
  QueryState state = QueryState::kQueued;
  QueryResult result;  ///< valid once state == kDone
};

/// Future-like, copyable view of a submitted query.
class QueryHandle {
 public:
  QueryHandle() = default;
  explicit QueryHandle(std::shared_ptr<QuerySession> session)
      : session_(std::move(session)) {}

  bool valid() const { return session_ != nullptr; }
  uint64_t id() const { return session_->id; }
  const std::string& name() const { return session_->name; }

  /// Requests cooperative cancellation. A queued query terminates without
  /// running; a running query stops at its next depleted state. Idempotent;
  /// a no-op once the query is done.
  void Cancel() { session_->token.Cancel(); }

  /// Blocks until the query reaches its terminal state; returns the result.
  /// The reference stays valid while any handle to the session exists.
  const QueryResult& Wait() const;

  /// Waits up to `timeout` for completion; true if the query is done.
  bool WaitFor(std::chrono::milliseconds timeout) const;

  bool done() const;
  QueryState state() const;

 private:
  friend class QueryEngine;
  std::shared_ptr<QuerySession> session_;
};

}  // namespace ajr

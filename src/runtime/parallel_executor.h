// ParallelPipelineExecutor: morsel-parallel adaptive execution of one
// PipelinePlan (the orchestrator over exec/'s worker mode).
//
// The driving leg's scan is split into fixed-size morsels by a shared
// MorselDriver; `dop` worker-local PipelineExecutor clones pull morsels and
// run the ordinary serial pipeline over them, folding their monitor deltas
// into an AdaptiveCoordinator that runs the paper's reorder checks over the
// merged, fleet-wide statistics (see exec/adaptive_coordinator.h for the
// decision-publication and driving-switch drain protocol).
//
// dop <= 1 delegates to the serial PipelineExecutor unchanged — same code
// path, same work units, bit-identical results and stats.
//
// Worker threads come from an optional ThreadPool via WorkerLease (a busy
// pool degrades the dop instead of deadlocking); without a pool the
// executor spawns its own threads. The calling thread always acts as
// worker 0, so execution proceeds even when no extra thread is available.

#pragma once

#include <memory>
#include <vector>

#include "adaptive/controller.h"
#include "common/cancellation.h"
#include "common/metrics.h"
#include "exec/pipeline_executor.h"
#include "optimize/planner.h"
#include "runtime/shared_scan.h"
#include "runtime/thread_pool.h"

namespace ajr {

class ExecObserver;
struct FaultInjection;

/// Knobs of one parallel execution.
struct ParallelExecOptions {
  /// Degree of parallelism: worker pipelines running concurrently. <= 1
  /// means serial execution (the untouched PipelineExecutor path).
  size_t dop = 1;
  /// Driving-scan entries per morsel. Small morsels adapt and balance
  /// better; large morsels amortize dispenser synchronization. 0 (the
  /// default) auto-sizes from the driving table's cardinality: ~16
  /// morsels per worker, clamped to [64, 1024].
  size_t morsel_size = 0;
  /// Morsels a worker processes between monitor folds into the
  /// coordinator (0 = the adaptive options' check frequency c).
  size_t fold_interval = 0;
  /// Thread source for workers beyond worker 0 (null = spawn threads).
  ThreadPool* pool = nullptr;
  /// Run the morsel-parallel orchestration even at dop <= 1 instead of
  /// delegating to the serial executor. Used by the differential oracle to
  /// exercise the coordinator/dispenser machinery deterministically (one
  /// worker = serial morsel order).
  bool force_parallel = false;
  /// Cross-query scan sharing (runtime/shared_scan.h): promoted driving
  /// legs attach to in-flight passes over the same scan instead of opening
  /// private cursors. Null = every query scans privately. Implies the
  /// parallel orchestration (the dispenser is where attachment happens).
  SharedScanRegistry* scan_registry = nullptr;
  /// Cross-query shared probe cache (exec/probe_cache_shared.h), handed to
  /// every worker (and to the serial delegate). Null = no sharing.
  SharedProbeCache* shared_cache = nullptr;
};

class ParallelPipelineExecutor {
 public:
  /// `plan` must outlive the executor. Single-use, like PipelineExecutor.
  ParallelPipelineExecutor(const PipelinePlan* plan, AdaptiveOptions options,
                           ParallelExecOptions parallel);

  /// See PipelineExecutor setters; all must be called before Execute().
  void set_cancellation_token(const CancellationToken* token) {
    cancel_token_ = token;
  }
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }
  void set_fault_injection(const FaultInjection* faults) { faults_ = faults; }
  /// Per-worker observers (worker w gets observers[w]; missing or null
  /// entries mean unobserved). Installing any observer makes the dispenser
  /// record scan positions for OnDrivingRow. The serial path (dop <= 1)
  /// uses observers[0].
  void set_worker_observers(std::vector<ExecObserver*> observers) {
    observers_ = std::move(observers);
  }

  /// Runs the plan to completion. `sink` (may be null) is invoked under an
  /// internal mutex in parallel runs: rows arrive atomically but in a
  /// nondeterministic interleaving — the row *multiset* is what parallel
  /// execution preserves. The merged stats carry fleet totals plus the
  /// coordinator's decision counters; `parallel_workers` is the number of
  /// workers that processed at least one morsel.
  StatusOr<ExecStats> Execute(const RowSink& sink);

  /// Per-worker stats of the last Execute (index = worker id; empty stats
  /// for workers that never ran). Valid after a successful Execute.
  const std::vector<ExecStats>& worker_stats() const { return worker_stats_; }

 private:
  ExecObserver* ObserverFor(size_t worker) const {
    return worker < observers_.size() ? observers_[worker] : nullptr;
  }

  const PipelinePlan* plan_;
  AdaptiveOptions options_;
  ParallelExecOptions parallel_;
  const CancellationToken* cancel_token_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  const FaultInjection* faults_ = nullptr;
  std::vector<ExecObserver*> observers_;
  std::vector<ExecStats> worker_stats_;
  bool executed_ = false;
};

}  // namespace ajr

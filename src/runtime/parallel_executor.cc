#include "runtime/parallel_executor.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>

#include "exec/adaptive_coordinator.h"
#include "runtime/morsel.h"
#include "runtime/worker_lease.h"

namespace ajr {

ParallelPipelineExecutor::ParallelPipelineExecutor(const PipelinePlan* plan,
                                                   AdaptiveOptions options,
                                                   ParallelExecOptions parallel)
    : plan_(plan), options_(options), parallel_(parallel) {}

StatusOr<ExecStats> ParallelPipelineExecutor::Execute(const RowSink& sink) {
  if (executed_) {
    return Status::Internal(
        "ParallelPipelineExecutor is single-use: Execute() was already called");
  }
  executed_ = true;
  const size_t dop = std::max<size_t>(1, parallel_.dop);
  worker_stats_.assign(dop, ExecStats());

  if (dop <= 1 && !parallel_.force_parallel &&
      parallel_.scan_registry == nullptr) {
    // Serial delegation: the exact pre-existing code path, work-unit and
    // checksum identical to a plain PipelineExecutor run.
    PipelineExecutor exec(plan_, options_);
    exec.set_cancellation_token(cancel_token_);
    exec.set_metrics(metrics_);
    exec.set_fault_injection(faults_);
    exec.set_observer(ObserverFor(0));
    exec.set_shared_cache(parallel_.shared_cache);
    StatusOr<ExecStats> result = exec.Execute(sink);
    if (result.ok()) worker_stats_[0] = *result;
    return result;
  }

  const bool record_positions =
      std::any_of(observers_.begin(), observers_.end(),
                  [](ExecObserver* o) { return o != nullptr; });
  // Auto-sized morsels target ~16 morsels per worker over the initial
  // driving table, clamped to [64, 1024]: a fixed size that suits a
  // 100k-entry scan would hand a 10k-entry scan to the fleet as a handful
  // of morsels, starving the coordinator of fold points (and therefore of
  // reorder decisions) before the scan is already over.
  size_t morsel_size = parallel_.morsel_size;
  if (morsel_size == 0) {
    const size_t driving = plan_->initial_order[0];
    const size_t total = plan_->entries[driving]->table().num_rows();
    morsel_size = std::clamp<size_t>(total / (dop * 16), 64, 1024);
  }
  // Read-ahead (and with it morsel affinity) only pays off with several
  // workers; depth 1 keeps single-worker dispensing bit-identical to the
  // pre-affinity dispenser.
  const size_t produce_ahead = dop > 1 ? std::min<size_t>(4, dop) : 1;
  MorselDriver driver(plan_, morsel_size, record_positions,
                      parallel_.scan_registry, produce_ahead);
  AdaptiveCoordinator coordinator(plan_, options_, &driver,
                                  parallel_.fold_interval);
  AJR_RETURN_IF_ERROR(coordinator.Init());

  std::vector<std::unique_ptr<PipelineExecutor>> workers;
  workers.reserve(dop);
  for (size_t w = 0; w < dop; ++w) {
    auto exec = std::make_unique<PipelineExecutor>(plan_, options_);
    exec->set_cancellation_token(cancel_token_);
    exec->set_fault_injection(faults_);
    exec->set_observer(ObserverFor(w));
    exec->set_shared_cache(parallel_.shared_cache);
    // No per-worker metrics: the orchestrator flushes merged totals once.
    workers.push_back(std::move(exec));
  }

  std::mutex sink_mu;
  RowSink locked_sink;
  if (sink) {
    locked_sink = [&sink, &sink_mu](const Row& row) {
      std::lock_guard<std::mutex> lock(sink_mu);
      sink(row);
    };
  }

  // StatusOr is not default-constructible; revoked lease slots stay nullopt.
  std::vector<std::optional<StatusOr<ExecStats>>> results(dop);
  auto run = [&](size_t w) {
    results[w] = workers[w]->ExecuteWorker(&coordinator, locked_sink, w);
  };

  const auto start = std::chrono::steady_clock::now();
  if (parallel_.pool != nullptr) {
    WorkerLease lease(parallel_.pool, dop - 1,
                      [&run](size_t i) { run(i + 1); });
    run(0);  // the calling thread is always worker 0
    lease.Finish();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(dop - 1);
    for (size_t w = 1; w < dop; ++w) {
      threads.emplace_back([&run, w] { run(w); });
    }
    run(0);
    for (std::thread& th : threads) th.join();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Status failure = Status::OK();
  for (size_t w = 0; w < dop && failure.ok(); ++w) {
    if (results[w].has_value() && !results[w]->ok()) {
      failure = results[w]->status();
    }
  }
  if (failure.ok() && coordinator.aborted()) {
    failure = coordinator.abort_status();
  }
  if (!failure.ok()) return failure;

  ExecStats merged;
  merged.initial_order = plan_->initial_order;
  merged.wall_seconds = wall;
  size_t participated = 0;
  for (size_t w = 0; w < dop; ++w) {
    if (!results[w].has_value()) continue;  // revoked: never ran
    const ExecStats& ws = **results[w];
    worker_stats_[w] = ws;
    if (ws.morsels > 0 || ws.rows_out > 0) ++participated;
    merged.MergeFrom(ws);
  }
  coordinator.FinishStats(&merged);
  merged.parallel_workers = participated;
  // Scan-sharing observability lives on the dispenser, not the workers.
  merged.shared_scan_attaches = driver.shared_scan_attaches();
  merged.shared_scan_passes_saved = driver.shared_scan_passes_saved();
  merged.scan_morsels_produced = driver.scan_morsels_produced();
  merged.scan_morsels_consumed = driver.scan_morsels_consumed();

  if (metrics_ != nullptr) {
    metrics_->GetCounter("exec.probe_cache_hits")->Add(merged.probe_cache_hits);
    metrics_->GetCounter("exec.probe_cache_misses")
        ->Add(merged.probe_cache_misses);
    metrics_->GetCounter("exec.probe_batches")->Add(merged.probe_batches);
    metrics_->GetCounter("exec.probe_batch_keys")->Add(merged.probe_batch_keys);
    metrics_->GetCounter("exec.probe_descents_saved")
        ->Add(merged.probe_descents_saved);
    metrics_->GetCounter("exec.policy_decisions")->Add(merged.policy_decisions);
    metrics_->GetCounter("exec.policy_reorders")->Add(merged.policy_reorders);
    metrics_->GetCounter("exec.policy_switches")->Add(merged.policy_switches);
    metrics_->GetCounter("exec.policy_regret_x1000")
        ->Add(merged.policy_regret_x1000);
    metrics_->GetCounter("exec.parallel_queries")->Add(1);
    metrics_->GetCounter("exec.parallel_workers")->Add(merged.parallel_workers);
    metrics_->GetCounter("exec.parallel_morsels")->Add(merged.morsels);
    metrics_->GetCounter("exec.parallel_monitor_folds")
        ->Add(merged.monitor_folds);
    if (parallel_.scan_registry != nullptr) {
      metrics_->GetCounter("exec.shared_scan_attaches")
          ->Add(merged.shared_scan_attaches);
      metrics_->GetCounter("exec.shared_scan_passes_saved")
          ->Add(merged.shared_scan_passes_saved);
      metrics_->GetCounter("exec.shared_scan_morsels_produced")
          ->Add(merged.scan_morsels_produced);
      metrics_->GetCounter("exec.shared_scan_morsels_consumed")
          ->Add(merged.scan_morsels_consumed);
    }
    if (parallel_.shared_cache != nullptr) {
      metrics_->GetCounter("exec.probe_cache_shared_hits")
          ->Add(merged.probe_cache_shared_hits);
      metrics_->GetCounter("exec.probe_cache_shared_misses")
          ->Add(merged.probe_cache_shared_misses);
      metrics_->GetCounter("exec.probe_cache_shared_stripe_conflicts")
          ->Add(merged.probe_cache_shared_conflicts);
    }
  }
  return merged;
}

}  // namespace ajr

// Fixed-size worker thread pool for the query engine.
//
// Deliberately minimal: a mutex-protected FIFO of std::function tasks and N
// long-lived workers. Query execution is coarse-grained (milliseconds per
// task), so a lock-free queue would buy nothing; what matters is clean
// shutdown semantics, which are subtle enough to centralize here.
//
// Thread safety: Submit() may be called from any thread, including from
// inside a task. Shutdown() drains queued tasks before joining; it is
// idempotent and must not be called from inside a task.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ajr {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  /// Calls Shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false (task dropped) after Shutdown() began.
  bool Submit(std::function<void()> task);

  /// Stops accepting tasks, runs everything already queued, joins workers.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }
  /// Queued (not yet started) tasks; monitoring only.
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ajr

// MorselDriver: the shared driving-scan dispenser of morsel-parallel
// execution (runtime side of exec/adaptive_coordinator.h's DrivingSource).
//
// It owns one resumable ScanCursor per query table, created lazily at first
// promotion — the same cursors the serial executor drives with, so morsel
// order, positional predicates, and re-promotion semantics are identical.
// Fill() batches the promoted cursor's RIDs into fixed-size morsels; the
// cursor's position after the last dispensed entry is the fleet-wide
// high-water mark a demotion's positional predicate is built from.
//
// Thread safety: none of its own — every method is called under the
// AdaptiveCoordinator's mutex (the DrivingSource contract).

#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/work_counter.h"
#include "exec/adaptive_coordinator.h"
#include "optimize/planner.h"
#include "storage/cursors.h"

namespace ajr {

class MorselDriver final : public DrivingSource {
 public:
  /// `plan` must outlive the driver. `record_positions` makes Fill() record
  /// each entry's scan position alongside its RID (observer-instrumented
  /// runs only — it materializes one ScanPosition per entry).
  MorselDriver(const PipelinePlan* plan, size_t morsel_size,
               bool record_positions);

  Status Promote(size_t table) override;
  bool Fill(ParallelMorsel* morsel) override;
  std::optional<ScanPosition> high_water() const override;
  double total_entries(size_t table) const override;
  double dispensed_entries(size_t table) const override;
  bool ever_promoted(size_t table) const override;
  size_t prefix_col(size_t table) const override;
  uint64_t scan_work_units() const override { return wc_.total(); }

 private:
  struct LegScan {
    std::unique_ptr<ScanCursor> cursor;
    double total_raw = 0;      ///< entries the full driving scan covers
    double dispensed = 0;      ///< entries ever handed out, all promotions
    size_t prefix_col = SIZE_MAX;
  };

  const PipelinePlan* plan_;
  size_t morsel_size_;
  bool record_positions_;
  std::vector<LegScan> legs_;
  size_t current_ = SIZE_MAX;
  /// Entries dispensed since the current promotion (high-water validity).
  uint64_t dispensed_this_promotion_ = 0;
  WorkCounter wc_;
};

}  // namespace ajr

// MorselDriver: the shared driving-scan dispenser of morsel-parallel
// execution (runtime side of exec/adaptive_coordinator.h's DrivingSource).
//
// It owns one resumable ScanCursor per query table, created lazily at first
// promotion — the same cursors the serial executor drives with, so morsel
// order, positional predicates, and re-promotion semantics are identical.
// Fill() batches the promoted cursor's RIDs into fixed-size morsels; the
// cursor's position after the last dispensed entry is the fleet-wide
// high-water mark a demotion's positional predicate is built from.
//
// Cross-query sharing: with a SharedScanRegistry installed, a promoted
// leg attaches to the registry's pass for its scan signature instead of
// opening a private cursor — morsels are produced once per pass and
// replayed (RIDs, positions, and per-morsel work units) to every attached
// query. A leg that attached mid-pass consumes in wrapped order, so the
// driver reports demotion_safe() = false while it is promoted and the
// coordinator keeps the driving leg (a positional predicate needs a scan
// prefix).
//
// Morsel affinity: produced morsels carry a sequence number and enter a
// small ready queue (up to `produce_ahead` deep); a worker prefers a ready
// morsel from the stripe (seq / kStripeLen) it last claimed and steals the
// oldest otherwise — consecutive morsels cover adjacent key/RID ranges, so
// stripe affinity keeps a worker's probe hints and caches warm. With
// produce_ahead == 1 the queue holds at most the single just-produced
// morsel and dispensing order is exactly the pre-affinity behavior.
//
// Thread safety: none of its own — every method is called under the
// AdaptiveCoordinator's mutex (the DrivingSource contract).

#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/work_counter.h"
#include "exec/adaptive_coordinator.h"
#include "optimize/planner.h"
#include "runtime/shared_scan.h"
#include "storage/cursors.h"

namespace ajr {

class MorselDriver final : public DrivingSource {
 public:
  /// `plan` must outlive the driver. `record_positions` makes Fill() record
  /// each entry's scan position alongside its RID (observer-instrumented
  /// runs only — it materializes one ScanPosition per entry). `registry`
  /// (may be null) enables cross-query scan sharing; `produce_ahead` is the
  /// ready-queue depth morsel affinity chooses from (1 = no read-ahead).
  MorselDriver(const PipelinePlan* plan, size_t morsel_size,
               bool record_positions, SharedScanRegistry* registry = nullptr,
               size_t produce_ahead = 1);

  /// Consecutive morsel sequence numbers per affinity stripe.
  static constexpr uint64_t kStripeLen = 4;

  Status Promote(size_t table) override;
  bool Fill(ParallelMorsel* morsel, size_t worker) override;
  bool FillFromReady(ParallelMorsel* morsel, size_t worker) override;
  bool demotion_safe() const override;
  std::optional<ScanPosition> high_water() const override;
  double total_entries(size_t table) const override;
  double dispensed_entries(size_t table) const override;
  bool ever_promoted(size_t table) const override;
  size_t prefix_col(size_t table) const override;
  uint64_t scan_work_units() const override { return wc_.total(); }

  // Sharing / affinity observability (read by the orchestrator after the
  // run; all zero without a registry).
  /// Legs that attached to an existing registry pass.
  uint64_t shared_scan_attaches() const;
  /// Attachments that covered a whole pass without producing any morsel
  /// themselves — full physical passes this query never paid for.
  uint64_t shared_scan_passes_saved() const;
  /// Morsels physically produced by this driver (private fills plus shared
  /// co-productions) / dispensed to this query's workers.
  uint64_t scan_morsels_produced() const;
  uint64_t scan_morsels_consumed() const { return morsels_consumed_; }
  /// Dispenses satisfied from the worker's preferred stripe.
  uint64_t affinity_hits() const { return affinity_hits_; }

 private:
  struct LegScan {
    std::unique_ptr<ScanCursor> cursor;              ///< private mode
    std::unique_ptr<SharedScanAttachment> shared;    ///< shared mode
    double total_raw = 0;      ///< entries the full driving scan covers
    double dispensed = 0;      ///< entries ever handed out, all promotions
    size_t prefix_col = SIZE_MAX;
    bool promoted = false;
  };

  struct ReadyMorsel {
    uint64_t seq = 0;
    ParallelMorsel morsel;
  };

  /// Produces one morsel from the promoted leg into the ready queue.
  /// False when the leg's scan is exhausted.
  bool ProduceOne();
  /// Pops a ready morsel into `*out`, preferring `worker`'s last stripe.
  void TakeReady(ParallelMorsel* out, size_t worker);
  /// The scan signature a shared pass is registered under.
  std::string ScanSignature(size_t table) const;

  const PipelinePlan* plan_;
  size_t morsel_size_;
  bool record_positions_;
  SharedScanRegistry* registry_;
  size_t produce_ahead_;
  std::vector<LegScan> legs_;
  size_t current_ = SIZE_MAX;
  /// Latched when the current promotion's scan ran dry, so the final empty
  /// cursor pull is charged exactly once per promotion (work parity with
  /// the pre-read-ahead dispenser). Reset by Promote.
  bool exhausted_ = false;
  /// Entries dispensed since the current promotion (high-water validity).
  uint64_t dispensed_this_promotion_ = 0;
  WorkCounter wc_;

  std::deque<ReadyMorsel> ready_;
  uint64_t next_seq_ = 0;
  std::vector<uint64_t> last_stripe_;  ///< per worker; UINT64_MAX = none
  uint64_t morsels_produced_ = 0;
  uint64_t morsels_consumed_ = 0;
  uint64_t affinity_hits_ = 0;
};

}  // namespace ajr

// SharedScanRegistry: cross-query sharing of driving-scan passes.
//
// N concurrent queries over the same table pay N physical scans in the
// isolated runtime. This registry lets a MorselDriver leg whose scan
// signature (table, index, key ranges, morsel size, position recording)
// matches an in-flight pass *attach* to it instead of opening a private
// cursor: the pass's morsels are produced physically once and replayed to
// every attachment, each of which charges the recorded per-morsel work
// units to its own query — so every query accounts for exactly the work a
// private scan would have charged, bit for bit (the oracle's --share axis
// compares the two paths).
//
// Circular attach (the classic shared-scan protocol): a late joiner starts
// at the pass's current frontier, consumes forward to the end of the scan,
// then wraps to morsel 0 and consumes up to its start point before
// detaching — one full cover of the scan, most of it riding morsels that
// were (or will be) produced anyway. Production is cooperative: whichever
// attachment reaches the frontier first produces the next morsel under the
// pass lock. Completed passes are retained (small LRU) so closed-loop
// traffic re-running the same query attaches warm and performs no physical
// scan at all.
//
// Per-attachment bookkeeping keeps adaptation exact: an attachment knows
// the scan position after its last consumed morsel (the per-query
// high-water mark a demotion's positional predicate is built from) and
// whether it started mid-pass — a wrapped attachment's processed set is
// not a prefix of the scan order, so its driver reports demotion_safe() =
// false and the coordinator keeps the driving leg (see
// DrivingSource::demotion_safe).
//
// Thread safety: the registry map is behind its own mutex; each pass is
// behind its own mutex (a leaf lock — pass code calls only the cursor).
// Attachments are single-owner (one MorselDriver leg each) and call into
// the pass under its lock.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/work_counter.h"
#include "exec/adaptive_coordinator.h"
#include "storage/cursors.h"
#include "storage/scan_position.h"

namespace ajr {

class SharedScanPass;

/// One query's view of a shared pass: a cursor over the pass's morsels
/// following the circular-attach protocol. Single-owner (one MorselDriver
/// leg); Next() may be called again after it returned false only following
/// external re-promotion logic (it keeps returning false once covered).
class SharedScanAttachment {
 public:
  SharedScanAttachment() = default;
  /// Detaching drops the pass's live-attachment count; a pass with no live
  /// attachments is "stalled" (nobody will drive it forward) and is joined
  /// at morsel 0, not at its frontier, by the next attachment.
  ~SharedScanAttachment();
  SharedScanAttachment(const SharedScanAttachment&) = delete;
  SharedScanAttachment& operator=(const SharedScanAttachment&) = delete;

  /// Copies the attachment's next uncovered morsel into `morsel` (rids and,
  /// when the pass records them, positions), charges the morsel's recorded
  /// production work to `wc`, and returns true. Returns false once the
  /// attachment has covered the whole pass — charging the scan's tail work
  /// (the final empty cursor pull) exactly once, so the attachment's total
  /// equals a private scan's.
  bool Next(ParallelMorsel* morsel, WorkCounter* wc);

  /// True when this attachment joined mid-pass (its consumption order wraps,
  /// so its processed set is not a scan prefix — demotion-unsafe).
  bool started_mid_pass() const { return start_ > 0; }

  /// True when this attachment joined an existing pass rather than creating
  /// one.
  bool attached_existing() const { return attached_existing_; }

  /// Position after the last consumed morsel (per-attachment high water);
  /// nullopt before the first consumed morsel.
  const std::optional<ScanPosition>& last_position() const { return last_end_; }

  bool covered() const { return covered_; }
  /// Morsels this attachment physically produced / consumed.
  uint64_t produced() const { return produced_; }
  uint64_t consumed() const { return consumed_; }

 private:
  friend class SharedScanRegistry;

  std::shared_ptr<SharedScanPass> pass_;
  size_t start_ = 0;  ///< frontier at attach; wrap target
  size_t next_ = 0;   ///< next pass morsel to consume
  bool wrapped_ = false;
  bool covered_ = false;
  bool attached_existing_ = false;
  uint64_t produced_ = 0;
  uint64_t consumed_ = 0;
  std::optional<ScanPosition> last_end_;
};

/// Process-wide pass table. One instance per QueryEngine (or per test).
class SharedScanRegistry {
 public:
  /// Passes retained after completion for warm reuse (total map cap; the
  /// oldest completed pass is evicted first, in-flight passes never are).
  static constexpr size_t kMaxRetainedPasses = 8;

  /// Attaches `att` to the pass registered under `sig`, creating the pass
  /// with a cursor from `make_cursor` when none exists. An in-flight pass
  /// with live attachments is joined at its current frontier (circular
  /// attach); a retained completed pass — or a stalled incomplete one,
  /// whose producer finished without draining the scan — is replayed from
  /// morsel 0, in scan order (the joiner drives any remaining production
  /// itself, so there is nothing to gain from starting mid-pass).
  void AttachOrCreate(
      const std::string& sig,
      const std::function<std::unique_ptr<ScanCursor>()>& make_cursor,
      size_t morsel_size, bool record_positions, SharedScanAttachment* att);

  /// Registered passes (diagnostics).
  size_t num_passes() const;

 private:
  struct Entry {
    std::string sig;
    std::shared_ptr<SharedScanPass> pass;
    uint64_t last_use = 0;
  };

  mutable std::mutex mu_;
  std::vector<Entry> passes_;
  uint64_t tick_ = 0;
};

/// One shared scan pass: the physical cursor plus every morsel it has
/// produced, each with its recorded production work and end position.
/// Morsels are produced exactly as a private MorselDriver fills them (same
/// cursor call sequence), so replayed work is bit-identical to an unshared
/// scan. Internal to the registry/attachment protocol; exposed for tests.
class SharedScanPass {
 public:
  SharedScanPass(std::unique_ptr<ScanCursor> cursor, size_t morsel_size,
                 bool record_positions);

  size_t morsel_size() const { return morsel_size_; }
  bool record_positions() const { return record_positions_; }
  /// Frontier / completion snapshot (takes the pass lock).
  size_t num_morsels() const;
  bool complete() const;

 private:
  friend class SharedScanAttachment;
  friend class SharedScanRegistry;

  /// One produced morsel (immutable once pushed).
  struct Morsel {
    std::vector<Rid> rids;
    std::vector<ScanPosition> positions;
    ScanPosition end;   ///< cursor position after the last rid
    uint64_t work = 0;  ///< work units the producing cursor pull charged
  };

  /// Produces the next morsel from the cursor (one private-Fill-equivalent
  /// pull); sets complete_ and tail_work_ when the pull comes back empty.
  /// Pre: pass lock held, !complete_.
  void ProduceLocked();

  mutable std::mutex mu_;
  std::unique_ptr<ScanCursor> cursor_;
  size_t morsel_size_;
  bool record_positions_;
  std::vector<Morsel> morsels_;
  bool complete_ = false;
  uint64_t tail_work_ = 0;  ///< work of the final empty cursor pull
  size_t live_attachments_ = 0;
};

}  // namespace ajr

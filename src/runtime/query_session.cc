#include "runtime/query_session.h"

namespace ajr {

const QueryResult& QueryHandle::Wait() const {
  std::unique_lock<std::mutex> lock(session_->mu);
  session_->cv.wait(lock, [this] { return session_->state == QueryState::kDone; });
  return session_->result;
}

bool QueryHandle::WaitFor(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(session_->mu);
  return session_->cv.wait_for(
      lock, timeout, [this] { return session_->state == QueryState::kDone; });
}

bool QueryHandle::done() const { return state() == QueryState::kDone; }

QueryState QueryHandle::state() const {
  std::lock_guard<std::mutex> lock(session_->mu);
  return session_->state;
}

}  // namespace ajr

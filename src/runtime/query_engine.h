// QueryEngine: the concurrent query runtime.
//
// The engine owns a fixed-size worker pool and a planner over one shared
// catalog. Submit() accepts a QuerySpec, immediately returns a QueryHandle,
// and runs the query on a worker: plan -> PipelineExecutor -> result, with
// cooperative cancellation and deadline enforcement polled at the
// executor's depleted states. Per-query ExecStats are folded into a
// MetricsRegistry so adaptation behaviour (inner reorders, driving
// switches, work units) stays observable across a concurrent workload.
//
// Thread safety: Submit() may be called from any thread. The catalog must
// not be mutated (DDL, loads, index builds, ANALYZE) while the engine is
// serving queries — the read paths of Catalog/HeapTable/BPlusTree are
// const and safely shareable, but writes are unsynchronized by design (see
// the per-class contracts in catalog/ and storage/). Build, then serve.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/status.h"
#include "exec/probe_cache_shared.h"
#include "optimize/planner.h"
#include "runtime/query_session.h"
#include "runtime/shared_scan.h"
#include "runtime/thread_pool.h"

namespace ajr {

/// Engine construction knobs.
struct QueryEngineOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  size_t num_workers = 0;
  /// Statistics tier etc. for the shared planner.
  PlannerOptions planner;
  /// Metrics sink; nullptr = MetricsRegistry::Global().
  MetricsRegistry* metrics = nullptr;
  /// Shared probe cache geometry (queries with QuerySpec::share_cache):
  /// lock-striped segments and LRU entries per segment.
  size_t shared_cache_stripes = 16;
  size_t shared_cache_entries_per_stripe = 256;
};

/// Multi-query runtime over one catalog.
class QueryEngine {
 public:
  /// `catalog` must outlive the engine and stay read-only while serving.
  explicit QueryEngine(const Catalog* catalog, QueryEngineOptions options = {});
  /// Calls Shutdown().
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Validates and enqueues `spec`. Fails fast (without enqueueing) on an
  /// invalid query or an engine that has shut down.
  StatusOr<QueryHandle> Submit(QuerySpec spec);

  /// Stops accepting queries, runs everything queued, joins workers.
  /// Pending queries still honour their tokens: Cancel() them first for a
  /// fast shutdown. Idempotent.
  void Shutdown();

  size_t num_workers() const { return pool_.num_threads(); }
  MetricsRegistry& metrics() const { return *metrics_; }
  const Planner& planner() const { return planner_; }
  /// Cross-query sharing state (one per engine; queries opt in per spec).
  SharedScanRegistry& scan_registry() { return scan_registry_; }
  SharedProbeCache& shared_cache() { return shared_cache_; }

 private:
  /// Pre-resolved metric handles (one map lookup each at construction).
  struct EngineMetrics {
    Counter* submitted;
    Counter* started;
    Counter* finished;
    Counter* cancelled;
    Counter* timed_out;
    Counter* failed;
    Counter* rows_out;
    Counter* work_units;
    Counter* inner_reorders;
    Counter* driving_switches;
    Histogram* latency_us;
    Histogram* queue_wait_us;
  };

  void RunQuery(const std::shared_ptr<QuerySession>& session, QuerySpec& spec);
  void FinishQuery(const std::shared_ptr<QuerySession>& session,
                   QueryResult result);

  const Catalog* catalog_;
  Planner planner_;
  MetricsRegistry* metrics_;
  EngineMetrics m_;
  SharedScanRegistry scan_registry_;
  SharedProbeCache shared_cache_;
  std::atomic<uint64_t> next_query_id_{1};
  // Last member: destroyed (joined) first, while the planner and metrics
  // are still alive for in-flight queries.
  ThreadPool pool_;
};

}  // namespace ajr

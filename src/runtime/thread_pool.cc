#include "runtime/thread_pool.h"

#include <algorithm>
#include <utility>

namespace ajr {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && threads_.empty()) return;
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace ajr

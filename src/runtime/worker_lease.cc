#include "runtime/worker_lease.h"

namespace ajr {

WorkerLease::WorkerLease(ThreadPool* pool, size_t count,
                         std::function<void(size_t)> fn)
    : shared_(std::make_shared<Shared>()) {
  shared_->fn = std::move(fn);
  for (size_t i = 0; i < count; ++i) {
    std::shared_ptr<Shared> shared = shared_;
    bool submitted = pool->Submit([shared, i] {
      {
        std::lock_guard<std::mutex> lock(shared->mu);
        if (shared->revoked) return;
        ++shared->started;
      }
      shared->fn(i);
      std::lock_guard<std::mutex> lock(shared->mu);
      ++shared->finished;
      shared->cv.notify_all();
    });
    // A shut-down pool drops the task; it counts as never started.
    (void)submitted;
  }
}

void WorkerLease::Finish() {
  std::unique_lock<std::mutex> lock(shared_->mu);
  shared_->revoked = true;
  shared_->cv.wait(lock, [this] {
    return shared_->started == shared_->finished;
  });
}

size_t WorkerLease::started() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->started;
}

}  // namespace ajr

#include "runtime/morsel.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace ajr {

MorselDriver::MorselDriver(const PipelinePlan* plan, size_t morsel_size,
                           bool record_positions, SharedScanRegistry* registry,
                           size_t produce_ahead)
    : plan_(plan),
      morsel_size_(std::max<size_t>(1, morsel_size)),
      record_positions_(record_positions),
      registry_(registry),
      produce_ahead_(std::max<size_t>(1, produce_ahead)),
      legs_(plan->query.tables.size()) {}

std::string MorselDriver::ScanSignature(size_t table) const {
  // A pass is shareable only between scans that produce the very same
  // morsel stream: same storage objects (catalog-owned, so pointers are
  // process-wide identities), same key ranges, same morsel size, and the
  // same position-recording mode.
  const DrivingAccess& access = plan_->access[table].driving;
  std::string sig =
      StrCat("t:", reinterpret_cast<uintptr_t>(&plan_->entries[table]->table()),
             " i:",
             reinterpret_cast<uintptr_t>(
                 access.index != nullptr ? access.index->tree.get() : nullptr),
             " m:", morsel_size_, " p:", record_positions_ ? 1 : 0, " r:");
  for (const KeyRange& r : access.ranges) sig += r.ToString() + ";";
  return sig;
}

Status MorselDriver::Promote(size_t table) {
  LegScan& leg = legs_[table];
  if (!leg.promoted) {
    // Mirrors PipelineExecutor::CreateDrivingCursor: indexed legs scan in
    // (key, RID) order over the plan's ranges, others in RID order.
    const DrivingAccess& access = plan_->access[table].driving;
    auto make_cursor = [&]() -> std::unique_ptr<ScanCursor> {
      if (access.index != nullptr) {
        return std::make_unique<IndexScanCursor>(access.index->tree.get(),
                                                 access.ranges);
      }
      return std::make_unique<TableScanCursor>(&plan_->entries[table]->table());
    };
    if (access.index != nullptr) {
      leg.total_raw = static_cast<double>(CountRangeEntriesAfter(
          *access.index->tree, access.ranges, std::nullopt));
      leg.prefix_col = access.index->column_idx;
    } else {
      leg.total_raw =
          static_cast<double>(plan_->entries[table]->table().num_rows());
      leg.prefix_col = SIZE_MAX;
    }
    if (registry_ != nullptr) {
      leg.shared = std::make_unique<SharedScanAttachment>();
      registry_->AttachOrCreate(ScanSignature(table), make_cursor, morsel_size_,
                                record_positions_, leg.shared.get());
    } else {
      leg.cursor = make_cursor();
    }
    leg.promoted = true;
  }
  // A re-promotion resumes the original cursor (or shared attachment),
  // which already sits past every previously dispensed entry (Sec 4.2's
  // kept cursor).
  current_ = table;
  dispensed_this_promotion_ = 0;
  exhausted_ = false;
  return Status::OK();
}

bool MorselDriver::ProduceOne() {
  assert(current_ != SIZE_MAX && "Fill before first Promote");
  if (exhausted_) return false;
  LegScan& leg = legs_[current_];
  ReadyMorsel rm;
  rm.seq = next_seq_;
  ParallelMorsel& m = rm.morsel;
  if (leg.shared != nullptr) {
    if (!leg.shared->Next(&m, &wc_)) {
      exhausted_ = true;
      return false;
    }
  } else {
    Rid rid;
    while (m.rids.size() < morsel_size_ && leg.cursor->Next(&wc_, &rid)) {
      m.rids.push_back(rid);
      if (record_positions_) {
        m.positions.push_back(leg.cursor->CurrentPosition());
      }
    }
    if (m.rids.empty()) {
      exhausted_ = true;
      return false;
    }
    ++morsels_produced_;
  }
  ++next_seq_;
  ++morsels_consumed_;
  leg.dispensed += static_cast<double>(m.rids.size());
  dispensed_this_promotion_ += m.rids.size();
  ready_.push_back(std::move(rm));
  return true;
}

void MorselDriver::TakeReady(ParallelMorsel* out, size_t worker) {
  assert(!ready_.empty());
  if (worker >= last_stripe_.size()) {
    last_stripe_.resize(worker + 1, UINT64_MAX);
  }
  size_t pick = 0;
  bool matched = false;
  if (last_stripe_[worker] != UINT64_MAX) {
    for (size_t i = 0; i < ready_.size(); ++i) {
      if (ready_[i].seq / kStripeLen == last_stripe_[worker]) {
        pick = i;
        matched = true;
        break;
      }
    }
  }
  if (matched) ++affinity_hits_;
  ReadyMorsel& rm = ready_[pick];
  last_stripe_[worker] = rm.seq / kStripeLen;
  out->rids.swap(rm.morsel.rids);
  out->positions.swap(rm.morsel.positions);
  ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(pick));
}

bool MorselDriver::Fill(ParallelMorsel* morsel, size_t worker) {
  while (ready_.size() < produce_ahead_) {
    if (!ProduceOne()) break;
  }
  if (ready_.empty()) return false;
  TakeReady(morsel, worker);
  return true;
}

bool MorselDriver::FillFromReady(ParallelMorsel* morsel, size_t worker) {
  if (ready_.empty()) return false;
  TakeReady(morsel, worker);
  return true;
}

bool MorselDriver::demotion_safe() const {
  if (current_ == SIZE_MAX) return true;
  const LegScan& leg = legs_[current_];
  // A mid-pass attachment consumes in wrapped order: its processed set is
  // not a prefix of the scan order, so no positional predicate can describe
  // it — the coordinator must keep the driving leg.
  return leg.shared == nullptr || !leg.shared->started_mid_pass();
}

std::optional<ScanPosition> MorselDriver::high_water() const {
  if (current_ == SIZE_MAX || dispensed_this_promotion_ == 0) {
    return std::nullopt;
  }
  const LegScan& leg = legs_[current_];
  if (leg.shared != nullptr) return leg.shared->last_position();
  return leg.cursor->CurrentPosition();
}

double MorselDriver::total_entries(size_t table) const {
  return legs_[table].total_raw;
}

double MorselDriver::dispensed_entries(size_t table) const {
  return legs_[table].dispensed;
}

bool MorselDriver::ever_promoted(size_t table) const {
  return legs_[table].promoted;
}

size_t MorselDriver::prefix_col(size_t table) const {
  return legs_[table].prefix_col;
}

uint64_t MorselDriver::shared_scan_attaches() const {
  uint64_t n = 0;
  for (const LegScan& leg : legs_) {
    if (leg.shared != nullptr && leg.shared->attached_existing()) ++n;
  }
  return n;
}

uint64_t MorselDriver::shared_scan_passes_saved() const {
  uint64_t n = 0;
  for (const LegScan& leg : legs_) {
    if (leg.shared != nullptr && leg.shared->attached_existing() &&
        leg.shared->covered() && leg.shared->produced() == 0) {
      ++n;
    }
  }
  return n;
}

uint64_t MorselDriver::scan_morsels_produced() const {
  uint64_t n = morsels_produced_;
  for (const LegScan& leg : legs_) {
    if (leg.shared != nullptr) n += leg.shared->produced();
  }
  return n;
}

}  // namespace ajr

#include "runtime/morsel.h"

#include <algorithm>
#include <cassert>

namespace ajr {

MorselDriver::MorselDriver(const PipelinePlan* plan, size_t morsel_size,
                           bool record_positions)
    : plan_(plan),
      morsel_size_(std::max<size_t>(1, morsel_size)),
      record_positions_(record_positions),
      legs_(plan->query.tables.size()) {}

Status MorselDriver::Promote(size_t table) {
  LegScan& leg = legs_[table];
  if (leg.cursor == nullptr) {
    // Mirrors PipelineExecutor::CreateDrivingCursor: indexed legs scan in
    // (key, RID) order over the plan's ranges, others in RID order.
    const DrivingAccess& access = plan_->access[table].driving;
    if (access.index != nullptr) {
      leg.cursor = std::make_unique<IndexScanCursor>(access.index->tree.get(),
                                                     access.ranges);
      leg.total_raw = static_cast<double>(CountRangeEntriesAfter(
          *access.index->tree, access.ranges, std::nullopt));
      leg.prefix_col = access.index->column_idx;
    } else {
      const HeapTable* table_ptr = &plan_->entries[table]->table();
      leg.cursor = std::make_unique<TableScanCursor>(table_ptr);
      leg.total_raw = static_cast<double>(table_ptr->num_rows());
      leg.prefix_col = SIZE_MAX;
    }
  }
  // A re-promotion resumes the original cursor, which already sits past
  // every previously dispensed entry (Sec 4.2's kept cursor).
  current_ = table;
  dispensed_this_promotion_ = 0;
  return Status::OK();
}

bool MorselDriver::Fill(ParallelMorsel* morsel) {
  assert(current_ != SIZE_MAX && "Fill before first Promote");
  LegScan& leg = legs_[current_];
  morsel->rids.clear();
  morsel->positions.clear();
  Rid rid;
  while (morsel->rids.size() < morsel_size_ && leg.cursor->Next(&wc_, &rid)) {
    morsel->rids.push_back(rid);
    if (record_positions_) {
      morsel->positions.push_back(leg.cursor->CurrentPosition());
    }
    leg.dispensed += 1;
    ++dispensed_this_promotion_;
  }
  return !morsel->rids.empty();
}

std::optional<ScanPosition> MorselDriver::high_water() const {
  if (current_ == SIZE_MAX || dispensed_this_promotion_ == 0) {
    return std::nullopt;
  }
  return legs_[current_].cursor->CurrentPosition();
}

double MorselDriver::total_entries(size_t table) const {
  return legs_[table].total_raw;
}

double MorselDriver::dispensed_entries(size_t table) const {
  return legs_[table].dispensed;
}

bool MorselDriver::ever_promoted(size_t table) const {
  return legs_[table].cursor != nullptr;
}

size_t MorselDriver::prefix_col(size_t table) const {
  return legs_[table].prefix_col;
}

}  // namespace ajr

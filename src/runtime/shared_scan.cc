#include "runtime/shared_scan.h"

#include <algorithm>
#include <cassert>

namespace ajr {

SharedScanPass::SharedScanPass(std::unique_ptr<ScanCursor> cursor,
                               size_t morsel_size, bool record_positions)
    : cursor_(std::move(cursor)),
      morsel_size_(std::max<size_t>(1, morsel_size)),
      record_positions_(record_positions) {}

size_t SharedScanPass::num_morsels() const {
  std::lock_guard<std::mutex> lock(mu_);
  return morsels_.size();
}

bool SharedScanPass::complete() const {
  std::lock_guard<std::mutex> lock(mu_);
  return complete_;
}

void SharedScanPass::ProduceLocked() {
  assert(!complete_);
  // Mirrors MorselDriver's private fill loop exactly — same cursor call
  // sequence, so a partial final morsel carries its failed Next's charge and
  // the following empty pull becomes the tail, just like a private scan.
  Morsel m;
  WorkCounter wc;
  Rid rid;
  while (m.rids.size() < morsel_size_ && cursor_->Next(&wc, &rid)) {
    m.rids.push_back(rid);
    if (record_positions_) m.positions.push_back(cursor_->CurrentPosition());
  }
  if (m.rids.empty()) {
    complete_ = true;
    tail_work_ = wc.total();
    return;
  }
  m.end = cursor_->CurrentPosition();
  m.work = wc.total();
  morsels_.push_back(std::move(m));
}

SharedScanAttachment::~SharedScanAttachment() {
  if (pass_ == nullptr) return;
  std::lock_guard<std::mutex> lock(pass_->mu_);
  --pass_->live_attachments_;
}

bool SharedScanAttachment::Next(ParallelMorsel* morsel, WorkCounter* wc) {
  if (covered_) return false;
  SharedScanPass& pass = *pass_;
  std::lock_guard<std::mutex> lock(pass.mu_);
  for (;;) {
    if (wrapped_ && next_ == start_) break;  // full circle: covered
    if (next_ < pass.morsels_.size()) {
      const SharedScanPass::Morsel& m = pass.morsels_[next_];
      morsel->rids.assign(m.rids.begin(), m.rids.end());
      morsel->positions.assign(m.positions.begin(), m.positions.end());
      wc->Add(m.work);
      last_end_ = m.end;
      ++next_;
      ++consumed_;
      return true;
    }
    // At the frontier. A completed pass either wraps this attachment or
    // finishes it; an in-flight pass grows by one cooperative production.
    if (pass.complete_) {
      if (!wrapped_ && start_ > 0) {
        wrapped_ = true;
        next_ = 0;
        continue;
      }
      break;  // consumed [start, end) and — if wrapping — [0, start): covered
    }
    pass.ProduceLocked();
    if (!pass.complete_) ++produced_;
  }
  covered_ = true;
  // The tail (the scan's final empty cursor pull) is charged once per
  // attachment, completing work parity with a private scan.
  wc->Add(pass.tail_work_);
  return false;
}

void SharedScanRegistry::AttachOrCreate(
    const std::string& sig,
    const std::function<std::unique_ptr<ScanCursor>()>& make_cursor,
    size_t morsel_size, bool record_positions, SharedScanAttachment* att) {
  std::lock_guard<std::mutex> lock(mu_);
  ++tick_;
  for (Entry& e : passes_) {
    if (e.sig != sig) continue;
    e.last_use = tick_;
    att->pass_ = e.pass;
    att->attached_existing_ = true;
    {
      std::lock_guard<std::mutex> pass_lock(e.pass->mu_);
      // An in-flight pass with live attachments is joined at its frontier
      // (circular attach: ride the producers' momentum). A completed pass
      // — or a stalled one, left incomplete by a finished query — is
      // replayed front to back: the joiner drives production itself, so
      // joining mid-pass would only scramble its scan order (and cost it
      // demotion safety) for nothing.
      att->start_ = e.pass->complete_ || e.pass->live_attachments_ == 0
                        ? 0
                        : e.pass->morsels_.size();
      ++e.pass->live_attachments_;
    }
    att->next_ = att->start_;
    att->wrapped_ = false;
    att->covered_ = false;
    return;
  }
  // No matching pass: create one, evicting the stalest unpinned pass when
  // the table is full (passes with live attachments are pinned; completed
  // and stalled passes are fair game).
  auto evictable = [](const Entry& e) {
    std::lock_guard<std::mutex> pass_lock(e.pass->mu_);
    return e.pass->complete_ || e.pass->live_attachments_ == 0;
  };
  if (passes_.size() >= kMaxRetainedPasses) {
    size_t victim = SIZE_MAX;
    for (size_t i = 0; i < passes_.size(); ++i) {
      if (!evictable(passes_[i])) continue;
      if (victim == SIZE_MAX || passes_[i].last_use < passes_[victim].last_use) {
        victim = i;
      }
    }
    if (victim != SIZE_MAX) passes_.erase(passes_.begin() + victim);
  }
  Entry e;
  e.sig = sig;
  e.pass = std::make_shared<SharedScanPass>(make_cursor(), morsel_size,
                                            record_positions);
  e.pass->live_attachments_ = 1;
  e.last_use = tick_;
  att->pass_ = e.pass;
  att->attached_existing_ = false;
  att->start_ = 0;
  att->next_ = 0;
  att->wrapped_ = false;
  att->covered_ = false;
  passes_.push_back(std::move(e));
}

size_t SharedScanRegistry::num_passes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return passes_.size();
}

}  // namespace ajr

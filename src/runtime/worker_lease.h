// WorkerLease: borrow N thread-pool slots for the duration of one parallel
// operation, without deadlocking on an undersized or busy pool.
//
// The lease submits N tasks; each task first checks (under the lease mutex)
// whether the lease was revoked, and only then runs the user function. The
// caller does its own share of the work on its own thread, then calls
// Finish(): tasks that never started are revoked — they will wake up later,
// see the flag, and return without touching the (by then destroyed) work —
// while tasks already running are waited for. A pool with fewer free
// threads than requested therefore degrades the degree of parallelism
// instead of blocking the operation.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>

#include "runtime/thread_pool.h"

namespace ajr {

class WorkerLease {
 public:
  /// Submits `count` tasks to `pool`; task i invokes `fn(i)`. `fn` is
  /// copied into shared state that outlives the lease object, but the
  /// caller must keep everything `fn` references alive until Finish()
  /// returns (revoked tasks never invoke `fn`).
  WorkerLease(ThreadPool* pool, size_t count, std::function<void(size_t)> fn);

  /// Revokes tasks that have not started and waits for the ones that have.
  /// Idempotent. After it returns no task will touch `fn` again.
  void Finish();

  ~WorkerLease() { Finish(); }

  WorkerLease(const WorkerLease&) = delete;
  WorkerLease& operator=(const WorkerLease&) = delete;

  /// Tasks that actually began running fn (stable only after Finish()).
  size_t started() const;

 private:
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    bool revoked = false;
    size_t started = 0;
    size_t finished = 0;
    std::function<void(size_t)> fn;
  };

  std::shared_ptr<Shared> shared_;
};

}  // namespace ajr

// Predicate binding and evaluation.
//
// BindPredicate resolves column names against a Schema once and lowers the
// expression tree into a flat program over column slots: an array of typed
// compare/membership instructions evaluated in a loop — no virtual calls,
// no Value construction, no per-eval allocation. The dominant shape (a
// conjunction of simple conjuncts) runs as a sequential early-out leaf
// loop; general boolean structure runs as a small postfix program over a
// fixed bool stack.
//
// Programs evaluate RowViews natively (the executor hot path) and also
// accept legacy Value rows (tests, tools, loose rows). String constants are
// resolved against the bound table's StringPool when one is supplied, so an
// equality against an interned string is a single id compare.
//
// Evaluation optionally charges work units so the adaptive layer can
// measure probe cost deterministically.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/work_counter.h"
#include "expr/expr.h"
#include "types/row_view.h"
#include "types/schema.h"
#include "types/string_pool.h"

namespace ajr {

/// A predicate compiled against a fixed schema; evaluates rows to bool.
class BoundPredicate {
 public:
  /// Evaluates the predicate on a typed row view (hot path).
  bool Eval(const RowView& row) const;

  /// Evaluates the predicate on a legacy Value row (which must match the
  /// bound schema).
  bool Eval(const Row& row) const;

  /// Eval plus work accounting (one kPredicateEval unit per call).
  bool EvalCounted(const RowView& row, WorkCounter* wc) const {
    ChargeWork(wc, WorkCounter::kPredicateEval);
    return Eval(row);
  }
  bool EvalCounted(const Row& row, WorkCounter* wc) const {
    ChargeWork(wc, WorkCounter::kPredicateEval);
    return Eval(row);
  }

  /// Introspection (tests): program length and whether the fast
  /// conjunction loop applies.
  size_t num_instructions() const { return program_.size(); }
  bool is_flat_conjunction() const { return flat_; }

 private:
  friend class PredicateCompiler;

  /// Max bool-stack depth for postfix programs; binding rejects deeper
  /// nestings (far beyond any real predicate).
  static constexpr size_t kMaxStack = 64;

  enum class Op : uint8_t {
    kConstBool,   // imm.b
    kCmpI64,      // row[slot] <cmp> imm.i64
    kCmpF64,      // row[slot] <cmp> imm.f64
    kCmpBool,     // row[slot] <cmp> imm.b
    kCmpNum,      // numeric row[slot] <cmp> imm.f64 (cross-type constant)
    kCmpStrId,    // row[slot] ==/!= imm.sid (pool-resolved; aux -> str imm)
    kCmpStr,      // row[slot] <cmp> str_imms_[aux] (byte compare)
    kCmpColI64,   // row[slot] <cmp> row[slot2]
    kCmpColF64,
    kCmpColBool,
    kCmpColNum,   // mixed numeric column pair
    kCmpColStr,
    kInI64,       // row[slot] in i64_sets_[aux]
    kInF64,       // numeric row[slot] in f64_sets_[aux]
    kInStr,       // row[slot] in str_sets_[aux]
    kInBool,      // imm.i64 bitmask: bit0 = false in set, bit1 = true
    kAnd2,        // postfix: pop b, a; push a && b
    kOr2,         // postfix: pop b, a; push a || b
    kNot,         // postfix: negate top of stack
  };

  union Imm {
    bool b;
    int64_t i64;
    double f64;
    uint32_t sid;
  };

  struct Instr {
    Op op;
    CompareOp cmp;
    uint16_t slot;
    uint16_t slot2;
    uint32_t aux;
    Imm imm;
  };

  /// IN-set over strings: sorted bytes always (legacy rows); sorted pool
  /// ids when the predicate was bound with a pool (RowView fast path).
  struct StrSet {
    std::vector<std::string> strs;  ///< sorted
    std::vector<uint32_t> ids;      ///< sorted; only if ids_resolved
    bool ids_resolved = false;
  };

  bool EvalLeaf(const Instr& ins, const RowView& row) const;
  bool EvalLeaf(const Instr& ins, const Row& row) const;

  std::vector<Instr> program_;
  bool flat_ = true;  ///< program is a conjunction of leaves (early-out loop)
  std::vector<std::string> str_imms_;
  std::vector<std::vector<int64_t>> i64_sets_;
  std::vector<std::vector<double>> f64_sets_;
  std::vector<StrSet> str_sets_;
};

using BoundPredicatePtr = std::unique_ptr<const BoundPredicate>;

/// Compiles `expr` (boolean-valued) against `schema`. When `pool` is given
/// (the table's string pool), string equality constants lower to interned-id
/// compares; constants absent from the pool fold to constant false/true.
///
/// Returns InvalidArgument for non-boolean shapes (e.g. a bare literal of
/// non-bool type) or type-mismatched comparisons, NotFound for unknown
/// columns, NotSupported for comparison shapes the engine doesn't evaluate.
/// A null `expr` is the always-true predicate.
StatusOr<BoundPredicatePtr> BindPredicate(const ExprPtr& expr, const Schema& schema,
                                          const StringPool* pool = nullptr);

}  // namespace ajr

// Predicate binding and evaluation.
//
// Bind() resolves column names against a Schema once; the resulting
// BoundPredicate evaluates rows with index lookups only (no name lookups on
// the hot path). Evaluation optionally charges work units so the adaptive
// layer can measure probe cost deterministically.

#pragma once

#include <memory>

#include "common/status.h"
#include "common/work_counter.h"
#include "expr/expr.h"
#include "types/schema.h"

namespace ajr {

/// A predicate compiled against a fixed schema; evaluates rows to bool.
class BoundPredicate {
 public:
  virtual ~BoundPredicate() = default;

  /// Evaluates the predicate on `row` (which must match the bound schema).
  virtual bool Eval(const Row& row) const = 0;

  /// Eval plus work accounting (one kPredicateEval unit per call).
  bool EvalCounted(const Row& row, WorkCounter* wc) const {
    ChargeWork(wc, WorkCounter::kPredicateEval);
    return Eval(row);
  }
};

using BoundPredicatePtr = std::unique_ptr<const BoundPredicate>;

/// Compiles `expr` (boolean-valued) against `schema`.
///
/// Returns InvalidArgument for non-boolean shapes (e.g. a bare literal of
/// non-bool type) and NotFound for unknown columns. A null `expr` is the
/// always-true predicate.
StatusOr<BoundPredicatePtr> BindPredicate(const ExprPtr& expr, const Schema& schema);

}  // namespace ajr

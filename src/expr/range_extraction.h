// Index-range extraction from local predicates.
//
// Given a predicate tree and a target column (the column of a candidate
// index), ExtractRanges() computes the set of key ranges an index scan must
// visit, plus the residual predicate that still has to be evaluated on
// fetched rows. Handles the shapes used by the paper's workloads:
//
//   make = 'Mazda'                             -> one point range
//   salary < 50000                             -> one open range
//   age > 30 AND age <= 60                     -> one bounded range
//   make = 'Chevrolet' OR make = 'Mercedes'    -> two point ranges (Example 1)
//   make IN ('A','B','C')                      -> three point ranges
//
// Conjuncts that are not sargable on the target column become residual.

#pragma once

#include <optional>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "types/value.h"

namespace ajr {

/// One contiguous key range. Absent bound = unbounded on that side.
struct KeyRange {
  std::optional<Value> lo;
  std::optional<Value> hi;
  bool lo_inclusive = true;
  bool hi_inclusive = true;

  /// Point range [v, v].
  static KeyRange Point(Value v) {
    KeyRange r;
    r.lo = v;
    r.hi = std::move(v);
    return r;
  }
  /// Full range (-inf, +inf) — used when an index is scanned without a
  /// sargable predicate.
  static KeyRange All() { return KeyRange{}; }

  /// True if `v` falls inside the range.
  bool Contains(const Value& v) const;

  /// True if the range can match nothing (lo > hi, or lo == hi non-inclusive).
  bool Empty() const;

  std::string ToString() const;
};

/// Result of ExtractRanges.
struct RangeExtraction {
  /// Disjoint, sorted ranges the index scan must cover. If no conjunct was
  /// sargable this is a single KeyRange::All().
  std::vector<KeyRange> ranges;
  /// Conjuncts not absorbed into `ranges` (null if everything was absorbed).
  ExprPtr residual;
  /// True if at least one conjunct was absorbed into the ranges — i.e. the
  /// index actually applies a predicate (paper's S_LPI != 1 case).
  bool sargable = false;
};

/// Extracts index scan ranges for `column` from predicate `expr` (may be
/// null = always true). See file comment for supported shapes.
RangeExtraction ExtractRanges(const ExprPtr& expr, const std::string& column);

/// Intersects two range lists (both sorted & disjoint); result sorted & disjoint.
std::vector<KeyRange> IntersectRanges(const std::vector<KeyRange>& a,
                                      const std::vector<KeyRange>& b);

/// Sorts ranges by lower bound and merges overlaps; drops empty ranges.
std::vector<KeyRange> NormalizeRanges(std::vector<KeyRange> ranges);

}  // namespace ajr

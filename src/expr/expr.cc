#include "expr/expr.h"

#include "common/string_util.h"

namespace ajr {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string ComparisonExpr::ToString() const {
  return StrCat(lhs_->ToString(), " ", CompareOpName(op_), " ", rhs_->ToString());
}

std::string LogicalExpr::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(children_.size());
  for (const auto& c : children_) parts.push_back("(" + c->ToString() + ")");
  return Join(parts, kind() == ExprKind::kAnd ? " AND " : " OR ");
}

std::string InExpr::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const auto& v : values_) parts.push_back(v.ToString());
  return StrCat(column_, " IN (", Join(parts, ", "), ")");
}

ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr Lit(int64_t v) { return Lit(Value(v)); }
ExprPtr Lit(double v) { return Lit(Value(v)); }
ExprPtr Lit(const char* v) { return Lit(Value(v)); }
ExprPtr Col(std::string name) { return std::make_shared<ColumnRefExpr>(std::move(name)); }

ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ComparisonExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr ColCmp(std::string column, CompareOp op, Value constant) {
  return Cmp(op, Col(std::move(column)), Lit(std::move(constant)));
}

namespace {

ExprPtr MakeLogical(ExprKind kind, std::vector<ExprPtr> children) {
  std::vector<ExprPtr> flat;
  for (auto& c : children) {
    if (c == nullptr) continue;
    if (c->kind() == kind) {
      const auto& nested = static_cast<const LogicalExpr&>(*c).children();
      flat.insert(flat.end(), nested.begin(), nested.end());
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return nullptr;
  if (flat.size() == 1) return flat[0];
  return std::make_shared<LogicalExpr>(kind, std::move(flat));
}

}  // namespace

ExprPtr And(std::vector<ExprPtr> children) {
  return MakeLogical(ExprKind::kAnd, std::move(children));
}

ExprPtr Or(std::vector<ExprPtr> children) {
  return MakeLogical(ExprKind::kOr, std::move(children));
}

ExprPtr Not(ExprPtr child) { return std::make_shared<NotExpr>(std::move(child)); }

ExprPtr In(std::string column, std::vector<Value> values) {
  return std::make_shared<InExpr>(std::move(column), std::move(values));
}

ExprPtr AndMaybe(ExprPtr a, ExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  return And({std::move(a), std::move(b)});
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& e) {
  if (e == nullptr) return {};
  if (e->kind() != ExprKind::kAnd) return {e};
  return static_cast<const LogicalExpr&>(*e).children();
}

}  // namespace ajr

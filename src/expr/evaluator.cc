#include "expr/evaluator.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/string_util.h"

namespace ajr {

namespace {

/// Always-true predicate (for null expression trees).
class TruePredicate final : public BoundPredicate {
 public:
  bool Eval(const Row&) const override { return true; }
};

/// column <op> constant — the dominant predicate shape; specialized to avoid
/// any indirection beyond one virtual call.
class ColConstPredicate final : public BoundPredicate {
 public:
  ColConstPredicate(size_t col, CompareOp op, Value constant)
      : col_(col), op_(op), constant_(std::move(constant)) {}

  bool Eval(const Row& row) const override {
    int c = row[col_].Compare(constant_);
    switch (op_) {
      case CompareOp::kEq:
        return c == 0;
      case CompareOp::kNe:
        return c != 0;
      case CompareOp::kLt:
        return c < 0;
      case CompareOp::kLe:
        return c <= 0;
      case CompareOp::kGt:
        return c > 0;
      case CompareOp::kGe:
        return c >= 0;
    }
    return false;
  }

 private:
  size_t col_;
  CompareOp op_;
  Value constant_;
};

/// column <op> column (same table).
class ColColPredicate final : public BoundPredicate {
 public:
  ColColPredicate(size_t lhs, CompareOp op, size_t rhs) : lhs_(lhs), op_(op), rhs_(rhs) {}

  bool Eval(const Row& row) const override {
    int c = row[lhs_].Compare(row[rhs_]);
    switch (op_) {
      case CompareOp::kEq:
        return c == 0;
      case CompareOp::kNe:
        return c != 0;
      case CompareOp::kLt:
        return c < 0;
      case CompareOp::kLe:
        return c <= 0;
      case CompareOp::kGt:
        return c > 0;
      case CompareOp::kGe:
        return c >= 0;
    }
    return false;
  }

 private:
  size_t lhs_;
  CompareOp op_;
  size_t rhs_;
};

class AndPredicate final : public BoundPredicate {
 public:
  explicit AndPredicate(std::vector<BoundPredicatePtr> children)
      : children_(std::move(children)) {}
  bool Eval(const Row& row) const override {
    for (const auto& c : children_) {
      if (!c->Eval(row)) return false;
    }
    return true;
  }

 private:
  std::vector<BoundPredicatePtr> children_;
};

class OrPredicate final : public BoundPredicate {
 public:
  explicit OrPredicate(std::vector<BoundPredicatePtr> children)
      : children_(std::move(children)) {}
  bool Eval(const Row& row) const override {
    for (const auto& c : children_) {
      if (c->Eval(row)) return true;
    }
    return false;
  }

 private:
  std::vector<BoundPredicatePtr> children_;
};

class NotPredicate final : public BoundPredicate {
 public:
  explicit NotPredicate(BoundPredicatePtr child) : child_(std::move(child)) {}
  bool Eval(const Row& row) const override { return !child_->Eval(row); }

 private:
  BoundPredicatePtr child_;
};

class InPredicate final : public BoundPredicate {
 public:
  InPredicate(size_t col, std::vector<Value> values)
      : col_(col), values_(std::move(values)) {
    std::sort(values_.begin(), values_.end());
  }
  bool Eval(const Row& row) const override {
    return std::binary_search(values_.begin(), values_.end(), row[col_]);
  }

 private:
  size_t col_;
  std::vector<Value> values_;
};

class ConstBoolPredicate final : public BoundPredicate {
 public:
  explicit ConstBoolPredicate(bool v) : v_(v) {}
  bool Eval(const Row&) const override { return v_; }

 private:
  bool v_;
};

}  // namespace

StatusOr<BoundPredicatePtr> BindPredicate(const ExprPtr& expr, const Schema& schema) {
  if (expr == nullptr) {
    return BoundPredicatePtr(std::make_unique<TruePredicate>());
  }
  switch (expr->kind()) {
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(*expr);
      if (lit.value().type() != DataType::kBool) {
        return Status::InvalidArgument(
            StrCat("non-boolean literal used as predicate: ", lit.value().ToString()));
      }
      return BoundPredicatePtr(std::make_unique<ConstBoolPredicate>(lit.value().AsBool()));
    }
    case ExprKind::kColumnRef:
      return Status::InvalidArgument(
          StrCat("bare column reference used as predicate: ", expr->ToString()));
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(*expr);
      const Expr* l = cmp.lhs().get();
      const Expr* r = cmp.rhs().get();
      // Normalize constant <op> column into column <flipped-op> constant.
      CompareOp op = cmp.op();
      if (l->kind() == ExprKind::kLiteral && r->kind() == ExprKind::kColumnRef) {
        std::swap(l, r);
        switch (cmp.op()) {
          case CompareOp::kLt:
            op = CompareOp::kGt;
            break;
          case CompareOp::kLe:
            op = CompareOp::kGe;
            break;
          case CompareOp::kGt:
            op = CompareOp::kLt;
            break;
          case CompareOp::kGe:
            op = CompareOp::kLe;
            break;
          default:
            break;
        }
      }
      if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kLiteral) {
        AJR_ASSIGN_OR_RETURN(
            size_t col,
            schema.ColumnIndex(static_cast<const ColumnRefExpr*>(l)->name()));
        return BoundPredicatePtr(std::make_unique<ColConstPredicate>(
            col, op, static_cast<const LiteralExpr*>(r)->value()));
      }
      if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kColumnRef) {
        AJR_ASSIGN_OR_RETURN(
            size_t lc,
            schema.ColumnIndex(static_cast<const ColumnRefExpr*>(l)->name()));
        AJR_ASSIGN_OR_RETURN(
            size_t rc,
            schema.ColumnIndex(static_cast<const ColumnRefExpr*>(r)->name()));
        return BoundPredicatePtr(std::make_unique<ColColPredicate>(lc, op, rc));
      }
      return Status::NotSupported(
          StrCat("unsupported comparison shape: ", expr->ToString()));
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const auto& logical = static_cast<const LogicalExpr&>(*expr);
      std::vector<BoundPredicatePtr> children;
      children.reserve(logical.children().size());
      for (const auto& c : logical.children()) {
        AJR_ASSIGN_OR_RETURN(auto bound, BindPredicate(c, schema));
        children.push_back(std::move(bound));
      }
      if (expr->kind() == ExprKind::kAnd) {
        return BoundPredicatePtr(std::make_unique<AndPredicate>(std::move(children)));
      }
      return BoundPredicatePtr(std::make_unique<OrPredicate>(std::move(children)));
    }
    case ExprKind::kNot: {
      const auto& n = static_cast<const NotExpr&>(*expr);
      AJR_ASSIGN_OR_RETURN(auto bound, BindPredicate(n.child(), schema));
      return BoundPredicatePtr(std::make_unique<NotPredicate>(std::move(bound)));
    }
    case ExprKind::kIn: {
      const auto& in = static_cast<const InExpr&>(*expr);
      AJR_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(in.column()));
      return BoundPredicatePtr(std::make_unique<InPredicate>(col, in.values()));
    }
  }
  return Status::Internal("unreachable expression kind");
}

}  // namespace ajr

#include "expr/evaluator.h"

#include <algorithm>
#include <cassert>

#include "common/check.h"
#include "common/string_util.h"

namespace ajr {

namespace {

inline bool CmpHolds(int c, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

template <typename T>
inline int ThreeWay(T a, T b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}

inline int SignOf(int c) { return c < 0 ? -1 : (c > 0 ? 1 : 0); }

inline bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

}  // namespace

// --- Evaluation ------------------------------------------------------------

bool BoundPredicate::EvalLeaf(const Instr& ins, const RowView& row) const {
  switch (ins.op) {
    case Op::kConstBool:
      return ins.imm.b;
    case Op::kCmpI64:
      return CmpHolds(ThreeWay(row.GetInt64(ins.slot), ins.imm.i64), ins.cmp);
    case Op::kCmpF64:
      return CmpHolds(ThreeWay(row.GetDouble(ins.slot), ins.imm.f64), ins.cmp);
    case Op::kCmpBool:
      return CmpHolds((row.GetBool(ins.slot) ? 1 : 0) - (ins.imm.b ? 1 : 0), ins.cmp);
    case Op::kCmpNum:
      return CmpHolds(ThreeWay(row.GetNumeric(ins.slot), ins.imm.f64), ins.cmp);
    case Op::kCmpStrId: {
      bool eq = row.GetStringId(ins.slot) == ins.imm.sid;
      return ins.cmp == CompareOp::kEq ? eq : !eq;
    }
    case Op::kCmpStr:
      return CmpHolds(SignOf(row.GetString(ins.slot).compare(str_imms_[ins.aux])),
                      ins.cmp);
    case Op::kCmpColI64:
      return CmpHolds(ThreeWay(row.GetInt64(ins.slot), row.GetInt64(ins.slot2)),
                      ins.cmp);
    case Op::kCmpColF64:
      return CmpHolds(ThreeWay(row.GetDouble(ins.slot), row.GetDouble(ins.slot2)),
                      ins.cmp);
    case Op::kCmpColBool:
      return CmpHolds((row.GetBool(ins.slot) ? 1 : 0) - (row.GetBool(ins.slot2) ? 1 : 0),
                      ins.cmp);
    case Op::kCmpColNum:
      return CmpHolds(ThreeWay(row.GetNumeric(ins.slot), row.GetNumeric(ins.slot2)),
                      ins.cmp);
    case Op::kCmpColStr: {
      // Same table, same pool: equality is id equality; order needs bytes.
      if (ins.cmp == CompareOp::kEq || ins.cmp == CompareOp::kNe) {
        bool eq = row.GetStringId(ins.slot) == row.GetStringId(ins.slot2);
        return ins.cmp == CompareOp::kEq ? eq : !eq;
      }
      return CmpHolds(SignOf(row.GetString(ins.slot).compare(row.GetString(ins.slot2))),
                      ins.cmp);
    }
    case Op::kInI64: {
      const auto& set = i64_sets_[ins.aux];
      return std::binary_search(set.begin(), set.end(), row.GetInt64(ins.slot));
    }
    case Op::kInF64: {
      const auto& set = f64_sets_[ins.aux];
      return std::binary_search(set.begin(), set.end(), row.GetNumeric(ins.slot));
    }
    case Op::kInStr: {
      const StrSet& set = str_sets_[ins.aux];
      if (set.ids_resolved) {
        return std::binary_search(set.ids.begin(), set.ids.end(),
                                  row.GetStringId(ins.slot));
      }
      std::string_view s = row.GetString(ins.slot);
      return std::binary_search(set.strs.begin(), set.strs.end(), s);
    }
    case Op::kInBool: {
      int bit = row.GetBool(ins.slot) ? 2 : 1;
      return (ins.imm.i64 & bit) != 0;
    }
    case Op::kAnd2:
    case Op::kOr2:
    case Op::kNot:
      break;
  }
  CheckFailed("EvalLeaf on non-leaf instruction", __FILE__, __LINE__);
}

bool BoundPredicate::EvalLeaf(const Instr& ins, const Row& row) const {
  switch (ins.op) {
    case Op::kConstBool:
      return ins.imm.b;
    case Op::kCmpI64:
      return CmpHolds(ThreeWay(row[ins.slot].AsInt64(), ins.imm.i64), ins.cmp);
    case Op::kCmpF64:
      return CmpHolds(ThreeWay(row[ins.slot].AsDouble(), ins.imm.f64), ins.cmp);
    case Op::kCmpBool:
      return CmpHolds((row[ins.slot].AsBool() ? 1 : 0) - (ins.imm.b ? 1 : 0), ins.cmp);
    case Op::kCmpNum:
      return CmpHolds(ThreeWay(row[ins.slot].AsNumeric(), ins.imm.f64), ins.cmp);
    case Op::kCmpStrId:
    case Op::kCmpStr:
      return CmpHolds(
          SignOf(row[ins.slot].AsString().compare(str_imms_[ins.aux])), ins.cmp);
    case Op::kCmpColI64:
      return CmpHolds(ThreeWay(row[ins.slot].AsInt64(), row[ins.slot2].AsInt64()),
                      ins.cmp);
    case Op::kCmpColF64:
      return CmpHolds(ThreeWay(row[ins.slot].AsDouble(), row[ins.slot2].AsDouble()),
                      ins.cmp);
    case Op::kCmpColBool:
      return CmpHolds(
          (row[ins.slot].AsBool() ? 1 : 0) - (row[ins.slot2].AsBool() ? 1 : 0),
          ins.cmp);
    case Op::kCmpColNum:
      return CmpHolds(ThreeWay(row[ins.slot].AsNumeric(), row[ins.slot2].AsNumeric()),
                      ins.cmp);
    case Op::kCmpColStr:
      return CmpHolds(
          SignOf(row[ins.slot].AsString().compare(row[ins.slot2].AsString())),
          ins.cmp);
    case Op::kInI64: {
      const auto& set = i64_sets_[ins.aux];
      return std::binary_search(set.begin(), set.end(), row[ins.slot].AsInt64());
    }
    case Op::kInF64: {
      const auto& set = f64_sets_[ins.aux];
      return std::binary_search(set.begin(), set.end(), row[ins.slot].AsNumeric());
    }
    case Op::kInStr: {
      const StrSet& set = str_sets_[ins.aux];
      return std::binary_search(set.strs.begin(), set.strs.end(),
                                row[ins.slot].AsString());
    }
    case Op::kInBool: {
      int bit = row[ins.slot].AsBool() ? 2 : 1;
      return (ins.imm.i64 & bit) != 0;
    }
    case Op::kAnd2:
    case Op::kOr2:
    case Op::kNot:
      break;
  }
  CheckFailed("EvalLeaf on non-leaf instruction", __FILE__, __LINE__);
}

bool BoundPredicate::Eval(const RowView& row) const {
  if (flat_) {
    for (const Instr& ins : program_) {
      if (!EvalLeaf(ins, row)) return false;
    }
    return true;
  }
  bool stack[kMaxStack];
  size_t sp = 0;
  for (const Instr& ins : program_) {
    switch (ins.op) {
      case Op::kAnd2: {
        bool b = stack[--sp];
        stack[sp - 1] = stack[sp - 1] && b;
        break;
      }
      case Op::kOr2: {
        bool b = stack[--sp];
        stack[sp - 1] = stack[sp - 1] || b;
        break;
      }
      case Op::kNot:
        stack[sp - 1] = !stack[sp - 1];
        break;
      default:
        stack[sp++] = EvalLeaf(ins, row);
        break;
    }
  }
  return sp == 0 || stack[sp - 1];
}

bool BoundPredicate::Eval(const Row& row) const {
  if (flat_) {
    for (const Instr& ins : program_) {
      if (!EvalLeaf(ins, row)) return false;
    }
    return true;
  }
  bool stack[kMaxStack];
  size_t sp = 0;
  for (const Instr& ins : program_) {
    switch (ins.op) {
      case Op::kAnd2: {
        bool b = stack[--sp];
        stack[sp - 1] = stack[sp - 1] && b;
        break;
      }
      case Op::kOr2: {
        bool b = stack[--sp];
        stack[sp - 1] = stack[sp - 1] || b;
        break;
      }
      case Op::kNot:
        stack[sp - 1] = !stack[sp - 1];
        break;
      default:
        stack[sp++] = EvalLeaf(ins, row);
        break;
    }
  }
  return sp == 0 || stack[sp - 1];
}

// --- Compilation -----------------------------------------------------------

/// Lowers expression trees into BoundPredicate programs.
class PredicateCompiler {
 public:
  PredicateCompiler(const Schema& schema, const StringPool* pool, BoundPredicate* out)
      : schema_(schema), pool_(pool), out_(out) {}

  using Op = BoundPredicate::Op;
  using Instr = BoundPredicate::Instr;

  /// True if `e` lowers to exactly one leaf instruction.
  static bool IsLeaf(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::kLiteral:
      case ExprKind::kComparison:
      case ExprKind::kIn:
        return true;
      default:
        return false;
    }
  }

  Status CompileRoot(const Expr& e) {
    if (e.kind() == ExprKind::kAnd) {
      const auto& logical = static_cast<const LogicalExpr&>(e);
      bool all_leaves = !logical.children().empty();
      for (const auto& c : logical.children()) all_leaves &= IsLeaf(*c);
      if (all_leaves) {
        // The dominant shape: conjunction of simple conjuncts. No postfix
        // reductions; Eval runs the early-out leaf loop.
        out_->flat_ = true;
        for (const auto& c : logical.children()) {
          AJR_RETURN_IF_ERROR(CompileLeaf(*c));
        }
        return Status::OK();
      }
    }
    if (IsLeaf(e)) {
      out_->flat_ = true;
      return CompileLeaf(e);
    }
    out_->flat_ = false;
    AJR_RETURN_IF_ERROR(CompilePostfix(e));
    return CheckStackDepth();
  }

 private:
  Status CompilePostfix(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::kLiteral:
      case ExprKind::kComparison:
      case ExprKind::kIn:
        return CompileLeaf(e);
      case ExprKind::kColumnRef:
        return Status::InvalidArgument(
            StrCat("bare column reference used as predicate: ", e.ToString()));
      case ExprKind::kAnd:
      case ExprKind::kOr: {
        const auto& logical = static_cast<const LogicalExpr&>(e);
        Op fold = e.kind() == ExprKind::kAnd ? Op::kAnd2 : Op::kOr2;
        if (logical.children().empty()) {
          // Empty AND is true, empty OR is false (vacuous truth).
          return EmitConstBool(e.kind() == ExprKind::kAnd);
        }
        for (size_t i = 0; i < logical.children().size(); ++i) {
          AJR_RETURN_IF_ERROR(CompilePostfix(*logical.children()[i]));
          if (i > 0) Emit({fold, CompareOp::kEq, 0, 0, 0, {}});
        }
        return Status::OK();
      }
      case ExprKind::kNot: {
        const auto& n = static_cast<const NotExpr&>(e);
        AJR_RETURN_IF_ERROR(CompilePostfix(*n.child()));
        Emit({Op::kNot, CompareOp::kEq, 0, 0, 0, {}});
        return Status::OK();
      }
    }
    return Status::Internal("unreachable expression kind");
  }

  Status CompileLeaf(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::kLiteral: {
        const auto& lit = static_cast<const LiteralExpr&>(e);
        if (lit.value().type() != DataType::kBool) {
          return Status::InvalidArgument(
              StrCat("non-boolean literal used as predicate: ", lit.value().ToString()));
        }
        return EmitConstBool(lit.value().AsBool());
      }
      case ExprKind::kComparison:
        return CompileComparison(static_cast<const ComparisonExpr&>(e));
      case ExprKind::kIn:
        return CompileIn(static_cast<const InExpr&>(e));
      case ExprKind::kColumnRef:
        return Status::InvalidArgument(
            StrCat("bare column reference used as predicate: ", e.ToString()));
      default:
        return Status::Internal("CompileLeaf on non-leaf expr");
    }
  }

  Status CompileComparison(const ComparisonExpr& cmp) {
    const Expr* l = cmp.lhs().get();
    const Expr* r = cmp.rhs().get();
    // Normalize constant <op> column into column <flipped-op> constant.
    CompareOp op = cmp.op();
    if (l->kind() == ExprKind::kLiteral && r->kind() == ExprKind::kColumnRef) {
      std::swap(l, r);
      switch (cmp.op()) {
        case CompareOp::kLt:
          op = CompareOp::kGt;
          break;
        case CompareOp::kLe:
          op = CompareOp::kGe;
          break;
        case CompareOp::kGt:
          op = CompareOp::kLt;
          break;
        case CompareOp::kGe:
          op = CompareOp::kLe;
          break;
        default:
          break;
      }
    }
    if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kLiteral) {
      AJR_ASSIGN_OR_RETURN(
          size_t col, schema_.ColumnIndex(static_cast<const ColumnRefExpr*>(l)->name()));
      return CompileColConst(col, op, static_cast<const LiteralExpr*>(r)->value(),
                             cmp.ToString());
    }
    if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kColumnRef) {
      AJR_ASSIGN_OR_RETURN(
          size_t lc, schema_.ColumnIndex(static_cast<const ColumnRefExpr*>(l)->name()));
      AJR_ASSIGN_OR_RETURN(
          size_t rc, schema_.ColumnIndex(static_cast<const ColumnRefExpr*>(r)->name()));
      return CompileColCol(lc, op, rc, cmp.ToString());
    }
    return Status::NotSupported(
        StrCat("unsupported comparison shape: ", cmp.ToString()));
  }

  Status CompileColConst(size_t col, CompareOp op, const Value& v,
                         const std::string& what) {
    DataType ct = schema_.column(col).type;
    Instr ins{};
    ins.cmp = op;
    ins.slot = static_cast<uint16_t>(col);
    if (ct == v.type()) {
      switch (ct) {
        case DataType::kInt64:
          ins.op = Op::kCmpI64;
          ins.imm.i64 = v.AsInt64();
          break;
        case DataType::kDouble:
          ins.op = Op::kCmpF64;
          ins.imm.f64 = v.AsDouble();
          break;
        case DataType::kBool:
          ins.op = Op::kCmpBool;
          ins.imm.b = v.AsBool();
          break;
        case DataType::kString: {
          // Equality against an interned string is one id compare. A
          // constant the pool has never seen can't equal any stored row.
          if (pool_ != nullptr && (op == CompareOp::kEq || op == CompareOp::kNe)) {
            auto id = pool_->Find(v.AsString());
            if (!id.has_value()) return EmitConstBool(op == CompareOp::kNe);
            ins.op = Op::kCmpStrId;
            ins.imm.sid = *id;
            ins.aux = AddStrImm(v.AsString());
            break;
          }
          ins.op = Op::kCmpStr;
          ins.aux = AddStrImm(v.AsString());
          break;
        }
      }
      Emit(ins);
      return Status::OK();
    }
    if (IsNumeric(ct) && IsNumeric(v.type())) {
      ins.op = Op::kCmpNum;
      ins.imm.f64 = v.AsNumeric();
      Emit(ins);
      return Status::OK();
    }
    return Status::InvalidArgument(
        StrCat("type mismatch in comparison ", what, ": column is ", DataTypeName(ct),
               ", constant is ", DataTypeName(v.type())));
  }

  Status CompileColCol(size_t lc, CompareOp op, size_t rc, const std::string& what) {
    DataType lt = schema_.column(lc).type;
    DataType rt = schema_.column(rc).type;
    Instr ins{};
    ins.cmp = op;
    ins.slot = static_cast<uint16_t>(lc);
    ins.slot2 = static_cast<uint16_t>(rc);
    if (lt == rt) {
      switch (lt) {
        case DataType::kInt64:
          ins.op = Op::kCmpColI64;
          break;
        case DataType::kDouble:
          ins.op = Op::kCmpColF64;
          break;
        case DataType::kBool:
          ins.op = Op::kCmpColBool;
          break;
        case DataType::kString:
          ins.op = Op::kCmpColStr;
          break;
      }
      Emit(ins);
      return Status::OK();
    }
    if (IsNumeric(lt) && IsNumeric(rt)) {
      ins.op = Op::kCmpColNum;
      Emit(ins);
      return Status::OK();
    }
    return Status::InvalidArgument(
        StrCat("type mismatch in comparison ", what, ": ", DataTypeName(lt), " vs ",
               DataTypeName(rt)));
  }

  Status CompileIn(const InExpr& in) {
    AJR_ASSIGN_OR_RETURN(size_t col, schema_.ColumnIndex(in.column()));
    DataType ct = schema_.column(col).type;
    if (in.values().empty()) return EmitConstBool(false);

    bool all_numeric = true;
    bool all_i64 = true;
    bool all_str = true;
    bool all_bool = true;
    for (const Value& v : in.values()) {
      all_numeric &= IsNumeric(v.type());
      all_i64 &= v.type() == DataType::kInt64;
      all_str &= v.type() == DataType::kString;
      all_bool &= v.type() == DataType::kBool;
    }

    Instr ins{};
    ins.cmp = CompareOp::kEq;
    ins.slot = static_cast<uint16_t>(col);
    switch (ct) {
      case DataType::kInt64: {
        if (all_i64) {
          std::vector<int64_t> set;
          set.reserve(in.values().size());
          for (const Value& v : in.values()) set.push_back(v.AsInt64());
          std::sort(set.begin(), set.end());
          ins.op = Op::kInI64;
          ins.aux = static_cast<uint32_t>(out_->i64_sets_.size());
          out_->i64_sets_.push_back(std::move(set));
          Emit(ins);
          return Status::OK();
        }
        if (all_numeric) return EmitInF64(ins, in);
        break;
      }
      case DataType::kDouble: {
        if (all_numeric) return EmitInF64(ins, in);
        break;
      }
      case DataType::kString: {
        if (all_str) {
          BoundPredicate::StrSet set;
          set.strs.reserve(in.values().size());
          for (const Value& v : in.values()) set.strs.push_back(v.AsString());
          std::sort(set.strs.begin(), set.strs.end());
          if (pool_ != nullptr) {
            // Resolve to ids; strings the pool has never seen match nothing
            // and are simply dropped from the id set.
            set.ids_resolved = true;
            for (const std::string& s : set.strs) {
              auto id = pool_->Find(s);
              if (id.has_value()) set.ids.push_back(*id);
            }
            std::sort(set.ids.begin(), set.ids.end());
          }
          ins.op = Op::kInStr;
          ins.aux = static_cast<uint32_t>(out_->str_sets_.size());
          out_->str_sets_.push_back(std::move(set));
          Emit(ins);
          return Status::OK();
        }
        break;
      }
      case DataType::kBool: {
        if (all_bool) {
          int64_t mask = 0;
          for (const Value& v : in.values()) mask |= v.AsBool() ? 2 : 1;
          ins.op = Op::kInBool;
          ins.imm.i64 = mask;
          Emit(ins);
          return Status::OK();
        }
        break;
      }
    }
    return Status::InvalidArgument(
        StrCat("type mismatch in ", in.ToString(), ": column is ", DataTypeName(ct)));
  }

  Status EmitInF64(Instr ins, const InExpr& in) {
    std::vector<double> set;
    set.reserve(in.values().size());
    for (const Value& v : in.values()) set.push_back(v.AsNumeric());
    std::sort(set.begin(), set.end());
    ins.op = Op::kInF64;
    ins.aux = static_cast<uint32_t>(out_->f64_sets_.size());
    out_->f64_sets_.push_back(std::move(set));
    Emit(ins);
    return Status::OK();
  }

  Status EmitConstBool(bool b) {
    Instr ins{};
    ins.op = Op::kConstBool;
    ins.imm.b = b;
    Emit(ins);
    return Status::OK();
  }

  uint32_t AddStrImm(const std::string& s) {
    out_->str_imms_.push_back(s);
    return static_cast<uint32_t>(out_->str_imms_.size() - 1);
  }

  void Emit(const Instr& ins) { out_->program_.push_back(ins); }

  /// Simulates the postfix stack; rejects programs deeper than kMaxStack.
  Status CheckStackDepth() const {
    size_t sp = 0, max_sp = 0;
    for (const Instr& ins : out_->program_) {
      switch (ins.op) {
        case Op::kAnd2:
        case Op::kOr2:
          if (sp < 2) return Status::Internal("postfix underflow");
          --sp;
          break;
        case Op::kNot:
          if (sp < 1) return Status::Internal("postfix underflow");
          break;
        default:
          ++sp;
          max_sp = std::max(max_sp, sp);
          break;
      }
    }
    if (max_sp > BoundPredicate::kMaxStack) {
      return Status::InvalidArgument("predicate nesting too deep");
    }
    return Status::OK();
  }

  const Schema& schema_;
  const StringPool* pool_;
  BoundPredicate* out_;
};

StatusOr<BoundPredicatePtr> BindPredicate(const ExprPtr& expr, const Schema& schema,
                                          const StringPool* pool) {
  auto bound = std::make_unique<BoundPredicate>();
  if (expr == nullptr) {
    // Empty program in flat mode: the always-true predicate.
    return BoundPredicatePtr(std::move(bound));
  }
  PredicateCompiler compiler(schema, pool, bound.get());
  AJR_RETURN_IF_ERROR(compiler.CompileRoot(*expr));
  return BoundPredicatePtr(std::move(bound));
}

}  // namespace ajr

// Expression trees for local (single-table) predicates.
//
// AJR represents a query's WHERE clause as (a) per-table local predicate
// trees built from these nodes and (b) binary equi-join edges (see
// optimize/query.h). Expression trees are immutable and shared via
// shared_ptr, so plan rewrites (adding positional predicates, splitting
// index ranges) can freely recombine subtrees.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/schema.h"
#include "types/value.h"

namespace ajr {

/// Expression node kind.
enum class ExprKind : uint8_t {
  kLiteral,     ///< constant Value
  kColumnRef,   ///< column by name (resolved at Bind time)
  kComparison,  ///< lhs <op> rhs
  kAnd,         ///< conjunction over >= 2 children
  kOr,          ///< disjunction over >= 2 children
  kNot,         ///< negation
  kIn,          ///< column IN (v1, .., vn)
};

/// Comparison operator for kComparison nodes.
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Renders an operator ("=", "<>", "<", ...).
const char* CompareOpName(CompareOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression tree node.
class Expr {
 public:
  virtual ~Expr() = default;
  ExprKind kind() const { return kind_; }

  /// Renders the expression as SQL-ish text.
  virtual std::string ToString() const = 0;

 protected:
  explicit Expr(ExprKind kind) : kind_(kind) {}

 private:
  ExprKind kind_;
};

/// Constant value.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value_(std::move(v)) {}
  const Value& value() const { return value_; }
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

/// Reference to a column of the (single) table the predicate is local to.
class ColumnRefExpr : public Expr {
 public:
  explicit ColumnRefExpr(std::string name)
      : Expr(ExprKind::kColumnRef), name_(std::move(name)) {}
  const std::string& name() const { return name_; }
  std::string ToString() const override { return name_; }

 private:
  std::string name_;
};

/// Binary comparison.
class ComparisonExpr : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(ExprKind::kComparison), op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  CompareOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }
  std::string ToString() const override;

 private:
  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// N-ary AND / OR.
class LogicalExpr : public Expr {
 public:
  LogicalExpr(ExprKind kind, std::vector<ExprPtr> children)
      : Expr(kind), children_(std::move(children)) {}
  const std::vector<ExprPtr>& children() const { return children_; }
  std::string ToString() const override;

 private:
  std::vector<ExprPtr> children_;
};

/// NOT child.
class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr child) : Expr(ExprKind::kNot), child_(std::move(child)) {}
  const ExprPtr& child() const { return child_; }
  std::string ToString() const override { return "NOT (" + child_->ToString() + ")"; }

 private:
  ExprPtr child_;
};

/// column IN (v1, .., vn). Values must share one type.
class InExpr : public Expr {
 public:
  InExpr(std::string column, std::vector<Value> values)
      : Expr(ExprKind::kIn), column_(std::move(column)), values_(std::move(values)) {}
  const std::string& column() const { return column_; }
  const std::vector<Value>& values() const { return values_; }
  std::string ToString() const override;

 private:
  std::string column_;
  std::vector<Value> values_;
};

// ---- Builder helpers ------------------------------------------------------

ExprPtr Lit(Value v);
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(const char* v);
ExprPtr Col(std::string name);
ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs);
/// column <op> constant — the common shape in the DMV templates.
ExprPtr ColCmp(std::string column, CompareOp op, Value constant);
ExprPtr And(std::vector<ExprPtr> children);  ///< flattens nested ANDs; empty -> nullptr
ExprPtr Or(std::vector<ExprPtr> children);   ///< flattens nested ORs; empty -> nullptr
ExprPtr Not(ExprPtr child);
ExprPtr In(std::string column, std::vector<Value> values);

/// Conjunction of `a` and `b` where either may be null (null = TRUE).
ExprPtr AndMaybe(ExprPtr a, ExprPtr b);

/// Splits an AND tree into its conjunct list (non-AND expr -> single element;
/// null -> empty list).
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& e);

}  // namespace ajr

#include "expr/range_extraction.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace ajr {

namespace {

// Compares lower bounds; nullopt = -infinity; at equal values an inclusive
// bound is "lower" (admits more).
int CompareLowerBounds(const KeyRange& a, const KeyRange& b) {
  if (!a.lo.has_value() && !b.lo.has_value()) return 0;
  if (!a.lo.has_value()) return -1;
  if (!b.lo.has_value()) return 1;
  int c = a.lo->Compare(*b.lo);
  if (c != 0) return c;
  if (a.lo_inclusive == b.lo_inclusive) return 0;
  return a.lo_inclusive ? -1 : 1;
}

// Compares upper bounds; nullopt = +infinity; at equal values an inclusive
// bound is "higher" (admits more).
int CompareUpperBounds(const KeyRange& a, const KeyRange& b) {
  if (!a.hi.has_value() && !b.hi.has_value()) return 0;
  if (!a.hi.has_value()) return 1;
  if (!b.hi.has_value()) return -1;
  int c = a.hi->Compare(*b.hi);
  if (c != 0) return c;
  if (a.hi_inclusive == b.hi_inclusive) return 0;
  return a.hi_inclusive ? 1 : -1;
}

// Intersection of two single ranges; may be empty.
KeyRange IntersectOne(const KeyRange& a, const KeyRange& b) {
  KeyRange out;
  const KeyRange& lo_src = CompareLowerBounds(a, b) >= 0 ? a : b;
  out.lo = lo_src.lo;
  out.lo_inclusive = lo_src.lo_inclusive;
  const KeyRange& hi_src = CompareUpperBounds(a, b) <= 0 ? a : b;
  out.hi = hi_src.hi;
  out.hi_inclusive = hi_src.hi_inclusive;
  return out;
}

// True if ranges a and b (a.lo <= b.lo) overlap.
bool Overlaps(const KeyRange& a, const KeyRange& b) {
  if (!a.hi.has_value() || !b.lo.has_value()) return true;
  int c = a.hi->Compare(*b.lo);
  if (c != 0) return c > 0;
  return a.hi_inclusive && b.lo_inclusive;
}

// Converts a sargable comparison (col <op> const, already normalized so the
// column is on the left) into a range. kNe is not sargable here.
std::optional<KeyRange> RangeFromComparison(CompareOp op, Value constant) {
  KeyRange r;
  switch (op) {
    case CompareOp::kEq:
      return KeyRange::Point(std::move(constant));
    case CompareOp::kLt:
      r.hi = std::move(constant);
      r.hi_inclusive = false;
      return r;
    case CompareOp::kLe:
      r.hi = std::move(constant);
      return r;
    case CompareOp::kGt:
      r.lo = std::move(constant);
      r.lo_inclusive = false;
      return r;
    case CompareOp::kGe:
      r.lo = std::move(constant);
      return r;
    case CompareOp::kNe:
      return std::nullopt;
  }
  return std::nullopt;
}

// If `e` is `target <op> const` (either operand order), returns the
// normalized (op, const) with the column on the left.
std::optional<std::pair<CompareOp, Value>> AsColConst(const Expr& e,
                                                      const std::string& target) {
  if (e.kind() != ExprKind::kComparison) return std::nullopt;
  const auto& cmp = static_cast<const ComparisonExpr&>(e);
  const Expr* l = cmp.lhs().get();
  const Expr* r = cmp.rhs().get();
  CompareOp op = cmp.op();
  if (l->kind() == ExprKind::kLiteral && r->kind() == ExprKind::kColumnRef) {
    std::swap(l, r);
    switch (cmp.op()) {
      case CompareOp::kLt:
        op = CompareOp::kGt;
        break;
      case CompareOp::kLe:
        op = CompareOp::kGe;
        break;
      case CompareOp::kGt:
        op = CompareOp::kLt;
        break;
      case CompareOp::kGe:
        op = CompareOp::kLe;
        break;
      default:
        break;
    }
  }
  if (l->kind() != ExprKind::kColumnRef || r->kind() != ExprKind::kLiteral) {
    return std::nullopt;
  }
  if (static_cast<const ColumnRefExpr*>(l)->name() != target) return std::nullopt;
  return std::make_pair(op, static_cast<const LiteralExpr*>(r)->value());
}

// Tries to turn one conjunct into a union of ranges on `target`.
// Supported: col-op-const, IN, OR of such shapes (all on `target`).
std::optional<std::vector<KeyRange>> AbsorbConjunct(const ExprPtr& conjunct,
                                                    const std::string& target) {
  if (auto cc = AsColConst(*conjunct, target)) {
    auto r = RangeFromComparison(cc->first, std::move(cc->second));
    if (!r.has_value()) return std::nullopt;
    return std::vector<KeyRange>{*std::move(r)};
  }
  if (conjunct->kind() == ExprKind::kIn) {
    const auto& in = static_cast<const InExpr&>(*conjunct);
    if (in.column() != target) return std::nullopt;
    std::vector<KeyRange> out;
    out.reserve(in.values().size());
    for (const auto& v : in.values()) out.push_back(KeyRange::Point(v));
    return NormalizeRanges(std::move(out));
  }
  if (conjunct->kind() == ExprKind::kOr) {
    const auto& logical = static_cast<const LogicalExpr&>(*conjunct);
    std::vector<KeyRange> out;
    for (const auto& child : logical.children()) {
      auto sub = AbsorbConjunct(child, target);
      if (!sub.has_value()) return std::nullopt;  // one non-sargable arm poisons the OR
      out.insert(out.end(), sub->begin(), sub->end());
    }
    return NormalizeRanges(std::move(out));
  }
  return std::nullopt;
}

}  // namespace

bool KeyRange::Contains(const Value& v) const {
  if (lo.has_value()) {
    int c = v.Compare(*lo);
    if (c < 0 || (c == 0 && !lo_inclusive)) return false;
  }
  if (hi.has_value()) {
    int c = v.Compare(*hi);
    if (c > 0 || (c == 0 && !hi_inclusive)) return false;
  }
  return true;
}

bool KeyRange::Empty() const {
  if (!lo.has_value() || !hi.has_value()) return false;
  int c = lo->Compare(*hi);
  if (c > 0) return true;
  return c == 0 && !(lo_inclusive && hi_inclusive);
}

std::string KeyRange::ToString() const {
  std::string out = lo_inclusive ? "[" : "(";
  out += lo.has_value() ? lo->ToString() : "-inf";
  out += ", ";
  out += hi.has_value() ? hi->ToString() : "+inf";
  out += hi_inclusive ? "]" : ")";
  return out;
}

std::vector<KeyRange> NormalizeRanges(std::vector<KeyRange> ranges) {
  ranges.erase(std::remove_if(ranges.begin(), ranges.end(),
                              [](const KeyRange& r) { return r.Empty(); }),
               ranges.end());
  std::sort(ranges.begin(), ranges.end(), [](const KeyRange& a, const KeyRange& b) {
    int c = CompareLowerBounds(a, b);
    if (c != 0) return c < 0;
    return CompareUpperBounds(a, b) < 0;
  });
  std::vector<KeyRange> out;
  for (auto& r : ranges) {
    if (!out.empty() && Overlaps(out.back(), r)) {
      if (CompareUpperBounds(out.back(), r) < 0) {
        out.back().hi = r.hi;
        out.back().hi_inclusive = r.hi_inclusive;
      }
    } else {
      out.push_back(std::move(r));
    }
  }
  return out;
}

std::vector<KeyRange> IntersectRanges(const std::vector<KeyRange>& a,
                                      const std::vector<KeyRange>& b) {
  std::vector<KeyRange> out;
  for (const auto& ra : a) {
    for (const auto& rb : b) {
      KeyRange r = IntersectOne(ra, rb);
      if (!r.Empty()) out.push_back(std::move(r));
    }
  }
  return NormalizeRanges(std::move(out));
}

RangeExtraction ExtractRanges(const ExprPtr& expr, const std::string& column) {
  RangeExtraction result;
  result.ranges = {KeyRange::All()};
  std::vector<ExprPtr> residual_conjuncts;
  for (const auto& conjunct : SplitConjuncts(expr)) {
    auto absorbed = AbsorbConjunct(conjunct, column);
    if (absorbed.has_value()) {
      result.ranges = IntersectRanges(result.ranges, *absorbed);
      result.sargable = true;
    } else {
      residual_conjuncts.push_back(conjunct);
    }
  }
  result.residual = And(std::move(residual_conjuncts));
  return result;
}

}  // namespace ajr

#include "adaptive/controller.h"

#include <cassert>
#include <limits>

namespace ajr {

std::optional<std::vector<size_t>> CheckInnerReorder(const CostInputs& in,
                                                     const std::vector<size_t>& order,
                                                     size_t from,
                                                     double benefit_epsilon) {
  assert(from >= 1 && from <= order.size());
  if (from + 1 >= order.size()) return std::nullopt;  // nothing to permute
  uint64_t mask = 0;
  for (size_t i = 0; i < from; ++i) mask |= uint64_t{1} << order[i];
  std::vector<size_t> tail(order.begin() + from, order.end());
  std::vector<size_t> ideal = GreedyRankOrder(in, tail, mask);
  if (ideal == tail) return std::nullopt;
  if (benefit_epsilon > 0 &&
      TailCost(in, ideal, mask) > (1.0 - benefit_epsilon) * TailCost(in, tail, mask)) {
    return std::nullopt;  // near-lateral move: not worth disturbing the pipeline
  }
  return ideal;
}

std::optional<DrivingSwitchDecision> CheckDrivingSwitch(
    const CostInputs& in, const std::vector<size_t>& order,
    const std::vector<DrivingCandidate>& candidates,
    const AdaptiveOptions& options) {
  assert(!order.empty());
  assert(candidates.size() == in.tables.size());
  const size_t current = order[0];

  // Remaining cost of the current plan with its current inner order.
  double current_cost = PipelineCost(in, order, candidates[current].raw_entries,
                                     candidates[current].flow);

  double best_cost = current_cost;
  std::vector<size_t> best_order;
  for (size_t d = 0; d < in.tables.size(); ++d) {
    if (d == current) continue;
    std::vector<size_t> inners;
    for (size_t t = 0; t < in.tables.size(); ++t) {
      if (t != d) inners.push_back(t);
    }
    std::vector<size_t> cand_order = {d};
    auto rest = GreedyRankOrder(in, inners, uint64_t{1} << d);
    cand_order.insert(cand_order.end(), rest.begin(), rest.end());
    double cost =
        PipelineCost(in, cand_order, candidates[d].raw_entries, candidates[d].flow);
    if (cost < best_cost) {
      best_cost = cost;
      best_order = std::move(cand_order);
    }
  }
  if (best_order.empty()) return std::nullopt;
  if (current_cost < best_cost * options.switch_benefit_threshold) {
    return std::nullopt;  // not enough benefit to risk thrashing
  }
  DrivingSwitchDecision decision;
  decision.new_order = std::move(best_order);
  decision.est_current = current_cost;
  decision.est_best = best_cost;
  return decision;
}

}  // namespace ajr

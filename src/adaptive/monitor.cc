#include "adaptive/monitor.h"

namespace ajr {

void RatioWindow::Flush() {
  if (pending_count_ == 0) return;
  const size_t ring_capacity = (capacity_ + batch_ - 1) / batch_;
  if (ring_.size() < ring_capacity) {
    // Still growing toward capacity: append.
    ring_.push_back({pending_num_, pending_den_});
    ++count_;
  } else {
    // Full: overwrite the oldest stored observation.
    Observation& slot = ring_[head_];
    num_sum_ -= slot.num;
    den_sum_ -= slot.den;
    slot = {pending_num_, pending_den_};
    head_ = (head_ + 1) % ring_.size();
  }
  num_sum_ += pending_num_;
  den_sum_ += pending_den_;
  pending_num_ = 0;
  pending_den_ = 0;
  pending_count_ = 0;
}

double RatioWindow::Estimate(double fallback) const {
  const double den_total = den_sum_ + pending_den_;
  if (den_total <= 0) return fallback;
  if (mode_ == AveragingMode::kSimple) {
    return (num_sum_ + pending_num_) / den_total;
  }
  // Weighted: exponentially weighted mean of per-batch ratios (oldest to
  // newest) with decay alpha = 2 / (stored-capacity + 1).
  const size_t ring_capacity = (capacity_ + batch_ - 1) / batch_;
  const double alpha = 2.0 / (static_cast<double>(ring_capacity) + 1.0);
  double est = 0;
  bool seeded = false;
  auto fold = [&](double num, double den) {
    if (den <= 0) return;
    double ratio = num / den;
    if (!seeded) {
      est = ratio;
      seeded = true;
    } else {
      est = alpha * ratio + (1.0 - alpha) * est;
    }
  };
  for (size_t i = 0; i < count_; ++i) {
    // head_ is 0 while the ring is still growing, so this indexing is
    // oldest-to-newest in both regimes.
    const Observation& r = ring_[(head_ + i) % ring_.size()];
    fold(r.num, r.den);
  }
  fold(pending_num_, pending_den_);
  return seeded ? est : fallback;
}

void RatioWindow::Reset() {
  ring_.clear();
  head_ = 0;
  count_ = 0;
  num_sum_ = 0;
  den_sum_ = 0;
  pending_num_ = 0;
  pending_den_ = 0;
  pending_count_ = 0;
  lifetime_num_ = 0;
  lifetime_den_ = 0;
}

}  // namespace ajr

// Run-time monitors (Sec 4.3).
//
// Every leg and every join edge carries counters over a sliding "history
// window" of the latest w observations (Sec 4.3.5). From them the run-time
// derives the quantities the cost model needs:
//
//   S_JP (Eq 7/8)   — per-edge join-predicate selectivity
//   S_LPR (Eq 6)    — combined residual local selectivity
//   JC (Eq 11)      — join cardinality = outgoing / incoming
//   PC              — measured work units per incoming row
//
// Averaging is either the simple window mean or an exponentially weighted
// mean (the paper's "simple average or weighted average", Sec 4.3.5).

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace ajr {

/// How window observations are combined into an estimate.
enum class AveragingMode : uint8_t {
  kSimple,    ///< plain mean over the window
  kWeighted,  ///< exponentially weighted toward recent observations
};

/// A sliding window over (numerator, denominator) observations whose
/// estimate is sum(num)/sum(den) — simple mode — or the EWMA of per-record
/// ratios weighted by denominators — weighted mode.
///
/// Record() sits on the executor's per-row hot path, so observations are
/// batched: `batch` consecutive Record() calls are accumulated into plain
/// sums and flushed into the ring as ONE stored observation. The window
/// then holds ceil(capacity / batch) stored observations, spanning the same
/// `capacity` raw observations the paper's "history window w" describes.
class RatioWindow {
 public:
  explicit RatioWindow(size_t capacity = 1000,
                       AveragingMode mode = AveragingMode::kSimple)
      : capacity_(capacity == 0 ? 1 : capacity),
        mode_(mode),
        batch_(capacity_ <= 32 ? 1 : capacity_ / 32) {}

  /// Adds one observation (e.g. numerator = rows out, denominator = rows in).
  void Record(double numerator, double denominator) {
    pending_num_ += numerator;
    pending_den_ += denominator;
    lifetime_num_ += numerator;
    lifetime_den_ += denominator;
    if (++pending_count_ >= batch_) Flush();
  }

  /// Folds an externally accumulated batch of observations (a parallel
  /// worker's window delta) into the window as ONE stored observation. The
  /// ring then slides per merge instead of per raw observation — the merged
  /// window spans the last ring-capacity folds, the parallel analogue of
  /// the paper's history window w.
  void RecordAggregate(double numerator, double denominator) {
    Flush();
    pending_num_ = numerator;
    pending_den_ = denominator;
    pending_count_ = batch_;  // a full batch: stored on the next Flush
    lifetime_num_ += numerator;
    lifetime_den_ += denominator;
    Flush();
  }

  /// Lifetime sums over every Record()/RecordAggregate() since construction
  /// (never evicted): the basis for worker-side window deltas.
  double lifetime_num() const { return lifetime_num_; }
  double lifetime_den() const { return lifetime_den_; }

  /// Number of raw observations currently represented in the window
  /// (stored observations times batch, plus the pending partial batch).
  size_t count() const { return count_ * batch_ + pending_count_; }

  /// Total denominator mass in the window (e.g. rows observed).
  double denominator_sum() const { return den_sum_ + pending_den_; }

  /// Current estimate; `fallback` when no observation carries mass yet.
  double Estimate(double fallback) const;

  void Reset();

 private:
  struct Observation {
    double num;
    double den;
  };

  void Flush();

  size_t capacity_;
  AveragingMode mode_;
  size_t batch_;
  double pending_num_ = 0;
  double pending_den_ = 0;
  size_t pending_count_ = 0;
  double lifetime_num_ = 0;
  double lifetime_den_ = 0;
  // Fixed-size ring buffer of flushed batches: no allocation churn once the
  // buffer reaches capacity.
  std::vector<Observation> ring_;
  size_t head_ = 0;  ///< index of the oldest stored observation
  size_t count_ = 0; ///< stored observations
  double num_sum_ = 0;
  double den_sum_ = 0;
};

/// Per-leg monitor for the inner role: one Record* call per incoming row.
class LegMonitor {
 public:
  LegMonitor() : LegMonitor(1000, AveragingMode::kSimple) {}
  LegMonitor(size_t window, AveragingMode mode)
      : jc_(window, mode), s_lp_(window, mode), pc_(window, mode) {}

  /// Records the outcome of probing this leg for one incoming row:
  /// `after_edges` rows survived all join predicates, `out` also survived
  /// local + positional predicates, costing `work` units.
  void RecordIncomingRow(double after_edges, double out, double work) {
    jc_.Record(out, 1.0);
    s_lp_.Record(out, after_edges);
    pc_.Record(work, 1.0);
    ++incoming_total_;
  }

  /// JC estimate (Eq 11); `fallback` until data arrives.
  double Jc(double fallback) const { return jc_.Estimate(fallback); }
  /// Combined local-predicate selectivity (Eq 6 analogue), Laplace-smoothed
  /// toward `fallback` with kPseudoSamples virtual rows: a 2%-selective
  /// predicate observed over 30 rows reads 0 more often than not, and a
  /// hard zero makes whole candidate plans look free.
  double LocalSel(double fallback) const {
    constexpr double kPseudoSamples = 8.0;
    double den = s_lp_.denominator_sum();
    double num = s_lp_.Estimate(fallback) * den;
    return (num + fallback * kPseudoSamples) / (den + kPseudoSamples);
  }
  /// Measured probe cost per incoming row.
  double Pc(double fallback) const { return pc_.Estimate(fallback); }

  bool has_data() const { return incoming_total_ > 0; }
  uint64_t incoming_total() const { return incoming_total_; }

  /// Observations accumulated since the previous TakeDelta(): the unit a
  /// parallel worker folds into the shared coordinator's merged monitor.
  struct Delta {
    double jc_num = 0, jc_den = 0;
    double lp_num = 0, lp_den = 0;
    double pc_num = 0, pc_den = 0;
    uint64_t incoming = 0;
    bool empty() const { return incoming == 0; }
  };

  /// Returns everything recorded since the last TakeDelta() and advances
  /// the cursor (lifetime sums are never evicted, so deltas are exact even
  /// after the sliding window forgot the observations).
  Delta TakeDelta() {
    Delta d;
    d.jc_num = jc_.lifetime_num() - taken_.jc_num;
    d.jc_den = jc_.lifetime_den() - taken_.jc_den;
    d.lp_num = s_lp_.lifetime_num() - taken_.lp_num;
    d.lp_den = s_lp_.lifetime_den() - taken_.lp_den;
    d.pc_num = pc_.lifetime_num() - taken_.pc_num;
    d.pc_den = pc_.lifetime_den() - taken_.pc_den;
    d.incoming = incoming_total_ - taken_.incoming;
    taken_.jc_num += d.jc_num;
    taken_.jc_den += d.jc_den;
    taken_.lp_num += d.lp_num;
    taken_.lp_den += d.lp_den;
    taken_.pc_num += d.pc_num;
    taken_.pc_den += d.pc_den;
    taken_.incoming += d.incoming;
    return d;
  }

  /// Folds a worker's delta into this (coordinator-side) monitor: each
  /// component lands as one aggregated window observation.
  void Absorb(const Delta& d) {
    if (d.empty()) return;
    jc_.RecordAggregate(d.jc_num, d.jc_den);
    s_lp_.RecordAggregate(d.lp_num, d.lp_den);
    pc_.RecordAggregate(d.pc_num, d.pc_den);
    incoming_total_ += d.incoming;
  }

  void Reset() {
    jc_.Reset();
    s_lp_.Reset();
    pc_.Reset();
    incoming_total_ = 0;
    taken_ = Delta();
  }

 private:
  RatioWindow jc_;
  RatioWindow s_lp_;
  RatioWindow pc_;
  uint64_t incoming_total_ = 0;
  Delta taken_;  ///< lifetime sums already handed out via TakeDelta
};

/// Per-leg monitor for the driving role: residual selectivity of the scan.
class DrivingMonitor {
 public:
  DrivingMonitor() : DrivingMonitor(1000, AveragingMode::kSimple) {}
  DrivingMonitor(size_t window, AveragingMode mode) : s_lpr_(window, mode) {}

  /// One scanned entry, which did or did not survive residual predicates.
  void RecordScannedEntry(bool produced) {
    s_lpr_.Record(produced ? 1.0 : 0.0, 1.0);
    ++scanned_total_;
    produced_total_ += produced ? 1 : 0;
  }

  /// S_LPR (Eq 6 for the driving leg): produced / scanned.
  double ResidualSel(double fallback) const { return s_lpr_.Estimate(fallback); }

  uint64_t scanned_total() const { return scanned_total_; }
  uint64_t produced_total() const { return produced_total_; }

  /// See LegMonitor::Delta.
  struct Delta {
    double num = 0, den = 0;
    uint64_t scanned = 0, produced = 0;
    bool empty() const { return scanned == 0; }
  };

  Delta TakeDelta() {
    Delta d;
    d.num = s_lpr_.lifetime_num() - taken_.num;
    d.den = s_lpr_.lifetime_den() - taken_.den;
    d.scanned = scanned_total_ - taken_.scanned;
    d.produced = produced_total_ - taken_.produced;
    taken_.num += d.num;
    taken_.den += d.den;
    taken_.scanned += d.scanned;
    taken_.produced += d.produced;
    return d;
  }

  void Absorb(const Delta& d) {
    if (d.empty()) return;
    s_lpr_.RecordAggregate(d.num, d.den);
    scanned_total_ += d.scanned;
    produced_total_ += d.produced;
  }

 private:
  RatioWindow s_lpr_;
  uint64_t scanned_total_ = 0;
  uint64_t produced_total_ = 0;
  Delta taken_;
};

/// Sec 4.3.3 estimate selection for one leg's combined local selectivity
/// S_LP, shared by every cost-input assembly in the executor:
///
///   * the monitored inner-role selectivity once the leg has seen at least
///     `min_leg_samples` incoming rows — below the floor a cold monitor
///     (10 samples of a 2% predicate usually read 0) must not override the
///     optimizer and make candidate plans look free;
///   * else Eq 9's composition S_LP = S_LPI (optimizer) * S_LPR (measured)
///     for a leg that has driven;
///   * else the optimizer estimate unchanged.
inline double EffectiveLocalSel(const LegMonitor& inner,
                                const DrivingMonitor& driving,
                                double optimizer_est, double est_slpi,
                                uint64_t min_leg_samples) {
  if (inner.incoming_total() >= min_leg_samples) {
    return inner.LocalSel(optimizer_est);
  }
  if (driving.scanned_total() > 0) {
    return est_slpi * driving.ResidualSel(1.0);
  }
  return optimizer_est;
}

/// Per-edge monitor: S_JP as matching pairs over candidate pairs (Eq 7/8).
class EdgeMonitor {
 public:
  EdgeMonitor() : EdgeMonitor(1000, AveragingMode::kSimple) {}
  EdgeMonitor(size_t window, AveragingMode mode) : sel_(window, mode) {}

  /// For a probe through this edge: `pairs` = incoming rows * C(T)
  /// (Eq 7's I1 * C(T)); `matches` = entries fetched. For a residual check:
  /// pairs = rows checked, matches = rows passing (Eq 8).
  void Record(double pairs, double matches) {
    sel_.Record(matches, pairs);
    ++probes_;
  }

  /// S_JP estimate; `fallback` (the optimizer's estimate) until enough
  /// observations accumulated. Laplace-smoothed with two pseudo-probes at
  /// the fallback rate: one zero-match probe must not read as an exact-zero
  /// join selectivity (which would make downstream legs look free).
  double Selectivity(double fallback, double min_pairs = 1.0) const {
    double den = sel_.denominator_sum();
    if (den < min_pairs) return fallback;
    double num = sel_.Estimate(fallback) * den;
    double pseudo_den = 2.0 * den / static_cast<double>(probes_ == 0 ? 1 : probes_);
    return (num + fallback * pseudo_den) / (den + pseudo_den);
  }

  bool has_data() const { return sel_.denominator_sum() > 0; }

  /// See LegMonitor::Delta.
  struct Delta {
    double matches = 0, pairs = 0;
    uint64_t probes = 0;
    bool empty() const { return probes == 0; }
  };

  Delta TakeDelta() {
    Delta d;
    d.matches = sel_.lifetime_num() - taken_.matches;
    d.pairs = sel_.lifetime_den() - taken_.pairs;
    d.probes = probes_ - taken_.probes;
    taken_.matches += d.matches;
    taken_.pairs += d.pairs;
    taken_.probes += d.probes;
    return d;
  }

  void Absorb(const Delta& d) {
    if (d.empty()) return;
    sel_.RecordAggregate(d.matches, d.pairs);
    probes_ += d.probes;
  }

 private:
  RatioWindow sel_;
  uint64_t probes_ = 0;
  Delta taken_;
};

}  // namespace ajr

// Adaptive reordering decisions (Sec 4.1, 4.2).
//
// The executor calls these pure decision functions at the paper's strategic
// points: CheckInnerReorder when a pipeline segment reaches its depleted
// state (Fig 2), CheckDrivingSwitch after every batch of c driving rows
// (Fig 3). Inputs are CostInputs assembled from the run-time monitors, so
// the decisions use measured selectivities where available and optimizer
// estimates elsewhere.

#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "adaptive/monitor.h"
#include "optimize/cost_model.h"
#include "storage/index.h"

namespace ajr {

/// Which AdaptationPolicy (adaptive/policy.h) drives reorder/switch
/// decisions. kRank is the paper's rank-based procedures; kRegret is
/// SkinnerDB-style UCB1 exploration; kStatic never adapts.
enum class PolicyKind {
  kRank,
  kRegret,
  kStatic,
};

/// Run-time adaptation knobs (paper defaults: c = 10, w = 1000).
struct AdaptiveOptions {
  /// Enable inner-leg reordering (Fig 2 / Fig 8 experiments).
  bool reorder_inners = true;
  /// Enable driving-leg switching (Fig 3 / Fig 9 experiments).
  bool reorder_driving = true;
  /// Check frequency "c": reorder checks fire every c incoming rows (inner)
  /// or every c produced rows (driving).
  size_t check_frequency = 10;
  /// History window "w": observations kept per monitor.
  size_t history_window = 1000;
  /// Averaging across the window (Sec 4.3.5).
  AveragingMode averaging = AveragingMode::kSimple;
  /// A driving switch requires the current plan's remaining cost to exceed
  /// the candidate's by this factor (thrash guard; the paper relies on
  /// window smoothing alone, so 1.0 reproduces the paper's behaviour and
  /// the default adds a mild hysteresis).
  double switch_benefit_threshold = 1.15;
  /// Minimum candidate-pair mass before a monitored edge selectivity
  /// overrides the optimizer estimate.
  double min_edge_pairs = 8.0;
  /// Minimum incoming rows observed at a leg before its monitored local
  /// selectivity overrides the optimizer estimate (a 5%-selective predicate
  /// measured over 10 rows reads 0 more often than not — cold monitors must
  /// not make candidate plans look free).
  uint64_t min_leg_samples = 16;
  /// An inner reorder is applied only if the rank-ordered tail is estimated
  /// to cost at least this fraction less than the current tail (suppresses
  /// lateral flip-flops between near-equal orders).
  double inner_benefit_epsilon = 0.05;
  /// Exponential back-off on unproductive checks: after a check that
  /// decides "no change", the next check happens after 2x the interval (up
  /// to kMaxBackoff * check_frequency); any reorder resets the interval to
  /// check_frequency. The paper uses a fixed c throughout — set false for
  /// strict paper behaviour — but on a memory-speed engine fixed-c checking
  /// costs far more (relatively) than on the paper's I/O-bound system, and
  /// back-off restores the paper's sub-1% overhead regime (Sec 5.4).
  bool check_backoff = true;
  /// Max probe keys gathered per inner leg before descending the index
  /// (sorted, hint-resumed descent amortizes root-to-leaf walks). Batches
  /// never span driving rows and are discarded at every reorder, so
  /// depleted-state semantics are untouched; work-unit accounting is
  /// replayed per logical probe and stays bit-identical to per-row
  /// execution. 1 disables batching.
  size_t probe_batch_size = 64;
  /// Capacity of the per-leg probe-memoization LRU (hot join keys replay
  /// their matched-RID list and exact work units instead of re-descending).
  /// Bypassed while a leg's positional predicate is active. 0 disables the
  /// cache.
  size_t probe_cache_entries = 128;
  /// Which decision policy the executor instantiates (adaptive/policy.h).
  /// kStatic forces both reorder capabilities off regardless of the
  /// reorder_* flags above; kRank and kRegret honor them.
  PolicyKind policy = PolicyKind::kRank;
  /// Which physical index structure serves point probes (storage/index.h).
  /// Legs that need range scans or positional predicates — driving scans,
  /// remaining-cardinality statistics, post-reorder resume — transparently
  /// stay on the B+-tree; work units and adaptation traces are
  /// bit-identical across backends by the Index charge contract.
  IndexBackend index_backend = IndexBackend::kBTree;
  static constexpr uint64_t kMaxBackoff = 16;
};

/// Exponential back-off schedule for one reorder-check interval (the
/// AdaptiveOptions::check_backoff policy, factored out so the executor's
/// driving and per-leg inner intervals share one tested implementation).
///
/// The interval starts at `base` (the check frequency c). Every
/// unproductive check doubles it, capped at base * kMaxBackoff; any reorder
/// resets it to base. With back-off disabled the interval is constant.
class CheckBackoff {
 public:
  CheckBackoff() : CheckBackoff(10, true) {}
  CheckBackoff(uint64_t base, bool enabled)
      : base_(base == 0 ? 1 : base), interval_(base_), enabled_(enabled) {}

  /// Rows to let pass before the next check.
  uint64_t interval() const { return interval_; }

  /// A check ran and decided "no change": double the interval (capped).
  void OnUnproductiveCheck() {
    if (enabled_) {
      interval_ = std::min(interval_ * 2, base_ * AdaptiveOptions::kMaxBackoff);
    }
  }

  /// A check reordered: back to the base frequency.
  void OnReorder() { interval_ = base_; }

 private:
  uint64_t base_;
  uint64_t interval_;
  bool enabled_;
};

/// Fig 2: checks whether legs order[from..] are in ascending-rank order
/// given the prefix; if not — and the rank order is estimated to be at
/// least `benefit_epsilon` cheaper — returns the replacement tail.
std::optional<std::vector<size_t>> CheckInnerReorder(
    const CostInputs& in, const std::vector<size_t>& order, size_t from,
    double benefit_epsilon = 0.0);

/// One candidate driving leg for CheckDrivingSwitch.
struct DrivingCandidate {
  size_t table = 0;
  /// Index entries the (remaining) scan would touch. Exact for the current
  /// driving leg and for legs that drove before (their cursors know their
  /// position); the optimizer's S_LPI * C(T) for never-scanned legs
  /// (Sec 4.3.3: the initial S_LPI comes from the optimizer) — the source
  /// of the paper's Template 4 degradation.
  double raw_entries = 0;
  /// Rows the (remaining) scan would feed into the pipeline.
  double flow = 0;
};

/// Outcome of a driving-switch check.
struct DrivingSwitchDecision {
  std::vector<size_t> new_order;  ///< full order; new driving first
  double est_current = 0;         ///< remaining cost of the current plan
  double est_best = 0;            ///< remaining cost of the chosen plan
};

/// Fig 3 steps 2-4: costs the remaining work of the current plan and of a
/// plan driven by each candidate (inners greedy-rank-ordered); returns a
/// decision when a candidate beats the current plan by the threshold.
/// `candidates[i]` describes query table i; `candidates[order[0]]` is the
/// current driving leg.
std::optional<DrivingSwitchDecision> CheckDrivingSwitch(
    const CostInputs& in, const std::vector<size_t>& order,
    const std::vector<DrivingCandidate>& candidates, const AdaptiveOptions& options);

}  // namespace ajr

// AdaptationPolicy: the pluggable reordering brain of the adaptive
// executor (DESIGN.md §12).
//
// The serial PipelineExecutor and the parallel AdaptiveCoordinator own all
// run-time *mechanics* — monitors, check cadence (CheckBackoff), demotion /
// promotion, positional predicates, the epoch/barrier protocol — and
// delegate every *decision* to an AdaptationPolicy. At each decision point
// (a depleted state: a segment depletion for inner reorders, a driving-row
// boundary for driving switches) the host assembles a read-only
// PolicySnapshot from its merged monitor statistics and receives back a
// PolicyDecision: keep the current order, reorder the inner tail, or
// switch the driving leg. Decisions are *adopted* by the host exactly
// where the paper adopts them, so invariants I1–I5 and the parallel
// epoch/barrier protocol are policy-independent.
//
// Thread-safety contract: a policy instance is owned by exactly one host.
// In serial execution that host is the PipelineExecutor (single-threaded).
// In morsel-parallel execution the AdaptiveCoordinator owns the single
// fleet-wide instance and calls Decide() only under its mutex — workers
// never see the policy, they only adopt published epochs. Policies
// therefore need no internal locking.
//
// Shipped policies:
//   * RankPolicy   — the paper's procedures (CheckInnerReorder Fig 2,
//                    CheckDrivingSwitch Fig 3), moved not rewritten:
//                    bit-identical decisions to the pre-policy executor.
//   * RegretBoundedPolicy — SkinnerDB-style exploration: UCB1 over
//                    candidate join orders at depleted states, per-order
//                    reward = output rows per work unit within the slice,
//                    cumulative empirical regret exposed as stats.
//   * StaticPolicy — never adapts; the optimizer's order runs unchanged
//                    (replaces the ad-hoc reorder_inners=false plumbing as
//                    the way to request a static baseline).

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adaptive/controller.h"
#include "optimize/cost_model.h"

namespace ajr {

/// Which depleted state a decision is requested at.
enum class DecisionPoint {
  /// Segment [position..k] just depleted (Fig 2's moment): the policy may
  /// reorder order[position..] but must keep the prefix — including the
  /// driving leg — fixed.
  kInnerDepleted,
  /// The whole pipeline is depleted, between driving rows (Fig 3's
  /// moment): the policy may switch the driving leg or reorder the full
  /// inner tail (position 1).
  kDrivingBoundary,
};

/// Read-only view of the host's run-time state at one decision point.
/// Pointers borrow host-owned storage and are valid only for the duration
/// of the Decide() call.
struct PolicySnapshot {
  DecisionPoint point = DecisionPoint::kDrivingBoundary;
  /// First reorderable pipeline position (>= 1; meaningful for
  /// kInnerDepleted, always 1 at a driving boundary).
  size_t position = 1;
  /// Merged monitor statistics (measured selectivities where warm, the
  /// optimizer's estimates elsewhere), demoted legs already scaled to
  /// their unprocessed remainder.
  const CostInputs* inputs = nullptr;
  /// Current pipeline order; order[0] is the driving leg.
  const std::vector<size_t>* order = nullptr;
  /// Per-table driving candidates (remaining scan entries and flow).
  /// Non-null only at kDrivingBoundary.
  const std::vector<DrivingCandidate>* candidates = nullptr;
  /// Driving rows produced so far (host-wide; fleet-wide under the
  /// parallel coordinator).
  uint64_t driving_rows_produced = 0;
  /// Cumulative output rows / work units — the reward signal for
  /// exploration policies. Fleet-wide merged totals under the parallel
  /// coordinator.
  uint64_t rows_out = 0;
  uint64_t work_units = 0;
  /// Decision epoch: how many times the host consulted the policy before
  /// this call.
  uint64_t epoch = 0;
};

/// What the host should do at this depleted state.
struct PolicyDecision {
  enum class Action {
    kKeep,           ///< no change
    kInnerReorder,   ///< adopt new_order; driving leg unchanged
    kDrivingSwitch,  ///< adopt new_order; new_order[0] != order[0]
  };
  Action action = Action::kKeep;
  /// Full pipeline order to adopt (all actions except kKeep). For
  /// kInnerReorder the prefix [0..snapshot.position) is unchanged.
  std::vector<size_t> new_order;
  /// Estimated remaining cost of the current / chosen plan (work units)
  /// when the policy costs plans; both 0 for policies that do not.
  double est_current = 0;
  double est_best = 0;

  bool changed() const { return action != Action::kKeep; }
};

/// Lifetime counters a policy maintains across decisions.
struct PolicyStats {
  uint64_t decisions = 0;         ///< Decide() calls
  uint64_t inner_reorders = 0;    ///< decisions returning kInnerReorder
  uint64_t driving_switches = 0;  ///< decisions returning kDrivingSwitch
  /// Cumulative empirical regret (exploration policies): the reward an
  /// always-play-the-best-arm policy would have collected minus the reward
  /// actually collected, in normalized reward units. 0 for rank/static.
  double cumulative_regret = 0;
};

/// The decision interface. See the file comment for the ownership and
/// thread-safety contract.
class AdaptationPolicy {
 public:
  virtual ~AdaptationPolicy() = default;

  virtual const char* name() const = 0;

  /// Capability gates, checked by the host *before* paying for snapshot
  /// assembly: a host never calls Decide() at a decision point the policy
  /// does not adapt. Both false = fully static execution (no checks, no
  /// monitors consulted).
  virtual bool adapts_inners() const = 0;
  virtual bool adapts_driving() const = 0;

  /// One decision. The returned order must be a permutation of
  /// *snapshot.order honoring the point's prefix constraint; the host
  /// adopts it at the current depleted state.
  virtual PolicyDecision Decide(const PolicySnapshot& snapshot) = 0;

  const PolicyStats& stats() const { return stats_; }

 protected:
  PolicyStats stats_;
};

/// The paper's rank-based procedures behind the policy interface. Honors
/// AdaptiveOptions::reorder_inners / reorder_driving, and produces exactly
/// the decisions the pre-policy executor produced (CheckInnerReorder /
/// CheckDrivingSwitch over the same snapshot inputs).
class RankPolicy : public AdaptationPolicy {
 public:
  explicit RankPolicy(const AdaptiveOptions& options) : options_(options) {}
  const char* name() const override { return "rank"; }
  bool adapts_inners() const override { return options_.reorder_inners; }
  bool adapts_driving() const override { return options_.reorder_driving; }
  PolicyDecision Decide(const PolicySnapshot& snapshot) override;

 private:
  AdaptiveOptions options_;
};

/// Never adapts: the host skips all checks and the optimizer's initial
/// order runs to completion (the paper's "static" baseline).
class StaticPolicy : public AdaptationPolicy {
 public:
  const char* name() const override { return "static"; }
  bool adapts_inners() const override { return false; }
  bool adapts_driving() const override { return false; }
  PolicyDecision Decide(const PolicySnapshot&) override {
    ++stats_.decisions;  // defensive: hosts gate on the capabilities above
    return PolicyDecision{};
  }
};

/// SkinnerDB-style regret-bounded exploration (PAPERS.md): treats
/// candidate join orders as bandit arms and picks by UCB1 at every
/// depleted state. The slice between two consecutive decisions is credited
/// to the arm that was active, with reward rows/(rows+work) — a
/// normalized output-rows-per-work-unit in [0,1).
///
/// Arms: for queries of up to kExhaustiveArmTables tables, every
/// permutation is an arm (the 3-table convergence test explores all 6).
/// Above that, one arm per driving leg (inners greedy-rank-ordered at
/// selection time) — UCB over n! arms would explore forever. Hybrid
/// inner-tail decisions cost a polynomial candidate set instead: the
/// paper's greedy-rank tail plus every adjacent transposition of the
/// current tail (greedy_order.h's neighbor swaps, which catch the
/// position-dependent wins on cyclic graphs a pure rank sort misses),
/// adopting the cheapest tail when it clears inner_benefit_epsilon.
class RegretBoundedPolicy : public AdaptationPolicy {
 public:
  static constexpr size_t kExhaustiveArmTables = 4;

  explicit RegretBoundedPolicy(const AdaptiveOptions& options)
      : options_(options) {}
  const char* name() const override { return "regret"; }
  bool adapts_inners() const override { return options_.reorder_inners; }
  bool adapts_driving() const override { return options_.reorder_driving; }
  PolicyDecision Decide(const PolicySnapshot& snapshot) override;

  /// Exposed for tests: per-arm pull counts and mean rewards.
  struct ArmView {
    std::vector<size_t> order;  ///< full order, or {driving} in hybrid mode
    uint64_t pulls = 0;
    double mean_reward = 0;
  };
  std::vector<ArmView> arms() const;

 private:
  struct Arm {
    std::vector<size_t> order;
    uint64_t pulls = 0;
    double reward_sum = 0;
    double mean() const { return pulls > 0 ? reward_sum / pulls : 0.0; }
  };

  void InitArms(const PolicySnapshot& snapshot);
  void CreditActiveArm(const PolicySnapshot& snapshot);
  void RecomputeRegret();
  /// UCB1 index of arm i; unexplored arms sort first.
  double UcbIndex(size_t i, uint64_t total_pulls) const;

  AdaptiveOptions options_;
  std::vector<Arm> arms_;
  /// True when arms are driving-leg-only (more than kExhaustiveArmTables
  /// tables): tails are rank-ordered at selection time.
  bool hybrid_ = false;
  size_t active_arm_ = SIZE_MAX;
  uint64_t last_rows_ = 0;
  uint64_t last_work_ = 0;
};

/// Policy selection for QuerySpec / engine_server --policy=<name>.
const char* PolicyKindName(PolicyKind kind);
std::optional<PolicyKind> ParsePolicyKind(const std::string& name);

/// Instantiates the policy selected by `options.policy`.
std::unique_ptr<AdaptationPolicy> MakePolicy(const AdaptiveOptions& options);

}  // namespace ajr

#include "adaptive/policy.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "optimize/greedy_order.h"

namespace ajr {

namespace {

/// arm order shares the host's fixed prefix [0..position)?
bool SharesPrefix(const std::vector<size_t>& arm,
                  const std::vector<size_t>& order, size_t position) {
  for (size_t i = 0; i < position; ++i) {
    if (arm[i] != order[i]) return false;
  }
  return true;
}

}  // namespace

// ---- RankPolicy ------------------------------------------------------------

PolicyDecision RankPolicy::Decide(const PolicySnapshot& snapshot) {
  ++stats_.decisions;
  PolicyDecision d;
  const std::vector<size_t>& order = *snapshot.order;
  if (snapshot.point == DecisionPoint::kInnerDepleted) {
    auto tail = CheckInnerReorder(*snapshot.inputs, order, snapshot.position,
                                  options_.inner_benefit_epsilon);
    if (!tail.has_value()) return d;
    d.action = PolicyDecision::Action::kInnerReorder;
    d.new_order.assign(order.begin(), order.begin() + snapshot.position);
    d.new_order.insert(d.new_order.end(), tail->begin(), tail->end());
    ++stats_.inner_reorders;
    return d;
  }
  assert(snapshot.candidates != nullptr);
  auto decision =
      CheckDrivingSwitch(*snapshot.inputs, order, *snapshot.candidates, options_);
  if (!decision.has_value()) return d;
  d.action = PolicyDecision::Action::kDrivingSwitch;
  d.new_order = std::move(decision->new_order);
  d.est_current = decision->est_current;
  d.est_best = decision->est_best;
  ++stats_.driving_switches;
  return d;
}

// ---- RegretBoundedPolicy ---------------------------------------------------

void RegretBoundedPolicy::InitArms(const PolicySnapshot& snapshot) {
  std::vector<size_t> sorted = *snapshot.order;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  if (n <= kExhaustiveArmTables) {
    do {
      Arm arm;
      arm.order = sorted;
      arms_.push_back(std::move(arm));
    } while (std::next_permutation(sorted.begin(), sorted.end()));
  } else {
    hybrid_ = true;
    for (size_t t : sorted) {
      Arm arm;
      arm.order = {t};
      arms_.push_back(std::move(arm));
    }
  }
  // The slice up to the first decision ran under the host's initial order.
  active_arm_ = SIZE_MAX;
  for (size_t i = 0; i < arms_.size(); ++i) {
    const bool match = hybrid_ ? arms_[i].order[0] == (*snapshot.order)[0]
                               : arms_[i].order == *snapshot.order;
    if (match) {
      active_arm_ = i;
      break;
    }
  }
}

void RegretBoundedPolicy::CreditActiveArm(const PolicySnapshot& snapshot) {
  const uint64_t delta_rows = snapshot.rows_out - last_rows_;
  const uint64_t delta_work = snapshot.work_units - last_work_;
  last_rows_ = snapshot.rows_out;
  last_work_ = snapshot.work_units;
  if (active_arm_ == SIZE_MAX || delta_work == 0) return;
  // Normalized output-per-work reward in [0,1): rows/(rows+work) is
  // monotone in rows-per-work-unit and never needs a scale constant.
  const double reward = static_cast<double>(delta_rows) /
                        static_cast<double>(delta_rows + delta_work);
  Arm& arm = arms_[active_arm_];
  ++arm.pulls;
  arm.reward_sum += reward;
  RecomputeRegret();
}

void RegretBoundedPolicy::RecomputeRegret() {
  double best_mean = 0;
  for (const Arm& arm : arms_) {
    if (arm.pulls > 0) best_mean = std::max(best_mean, arm.mean());
  }
  double regret = 0;
  for (const Arm& arm : arms_) {
    if (arm.pulls > 0) {
      regret += static_cast<double>(arm.pulls) * (best_mean - arm.mean());
    }
  }
  stats_.cumulative_regret = regret;
}

double RegretBoundedPolicy::UcbIndex(size_t i, uint64_t total_pulls) const {
  const Arm& arm = arms_[i];
  if (arm.pulls == 0) return std::numeric_limits<double>::infinity();
  const double t = static_cast<double>(std::max<uint64_t>(total_pulls, 1));
  return arm.mean() +
         std::sqrt(2.0 * std::log(t) / static_cast<double>(arm.pulls));
}

std::vector<RegretBoundedPolicy::ArmView> RegretBoundedPolicy::arms() const {
  std::vector<ArmView> out;
  out.reserve(arms_.size());
  for (const Arm& arm : arms_) {
    out.push_back(ArmView{arm.order, arm.pulls, arm.mean()});
  }
  return out;
}

PolicyDecision RegretBoundedPolicy::Decide(const PolicySnapshot& snapshot) {
  ++stats_.decisions;
  if (arms_.empty()) InitArms(snapshot);
  CreditActiveArm(snapshot);
  PolicyDecision d;
  const std::vector<size_t>& order = *snapshot.order;

  uint64_t total_pulls = 0;
  for (const Arm& arm : arms_) total_pulls += arm.pulls;

  if (snapshot.point == DecisionPoint::kInnerDepleted) {
    if (hybrid_) {
      // Long pipelines: UCB explores driving legs only; inner tails pick
      // the cheapest of a polynomial candidate set — the paper's
      // greedy-rank tail plus every neighbor swap of the current tail
      // (O(n) candidates, O(n*E) TailCost each). Deterministic: candidates
      // are costed in a fixed sequence and must strictly beat the
      // incumbent, and the whole reorder must clear the epsilon guard.
      const CostInputs& in = *snapshot.inputs;
      uint64_t mask = 0;
      for (size_t i = 0; i < snapshot.position; ++i) {
        mask |= uint64_t{1} << order[i];
      }
      std::vector<size_t> current(order.begin() + snapshot.position,
                                  order.end());
      const double current_cost = TailCost(in, current, mask);
      std::vector<size_t> best_tail = current;
      double best_cost = current_cost;
      auto consider = [&](std::vector<size_t> tail) {
        const double cost = TailCost(in, tail, mask);
        if (cost < best_cost) {
          best_cost = cost;
          best_tail = std::move(tail);
        }
      };
      consider(GreedyRankOrder(in, current, mask));
      for (auto& swapped : NeighborSwapOrders(order, snapshot.position)) {
        consider(std::vector<size_t>(swapped.begin() + snapshot.position,
                                     swapped.end()));
      }
      if (best_tail == current ||
          best_cost > (1.0 - options_.inner_benefit_epsilon) * current_cost) {
        return d;  // near-lateral move: keep the pipeline undisturbed
      }
      d.action = PolicyDecision::Action::kInnerReorder;
      d.new_order.assign(order.begin(), order.begin() + snapshot.position);
      d.new_order.insert(d.new_order.end(), best_tail.begin(), best_tail.end());
      d.est_current = current_cost;
      d.est_best = best_cost;
      ++stats_.inner_reorders;
      return d;
    }
    // Exhaustive arms: best UCB among orders that keep the fixed prefix
    // (the depleted segment is the only part the host may reorder here).
    size_t best = SIZE_MAX;
    double best_index = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < arms_.size(); ++i) {
      if (!SharesPrefix(arms_[i].order, order, snapshot.position)) continue;
      const double index = UcbIndex(i, total_pulls);
      if (index > best_index) {
        best_index = index;
        best = i;
      }
    }
    if (best == SIZE_MAX) return d;
    active_arm_ = best;
    if (arms_[best].order == order) return d;
    d.action = PolicyDecision::Action::kInnerReorder;
    d.new_order = arms_[best].order;
    ++stats_.inner_reorders;
    return d;
  }

  // Driving boundary: any arm is eligible.
  size_t best = 0;
  double best_index = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < arms_.size(); ++i) {
    const double index = UcbIndex(i, total_pulls);
    if (index > best_index) {
      best_index = index;
      best = i;
    }
  }
  active_arm_ = best;
  std::vector<size_t> chosen;
  if (hybrid_) {
    const size_t driving = arms_[best].order[0];
    if (driving == order[0]) return d;
    chosen = {driving};
    std::vector<size_t> inners;
    for (size_t t = 0; t < snapshot.inputs->tables.size(); ++t) {
      if (t != driving) inners.push_back(t);
    }
    auto rest =
        GreedyRankOrder(*snapshot.inputs, inners, uint64_t{1} << driving);
    chosen.insert(chosen.end(), rest.begin(), rest.end());
  } else {
    if (arms_[best].order == order) return d;
    chosen = arms_[best].order;
  }
  d.new_order = std::move(chosen);
  // Report the UCB indices as the decision estimates: not work units, but
  // the quantities this policy actually compared.
  d.est_best = best_index;
  for (size_t i = 0; i < arms_.size(); ++i) {
    const bool current_arm = hybrid_ ? arms_[i].order[0] == order[0]
                                     : arms_[i].order == order;
    if (current_arm) {
      d.est_current = UcbIndex(i, total_pulls);
      break;
    }
  }
  if (d.new_order[0] != order[0]) {
    d.action = PolicyDecision::Action::kDrivingSwitch;
    ++stats_.driving_switches;
  } else {
    d.action = PolicyDecision::Action::kInnerReorder;
    ++stats_.inner_reorders;
  }
  return d;
}

// ---- Selection -------------------------------------------------------------

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRank:
      return "rank";
    case PolicyKind::kRegret:
      return "regret";
    case PolicyKind::kStatic:
      return "static";
  }
  return "rank";
}

std::optional<PolicyKind> ParsePolicyKind(const std::string& name) {
  if (name == "rank") return PolicyKind::kRank;
  if (name == "regret") return PolicyKind::kRegret;
  if (name == "static") return PolicyKind::kStatic;
  return std::nullopt;
}

std::unique_ptr<AdaptationPolicy> MakePolicy(const AdaptiveOptions& options) {
  switch (options.policy) {
    case PolicyKind::kStatic:
      return std::make_unique<StaticPolicy>();
    case PolicyKind::kRegret:
      return std::make_unique<RegretBoundedPolicy>(options);
    case PolicyKind::kRank:
      break;
  }
  return std::make_unique<RankPolicy>(options);
}

}  // namespace ajr

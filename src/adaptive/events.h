// AdaptationEvent: one observable join-order change.
//
// The executor's reorder decisions (CheckInnerReorder / CheckDrivingSwitch)
// were previously visible only as aggregate counters and log lines in
// ExecStats. The differential-fuzzing oracle needs them as structured
// events — which order changed into which, at which pipeline position,
// and (for a driving switch) the demoted leg's recorded scan prefix — so
// the invariant checker can assert the paper's safety properties:
// reordering happens only at depleted states (Sec 4.1) and a demoted
// driving leg's positional predicate never regresses behind its last
// returned row (Sec 4.2).

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "storage/scan_position.h"

namespace ajr {

/// One join-order change, reported through ExecObserver::OnAdaptation.
struct AdaptationEvent {
  enum class Kind : uint8_t {
    kInnerReorder,   ///< Sec 4.1: tail reorder at a depleted segment
    kDrivingSwitch,  ///< Sec 4.2: driving-leg switch between driving rows
  };

  Kind kind = Kind::kInnerReorder;
  /// Pipeline position the change applies from (0 for a driving switch).
  size_t position = 0;
  std::vector<size_t> order_before;
  std::vector<size_t> order_after;
  /// Driving rows produced so far when the change fired.
  uint64_t driving_rows_produced = 0;
  /// Driving switches only: the demoted leg and the scan prefix recorded
  /// for its positional predicate.
  size_t demoted_table = SIZE_MAX;
  std::optional<ScanPosition> demoted_prefix;
};

}  // namespace ajr

// ExecObserver: instrumentation hook points inside PipelineExecutor.
//
// An observer sees the executor's row flow and adaptation decisions at the
// granularity the paper's safety arguments are stated at: driving rows with
// their scan positions, per-probe match counters, emitted join combinations
// (as RID tuples), depleted-state transitions, and structured reorder /
// switch events. The differential-fuzzing oracle's InvariantChecker
// (src/testing/oracle.h) is the main client; tests and tools may install
// their own.
//
// Cost contract: with no observer installed the executor pays one null
// check per hook site (all on cold or per-row — never per-cell — paths).
// Callbacks run synchronously on the executing thread; they must not call
// back into the executor.

#pragma once

#include <cstdint>
#include <vector>

#include "adaptive/events.h"
#include "storage/heap_table.h"
#include "storage/scan_position.h"

namespace ajr {

/// Receives executor instrumentation callbacks. All methods have empty
/// default bodies so observers override only what they need.
class ExecObserver {
 public:
  virtual ~ExecObserver() = default;

  /// A driving row was produced: table `t` yielded `rid`; `pos` is the
  /// cursor position of that row in the leg's scan order.
  virtual void OnDrivingRow(size_t t, Rid rid, const ScanPosition& pos) {
    (void)t, (void)rid, (void)pos;
  }

  /// Probing inner leg `t` at pipeline position `level` completed for one
  /// incoming row: `fetched` rows were fetched from storage, `after_edges`
  /// of them survived all join predicates, `out` also survived local and
  /// positional predicates (out <= after_edges <= fetched always holds in a
  /// correct run).
  virtual void OnProbe(size_t t, size_t level, uint64_t fetched,
                       uint64_t after_edges, uint64_t out) {
    (void)t, (void)level, (void)fetched, (void)after_edges, (void)out;
  }

  /// A full join combination reached the output. `rids` holds the RID of
  /// every table's current row in query-table order; in a correct run no
  /// combination is emitted twice, regardless of the switching schedule.
  virtual void OnEmit(const std::vector<Rid>& rids) { (void)rids; }

  /// Pipeline segment [level..k] reached its depleted state (Sec 4.1) —
  /// the only states where reordering is legal.
  virtual void OnDepleted(size_t level) { (void)level; }

  /// A join-order change was applied (see adaptive/events.h).
  virtual void OnAdaptation(const AdaptationEvent& event) { (void)event; }
};

}  // namespace ajr

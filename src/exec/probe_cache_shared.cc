#include "exec/probe_cache_shared.h"

#include <functional>

namespace ajr {

namespace {

/// Power of two >= 2 * capacity: <= 50% load keeps probe chains short.
size_t IndexSizeFor(size_t capacity) {
  size_t n = 2;
  while (n < capacity * 2) n <<= 1;
  return n;
}

size_t PowerOfTwoAtLeast(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// splitmix64 finalizer (same mix as exec/probe_cache.cc).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

SharedProbeCache::SharedProbeCache(size_t entries_per_stripe, size_t stripes)
    : stripe_capacity_(entries_per_stripe) {
  const size_t n = PowerOfTwoAtLeast(stripes == 0 ? 1 : stripes);
  stripe_mask_ = n - 1;
  stripes_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto st = std::make_unique<Stripe>();
    if (stripe_capacity_ > 0) {
      st->slots.resize(stripe_capacity_);
      st->index.assign(IndexSizeFor(stripe_capacity_), kNil);
      st->mask = st->index.size() - 1;
    }
    stripes_.push_back(std::move(st));
  }
}

uint64_t SharedProbeCache::LegSignature(const void* probe_index,
                                        std::string_view predicate_fingerprint,
                                        uint32_t epoch) {
  uint64_t h = Mix64(reinterpret_cast<uintptr_t>(probe_index));
  h = Mix64(h ^ std::hash<std::string_view>()(predicate_fingerprint));
  return Mix64(h ^ epoch);
}

uint64_t SharedProbeCache::HashKey(uint64_t sig, const IndexKey& key) {
  uint64_t h = key.type == DataType::kString
                   ? std::hash<std::string_view>()(key.str)
                   : Mix64(key.enc);
  return Mix64(h ^ sig);
}

bool SharedProbeCache::SlotMatches(const Slot& s, uint64_t hash, uint64_t sig,
                                   const IndexKey& key) {
  if (s.hash != hash || s.sig != sig) return false;
  if (key.type == DataType::kString) return s.is_string && s.str == key.str;
  return !s.is_string && s.enc == key.enc;
}

void SharedProbeCache::Unlink(Stripe& st, uint32_t s) {
  Slot& slot = st.slots[s];
  if (slot.lru_prev != kNil) {
    st.slots[slot.lru_prev].lru_next = slot.lru_next;
  } else {
    st.lru_head = slot.lru_next;
  }
  if (slot.lru_next != kNil) {
    st.slots[slot.lru_next].lru_prev = slot.lru_prev;
  } else {
    st.lru_tail = slot.lru_prev;
  }
  slot.lru_prev = slot.lru_next = kNil;
}

void SharedProbeCache::PushFront(Stripe& st, uint32_t s) {
  Slot& slot = st.slots[s];
  slot.lru_prev = kNil;
  slot.lru_next = st.lru_head;
  if (st.lru_head != kNil) st.slots[st.lru_head].lru_prev = s;
  st.lru_head = s;
  if (st.lru_tail == kNil) st.lru_tail = s;
}

void SharedProbeCache::EraseIndexAt(Stripe& st, size_t pos) {
  size_t hole = pos;
  size_t j = pos;
  while (true) {
    j = (j + 1) & st.mask;
    uint32_t s = st.index[j];
    if (s == kNil) break;
    size_t home = st.slots[s].hash & st.mask;
    if (((j - home) & st.mask) >= ((j - hole) & st.mask)) {
      st.index[hole] = s;
      hole = j;
    }
  }
  st.index[hole] = kNil;
}

std::unique_lock<std::mutex> SharedProbeCache::LockStripe(Stripe& st,
                                                          bool* conflict) {
  std::unique_lock<std::mutex> lock(st.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    if (conflict != nullptr) *conflict = true;
    lock.lock();
  }
  return lock;
}

bool SharedProbeCache::Lookup(uint64_t sig, const IndexKey& key, Result* out,
                              bool* conflict) {
  if (stripe_capacity_ == 0) return false;
  const uint64_t h = HashKey(sig, key);
  Stripe& st = StripeFor(h);
  std::unique_lock<std::mutex> lock = LockStripe(st, conflict);
  size_t pos = h & st.mask;
  while (st.index[pos] != kNil) {
    uint32_t s = st.index[pos];
    if (SlotMatches(st.slots[s], h, sig, key)) {
      if (st.lru_head != s) {
        Unlink(st, s);
        PushFront(st, s);
      }
      const Result& r = st.slots[s].result;
      out->matches.assign(r.matches.begin(), r.matches.end());
      out->fetched = r.fetched;
      out->work_units = r.work_units;
      return true;
    }
    pos = (pos + 1) & st.mask;
  }
  return false;
}

void SharedProbeCache::Insert(uint64_t sig, const IndexKey& key,
                              const std::vector<Rid>& matches, uint64_t fetched,
                              uint64_t work_units, bool* conflict) {
  if (stripe_capacity_ == 0) return;
  if (matches.size() > ProbeCache::kMaxMatchesPerEntry) return;
  const uint64_t h = HashKey(sig, key);
  Stripe& st = StripeFor(h);
  std::unique_lock<std::mutex> lock = LockStripe(st, conflict);
  size_t pos = h & st.mask;
  while (st.index[pos] != kNil) {
    uint32_t s = st.index[pos];
    if (SlotMatches(st.slots[s], h, sig, key)) {
      // Refresh: probes are deterministic, but overwriting keeps Insert
      // idempotent for racing producers of the same key.
      Slot& slot = st.slots[s];
      slot.result.matches.assign(matches.begin(), matches.end());
      slot.result.fetched = fetched;
      slot.result.work_units = work_units;
      if (st.lru_head != s) {
        Unlink(st, s);
        PushFront(st, s);
      }
      return;
    }
    pos = (pos + 1) & st.mask;
  }

  uint32_t s;
  if (st.used < stripe_capacity_) {
    s = static_cast<uint32_t>(st.used++);
  } else {
    // Recycle the stripe's LRU victim in place (buffers keep capacity).
    s = st.lru_tail;
    Unlink(st, s);
    size_t victim_pos = st.slots[s].hash & st.mask;
    while (st.index[victim_pos] != s) victim_pos = (victim_pos + 1) & st.mask;
    EraseIndexAt(st, victim_pos);
  }

  Slot& slot = st.slots[s];
  slot.hash = h;
  slot.sig = sig;
  slot.is_string = key.type == DataType::kString;
  if (slot.is_string) {
    slot.str.assign(key.str.data(), key.str.size());
    slot.enc = 0;
  } else {
    slot.enc = key.enc;
    slot.str.clear();
  }
  slot.result.matches.assign(matches.begin(), matches.end());
  slot.result.fetched = fetched;
  slot.result.work_units = work_units;

  pos = h & st.mask;
  while (st.index[pos] != kNil) pos = (pos + 1) & st.mask;
  st.index[pos] = s;
  PushFront(st, s);
}

size_t SharedProbeCache::size() const {
  size_t total = 0;
  for (const auto& st : stripes_) {
    std::lock_guard<std::mutex> lock(st->mu);
    total += st->used;
  }
  return total;
}

}  // namespace ajr

#include "exec/probe_cache.h"

#include <functional>
#include <string_view>

namespace ajr {

namespace {

/// Power of two >= 2 * capacity, so the open-addressed index stays at or
/// below 50% load and linear probe chains stay short.
size_t IndexSizeFor(size_t capacity) {
  size_t n = 2;
  while (n < capacity * 2) n <<= 1;
  return n;
}

/// splitmix64 finalizer: full-avalanche mix for numeric key encodings.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ProbeCache::ProbeCache(size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) return;
  slots_.resize(capacity_);
  index_.assign(IndexSizeFor(capacity_), kNil);
  mask_ = index_.size() - 1;
}

uint64_t ProbeCache::HashKey(const IndexKey& key, uint32_t epoch) {
  uint64_t h = key.type == DataType::kString
                   ? std::hash<std::string_view>()(key.str)
                   : Mix64(key.enc);
  return Mix64(h ^ epoch);
}

bool ProbeCache::SlotMatches(const Slot& s, uint64_t hash, const IndexKey& key,
                             uint32_t epoch) const {
  if (s.hash != hash || s.epoch != epoch) return false;
  if (key.type == DataType::kString) return s.is_string && s.str == key.str;
  return !s.is_string && s.enc == key.enc;
}

void ProbeCache::Unlink(uint32_t s) {
  Slot& slot = slots_[s];
  if (slot.lru_prev != kNil) {
    slots_[slot.lru_prev].lru_next = slot.lru_next;
  } else {
    lru_head_ = slot.lru_next;
  }
  if (slot.lru_next != kNil) {
    slots_[slot.lru_next].lru_prev = slot.lru_prev;
  } else {
    lru_tail_ = slot.lru_prev;
  }
  slot.lru_prev = slot.lru_next = kNil;
}

void ProbeCache::PushFront(uint32_t s) {
  Slot& slot = slots_[s];
  slot.lru_prev = kNil;
  slot.lru_next = lru_head_;
  if (lru_head_ != kNil) slots_[lru_head_].lru_prev = s;
  lru_head_ = s;
  if (lru_tail_ == kNil) lru_tail_ = s;
}

void ProbeCache::EraseIndexAt(size_t pos) {
  size_t hole = pos;
  size_t j = pos;
  while (true) {
    j = (j + 1) & mask_;
    uint32_t s = index_[j];
    if (s == kNil) break;
    size_t home = slots_[s].hash & mask_;
    // The entry at j may fill the hole iff the hole lies on the probe path
    // from its home slot to j.
    if (((j - home) & mask_) >= ((j - hole) & mask_)) {
      index_[hole] = s;
      hole = j;
    }
  }
  index_[hole] = kNil;
}

const ProbeCache::Result* ProbeCache::Lookup(const IndexKey& key, uint32_t epoch) {
  if (capacity_ == 0) return nullptr;
  const uint64_t h = HashKey(key, epoch);
  size_t pos = h & mask_;
  while (index_[pos] != kNil) {
    uint32_t s = index_[pos];
    if (SlotMatches(slots_[s], h, key, epoch)) {
      if (lru_head_ != s) {
        Unlink(s);
        PushFront(s);
      }
      return &slots_[s].result;
    }
    pos = (pos + 1) & mask_;
  }
  return nullptr;
}

void ProbeCache::Insert(const IndexKey& key, uint32_t epoch,
                        const std::vector<Rid>& matches, uint64_t fetched,
                        uint64_t work_units) {
  if (capacity_ == 0) return;
  if (matches.size() > kMaxMatchesPerEntry) return;
  const uint64_t h = HashKey(key, epoch);
  size_t pos = h & mask_;
  while (index_[pos] != kNil) {
    uint32_t s = index_[pos];
    if (SlotMatches(slots_[s], h, key, epoch)) {
      // Refresh: identical probes are deterministic, but overwriting keeps
      // Insert idempotent for callers that re-resolve after a bypass.
      Slot& slot = slots_[s];
      slot.result.matches.assign(matches.begin(), matches.end());
      slot.result.fetched = fetched;
      slot.result.work_units = work_units;
      if (lru_head_ != s) {
        Unlink(s);
        PushFront(s);
      }
      return;
    }
    pos = (pos + 1) & mask_;
  }

  uint32_t s;
  if (used_ < capacity_) {
    s = static_cast<uint32_t>(used_++);
  } else {
    // Recycle the LRU victim in place: unhook it from the index (probe from
    // its recorded hash) and reuse its buffers.
    s = lru_tail_;
    Unlink(s);
    size_t victim_pos = slots_[s].hash & mask_;
    while (index_[victim_pos] != s) victim_pos = (victim_pos + 1) & mask_;
    EraseIndexAt(victim_pos);
  }

  Slot& slot = slots_[s];
  slot.hash = h;
  slot.epoch = epoch;
  slot.is_string = key.type == DataType::kString;
  if (slot.is_string) {
    slot.str.assign(key.str.data(), key.str.size());
    slot.enc = 0;
  } else {
    slot.enc = key.enc;
    slot.str.clear();
  }
  slot.result.matches.assign(matches.begin(), matches.end());
  slot.result.fetched = fetched;
  slot.result.work_units = work_units;

  // Re-probe for the free position: the backward shift above may have
  // rearranged the chain that contained the victim.
  pos = h & mask_;
  while (index_[pos] != kNil) pos = (pos + 1) & mask_;
  index_[pos] = s;
  PushFront(s);
}

void ProbeCache::Clear() {
  if (capacity_ == 0) return;
  used_ = 0;
  lru_head_ = lru_tail_ = kNil;
  index_.assign(index_.size(), kNil);
  for (Slot& s : slots_) s.lru_prev = s.lru_next = kNil;
}

}  // namespace ajr

// FaultInjection: deliberate executor bugs for oracle validation.
//
// A correctness harness that never fires is indistinguishable from one
// that works. These switches let tests re-introduce the exact failure
// modes the adaptive executor's design rules out, so the differential
// oracle and the invariant checker can prove they would catch a future
// regression (and the shrinker can be exercised on real failures):
//
//   disable_positional_predicates — skips the Sec 4.2 positional predicate
//     on demoted driving legs, recreating the duplicate-emission bug that
//     adaptive reordering without duplicate prevention suffers.
//   double_emit — emits every output row twice: a pure sink-layer bug that
//     result-multiset comparison must flag even when RID-tuple invariants
//     are not being tracked.
//
// Production runs never install a FaultInjection; the executor pays one
// null-pointer check at the two affected sites.

#pragma once

namespace ajr {

/// Testing-only executor sabotage. All flags default to off.
struct FaultInjection {
  /// Skip positional predicates on demoted driving legs (Sec 4.2 bug).
  bool disable_positional_predicates = false;
  /// Emit every output row twice.
  bool double_emit = false;
};

}  // namespace ajr

// PipelineExecutor: pipelined indexed nested-loop join execution with
// adaptive join reordering (Sec 3.1, 4).
//
// The executor runs one PipelinePlan as a single get-next loop over a stack
// of legs. The loop's structure makes the paper's depleted states explicit:
// the only moment leg i pulls a new row from leg i-1 is when leg i's match
// buffer for the current incoming row is exhausted — at that moment the
// whole segment i..k is depleted and may be reordered (Sec 4.1). Driving
// checks fire between driving rows, when the entire pipeline is depleted
// (Sec 4.2).
//
// Duplicate prevention is by construction (Sec 4.2): a demoted driving leg
// carries a positional predicate on its scan order — "key > k* OR (key = k*
// AND rid > r*)" for an index scan, "rid > r*" for a table scan — and its
// cursor is kept so a re-promotion resumes the original scan.

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "adaptive/controller.h"
#include "adaptive/monitor.h"
#include "common/cancellation.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/work_counter.h"
#include "exec/probe_cache.h"
#include "exec/probe_cache_shared.h"
#include "expr/evaluator.h"
#include "optimize/planner.h"
#include "storage/cursors.h"

namespace ajr {

class AdaptationPolicy;
class AdaptiveCoordinator;
class ExecObserver;
struct FaultInjection;
struct ParallelWorkerSync;

/// Counters reported by one execution.
struct ExecStats {
  uint64_t rows_out = 0;
  uint64_t work_units = 0;
  uint64_t driving_rows_produced = 0;
  uint64_t inner_checks = 0;
  uint64_t inner_reorders = 0;
  uint64_t driving_checks = 0;
  uint64_t driving_switches = 0;
  /// Batched-probe observability (never feeds adaptation decisions):
  /// memoization hits/misses, batches filled, keys gathered into batches,
  /// and physical root-to-leaf descents avoided (hint resumes + cache
  /// hits). All zero when batching and memoization are disabled.
  uint64_t probe_cache_hits = 0;
  uint64_t probe_cache_misses = 0;
  uint64_t probe_batches = 0;
  uint64_t probe_batch_keys = 0;
  uint64_t probe_descents_saved = 0;
  /// Cross-query sharing observability (exec/probe_cache_shared.h,
  /// runtime/shared_scan.h; all zero when sharing is off). Shared-cache
  /// counters accumulate per worker; shared-scan counters are read off the
  /// morsel dispenser by the orchestrator after the run.
  uint64_t probe_cache_shared_hits = 0;
  uint64_t probe_cache_shared_misses = 0;
  uint64_t probe_cache_shared_conflicts = 0;
  uint64_t shared_scan_attaches = 0;
  uint64_t shared_scan_passes_saved = 0;
  uint64_t scan_morsels_produced = 0;
  uint64_t scan_morsels_consumed = 0;
  /// Morsel-parallel observability (all zero in serial runs): workers that
  /// processed at least one morsel, morsels processed, and monitor folds
  /// into the shared AdaptiveCoordinator.
  uint64_t parallel_workers = 0;
  uint64_t morsels = 0;
  uint64_t monitor_folds = 0;
  /// AdaptationPolicy observability (adaptive/policy.h): Decide() calls and
  /// what they returned, plus the policy's cumulative empirical regret in
  /// milli-reward units (0 for rank/static, which track no regret). Owned
  /// by the decision host — the serial executor or the parallel
  /// coordinator — so workers report 0.
  uint64_t policy_decisions = 0;
  uint64_t policy_reorders = 0;
  uint64_t policy_switches = 0;
  uint64_t policy_regret_x1000 = 0;
  /// Total join-order changes (inner reorders + driving switches) — the
  /// quantity Fig 10 plots against the history window size.
  uint64_t order_switches() const { return inner_reorders + driving_switches; }
  std::vector<size_t> initial_order;
  std::vector<size_t> final_order;
  double wall_seconds = 0;
  /// Human-readable adaptation event log (one line per reorder/switch):
  /// populated only when events occur, so it costs nothing on the hot path.
  std::vector<std::string> events;

  /// Accumulates a parallel worker's additive counters into this object.
  /// Orders, events, check/reorder counts, and wall time are owned by the
  /// coordinator/orchestrator and are NOT merged here.
  void MergeFrom(const ExecStats& worker);
};

/// Receives each projected output row.
using RowSink = std::function<void(const Row&)>;

/// Executes one PipelinePlan. Single-use: construct, Execute once.
class PipelineExecutor {
 public:
  /// `plan` must outlive the executor. Pass `options.reorder_inners =
  /// options.reorder_driving = false` for the static (no-switch) baseline.
  PipelineExecutor(const PipelinePlan* plan, AdaptiveOptions options = {});
  ~PipelineExecutor();

  /// Runs the plan to completion, invoking `sink` per output row (sink may
  /// be null to count only). Returns Internal on a second call (the
  /// executor is single-use), Cancelled / DeadlineExceeded when a
  /// cancellation token stopped the run early.
  StatusOr<ExecStats> Execute(const RowSink& sink);

  /// Installs a cooperative cancellation token, polled at the executor's
  /// depleted states (the paper's reorder-check points, so no probe
  /// hot-path cost): the cancel flag at every depleted state, the deadline
  /// at driving-row boundaries and every 1024th inner depletion. `token`
  /// must outlive Execute(); may be null (default) for non-cancellable
  /// runs. Call before Execute().
  void set_cancellation_token(const CancellationToken* token) {
    cancel_token_ = token;
  }

  /// Installs an instrumentation observer (see exec/exec_observer.h):
  /// driving rows, probe counters, emitted RID tuples, depleted states, and
  /// adaptation events. `observer` must outlive Execute(); may be null
  /// (default). Without an observer each hook site costs one null check.
  /// Call before Execute().
  void set_observer(ExecObserver* observer) { observer_ = observer; }

  /// Installs deliberate executor bugs (see exec/fault_injection.h) so the
  /// fuzzing oracle can prove it catches them. `faults` must outlive
  /// Execute(); null (default) means no sabotage. Call before Execute().
  void set_fault_injection(const FaultInjection* faults) { faults_ = faults; }

  /// Installs an engine-wide metrics registry: at the end of Execute() the
  /// run's probe-batch/cache counters are added to the `exec.probe_*`
  /// counters (one Add per counter per query — nothing on the probe hot
  /// path). `metrics` must outlive Execute(); may be null (default). Call
  /// before Execute().
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Injects the AdaptationPolicy that will own this run's reorder/switch
  /// decisions. Default (no call): Execute() instantiates the policy named
  /// by options.policy via MakePolicy. Call before Execute(); mainly for
  /// tests that need to inspect the policy (e.g. RegretBoundedPolicy arm
  /// statistics) after the run.
  void set_policy(std::unique_ptr<AdaptationPolicy> policy);

  /// The policy driving this run (null until Execute() unless injected).
  AdaptationPolicy* policy() const { return policy_.get(); }

  /// Installs a cross-query shared probe cache (exec/probe_cache_shared.h):
  /// FillProbeBatch consults it after a local-cache miss and publishes
  /// physically resolved probes into it, so hot probe results are computed
  /// once per fleet instead of once per query/worker. Replayed outcomes
  /// charge the same as-if-fresh work units as a physical probe, so stats,
  /// monitors, and decisions are unchanged. `cache` must outlive the run;
  /// may be null (default = no sharing). Call before Execute().
  void set_shared_cache(SharedProbeCache* cache) { shared_cache_ = cache; }

  /// Morsel-parallel worker mode (see exec/adaptive_coordinator.h): driving
  /// rows come from the coordinator's shared morsel source instead of a
  /// private cursor, reorder decisions come from the coordinator's merged
  /// monitors (adopted at driving-row boundaries — full-pipeline depleted
  /// states), and worker-local monitor deltas are folded back periodically.
  /// Single-use, like Execute(). Called by ParallelPipelineExecutor
  /// (runtime/parallel_executor.h), not by user code.
  StatusOr<ExecStats> ExecuteWorker(AdaptiveCoordinator* coordinator,
                                    const RowSink& sink, size_t worker_id = 0);

 private:
  friend class AdaptiveCoordinator;

  /// One prefilled probe: the key to look up, the RID of the row the key
  /// was read from (drain-time sanity check), and — once resolved — the
  /// probe's replayable outcome (see ProbeLegBatched).
  struct BatchedProbe {
    IndexKey key;  ///< string bytes borrow the source table's pool (stable)
    Rid key_src_rid = 0;
    std::vector<Rid> matches;
    uint64_t fetched = 0;
    uint64_t work_units = 0;
  };

  /// Per-leg runtime state.
  struct LegRt {
    const TableEntry* entry = nullptr;
    /// Full local predicate — applied in the inner role, where the probe
    /// index covers only the join predicate.
    BoundPredicatePtr local_bound;
    /// Residual local predicate for the driving role (conjuncts not
    /// absorbed into the driving index's ranges).
    BoundPredicatePtr driving_residual;
    /// Column index on this table's side of each edge (SIZE_MAX = edge
    /// does not touch this table).
    std::vector<size_t> edge_col;
    /// Tallest probe-index height (cost-model input).
    double index_height = 3;

    // Driving-scan state.
    std::unique_ptr<ScanCursor> cursor;
    double total_raw_entries = 0;  ///< entries the full driving scan covers
    /// Processed prefix (positional predicate) once demoted; in the scan
    /// order of `cursor`.
    std::optional<ScanPosition> prefix;
    /// Column index of the prefix's key (SIZE_MAX = RID order).
    size_t prefix_col = SIZE_MAX;
    /// Remaining entries/fraction behind `prefix`, frozen at demotion time —
    /// the prefix only moves when the leg drives again, so caching keeps
    /// the per-check cost free of B+-tree descents.
    double cached_remaining_entries = 0;
    double cached_remaining_fraction = 1.0;
    /// Latest coordinator demotion sequence number applied to this leg
    /// (worker mode only; see ParallelDemotion::seq).
    uint64_t demote_seq_seen = 0;

    // Monitors.
    LegMonitor inner_monitor;
    DrivingMonitor driving_monitor;

    // Inner-role state for the current incoming row.
    std::vector<Rid> matches;
    size_t match_pos = 0;
    bool loaded = false;
    size_t probe_edge = SIZE_MAX;
    std::vector<size_t> applicable_edges;  ///< edges to preceding tables
    uint64_t incoming_since_check = 0;
    /// Inner-check interval schedule (grows under back-off).
    CheckBackoff check_backoff;

    // Batched-probe state (single-edge indexed legs; see ProbeLegBatched).
    /// Prefilled probes for this leg's upcoming incoming rows; discarded at
    /// every reorder touching this position, so a batch never outlives the
    /// pipeline shape it was built for. Only [0, batch_len) is live —
    /// entries beyond keep their buffers for reuse, so steady-state refills
    /// allocate nothing.
    std::vector<BatchedProbe> batch;
    size_t batch_len = 0;
    size_t batch_pos = 0;
    /// Scratch for the fill-time key sort (reused across fills).
    std::vector<uint32_t> batch_by_key;
    /// Point-probe backend serving this leg (selected via
    /// AdaptiveOptions::index_backend through IndexInfo::ProbeIndex) plus
    /// its descent memory; both rebuilt when the target index changes.
    const Index* probe_target = nullptr;
    std::unique_ptr<Index::ProbeState> probe_state;
    /// RID scratch for interface probes (reused, no steady-state allocs).
    std::vector<Rid> probe_scratch;
    /// Memoized probe results for hot keys; lazily built, epoch-tagged so a
    /// demotion's positional predicate retires every earlier entry.
    std::unique_ptr<ProbeCache> cache;
    uint32_t cache_epoch = 0;
    /// Edge the cache's entries were probed through (SIZE_MAX = none yet);
    /// a different edge means a different index, so the cache is cleared.
    size_t cache_edge = SIZE_MAX;
    /// Shared-cache leg signature: probe-index identity + local-predicate
    /// fingerprint + cache epoch, so entries from a different predicate or a
    /// pre-demotion epoch can never be replayed. Recomputed whenever the
    /// probe target or the epoch it was built for changes.
    uint64_t shared_sig = 0;
    const Index* shared_sig_index = nullptr;
    uint32_t shared_sig_epoch = 0;
  };

  Status InitLegs();
  Status CreateDrivingCursor(size_t t);
  /// Recomputes position-derived state (applicable edges, probe edge,
  /// loaded flags) for pipeline positions [from..k].
  void RefreshPositions(size_t from);
  /// `min_leg_samples` gates monitored local selectivities (below it the
  /// optimizer estimate is used). Inner reorders pass a small value —
  /// they are cheap and reversible, so acting on young monitors is fine —
  /// while driving switches pass options_.min_leg_samples (a cold monitor
  /// must not make a candidate driving plan look free).
  CostInputs BuildRuntimeCostInputs(uint64_t min_leg_samples) const;
  /// Exact remaining scan entries for a leg that has (or had) a cursor.
  double RemainingEntries(size_t t) const;
  bool NextDrivingRow();
  void ProbeLeg(size_t level);
  /// Batched fast path of ProbeLeg for single-edge indexed legs: drains one
  /// prefilled BatchedProbe, replaying its exact per-row accounting.
  void ProbeLegBatched(size_t level, const IndexInfo* probe_index);
  /// Gathers up to probe_batch_size pending probe keys for the leg at
  /// `level` and resolves them physically (cache, then sorted hinted
  /// descent), charging work to per-probe local counters for later replay.
  void FillProbeBatch(size_t level, const IndexInfo* probe_index, size_t other);
  void DrivingCheck();
  void InnerCheck(size_t level);
  void Emit(const RowSink& sink);
  void EmitOnce(const RowSink& sink);
  /// Worker mode: applies a coordinator decision snapshot (new demotions,
  /// then the published order) at a full-pipeline depleted state, and
  /// reports the change through the observer once this worker has produced
  /// rows (so invariant I4's depleted-state precondition holds).
  void AdoptParallelSync(const ParallelWorkerSync& sync);
  /// Worker mode: folds this worker's monitor deltas into the coordinator.
  void FoldMonitors(AdaptiveCoordinator* coordinator);

  const PipelinePlan* plan_;
  AdaptiveOptions options_;
  std::vector<LegRt> legs_;        // indexed by query table index
  std::vector<size_t> order_;      // pipeline order; order_[0] = driving
  /// Current row of each table as a zero-copy view into its typed pages;
  /// owned Rows exist only at the Emit projection boundary.
  std::vector<RowView> current_rows_;
  /// RID of each table's current row (parallel to current_rows_): the
  /// identity of an emitted join combination for the observer hook.
  std::vector<Rid> current_rids_;
  std::vector<EdgeMonitor> edge_monitors_;
  std::vector<std::pair<size_t, size_t>> output_cols_;  // (table, column idx)
  WorkCounter wc_;
  uint64_t produced_since_check_ = 0;
  CheckBackoff driving_backoff_;
  /// Decision policy (serial mode only; workers adopt coordinator
  /// decisions and never own a policy).
  std::unique_ptr<AdaptationPolicy> policy_;
  /// Policy capabilities, cached at Execute() entry so the get-next loop's
  /// gates stay branch-on-bool (identical cost to the old reorder_* gates).
  bool adapt_inners_ = false;
  bool adapt_driving_ = false;
  const CancellationToken* cancel_token_ = nullptr;
  ExecObserver* observer_ = nullptr;
  const FaultInjection* faults_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  SharedProbeCache* shared_cache_ = nullptr;
  uint64_t cancel_polls_ = 0;
  bool executed_ = false;
  /// Worker mode: the coordinator epoch this worker last adopted.
  uint64_t parallel_epoch_ = 0;
  /// Worker mode: rows/work already reported to the coordinator, so each
  /// fold carries only the delta since the previous one.
  uint64_t folded_rows_ = 0;
  uint64_t folded_work_ = 0;
  ExecStats stats_;
};

}  // namespace ajr

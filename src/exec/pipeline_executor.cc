#include "exec/pipeline_executor.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "adaptive/policy.h"
#include "common/check.h"
#include "common/string_util.h"
#include "exec/exec_observer.h"
#include "exec/fault_injection.h"
#include "exec/probe_cache.h"
#include "storage/key_codec.h"

namespace ajr {

namespace {

// Sample floor for monitored selectivities in inner-reorder decisions (see
// BuildRuntimeCostInputs doc comment).
constexpr uint64_t kInnerMinSamples = 2;

// Three-way compare of two probe keys of one index's key type, in index
// order (numeric order-encodings compare as integers, strings as bytes).
int CompareKeys(const IndexKey& a, const IndexKey& b) {
  if (a.type != DataType::kString) {
    return a.enc < b.enc ? -1 : (a.enc > b.enc ? 1 : 0);
  }
  int c = a.str.compare(b.str);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

}  // namespace

PipelineExecutor::PipelineExecutor(const PipelinePlan* plan, AdaptiveOptions options)
    : plan_(plan), options_(options) {}

PipelineExecutor::~PipelineExecutor() = default;

void PipelineExecutor::set_policy(std::unique_ptr<AdaptationPolicy> policy) {
  policy_ = std::move(policy);
}

Status PipelineExecutor::InitLegs() {
  const JoinQuery& q = plan_->query;
  const size_t n = q.tables.size();
  legs_.resize(n);
  current_rows_.assign(n, RowView());
  current_rids_.assign(n, 0);
  edge_monitors_.assign(q.edges.size(),
                        EdgeMonitor(options_.history_window, options_.averaging));
  for (size_t t = 0; t < n; ++t) {
    LegRt& leg = legs_[t];
    leg.entry = plan_->entries[t];
    leg.check_backoff = CheckBackoff(options_.check_frequency, options_.check_backoff);
    leg.inner_monitor = LegMonitor(options_.history_window, options_.averaging);
    leg.driving_monitor = DrivingMonitor(options_.history_window, options_.averaging);
    // Bind against the table's string pool so string-equality constants
    // lower to interned-id compares.
    const StringPool* pool = &leg.entry->table().pool();
    AJR_ASSIGN_OR_RETURN(
        leg.local_bound,
        BindPredicate(q.local_predicates[t], leg.entry->schema(), pool));
    AJR_ASSIGN_OR_RETURN(
        leg.driving_residual,
        BindPredicate(plan_->access[t].driving.residual, leg.entry->schema(), pool));
    leg.edge_col.assign(q.edges.size(), SIZE_MAX);
    for (const auto& e : q.edges) {
      if (!e.Touches(t)) continue;
      AJR_ASSIGN_OR_RETURN(size_t col,
                           leg.entry->schema().ColumnIndex(e.ColumnOn(t)));
      leg.edge_col[e.edge_id] = col;
    }
    for (const auto& idx : leg.entry->indexes()) {
      leg.index_height =
          std::max(leg.index_height, static_cast<double>(idx->tree->height()));
    }
  }
  output_cols_.clear();
  for (const auto& oc : q.output) {
    AJR_ASSIGN_OR_RETURN(size_t col,
                         plan_->entries[oc.table]->schema().ColumnIndex(oc.column));
    output_cols_.emplace_back(oc.table, col);
  }
  return Status::OK();
}

Status PipelineExecutor::CreateDrivingCursor(size_t t) {
  LegRt& leg = legs_[t];
  const DrivingAccess& access = plan_->access[t].driving;
  if (access.index != nullptr) {
    leg.cursor = std::make_unique<IndexScanCursor>(access.index->tree.get(),
                                                   access.ranges);
    leg.total_raw_entries = static_cast<double>(
        CountRangeEntriesAfter(*access.index->tree, access.ranges, std::nullopt));
    leg.prefix_col = access.index->column_idx;
  } else {
    leg.cursor = std::make_unique<TableScanCursor>(&leg.entry->table());
    leg.total_raw_entries = static_cast<double>(leg.entry->table().num_rows());
    leg.prefix_col = SIZE_MAX;
  }
  return Status::OK();
}

void PipelineExecutor::RefreshPositions(size_t from) {
  CostInputs in = BuildRuntimeCostInputs(kInnerMinSamples);
  uint64_t mask = 0;
  for (size_t i = 0; i < from; ++i) mask |= uint64_t{1} << order_[i];
  for (size_t i = from; i < order_.size(); ++i) {
    size_t t = order_[i];
    LegRt& leg = legs_[t];
    leg.loaded = false;
    leg.matches.clear();
    leg.match_pos = 0;
    // Any reorder at or above this position invalidates read-ahead: the
    // prefilled keys were gathered for the old pipeline shape.
    leg.batch_len = 0;
    leg.batch_pos = 0;
    leg.applicable_edges.clear();
    for (const auto& e : plan_->query.edges) {
      if (e.Touches(t) && (mask & (uint64_t{1} << e.Other(t))) != 0) {
        leg.applicable_edges.push_back(e.edge_id);
      }
    }
    leg.probe_edge = ChooseProbeEdge(in, t, mask);
    mask |= uint64_t{1} << t;
  }
}

CostInputs PipelineExecutor::BuildRuntimeCostInputs(uint64_t min_leg_samples) const {
  CostInputs in;
  in.query = &plan_->query;
  const size_t n = plan_->query.tables.size();
  in.tables.resize(n);
  for (size_t t = 0; t < n; ++t) {
    const LegRt& leg = legs_[t];
    LegParams& p = in.tables[t];
    p.cardinality = static_cast<double>(leg.entry->StatsCardinality());
    p.index_height = leg.index_height;
    p.local_sel = EffectiveLocalSel(leg.inner_monitor, leg.driving_monitor,
                                    plan_->est_local_sel[t],
                                    plan_->access[t].driving.est_slpi,
                                    min_leg_samples);
    // A demoted leg's positional predicate shrinks its effective
    // cardinality to the unprocessed remainder.
    if (leg.prefix.has_value()) {
      p.local_sel *= leg.cached_remaining_fraction;
    }
  }
  in.edge_sel.resize(plan_->query.edges.size());
  for (size_t e = 0; e < in.edge_sel.size(); ++e) {
    in.edge_sel[e] =
        edge_monitors_[e].Selectivity(plan_->est_edge_sel[e], options_.min_edge_pairs);
  }
  return in;
}

double PipelineExecutor::RemainingEntries(size_t t) const {
  const LegRt& leg = legs_[t];
  assert(leg.cursor != nullptr);
  const DrivingAccess& access = plan_->access[t].driving;
  // Position: for the current driving leg, the live cursor position; for a
  // demoted leg, its recorded prefix.
  std::optional<ScanPosition> pos = leg.prefix;
  if (t == order_[0] && leg.driving_monitor.scanned_total() > 0) {
    pos = leg.cursor->CurrentPosition();
  }
  if (access.index != nullptr) {
    return static_cast<double>(
        CountRangeEntriesAfter(*access.index->tree, access.ranges, pos));
  }
  size_t total = leg.entry->table().num_rows();
  size_t done = pos.has_value() ? static_cast<size_t>(pos->rid) + 1 : 0;
  return static_cast<double>(total > done ? total - done : 0);
}

bool PipelineExecutor::NextDrivingRow() {
  size_t t = order_[0];
  LegRt& leg = legs_[t];
  Rid rid;
  while (leg.cursor->Next(&wc_, &rid)) {
    RowView row = leg.entry->table().Fetch(rid, &wc_);
    bool pass = leg.driving_residual->EvalCounted(row, &wc_);
    leg.driving_monitor.RecordScannedEntry(pass);
    if (!pass) continue;
    current_rows_[t] = row;
    current_rids_[t] = rid;
    ++produced_since_check_;
    ++stats_.driving_rows_produced;
    if (observer_ != nullptr) {
      observer_->OnDrivingRow(t, rid, leg.cursor->CurrentPosition());
    }
    return true;
  }
  return false;
}

void PipelineExecutor::ProbeLeg(size_t level) {
  size_t t = order_[level];
  LegRt& leg = legs_[t];
  leg.matches.clear();
  leg.match_pos = 0;
  leg.loaded = true;
  ++leg.incoming_since_check;
  const IndexInfo* probe_index =
      leg.probe_edge == SIZE_MAX ? nullptr
                                 : plan_->access[t].probe_index_by_edge[leg.probe_edge];
  // Batched fast path: only for indexed legs whose sole applicable edge is
  // the probe edge. There the per-row path's residual-edge loop is empty
  // (the probe edge is known to match), so a probe's entire outcome —
  // matches, fetched count, work units — is a pure function of the probe
  // key and can be resolved ahead of time and replayed. Multi-edge,
  // unindexed, and cartesian legs keep the per-row path below.
  if (probe_index != nullptr &&
      (options_.probe_batch_size > 1 || options_.probe_cache_entries > 0) &&
      leg.applicable_edges.size() == 1 &&
      leg.applicable_edges[0] == leg.probe_edge) {
    ProbeLegBatched(level, probe_index);
    return;
  }
  const uint64_t work_before = wc_.total();
  const JoinQuery& q = plan_->query;
  const double table_card = static_cast<double>(leg.entry->table().num_rows());

  double fetched = 0, after_edges = 0, out = 0;
  auto consider = [&](Rid rid, const RowView& row, bool probe_edge_known_to_match) {
    // Residual join predicates (edges other than the probe edge).
    for (size_t e2 : leg.applicable_edges) {
      if (e2 == leg.probe_edge && probe_edge_known_to_match) continue;
      const JoinEdge& edge = q.edges[e2];
      size_t other = edge.Other(t);
      ChargeWork(&wc_, WorkCounter::kPredicateEval);
      bool eq = row.CellEquals(leg.edge_col[e2], current_rows_[other],
                               legs_[other].edge_col[e2]);
      if (e2 != leg.probe_edge) edge_monitors_[e2].Record(1, eq ? 1 : 0);
      if (!eq) return;
    }
    after_edges += 1;
    if (!leg.local_bound->EvalCounted(row, &wc_)) return;
    // Positional predicate of a demoted driving leg (Sec 4.2).
    if (leg.prefix.has_value() &&
        !(faults_ != nullptr && faults_->disable_positional_predicates)) {
      ChargeWork(&wc_, WorkCounter::kPredicateEval);
      bool after = leg.prefix_col == SIZE_MAX
                       ? leg.prefix->StrictlyBeforeRid(rid)
                       : leg.prefix->StrictlyBefore(row, leg.prefix_col, rid);
      if (!after) return;
    }
    out += 1;
    leg.matches.push_back(rid);
  };

  if (probe_index != nullptr) {
    const JoinEdge& edge = q.edges[leg.probe_edge];
    size_t other = edge.Other(t);
    // Probe with the other side's cell directly — no Value materialization;
    // string keys borrow bytes from the other table's pool (stable storage).
    IndexKey key = EncodeKeyFromCell(current_rows_[other],
                                     legs_[other].edge_col[leg.probe_edge]);
    // Point probes go through the selected backend (B+-tree or ART); the
    // Index charge contract keeps work units identical either way. The
    // positional-predicate filter runs below on fetched rows, so live
    // prefixes need no index-side positional support.
    const Index* pidx = probe_index->ProbeIndex(options_.index_backend);
    leg.probe_scratch.clear();
    pidx->Probe(key, &wc_, &leg.probe_scratch);
    for (Rid rid : leg.probe_scratch) {
      RowView row = leg.entry->table().Fetch(rid, &wc_);
      fetched += 1;
      consider(rid, row, /*probe_edge_known_to_match=*/true);
    }
    edge_monitors_[leg.probe_edge].Record(table_card, fetched);
  } else if (leg.probe_edge != SIZE_MAX) {
    // No index on the join column: filtered full scan (never hit by the DMV
    // workload, kept for generality).
    const JoinEdge& edge = q.edges[leg.probe_edge];
    size_t other = edge.Other(t);
    const RowView& other_row = current_rows_[other];
    size_t other_col = legs_[other].edge_col[leg.probe_edge];
    size_t my_col = leg.edge_col[leg.probe_edge];
    for (Rid rid = 0; rid < leg.entry->table().num_rows(); ++rid) {
      RowView row = leg.entry->table().Fetch(rid, &wc_);
      ChargeWork(&wc_, WorkCounter::kPredicateEval);
      if (!row.CellEquals(my_col, other_row, other_col)) continue;
      fetched += 1;
      consider(rid, row, /*probe_edge_known_to_match=*/true);
    }
    edge_monitors_[leg.probe_edge].Record(table_card, fetched);
  } else {
    // Cartesian leg (validated queries are connected, so unreachable), but
    // stay total: every row is a candidate.
    for (Rid rid = 0; rid < leg.entry->table().num_rows(); ++rid) {
      RowView row = leg.entry->table().Fetch(rid, &wc_);
      fetched += 1;
      consider(rid, row, false);
    }
  }
  leg.inner_monitor.RecordIncomingRow(after_edges, out,
                                      static_cast<double>(wc_.total() - work_before));
  if (observer_ != nullptr) {
    observer_->OnProbe(t, level, static_cast<uint64_t>(fetched),
                       static_cast<uint64_t>(after_edges),
                       static_cast<uint64_t>(out));
  }
}

void PipelineExecutor::ProbeLegBatched(size_t level, const IndexInfo* probe_index) {
  size_t t = order_[level];
  LegRt& leg = legs_[t];
  const JoinEdge& edge = plan_->query.edges[leg.probe_edge];
  const size_t other = edge.Other(t);
  if (leg.batch_pos >= leg.batch_len) FillProbeBatch(level, probe_index, other);
  BatchedProbe& bp = leg.batch[leg.batch_pos++];
  // Batches are discarded at every reorder and never span driving rows, so
  // the prefilled key must have been read from the row that is current at
  // this table now — anything else is an executor bug, not a soft miss.
  AJR_CHECK(bp.key_src_rid == current_rids_[other]);

  // Replay the probe's accounting exactly as the per-row path would charge
  // it at this moment. With a single applicable edge the per-row path's
  // after-edges count equals its fetched count, and no residual edge
  // monitor is touched, so the monitors, the observer, and the work total
  // below reproduce it bit for bit — the adaptive controller and the
  // differential oracle cannot tell the paths apart.
  wc_.Add(bp.work_units);
  const double fetched = static_cast<double>(bp.fetched);
  const double out = static_cast<double>(bp.matches.size());
  edge_monitors_[leg.probe_edge].Record(
      static_cast<double>(leg.entry->table().num_rows()), fetched);
  leg.inner_monitor.RecordIncomingRow(fetched, out,
                                      static_cast<double>(bp.work_units));
  if (observer_ != nullptr) {
    observer_->OnProbe(t, level, bp.fetched, bp.fetched,
                       static_cast<uint64_t>(bp.matches.size()));
  }
  // Swap, not move: the batch entry inherits the cleared match buffer and
  // keeps its capacity for the next fill.
  leg.matches.swap(bp.matches);
}

void PipelineExecutor::FillProbeBatch(size_t level, const IndexInfo* probe_index,
                                      size_t other) {
  size_t t = order_[level];
  LegRt& leg = legs_[t];
  leg.batch_len = 0;
  leg.batch_pos = 0;
  const size_t other_col = legs_[other].edge_col[leg.probe_edge];
  const size_t cap = std::max<size_t>(1, options_.probe_batch_size);
  auto add_key = [&leg](IndexKey key, Rid src_rid) {
    if (leg.batch_len == leg.batch.size()) leg.batch.emplace_back();
    BatchedProbe& bp = leg.batch[leg.batch_len++];
    bp.key = key;
    bp.key_src_rid = src_rid;
    bp.matches.clear();
    bp.fetched = 0;
    bp.work_units = 0;
  };

  // Key 0 is the incoming row being probed right now. Further keys come
  // from the parent leg's still-pending matches: those are exactly the
  // rows this leg will be probed with next, unless a reorder discards the
  // batch first. The driving leg (a level-1 probe's parent) has no match
  // buffer to read ahead from, and a key source above the parent keeps the
  // key constant for the parent's whole segment, so both cases get a batch
  // of one (memoization still applies).
  add_key(EncodeKeyFromCell(current_rows_[other], other_col), current_rids_[other]);
  if (level >= 2 && other == order_[level - 1]) {
    const LegRt& parent = legs_[other];
    for (size_t i = parent.match_pos;
         i < parent.matches.size() && leg.batch_len < cap; ++i) {
      Rid prid = parent.matches[i];
      // View, not Fetch: the executor's own advance views match rows
      // without charging, so reading ahead must not charge either.
      RowView row = parent.entry->table().View(prid);
      add_key(EncodeKeyFromCell(row, other_col), prid);
    }
  }
  stats_.probe_batches += 1;
  stats_.probe_batch_keys += leg.batch_len;

  // (Re)target the per-leg probe machinery at the current probe index
  // through the selected backend.
  const Index* pidx = probe_index->ProbeIndex(options_.index_backend);
  if (leg.probe_target != pidx) {
    leg.probe_target = pidx;
    leg.probe_state = pidx->NewProbeState();
  }
  const bool cache_on = options_.probe_cache_entries > 0;
  if (cache_on && leg.cache == nullptr) {
    leg.cache = std::make_unique<ProbeCache>(options_.probe_cache_entries);
  }
  if (cache_on && leg.cache_edge != leg.probe_edge) {
    leg.cache->Clear();
    leg.cache_edge = leg.probe_edge;
  }
  // Bypass (neither read nor write) while the positional predicate is
  // live: its filter depends on the demotion point, not just the key.
  const bool cache_usable = cache_on && !leg.prefix.has_value();
  // The cross-query shared cache follows the same bypass rule. Its leg
  // signature pins the probe index, the leg's local predicate, and the
  // local cache epoch — a demotion bumps the epoch and so retires only
  // this leg's shared entries; other legs' stripes survive untouched.
  const bool shared_usable = shared_cache_ != nullptr && cache_usable;
  if (shared_usable && (leg.shared_sig_index != pidx ||
                        leg.shared_sig_epoch != leg.cache_epoch)) {
    const ExprPtr& pred = plan_->query.local_predicates[t];
    leg.shared_sig = SharedProbeCache::LegSignature(
        pidx, pred != nullptr ? pred->ToString() : std::string(),
        leg.cache_epoch);
    leg.shared_sig_index = pidx;
    leg.shared_sig_epoch = leg.cache_epoch;
  }

  // Resolve in ascending key order so the hinted descent resumes from the
  // previous leaf instead of re-walking from the root. Accounting is
  // replayed in logical order at drain time, and each probe's work goes to
  // its own local counter here, so the physical order is invisible to
  // monitors, stats, and the oracle.
  leg.batch_by_key.resize(leg.batch_len);
  for (uint32_t i = 0; i < leg.batch_len; ++i) leg.batch_by_key[i] = i;
  std::stable_sort(leg.batch_by_key.begin(), leg.batch_by_key.end(),
                   [&leg](uint32_t a, uint32_t b) {
                     return CompareKeys(leg.batch[a].key, leg.batch[b].key) < 0;
                   });

  SharedProbeCache::Result shared_res;  // reused across probes (capacity)
  for (uint32_t i : leg.batch_by_key) {
    BatchedProbe& bp = leg.batch[i];
    if (cache_usable) {
      const ProbeCache::Result* hit = leg.cache->Lookup(bp.key, leg.cache_epoch);
      if (hit != nullptr) {
        bp.matches = hit->matches;
        bp.fetched = hit->fetched;
        bp.work_units = hit->work_units;
        stats_.probe_cache_hits += 1;
        stats_.probe_descents_saved += 1;
        continue;
      }
      stats_.probe_cache_misses += 1;
    }
    if (shared_usable) {
      // Local miss: consult the fleet-wide cache. A hit replays the exact
      // (matches, fetched, work_units) triple a fresh probe would produce —
      // ProbeHinted charges as-if-fresh canonical work, so the triple is a
      // pure function of (leg signature, key) and replaying it leaves every
      // monitor, decision, and work total bit-identical.
      bool conflict = false;
      if (shared_cache_->Lookup(leg.shared_sig, bp.key, &shared_res,
                                &conflict)) {
        bp.matches.swap(shared_res.matches);
        bp.fetched = shared_res.fetched;
        bp.work_units = shared_res.work_units;
        stats_.probe_cache_shared_hits += 1;
        stats_.probe_descents_saved += 1;
        if (conflict) stats_.probe_cache_shared_conflicts += 1;
        leg.cache->Insert(bp.key, leg.cache_epoch, bp.matches, bp.fetched,
                          bp.work_units);
        continue;
      }
      if (conflict) stats_.probe_cache_shared_conflicts += 1;
      stats_.probe_cache_shared_misses += 1;
    }
    WorkCounter lwc;
    leg.probe_scratch.clear();
    if (pidx->ProbeHinted(bp.key, leg.probe_state.get(), &lwc,
                          &leg.probe_scratch)) {
      stats_.probe_descents_saved += 1;
    }
    for (Rid rid : leg.probe_scratch) {
      RowView row = leg.entry->table().Fetch(rid, &lwc);
      bp.fetched += 1;
      // The sole applicable edge is the probe edge (known to match), so
      // the per-row path's residual-edge loop is empty here.
      if (!leg.local_bound->EvalCounted(row, &lwc)) continue;
      if (leg.prefix.has_value() &&
          !(faults_ != nullptr && faults_->disable_positional_predicates)) {
        ChargeWork(&lwc, WorkCounter::kPredicateEval);
        bool after = leg.prefix_col == SIZE_MAX
                         ? leg.prefix->StrictlyBeforeRid(rid)
                         : leg.prefix->StrictlyBefore(row, leg.prefix_col, rid);
        if (!after) continue;
      }
      bp.matches.push_back(rid);
    }
    bp.work_units = lwc.total();
    if (cache_usable) {
      leg.cache->Insert(bp.key, leg.cache_epoch, bp.matches, bp.fetched,
                        bp.work_units);
    }
    if (shared_usable) {
      bool conflict = false;
      shared_cache_->Insert(leg.shared_sig, bp.key, bp.matches, bp.fetched,
                            bp.work_units, &conflict);
      if (conflict) stats_.probe_cache_shared_conflicts += 1;
    }
  }
}

void PipelineExecutor::DrivingCheck() {
  produced_since_check_ = 0;
  ++stats_.driving_checks;
  // Back-off bookkeeping: assume unproductive; a switch below resets it.
  driving_backoff_.OnUnproductiveCheck();
  CostInputs in = BuildRuntimeCostInputs(options_.min_leg_samples);
  const size_t current = order_[0];
  const double current_remaining = RemainingEntries(current);
  // Anticipate the demotion of the current driving leg: as an inner leg its
  // positional predicate would keep only the unprocessed remainder.
  if (legs_[current].total_raw_entries > 0) {
    in.tables[current].local_sel *= std::min(
        1.0, current_remaining / legs_[current].total_raw_entries);
  }

  std::vector<DrivingCandidate> candidates(in.tables.size());
  for (size_t t = 0; t < in.tables.size(); ++t) {
    DrivingCandidate& cand = candidates[t];
    cand.table = t;
    const LegRt& leg = legs_[t];
    if (leg.cursor != nullptr) {
      // Exact: the live cursor knows its position; a demoted leg's
      // remainder was frozen at demotion time.
      cand.raw_entries = t == current ? current_remaining : leg.cached_remaining_entries;
      double s_lpr = leg.driving_monitor.scanned_total() > 0
                         ? leg.driving_monitor.ResidualSel(1.0)
                         : (plan_->access[t].driving.est_slpi > 0
                                ? plan_->est_local_sel[t] /
                                      plan_->access[t].driving.est_slpi
                                : 1.0);
      cand.flow = cand.raw_entries * std::min(1.0, s_lpr);
    } else {
      // Never scanned: the optimizer's S_LPI (Sec 4.3.3) — possibly badly
      // wrong under skew, which is the paper's Template 4 degradation.
      double card = static_cast<double>(leg.entry->StatsCardinality());
      cand.raw_entries = plan_->access[t].driving.est_slpi * card;
      cand.flow = in.tables[t].local_sel * card;
    }
  }

  PolicySnapshot snapshot;
  snapshot.point = DecisionPoint::kDrivingBoundary;
  snapshot.position = 1;
  snapshot.inputs = &in;
  snapshot.order = &order_;
  snapshot.candidates = &candidates;
  snapshot.driving_rows_produced = stats_.driving_rows_produced;
  snapshot.rows_out = stats_.rows_out;
  snapshot.work_units = wc_.total();
  snapshot.epoch = policy_->stats().decisions;
  PolicyDecision decision = policy_->Decide(snapshot);
  if (!decision.changed()) return;
  if (decision.action == PolicyDecision::Action::kInnerReorder) {
    // Exploration policies may pick a same-driving-leg order here; the whole
    // pipeline is depleted between driving rows, so adopting the tail at
    // position 1 is an ordinary inner reorder (invariant I4 holds).
    ++stats_.inner_reorders;
    driving_backoff_.OnReorder();
    std::vector<size_t> order_before = order_;
    order_ = decision.new_order;
    RefreshPositions(1);
    std::string msg =
        StrCat("inner reorder at position 1 after ", stats_.driving_rows_produced,
               " driving rows (policy ", policy_->name(), "); order");
    for (size_t t : order_) msg += " " + plan_->query.tables[t].alias;
    stats_.events.push_back(std::move(msg));
    if (observer_ != nullptr) {
      AdaptationEvent ev;
      ev.kind = AdaptationEvent::Kind::kInnerReorder;
      ev.position = 1;
      ev.order_before = std::move(order_before);
      ev.order_after = order_;
      ev.driving_rows_produced = stats_.driving_rows_produced;
      observer_->OnAdaptation(ev);
    }
    return;
  }
  ++stats_.driving_switches;
  driving_backoff_.OnReorder();
  std::vector<size_t> order_before = order_;
  {
    std::string msg = StrCat("driving switch after ", stats_.driving_rows_produced,
                             " rows: ", plan_->query.tables[current].alias, " -> ",
                             plan_->query.tables[decision.new_order[0]].alias,
                             " (est remaining ", FormatDouble(decision.est_current, 0),
                             " -> ", FormatDouble(decision.est_best, 0), " wu); order");
    for (size_t t : decision.new_order) {
      msg += " " + plan_->query.tables[t].alias;
    }
    stats_.events.push_back(std::move(msg));
  }

  // Demote the old driving leg: record the processed prefix for its
  // positional predicate (Sec 4.2). The cursor is kept for re-promotion.
  LegRt& old_leg = legs_[current];
  old_leg.prefix = old_leg.cursor->CurrentPosition();
  old_leg.cached_remaining_entries = RemainingEntries(current);
  old_leg.cached_remaining_fraction =
      old_leg.total_raw_entries > 0
          ? std::min(1.0, old_leg.cached_remaining_entries / old_leg.total_raw_entries)
          : 1.0;
  // The fresh positional predicate changes this leg's probe results from
  // now on: move to a new cache epoch so no earlier memoized entry can be
  // replayed (the executor also bypasses the cache while a prefix is live —
  // the epoch makes staleness impossible rather than merely avoided).
  ++old_leg.cache_epoch;

  // Promote the new driving leg; a previously demoted leg resumes its
  // original cursor (which already sits past its prefix).
  size_t next = decision.new_order[0];
  if (legs_[next].cursor == nullptr) {
    Status st = CreateDrivingCursor(next);
    assert(st.ok());
    (void)st;
  }
  order_ = std::move(decision.new_order);
  RefreshPositions(1);

  if (observer_ != nullptr) {
    AdaptationEvent ev;
    ev.kind = AdaptationEvent::Kind::kDrivingSwitch;
    ev.position = 0;
    ev.order_before = std::move(order_before);
    ev.order_after = order_;
    ev.driving_rows_produced = stats_.driving_rows_produced;
    ev.demoted_table = current;
    ev.demoted_prefix = old_leg.prefix;
    observer_->OnAdaptation(ev);
  }
}

void PipelineExecutor::InnerCheck(size_t level) {
  LegRt& checking_leg = legs_[order_[level]];
  checking_leg.incoming_since_check = 0;
  checking_leg.check_backoff.OnUnproductiveCheck();
  ++stats_.inner_checks;
  CostInputs in = BuildRuntimeCostInputs(kInnerMinSamples);
  PolicySnapshot snapshot;
  snapshot.point = DecisionPoint::kInnerDepleted;
  snapshot.position = level;
  snapshot.inputs = &in;
  snapshot.order = &order_;
  snapshot.driving_rows_produced = stats_.driving_rows_produced;
  snapshot.rows_out = stats_.rows_out;
  snapshot.work_units = wc_.total();
  snapshot.epoch = policy_->stats().decisions;
  PolicyDecision decision = policy_->Decide(snapshot);
  if (!decision.changed()) return;
  ++stats_.inner_reorders;
  checking_leg.check_backoff.OnReorder();
  std::vector<size_t> order_before = order_;
  order_ = std::move(decision.new_order);
  RefreshPositions(level);
  if (observer_ != nullptr) {
    AdaptationEvent ev;
    ev.kind = AdaptationEvent::Kind::kInnerReorder;
    ev.position = level;
    ev.order_before = std::move(order_before);
    ev.order_after = order_;
    ev.driving_rows_produced = stats_.driving_rows_produced;
    observer_->OnAdaptation(ev);
  }
  {
    std::string msg =
        StrCat("inner reorder at position ", level, " after ",
               stats_.driving_rows_produced, " driving rows; order");
    uint64_t mask = 0;
    for (size_t i = 0; i < static_cast<size_t>(level); ++i) {
      mask |= uint64_t{1} << order_[i];
    }
    for (size_t i = 0; i < order_.size(); ++i) {
      size_t t = order_[i];
      msg += " " + plan_->query.tables[t].alias;
      if (i >= static_cast<size_t>(level)) {
        msg += StrCat("(jc=", FormatDouble(JcAt(in, t, mask), 3),
                      ",rank=", FormatDouble(Rank(JcAt(in, t, mask), PcAt(in, t, mask)), 4),
                      ")");
        mask |= uint64_t{1} << t;
      }
    }
    stats_.events.push_back(std::move(msg));
  }
}

void PipelineExecutor::EmitOnce(const RowSink& sink) {
  ++stats_.rows_out;
  if (observer_ != nullptr) observer_->OnEmit(current_rids_);
  // Null-sink fast path: count-only runs never materialize Values.
  if (!sink) return;
  Row out;
  out.reserve(output_cols_.size());
  for (const auto& [t, col] : output_cols_) {
    out.push_back(current_rows_[t].GetValue(col));
  }
  sink(out);
}

void PipelineExecutor::Emit(const RowSink& sink) {
  EmitOnce(sink);
  if (faults_ != nullptr && faults_->double_emit) EmitOnce(sink);
}

StatusOr<ExecStats> PipelineExecutor::Execute(const RowSink& sink) {
  if (executed_) {
    return Status::Internal(
        "PipelineExecutor is single-use: Execute() was already called");
  }
  executed_ = true;
  if (policy_ == nullptr) policy_ = MakePolicy(options_);
  adapt_inners_ = policy_->adapts_inners();
  adapt_driving_ = policy_->adapts_driving();
  AJR_RETURN_IF_ERROR(InitLegs());
  order_ = plan_->initial_order;
  driving_backoff_ = CheckBackoff(options_.check_frequency, options_.check_backoff);
  stats_ = ExecStats();
  stats_.initial_order = order_;
  AJR_RETURN_IF_ERROR(CreateDrivingCursor(order_[0]));
  RefreshPositions(1);

  const auto start = std::chrono::steady_clock::now();
  const size_t k = order_.size();
  int level = 0;
  while (level >= 0) {
    if (level == 0) {
      // The whole pipeline is depleted here (between driving rows): the
      // cheapest safe point for the full cancel + deadline poll.
      if (cancel_token_ != nullptr) {
        StopReason stop = cancel_token_->Check();
        if (stop != StopReason::kNone) return CancellationToken::ToStatus(stop);
      }
      if (adapt_driving_ && k > 1 &&
          produced_since_check_ >= driving_backoff_.interval()) {
        DrivingCheck();
      }
      if (!NextDrivingRow()) break;
      if (k == 1) {
        Emit(sink);
        continue;
      }
      legs_[order_[1]].loaded = false;
      level = 1;
      continue;
    }
    LegRt& leg = legs_[order_[level]];
    if (!leg.loaded) ProbeLeg(static_cast<size_t>(level));
    if (leg.match_pos < leg.matches.size()) {
      Rid rid = leg.matches[leg.match_pos++];
      current_rows_[order_[level]] = leg.entry->table().View(rid);
      current_rids_[order_[level]] = rid;
      if (static_cast<size_t>(level) + 1 == k) {
        Emit(sink);
      } else {
        legs_[order_[level + 1]].loaded = false;
        ++level;
      }
    } else {
      // Depleted state for segment [level..k] (Sec 4.1): check & reorder.
      // Also a safe cancellation point; the flag poll is one relaxed load,
      // and the deadline (a clock read) is consulted every 1024th time so
      // a query stuck under one pathological driving row still times out.
      leg.loaded = false;
      if (observer_ != nullptr) {
        observer_->OnDepleted(static_cast<size_t>(level));
      }
      if (cancel_token_ != nullptr) {
        StopReason stop = (++cancel_polls_ & 1023) == 0 ? cancel_token_->Check()
                                                        : cancel_token_->CheckFlag();
        if (stop != StopReason::kNone) return CancellationToken::ToStatus(stop);
      }
      if (adapt_inners_ && static_cast<size_t>(level) + 1 < k &&
          leg.incoming_since_check >= leg.check_backoff.interval()) {
        InnerCheck(static_cast<size_t>(level));
      }
      --level;
    }
  }
  stats_.final_order = order_;
  stats_.work_units = wc_.total();
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  {
    const PolicyStats& ps = policy_->stats();
    stats_.policy_decisions = ps.decisions;
    stats_.policy_reorders = ps.inner_reorders;
    stats_.policy_switches = ps.driving_switches;
    stats_.policy_regret_x1000 =
        static_cast<uint64_t>(ps.cumulative_regret * 1000.0 + 0.5);
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("exec.probe_cache_hits")->Add(stats_.probe_cache_hits);
    metrics_->GetCounter("exec.probe_cache_misses")->Add(stats_.probe_cache_misses);
    metrics_->GetCounter("exec.probe_batches")->Add(stats_.probe_batches);
    metrics_->GetCounter("exec.probe_batch_keys")->Add(stats_.probe_batch_keys);
    metrics_->GetCounter("exec.probe_descents_saved")->Add(stats_.probe_descents_saved);
    if (shared_cache_ != nullptr) {
      metrics_->GetCounter("exec.probe_cache_shared_hits")
          ->Add(stats_.probe_cache_shared_hits);
      metrics_->GetCounter("exec.probe_cache_shared_misses")
          ->Add(stats_.probe_cache_shared_misses);
      metrics_->GetCounter("exec.probe_cache_shared_stripe_conflicts")
          ->Add(stats_.probe_cache_shared_conflicts);
    }
    metrics_->GetCounter("exec.policy_decisions")->Add(stats_.policy_decisions);
    metrics_->GetCounter("exec.policy_reorders")->Add(stats_.policy_reorders);
    metrics_->GetCounter("exec.policy_switches")->Add(stats_.policy_switches);
    metrics_->GetCounter("exec.policy_regret_x1000")->Add(stats_.policy_regret_x1000);
  }
  return stats_;
}

}  // namespace ajr

#include "exec/adaptive_coordinator.h"

#include <algorithm>
#include <cassert>

#include "adaptive/policy.h"
#include "common/string_util.h"
#include "exec/pipeline_executor.h"

namespace ajr {

namespace {

// Sample floor for monitored selectivities in inner-reorder decisions —
// mirrors the serial executor's kInnerMinSamples: inner reorders are cheap
// and reversible, so young merged monitors may act.
constexpr uint64_t kInnerMinSamples = 2;

}  // namespace

AdaptiveCoordinator::AdaptiveCoordinator(const PipelinePlan* plan,
                                         const AdaptiveOptions& options,
                                         DrivingSource* source,
                                         size_t fold_interval)
    : plan_(plan),
      options_(options),
      source_(source),
      fold_interval_(fold_interval > 0 ? fold_interval
                                       : std::max<size_t>(1, options.check_frequency)),
      policy_(MakePolicy(options)),
      backoff_(1, options.check_backoff) {
  const size_t n = plan_->query.tables.size();
  order_ = plan_->initial_order;
  demotions_.assign(n, ParallelDemotion());
  inner_.assign(n, LegMonitor(options_.history_window, options_.averaging));
  driving_.assign(n, DrivingMonitor(options_.history_window, options_.averaging));
  edges_.assign(plan_->query.edges.size(),
                EdgeMonitor(options_.history_window, options_.averaging));
  index_heights_.assign(n, 3.0);
  for (size_t t = 0; t < n; ++t) {
    for (const auto& idx : plan_->entries[t]->indexes()) {
      index_heights_[t] = std::max(index_heights_[t],
                                   static_cast<double>(idx->tree->height()));
    }
  }
}

AdaptiveCoordinator::~AdaptiveCoordinator() = default;

Status AdaptiveCoordinator::Init() {
  std::lock_guard<std::mutex> lock(mu_);
  return source_->Promote(order_[0]);
}

bool AdaptiveCoordinator::RegisterWorker(ParallelWorkerSync* sync) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kDone || state_ == State::kAbort) return false;
  ++registered_;
  sync->epoch = epoch_.load(std::memory_order_relaxed);
  sync->order = order_;
  sync->demotions = demotions_;
  return true;
}

AdaptiveCoordinator::Acquire AdaptiveCoordinator::AcquireMorsel(
    ParallelMorsel* morsel, size_t worker) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (state_ == State::kAbort) return Acquire::kAborted;
    if (state_ == State::kDone) return Acquire::kFinished;
    if (state_ == State::kRunning) {
      if (source_->Fill(morsel, worker)) return Acquire::kMorsel;
      // The promoted scan ran dry with no switch pending: drain to finish.
      state_ = State::kDrainingEnd;
    }
    // A pending switch drains the source's read-ahead first: every morsel
    // produced before the decision must be processed before the install, or
    // the high-water demotion would exclude entries no worker ever saw.
    // Workers park only once nothing already-produced remains, so by the
    // time the barrier completes the ready queue is empty.
    if (state_ == State::kDrainingSwitch &&
        source_->FillFromReady(morsel, worker)) {
      return Acquire::kMorsel;
    }
    // Draining (switch pending or scan exhausted): adjustable barrier over
    // every registered worker. The last arrival acts; workers registering
    // mid-drain join the group and arrive here before doing any other work,
    // so the barrier always completes.
    ++waiting_;
    if (waiting_ == registered_) {
      waiting_ = 0;
      ++generation_;
      if (state_ == State::kDrainingSwitch) {
        InstallSwitchLocked();  // may abort; loop re-checks state
      } else if (state_ == State::kDrainingEnd) {
        state_ = State::kDone;
      }
      cv_.notify_all();
      continue;
    }
    const uint64_t arrival_generation = generation_;
    cv_.wait(lock, [&] {
      return generation_ != arrival_generation || state_ == State::kAbort;
    });
    // The leader reset `waiting_`; do not decrement. Loop re-checks state:
    // after a switch install the source dispenses from the new leg, after
    // a finish/abort the terminal state is returned.
  }
}

void AdaptiveCoordinator::GetSync(ParallelWorkerSync* sync) const {
  std::lock_guard<std::mutex> lock(mu_);
  sync->epoch = epoch_.load(std::memory_order_relaxed);
  sync->order = order_;
  sync->demotions = demotions_;
}

void AdaptiveCoordinator::Fold(const WorkerMonitorDeltas& deltas) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kDone || state_ == State::kAbort) return;
  for (size_t t = 0; t < inner_.size(); ++t) {
    inner_[t].Absorb(deltas.inner[t]);
    driving_[t].Absorb(deltas.driving[t]);
  }
  for (size_t e = 0; e < edges_.size(); ++e) edges_[e].Absorb(deltas.edges[e]);
  merged_rows_out_ += deltas.rows_out;
  merged_work_units_ += deltas.work_units;
  ++folds_;
  // Decisions fire only while dispensing: once draining, the pending switch
  // must install before new evidence can overturn it, and at end-of-scan
  // the remaining work is zero — nothing to reoptimize.
  if (state_ != State::kRunning) return;
  if (order_.size() <= 1) return;
  if (!policy_->adapts_inners() && !policy_->adapts_driving()) return;
  if (++folds_since_check_ < backoff_.interval()) return;
  folds_since_check_ = 0;
  RunChecksLocked();
}

CostInputs AdaptiveCoordinator::BuildCostInputsLocked(
    uint64_t min_leg_samples) const {
  CostInputs in;
  in.query = &plan_->query;
  const size_t n = plan_->query.tables.size();
  in.tables.resize(n);
  for (size_t t = 0; t < n; ++t) {
    LegParams& p = in.tables[t];
    p.cardinality = static_cast<double>(plan_->entries[t]->StatsCardinality());
    p.index_height = index_heights_[t];
    p.local_sel = EffectiveLocalSel(inner_[t], driving_[t],
                                    plan_->est_local_sel[t],
                                    plan_->access[t].driving.est_slpi,
                                    min_leg_samples);
    // A demoted leg's positional predicate shrinks its effective
    // cardinality to the unprocessed remainder (same scaling as the serial
    // executor's BuildRuntimeCostInputs).
    if (demotions_[t].demoted) {
      p.local_sel *= demotions_[t].remaining_fraction;
    }
  }
  in.edge_sel.resize(plan_->query.edges.size());
  for (size_t e = 0; e < in.edge_sel.size(); ++e) {
    in.edge_sel[e] =
        edges_[e].Selectivity(plan_->est_edge_sel[e], options_.min_edge_pairs);
  }
  return in;
}

uint64_t AdaptiveCoordinator::MergedDrivingRowsLocked() const {
  uint64_t total = 0;
  for (const DrivingMonitor& m : driving_) total += m.produced_total();
  return total;
}

void AdaptiveCoordinator::RunChecksLocked() {
  bool reordered = false;
  if (policy_->adapts_inners() && order_.size() > 2) {
    ++inner_checks_;
    CostInputs in = BuildCostInputsLocked(kInnerMinSamples);
    PolicySnapshot snapshot;
    snapshot.point = DecisionPoint::kInnerDepleted;
    snapshot.position = 1;
    snapshot.inputs = &in;
    snapshot.order = &order_;
    snapshot.driving_rows_produced = MergedDrivingRowsLocked();
    snapshot.rows_out = merged_rows_out_;
    snapshot.work_units = merged_work_units_;
    snapshot.epoch = epoch_.load(std::memory_order_relaxed);
    PolicyDecision decision = policy_->Decide(snapshot);
    if (decision.action == PolicyDecision::Action::kInnerReorder) {
      ++inner_reorders_;
      order_ = std::move(decision.new_order);
      std::string msg = StrCat("parallel inner reorder after ",
                               MergedDrivingRowsLocked(), " driving rows; order");
      for (size_t t : order_) msg += " " + plan_->query.tables[t].alias;
      events_.push_back(std::move(msg));
      epoch_.fetch_add(1, std::memory_order_release);
      reordered = true;
    }
  }
  // Driving switches demote the current leg with a positional predicate;
  // when the source cannot express one (a shared-scan attachment that
  // joined mid-pass), keeping the driving leg is the only sound decision —
  // skip the check entirely rather than decide and fail at install time.
  if (policy_->adapts_driving() && source_->demotion_safe()) {
    ++driving_checks_;
    CostInputs in = BuildCostInputsLocked(options_.min_leg_samples);
    const size_t current = order_[0];
    const double current_total = source_->total_entries(current);
    const double current_remaining = std::max(
        0.0, current_total - source_->dispensed_entries(current));
    // Anticipate the demotion of the current driving leg: as an inner leg
    // its positional predicate would keep only the unprocessed remainder.
    if (current_total > 0) {
      in.tables[current].local_sel *=
          std::min(1.0, current_remaining / current_total);
    }
    std::vector<DrivingCandidate> candidates(in.tables.size());
    for (size_t t = 0; t < in.tables.size(); ++t) {
      DrivingCandidate& cand = candidates[t];
      cand.table = t;
      if (source_->ever_promoted(t)) {
        // Exact: the dispenser knows what it handed out; a demoted leg's
        // remainder was frozen at demotion time.
        cand.raw_entries = t == current ? current_remaining
                                        : demotions_[t].remaining_entries;
        double s_lpr = driving_[t].scanned_total() > 0
                           ? driving_[t].ResidualSel(1.0)
                           : (plan_->access[t].driving.est_slpi > 0
                                  ? plan_->est_local_sel[t] /
                                        plan_->access[t].driving.est_slpi
                                  : 1.0);
        cand.flow = cand.raw_entries * std::min(1.0, s_lpr);
      } else {
        // Never scanned: the optimizer's S_LPI (Sec 4.3.3).
        double card = static_cast<double>(plan_->entries[t]->StatsCardinality());
        cand.raw_entries = plan_->access[t].driving.est_slpi * card;
        cand.flow = in.tables[t].local_sel * card;
      }
    }
    PolicySnapshot snapshot;
    snapshot.point = DecisionPoint::kDrivingBoundary;
    snapshot.position = 1;
    snapshot.inputs = &in;
    snapshot.order = &order_;
    snapshot.candidates = &candidates;
    snapshot.driving_rows_produced = MergedDrivingRowsLocked();
    snapshot.rows_out = merged_rows_out_;
    snapshot.work_units = merged_work_units_;
    snapshot.epoch = epoch_.load(std::memory_order_relaxed);
    PolicyDecision decision = policy_->Decide(snapshot);
    if (decision.action == PolicyDecision::Action::kDrivingSwitch) {
      DrivingSwitchDecision sw;
      sw.new_order = std::move(decision.new_order);
      sw.est_current = decision.est_current;
      sw.est_best = decision.est_best;
      pending_switch_ = std::move(sw);
      state_ = State::kDrainingSwitch;
      reordered = true;
    } else if (decision.action == PolicyDecision::Action::kInnerReorder) {
      // An exploration policy kept the driving leg but chose a different
      // tail: an ordinary inner reorder, published immediately (workers
      // adopt it at their next depleted state).
      ++inner_reorders_;
      order_ = std::move(decision.new_order);
      std::string msg = StrCat("parallel inner reorder after ",
                               MergedDrivingRowsLocked(), " driving rows; order");
      for (size_t t : order_) msg += " " + plan_->query.tables[t].alias;
      events_.push_back(std::move(msg));
      epoch_.fetch_add(1, std::memory_order_release);
      reordered = true;
    }
  }
  if (reordered) {
    backoff_.OnReorder();
  } else {
    backoff_.OnUnproductiveCheck();
  }
}

void AdaptiveCoordinator::InstallSwitchLocked() {
  assert(pending_switch_.has_value());
  DrivingSwitchDecision decision = std::move(*pending_switch_);
  pending_switch_.reset();
  const size_t current = order_[0];

  // Demote the old driving leg at the global high-water mark: every entry
  // any worker processed was dispensed, and everything dispensed is at or
  // before the high-water position — so the positional predicate excludes
  // every emitted combination and loses nothing behind it. When this
  // promotion dispensed nothing, any earlier prefix stays valid unchanged.
  ParallelDemotion& dem = demotions_[current];
  std::optional<ScanPosition> high_water = source_->high_water();
  if (high_water.has_value()) {
    dem.demoted = true;
    ++dem.seq;
    dem.prefix = *high_water;
    dem.prefix_col = source_->prefix_col(current);
  }
  const double total = source_->total_entries(current);
  const double remaining =
      std::max(0.0, total - source_->dispensed_entries(current));
  dem.remaining_entries = remaining;
  dem.remaining_fraction =
      total > 0 ? std::min(1.0, remaining / total) : 1.0;

  Status promoted = source_->Promote(decision.new_order[0]);
  if (!promoted.ok()) {
    AbortLocked(std::move(promoted));
    return;
  }
  ++driving_switches_;
  {
    std::string msg = StrCat(
        "parallel driving switch after ", MergedDrivingRowsLocked(),
        " rows: ", plan_->query.tables[current].alias, " -> ",
        plan_->query.tables[decision.new_order[0]].alias, " (est remaining ",
        FormatDouble(decision.est_current, 0), " -> ",
        FormatDouble(decision.est_best, 0), " wu); order");
    for (size_t t : decision.new_order) {
      msg += " " + plan_->query.tables[t].alias;
    }
    events_.push_back(std::move(msg));
  }
  order_ = std::move(decision.new_order);
  epoch_.fetch_add(1, std::memory_order_release);
  state_ = State::kRunning;
}

void AdaptiveCoordinator::Abort(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  AbortLocked(std::move(status));
}

void AdaptiveCoordinator::AbortLocked(Status status) {
  if (state_ == State::kDone || state_ == State::kAbort) return;
  state_ = State::kAbort;
  abort_status_ = std::move(status);
  ++generation_;  // release any parked barrier waiters
  cv_.notify_all();
}

bool AdaptiveCoordinator::aborted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == State::kAbort;
}

Status AdaptiveCoordinator::abort_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == State::kAbort ? abort_status_
                                 : Status::Internal("coordinator not aborted");
}

void AdaptiveCoordinator::FinishStats(ExecStats* stats) const {
  std::lock_guard<std::mutex> lock(mu_);
  stats->inner_checks += inner_checks_;
  stats->inner_reorders += inner_reorders_;
  stats->driving_checks += driving_checks_;
  stats->driving_switches += driving_switches_;
  stats->final_order = order_;
  stats->events.insert(stats->events.end(), events_.begin(), events_.end());
  stats->work_units += source_->scan_work_units();
  const PolicyStats& ps = policy_->stats();
  stats->policy_decisions += ps.decisions;
  stats->policy_reorders += ps.inner_reorders;
  stats->policy_switches += ps.driving_switches;
  stats->policy_regret_x1000 +=
      static_cast<uint64_t>(ps.cumulative_regret * 1000.0 + 0.5);
}

}  // namespace ajr

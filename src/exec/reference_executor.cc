#include "exec/reference_executor.h"

#include <algorithm>

#include "expr/evaluator.h"

namespace ajr {

namespace {

bool RowLess(const Row& a, const Row& b) {
  for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

}  // namespace

void SortRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), RowLess);
}

StatusOr<std::vector<Row>> ExecuteReference(const Catalog& catalog,
                                            const JoinQuery& query) {
  AJR_RETURN_IF_ERROR(query.Validate());
  const size_t n = query.tables.size();
  std::vector<const TableEntry*> entries(n);
  std::vector<BoundPredicatePtr> local(n);
  std::vector<std::vector<size_t>> edge_col(n);
  for (size_t t = 0; t < n; ++t) {
    AJR_ASSIGN_OR_RETURN(const TableEntry* entry,
                         catalog.GetTable(query.tables[t].table));
    entries[t] = entry;
    AJR_ASSIGN_OR_RETURN(local[t],
                         BindPredicate(query.local_predicates[t], entry->schema(),
                                       &entry->table().pool()));
    edge_col[t].assign(query.edges.size(), SIZE_MAX);
    for (const auto& e : query.edges) {
      if (!e.Touches(t)) continue;
      AJR_ASSIGN_OR_RETURN(size_t col, entry->schema().ColumnIndex(e.ColumnOn(t)));
      edge_col[t][e.edge_id] = col;
    }
  }
  std::vector<std::pair<size_t, size_t>> output_cols;
  for (const auto& oc : query.output) {
    AJR_ASSIGN_OR_RETURN(size_t col,
                         entries[oc.table]->schema().ColumnIndex(oc.column));
    output_cols.emplace_back(oc.table, col);
  }

  // Pre-filter each table by its local predicate.
  std::vector<std::vector<Rid>> candidates(n);
  for (size_t t = 0; t < n; ++t) {
    const HeapTable& table = entries[t]->table();
    for (Rid rid = 0; rid < table.num_rows(); ++rid) {
      if (local[t]->Eval(table.View(rid))) candidates[t].push_back(rid);
    }
  }

  std::vector<Row> out;
  std::vector<RowView> current(n);
  // Depth-first enumeration in query-table order; each level checks the
  // join edges to already-bound tables.
  struct Enumerator {
    const JoinQuery& query;
    const std::vector<const TableEntry*>& entries;
    const std::vector<std::vector<Rid>>& candidates;
    const std::vector<std::vector<size_t>>& edge_col;
    const std::vector<std::pair<size_t, size_t>>& output_cols;
    std::vector<RowView>& current;
    std::vector<Row>& out;

    void Recurse(size_t t) {
      if (t == query.tables.size()) {
        Row row;
        row.reserve(output_cols.size());
        for (const auto& [ot, col] : output_cols) {
          row.push_back(current[ot].GetValue(col));
        }
        out.push_back(std::move(row));
        return;
      }
      for (Rid rid : candidates[t]) {
        RowView row = entries[t]->table().View(rid);
        bool pass = true;
        for (const auto& e : query.edges) {
          if (!e.Touches(t) || e.Other(t) >= t) continue;
          if (!row.CellEquals(edge_col[t][e.edge_id], current[e.Other(t)],
                              edge_col[e.Other(t)][e.edge_id])) {
            pass = false;
            break;
          }
        }
        if (!pass) continue;
        current[t] = row;
        Recurse(t + 1);
      }
    }
  } enumerator{query, entries, candidates, edge_col, output_cols, current, out};
  enumerator.Recurse(0);
  return out;
}

}  // namespace ajr

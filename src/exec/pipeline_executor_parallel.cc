// PipelineExecutor worker mode: one morsel-parallel pipeline clone.
//
// ExecuteWorker is Execute() with the driving scan replaced by the shared
// morsel dispenser and the decision procedures replaced by adoption of the
// AdaptiveCoordinator's published decisions. Everything below the driving
// leg — probing, batching, memoization, monitors, observer hooks, work
// accounting — is the serial code path, untouched: a worker is a complete
// serial pipeline over a subset of the driving rows.

#include <cassert>
#include <chrono>

#include "exec/adaptive_coordinator.h"
#include "exec/exec_observer.h"
#include "exec/pipeline_executor.h"

namespace ajr {

void ExecStats::MergeFrom(const ExecStats& worker) {
  rows_out += worker.rows_out;
  work_units += worker.work_units;
  driving_rows_produced += worker.driving_rows_produced;
  probe_cache_hits += worker.probe_cache_hits;
  probe_cache_misses += worker.probe_cache_misses;
  probe_batches += worker.probe_batches;
  probe_batch_keys += worker.probe_batch_keys;
  probe_descents_saved += worker.probe_descents_saved;
  probe_cache_shared_hits += worker.probe_cache_shared_hits;
  probe_cache_shared_misses += worker.probe_cache_shared_misses;
  probe_cache_shared_conflicts += worker.probe_cache_shared_conflicts;
  morsels += worker.morsels;
  monitor_folds += worker.monitor_folds;
}

void PipelineExecutor::AdoptParallelSync(const ParallelWorkerSync& sync) {
  std::vector<size_t> order_before = order_;
  bool demoted_any = false;
  size_t demoted_table = SIZE_MAX;
  for (size_t t = 0; t < sync.demotions.size(); ++t) {
    const ParallelDemotion& dem = sync.demotions[t];
    if (!dem.demoted) continue;
    LegRt& leg = legs_[t];
    if (leg.demote_seq_seen >= dem.seq) continue;  // already applied
    leg.prefix = dem.prefix;
    leg.prefix_col = dem.prefix_col;
    leg.cached_remaining_entries = dem.remaining_entries;
    leg.cached_remaining_fraction = dem.remaining_fraction;
    // The new positional predicate changes this leg's probe results: retire
    // every earlier memoized entry (same rule as the serial demotion).
    ++leg.cache_epoch;
    leg.demote_seq_seen = dem.seq;
    demoted_any = true;
    demoted_table = t;
  }
  const bool order_changed = order_ != sync.order;
  order_ = sync.order;
  parallel_epoch_ = sync.epoch;
  if (!order_changed && !demoted_any) return;
  // Mid-morsel adoptions can only be inner reorders — a driving switch is
  // installed while every worker is parked at the drain barrier, so by the
  // time this worker runs again it is between morsels.
  RefreshPositions(1);
  if (observer_ != nullptr && stats_.driving_rows_produced > 0) {
    AdaptationEvent ev;
    const bool switched = order_before[0] != order_[0];
    ev.kind = switched ? AdaptationEvent::Kind::kDrivingSwitch
                       : AdaptationEvent::Kind::kInnerReorder;
    ev.position = switched ? 0 : 1;
    ev.order_before = std::move(order_before);
    ev.order_after = order_;
    ev.driving_rows_produced = stats_.driving_rows_produced;
    if (switched && demoted_table != SIZE_MAX) {
      ev.demoted_table = demoted_table;
      ev.demoted_prefix = legs_[demoted_table].prefix;
    }
    observer_->OnAdaptation(ev);
  }
}

void PipelineExecutor::FoldMonitors(AdaptiveCoordinator* coordinator) {
  WorkerMonitorDeltas deltas;
  deltas.inner.reserve(legs_.size());
  deltas.driving.reserve(legs_.size());
  for (LegRt& leg : legs_) {
    deltas.inner.push_back(leg.inner_monitor.TakeDelta());
    deltas.driving.push_back(leg.driving_monitor.TakeDelta());
  }
  deltas.edges.reserve(edge_monitors_.size());
  for (EdgeMonitor& em : edge_monitors_) deltas.edges.push_back(em.TakeDelta());
  const uint64_t work_now = wc_.total();
  deltas.rows_out = stats_.rows_out - folded_rows_;
  deltas.work_units = work_now - folded_work_;
  folded_rows_ = stats_.rows_out;
  folded_work_ = work_now;
  coordinator->Fold(deltas);
  ++stats_.monitor_folds;
}

StatusOr<ExecStats> PipelineExecutor::ExecuteWorker(
    AdaptiveCoordinator* coordinator, const RowSink& sink, size_t worker_id) {
  if (executed_) {
    return Status::Internal(
        "PipelineExecutor is single-use: ExecuteWorker() was already called");
  }
  executed_ = true;
  stats_ = ExecStats();
  Status init = InitLegs();
  if (!init.ok()) {
    coordinator->Abort(init);
    return init;
  }
  order_ = plan_->initial_order;
  stats_.initial_order = order_;

  ParallelWorkerSync sync;
  if (!coordinator->RegisterWorker(&sync)) {
    // Execution already ended before this worker started.
    if (coordinator->aborted()) return coordinator->abort_status();
    stats_.final_order = order_;
    return stats_;
  }
  RefreshPositions(1);
  AdoptParallelSync(sync);

  const auto start = std::chrono::steady_clock::now();
  const size_t k = order_.size();
  ParallelMorsel morsel;
  size_t morsels_since_fold = 0;
  bool finished = false;
  while (!finished) {
    switch (coordinator->AcquireMorsel(&morsel, worker_id)) {
      case AdaptiveCoordinator::Acquire::kAborted:
        return coordinator->abort_status();
      case AdaptiveCoordinator::Acquire::kFinished:
        finished = true;
        continue;
      case AdaptiveCoordinator::Acquire::kMorsel:
        break;
    }
    ++stats_.morsels;
    for (size_t mi = 0; mi < morsel.rids.size(); ++mi) {
      // Between driving rows the whole worker pipeline is depleted: the
      // full cancel + deadline poll and the decision-adoption point (the
      // paper's moment of symmetry, per worker).
      if (cancel_token_ != nullptr) {
        StopReason stop = cancel_token_->Check();
        if (stop != StopReason::kNone) {
          Status st = CancellationToken::ToStatus(stop);
          coordinator->Abort(st);
          return st;
        }
      }
      if (coordinator->published_epoch() != parallel_epoch_) {
        coordinator->GetSync(&sync);
        AdoptParallelSync(sync);
      }
      const size_t t = order_[0];
      LegRt& leg = legs_[t];
      const Rid rid = morsel.rids[mi];
      RowView row = leg.entry->table().Fetch(rid, &wc_);
      bool pass = leg.driving_residual->EvalCounted(row, &wc_);
      leg.driving_monitor.RecordScannedEntry(pass);
      if (!pass) continue;
      current_rows_[t] = row;
      current_rids_[t] = rid;
      ++stats_.driving_rows_produced;
      if (observer_ != nullptr) {
        // Positions are recorded by the dispenser only for observed runs.
        observer_->OnDrivingRow(t, rid, morsel.positions[mi]);
      }
      if (k == 1) {
        Emit(sink);
        continue;
      }
      legs_[order_[1]].loaded = false;
      int level = 1;
      while (level >= 1) {
        LegRt& inner = legs_[order_[level]];
        if (!inner.loaded) ProbeLeg(static_cast<size_t>(level));
        if (inner.match_pos < inner.matches.size()) {
          Rid mrid = inner.matches[inner.match_pos++];
          current_rows_[order_[level]] = inner.entry->table().View(mrid);
          current_rids_[order_[level]] = mrid;
          if (static_cast<size_t>(level) + 1 == k) {
            Emit(sink);
          } else {
            legs_[order_[level + 1]].loaded = false;
            ++level;
          }
        } else {
          // Depleted state for segment [level..k]: observer hook and the
          // cheap cancellation poll, exactly as in the serial loop. No
          // reorder check — decisions belong to the coordinator.
          inner.loaded = false;
          if (observer_ != nullptr) {
            observer_->OnDepleted(static_cast<size_t>(level));
          }
          if (cancel_token_ != nullptr) {
            StopReason stop = (++cancel_polls_ & 1023) == 0
                                  ? cancel_token_->Check()
                                  : cancel_token_->CheckFlag();
            if (stop != StopReason::kNone) {
              Status st = CancellationToken::ToStatus(stop);
              coordinator->Abort(st);
              return st;
            }
          }
          --level;
        }
      }
    }
    if (++morsels_since_fold >= coordinator->fold_interval()) {
      morsels_since_fold = 0;
      FoldMonitors(coordinator);
    }
  }
  // Final fold: keeps the coordinator's merged row totals (event log
  // bookkeeping) complete. Ignored if the run already finished.
  FoldMonitors(coordinator);
  stats_.final_order = order_;
  stats_.work_units = wc_.total();
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats_;
}

}  // namespace ajr

// ProbeCache: bounded per-leg memoization of index-probe results.
//
// Joins with skewed key distributions probe the same hot keys over and
// over; tables and indexes are immutable for the duration of a query, so a
// probe's outcome — the matched RID list, the rows fetched, and the exact
// work units the probe charged — is a pure function of the probe key. The
// cache replays that triple for repeated keys, skipping the physical tree
// descent while keeping work-unit accounting bit-identical (the adaptive
// controller and the differential oracle see the same numbers either way).
//
// The one run-time event that changes a probe's outcome is the demotion of
// a driving leg: from then on the leg filters matches through a positional
// predicate (Sec 4.2). Entries are therefore tagged with an epoch the
// executor bumps at every demotion, and the executor additionally bypasses
// the cache entirely while a positional predicate is active — the epoch tag
// guarantees no stale entry can survive a demotion even if the bypass rule
// evolves.
//
// Layout: the cache sits on the probe hot path of every inner leg, so it is
// a flat slot array with an open-addressed index and an intrusive LRU list
// (slot numbers as links). Eviction recycles the victim slot in place —
// its match vector and string buffer keep their capacity — so steady-state
// operation performs no allocation even at 0% hit rate on unique-key
// streams, where a node-based map would allocate and free per probe.
//
// Thread safety: none. A ProbeCache belongs to one executor leg on one
// thread, like every other per-query structure.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/heap_table.h"
#include "storage/key_codec.h"

namespace ajr {

/// LRU map from (probe key, epoch) to the probe's replayable outcome.
class ProbeCache {
 public:
  /// One memoized probe: everything the executor needs to account for the
  /// probe as if it had run — matched RIDs (post local predicate), rows
  /// fetched from the heap, and total work units charged.
  struct Result {
    std::vector<Rid> matches;
    uint64_t fetched = 0;
    uint64_t work_units = 0;
  };

  /// `capacity` == 0 makes every Lookup a miss and Insert a no-op.
  explicit ProbeCache(size_t capacity);

  /// The entry for `key` at `epoch`, or nullptr. A hit refreshes LRU
  /// recency. The epoch is part of the lookup identity, so entries
  /// memoized under an older epoch can never be returned — they age out
  /// through the LRU. The pointer is valid until the next Insert/Clear.
  const Result* Lookup(const IndexKey& key, uint32_t epoch);

  /// Memoizes a probe outcome for `key` at `epoch`, evicting the least
  /// recently used entry when full. Oversized match lists
  /// (> kMaxMatchesPerEntry) are not cached — one mega-key must not pin
  /// unbounded memory.
  void Insert(const IndexKey& key, uint32_t epoch, const std::vector<Rid>& matches,
              uint64_t fetched, uint64_t work_units);

  /// Empties the cache; slot buffers keep their capacity for reuse.
  void Clear();
  size_t size() const { return used_; }
  size_t capacity() const { return capacity_; }

  /// Cap on cached matches per entry (memory guard, see Insert).
  static constexpr size_t kMaxMatchesPerEntry = 4096;

 private:
  static constexpr uint32_t kNil = UINT32_MAX;

  /// One cache entry. String keys own their bytes here (IndexKey borrows
  /// them from a table pool that outlives the query, but not necessarily
  /// this entry's recency).
  struct Slot {
    uint64_t hash = 0;  ///< full (key, epoch) hash; avoids rehash on evict
    uint64_t enc = 0;
    std::string str;
    uint32_t epoch = 0;
    bool is_string = false;
    Result result;
    uint32_t lru_prev = kNil;
    uint32_t lru_next = kNil;
  };

  static uint64_t HashKey(const IndexKey& key, uint32_t epoch);
  bool SlotMatches(const Slot& s, uint64_t hash, const IndexKey& key,
                   uint32_t epoch) const;
  void Unlink(uint32_t s);
  void PushFront(uint32_t s);
  /// Backward-shift deletion of index position `pos` (linear probing keeps
  /// no tombstones, so probe chains stay short forever).
  void EraseIndexAt(size_t pos);

  size_t capacity_;
  size_t mask_ = 0;  ///< index_.size() - 1 (power of two, <= 50% load)
  size_t used_ = 0;
  std::vector<Slot> slots_;       ///< size capacity_; [0, used_) are live
  std::vector<uint32_t> index_;   ///< open-addressed slot numbers (or kNil)
  uint32_t lru_head_ = kNil;      ///< most recently used
  uint32_t lru_tail_ = kNil;      ///< eviction victim
};

}  // namespace ajr

// SharedProbeCache: a lock-striped, cross-query probe-result cache.
//
// The per-leg ProbeCache memoizes probe outcomes within one executor; hot
// keys probed by every worker of a parallel query — and by every query of
// a concurrent burst over the same tables — are still resolved physically
// once per executor. This cache pools those outcomes process-wide: entries
// are keyed by a 64-bit leg signature (probe index identity, local
// predicate fingerprint, and the leg's demotion epoch — see LegSignature)
// plus the probe key, so a replayed triple is exactly what a fresh probe
// of that leg would compute. The replay keeps work-unit accounting
// bit-identical to the unshared path (the ProbeHinted as-if-fresh charge
// contract makes a probe's outcome a pure function of (leg, key)), which
// the differential oracle's --share axis enforces.
//
// Layout: K independent stripes, each a small open-addressed LRU map in
// the style of exec/probe_cache.h (flat slots, intrusive recency list,
// backward-shift deletion, in-place victim recycling). A key's stripe is
// derived from its hash, so dop workers and concurrent queries probing
// different keys take different stripe locks and never serialize; hammering
// one hot key contends on exactly one stripe. Lock acquisition is
// try_lock-first so callers can count real contention (the
// exec.probe_cache_shared_stripe_conflicts counter).
//
// Epochs: a demotion changes a leg's probe results, so the executor folds
// its cache epoch into the leg signature. Bumping the epoch retires only
// that leg's entries (they become unreachable and age out of their stripes'
// LRU lists); hot entries of every other leg — even ones hashing into the
// same stripe — stay live. This is the striped refinement of the per-leg
// ProbeCache's whole-cache epoch bump.
//
// Thread safety: fully thread-safe; every public method locks only the one
// stripe the key maps to. Results are copied out under the stripe lock —
// no pointers into the cache escape.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "exec/probe_cache.h"
#include "storage/heap_table.h"
#include "storage/key_codec.h"

namespace ajr {

class SharedProbeCache {
 public:
  /// Replayable probe outcome — same triple as ProbeCache::Result.
  using Result = ProbeCache::Result;

  /// `entries_per_stripe` slots in each of `stripes` stripes (stripes is
  /// rounded up to a power of two). `entries_per_stripe` == 0 disables the
  /// cache (every Lookup misses, every Insert is a no-op).
  explicit SharedProbeCache(size_t entries_per_stripe = 256,
                            size_t stripes = 16);

  /// Identity of one probe leg's result space: the probe index object (the
  /// catalog owns one Index per backend per indexed column, so the pointer
  /// is a process-wide identity), the leg's local-predicate fingerprint
  /// (two queries filtering the same table differently must never share
  /// outcomes), and the leg's demotion epoch (see file comment).
  static uint64_t LegSignature(const void* probe_index,
                               std::string_view predicate_fingerprint,
                               uint32_t epoch);

  /// Copies the entry for (sig, key) into `*out` and returns true, or
  /// returns false on a miss. A hit refreshes stripe LRU recency.
  /// `*conflict` is set to true when the stripe lock was contended (and is
  /// left untouched otherwise).
  bool Lookup(uint64_t sig, const IndexKey& key, Result* out, bool* conflict);

  /// Memoizes a probe outcome for (sig, key), evicting the stripe's least
  /// recently used entry when full. Oversized match lists (more than
  /// ProbeCache::kMaxMatchesPerEntry) are not cached. `*conflict` as above.
  void Insert(uint64_t sig, const IndexKey& key,
              const std::vector<Rid>& matches, uint64_t fetched,
              uint64_t work_units, bool* conflict);

  /// Total live entries across stripes (diagnostics; takes every lock).
  size_t size() const;
  size_t stripes() const { return stripes_.size(); }
  size_t stripe_capacity() const { return stripe_capacity_; }

 private:
  static constexpr uint32_t kNil = UINT32_MAX;

  /// One cache entry. String keys own their bytes (the IndexKey borrows
  /// them from a table pool whose lifetime is the query's, not the
  /// engine's).
  struct Slot {
    uint64_t hash = 0;  ///< full (sig, key) hash; avoids rehash on evict
    uint64_t sig = 0;
    uint64_t enc = 0;
    std::string str;
    bool is_string = false;
    Result result;
    uint32_t lru_prev = kNil;
    uint32_t lru_next = kNil;
  };

  /// One independent open-addressed LRU map (see exec/probe_cache.cc for
  /// the layout rationale; this is the same structure with (sig, key)
  /// identity and a mutex).
  struct Stripe {
    std::mutex mu;
    size_t mask = 0;
    size_t used = 0;
    std::vector<Slot> slots;
    std::vector<uint32_t> index;
    uint32_t lru_head = kNil;
    uint32_t lru_tail = kNil;
  };

  static uint64_t HashKey(uint64_t sig, const IndexKey& key);
  static bool SlotMatches(const Slot& s, uint64_t hash, uint64_t sig,
                          const IndexKey& key);
  Stripe& StripeFor(uint64_t hash) {
    // High bits pick the stripe; low bits index within it, so the two
    // selections stay independent.
    return *stripes_[(hash >> 48) & stripe_mask_];
  }
  static void Unlink(Stripe& st, uint32_t s);
  static void PushFront(Stripe& st, uint32_t s);
  static void EraseIndexAt(Stripe& st, size_t pos);
  /// Locks `st.mu`, setting `*conflict` when the uncontended path failed.
  static std::unique_lock<std::mutex> LockStripe(Stripe& st, bool* conflict);

  size_t stripe_capacity_;
  size_t stripe_mask_ = 0;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace ajr

// AdaptiveCoordinator: shared run-time reoptimization state for morsel-
// parallel execution.
//
// In parallel mode the driving leg's scan is split into fixed-size morsels
// handed out from a shared dispenser (the DrivingSource), and `dop` worker-
// local pipeline clones run concurrently. Each worker keeps its own inner
// cursors, probe caches, and sliding-window monitors; every check-frequency
// morsels it folds its monitor *deltas* into the coordinator, which merges
// them and runs the paper's decision procedures (CheckInnerReorder /
// CheckDrivingSwitch) over the merged statistics — the same Eq 1/3/4
// machinery the serial executor uses, fed with fleet-wide evidence.
//
// Decisions are published as epoch-tagged snapshots. Workers poll the epoch
// (one atomic load) between driving rows — full-pipeline depleted states,
// the paper's moments of symmetry (Sec 4.1) — and adopt the new order and
// demotions there, so every reorder still happens only at a depleted state.
//
// A driving switch needs more care than an inner reorder: no in-flight
// morsel of the old driving leg may be re-emitted under the new one. The
// coordinator therefore drains the dispenser (state kDrainingSwitch): no
// new morsels are handed out, every worker parks at a barrier inside
// AcquireMorsel, and the last arrival installs the switch — it demotes the
// old leg with a positional predicate at the dispenser's global high-water
// mark (the position of the last entry ever handed out, which every
// processed entry is at or before), promotes the new leg's scan, bumps the
// epoch, and releases the barrier. Workers wake, adopt, and pull morsels
// from the new driving leg. Because the high-water mark covers every
// dispensed entry, no emitted tuple can be regenerated, and nothing behind
// it is lost (Sec 4.2's duplicate prevention, lifted to the fleet).
//
// Thread safety: everything behind one mutex except the published epoch
// (atomic, read lock-free on the worker hot path). The DrivingSource is
// only ever called under the coordinator mutex, so it needs no locking of
// its own.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "adaptive/controller.h"
#include "adaptive/monitor.h"
#include "common/status.h"
#include "optimize/planner.h"
#include "storage/scan_position.h"

namespace ajr {

class AdaptationPolicy;
struct ExecStats;

/// One batch of driving-scan entries handed to a worker. `positions` is
/// parallel to `rids` and filled only when the orchestrator asked the
/// source to record positions (observer-instrumented runs).
struct ParallelMorsel {
  std::vector<Rid> rids;
  std::vector<ScanPosition> positions;
};

/// The coordinator's view of the shared driving scans: one resumable scan
/// cursor per query table, created lazily at first promotion. Implemented
/// by runtime::MorselDriver; abstract here so exec/ does not depend on
/// runtime/. Every method is called under the coordinator mutex.
class DrivingSource {
 public:
  virtual ~DrivingSource() = default;

  /// Makes `table` the dispensing scan (creating its cursor on first
  /// promotion; a re-promotion resumes the original cursor, which already
  /// sits past every dispensed entry).
  virtual Status Promote(size_t table) = 0;

  /// Fills `morsel` with the next batch of entries from the promoted scan
  /// for `worker` (sources with morsel affinity prefer the worker's last
  /// stripe). False when the scan is exhausted (morsels are never empty).
  virtual bool Fill(ParallelMorsel* morsel, size_t worker) = 0;

  /// Hands out an already-produced morsel without producing new ones —
  /// used while a driving switch drains, so read-ahead morsels dispensed
  /// before the decision are still processed before the switch installs
  /// (the high-water mark covers them). Default: no read-ahead, nothing to
  /// hand out.
  virtual bool FillFromReady(ParallelMorsel* morsel, size_t worker) {
    (void)morsel;
    (void)worker;
    return false;
  }

  /// False when the promoted scan cannot be demoted with a positional
  /// predicate — e.g. a shared-scan attachment that joined mid-pass, whose
  /// processed set is not a prefix of the scan order. The coordinator then
  /// skips driving-switch decisions (keeping the driving leg is always
  /// sound).
  virtual bool demotion_safe() const { return true; }

  /// Position of the last entry handed out since the current promotion;
  /// nullopt when this promotion has dispensed nothing yet.
  virtual std::optional<ScanPosition> high_water() const = 0;

  /// Entries the table's full driving scan covers (exact once promoted,
  /// 0 before — callers must check ever_promoted()).
  virtual double total_entries(size_t table) const = 0;

  /// Entries ever dispensed for `table`, cumulative across promotions.
  virtual double dispensed_entries(size_t table) const = 0;

  virtual bool ever_promoted(size_t table) const = 0;

  /// Column index of the table's scan-order key (SIZE_MAX = RID order).
  virtual size_t prefix_col(size_t table) const = 0;

  /// Work units charged by the shared scans (merged into the final stats).
  virtual uint64_t scan_work_units() const = 0;
};

/// Per-table demotion record published to workers. `seq` increments at
/// every demotion of the table, so a worker applies each demotion exactly
/// once (LegRt::demote_seq_seen).
struct ParallelDemotion {
  bool demoted = false;
  uint64_t seq = 0;
  ScanPosition prefix;
  size_t prefix_col = SIZE_MAX;
  double remaining_entries = 0;
  double remaining_fraction = 1.0;
};

/// Epoch-tagged decision snapshot a worker adopts at a depleted state.
struct ParallelWorkerSync {
  uint64_t epoch = 0;
  std::vector<size_t> order;
  std::vector<ParallelDemotion> demotions;  ///< per query table
};

/// One worker's monitor deltas since its previous fold (see
/// LegMonitor::TakeDelta).
struct WorkerMonitorDeltas {
  std::vector<LegMonitor::Delta> inner;       ///< per query table
  std::vector<DrivingMonitor::Delta> driving; ///< per query table
  std::vector<EdgeMonitor::Delta> edges;      ///< per query edge
  /// Output rows / work units this worker accrued since its previous fold —
  /// the fleet-wide reward signal for exploration policies (the coordinator
  /// accumulates them into the PolicySnapshot it feeds its policy).
  uint64_t rows_out = 0;
  uint64_t work_units = 0;
};

class AdaptiveCoordinator {
 public:
  /// `plan` and `source` must outlive the coordinator. `fold_interval` is
  /// the number of morsels a worker processes between folds (0 = the
  /// options' check frequency c).
  AdaptiveCoordinator(const PipelinePlan* plan, const AdaptiveOptions& options,
                      DrivingSource* source, size_t fold_interval = 0);
  ~AdaptiveCoordinator();

  /// Promotes the plan's initial driving leg. Call once before workers run.
  Status Init();

  /// Morsels between worker folds.
  size_t fold_interval() const { return fold_interval_; }

  /// Registers a worker into the barrier group and snapshots the current
  /// decision state. False when execution already finished or aborted (the
  /// worker should return immediately).
  bool RegisterWorker(ParallelWorkerSync* sync);

  enum class Acquire {
    kMorsel,    ///< `morsel` was filled; process it
    kFinished,  ///< the final driving scan is exhausted; stop cleanly
    kAborted,   ///< another worker aborted; stop with abort_status()
  };

  /// Hands out the next morsel for `worker`, parking at the drain barrier
  /// when a driving switch is pending (the last arrival installs it) or the
  /// scan is exhausted (the last arrival finishes the run). During a switch
  /// drain, already-produced read-ahead morsels are still handed out before
  /// any worker parks. Blocks only while other workers finish their
  /// in-flight morsels.
  Acquire AcquireMorsel(ParallelMorsel* morsel, size_t worker);

  /// The published decision epoch; workers compare against their adopted
  /// epoch between driving rows. Lock-free.
  uint64_t published_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Snapshots the current decision state for adoption.
  void GetSync(ParallelWorkerSync* sync) const;

  /// Merges one worker's monitor deltas and, at the check cadence, runs the
  /// decision procedures over the merged statistics. An inner reorder
  /// publishes a new epoch immediately; a driving switch moves the
  /// coordinator into the drain state (installed at the barrier).
  void Fold(const WorkerMonitorDeltas& deltas);

  /// Aborts execution (first status wins); wakes every parked worker. A
  /// no-op once the run finished cleanly.
  void Abort(Status status);

  bool aborted() const;
  Status abort_status() const;

  /// Folds the coordinator-owned totals into the merged stats: check and
  /// reorder counts, the final order, the event log, and the shared scans'
  /// work units.
  void FinishStats(ExecStats* stats) const;

 private:
  enum class State {
    kRunning,         ///< dispensing morsels
    kDrainingSwitch,  ///< switch decided; waiting for in-flight morsels
    kDrainingEnd,     ///< scan exhausted; waiting for in-flight morsels
    kDone,            ///< terminal: clean completion
    kAbort,           ///< terminal: cancelled or failed
  };

  /// Builds the merged-statistics CostInputs, mirroring the serial
  /// executor's BuildRuntimeCostInputs (demoted legs scaled to their
  /// unprocessed remainder).
  CostInputs BuildCostInputsLocked(uint64_t min_leg_samples) const;
  void RunChecksLocked();
  void InstallSwitchLocked();
  void AbortLocked(Status status);
  uint64_t MergedDrivingRowsLocked() const;

  const PipelinePlan* plan_;
  AdaptiveOptions options_;
  DrivingSource* source_;
  size_t fold_interval_;
  /// The fleet-wide decision policy (adaptive/policy.h): one instance for
  /// the whole run, consulted only inside RunChecksLocked (under mu_), so
  /// it needs no locking of its own. Workers never see it.
  std::unique_ptr<AdaptationPolicy> policy_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  State state_ = State::kRunning;
  size_t registered_ = 0;
  size_t waiting_ = 0;
  uint64_t generation_ = 0;  ///< barrier generation
  std::atomic<uint64_t> epoch_{0};

  std::vector<size_t> order_;
  std::vector<ParallelDemotion> demotions_;
  std::optional<DrivingSwitchDecision> pending_switch_;

  // Merged monitors (coordinator side of the fold).
  std::vector<LegMonitor> inner_;
  std::vector<DrivingMonitor> driving_;
  std::vector<EdgeMonitor> edges_;
  std::vector<double> index_heights_;

  CheckBackoff backoff_;
  uint64_t folds_ = 0;
  uint64_t folds_since_check_ = 0;
  /// Fleet-wide output rows / work units accumulated from worker folds —
  /// the reward signal handed to exploration policies in PolicySnapshot.
  uint64_t merged_rows_out_ = 0;
  uint64_t merged_work_units_ = 0;

  uint64_t inner_checks_ = 0;
  uint64_t inner_reorders_ = 0;
  uint64_t driving_checks_ = 0;
  uint64_t driving_switches_ = 0;
  std::vector<std::string> events_;
  Status abort_status_;
};

}  // namespace ajr

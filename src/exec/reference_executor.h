// ReferenceExecutor: a deliberately naive join evaluator used as the
// correctness oracle in tests. It enumerates tables in query order with
// plain nested loops (no indexes, no adaptation), so its result multiset is
// trivially correct; the adaptive executor must produce exactly the same
// multiset under any switching schedule.

#pragma once

#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "optimize/query.h"

namespace ajr {

/// Evaluates `query` by brute force; returns the projected output rows
/// (unordered — compare as multisets via SortRows).
StatusOr<std::vector<Row>> ExecuteReference(const Catalog& catalog,
                                            const JoinQuery& query);

/// Sorts rows lexicographically for multiset comparison.
void SortRows(std::vector<Row>* rows);

}  // namespace ajr

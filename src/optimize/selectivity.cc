#include "optimize/selectivity.h"

#include <algorithm>
#include <cmath>

namespace ajr {

namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

// Fraction of [min, max] covered by `range` under the uniform assumption.
double UniformRangeFraction(const ColumnStats& stats, const KeyRange& range) {
  if (!stats.min.has_value() || !stats.max.has_value()) {
    return SelectivityEstimator::kDefaultRange;
  }
  DataType t = stats.min->type();
  if (t != DataType::kInt64 && t != DataType::kDouble) {
    // Orderable but non-numeric (strings): no interpolation possible.
    return SelectivityEstimator::kDefaultRange;
  }
  double lo = stats.min->AsNumeric();
  double hi = stats.max->AsNumeric();
  if (hi <= lo) return 1.0;
  double a = range.lo.has_value() ? std::max(lo, range.lo->AsNumeric()) : lo;
  double b = range.hi.has_value() ? std::min(hi, range.hi->AsNumeric()) : hi;
  if (b < a) return 0.0;
  return Clamp01((b - a) / (hi - lo));
}

}  // namespace

double SelectivityEstimator::EstimateEquality(const TableEntry& table,
                                              const std::string& column,
                                              const Value& value) const {
  if (tier_ == StatsTier::kMinimal) return kDefaultEquality;
  const ColumnStats* stats = table.GetColumnStats(column);
  if (stats == nullptr || stats->ndv == 0) return kDefaultEquality;
  if (tier_ == StatsTier::kRich) {
    size_t rows = table.StatsCardinality();
    if (rows > 0) {
      for (const auto& fv : stats->frequent) {
        if (fv.value == value) {
          return Clamp01(static_cast<double>(fv.count) / rows);
        }
      }
      if (!stats->frequent.empty()) {
        // Value is not among the top-k: spread the remaining mass uniformly
        // over the remaining distinct values.
        size_t freq_mass = 0;
        for (const auto& fv : stats->frequent) freq_mass += fv.count;
        size_t rest_ndv = stats->ndv > stats->frequent.size()
                              ? stats->ndv - stats->frequent.size()
                              : 1;
        double rest = static_cast<double>(rows - std::min(freq_mass, rows)) / rows;
        return Clamp01(rest / rest_ndv);
      }
    }
  }
  return 1.0 / static_cast<double>(stats->ndv);
}

double SelectivityEstimator::EstimateRangeOne(const TableEntry& table,
                                              const std::string& column,
                                              const KeyRange& range) const {
  if (range.lo.has_value() && range.hi.has_value() &&
      range.lo->Compare(*range.hi) == 0) {
    return EstimateEquality(table, column, *range.lo);
  }
  if (tier_ == StatsTier::kMinimal) return kDefaultRange;
  const ColumnStats* stats = table.GetColumnStats(column);
  if (stats == nullptr) return kDefaultRange;
  if (tier_ == StatsTier::kRich && stats->histogram.has_value()) {
    const auto& h = *stats->histogram;
    double hi = range.hi.has_value() ? h.EstimateFractionLe(*range.hi) : 1.0;
    double lo = range.lo.has_value() ? h.EstimateFractionLe(*range.lo) : 0.0;
    return Clamp01(hi - lo);
  }
  return UniformRangeFraction(*stats, range);
}

double SelectivityEstimator::EstimateRanges(const TableEntry& table,
                                            const std::string& column,
                                            const std::vector<KeyRange>& ranges) const {
  // Ranges are disjoint (NormalizeRanges), so selectivities add.
  double sel = 0;
  for (const auto& r : ranges) {
    if (!r.lo.has_value() && !r.hi.has_value()) return 1.0;
    sel += EstimateRangeOne(table, column, r);
  }
  return Clamp01(sel);
}

double SelectivityEstimator::EstimateLocal(const TableEntry& table,
                                           const ExprPtr& predicate) const {
  if (predicate == nullptr) return 1.0;
  switch (predicate->kind()) {
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(*predicate);
      if (lit.value().type() == DataType::kBool) return lit.value().AsBool() ? 1.0 : 0.0;
      return 1.0;
    }
    case ExprKind::kColumnRef:
      return 1.0;
    case ExprKind::kComparison: {
      // Reuse range extraction to normalize the comparison, then estimate.
      const auto& cmp = static_cast<const ComparisonExpr&>(*predicate);
      const Expr* col = cmp.lhs().get();
      const Expr* lit = cmp.rhs().get();
      if (col->kind() == ExprKind::kLiteral && lit->kind() == ExprKind::kColumnRef) {
        std::swap(col, lit);
      }
      if (col->kind() == ExprKind::kColumnRef && lit->kind() == ExprKind::kLiteral) {
        const std::string& name = static_cast<const ColumnRefExpr*>(col)->name();
        auto extraction = ExtractRanges(predicate, name);
        if (extraction.sargable) {
          return EstimateRanges(table, name, extraction.ranges);
        }
        if (cmp.op() == CompareOp::kNe) {
          return Clamp01(1.0 - EstimateEquality(
                                   table, name,
                                   static_cast<const LiteralExpr*>(lit)->value()));
        }
      }
      if (col->kind() == ExprKind::kColumnRef && lit->kind() == ExprKind::kColumnRef) {
        // col = col within one table: containment-style 1/max(ndv).
        if (tier_ == StatsTier::kMinimal) return kDefaultEquality;
        const auto* l = table.GetColumnStats(static_cast<const ColumnRefExpr*>(col)->name());
        const auto* r = table.GetColumnStats(static_cast<const ColumnRefExpr*>(lit)->name());
        size_t ndv = std::max(l ? l->ndv : 0, r ? r->ndv : 0);
        return ndv > 0 ? 1.0 / ndv : kDefaultEquality;
      }
      return kDefaultRange;
    }
    case ExprKind::kAnd: {
      // THE independence assumption: conjuncts multiply.
      double sel = 1.0;
      for (const auto& c : static_cast<const LogicalExpr&>(*predicate).children()) {
        sel *= EstimateLocal(table, c);
      }
      return Clamp01(sel);
    }
    case ExprKind::kOr: {
      double inv = 1.0;
      for (const auto& c : static_cast<const LogicalExpr&>(*predicate).children()) {
        inv *= 1.0 - EstimateLocal(table, c);
      }
      return Clamp01(1.0 - inv);
    }
    case ExprKind::kNot:
      return Clamp01(1.0 -
                     EstimateLocal(table, static_cast<const NotExpr&>(*predicate).child()));
    case ExprKind::kIn: {
      const auto& in = static_cast<const InExpr&>(*predicate);
      double sel = 0;
      for (const auto& v : in.values()) {
        sel += EstimateEquality(table, in.column(), v);
      }
      return Clamp01(sel);
    }
  }
  return 1.0;
}

double SelectivityEstimator::EstimateJoin(const TableEntry& left,
                                          const std::string& left_column,
                                          const TableEntry& right,
                                          const std::string& right_column) const {
  if (tier_ == StatsTier::kMinimal) {
    // Table sizes are the only statistic: the classical key-join heuristic
    // takes NDV ~ cardinality on the larger side (System R's 1/max(NDV)
    // containment rule with the only NDV bound available), so an FK join
    // is estimated to produce ~|fact| rows rather than |fact|*|dim|*0.04.
    size_t cap = std::max(std::max(left.StatsCardinality(), right.StatsCardinality()),
                          size_t{1});
    return 1.0 / static_cast<double>(cap);
  }
  const ColumnStats* l = left.GetColumnStats(left_column);
  const ColumnStats* r = right.GetColumnStats(right_column);
  size_t ndv = std::max(l ? l->ndv : 0, r ? r->ndv : 0);
  if (ndv == 0) return kDefaultEquality;
  return 1.0 / static_cast<double>(ndv);
}

}  // namespace ajr

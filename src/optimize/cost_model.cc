#include "optimize/cost_model.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ajr {

size_t ChooseProbeEdge(const CostInputs& in, size_t t, uint64_t preceding_mask) {
  size_t best = SIZE_MAX;
  double best_matches = std::numeric_limits<double>::infinity();
  for (const auto& e : in.query->edges) {
    if (!e.Touches(t)) continue;
    size_t other = e.Other(t);
    if ((preceding_mask & (uint64_t{1} << other)) == 0) continue;
    double matches = MatchesPerProbe(in, t, e.edge_id);
    if (matches < best_matches) {
      best_matches = matches;
      best = e.edge_id;
    }
  }
  return best;
}

double MatchesPerProbe(const CostInputs& in, size_t t, size_t edge_id) {
  return in.tables[t].cardinality * in.edge_sel[edge_id];
}

double JcAt(const CostInputs& in, size_t t, uint64_t preceding_mask) {
  double jc = in.tables[t].cardinality * in.tables[t].local_sel;
  for (const auto& e : in.query->edges) {
    if (!e.Touches(t)) continue;
    if ((preceding_mask & (uint64_t{1} << e.Other(t))) == 0) continue;
    jc *= in.edge_sel[e.edge_id];
  }
  return jc;
}

double PcAt(const CostInputs& in, size_t t, uint64_t preceding_mask) {
  size_t probe_edge = ChooseProbeEdge(in, t, preceding_mask);
  double matches = probe_edge == SIZE_MAX
                       ? in.tables[t].cardinality  // fallback: full scan probe
                       : MatchesPerProbe(in, t, probe_edge);
  double traversal = in.tables[t].index_height * WorkCounter::kIndexNodeVisit;
  double per_match = WorkCounter::kIndexEntryScan + WorkCounter::kRowFetch +
                     WorkCounter::kPredicateEval;
  return traversal + matches * per_match;
}

double Rank(double jc, double pc) {
  assert(pc > 0);
  return (jc - 1.0) / pc;
}

double DrivingScanCost(double raw_entries, double index_height) {
  double per_entry = WorkCounter::kIndexEntryScan + WorkCounter::kRowFetch +
                     WorkCounter::kPredicateEval;
  return index_height * WorkCounter::kIndexNodeVisit + raw_entries * per_entry;
}

std::vector<size_t> GreedyRankOrder(const CostInputs& in,
                                    const std::vector<size_t>& tables_to_place,
                                    uint64_t already_placed_mask) {
  std::vector<size_t> remaining = tables_to_place;
  std::vector<size_t> order;
  order.reserve(remaining.size());
  uint64_t mask = already_placed_mask;
  while (!remaining.empty()) {
    size_t best_pos = SIZE_MAX;
    double best_rank = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < remaining.size(); ++i) {
      size_t t = remaining[i];
      if (ChooseProbeEdge(in, t, mask) == SIZE_MAX) continue;  // not connected yet
      double rank = Rank(JcAt(in, t, mask), PcAt(in, t, mask));
      if (rank < best_rank) {
        best_rank = rank;
        best_pos = i;
      }
    }
    if (best_pos == SIZE_MAX) {
      // Disconnected remainder (validated queries never hit this): place in
      // given order to stay total.
      best_pos = 0;
    }
    size_t t = remaining[best_pos];
    order.push_back(t);
    mask |= uint64_t{1} << t;
    remaining.erase(remaining.begin() + best_pos);
  }
  return order;
}

double PipelineCost(const CostInputs& in, const std::vector<size_t>& order,
                    double driving_raw_entries, double driving_flow) {
  assert(!order.empty());
  size_t driving = order[0];
  double cost = DrivingScanCost(driving_raw_entries, in.tables[driving].index_height);
  double flow = driving_flow;
  uint64_t mask = uint64_t{1} << driving;
  for (size_t i = 1; i < order.size(); ++i) {
    size_t t = order[i];
    cost += flow * PcAt(in, t, mask);
    flow *= JcAt(in, t, mask);
    mask |= uint64_t{1} << t;
  }
  return cost;
}

double TailCost(const CostInputs& in, const std::vector<size_t>& tail,
                uint64_t prefix_mask) {
  double cost = 0;
  double flow = 1.0;
  uint64_t mask = prefix_mask;
  for (size_t t : tail) {
    cost += flow * PcAt(in, t, mask);
    flow *= JcAt(in, t, mask);
    mask |= uint64_t{1} << t;
  }
  return cost;
}

bool IsRankOrdered(const CostInputs& in, const std::vector<size_t>& order,
                   size_t from) {
  assert(from >= 1 && from <= order.size());
  if (from >= order.size()) return true;
  uint64_t mask = 0;
  for (size_t i = 0; i < from; ++i) mask |= uint64_t{1} << order[i];
  std::vector<size_t> tail(order.begin() + from, order.end());
  std::vector<size_t> ideal = GreedyRankOrder(in, tail, mask);
  return ideal == tail;
}

}  // namespace ajr

// Static planner: the compile-time optimizer the adaptive run-time starts
// from and corrects.
//
// It produces ONE pipelined plan (Sec 2: "only one execution plan ... with a
// small number of switchable single-table access plans embedded"):
//
//   * a driving-table choice plus a greedy ascending-rank inner order, both
//     from uniformity/independence estimates;
//   * per table, a pre-compiled single-table access plan for the driving
//     role (best index by estimated selectivity, or a table scan) — these
//     are what the run-time switches between when it reorders the driving
//     leg;
//   * per join edge, the probe index used when the table is an inner leg;
//   * the optimizer's estimates (S_LPI, S_LP, S_JP), which seed the
//     run-time monitors before any measurement exists (Sec 4.3.3).

#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "expr/range_extraction.h"
#include "optimize/cost_model.h"
#include "optimize/query.h"
#include "optimize/selectivity.h"

namespace ajr {

/// Pre-compiled single-table access plan for the driving role.
struct DrivingAccess {
  /// Index to range-scan, or nullptr for a table scan.
  const IndexInfo* index = nullptr;
  /// Ranges the index scan covers (from the sargable local conjuncts).
  std::vector<KeyRange> ranges;
  /// Local conjuncts not absorbed into the ranges (null = none).
  ExprPtr residual;
  /// Optimizer's S_LPI: estimated fraction of entries the scan touches.
  double est_slpi = 1.0;
};

/// All access plans for one table of the query.
struct TableAccessPlans {
  DrivingAccess driving;
  /// Probe index per edge_id when this table is an inner leg probed through
  /// that edge; nullptr entries mean fall back to a filtered table scan.
  std::vector<const IndexInfo*> probe_index_by_edge;
};

/// The planner's output: one pipelined NLJN plan plus switchable access
/// plans and the estimate set.
struct PipelinePlan {
  JoinQuery query;  ///< owned copy
  /// Initial join order; order[0] is the driving leg. Entries are indices
  /// into query.tables.
  std::vector<size_t> initial_order;
  /// Parallel to query.tables.
  std::vector<TableAccessPlans> access;
  /// Optimizer estimates (seed values for run-time monitors).
  std::vector<double> est_local_sel;  ///< S_LP per table
  std::vector<double> est_edge_sel;   ///< S_JP per edge
  double est_cost = 0;                ///< Eq 1 cost of initial_order

  /// Resolved table entries, parallel to query.tables.
  std::vector<const TableEntry*> entries;

  /// CostInputs filled with the optimizer estimates.
  CostInputs EstimatedCostInputs() const;
};

/// Options controlling planning.
struct PlannerOptions {
  /// Statistics tier the optimizer consults (see selectivity.h). The
  /// paper's Sec 5 baseline is kMinimal; kBase is a modern default.
  StatsTier stats_tier = StatsTier::kBase;
  /// Queries of up to this many tables pick the driving leg by costing
  /// every candidate (the paper's regime); wider queries seed with the
  /// cardinality-greedy order instead (optimize/greedy_order.h) and rely
  /// on run-time adaptation to repair it. 8 keeps every paper workload —
  /// 4- and 6-table DMV templates, the <=5-table fuzz default — on the
  /// exhaustive path byte-for-byte.
  size_t greedy_seed_threshold = 8;
};

/// Builds PipelinePlans from JoinQueries against a catalog.
///
/// Thread safety: Plan() is const, allocates only local state, and reads
/// the catalog through its const surface, so one Planner instance serves
/// concurrent planning calls from many threads (the query runtime relies on
/// this). The catalog must be in its serve phase (see catalog/catalog.h).
class Planner {
 public:
  explicit Planner(const Catalog* catalog, PlannerOptions options = {})
      : catalog_(catalog), options_(options), estimator_(options.stats_tier) {}

  /// Plans `query` (which must Validate()). Fails if a referenced table or
  /// column does not exist.
  StatusOr<std::unique_ptr<PipelinePlan>> Plan(const JoinQuery& query) const;

  const SelectivityEstimator& estimator() const { return estimator_; }

 private:
  const Catalog* catalog_;
  PlannerOptions options_;
  SelectivityEstimator estimator_;
};

}  // namespace ajr

// Cardinality-greedy initial join orders for wide queries, and the
// polynomial candidate sets the adaptive layer explores at widths where
// exhaustive enumeration is off the table (DESIGN.md §13).
//
// The planner's default seeding costs every driving candidate with a
// greedy-rank tail — O(n^2) GreedyRankOrder calls — which is fine at the
// paper's 4-6 tables but wasteful at 10-20, where the estimates feeding it
// are mostly noise anyway (independence errors compound per join). Above
// PlannerOptions::greedy_seed_threshold the planner instead seeds with the
// classic cardinality-greedy order (ByConity's CardinalityBasedJoinReorder,
// Steinbrunn et al.'s minimum-intermediate-result heuristic): start from
// the smallest filtered leg, then place, round by round, the connected leg
// with the smallest estimated post-join cardinality. The run-time monitors
// plus RankPolicy / RegretBoundedPolicy are expected to repair what the
// heuristic gets wrong — that contract is what bench/wide_join measures.
//
// All selection here is deterministic: candidates are scanned in table-index
// order and only a strictly better score displaces the incumbent, so equal
// and zero cardinalities tie toward the smallest index.

#pragma once

#include <cstddef>
#include <vector>

#include "optimize/cost_model.h"

namespace ajr {

/// Cardinality-greedy order over every leg of `in`. order[0] is the leg
/// with the smallest filtered cardinality C(T) * S_LP(T); each following
/// round appends the connected unplaced leg with the smallest estimated
/// post-join cardinality flow * JC(T | placed). Legs with no edge into the
/// placed prefix become eligible only when no connected leg remains (the
/// cross-product fallback for disconnected graphs), picked by filtered
/// cardinality. Deterministic; ties break toward the smaller table index.
std::vector<size_t> GreedyCardinalityOrder(const CostInputs& in);

/// The adversarial mirror of GreedyCardinalityOrder: largest filtered
/// cardinality first, largest post-join cardinality each round — but still
/// connectivity-respecting, so the result is a bad-but-executable seed with
/// no accidental cross products. bench/wide_join and the wide-join tests
/// use it as the "corrupted optimizer" order adaptive repair must recover
/// from; a naive reversal would disconnect star prefixes and measure
/// cross-product blowup instead of misordering.
std::vector<size_t> AntiGreedyCardinalityOrder(const CostInputs& in);

/// The polynomial inner-tail candidate set for wide pipelines: every order
/// obtained from `order` by one adjacent transposition within
/// order[from..]. Returns order.size() - from - 1 candidates (empty when
/// the tail has fewer than two legs); each shares the prefix [0, from).
/// `from` is clamped to >= 1 so the driving leg is never moved.
std::vector<std::vector<size_t>> NeighborSwapOrders(
    const std::vector<size_t>& order, size_t from);

/// Estimated rows the fully joined pipeline emits under `in`: the driving
/// leg's filtered cardinality times JC of every inner given its prefix.
/// Shared by the greedy pass's tests and the wide workload generator's
/// sanity checks.
double EstimatedJoinOutput(const CostInputs& in,
                           const std::vector<size_t>& order);

}  // namespace ajr

// The paper's cost model for pipelined plans (Sec 3.2) and the rank machinery
// for inner-table ordering (Sec 3.3).
//
//   Cost(plan) = sum_i [ PC(T_o(i)) * prod_{j<i} JC(T_o(j)) ]     (Eq 1)
//   rank(T)    = (JC(T) - 1) / PC(T)                              (Eq 3)
//
// with JC(T_o(0)) = 1 and JC(T_o(1)) = CLEG(driving). Inner tables are
// optimal in ascending rank order (Eq 4, the ASI property) for a fixed
// driving leg.
//
// These functions are deliberately shared between the static planner and the
// adaptive run-time: the planner feeds them optimizer *estimates*, the
// run-time feeds them monitored values — the decision procedure is identical,
// only the inputs differ (Sec 4.3's point).
//
// Position dependence: on non-clique join graphs, which join predicates
// apply to a leg depends on the tables placed before it (Sec 4.3.4), so JC
// and PC are functions of the preceding set. GreedyRankOrder therefore
// places, at each step, the connected leg with the smallest rank given what
// is already placed (for the paper's tree-shaped queries this equals the
// rank-sorted order of Eq 4 restricted to connected prefixes).

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/work_counter.h"
#include "optimize/query.h"

namespace ajr {

/// Per-table cost parameters. The planner fills these with estimates, the
/// adaptive layer with monitored values (Sec 4.3).
struct LegParams {
  double cardinality = 0;  ///< C(T): base table cardinality
  double local_sel = 1.0;  ///< S_LP(T): combined local-predicate selectivity
  double index_height = 3; ///< B+-tree height of the probe index
};

/// Everything the cost functions need for one query.
struct CostInputs {
  const JoinQuery* query = nullptr;
  std::vector<LegParams> tables;  ///< parallel to query->tables
  std::vector<double> edge_sel;   ///< S_JP per edge, parallel to query->edges
};

/// The join edge leg `t` should probe through, given `preceding` (bitmask of
/// placed tables): the applicable edge with the fewest expected matches.
/// Returns the edge_id, or SIZE_MAX if no edge connects t to `preceding`.
size_t ChooseProbeEdge(const CostInputs& in, size_t t, uint64_t preceding_mask);

/// Expected index matches per probe of `t` through `edge_id`:
/// C(T) * S_JP(edge).
double MatchesPerProbe(const CostInputs& in, size_t t, size_t edge_id);

/// JC(T | preceding): matching output rows per incoming row (Sec 4.3.4):
/// C(T) * S_LP(T) * prod of S_JP over every applicable edge.
double JcAt(const CostInputs& in, size_t t, uint64_t preceding_mask);

/// PC(T | preceding): work units per incoming row for an indexed
/// nested-loop probe of `t` (traversal + entry scans + fetches + predicate
/// evaluations on fetched rows).
double PcAt(const CostInputs& in, size_t t, uint64_t preceding_mask);

/// rank(T) = (JC - 1) / PC (Eq 3).
double Rank(double jc, double pc);

/// Work units to scan `raw_entries` driving entries (fetch + filter each).
double DrivingScanCost(double raw_entries, double index_height);

/// Greedy ascending-rank order of `tables_to_place` given `already_placed`
/// (both as bitmask / list). Only connected legs are eligible at each step;
/// among them the smallest rank wins. Returns the placement order.
std::vector<size_t> GreedyRankOrder(const CostInputs& in,
                                    const std::vector<size_t>& tables_to_place,
                                    uint64_t already_placed_mask);

/// Eq 1 for a full order (order[0] = driving): DrivingScanCost for the
/// driving leg plus the inner probe terms. `driving_raw_entries` is the
/// number of index entries the driving scan touches (before residual
/// predicates); `driving_flow` is the number of rows the driving leg feeds
/// into the pipeline (JC(T_o(1)) = CLEG, or the *remaining* CLEG when
/// costing a partially executed plan at a switch point).
double PipelineCost(const CostInputs& in, const std::vector<size_t>& order,
                    double driving_raw_entries, double driving_flow);

/// True if legs `order[from..]` are in ascending-rank (greedy) order given
/// the prefix — the Fig 2 trigger condition.
bool IsRankOrdered(const CostInputs& in, const std::vector<size_t>& order,
                   size_t from);

/// Eq 1 restricted to a tail segment: per-incoming-row cost of probing
/// `tail` in order given `prefix_mask` (flow seeded at 1). Fig 2's benefit
/// comparison and the policy layer's wide-pipeline candidate evaluation
/// share this.
double TailCost(const CostInputs& in, const std::vector<size_t>& tail,
                uint64_t prefix_mask);

}  // namespace ajr

#include "optimize/planner.h"

#include <algorithm>
#include <limits>

#include "common/string_util.h"
#include "optimize/greedy_order.h"

namespace ajr {

CostInputs PipelinePlan::EstimatedCostInputs() const {
  CostInputs in;
  in.query = &query;
  in.tables.resize(query.tables.size());
  for (size_t t = 0; t < query.tables.size(); ++t) {
    in.tables[t].cardinality = static_cast<double>(entries[t]->StatsCardinality());
    in.tables[t].local_sel = est_local_sel[t];
    // Representative probe-index height: use the tallest index of the table
    // so PC is not underestimated.
    double height = 3;
    for (const auto& idx : entries[t]->indexes()) {
      height = std::max(height, static_cast<double>(idx->tree->height()));
    }
    in.tables[t].index_height = height;
  }
  in.edge_sel = est_edge_sel;
  return in;
}

namespace {

// Chooses the driving access plan for one table: the sargable index whose
// estimated touched-entry fraction is smallest, else a table scan.
DrivingAccess ChooseDrivingAccess(const TableEntry& entry, const ExprPtr& local_pred,
                                  const SelectivityEstimator& estimator) {
  DrivingAccess best;  // default: table scan, residual = whole predicate
  best.residual = local_pred;
  best.est_slpi = 1.0;
  double best_entries = static_cast<double>(entry.StatsCardinality());
  for (const auto& idx : entry.indexes()) {
    RangeExtraction ex = ExtractRanges(local_pred, idx->column);
    if (!ex.sargable) continue;
    double slpi = estimator.EstimateRanges(entry, idx->column, ex.ranges);
    double entries = slpi * static_cast<double>(entry.StatsCardinality());
    if (entries < best_entries) {
      best_entries = entries;
      best.index = idx.get();
      best.ranges = std::move(ex.ranges);
      best.residual = ex.residual;
      best.est_slpi = slpi;
    }
  }
  return best;
}

}  // namespace

StatusOr<std::unique_ptr<PipelinePlan>> Planner::Plan(const JoinQuery& query) const {
  AJR_RETURN_IF_ERROR(query.Validate());
  if (query.tables.size() > 64) {
    return Status::InvalidArgument("at most 64 tables per pipeline");
  }
  auto plan = std::make_unique<PipelinePlan>();
  plan->query = query;

  const size_t n = query.tables.size();
  plan->entries.resize(n);
  plan->access.resize(n);
  plan->est_local_sel.resize(n);
  for (size_t t = 0; t < n; ++t) {
    AJR_ASSIGN_OR_RETURN(const TableEntry* entry,
                         catalog_->GetTable(query.tables[t].table));
    plan->entries[t] = entry;
    // Validate column references early (local predicate binds + edges below).
    plan->est_local_sel[t] =
        estimator_.EstimateLocal(*entry, query.local_predicates[t]);
    plan->access[t].driving =
        ChooseDrivingAccess(*entry, query.local_predicates[t], estimator_);
    plan->access[t].probe_index_by_edge.assign(query.edges.size(), nullptr);
  }
  plan->est_edge_sel.resize(query.edges.size());
  for (const auto& e : query.edges) {
    const TableEntry* le = plan->entries[e.left];
    const TableEntry* re = plan->entries[e.right];
    AJR_RETURN_IF_ERROR(le->schema().ColumnIndex(e.left_column).status());
    AJR_RETURN_IF_ERROR(re->schema().ColumnIndex(e.right_column).status());
    plan->est_edge_sel[e.edge_id] =
        estimator_.EstimateJoin(*le, e.left_column, *re, e.right_column);
    plan->access[e.left].probe_index_by_edge[e.edge_id] =
        le->FindIndexOnColumn(e.left_column);
    plan->access[e.right].probe_index_by_edge[e.edge_id] =
        re->FindIndexOnColumn(e.right_column);
  }

  CostInputs in = plan->EstimatedCostInputs();

  // Wide queries: skip the per-candidate enumeration and seed with the
  // cardinality-greedy order — by this width the compounded independence
  // errors behind the estimates outweigh the enumeration's precision, and
  // the adaptive run-time owns the repair (DESIGN.md §13).
  if (n > options_.greedy_seed_threshold) {
    plan->initial_order = GreedyCardinalityOrder(in);
    const size_t d = plan->initial_order[0];
    double raw_entries = plan->access[d].driving.est_slpi *
                         static_cast<double>(plan->entries[d]->StatsCardinality());
    double cleg = plan->est_local_sel[d] *
                  static_cast<double>(plan->entries[d]->StatsCardinality());
    plan->est_cost = PipelineCost(in, plan->initial_order, raw_entries, cleg);
    return plan;
  }

  // Pick the driving table: for each candidate, greedy-rank the inners and
  // cost the pipeline with Eq 1; smallest estimated cost wins.
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t d = 0; d < n; ++d) {
    std::vector<size_t> inners;
    for (size_t t = 0; t < n; ++t) {
      if (t != d) inners.push_back(t);
    }
    std::vector<size_t> order = {d};
    auto rest = GreedyRankOrder(in, inners, uint64_t{1} << d);
    order.insert(order.end(), rest.begin(), rest.end());
    double raw_entries = plan->access[d].driving.est_slpi *
                         static_cast<double>(plan->entries[d]->StatsCardinality());
    double cleg = plan->est_local_sel[d] *
                  static_cast<double>(plan->entries[d]->StatsCardinality());
    double cost = PipelineCost(in, order, raw_entries, cleg);
    if (cost < best_cost) {
      best_cost = cost;
      plan->initial_order = std::move(order);
    }
  }
  plan->est_cost = best_cost;
  return plan;
}

}  // namespace ajr

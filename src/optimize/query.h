// JoinQuery: the select-project-join queries AJR executes.
//
// A query is a set of table references, binary equi-join edges between them
// (the join graph), one local-predicate tree per table, and a projection
// list. This mirrors the paper's setting: pipelined plans over n-way
// equi-joins with single-table local predicates (Sec 3.1).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"

namespace ajr {

/// A table occurrence in a query. `alias` must be unique per query.
struct TableRef {
  std::string alias;
  std::string table;
};

/// Equi-join predicate: tables[left].left_column = tables[right].right_column.
struct JoinEdge {
  size_t left = 0;  ///< index into JoinQuery::tables
  std::string left_column;
  size_t right = 0;  ///< index into JoinQuery::tables
  std::string right_column;
  size_t edge_id = 0;  ///< stable identifier (position in JoinQuery::edges)

  /// True if the edge touches table `t`.
  bool Touches(size_t t) const { return left == t || right == t; }
  /// The table on the other end of the edge from `t` (Touches(t) required).
  size_t Other(size_t t) const { return left == t ? right : left; }
  /// The join column on table `t`'s side (Touches(t) required).
  const std::string& ColumnOn(size_t t) const {
    return left == t ? left_column : right_column;
  }
};

/// One projected output column.
struct OutputColumn {
  size_t table = 0;  ///< index into JoinQuery::tables
  std::string column;
};

/// A select-project-join query.
struct JoinQuery {
  std::string name;  ///< label used in benchmark output (e.g. "T1/q17")
  std::vector<TableRef> tables;
  std::vector<JoinEdge> edges;
  /// Parallel to `tables`; entry may be null (no local predicate).
  std::vector<ExprPtr> local_predicates;
  std::vector<OutputColumn> output;

  /// Edges that touch `t`.
  std::vector<const JoinEdge*> EdgesOf(size_t t) const {
    std::vector<const JoinEdge*> out;
    for (const auto& e : edges) {
      if (e.Touches(t)) out.push_back(&e);
    }
    return out;
  }

  /// Validates shape: unique aliases, in-range edge/table indices, local
  /// predicate arity, and a connected join graph.
  Status Validate() const;

  /// SQL-ish rendering for logs and docs.
  std::string ToString() const;
};

}  // namespace ajr

#include "optimize/greedy_order.h"

#include <cstdint>

namespace ajr {

namespace {

double FilteredCardinality(const CostInputs& in, size_t t) {
  return in.tables[t].cardinality * in.tables[t].local_sel;
}

// `worst` flips every comparison: pick-largest instead of pick-smallest.
std::vector<size_t> GreedyOrderImpl(const CostInputs& in, bool worst) {
  const size_t n = in.tables.size();
  std::vector<size_t> order;
  order.reserve(n);
  if (n == 0) return order;

  // Strictly-better predicate: scanning candidates in ascending table index
  // with a strict comparison makes every tie resolve to the smaller index.
  auto better = [worst](double score, double best) {
    return worst ? score > best : score < best;
  };

  std::vector<bool> placed(n, false);
  size_t first = 0;
  for (size_t t = 1; t < n; ++t) {
    if (better(FilteredCardinality(in, t), FilteredCardinality(in, first))) {
      first = t;
    }
  }
  order.push_back(first);
  placed[first] = true;
  uint64_t mask = uint64_t{1} << first;

  while (order.size() < n) {
    size_t pick = SIZE_MAX;
    double pick_score = 0;
    for (size_t t = 0; t < n; ++t) {
      if (placed[t] || ChooseProbeEdge(in, t, mask) == SIZE_MAX) continue;
      // flow is a common factor across candidates, so the per-round
      // post-join cardinality comparison reduces to JC(T | placed).
      const double score = JcAt(in, t, mask);
      if (pick == SIZE_MAX || better(score, pick_score)) {
        pick = t;
        pick_score = score;
      }
    }
    if (pick == SIZE_MAX) {
      // Disconnected remainder: no leg joins the prefix, so the pick is a
      // cross product either way — fall back to filtered cardinality.
      for (size_t t = 0; t < n; ++t) {
        if (placed[t]) continue;
        const double score = FilteredCardinality(in, t);
        if (pick == SIZE_MAX || better(score, pick_score)) {
          pick = t;
          pick_score = score;
        }
      }
    }
    order.push_back(pick);
    placed[pick] = true;
    mask |= uint64_t{1} << pick;
  }
  return order;
}

}  // namespace

std::vector<size_t> GreedyCardinalityOrder(const CostInputs& in) {
  return GreedyOrderImpl(in, /*worst=*/false);
}

std::vector<size_t> AntiGreedyCardinalityOrder(const CostInputs& in) {
  return GreedyOrderImpl(in, /*worst=*/true);
}

std::vector<std::vector<size_t>> NeighborSwapOrders(
    const std::vector<size_t>& order, size_t from) {
  if (from < 1) from = 1;
  std::vector<std::vector<size_t>> out;
  if (order.size() < from + 2) return out;
  out.reserve(order.size() - from - 1);
  for (size_t i = from; i + 1 < order.size(); ++i) {
    std::vector<size_t> cand = order;
    std::swap(cand[i], cand[i + 1]);
    out.push_back(std::move(cand));
  }
  return out;
}

double EstimatedJoinOutput(const CostInputs& in,
                           const std::vector<size_t>& order) {
  if (order.empty()) return 0;
  double flow = FilteredCardinality(in, order[0]);
  uint64_t mask = uint64_t{1} << order[0];
  for (size_t i = 1; i < order.size(); ++i) {
    flow *= JcAt(in, order[i], mask);
    mask |= uint64_t{1} << order[i];
  }
  return flow;
}

}  // namespace ajr

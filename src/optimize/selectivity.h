// Static selectivity estimation.
//
// This is the optimizer the paper's technique corrects at run-time, so it
// deliberately implements the classical assumption set (Sec 1):
//
//   * uniformity  — equality selectivity = 1/NDV; range selectivity by
//     linear interpolation over [min, max];
//   * independence — conjunct selectivities multiply.
//
// Both assumptions are violated by the DMV data (skew; make->model and
// country->city correlations), producing exactly the misestimates the
// adaptive reorderer must recover from.
//
// Three statistics tiers select what the estimator may consult:
//
//   kMinimal — the paper's Sec 5 baseline: "the DBMS was able to estimate
//     table cardinalities via statistics giving table sizes and average row
//     sizes, and the data value distributions were assumed to be uniform".
//     Only table cardinality is known; every predicate gets a default
//     selectivity (DB2-style: 0.04 equality, 1/3 inequality).
//   kBase — per-column NDV and min/max (a modern baseline): equality =
//     1/NDV, ranges by uniform interpolation, independence for conjuncts.
//   kRich — Sec 5.3's "more sophisticated statistics": frequent-value
//     sketches and equi-depth histograms. Multi-column correlation remains
//     invisible (the residual error behind the paper's "still up to 2x").

#pragma once

#include "catalog/catalog.h"
#include "expr/expr.h"
#include "expr/range_extraction.h"

namespace ajr {

/// Which statistics the optimizer may consult (see file comment).
enum class StatsTier : uint8_t {
  kMinimal,  ///< table sizes only (the paper's Sec 5 baseline)
  kBase,     ///< + per-column NDV and min/max
  kRich,     ///< + frequent values and equi-depth histograms (Sec 5.3)
};

/// Estimates predicate and join selectivities from catalog statistics.
class SelectivityEstimator {
 public:
  explicit SelectivityEstimator(StatsTier tier = StatsTier::kBase) : tier_(tier) {}

  /// Selectivity of a local predicate tree on `table` in [0, 1].
  /// Null predicate = 1.0. Unknown shapes fall back to defaults.
  double EstimateLocal(const TableEntry& table, const ExprPtr& predicate) const;

  /// Selectivity of one key-range set on `column` (the S_LPI the optimizer
  /// hands the run-time for an index scan's boundary predicates).
  double EstimateRanges(const TableEntry& table, const std::string& column,
                        const std::vector<KeyRange>& ranges) const;

  /// Join-predicate selectivity for left.left_column = right.right_column,
  /// using the containment assumption 1/max(NDV_l, NDV_r) (kMinimal: the
  /// equality default).
  double EstimateJoin(const TableEntry& left, const std::string& left_column,
                      const TableEntry& right, const std::string& right_column) const;

  StatsTier tier() const { return tier_; }

  /// Default selectivities when statistics are missing or withheld
  /// (DB2-style defaults).
  static constexpr double kDefaultEquality = 0.04;
  static constexpr double kDefaultRange = 1.0 / 3.0;

 private:
  double EstimateEquality(const TableEntry& table, const std::string& column,
                          const Value& value) const;
  double EstimateRangeOne(const TableEntry& table, const std::string& column,
                          const KeyRange& range) const;

  StatsTier tier_;
};

}  // namespace ajr

#include "optimize/query.h"

#include <set>

#include "common/string_util.h"

namespace ajr {

Status JoinQuery::Validate() const {
  if (tables.empty()) return Status::InvalidArgument("query has no tables");
  std::set<std::string> aliases;
  for (const auto& t : tables) {
    if (!aliases.insert(t.alias).second) {
      return Status::InvalidArgument(StrCat("duplicate alias '", t.alias, "'"));
    }
  }
  if (local_predicates.size() != tables.size()) {
    return Status::InvalidArgument("local_predicates must parallel tables");
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    const auto& e = edges[i];
    if (e.left >= tables.size() || e.right >= tables.size() || e.left == e.right) {
      return Status::InvalidArgument(StrCat("edge ", i, " references bad tables"));
    }
    if (e.edge_id != i) {
      return Status::InvalidArgument(StrCat("edge ", i, " has edge_id ", e.edge_id,
                                            "; edge_id must equal position"));
    }
  }
  for (const auto& oc : output) {
    if (oc.table >= tables.size()) {
      return Status::InvalidArgument("output column references bad table");
    }
  }
  // Connectivity check (BFS over the join graph).
  if (tables.size() > 1) {
    std::vector<bool> seen(tables.size(), false);
    std::vector<size_t> frontier = {0};
    seen[0] = true;
    size_t reached = 1;
    while (!frontier.empty()) {
      size_t t = frontier.back();
      frontier.pop_back();
      for (const auto& e : edges) {
        if (!e.Touches(t)) continue;
        size_t o = e.Other(t);
        if (!seen[o]) {
          seen[o] = true;
          ++reached;
          frontier.push_back(o);
        }
      }
    }
    if (reached != tables.size()) {
      return Status::InvalidArgument("join graph is not connected");
    }
  }
  return Status::OK();
}

std::string JoinQuery::ToString() const {
  std::vector<std::string> select_parts;
  for (const auto& oc : output) {
    select_parts.push_back(StrCat(tables[oc.table].alias, ".", oc.column));
  }
  std::vector<std::string> from_parts;
  for (const auto& t : tables) {
    from_parts.push_back(StrCat(t.table, " ", t.alias));
  }
  std::vector<std::string> where_parts;
  for (const auto& e : edges) {
    where_parts.push_back(StrCat(tables[e.left].alias, ".", e.left_column, " = ",
                                 tables[e.right].alias, ".", e.right_column));
  }
  for (size_t i = 0; i < local_predicates.size(); ++i) {
    if (local_predicates[i] != nullptr) {
      // Qualify with alias for readability.
      where_parts.push_back(
          StrCat("[", tables[i].alias, "] ", local_predicates[i]->ToString()));
    }
  }
  return StrCat("SELECT ", select_parts.empty() ? "*" : Join(select_parts, ", "),
                " FROM ", Join(from_parts, ", "), " WHERE ",
                Join(where_parts, " AND "));
}

}  // namespace ajr

// Status / StatusOr: lightweight error propagation without exceptions.
//
// The public API of AJR never throws; fallible operations return Status or
// StatusOr<T>. This mirrors the error-handling idiom of RocksDB/Arrow.

#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace ajr {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kInternal,
  kNotSupported,
  kCancelled,
  kDeadlineExceeded,
};

/// Returns a human-readable name for a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// Cheap to copy in the OK case (no allocation). Construct error states via
/// the static factories, e.g. `Status::InvalidArgument("bad column")`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status.
///
/// Access the value with `value()` / `operator*` only after checking `ok()`;
/// accessing the value of an error StatusOr aborts in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value (OK state).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ajr

/// Propagates an error Status from an expression, e.g.
///   AJR_RETURN_IF_ERROR(table->Insert(row));
#define AJR_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::ajr::Status _ajr_st = (expr);              \
    if (!_ajr_st.ok()) return _ajr_st;           \
  } while (0)

#define AJR_CONCAT_IMPL(a, b) a##b
#define AJR_CONCAT(a, b) AJR_CONCAT_IMPL(a, b)

/// Assigns the value of a StatusOr expression or propagates its error, e.g.
///   AJR_ASSIGN_OR_RETURN(auto idx, catalog.GetIndex("car_make"));
#define AJR_ASSIGN_OR_RETURN(lhs, expr)                            \
  auto AJR_CONCAT(_ajr_sor_, __LINE__) = (expr);                   \
  if (!AJR_CONCAT(_ajr_sor_, __LINE__).ok())                       \
    return AJR_CONCAT(_ajr_sor_, __LINE__).status();               \
  lhs = std::move(AJR_CONCAT(_ajr_sor_, __LINE__)).value()

#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace ajr {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  has_spare_gaussian_ = false;
}

uint64_t Rng::Next64() {
  const uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork(uint64_t salt) {
  // Derive a child seed from the parent stream and the salt; deterministic.
  uint64_t mix = Next64() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
  return Rng(mix);
}

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(size_t k) const {
  assert(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace ajr

#include "common/string_util.h"

#include <iomanip>

namespace ajr {

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

}  // namespace ajr

#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/string_util.h"

namespace ajr {

size_t Histogram::BucketIndex(uint64_t sample) {
  if (sample < (uint64_t{1} << kSubBucketBits)) return sample;
  const int msb = 63 - std::countl_zero(sample);
  const size_t octave = static_cast<size_t>(msb) - kSubBucketBits + 1;
  const size_t sub = (sample >> (msb - kSubBucketBits)) & ((1u << kSubBucketBits) - 1);
  return (octave << kSubBucketBits) + sub;
}

uint64_t Histogram::BucketUpperBound(size_t idx) {
  if (idx < (uint64_t{1} << kSubBucketBits)) return idx;
  const size_t octave = idx >> kSubBucketBits;
  const size_t sub = idx & ((1u << kSubBucketBits) - 1);
  const int msb = static_cast<int>(octave) + kSubBucketBits - 1;
  const uint64_t width = uint64_t{1} << (msb - kSubBucketBits);
  return (uint64_t{1} << msb) + sub * width + width - 1;
}

void Histogram::Record(uint64_t sample) {
  buckets_[BucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (sample < seen &&
         !min_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (sample > seen &&
         !max_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::min() const {
  uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

uint64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // 1-based rank of the requested sample under nearest-rank semantics.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(n))));
  uint64_t cum = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (cum + in_bucket >= rank) {
      // Interpolate linearly inside the bucket's sample range, clamped to
      // the observed extremes so small-n quantiles stay exact-ish.
      const uint64_t lo = i == 0 ? 0 : BucketUpperBound(i - 1) + 1;
      const uint64_t hi = BucketUpperBound(i);
      const double frac =
          static_cast<double>(rank - cum) / static_cast<double>(in_bucket);
      double v = static_cast<double>(lo) +
                 frac * static_cast<double>(hi - lo);
      v = std::min(v, static_cast<double>(max()));
      v = std::max(v, static_cast<double>(min()));
      return v;
    }
    cum += in_bucket;
  }
  return static_cast<double>(max());
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> lines;
  lines.reserve(counters_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    lines.push_back(StrCat(name, " ", counter->value()));
  }
  for (const auto& [name, hist] : histograms_) {
    lines.push_back(StrCat(
        name, " count=", hist->count(), " mean=", FormatDouble(hist->mean(), 1),
        " p50=", FormatDouble(hist->Quantile(0.50), 0),
        " p95=", FormatDouble(hist->Quantile(0.95), 0),
        " p99=", FormatDouble(hist->Quantile(0.99), 0), " max=", hist->max()));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace ajr

// Deterministic pseudo-random number generation for data synthesis and tests.
//
// All randomness in AJR flows through Rng (splitmix64-seeded xoshiro256**) so
// that data sets, workloads, and property tests are bit-reproducible across
// platforms. <random> distributions are deliberately avoided because their
// output is implementation-defined.

#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ajr {

/// xoshiro256** PRNG with splitmix64 seeding. Deterministic across platforms.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams on any platform.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  /// Standard normal via Box-Muller (deterministic given the stream).
  double NextGaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Forks an independent stream; children of equal parents+salt are equal.
  Rng Fork(uint64_t salt);

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Zipf(n, s) sampler over {0, .., n-1}: P(k) proportional to 1/(k+1)^s.
///
/// Uses a precomputed CDF with binary-search sampling; construction is O(n),
/// sampling O(log n). s = 0 degenerates to uniform.
class ZipfDistribution {
 public:
  /// Builds the CDF for n items with exponent s >= 0. Requires n > 0.
  ZipfDistribution(size_t n, double s);

  /// Draws an item index in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of item k.
  double Pmf(size_t k) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace ajr

// Engine-wide metrics: lock-free counters and histograms behind a named
// registry.
//
// The concurrent runtime (src/runtime) serves many queries at once, so
// per-query ExecStats alone no longer describe engine behaviour — operators
// need process-wide totals (queries started/finished/cancelled, rows out,
// work units, adaptation events) and latency distributions. Counter and
// Histogram are single atomic words / fixed atomic arrays: recording on the
// query hot path is wait-free and never allocates. The registry maps stable
// names to metric objects; handed-out pointers stay valid for the registry's
// lifetime, so callers look a metric up once and record through the pointer.
//
// Thread safety: every member of Counter, Histogram, and MetricsRegistry is
// safe to call concurrently. Snapshots are taken without stopping writers,
// so a snapshot is a consistent-enough view for monitoring, not an atomic
// cut across metrics.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ajr {

/// Monotonic event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Distribution of non-negative integer samples (latencies in microseconds,
/// row counts, work units).
///
/// Buckets are log2-spaced with 8 linear sub-buckets per octave (relative
/// quantile error <= 12.5%), which keeps recording to two shifts and one
/// atomic increment. Quantiles interpolate within the hit bucket.
class Histogram {
 public:
  void Record(uint64_t sample);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const;
  uint64_t max() const;
  double mean() const;
  /// Value at quantile q in [0, 1] (0.5 = median). 0 when empty.
  double Quantile(double q) const;
  void Reset();

 private:
  // 64 octaves x 8 sub-buckets covers the full uint64 range.
  static constexpr size_t kSubBucketBits = 3;
  static constexpr size_t kNumBuckets = 64 << kSubBucketBits;
  static size_t BucketIndex(uint64_t sample);
  /// Inclusive upper bound of bucket `idx`'s sample range.
  static uint64_t BucketUpperBound(size_t idx);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Named registry of counters and histograms.
///
/// `Global()` is the process-wide instance the engine defaults to; tests and
/// embedded engines can own private registries instead.
class MetricsRegistry {
 public:
  /// Returns the counter named `name`, creating it on first use. The pointer
  /// stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name);
  /// Returns the histogram named `name`, creating it on first use.
  Histogram* GetHistogram(const std::string& name);

  /// The counter/histogram if it exists, else nullptr (no creation).
  const Counter* FindCounter(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Human-readable dump, one metric per line, sorted by name:
  ///   engine.queries_finished 117
  ///   engine.query_latency_us count=117 mean=834.2 p50=512 p95=3120 p99=4805
  std::string Snapshot() const;

  /// Zeroes every registered metric (registration survives). Test helper.
  void ResetAll();

  /// The process-wide registry.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ajr

// Deterministic work accounting.
//
// Adaptive reordering decisions must be reproducible, so probe costs are
// measured in abstract "work units" rather than wall time: B+-tree node
// visits, heap-row fetches, and predicate evaluations each charge a fixed
// number of units. Wall time is still reported by the benchmark harnesses,
// but never feeds back into plan decisions.

#pragma once

#include <cstdint>

namespace ajr {

/// Cumulative work-unit counter threaded through storage and executor code.
///
/// A single WorkCounter instance is owned by the executor for a query and
/// passed (as a pointer) into every cursor/probe; null pointers are allowed
/// and make charging a no-op, so storage can be used stand-alone.
class WorkCounter {
 public:
  /// Cost charged per B+-tree node visited during a traversal.
  static constexpr uint64_t kIndexNodeVisit = 4;
  /// Cost charged per index leaf entry scanned.
  static constexpr uint64_t kIndexEntryScan = 1;
  /// Cost charged per heap row fetched by RID.
  static constexpr uint64_t kRowFetch = 4;
  /// Cost charged per predicate (tree) evaluation against a row.
  static constexpr uint64_t kPredicateEval = 1;

  void Add(uint64_t units) { total_ += units; }
  uint64_t total() const { return total_; }
  void Reset() { total_ = 0; }

 private:
  uint64_t total_ = 0;
};

/// Charges `units` to `counter` if it is non-null.
inline void ChargeWork(WorkCounter* counter, uint64_t units) {
  if (counter != nullptr) counter->Add(units);
}

}  // namespace ajr

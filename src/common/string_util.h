// Small string formatting helpers shared across modules.

#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace ajr {

/// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Formats a double with `precision` fractional digits (fixed notation).
std::string FormatDouble(double v, int precision = 3);

/// Streams all arguments into a single string, e.g. StrCat("leg ", 3).
template <typename... Args>
std::string StrCat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  return oss.str();
}

}  // namespace ajr

// AJR_CHECK: always-on invariant checks for contract violations.
//
// The default build is RelWithDebInfo, which defines NDEBUG and compiles
// `assert` out. Contract violations that would otherwise become silent
// out-of-bounds reads (e.g. a stale Rid handed to HeapTable::Fetch) must
// abort in every build mode, so hot-path bounds checks use AJR_CHECK.
// The predicate is a single predictable branch; keep the condition cheap.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace ajr {

[[noreturn]] inline void CheckFailed(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "AJR_CHECK failed: %s (%s:%d)\n", cond, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace ajr

#define AJR_CHECK(cond)                                       \
  do {                                                        \
    if (!(cond)) ::ajr::CheckFailed(#cond, __FILE__, __LINE__); \
  } while (0)

// Cooperative cancellation for running queries.
//
// A CancellationToken is shared between the control plane (QueryHandle::
// Cancel, the engine's deadline bookkeeping) and the worker thread executing
// the query. The executor polls the token at its depleted-state points — the
// same moments the paper uses for reorder checks — so cancellation adds no
// cost to the probe hot path: a depleted state is reached once per incoming
// row at most, and the poll is one relaxed atomic load.
//
// Thread safety: Cancel() and the polling methods may race freely (atomic
// flag). set_deadline() must happen-before the token is shared with the
// executing thread; the engine sets it at submit time, before enqueueing.

#pragma once

#include <atomic>
#include <chrono>
#include <optional>

#include "common/status.h"

namespace ajr {

/// Why a query stopped before completing.
enum class StopReason {
  kNone = 0,
  kCancelled,
  kDeadlineExceeded,
};

/// Shared cancel/deadline flag polled by the executor.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. Idempotent; callable from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Absolute deadline. Must be set before the token is shared with the
  /// executing thread (the engine sets it at submit time).
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
  }
  bool has_deadline() const { return deadline_.has_value(); }

  /// Flag-only poll: one relaxed load. Used at high-frequency depleted
  /// states (inner legs), where reading the clock would be measurable.
  StopReason CheckFlag() const {
    return cancel_requested() ? StopReason::kCancelled : StopReason::kNone;
  }

  /// Full poll: flag plus deadline (one clock read). Used at driving-row
  /// boundaries and periodically at inner depleted states.
  StopReason Check() const {
    if (cancel_requested()) return StopReason::kCancelled;
    if (deadline_.has_value() &&
        std::chrono::steady_clock::now() >= *deadline_) {
      return StopReason::kDeadlineExceeded;
    }
    return StopReason::kNone;
  }

  /// The Status a query terminated by `reason` surfaces to its caller.
  static Status ToStatus(StopReason reason) {
    switch (reason) {
      case StopReason::kCancelled:
        return Status::Cancelled("query cancelled");
      case StopReason::kDeadlineExceeded:
        return Status::DeadlineExceeded("query deadline exceeded");
      case StopReason::kNone:
        break;
    }
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::optional<std::chrono::steady_clock::time_point> deadline_;
};

}  // namespace ajr

// Differential oracle for the adaptive executor.
//
// RunDifferential executes one WorkloadSpec through ReferenceExecutor (the
// trusted brute-force baseline) and through PipelineExecutor under a
// spread of adaptive configurations — from adaptation fully off to
// maximally aggressive switching (check every row, no hysteresis, tiny
// history window) — and reports the first discrepancy:
//
//   * result-multiset mismatch against the reference;
//   * a runtime invariant violation, observed through the executor's
//     ExecObserver hook by InvariantChecker:
//       I1  no join combination (RID tuple) is emitted twice, under any
//           switching schedule (Sec 4.2's duplicate prevention);
//       I2  a leg's driving-scan position never regresses — across
//           demotion and re-promotion the cursor moves strictly forward,
//           and a demoted leg's recorded prefix covers its last row;
//       I3  probe counters are consistent: out <= after_edges <= fetched
//           <= C(T) for every incoming row (the monitors' "outgoing <=
//           incoming x fan-out" mass balance);
//       I4  join-order changes happen only at depleted states (Sec 4.1):
//           an inner reorder at position p directly follows the depletion
//           of segment [p..k], a driving switch the depletion of the
//           whole pipeline;
//       I5  final ExecStats agree with the observed event stream (rows
//           emitted, driving rows produced).
//
// Failures carry a human-readable detail string and are deterministic for
// a given spec, which is what makes shrinking possible.

#pragma once

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "adaptive/controller.h"
#include "exec/exec_observer.h"
#include "exec/fault_injection.h"
#include "exec/pipeline_executor.h"
#include "optimize/selectivity.h"
#include "testing/workload_gen.h"

namespace ajr {
namespace testing {

/// One executor configuration the differential harness runs.
struct DifferentialConfig {
  std::string name;
  AdaptiveOptions adaptive;
  StatsTier stats_tier = StatsTier::kBase;
  /// Configurations sharing a non-empty work_class claim to perform the
  /// same LOGICAL work — batching, hinted descent, and memoization are
  /// pure execution strategies, so every stat the adaptive controller can
  /// see (work units, row counts, checks, reorders, the event log, the
  /// final order) must be bit-identical across the class. RunDifferential
  /// enforces this and reports divergence as kind "work-divergence".
  /// Configs in one class must share a stats_tier (different tiers plan
  /// differently on purpose).
  std::string work_class;
  /// Degree of parallelism: > 1 runs the morsel-parallel executor with one
  /// InvariantChecker per worker (I1-I5 hold per worker pipeline) plus a
  /// cross-worker duplicate check and the usual result-multiset comparison
  /// against the reference. Parallel configs cannot join a work_class:
  /// morsel interleaving makes per-run work timing-dependent.
  size_t dop = 1;
  /// Driving-scan entries per morsel for dop > 1. Deliberately tiny so a
  /// small fuzz query still crosses many morsel boundaries, folds, and
  /// drain barriers.
  size_t morsel_size = 5;
  /// Cross-query sharing mode (the --share axis): which of the shared scan
  /// registry and the striped shared probe cache the run attaches to.
  enum class Share { kOff, kScan, kCache, kBoth };
  Share share = Share::kOff;
  /// Run the morsel-parallel orchestration even at dop == 1 (deterministic:
  /// one worker consumes morsels in dispenser order). Sharing configs set
  /// this so all four Share modes run the identical code path and can share
  /// a work_class; serial-path configs must never join such a class (the
  /// coordinator's event strings differ from the serial executor's).
  bool force_parallel = false;
};

/// The default configuration spread: static plan, paper defaults, and an
/// aggressive config that maximizes moments-of-symmetry churn (check every
/// row, zero thresholds, window of 4) under both statistics tiers. The
/// static, paper-default, and aggressive-base configs additionally run
/// batched-probe variants (batch on/off x memoization on/off) in a shared
/// work_class; the aggressive class demotes and re-promotes constantly, so
/// its memoized variants exercise warm-cache epochs across demotion.
std::vector<DifferentialConfig> DefaultConfigs();

/// The subset of DefaultConfigs() whose AdaptiveOptions select `kind` —
/// the policy axis of the differential oracle (fuzz_differential
/// --policy=<name>, CI's per-policy smoke runs). Every subset still
/// compares against the trusted reference executor, so running the three
/// subsets asserts all policies agree on the result multiset.
std::vector<DifferentialConfig> ConfigsForPolicy(PolicyKind kind);

/// The index-backend axis: every DefaultConfigs() entry selecting `backend`
/// plus all configs sharing a work_class with one of them, so the subset is
/// a self-contained cross-backend differential — identical result multisets
/// against the reference AND bit-identical work/stat accounting between the
/// backends within each class (fuzz_differential --index=<name>).
std::vector<DifferentialConfig> ConfigsForBackend(IndexBackend backend);

/// The cross-query sharing axis (fuzz_differential --share): the four
/// Share modes at forced-parallel dop 1 in one work_class — shared scans
/// replay per-morsel work and the shared cache replays as-if-fresh probe
/// triples, so work units, decision traces, events, and results must be
/// bit-identical to sharing-off — plus a dop-2 share-both config (classless:
/// morsel interleaving is timing-dependent). Every sharing config is
/// additionally run twice against the same registry/cache, and the warm
/// re-run must be work-identical to the cold one (retained passes and
/// cached probes replay, never change, the work).
std::vector<DifferentialConfig> ConfigsForShare();

/// The aggressive AdaptiveOptions used by DefaultConfigs (exported for
/// tests that want maximum switching on their own plans).
AdaptiveOptions AggressiveAdaptiveOptions();

/// First discrepancy found for one spec.
struct FailureReport {
  uint64_t seed = 0;
  std::string config;  ///< DifferentialConfig::name
  std::string kind;    ///< "result-mismatch" | "invariant" | "work-divergence" | "error"
  std::string detail;

  std::string ToString() const;
};

/// Options for RunDifferential.
struct DifferentialOptions {
  /// Configurations to run; empty = DefaultConfigs().
  std::vector<DifferentialConfig> configs;
  /// Deliberate executor bugs (oracle self-validation); null = none.
  const FaultInjection* faults = nullptr;
  /// Run the InvariantChecker observer alongside result comparison.
  bool check_invariants = true;
};

/// Executes `spec` under every configuration; returns the first failure,
/// or nullopt when all configurations match the reference and satisfy the
/// invariants. Non-OK status means the harness itself could not run the
/// spec (planning error on a valid query is reported as a failure, not a
/// status).
StatusOr<std::optional<FailureReport>> RunDifferential(
    const WorkloadSpec& spec, const DifferentialOptions& options = {});

/// ExecObserver that checks invariants I1-I4 online and I5 in FinalCheck.
/// Violations accumulate (capped) instead of aborting, so one run reports
/// every broken property.
class InvariantChecker : public ExecObserver {
 public:
  /// `cardinalities[t]` = row count of query table t.
  explicit InvariantChecker(std::vector<size_t> cardinalities);

  void OnDrivingRow(size_t t, Rid rid, const ScanPosition& pos) override;
  void OnProbe(size_t t, size_t level, uint64_t fetched, uint64_t after_edges,
               uint64_t out) override;
  void OnEmit(const std::vector<Rid>& rids) override;
  void OnDepleted(size_t level) override;
  void OnAdaptation(const AdaptationEvent& event) override;

  /// I5: cross-checks the final stats against the observed stream.
  void FinalCheck(const ExecStats& stats);

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  uint64_t emitted() const { return emitted_count_; }
  /// Distinct emitted RID tuples (serialized); the parallel harness unions
  /// these across workers to catch cross-worker duplicates, which no
  /// single worker's I1 can see.
  const std::unordered_set<std::string>& emitted_keys() const {
    return emitted_;
  }

 private:
  void Violation(std::string message);

  static constexpr size_t kMaxViolations = 16;
  std::vector<size_t> cardinalities_;
  std::vector<std::optional<ScanPosition>> last_driving_pos_;
  std::unordered_set<std::string> emitted_;
  uint64_t emitted_count_ = 0;
  uint64_t driving_rows_ = 0;
  /// Level of the most recent OnDepleted, cleared by any row-flow event:
  /// the state machine behind I4.
  std::optional<size_t> last_depleted_level_;
  std::vector<std::string> violations_;
};

}  // namespace testing
}  // namespace ajr

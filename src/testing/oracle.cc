#include "testing/oracle.h"

#include <algorithm>
#include <memory>

#include "common/string_util.h"
#include "exec/reference_executor.h"
#include "optimize/planner.h"
#include "runtime/parallel_executor.h"

namespace ajr {
namespace testing {

namespace {

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  return out + ")";
}

std::string RidsKey(const std::vector<Rid>& rids) {
  std::string key;
  key.reserve(rids.size() * 6);
  for (Rid r : rids) {
    key += std::to_string(r);
    key += ',';
  }
  return key;
}

// True when `pos` lies strictly after `prev` in their shared scan order.
bool StrictlyAfter(const ScanPosition& prev, const ScanPosition& pos) {
  if (prev.order == ScanOrder::kRidOrder) return prev.StrictlyBeforeRid(pos.rid);
  return prev.StrictlyBefore(pos.key(), pos.rid);
}

std::string OrderToString(const std::vector<size_t>& order) {
  std::string out = "[";
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) out += " ";
    out += std::to_string(order[i]);
  }
  return out + "]";
}

// First logical-work field where `b` diverges from `a`, or nullopt when
// the two runs did the same work. Probe-strategy stats (probe_cache_*,
// probe_batches, probe_batch_keys, probe_descents_saved) and wall time are
// deliberately excluded: they describe HOW the work ran, not what work the
// controller saw.
std::optional<std::string> WorkStatsDiff(const ExecStats& a, const ExecStats& b) {
  auto diff_u64 = [](const char* field, uint64_t x, uint64_t y)
      -> std::optional<std::string> {
    if (x == y) return std::nullopt;
    return StrCat(field, ": ", x, " vs ", y);
  };
  for (auto& d :
       {diff_u64("work_units", a.work_units, b.work_units),
        diff_u64("rows_out", a.rows_out, b.rows_out),
        diff_u64("driving_rows_produced", a.driving_rows_produced,
                 b.driving_rows_produced),
        diff_u64("inner_checks", a.inner_checks, b.inner_checks),
        diff_u64("inner_reorders", a.inner_reorders, b.inner_reorders),
        diff_u64("driving_checks", a.driving_checks, b.driving_checks),
        diff_u64("driving_switches", a.driving_switches, b.driving_switches),
        diff_u64("policy_decisions", a.policy_decisions, b.policy_decisions),
        diff_u64("policy_reorders", a.policy_reorders, b.policy_reorders),
        diff_u64("policy_switches", a.policy_switches, b.policy_switches),
        diff_u64("policy_regret_x1000", a.policy_regret_x1000,
                 b.policy_regret_x1000)}) {
    if (d.has_value()) return d;
  }
  if (a.initial_order != b.initial_order) {
    return StrCat("initial_order: ", OrderToString(a.initial_order), " vs ",
                  OrderToString(b.initial_order));
  }
  if (a.final_order != b.final_order) {
    return StrCat("final_order: ", OrderToString(a.final_order), " vs ",
                  OrderToString(b.final_order));
  }
  if (a.events != b.events) {
    size_t i = 0;
    while (i < a.events.size() && i < b.events.size() && a.events[i] == b.events[i]) {
      ++i;
    }
    return StrCat("event log diverges at event ", i, ": \"",
                  i < a.events.size() ? a.events[i] : "<none>", "\" vs \"",
                  i < b.events.size() ? b.events[i] : "<none>", "\"");
  }
  return std::nullopt;
}

// Detail string for a result-multiset mismatch, or nullopt when `rows`
// (sorted in place) equals `expected` (already sorted).
std::optional<std::string> CompareSortedRows(const std::vector<Row>& expected,
                                             std::vector<Row>* rows) {
  SortRows(rows);
  if (*rows == expected) return std::nullopt;
  std::string detail = StrCat("reference rows=", expected.size(),
                              " adaptive rows=", rows->size(), "\n");
  const size_t n = std::min(rows->size(), expected.size());
  size_t diff = n;
  for (size_t i = 0; i < n; ++i) {
    if (!((*rows)[i] == expected[i])) {
      diff = i;
      break;
    }
  }
  if (diff < n) {
    detail += StrCat("first difference at sorted row ", diff,
                     ": reference=", RowToString(expected[diff]),
                     " adaptive=", RowToString((*rows)[diff]), "\n");
  } else if (rows->size() != expected.size()) {
    const std::vector<Row>& longer = rows->size() > n ? *rows : expected;
    detail += StrCat(rows->size() > n ? "extra" : "missing",
                     " row: ", RowToString(longer[n]), "\n");
  }
  return detail;
}

}  // namespace

AdaptiveOptions AggressiveAdaptiveOptions() {
  AdaptiveOptions aggressive;
  aggressive.check_frequency = 1;
  aggressive.switch_benefit_threshold = 1.0;
  aggressive.inner_benefit_epsilon = 0.0;
  aggressive.history_window = 4;
  aggressive.min_edge_pairs = 1;
  aggressive.min_leg_samples = 1;
  aggressive.check_backoff = false;
  return aggressive;
}

std::vector<DifferentialConfig> DefaultConfigs() {
  // The static baseline is a policy now, not a pair of disabled flags: the
  // StaticPolicy's capabilities gate every check off, so the optimizer's
  // initial order runs unchanged.
  AdaptiveOptions off;
  off.policy = PolicyKind::kStatic;
  // Probe-strategy variants: per-row (batching and memoization off), batch
  // descent only, memoization only, and both (the AdaptiveOptions default).
  // All four of a class must produce bit-identical logical work.
  auto probes = [](AdaptiveOptions base, size_t batch, size_t cache) {
    base.probe_batch_size = batch;
    base.probe_cache_entries = cache;
    return base;
  };
  AdaptiveOptions aggressive = AggressiveAdaptiveOptions();
  // Regret-bounded exploration: the policy's decisions depend only on
  // depleted-state snapshots (rows/work totals are replayed bit-identically
  // by every probe strategy), so regret configs can share a work_class like
  // the rank configs do.
  AdaptiveOptions regret;
  regret.policy = PolicyKind::kRegret;
  AdaptiveOptions regret_aggressive = AggressiveAdaptiveOptions();
  regret_aggressive.policy = PolicyKind::kRegret;
  const size_t kBatch = AdaptiveOptions{}.probe_batch_size;
  const size_t kCache = AdaptiveOptions{}.probe_cache_entries;
  // Index-backend variants: the ART charges the canonical B+-tree cost for
  // every probe, so an art config can share a work_class with its btree
  // twin — the strongest form of the parity claim (work units, decision
  // counts, event log, final order all bit-identical across backends).
  auto art = [](AdaptiveOptions base) {
    base.index_backend = IndexBackend::kArt;
    return base;
  };
  return {
      {"static", off, StatsTier::kBase, "static"},
      {"static/per-row", probes(off, 1, 0), StatsTier::kBase, "static"},
      {"paper-default", AdaptiveOptions{}, StatsTier::kMinimal, "paper"},
      {"paper-default/per-row", probes(AdaptiveOptions{}, 1, 0),
       StatsTier::kMinimal, "paper"},
      {"aggressive-minimal", aggressive, StatsTier::kMinimal, ""},
      // The aggressive class demotes and re-promotes on nearly every check,
      // so the memoized variants repeatedly hit warm cache entries across
      // demotion epochs — the hardest case for replayed accounting.
      {"aggressive-base", aggressive, StatsTier::kBase, "aggressive"},
      {"aggressive-base/per-row", probes(aggressive, 1, 0), StatsTier::kBase,
       "aggressive"},
      {"aggressive-base/batch-only", probes(aggressive, kBatch, 0),
       StatsTier::kBase, "aggressive"},
      {"aggressive-base/memo-only", probes(aggressive, 1, kCache),
       StatsTier::kBase, "aggressive"},
      // Regret-bounded policy axis: results must still match the reference
      // under UCB-driven switching, and the policy must be deterministic
      // across probe strategies (shared work_class).
      {"regret-base", regret, StatsTier::kBase, "regret"},
      {"regret-base/per-row", probes(regret, 1, 0), StatsTier::kBase,
       "regret"},
      {"regret-aggressive", regret_aggressive, StatsTier::kBase, ""},
      // ART backend twins of the btree configs above, in the same work
      // classes. The per-row variants bypass batching and memoization, so
      // every probe is a fresh ART descent charged as-if B+-tree; the
      // batched variants route through ProbeHinted + ProbeCache on top.
      {"static/art", art(off), StatsTier::kBase, "static"},
      {"paper-default/art", art(AdaptiveOptions{}), StatsTier::kMinimal,
       "paper"},
      {"paper-default/art-per-row", art(probes(AdaptiveOptions{}, 1, 0)),
       StatsTier::kMinimal, "paper"},
      {"aggressive-base/art", art(aggressive), StatsTier::kBase, "aggressive"},
      {"regret-base/art", art(regret), StatsTier::kBase, "regret"},
      // Morsel-parallel axis: the same invariants must hold per worker
      // pipeline, and the merged result multiset must still equal the
      // reference, for every dop. Tiny morsels force frequent dispenser
      // round-trips, monitor folds, and (for the aggressive config) drain
      // barriers under constant switching.
      {"static/dop2", off, StatsTier::kBase, "", 2, 5},
      {"paper-default/dop2", AdaptiveOptions{}, StatsTier::kMinimal, "", 2, 5},
      {"aggressive-base/dop4", aggressive, StatsTier::kBase, "", 4, 3},
      {"regret-base/dop2", regret, StatsTier::kBase, "", 2, 5},
      // Morsel-parallel ART: per-worker invariants and the merged result
      // multiset under the radix backend at dop 2 and 4.
      {"paper-default/art-dop2", art(AdaptiveOptions{}), StatsTier::kMinimal,
       "", 2, 5},
      {"aggressive-base/art-dop4", art(aggressive), StatsTier::kBase, "", 4, 3},
  };
}

std::vector<DifferentialConfig> ConfigsForBackend(IndexBackend backend) {
  std::vector<DifferentialConfig> all = DefaultConfigs();
  // Every work_class containing a config on `backend` joins the subset
  // whole, so the run is a true cross-backend accounting differential
  // (the other backend's twins serve as the in-class reference).
  std::unordered_set<std::string> classes;
  for (const DifferentialConfig& config : all) {
    if (config.adaptive.index_backend == backend && !config.work_class.empty()) {
      classes.insert(config.work_class);
    }
  }
  std::vector<DifferentialConfig> out;
  for (DifferentialConfig& config : all) {
    if (config.adaptive.index_backend == backend ||
        (!config.work_class.empty() && classes.count(config.work_class) > 0)) {
      out.push_back(std::move(config));
    }
  }
  return out;
}

std::vector<DifferentialConfig> ConfigsForShare() {
  using Share = DifferentialConfig::Share;
  // All share configs run the morsel-parallel orchestration at dop 1 (one
  // worker consumes morsels in dispenser order, so runs are deterministic
  // and the four modes can be held to bit-identical work in one class).
  auto mk = [](const char* name, AdaptiveOptions adaptive, const char* cls,
               Share share) {
    DifferentialConfig c;
    c.name = name;
    c.adaptive = adaptive;
    c.stats_tier = StatsTier::kBase;
    c.work_class = cls;
    c.dop = 1;
    c.morsel_size = 5;
    c.share = share;
    c.force_parallel = true;
    return c;
  };
  // The aggressive options demote and re-promote constantly, so the shared
  // modes exercise kept-attachment resumption and epoch-tagged shared-cache
  // retirement under maximum switching churn.
  AdaptiveOptions aggressive = AggressiveAdaptiveOptions();
  std::vector<DifferentialConfig> out = {
      mk("share-off", AdaptiveOptions{}, "share", Share::kOff),
      mk("share-scan", AdaptiveOptions{}, "share", Share::kScan),
      mk("share-cache", AdaptiveOptions{}, "share", Share::kCache),
      mk("share-both", AdaptiveOptions{}, "share", Share::kBoth),
      mk("share-off/aggressive", aggressive, "share-aggressive", Share::kOff),
      mk("share-both/aggressive", aggressive, "share-aggressive", Share::kBoth),
  };
  // Concurrency smoke: two workers over one shared pass and striped cache.
  // Classless — morsel interleaving makes per-run work timing-dependent.
  DifferentialConfig dop2 =
      mk("share-both/dop2", AdaptiveOptions{}, "", Share::kBoth);
  dop2.dop = 2;
  out.push_back(dop2);
  return out;
}

std::vector<DifferentialConfig> ConfigsForPolicy(PolicyKind kind) {
  std::vector<DifferentialConfig> out;
  for (DifferentialConfig& config : DefaultConfigs()) {
    if (config.adaptive.policy == kind) out.push_back(std::move(config));
  }
  return out;
}

std::string FailureReport::ToString() const {
  return StrCat("[seed ", seed, "] config=", config, " kind=", kind, "\n", detail);
}

// ---- InvariantChecker ------------------------------------------------------

InvariantChecker::InvariantChecker(std::vector<size_t> cardinalities)
    : cardinalities_(std::move(cardinalities)),
      last_driving_pos_(cardinalities_.size()) {}

void InvariantChecker::Violation(std::string message) {
  if (violations_.size() < kMaxViolations) {
    violations_.push_back(std::move(message));
  }
}

void InvariantChecker::OnDrivingRow(size_t t, Rid rid, const ScanPosition& pos) {
  last_depleted_level_.reset();
  ++driving_rows_;
  std::optional<ScanPosition>& prev = last_driving_pos_[t];
  if (prev.has_value()) {
    if (prev->order != pos.order) {
      Violation(StrCat("I2: table ", t, " changed scan order mid-run"));
    } else if (!StrictlyAfter(*prev, pos)) {
      Violation(StrCat("I2: table ", t, " driving scan regressed: row ", rid,
                       " at ", pos.ToString(), " not after ", prev->ToString()));
    }
  }
  prev = pos;
}

void InvariantChecker::OnProbe(size_t t, size_t level, uint64_t fetched,
                               uint64_t after_edges, uint64_t out) {
  last_depleted_level_.reset();
  if (out > after_edges || after_edges > fetched) {
    Violation(StrCat("I3: probe counters inconsistent at table ", t, " level ",
                     level, ": fetched=", fetched, " after_edges=", after_edges,
                     " out=", out));
  }
  if (t < cardinalities_.size() && fetched > cardinalities_[t]) {
    Violation(StrCat("I3: probe of table ", t, " fetched ", fetched,
                     " rows > cardinality ", cardinalities_[t]));
  }
}

void InvariantChecker::OnEmit(const std::vector<Rid>& rids) {
  last_depleted_level_.reset();
  ++emitted_count_;
  if (!emitted_.insert(RidsKey(rids)).second) {
    Violation(StrCat("I1: join combination ", RidsKey(rids),
                     " emitted twice (duplicate row)"));
  }
}

void InvariantChecker::OnDepleted(size_t level) { last_depleted_level_ = level; }

void InvariantChecker::OnAdaptation(const AdaptationEvent& event) {
  if (event.kind == AdaptationEvent::Kind::kInnerReorder) {
    if (last_depleted_level_ != event.position) {
      Violation(StrCat("I4: inner reorder at position ", event.position,
                       " outside a depleted state"));
    }
    return;
  }
  // Driving switch: legal only when the whole pipeline is depleted, i.e.
  // directly after segment [1..k] depleted (single-leg plans never switch).
  if (last_depleted_level_ != size_t{1}) {
    Violation("I4: driving switch outside the between-driving-rows state");
  }
  if (event.demoted_table < last_driving_pos_.size() &&
      event.demoted_prefix.has_value()) {
    const std::optional<ScanPosition>& last = last_driving_pos_[event.demoted_table];
    if (last.has_value() && StrictlyAfter(*event.demoted_prefix, *last)) {
      Violation(StrCat("I2: demoted table ", event.demoted_table, " prefix ",
                       event.demoted_prefix->ToString(),
                       " does not cover its last driving row at ",
                       last->ToString()));
    }
  }
}

void InvariantChecker::FinalCheck(const ExecStats& stats) {
  if (stats.rows_out != emitted_count_) {
    Violation(StrCat("I5: stats.rows_out=", stats.rows_out, " but observed ",
                     emitted_count_, " emits"));
  }
  if (stats.driving_rows_produced != driving_rows_) {
    Violation(StrCat("I5: stats.driving_rows_produced=", stats.driving_rows_produced,
                     " but observed ", driving_rows_, " driving rows"));
  }
}

// ---- RunDifferential -------------------------------------------------------

StatusOr<std::optional<FailureReport>> RunDifferential(
    const WorkloadSpec& spec, const DifferentialOptions& options) {
  AJR_RETURN_IF_ERROR(spec.query.Validate());
  AJR_ASSIGN_OR_RETURN(std::unique_ptr<Catalog> catalog, spec.Materialize());

  AJR_ASSIGN_OR_RETURN(std::vector<Row> expected,
                       ExecuteReference(*catalog, spec.query));
  SortRows(&expected);

  std::vector<size_t> cardinalities;
  for (const TableRef& t : spec.query.tables) {
    AJR_ASSIGN_OR_RETURN(const TableEntry* entry, catalog->GetTable(t.table));
    cardinalities.push_back(entry->table().num_rows());
  }

  const std::vector<DifferentialConfig> configs =
      options.configs.empty() ? DefaultConfigs() : options.configs;
  // Reference run per work_class: name of the first config in the class
  // plus its stats, compared against every later member.
  std::vector<std::pair<std::string, ExecStats>> class_stats;
  std::vector<std::string> class_names;
  for (const DifferentialConfig& config : configs) {
    FailureReport failure;
    failure.seed = spec.seed;
    failure.config = config.name;

    Planner planner(catalog.get(), PlannerOptions{config.stats_tier});
    auto plan = planner.Plan(spec.query);
    if (!plan.ok()) {
      failure.kind = "error";
      failure.detail = StrCat("planner: ", plan.status().ToString());
      return std::optional<FailureReport>(std::move(failure));
    }

    if (config.dop > 1 || config.force_parallel) {
      // Morsel-parallel run: one InvariantChecker per worker (each worker
      // is a full serial pipeline over its share of driving rows, so I1-I5
      // are per-worker properties), a cross-worker duplicate check, and
      // the usual result comparison on the merged row multiset.
      //
      // Sharing configs (--share axis) run TWICE against one registry/
      // cache pair: the cold run populates them, the warm run attaches to
      // the retained pass / hits the cached probes, and the two runs must
      // do bit-identical logical work — replay may change how work is
      // performed, never what work the controller sees.
      SharedScanRegistry scan_registry;
      SharedProbeCache shared_probe_cache;
      const bool share_scan = config.share == DifferentialConfig::Share::kScan ||
                              config.share == DifferentialConfig::Share::kBoth;
      const bool share_cache =
          config.share == DifferentialConfig::Share::kCache ||
          config.share == DifferentialConfig::Share::kBoth;
      const size_t runs =
          config.share == DifferentialConfig::Share::kOff ? 1 : 2;
      std::optional<ExecStats> cold_stats;
      for (size_t run = 0; run < runs; ++run) {
        ParallelExecOptions popts;
        popts.dop = config.dop;
        popts.morsel_size = config.morsel_size;
        popts.force_parallel = config.force_parallel;
        if (share_scan) popts.scan_registry = &scan_registry;
        if (share_cache) popts.shared_cache = &shared_probe_cache;
        ParallelPipelineExecutor exec(plan->get(), config.adaptive, popts);
        std::vector<std::unique_ptr<InvariantChecker>> checkers;
        if (options.check_invariants) {
          std::vector<ExecObserver*> observers;
          for (size_t w = 0; w < config.dop; ++w) {
            checkers.push_back(std::make_unique<InvariantChecker>(cardinalities));
            observers.push_back(checkers.back().get());
          }
          exec.set_worker_observers(std::move(observers));
        }
        if (options.faults != nullptr) exec.set_fault_injection(options.faults);

        std::vector<Row> rows;
        auto stats = exec.Execute([&rows](const Row& r) { rows.push_back(r); });
        if (!stats.ok()) {
          failure.kind = "error";
          failure.detail = StrCat("executor: ", stats.status().ToString());
          return std::optional<FailureReport>(std::move(failure));
        }
        if (options.check_invariants) {
          uint64_t emitted_total = 0;
          std::unordered_set<std::string> all_keys;
          for (size_t w = 0; w < checkers.size(); ++w) {
            checkers[w]->FinalCheck(exec.worker_stats()[w]);
            if (!checkers[w]->ok()) {
              failure.kind = "invariant";
              for (const std::string& v : checkers[w]->violations()) {
                failure.detail += StrCat("worker ", w, ": ", v, "\n");
              }
              return std::optional<FailureReport>(std::move(failure));
            }
            emitted_total += checkers[w]->emitted();
            all_keys.insert(checkers[w]->emitted_keys().begin(),
                            checkers[w]->emitted_keys().end());
          }
          if (all_keys.size() != emitted_total) {
            failure.kind = "invariant";
            failure.detail =
                StrCat("I1: ", emitted_total, " emits across workers but only ",
                       all_keys.size(),
                       " distinct RID tuples (cross-worker duplicate)\n");
            return std::optional<FailureReport>(std::move(failure));
          }
        }
        if (std::optional<std::string> diff =
                CompareSortedRows(expected, &rows)) {
          failure.kind = "result-mismatch";
          failure.detail =
              StrCat(run == 0 ? "" : "warm re-run: ", std::move(*diff));
          return std::optional<FailureReport>(std::move(failure));
        }
        if (run == 0) {
          cold_stats = *stats;
        } else if (config.dop <= 1) {
          // Warm-vs-cold work identity is a single-worker property; at
          // dop > 1 morsel interleaving makes per-run work timing-
          // dependent (the warm run still checks results + invariants).
          if (std::optional<std::string> diff =
                  WorkStatsDiff(*cold_stats, *stats)) {
            failure.kind = "work-divergence";
            failure.detail = StrCat(
                "warm re-run against the retained registry/cache diverges "
                "from the cold run: ",
                *diff);
            return std::optional<FailureReport>(std::move(failure));
          }
        }
      }
      // Forced-parallel single-worker runs are deterministic, so they may
      // join a work_class (real dop > 1 configs stay classless).
      if (config.dop <= 1 && !config.work_class.empty()) {
        size_t cls = 0;
        while (cls < class_names.size() && class_names[cls] != config.work_class) {
          ++cls;
        }
        if (cls == class_names.size()) {
          class_names.push_back(config.work_class);
          class_stats.emplace_back(config.name, *cold_stats);
        } else if (std::optional<std::string> diff =
                       WorkStatsDiff(class_stats[cls].second, *cold_stats)) {
          failure.kind = "work-divergence";
          failure.detail = StrCat("logical work differs from config \"",
                                  class_stats[cls].first, "\" (work_class \"",
                                  config.work_class, "\"): ", *diff);
          return std::optional<FailureReport>(std::move(failure));
        }
      }
      continue;
    }

    PipelineExecutor exec(plan->get(), config.adaptive);
    InvariantChecker checker(cardinalities);
    if (options.check_invariants) exec.set_observer(&checker);
    if (options.faults != nullptr) exec.set_fault_injection(options.faults);

    std::vector<Row> rows;
    auto stats = exec.Execute([&rows](const Row& r) { rows.push_back(r); });
    if (!stats.ok()) {
      failure.kind = "error";
      failure.detail = StrCat("executor: ", stats.status().ToString());
      return std::optional<FailureReport>(std::move(failure));
    }
    if (!config.work_class.empty()) {
      size_t cls = 0;
      while (cls < class_names.size() && class_names[cls] != config.work_class) {
        ++cls;
      }
      if (cls == class_names.size()) {
        class_names.push_back(config.work_class);
        class_stats.emplace_back(config.name, *stats);
      } else if (std::optional<std::string> diff =
                     WorkStatsDiff(class_stats[cls].second, *stats)) {
        failure.kind = "work-divergence";
        failure.detail = StrCat("logical work differs from config \"",
                                class_stats[cls].first, "\" (work_class \"",
                                config.work_class, "\"): ", *diff);
        return std::optional<FailureReport>(std::move(failure));
      }
    }
    if (options.check_invariants) {
      checker.FinalCheck(*stats);
      if (!checker.ok()) {
        failure.kind = "invariant";
        for (const std::string& v : checker.violations()) {
          failure.detail += v + "\n";
        }
        return std::optional<FailureReport>(std::move(failure));
      }
    }

    if (std::optional<std::string> diff = CompareSortedRows(expected, &rows)) {
      failure.kind = "result-mismatch";
      failure.detail = std::move(*diff);
      return std::optional<FailureReport>(std::move(failure));
    }
  }
  return std::optional<FailureReport>(std::nullopt);
}

}  // namespace testing
}  // namespace ajr

// Seeded random workload generation for the differential-fuzzing oracle.
//
// A WorkloadSpec is a fully materializable description of one fuzz case:
// table schemas, every row literal, the index set, and a JoinQuery. It is
// deliberately value-like (copyable, no catalog pointers) so the shrinker
// can transform it structurally — drop a table, null a predicate, halve a
// table's rows — and re-materialize a fresh Catalog for each candidate.
//
// GenerateWorkload(seed) is a pure function of the seed (all randomness
// flows through common/random.h's platform-deterministic Rng), so any
// failure is replayable from `--seed` alone. Generated workloads cover the
// shapes the adaptive executor must survive:
//
//   * star / chain / mixed join topologies, plus optional cycle edges
//     (applied as residual join predicates, Sec 3.3);
//   * join keys of all joinable Value types — int64, interned strings, and
//     doubles (including +/-0.0) — with Zipf-skewed, correlated data;
//   * local predicates over every type: comparisons, IN lists, AND/OR/NOT,
//     bool columns, string constants absent from the table's pool;
//   * partial index coverage, so probe fallbacks and table-scan driving
//     legs are exercised.
//
// Columns are NOT NULL engine-wide (see types/value.h): three-valued logic
// does not exist in this engine, so the fuzzer's type coverage ends at the
// four Value types. NaN is likewise excluded — it may not enter keys.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/random.h"
#include "common/status.h"
#include "optimize/query.h"

namespace ajr {
namespace testing {

/// One table of a fuzz case: schema, full row data, and indexed columns.
struct TableSpec {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<Row> rows;
  std::vector<std::string> indexed_columns;
};

/// A self-contained fuzz case. Everything RunDifferential needs.
struct WorkloadSpec {
  uint64_t seed = 0;  ///< generator seed (0 for hand-built / shrunk specs)
  std::vector<TableSpec> tables;
  JoinQuery query;

  /// Builds a catalog with every table loaded, indexed, and analyzed.
  StatusOr<std::unique_ptr<Catalog>> Materialize() const;

  /// Renders the spec as a self-contained repro: schemas, row literals,
  /// indexes, and the query, replayable without the generator.
  std::string ToRepro() const;

  /// Total rows across all tables (shrinker progress metric).
  size_t TotalRows() const;
};

/// The generator (and its shrinker/oracle consumers) is audited up to this
/// many tables; the planner's own ceiling is 64 (uint64_t masks). Wide
/// profiles may not exceed it.
inline constexpr size_t kMaxGeneratorTables = 20;

/// Knobs for GenerateWorkload. Defaults keep the reference executor cheap
/// enough for thousands of cases per minute.
struct GeneratorOptions {
  size_t min_tables = 2;
  size_t max_tables = 5;
  size_t min_rows = 15;
  size_t max_rows = 110;
  /// Probability of one extra (cyclic) join edge on queries of >= 3 tables.
  double extra_edge_prob = 0.35;
  /// Probability that a table carries a local predicate.
  double local_predicate_prob = 0.75;
  /// Cap on the exact (predicate-free) spanning-tree join size: while the
  /// estimate exceeds it, every other row of the largest table is dropped.
  /// This is what keeps the brute-force reference executor tractable.
  double max_output_rows = 150000;

  /// The wide-join axis (ISSUE 8): 6-20 tables of small cardinality with a
  /// much tighter output cap, so 20-leg pipelines stay inside the
  /// reference executor's budget across the oracle's ~17-config spread.
  static GeneratorOptions WideProfile() {
    GeneratorOptions o;
    o.min_tables = 6;
    o.max_tables = kMaxGeneratorTables;
    o.min_rows = 8;
    o.max_rows = 44;
    o.extra_edge_prob = 0.30;
    o.max_output_rows = 4000;
    return o;
  }
};

/// Deterministically generates the fuzz case for `seed`.
WorkloadSpec GenerateWorkload(uint64_t seed, const GeneratorOptions& options = {});

/// Exact output size of the spanning-tree join (edges [0, n-2], no local
/// predicates, extra edges ignored): the bound GenerateWorkload caps with
/// GeneratorOptions::max_output_rows. Requires the generator's topology
/// invariant — edge t-1 connects table t to a lower-index parent — which
/// holds for every generated spec. Exposed so the wide-axis tests can
/// audit the cap directly.
double EstimateTreeJoinSize(const std::vector<TableSpec>& tables,
                            const std::vector<JoinEdge>& edges);

// ---- Structural transforms (the shrinker's moves) ------------------------
//
// Each returns the transformed spec; invalid transforms (disconnecting the
// join graph, dropping the last table/output) return std::nullopt. All
// transforms keep the spec materializable.

/// Removes table `t` (and its edges / predicate / output columns).
std::optional<WorkloadSpec> DropTable(const WorkloadSpec& spec, size_t t);

/// Removes edge `e` if the join graph stays connected.
std::optional<WorkloadSpec> DropEdge(const WorkloadSpec& spec, size_t e);

/// Nulls table `t`'s local predicate (no-op -> nullopt).
std::optional<WorkloadSpec> DropPredicate(const WorkloadSpec& spec, size_t t);

/// Keeps only one half of table `t`'s rows: `half` 0 = first, 1 = second,
/// 2 = even-indexed. nullopt when the table is already <= 2 rows.
std::optional<WorkloadSpec> HalveRows(const WorkloadSpec& spec, size_t t, int half);

/// Removes one index (table `t`, position `i` in indexed_columns).
std::optional<WorkloadSpec> DropIndex(const WorkloadSpec& spec, size_t t, size_t i);

/// Removes output column `i`, keeping at least one.
std::optional<WorkloadSpec> DropOutputColumn(const WorkloadSpec& spec, size_t i);

}  // namespace testing
}  // namespace ajr

#include "testing/shrinker.h"

#include <optional>
#include <utility>

namespace ajr {
namespace testing {

namespace {

/// Tries one candidate; on success installs it as the current spec.
/// Returns true when the candidate was accepted.
bool TryCandidate(std::optional<WorkloadSpec> candidate,
                  const FailurePredicate& still_fails, ShrinkResult* result,
                  size_t max_attempts) {
  if (!candidate.has_value() || result->attempts >= max_attempts) return false;
  ++result->attempts;
  if (!still_fails(*candidate)) return false;
  result->spec = std::move(*candidate);
  ++result->accepted;
  return true;
}

}  // namespace

ShrinkResult Shrink(const WorkloadSpec& failing,
                    const FailurePredicate& still_fails, size_t max_attempts) {
  ShrinkResult result;
  result.spec = failing;

  bool progress = true;
  while (progress && result.attempts < max_attempts) {
    progress = false;

    // Tables first: dropping one removes its rows, edges, predicate, and
    // output columns in a single accepted step. Descending index order so
    // later candidates stay valid after an acceptance.
    for (size_t t = result.spec.tables.size(); t-- > 0;) {
      progress |= TryCandidate(DropTable(result.spec, t), still_fails, &result,
                               max_attempts);
    }
    for (size_t e = result.spec.query.edges.size(); e-- > 0;) {
      progress |= TryCandidate(DropEdge(result.spec, e), still_fails, &result,
                               max_attempts);
    }
    for (size_t t = result.spec.tables.size(); t-- > 0;) {
      progress |= TryCandidate(DropPredicate(result.spec, t), still_fails,
                               &result, max_attempts);
    }
    for (size_t t = result.spec.tables.size(); t-- > 0;) {
      // indexed_columns shrinks as indexes are dropped; re-read per step.
      for (size_t i = result.spec.tables[t].indexed_columns.size(); i-- > 0;) {
        progress |= TryCandidate(DropIndex(result.spec, t, i), still_fails,
                                 &result, max_attempts);
      }
    }
    for (size_t i = result.spec.query.output.size(); i-- > 0;) {
      progress |= TryCandidate(DropOutputColumn(result.spec, i), still_fails,
                               &result, max_attempts);
    }
    // Row halving last: only worth paying for once the structure is minimal.
    // Repeat per table until no half reproduces, since each acceptance
    // opens room for another halving.
    for (size_t t = 0; t < result.spec.tables.size(); ++t) {
      bool halved = true;
      while (halved && result.attempts < max_attempts) {
        halved = false;
        for (int half = 0; half < 3 && !halved; ++half) {
          halved = TryCandidate(HalveRows(result.spec, t, half), still_fails,
                                &result, max_attempts);
        }
        progress |= halved;
      }
    }
  }
  return result;
}

FailurePredicate SameKindFailure(DifferentialOptions options, std::string kind) {
  return [options = std::move(options),
          kind = std::move(kind)](const WorkloadSpec& candidate) {
    auto failure = RunDifferential(candidate, options);
    if (!failure.ok()) return false;  // harness error, not the bug
    return failure->has_value() && (*failure)->kind == kind;
  };
}

}  // namespace testing
}  // namespace ajr

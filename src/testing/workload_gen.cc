#include "testing/workload_gen.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "common/string_util.h"

namespace ajr {
namespace testing {

namespace {

// Shared string vocabulary: short values, shared prefixes (byte-compare
// coverage), and one long outlier. Join keys draw from the front so
// cross-table matches are common.
const char* kVocab[] = {"alpha", "alphabet", "beta",  "gamma", "gamma_ray",
                        "delta", "pfx_0",    "pfx_1", "pfx_00",
                        "a_rather_long_string_value_for_pool_coverage"};
constexpr size_t kVocabSize = sizeof(kVocab) / sizeof(kVocab[0]);

// Constant generators --------------------------------------------------------

Value RandomDoubleConst(Rng* rng) {
  double r = rng->NextDouble();
  if (r < 0.05) return Value(0.0);
  if (r < 0.08) return Value(-0.0);
  if (r < 0.10) return Value(std::numeric_limits<double>::infinity());
  if (r < 0.12) return Value(-std::numeric_limits<double>::infinity());
  if (r < 0.35) return Value(static_cast<double>(rng->NextInt64(-20, 20)));
  return Value(rng->NextGaussian() * 10.0);
}

CompareOp RandomOp(Rng* rng) {
  static const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                                   CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  return kOps[rng->NextUint64(6)];
}

// One random predicate clause over the fixed fuzz schema. `depth` bounds
// recursive AND/OR/NOT shapes.
ExprPtr RandomClause(Rng* rng, int64_t jk_domain, int depth) {
  switch (rng->NextUint64(depth > 0 ? 10 : 7)) {
    case 0:
      return ColCmp("v", RandomOp(rng), Value(rng->NextInt64(0, 49)));
    case 1:
      return ColCmp("grp", RandomOp(rng), Value(rng->NextInt64(0, 4)));
    case 2:
      return ColCmp("jk_i", RandomOp(rng), Value(rng->NextInt64(0, jk_domain)));
    case 3:
      return ColCmp("d", RandomOp(rng), RandomDoubleConst(rng));
    case 4: {
      // 15%: a constant absent from every pool (binder constant-folding).
      Value c = rng->NextBool(0.15)
                    ? Value("zzz_not_interned")
                    : Value(kVocab[rng->NextUint64(kVocabSize)]);
      return ColCmp("s", RandomOp(rng), std::move(c));
    }
    case 5:
      return ColCmp("b", CompareOp::kEq, Value(rng->NextBool()));
    case 6: {
      if (rng->NextBool()) {
        std::vector<Value> vals;
        for (size_t i = 0, n = 1 + rng->NextUint64(4); i < n; ++i) {
          vals.push_back(Value(rng->NextInt64(0, 49)));
        }
        return In("v", std::move(vals));
      }
      std::vector<Value> vals;
      for (size_t i = 0, n = 1 + rng->NextUint64(3); i < n; ++i) {
        vals.push_back(Value(kVocab[rng->NextUint64(kVocabSize)]));
      }
      return In("s", std::move(vals));
    }
    case 7:
      return Not(RandomClause(rng, jk_domain, depth - 1));
    case 8:
      return Or({RandomClause(rng, jk_domain, depth - 1),
                 RandomClause(rng, jk_domain, depth - 1)});
    default:
      return And({RandomClause(rng, jk_domain, depth - 1),
                  RandomClause(rng, jk_domain, depth - 1)});
  }
}

// Join-key map key for the output-size estimator; doubles are compared
// after -0.0 canonicalization, matching the storage codec.
std::string JoinKeyString(const Value& v) {
  if (v.type() == DataType::kDouble && v.AsDouble() == 0.0) return "0";
  return v.ToString();
}

// Re-derives edge_id = position after any edge-list surgery.
void RenumberEdges(JoinQuery* q) {
  for (size_t i = 0; i < q->edges.size(); ++i) q->edges[i].edge_id = i;
}

std::optional<WorkloadSpec> ValidatedOrNull(WorkloadSpec spec) {
  if (!spec.query.Validate().ok()) return std::nullopt;
  return spec;
}

}  // namespace

// A bottom-up weight DP over the parent tree. Used to keep generated cases
// within the brute-force reference executor's budget — skewed join keys
// can otherwise make the multiset blow into the hundreds of millions.
// Extra (cyclic) edges and predicates only shrink the result, so this is
// an upper bound for the full query.
double EstimateTreeJoinSize(const std::vector<TableSpec>& tables,
                            const std::vector<JoinEdge>& edges) {
  const size_t n = tables.size();
  if (n == 0) return 0;
  std::vector<std::vector<double>> weight(n);
  for (size_t t = 0; t < n; ++t) weight[t].assign(tables[t].rows.size(), 1.0);
  // Children have higher indices than parents (generator invariant), so a
  // reverse sweep folds each subtree into its parent's row weights.
  for (size_t t = n; t-- > 1;) {
    const JoinEdge& e = edges[t - 1];  // edge t-1 connects parent -> t
    const size_t parent = e.Other(t);
    const std::string& child_col = e.ColumnOn(t);
    const std::string& parent_col = e.ColumnOn(parent);
    size_t child_slot = SIZE_MAX, parent_slot = SIZE_MAX;
    for (size_t c = 0; c < tables[t].columns.size(); ++c) {
      if (tables[t].columns[c].name == child_col) child_slot = c;
    }
    for (size_t c = 0; c < tables[parent].columns.size(); ++c) {
      if (tables[parent].columns[c].name == parent_col) parent_slot = c;
    }
    std::unordered_map<std::string, double> by_key;
    for (size_t r = 0; r < tables[t].rows.size(); ++r) {
      by_key[JoinKeyString(tables[t].rows[r][child_slot])] += weight[t][r];
    }
    for (size_t r = 0; r < tables[parent].rows.size(); ++r) {
      auto it = by_key.find(JoinKeyString(tables[parent].rows[r][parent_slot]));
      weight[parent][r] *= it == by_key.end() ? 0.0 : it->second;
    }
  }
  double total = 0;
  for (double w : weight[0]) total += w;
  return total;
}

StatusOr<std::unique_ptr<Catalog>> WorkloadSpec::Materialize() const {
  auto catalog = std::make_unique<Catalog>();
  for (const TableSpec& t : tables) {
    AJR_ASSIGN_OR_RETURN(TableEntry * entry,
                         catalog->CreateTable(t.name, Schema(t.columns)));
    for (const Row& row : t.rows) {
      AJR_RETURN_IF_ERROR(entry->table().Append(row).status());
    }
    for (const std::string& col : t.indexed_columns) {
      AJR_RETURN_IF_ERROR(catalog->BuildIndex(t.name, col, t.name + "_" + col));
    }
  }
  AnalyzeOptions analyze;
  analyze.rich = true;
  AJR_RETURN_IF_ERROR(catalog->AnalyzeAll(analyze));
  return catalog;
}

size_t WorkloadSpec::TotalRows() const {
  size_t total = 0;
  for (const TableSpec& t : tables) total += t.rows.size();
  return total;
}

std::string WorkloadSpec::ToRepro() const {
  std::ostringstream out;
  out << "== fuzz repro (seed " << seed << ") ==\n";
  for (const TableSpec& t : tables) {
    out << "table " << t.name << " (";
    for (size_t c = 0; c < t.columns.size(); ++c) {
      if (c > 0) out << ", ";
      out << t.columns[c].name << ":" << DataTypeName(t.columns[c].type);
    }
    out << ") rows=" << t.rows.size() << " indexes=[";
    for (size_t i = 0; i < t.indexed_columns.size(); ++i) {
      if (i > 0) out << ",";
      out << t.indexed_columns[i];
    }
    out << "]\n";
    for (const Row& row : t.rows) {
      out << "  (";
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) out << ", ";
        out << row[c].ToString();
      }
      out << ")\n";
    }
  }
  out << "query: " << query.ToString() << "\n";
  if (seed != 0) {
    out << "replay: fuzz_differential --seed=" << seed << " --count=1\n";
  }
  return out.str();
}

WorkloadSpec GenerateWorkload(uint64_t seed, const GeneratorOptions& options) {
  Rng rng(seed);
  WorkloadSpec spec;
  spec.seed = seed;
  // Clamp to the audited ceiling (see kMaxGeneratorTables): wider asks are
  // a caller bug, not a supported regime.
  const size_t max_tables = std::min(options.max_tables, kMaxGeneratorTables);
  const size_t num_tables =
      options.min_tables + rng.NextUint64(max_tables - options.min_tables + 1);

  // Join-key domains are shared across tables so matches are common. The
  // int domain scales with table size to keep reference-executor output
  // bounded; string/double domains are prefixes of fixed vocabularies.
  const int64_t jk_domain = 6 + static_cast<int64_t>(rng.NextUint64(12));
  const size_t str_domain = 3 + rng.NextUint64(kVocabSize - 3);
  const int64_t dbl_domain = 5 + static_cast<int64_t>(rng.NextUint64(8));

  for (size_t t = 0; t < num_tables; ++t) {
    TableSpec table;
    table.name = "t" + std::to_string(t);
    table.columns = {{"jk_i", DataType::kInt64},  {"jk_s", DataType::kString},
                     {"jk_d", DataType::kDouble}, {"v", DataType::kInt64},
                     {"d", DataType::kDouble},    {"s", DataType::kString},
                     {"b", DataType::kBool},      {"grp", DataType::kInt64}};
    const size_t rows =
        options.min_rows + rng.NextUint64(options.max_rows - options.min_rows + 1);
    // Half the tables draw join keys from a skewed distribution; v and grp
    // are correlated with jk_i on a per-table coin flip (the paper's
    // correlated-predicate degradation scenario).
    ZipfDistribution zipf(static_cast<size_t>(jk_domain),
                          rng.NextBool() ? (rng.NextBool() ? 1.4 : 0.8) : 0.0);
    const bool v_correlated = rng.NextBool();
    const bool grp_correlated = rng.NextBool();
    for (size_t r = 0; r < rows; ++r) {
      int64_t jk_i = static_cast<int64_t>(zipf.Sample(&rng));
      std::string jk_s = kVocab[rng.NextUint64(str_domain)];
      double jk_d = static_cast<double>(rng.NextInt64(0, dbl_domain) - dbl_domain / 2) * 0.5;
      if (jk_d == 0.0 && rng.NextBool()) jk_d = -0.0;  // canonicalization probe
      int64_t v = v_correlated ? jk_i * 3 + rng.NextInt64(0, 2)
                               : rng.NextInt64(0, 49);
      double d;
      double dr = rng.NextDouble();
      if (dr < 0.02) {
        d = std::numeric_limits<double>::infinity();
      } else if (dr < 0.04) {
        d = -std::numeric_limits<double>::infinity();
      } else if (dr < 0.07) {
        d = rng.NextBool() ? 0.0 : -0.0;
      } else if (dr < 0.30) {
        d = static_cast<double>(rng.NextInt64(-20, 20));
      } else {
        d = rng.NextGaussian() * 10.0;
      }
      std::string s = kVocab[rng.NextUint64(kVocabSize)];
      bool b = rng.NextBool();
      int64_t grp = grp_correlated ? jk_i % 5 : rng.NextInt64(0, 4);
      table.rows.push_back({Value(jk_i), Value(std::move(jk_s)), Value(jk_d),
                            Value(v), Value(d), Value(std::move(s)), Value(b),
                            Value(grp)});
    }
    // Partial index coverage: missing join indexes exercise the filtered
    // table-scan probe fallback and table-scan driving legs.
    if (rng.NextBool(0.7)) table.indexed_columns.push_back("jk_i");
    if (rng.NextBool(0.5)) table.indexed_columns.push_back("jk_s");
    if (rng.NextBool(0.5)) table.indexed_columns.push_back("jk_d");
    if (rng.NextBool(0.3)) table.indexed_columns.push_back("v");
    spec.tables.push_back(std::move(table));
  }

  JoinQuery& q = spec.query;
  q.name = "fuzz" + std::to_string(seed);
  for (size_t t = 0; t < num_tables; ++t) {
    q.tables.push_back({"a" + std::to_string(t), "t" + std::to_string(t)});
  }

  // Topology: chain, star, or random-parent spanning tree; each edge joins
  // on a per-edge join-key type.
  const uint64_t topology = rng.NextUint64(3);
  for (size_t t = 1; t < num_tables; ++t) {
    size_t parent = topology == 0 ? t - 1
                    : topology == 1 ? 0
                                    : static_cast<size_t>(rng.NextUint64(t));
    double r = rng.NextDouble();
    const char* col = r < 0.5 ? "jk_i" : (r < 0.8 ? "jk_s" : "jk_d");
    q.edges.push_back({parent, col, t, col, q.edges.size()});
  }
  // Optional extra edge -> cyclic join graph (residual join predicate).
  if (num_tables >= 3 && rng.NextBool(options.extra_edge_prob)) {
    size_t a = rng.NextUint64(num_tables);
    size_t b = rng.NextUint64(num_tables);
    if (a != b) {
      bool exists = false;
      for (const auto& e : q.edges) {
        if ((e.left == a && e.right == b) || (e.left == b && e.right == a)) {
          exists = true;
        }
      }
      if (!exists) q.edges.push_back({a, "v", b, "v", q.edges.size()});
    }
  }

  // Keep the case inside the reference executor's budget: while the exact
  // (predicate-free) tree-join size exceeds the cap, deterministically
  // drop every other row of the largest table and re-measure.
  while (EstimateTreeJoinSize(spec.tables, q.edges) > options.max_output_rows) {
    size_t largest = 0;
    for (size_t t = 1; t < num_tables; ++t) {
      if (spec.tables[t].rows.size() > spec.tables[largest].rows.size()) largest = t;
    }
    std::vector<Row>& rows = spec.tables[largest].rows;
    if (rows.size() <= 2) break;  // degenerate; give up shrinking
    std::vector<Row> kept;
    for (size_t i = 0; i < rows.size(); i += 2) kept.push_back(std::move(rows[i]));
    rows = std::move(kept);
  }

  q.local_predicates.assign(num_tables, nullptr);
  for (size_t t = 0; t < num_tables; ++t) {
    if (rng.NextBool(options.local_predicate_prob)) {
      q.local_predicates[t] = RandomClause(&rng, jk_domain, 2);
    }
  }

  // 1-3 output columns over random tables; dedupe not needed (projection
  // may repeat a column).
  const size_t num_out = 1 + rng.NextUint64(3);
  static const char* kOutCols[] = {"jk_i", "jk_s", "jk_d", "v", "d", "s", "b", "grp"};
  for (size_t i = 0; i < num_out; ++i) {
    q.output.push_back({static_cast<size_t>(rng.NextUint64(num_tables)),
                        kOutCols[rng.NextUint64(8)]});
  }
  return spec;
}

std::optional<WorkloadSpec> DropTable(const WorkloadSpec& spec, size_t t) {
  if (spec.tables.size() <= 1 || t >= spec.tables.size()) return std::nullopt;
  WorkloadSpec out = spec;
  out.tables.erase(out.tables.begin() + static_cast<ptrdiff_t>(t));
  JoinQuery& q = out.query;
  q.tables.erase(q.tables.begin() + static_cast<ptrdiff_t>(t));
  q.local_predicates.erase(q.local_predicates.begin() + static_cast<ptrdiff_t>(t));
  std::vector<JoinEdge> kept;
  for (JoinEdge e : q.edges) {
    if (e.Touches(t)) continue;
    if (e.left > t) --e.left;
    if (e.right > t) --e.right;
    kept.push_back(e);
  }
  q.edges = std::move(kept);
  RenumberEdges(&q);
  std::vector<OutputColumn> out_cols;
  for (OutputColumn oc : q.output) {
    if (oc.table == t) continue;
    if (oc.table > t) --oc.table;
    out_cols.push_back(oc);
  }
  if (out_cols.empty()) out_cols.push_back({0, out.tables[0].columns[0].name});
  q.output = std::move(out_cols);
  return ValidatedOrNull(std::move(out));
}

std::optional<WorkloadSpec> DropEdge(const WorkloadSpec& spec, size_t e) {
  if (e >= spec.query.edges.size()) return std::nullopt;
  WorkloadSpec out = spec;
  out.query.edges.erase(out.query.edges.begin() + static_cast<ptrdiff_t>(e));
  RenumberEdges(&out.query);
  return ValidatedOrNull(std::move(out));
}

std::optional<WorkloadSpec> DropPredicate(const WorkloadSpec& spec, size_t t) {
  if (t >= spec.query.local_predicates.size() ||
      spec.query.local_predicates[t] == nullptr) {
    return std::nullopt;
  }
  WorkloadSpec out = spec;
  out.query.local_predicates[t] = nullptr;
  return out;
}

std::optional<WorkloadSpec> HalveRows(const WorkloadSpec& spec, size_t t, int half) {
  if (t >= spec.tables.size() || spec.tables[t].rows.size() <= 2) return std::nullopt;
  WorkloadSpec out = spec;
  const std::vector<Row>& rows = spec.tables[t].rows;
  std::vector<Row> kept;
  const size_t mid = rows.size() / 2;
  for (size_t i = 0; i < rows.size(); ++i) {
    bool keep = half == 0 ? i < mid : (half == 1 ? i >= mid : i % 2 == 0);
    if (keep) kept.push_back(rows[i]);
  }
  if (kept.empty() || kept.size() == rows.size()) return std::nullopt;
  out.tables[t].rows = std::move(kept);
  return out;
}

std::optional<WorkloadSpec> DropIndex(const WorkloadSpec& spec, size_t t, size_t i) {
  if (t >= spec.tables.size() || i >= spec.tables[t].indexed_columns.size()) {
    return std::nullopt;
  }
  WorkloadSpec out = spec;
  out.tables[t].indexed_columns.erase(out.tables[t].indexed_columns.begin() +
                                      static_cast<ptrdiff_t>(i));
  return out;
}

std::optional<WorkloadSpec> DropOutputColumn(const WorkloadSpec& spec, size_t i) {
  if (spec.query.output.size() <= 1 || i >= spec.query.output.size()) {
    return std::nullopt;
  }
  WorkloadSpec out = spec;
  out.query.output.erase(out.query.output.begin() + static_cast<ptrdiff_t>(i));
  return out;
}

}  // namespace testing
}  // namespace ajr

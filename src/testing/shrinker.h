// Greedy test-case shrinker for failing WorkloadSpecs.
//
// Given a spec that fails (differential mismatch, invariant violation) and
// a predicate that re-checks a candidate, Shrink applies the structural
// transforms from workload_gen.h in decreasing order of payoff — drop a
// whole table, then an edge, then predicates, indexes, and output columns,
// then halve row counts — keeping every candidate that still fails, until
// a full pass makes no progress. The result is the minimal repro printed
// by WorkloadSpec::ToRepro().
//
// Every candidate the shrinker proposes is already Validate()-clean (the
// transforms guarantee it), so the predicate only has to re-run the
// oracle. Shrinking is deterministic: transforms are enumerated in a fixed
// order and the predicate is assumed deterministic for a given spec.

#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "testing/oracle.h"
#include "testing/workload_gen.h"

namespace ajr {
namespace testing {

/// Returns true when a candidate spec still reproduces the failure.
using FailurePredicate = std::function<bool(const WorkloadSpec&)>;

/// Outcome of one shrink run.
struct ShrinkResult {
  WorkloadSpec spec;    ///< smallest failing spec found
  size_t accepted = 0;  ///< transforms that kept the failure
  size_t attempts = 0;  ///< candidates evaluated
};

/// Greedily minimizes `failing` under `still_fails`. `failing` itself must
/// satisfy the predicate (callers check before shrinking). `max_attempts`
/// bounds total predicate evaluations.
ShrinkResult Shrink(const WorkloadSpec& failing,
                    const FailurePredicate& still_fails,
                    size_t max_attempts = 3000);

/// Predicate for the common case: the candidate fails RunDifferential with
/// the same failure kind ("result-mismatch" / "invariant" / "error"). The
/// options (config spread, fault injection) are captured by value; pass the
/// exact options that produced the original failure.
FailurePredicate SameKindFailure(DifferentialOptions options, std::string kind);

}  // namespace testing
}  // namespace ajr

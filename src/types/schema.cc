#include "types/schema.h"

#include "common/string_util.h"

namespace ajr {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    by_name_.emplace(columns_[i].name, i);
  }
}

StatusOr<size_t> Schema::ColumnIndex(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound(StrCat("column '", name, "' not in schema [", ToString(), "]"));
  }
  return it->second;
}

bool Schema::RowMatches(const Row& row) const {
  if (row.size() != columns_.size()) return false;
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != columns_[i].type) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const auto& c : columns_) {
    parts.push_back(StrCat(c.name, ":", DataTypeName(c.type)));
  }
  return Join(parts, ", ");
}

}  // namespace ajr

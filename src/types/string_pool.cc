#include "types/string_pool.h"

#include "common/check.h"

namespace ajr {

uint32_t StringPool::Intern(std::string_view s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  AJR_CHECK(strings_.size() < kInvalidId);
  strings_.emplace_back(s);
  uint32_t id = static_cast<uint32_t>(strings_.size() - 1);
  ids_.emplace(std::string_view(strings_.back()), id);
  bytes_ += s.size();
  return id;
}

std::optional<uint32_t> StringPool::Find(std::string_view s) const {
  auto it = ids_.find(s);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::string_view StringPool::Get(uint32_t id) const {
  AJR_CHECK(id < strings_.size());
  return strings_[id];
}

}  // namespace ajr

// StringPool: append-only interned-string dictionary.
//
// Typed row pages store every string column as a 32-bit pool id; the bytes
// live once in the owning table's pool. Ids are assigned in first-seen order
// and are therefore NOT ordered like the strings — code that needs string
// order (B+-tree comparators, positional predicates) resolves ids back to
// bytes through the pool. Equality within one pool, however, is a single id
// compare, which is what the join probe loop lives on.
//
// Thread safety: build-then-serve, like the rest of storage. Intern() is a
// writer and must be confined to the load phase; Find()/Get() are const and
// safe for any number of concurrent readers afterwards.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ajr {

/// Interns strings to dense uint32 ids with stable backing storage.
class StringPool {
 public:
  static constexpr uint32_t kInvalidId = UINT32_MAX;

  /// Returns the id for `s`, interning it on first sight.
  uint32_t Intern(std::string_view s);

  /// Id of `s` if already interned; nullopt otherwise. Never mutates.
  std::optional<uint32_t> Find(std::string_view s) const;

  /// The bytes for `id`. The view is stable for the pool's lifetime.
  std::string_view Get(uint32_t id) const;

  /// Three-way byte compare of two interned strings.
  int Compare(uint32_t a, uint32_t b) const {
    int c = Get(a).compare(Get(b));
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }

  size_t size() const { return strings_.size(); }
  /// Total interned bytes (diagnostics).
  size_t bytes() const { return bytes_; }

 private:
  // deque keeps element addresses stable across growth, so the string_view
  // keys in ids_ (and views handed to callers) never dangle.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, uint32_t> ids_;
  size_t bytes_ = 0;
};

}  // namespace ajr

#include "types/row_view.h"

namespace ajr {

namespace {

inline int Sign(int c) { return c < 0 ? -1 : (c > 0 ? 1 : 0); }

}  // namespace

bool RowView::CellEquals(size_t slot, const RowView& other, size_t other_slot) const {
  DataType lt = type(slot);
  DataType rt = other.type(other_slot);
  if (lt == rt) {
    if (lt != DataType::kString) return cells_[slot] == other.cells_[other_slot];
    // Same pool: id equality is string equality. Different pools: bytes.
    if (pool_ == other.pool_) return cells_[slot] == other.cells_[other_slot];
    return GetString(slot) == other.GetString(other_slot);
  }
  // Mirrors Value::Compare: numeric cross-compare is the only legal mix.
  AJR_CHECK(lt != DataType::kString && lt != DataType::kBool);
  AJR_CHECK(rt != DataType::kString && rt != DataType::kBool);
  return GetNumeric(slot) == other.GetNumeric(other_slot);
}

int RowView::CompareCell(size_t slot, const RowView& other, size_t other_slot) const {
  DataType lt = type(slot);
  DataType rt = other.type(other_slot);
  if (lt == rt) {
    switch (lt) {
      case DataType::kBool: {
        int a = GetBool(slot) ? 1 : 0;
        int b = other.GetBool(other_slot) ? 1 : 0;
        return a - b;
      }
      case DataType::kInt64: {
        int64_t a = GetInt64(slot);
        int64_t b = other.GetInt64(other_slot);
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      case DataType::kDouble: {
        double a = GetDouble(slot);
        double b = other.GetDouble(other_slot);
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      case DataType::kString:
        return Sign(GetString(slot).compare(other.GetString(other_slot)));
    }
  }
  AJR_CHECK(lt != DataType::kString && lt != DataType::kBool);
  AJR_CHECK(rt != DataType::kString && rt != DataType::kBool);
  double a = GetNumeric(slot);
  double b = other.GetNumeric(other_slot);
  return a < b ? -1 : (a > b ? 1 : 0);
}

RowBuffer::RowBuffer(const Schema& schema, const Row& row) : layout_(schema) {
  AJR_CHECK(schema.RowMatches(row));
  cells_.reserve(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    cells_.push_back(EncodeCell(row[i], layout_.type(i), &pool_));
  }
}

}  // namespace ajr

// RowLayout and the cell codec: how typed rows are stored in pages.
//
// Every column occupies one fixed 8-byte cell, so a row of N columns is a
// contiguous span of N uint64_t cells and slot i lives at offset i — no
// per-row headers, no variable-length data inline:
//
//   INT64  -> the two's-complement bits
//   DOUBLE -> the IEEE-754 bits
//   BOOL   -> 0 or 1
//   STRING -> the 32-bit StringPool id, zero-extended
//
// Cells store RAW values. The index layer additionally needs an
// order-preserving encoding so (key, RID) entries compare as plain integers;
// OrderEncode* below map int64/double/bool into uint64 such that
// a < b  <=>  OrderEncode(a) < OrderEncode(b). Strings have no such map
// (pool ids are first-seen order), so string keys compare through the pool.

#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "types/schema.h"
#include "types/string_pool.h"

namespace ajr {

// --- Raw cell codec -------------------------------------------------------

inline uint64_t CellFromInt64(int64_t v) { return static_cast<uint64_t>(v); }
// -0.0 is canonicalized to +0.0: the engine compares stored double cells
// and index keys by their bits (CellEquals, B+-tree probes), while
// predicate evaluation compares numerically — distinct bit patterns for
// the two zeros would make `x = 0.0` pass the evaluator yet miss on an
// index probe. Every finite double other than the zeros has unique bits,
// and NaNs never enter cells, so canonicalizing the one aliased value
// makes bit equality coincide with numeric equality.
inline uint64_t CellFromDouble(double v) {
  return std::bit_cast<uint64_t>(v == 0.0 ? 0.0 : v);
}
inline uint64_t CellFromBool(bool v) { return v ? 1u : 0u; }
inline uint64_t CellFromStringId(uint32_t id) { return id; }

inline int64_t CellToInt64(uint64_t c) { return static_cast<int64_t>(c); }
inline double CellToDouble(uint64_t c) { return std::bit_cast<double>(c); }
inline bool CellToBool(uint64_t c) { return c != 0; }
inline uint32_t CellToStringId(uint64_t c) { return static_cast<uint32_t>(c); }

/// Numeric view of a raw cell: INT64 or DOUBLE as double (mirrors
/// Value::AsNumeric for cross-type comparisons).
inline double CellToNumeric(uint64_t c, DataType t) {
  AJR_CHECK(t == DataType::kInt64 || t == DataType::kDouble);
  return t == DataType::kInt64 ? static_cast<double>(CellToInt64(c))
                               : CellToDouble(c);
}

// --- Order-preserving key encodings (non-string types) --------------------

inline constexpr uint64_t kSignBit = 1ull << 63;

inline uint64_t OrderEncodeInt64(int64_t v) {
  return static_cast<uint64_t>(v) ^ kSignBit;
}
inline int64_t OrderDecodeInt64(uint64_t e) {
  return static_cast<int64_t>(e ^ kSignBit);
}

// Flip all bits of negatives, just the sign bit of non-negatives: total
// order over all finite doubles (and infinities; NaNs never enter keys).
// -0.0 encodes as +0.0 (see CellFromDouble) so a probe key built from a
// literal -0.0 finds stored zeros; consequently a == b <=> enc(a) == enc(b)
// in addition to a < b <=> enc(a) < enc(b).
inline uint64_t OrderEncodeDouble(double v) {
  uint64_t b = std::bit_cast<uint64_t>(v == 0.0 ? 0.0 : v);
  return (b & kSignBit) ? ~b : (b | kSignBit);
}
inline double OrderDecodeDouble(uint64_t e) {
  uint64_t b = (e & kSignBit) ? (e & ~kSignBit) : ~e;
  return std::bit_cast<double>(b);
}

inline uint64_t OrderEncodeBool(bool v) { return v ? 1u : 0u; }

/// Order-encodes a RAW cell of non-string type `t`.
inline uint64_t OrderEncodeCell(uint64_t cell, DataType t) {
  switch (t) {
    case DataType::kBool:
      return cell;
    case DataType::kInt64:
      return OrderEncodeInt64(CellToInt64(cell));
    case DataType::kDouble:
      return OrderEncodeDouble(CellToDouble(cell));
    case DataType::kString:
      break;
  }
  CheckFailed("OrderEncodeCell on string cell", __FILE__, __LINE__);
}

// --- RowLayout ------------------------------------------------------------

/// Per-table slot layout derived from a Schema: the column types in slot
/// order. With uniform 8-byte cells the layout is just the type vector, but
/// keeping it a named object gives RowView one pointer to dereference and
/// leaves room for future packing (null bitmaps, 4-byte slots).
class RowLayout {
 public:
  RowLayout() = default;
  explicit RowLayout(const Schema& schema) {
    types_.reserve(schema.num_columns());
    for (const ColumnDef& c : schema.columns()) types_.push_back(c.type);
  }

  size_t num_slots() const { return types_.size(); }
  DataType type(size_t slot) const {
    AJR_CHECK(slot < types_.size());
    return types_[slot];
  }

 private:
  std::vector<DataType> types_;
};

// --- Value <-> cell bridging (cold paths: load, tests, projection) --------

/// Encodes `v` (which must match `t`) into a raw cell, interning strings
/// into `pool` (required for string cells).
inline uint64_t EncodeCell(const Value& v, DataType t, StringPool* pool) {
  AJR_CHECK(v.type() == t);
  switch (t) {
    case DataType::kBool:
      return CellFromBool(v.AsBool());
    case DataType::kInt64:
      return CellFromInt64(v.AsInt64());
    case DataType::kDouble:
      return CellFromDouble(v.AsDouble());
    case DataType::kString:
      AJR_CHECK(pool != nullptr);
      return CellFromStringId(pool->Intern(v.AsString()));
  }
  CheckFailed("unreachable DataType in EncodeCell", __FILE__, __LINE__);
}

/// Decodes a raw cell back into an owned Value.
inline Value DecodeCell(uint64_t cell, DataType t, const StringPool* pool) {
  switch (t) {
    case DataType::kBool:
      return Value(CellToBool(cell));
    case DataType::kInt64:
      return Value(CellToInt64(cell));
    case DataType::kDouble:
      return Value(CellToDouble(cell));
    case DataType::kString:
      AJR_CHECK(pool != nullptr);
      return Value(std::string(pool->Get(CellToStringId(cell))));
  }
  CheckFailed("unreachable DataType in DecodeCell", __FILE__, __LINE__);
}

}  // namespace ajr

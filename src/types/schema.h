// Schema and Row: the shape and content of table tuples.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace ajr {

/// A row is a flat vector of cells, positionally matched to a Schema.
using Row = std::vector<Value>;

/// A named, typed column in a table schema.
struct ColumnDef {
  std::string name;
  DataType type;
};

/// Ordered list of columns with O(1) name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column named `name`, or NotFound.
  StatusOr<size_t> ColumnIndex(const std::string& name) const;

  /// True if `row` has the right arity and every cell matches its column type.
  bool RowMatches(const Row& row) const;

  /// "name:TYPE, name:TYPE, ..." for debugging.
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace ajr

// Value: the dynamically-typed cell used throughout the engine.
//
// AJR stores rows as vectors of Value. The engine supports four scalar types
// (BOOL, INT64, DOUBLE, STRING); columns are NOT NULL (the DMV workload and
// the paper's queries never need NULLs, and this keeps three-valued logic out
// of the predicate evaluator).

#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

namespace ajr {

/// Scalar column type.
enum class DataType : uint8_t {
  kBool = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

/// Human-readable type name ("BOOL", "INT64", ...).
const char* DataTypeName(DataType t);

/// A single typed scalar. Total order exists within a type; comparing values
/// of different types is a programming error (checked by assert), except that
/// INT64 and DOUBLE compare numerically.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(bool b) : v_(b) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(int i) : v_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  DataType type() const { return static_cast<DataType>(v_.index()); }

  bool AsBool() const { return std::get<bool>(v_); }
  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric view: INT64 or DOUBLE as double. Asserts on other types.
  double AsNumeric() const;

  /// Three-way comparison: negative / zero / positive. INT64 vs DOUBLE is
  /// allowed (numeric compare); any other cross-type compare asserts.
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  /// Renders the value for debugging/benchmark output.
  std::string ToString() const;

  /// Hash consistent with operator==, including the INT64↔DOUBLE numeric
  /// cross-compare: Value(3) and Value(3.0) compare equal and hash equal.
  size_t Hash() const;

 private:
  static size_t HashNumeric(double d);
  static size_t Mix(size_t seed, size_t h);

  std::variant<bool, int64_t, double, std::string> v_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

/// std::hash adapter for Value (e.g. unordered_map<Value, ...>).
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace ajr

// RowView: a zero-copy view of one typed-page row.
//
// A RowView is three pointers — the row's cell span, the table's RowLayout,
// and the table's StringPool. Typed accessors (GetInt64, GetString, ...)
// decode cells in place; nothing is allocated and no Value is constructed
// until a caller explicitly materializes one (GetValue / ToRow) at a
// projection boundary. Views are valid as long as the owning table (or
// RowBuffer) is alive and unmodified.

#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "types/row_layout.h"
#include "types/schema.h"
#include "types/string_pool.h"

namespace ajr {

/// Non-owning typed view of one row's cells.
class RowView {
 public:
  RowView() = default;
  RowView(const uint64_t* cells, const RowLayout* layout, const StringPool* pool)
      : cells_(cells), layout_(layout), pool_(pool) {}

  bool valid() const { return cells_ != nullptr; }
  size_t num_slots() const { return layout_->num_slots(); }
  DataType type(size_t slot) const { return layout_->type(slot); }
  const StringPool* pool() const { return pool_; }

  /// Raw 8-byte cell (see row_layout.h for the encoding).
  uint64_t raw(size_t slot) const { return cells_[slot]; }

  int64_t GetInt64(size_t slot) const { return CellToInt64(cells_[slot]); }
  double GetDouble(size_t slot) const { return CellToDouble(cells_[slot]); }
  bool GetBool(size_t slot) const { return CellToBool(cells_[slot]); }
  uint32_t GetStringId(size_t slot) const { return CellToStringId(cells_[slot]); }
  std::string_view GetString(size_t slot) const {
    return pool_->Get(GetStringId(slot));
  }

  /// INT64 or DOUBLE slot as double (cross-type numeric compares).
  double GetNumeric(size_t slot) const {
    return CellToNumeric(cells_[slot], type(slot));
  }

  /// Materializes one cell as an owned Value (projection / cold paths).
  Value GetValue(size_t slot) const {
    return DecodeCell(cells_[slot], type(slot), pool_);
  }

  /// Materializes the whole row (compat / cold paths).
  Row ToRow() const {
    Row out;
    out.reserve(num_slots());
    for (size_t i = 0; i < num_slots(); ++i) out.push_back(GetValue(i));
    return out;
  }

  /// Equality of this row's `slot` against `other`'s `other_slot`, with the
  /// same cross-type numeric semantics as Value::Compare. Same-pool strings
  /// compare by id; cross-pool strings compare bytes.
  bool CellEquals(size_t slot, const RowView& other, size_t other_slot) const;

  /// Three-way compare with the same semantics as CellEquals.
  int CompareCell(size_t slot, const RowView& other, size_t other_slot) const;

 private:
  const uint64_t* cells_ = nullptr;
  const RowLayout* layout_ = nullptr;
  const StringPool* pool_ = nullptr;
};

/// Owns one row encoded into cells (its own layout + pool): adapts loose
/// Rows to the RowView interface for tests and tools. Not movable — views
/// point into the buffer's members.
class RowBuffer {
 public:
  /// Encodes `row` against `schema`; the row must match the schema.
  RowBuffer(const Schema& schema, const Row& row);

  RowBuffer(const RowBuffer&) = delete;
  RowBuffer& operator=(const RowBuffer&) = delete;

  RowView view() const { return RowView(cells_.data(), &layout_, &pool_); }

 private:
  RowLayout layout_;
  StringPool pool_;
  std::vector<uint64_t> cells_;
};

}  // namespace ajr

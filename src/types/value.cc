#include "types/value.h"

#include <cassert>

namespace ajr {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

double Value::AsNumeric() const {
  switch (type()) {
    case DataType::kInt64:
      return static_cast<double>(AsInt64());
    case DataType::kDouble:
      return AsDouble();
    default:
      assert(false && "AsNumeric on non-numeric Value");
      return 0.0;
  }
}

int Value::Compare(const Value& other) const {
  if (type() != other.type()) {
    // Numeric cross-compare is the only legal mixed comparison.
    bool numeric = (type() == DataType::kInt64 || type() == DataType::kDouble) &&
                   (other.type() == DataType::kInt64 || other.type() == DataType::kDouble);
    assert(numeric && "cross-type Value comparison");
    (void)numeric;
    double a = AsNumeric();
    double b = other.AsNumeric();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  switch (type()) {
    case DataType::kBool: {
      int a = AsBool() ? 1 : 0;
      int b = other.AsBool() ? 1 : 0;
      return a - b;
    }
    case DataType::kInt64: {
      int64_t a = AsInt64();
      int64_t b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DataType::kDouble: {
      double a = AsDouble();
      double b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DataType::kString:
      return AsString().compare(other.AsString()) < 0
                 ? -1
                 : (AsString() == other.AsString() ? 0 : 1);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kBool:
      return AsBool() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(AsInt64());
    case DataType::kDouble:
      return std::to_string(AsDouble());
    case DataType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(type()) * 0x9e3779b97f4a7c15ULL;
  size_t h = 0;
  switch (type()) {
    case DataType::kBool:
      h = std::hash<bool>()(AsBool());
      break;
    case DataType::kInt64:
      h = std::hash<int64_t>()(AsInt64());
      break;
    case DataType::kDouble:
      h = std::hash<double>()(AsDouble());
      break;
    case DataType::kString:
      h = std::hash<std::string>()(AsString());
      break;
  }
  return seed ^ (h + 0x9e3779b9 + (seed << 6) + (seed >> 2));
}

}  // namespace ajr

#include "types/value.h"

#include <cassert>

namespace ajr {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

double Value::AsNumeric() const {
  switch (type()) {
    case DataType::kInt64:
      return static_cast<double>(AsInt64());
    case DataType::kDouble:
      return AsDouble();
    default:
      assert(false && "AsNumeric on non-numeric Value");
      return 0.0;
  }
}

int Value::Compare(const Value& other) const {
  if (type() != other.type()) {
    // Numeric cross-compare is the only legal mixed comparison.
    bool numeric = (type() == DataType::kInt64 || type() == DataType::kDouble) &&
                   (other.type() == DataType::kInt64 || other.type() == DataType::kDouble);
    assert(numeric && "cross-type Value comparison");
    (void)numeric;
    double a = AsNumeric();
    double b = other.AsNumeric();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  switch (type()) {
    case DataType::kBool: {
      int a = AsBool() ? 1 : 0;
      int b = other.AsBool() ? 1 : 0;
      return a - b;
    }
    case DataType::kInt64: {
      int64_t a = AsInt64();
      int64_t b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DataType::kDouble: {
      double a = AsDouble();
      double b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DataType::kString:
      return AsString().compare(other.AsString()) < 0
                 ? -1
                 : (AsString() == other.AsString() ? 0 : 1);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kBool:
      return AsBool() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(AsInt64());
    case DataType::kDouble:
      return std::to_string(AsDouble());
    case DataType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

size_t Value::Hash() const {
  // INT64 and DOUBLE compare equal cross-type when numerically equal
  // (Compare above), so Hash must agree: any INT64 that is exactly
  // representable as double hashes through its double image. Integers
  // beyond 2^53 can't equal any DOUBLE they don't bit-roundtrip to, so
  // hashing them as int64 is safe.
  switch (type()) {
    case DataType::kInt64: {
      int64_t i = AsInt64();
      double d = static_cast<double>(i);
      if (static_cast<int64_t>(d) == i) return HashNumeric(d);
      size_t seed = static_cast<size_t>(DataType::kInt64) * 0x9e3779b97f4a7c15ULL;
      return Mix(seed, std::hash<int64_t>()(i));
    }
    case DataType::kDouble:
      return HashNumeric(AsDouble());
    case DataType::kBool: {
      size_t seed = static_cast<size_t>(DataType::kBool) * 0x9e3779b97f4a7c15ULL;
      return Mix(seed, std::hash<bool>()(AsBool()));
    }
    case DataType::kString: {
      size_t seed = static_cast<size_t>(DataType::kString) * 0x9e3779b97f4a7c15ULL;
      return Mix(seed, std::hash<std::string>()(AsString()));
    }
  }
  return 0;
}

size_t Value::HashNumeric(double d) {
  // Shared hash domain for numerically-equal INT64/DOUBLE values. -0.0
  // compares equal to 0.0, so normalize before hashing the bits.
  if (d == 0.0) d = 0.0;
  size_t seed = static_cast<size_t>(DataType::kDouble) * 0x9e3779b97f4a7c15ULL;
  return Mix(seed, std::hash<double>()(d));
}

size_t Value::Mix(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b9 + (seed << 6) + (seed >> 2));
}

}  // namespace ajr

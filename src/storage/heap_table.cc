#include "storage/heap_table.h"

#include "common/string_util.h"

namespace ajr {

uint64_t* HeapTable::AllocRow() {
  size_t page = num_rows_ >> kPageShift;
  if (page == pages_.size()) {
    size_t cells = kPageRows * layout_.num_slots();
    pages_.push_back(std::make_unique<uint64_t[]>(cells == 0 ? 1 : cells));
  }
  return pages_[page].get() + (num_rows_ & kPageMask) * layout_.num_slots();
}

StatusOr<Rid> HeapTable::Append(const Row& row) {
  AJR_CHECK(!writer_open_);
  if (!schema_.RowMatches(row)) {
    return Status::InvalidArgument(
        StrCat("row does not match schema of table '", name_, "' (", schema_.ToString(),
               ")"));
  }
  uint64_t* cells = AllocRow();
  for (size_t i = 0; i < row.size(); ++i) {
    cells[i] = EncodeCell(row[i], layout_.type(i), &pool_);
  }
  return static_cast<Rid>(num_rows_++);
}

HeapTable::RowWriter HeapTable::NewRow() {
  AJR_CHECK(!writer_open_);
  writer_open_ = true;
  return RowWriter(this, AllocRow());
}

HeapTable::RowWriter& HeapTable::RowWriter::Put(DataType t, uint64_t cell) {
  AJR_CHECK(slot_ < table_->layout_.num_slots());
  AJR_CHECK(table_->layout_.type(slot_) == t);
  cells_[slot_++] = cell;
  return *this;
}

Rid HeapTable::RowWriter::Finish() {
  AJR_CHECK(slot_ == table_->layout_.num_slots());
  table_->writer_open_ = false;
  return static_cast<Rid>(table_->num_rows_++);
}

}  // namespace ajr

#include "storage/heap_table.h"

#include "common/string_util.h"

namespace ajr {

StatusOr<Rid> HeapTable::Append(Row row) {
  if (!schema_.RowMatches(row)) {
    return Status::InvalidArgument(
        StrCat("row does not match schema of table '", name_, "' (", schema_.ToString(),
               ")"));
  }
  rows_.push_back(std::move(row));
  return static_cast<Rid>(rows_.size() - 1);
}

}  // namespace ajr

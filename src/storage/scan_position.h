// ScanPosition: a point in a table's scan order.
//
// The paper's driving-table switch must remember how far the old driving
// leg's scan had progressed so a positional predicate can exclude the
// already-processed prefix (Sec 4.2). A position is either
//   - a RID in physical order (table scan):        "RID > 100"
//   - a (key, RID) pair in index order (index scan):
//       "age > 35 OR (age = 35 AND RID > cur_RID)"
//
// Keys are held in encoded form (the order-preserving uint64 from
// types/row_layout.h, plus owned bytes for string keys), so the positional
// predicate on the probe hot path is an integer compare — or one byte
// compare for strings — against the candidate row's cell, with no Value in
// sight.

#pragma once

#include <string>

#include "storage/heap_table.h"
#include "storage/key_codec.h"
#include "types/row_layout.h"
#include "types/row_view.h"
#include "types/value.h"

namespace ajr {

/// Scan-order kind for a position / positional predicate.
enum class ScanOrder : uint8_t {
  kRidOrder,     ///< physical (table scan) order
  kKeyRidOrder,  ///< (index key, RID) order
};

/// A point in a scan order; rows strictly after it are "unprocessed".
struct ScanPosition {
  ScanOrder order = ScanOrder::kRidOrder;
  DataType key_type = DataType::kInt64;  ///< meaningful only for kKeyRidOrder
  uint64_t key_enc = 0;                  ///< order encoding (non-string keys)
  std::string key_str;                   ///< owned bytes (string keys)
  Rid rid = 0;

  static ScanPosition AtRid(Rid rid) {
    ScanPosition p;
    p.order = ScanOrder::kRidOrder;
    p.rid = rid;
    return p;
  }
  static ScanPosition AtKeyRid(const Value& key, Rid rid) {
    ScanPosition p;
    p.order = ScanOrder::kKeyRidOrder;
    p.key_type = key.type();
    if (key.type() == DataType::kString) {
      p.key_str = key.AsString();
    } else {
      p.key_enc = EncodeKey(key).enc;
    }
    p.rid = rid;
    return p;
  }

  /// The key as an owned Value (tests / diagnostics).
  Value key() const {
    switch (key_type) {
      case DataType::kBool:
        return Value(key_enc != 0);
      case DataType::kInt64:
        return Value(OrderDecodeInt64(key_enc));
      case DataType::kDouble:
        return Value(OrderDecodeDouble(key_enc));
      case DataType::kString:
        return Value(key_str);
    }
    CheckFailed("unreachable DataType in ScanPosition::key", __FILE__, __LINE__);
  }

  /// The key in probe form (borrows key_str; valid while *this is alive).
  IndexKey AsIndexKey() const {
    if (key_type == DataType::kString) return IndexKey::String(key_str);
    return IndexKey{key_type, key_enc, {}};
  }

  /// True if a row at (row_key, row_rid) lies strictly after this position
  /// in (key, RID) order, where row_key is `row`'s cell at `slot`. Only
  /// valid for kKeyRidOrder. This is the positional-predicate hot path.
  bool StrictlyBefore(const RowView& row, size_t slot, Rid row_rid) const {
    if (key_type != DataType::kString) {
      uint64_t row_enc = OrderEncodeCell(row.raw(slot), key_type);
      if (key_enc != row_enc) return key_enc < row_enc;
      return rid < row_rid;
    }
    int c = std::string_view(key_str).compare(row.GetString(slot));
    if (c != 0) return c < 0;
    return rid < row_rid;
  }

  /// Value-form variant (tests / reference paths).
  bool StrictlyBefore(const Value& row_key, Rid row_rid) const {
    int c = key().Compare(row_key);
    if (c != 0) return c < 0;
    return rid < row_rid;
  }

  /// True if a row at row_rid lies strictly after this position in RID
  /// order. Only valid for kRidOrder.
  bool StrictlyBeforeRid(Rid row_rid) const { return rid < row_rid; }

  std::string ToString() const {
    if (order == ScanOrder::kRidOrder) {
      return "rid>" + std::to_string(rid);
    }
    return "(key,rid)>(" + key().ToString() + "," + std::to_string(rid) + ")";
  }
};

}  // namespace ajr

// ScanPosition: a point in a table's scan order.
//
// The paper's driving-table switch must remember how far the old driving
// leg's scan had progressed so a positional predicate can exclude the
// already-processed prefix (Sec 4.2). A position is either
//   - a RID in physical order (table scan):        "RID > 100"
//   - a (key, RID) pair in index order (index scan):
//       "age > 35 OR (age = 35 AND RID > cur_RID)"

#pragma once

#include <string>

#include "storage/heap_table.h"
#include "types/value.h"

namespace ajr {

/// Scan-order kind for a position / positional predicate.
enum class ScanOrder : uint8_t {
  kRidOrder,     ///< physical (table scan) order
  kKeyRidOrder,  ///< (index key, RID) order
};

/// A point in a scan order; rows strictly after it are "unprocessed".
struct ScanPosition {
  ScanOrder order = ScanOrder::kRidOrder;
  Value key;  ///< meaningful only for kKeyRidOrder
  Rid rid = 0;

  static ScanPosition AtRid(Rid rid) {
    ScanPosition p;
    p.order = ScanOrder::kRidOrder;
    p.rid = rid;
    return p;
  }
  static ScanPosition AtKeyRid(Value key, Rid rid) {
    ScanPosition p;
    p.order = ScanOrder::kKeyRidOrder;
    p.key = std::move(key);
    p.rid = rid;
    return p;
  }

  /// True if a row at (row_key, row_rid) lies strictly after this position
  /// in (key, RID) order. Only valid for kKeyRidOrder.
  bool StrictlyBefore(const Value& row_key, Rid row_rid) const {
    int c = key.Compare(row_key);
    if (c != 0) return c < 0;
    return rid < row_rid;
  }

  /// True if a row at row_rid lies strictly after this position in RID
  /// order. Only valid for kRidOrder.
  bool StrictlyBeforeRid(Rid row_rid) const { return rid < row_rid; }

  std::string ToString() const {
    if (order == ScanOrder::kRidOrder) {
      return "rid>" + std::to_string(rid);
    }
    return "(key,rid)>(" + key.ToString() + "," + std::to_string(rid) + ")";
  }
};

}  // namespace ajr

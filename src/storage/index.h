// Index: the abstract interface every secondary-index backend implements.
//
// The adaptive executor's probe path (exec/pipeline_executor.cc) talks to
// indexes exclusively through this interface, so backends are pluggable per
// query (AdaptiveOptions::index_backend) without touching executor code.
// The contract has three parts:
//
//   * Point probes. Probe() appends every RID whose key equals the probe
//     key, in ascending RID order — the deterministic (key, RID) order the
//     paper's positional predicates rely on. ProbeHinted() is the batched
//     variant: an opaque ProbeState carries descent memory across calls so
//     sorted key batches skip repeated full descents (the B+-tree resumes
//     from the previous leaf, the ART from the previous key group).
//
//   * Capabilities. Range scans and positional-predicate resume
//     (SeekAfter-style "key > k* OR (key = k* AND rid > r*)") are queryable
//     capabilities, not universal guarantees. Legs that need them — driving
//     scans, range cursors, remaining-cardinality statistics — fall back to
//     a backend that reports support (the B+-tree); point-probe legs take
//     whatever backend was selected.
//
//   * Work-unit parity. Every backend charges the CANONICAL B+-tree cost
//     for a probe — height node visits, one entry scan per match, one node
//     visit per canonical leaf boundary crossed — regardless of its
//     physical structure. This extends PR 4's "as-if fresh descent"
//     contract (hinted seeks charge like fresh ones) to "as-if the sibling
//     B+-tree": work units, monitor statistics, adaptation decision traces,
//     and event logs are bit-identical across backends on the same
//     workload, so switching backends is invisible to the adaptive
//     controller and the differential oracle.
//
// Thread safety: like the B+-tree, every method here is const and
// touches no interior state; concurrent readers over a built index are
// race-free. ProbeState objects are stateful and single-owner.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/work_counter.h"
#include "storage/heap_table.h"
#include "storage/key_codec.h"

namespace ajr {

/// Which physical index structure serves point probes.
enum class IndexBackend {
  kBTree,  ///< the B+-tree (ranges, positional resume, point probes)
  kArt,    ///< Adaptive Radix Tree point-probe twin (storage/art_index.h)
};

/// Lower-case stable name ("btree" / "art") for flags, logs, and bench JSON.
const char* IndexBackendName(IndexBackend backend);

/// Inverse of IndexBackendName; nullopt on unknown names.
std::optional<IndexBackend> ParseIndexBackend(const std::string& name);

/// Abstract index over (key, RID) entries sorted by (key, RID).
class Index {
 public:
  /// Opaque per-caller descent memory for ProbeHinted: remembers where the
  /// previous probe landed so a nearby, not-smaller key resolves without a
  /// full descent. Invalidated by any index mutation; Reset() forgets the
  /// position so the next hinted probe descends fresh.
  class ProbeState {
   public:
    virtual ~ProbeState() = default;
    virtual void Reset() = 0;
  };

  virtual ~Index() = default;

  virtual IndexBackend backend() const = 0;
  virtual DataType key_type() const = 0;
  /// Total (key, RID) entries.
  virtual size_t size() const = 0;
  /// Canonical height in levels (identical across backends over the same
  /// entries — it parameterizes the shared charge model).
  virtual size_t height() const = 0;

  /// True when the backend can serve ordered range scans (driving-leg
  /// cursors, Count* cardinality statistics).
  virtual bool SupportsRangeScan() const = 0;
  /// True when the backend can resume strictly after a (key, RID) position
  /// (the positional predicate / re-promotion machinery of Sec 4.2).
  virtual bool SupportsPositional() const = 0;

  /// Point probe: appends all RIDs whose key equals `key` to `out` in
  /// ascending RID order and charges the canonical probe cost to `wc`
  /// (null = no charging). String keys borrow the caller's bytes for the
  /// duration of the call.
  virtual void Probe(const IndexKey& key, WorkCounter* wc,
                     std::vector<Rid>* out) const = 0;

  /// Fresh descent memory for ProbeHinted (never null).
  virtual std::unique_ptr<ProbeState> NewProbeState() const = 0;

  /// Probe() with descent memory: same RIDs, same canonical charge — the
  /// physical shortcut is invisible to accounting. `state` must come from
  /// this index's NewProbeState(). Returns true when the full descent was
  /// skipped (the "descents saved" effectiveness statistic).
  virtual bool ProbeHinted(const IndexKey& key, ProbeState* state,
                           WorkCounter* wc, std::vector<Rid>* out) const = 0;
};

}  // namespace ajr

#include "storage/cursors.h"

#include <algorithm>
#include <cassert>

namespace ajr {

bool TableScanCursor::Next(WorkCounter* wc, Rid* rid) {
  ChargeWork(wc, WorkCounter::kIndexEntryScan);
  if (next_rid_ >= table_->num_rows()) return false;
  *rid = next_rid_++;
  return true;
}

ScanPosition TableScanCursor::CurrentPosition() const {
  assert(next_rid_ > 0 && "CurrentPosition before first Next");
  return ScanPosition::AtRid(next_rid_ - 1);
}

Status TableScanCursor::ResumeFrom(const ScanPosition& pos) {
  if (pos.order != ScanOrder::kRidOrder) {
    return Status::InvalidArgument("TableScanCursor resume needs a RID-order position");
  }
  next_rid_ = pos.rid + 1;
  return Status::OK();
}

IndexScanCursor::IndexScanCursor(const BPlusTree* tree, std::vector<KeyRange> ranges)
    : tree_(tree), ranges_(std::move(ranges)) {
  lo_.reserve(ranges_.size());
  hi_.reserve(ranges_.size());
  for (const KeyRange& r : ranges_) {
    Bound lo, hi;
    if (r.lo.has_value()) lo = {true, EncodeKey(*r.lo), r.lo_inclusive};
    if (r.hi.has_value()) hi = {true, EncodeKey(*r.hi), r.hi_inclusive};
    lo_.push_back(lo);
    hi_.push_back(hi);
  }
}

void IndexScanCursor::Reset() {
  started_ = false;
  range_idx_ = 0;
  pending_.reset();
  has_last_ = false;
  resumed_.reset();
  iter_ = BPlusTree::Iterator();
}

bool IndexScanCursor::BeforeRangeLo() const {
  const Bound& b = lo_[range_idx_];
  if (!b.present) return false;
  int c = tree_->CompareProbe(b.key, iter_.key_slot());
  if (c != 0) return c > 0;  // bound above the key => key below the bound
  return !b.inclusive;       // sitting exactly on an exclusive lower bound
}

bool IndexScanCursor::PastRangeHi() const {
  const Bound& b = hi_[range_idx_];
  if (!b.present) return false;
  int c = tree_->CompareProbe(b.key, iter_.key_slot());
  if (c != 0) return c < 0;
  return !b.inclusive;
}

void IndexScanCursor::AlignToRanges(WorkCounter* wc) {
  while (iter_.Valid() && range_idx_ < ranges_.size()) {
    if (BeforeRangeLo()) {
      const Bound& b = lo_[range_idx_];
      iter_ = tree_->Seek(b.key, b.inclusive, wc);
      continue;
    }
    if (PastRangeHi()) {
      ++range_idx_;
      continue;
    }
    return;  // inside the current range
  }
  if (range_idx_ >= ranges_.size()) iter_ = BPlusTree::Iterator();
}

bool IndexScanCursor::Next(WorkCounter* wc, Rid* rid) {
  if (pending_.has_value()) {
    iter_ = *pending_;
    pending_.reset();
  } else if (!started_) {
    started_ = true;
    if (ranges_.empty()) return false;
    const Bound& b = lo_.front();
    iter_ = b.present ? tree_->Seek(b.key, b.inclusive, wc) : tree_->SeekFirst(wc);
  } else {
    if (!iter_.Valid()) return false;
    iter_.Next(wc);
  }
  AlignToRanges(wc);
  if (!iter_.Valid()) return false;
  *rid = iter_.rid();
  last_key_ = iter_.key_slot();
  last_rid_ = iter_.rid();
  has_last_ = true;
  return true;
}

ScanPosition IndexScanCursor::CurrentPosition() const {
  if (has_last_) {
    return ScanPosition::AtKeyRid(tree_->DecodeKey(last_key_), last_rid_);
  }
  // No row produced since ResumeFrom: report the resumed-from point.
  assert(resumed_.has_value() && "CurrentPosition before first Next");
  return *resumed_;
}

Status IndexScanCursor::ResumeFrom(const ScanPosition& pos) {
  if (pos.order != ScanOrder::kKeyRidOrder) {
    return Status::InvalidArgument(
        "IndexScanCursor resume needs a (key,RID)-order position");
  }
  started_ = true;
  range_idx_ = 0;
  pending_ = tree_->SeekAfter(pos.AsIndexKey(), pos.rid, nullptr);
  resumed_ = pos;
  has_last_ = false;
  return Status::OK();
}

void IndexProbe::Seek(const IndexKey& key, WorkCounter* wc) {
  key_ = key;
  iter_ = tree_->Seek(key_, /*inclusive=*/true, wc);
}

void IndexProbe::Seek(const Value& key, WorkCounter* wc) {
  if (key.type() == DataType::kString) {
    owned_str_ = key.AsString();
    key_ = IndexKey::String(owned_str_);
  } else {
    key_ = EncodeKey(key);
  }
  iter_ = tree_->Seek(key_, /*inclusive=*/true, wc);
}

bool IndexProbe::Next(WorkCounter* wc, Rid* rid) {
  if (!iter_.Valid()) return false;
  if (!tree_->ProbeEquals(key_, iter_.key_slot())) return false;
  *rid = iter_.rid();
  iter_.Next(wc);
  return true;
}

bool HintedIndexProbe::Seek(const IndexKey& key, WorkCounter* wc) {
  key_ = key;
  bool used_hint = false;
  iter_ = tree_->SeekHinted(key_, /*inclusive=*/true, &hint_, wc, &used_hint);
  return used_hint;
}

bool HintedIndexProbe::Next(WorkCounter* wc, Rid* rid) {
  if (!iter_.Valid()) return false;
  if (!tree_->ProbeEquals(key_, iter_.key_slot())) return false;
  *rid = iter_.rid();
  iter_.Next(wc);
  return true;
}

size_t CountRangeEntries(const BPlusTree& tree, const KeyRange& range) {
  size_t hi = range.hi.has_value()
                  ? (range.hi_inclusive ? tree.CountKeyLessEqual(*range.hi)
                                        : tree.CountKeyLess(*range.hi))
                  : tree.size();
  size_t lo = range.lo.has_value()
                  ? (range.lo_inclusive ? tree.CountKeyLess(*range.lo)
                                        : tree.CountKeyLessEqual(*range.lo))
                  : 0;
  return hi > lo ? hi - lo : 0;
}

size_t CountRangeEntriesAfter(const BPlusTree& tree,
                              const std::vector<KeyRange>& ranges,
                              const std::optional<ScanPosition>& pos) {
  size_t at_or_before_pos =
      pos.has_value()
          ? tree.size() - tree.CountEntriesAfter(pos->AsIndexKey(), pos->rid)
          : 0;
  size_t total = 0;
  for (const auto& r : ranges) {
    size_t in_range = CountRangeEntries(tree, r);
    if (pos.has_value()) {
      size_t lo = r.lo.has_value()
                      ? (r.lo_inclusive ? tree.CountKeyLess(*r.lo)
                                        : tree.CountKeyLessEqual(*r.lo))
                      : 0;
      // Entries in the range that are <= pos.
      size_t processed =
          at_or_before_pos > lo ? std::min(at_or_before_pos - lo, in_range) : 0;
      in_range -= processed;
    }
    total += in_range;
  }
  return total;
}

}  // namespace ajr

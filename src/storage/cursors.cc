#include "storage/cursors.h"

#include <cassert>

namespace ajr {

bool TableScanCursor::Next(WorkCounter* wc, Rid* rid) {
  ChargeWork(wc, WorkCounter::kIndexEntryScan);
  if (next_rid_ >= table_->num_rows()) return false;
  *rid = next_rid_++;
  return true;
}

ScanPosition TableScanCursor::CurrentPosition() const {
  assert(next_rid_ > 0 && "CurrentPosition before first Next");
  return ScanPosition::AtRid(next_rid_ - 1);
}

Status TableScanCursor::ResumeFrom(const ScanPosition& pos) {
  if (pos.order != ScanOrder::kRidOrder) {
    return Status::InvalidArgument("TableScanCursor resume needs a RID-order position");
  }
  next_rid_ = pos.rid + 1;
  return Status::OK();
}

void IndexScanCursor::Reset() {
  started_ = false;
  range_idx_ = 0;
  pending_.reset();
  last_.reset();
  iter_ = BPlusTree::Iterator();
}

bool IndexScanCursor::BeforeRangeLo() const {
  const KeyRange& r = ranges_[range_idx_];
  if (!r.lo.has_value()) return false;
  int c = iter_.key().Compare(*r.lo);
  if (c != 0) return c < 0;
  return !r.lo_inclusive;  // sitting exactly on an exclusive lower bound
}

bool IndexScanCursor::PastRangeHi() const {
  const KeyRange& r = ranges_[range_idx_];
  if (!r.hi.has_value()) return false;
  int c = iter_.key().Compare(*r.hi);
  if (c != 0) return c > 0;
  return !r.hi_inclusive;
}

void IndexScanCursor::AlignToRanges(WorkCounter* wc) {
  while (iter_.Valid() && range_idx_ < ranges_.size()) {
    if (BeforeRangeLo()) {
      const KeyRange& r = ranges_[range_idx_];
      iter_ = tree_->Seek(*r.lo, r.lo_inclusive, wc);
      continue;
    }
    if (PastRangeHi()) {
      ++range_idx_;
      continue;
    }
    return;  // inside the current range
  }
  if (range_idx_ >= ranges_.size()) iter_ = BPlusTree::Iterator();
}

bool IndexScanCursor::Next(WorkCounter* wc, Rid* rid) {
  if (pending_.has_value()) {
    iter_ = *pending_;
    pending_.reset();
  } else if (!started_) {
    started_ = true;
    if (ranges_.empty()) return false;
    const KeyRange& r = ranges_.front();
    iter_ = r.lo.has_value() ? tree_->Seek(*r.lo, r.lo_inclusive, wc)
                             : tree_->SeekFirst(wc);
  } else {
    if (!iter_.Valid()) return false;
    iter_.Next(wc);
  }
  AlignToRanges(wc);
  if (!iter_.Valid()) return false;
  *rid = iter_.rid();
  last_ = ScanPosition::AtKeyRid(iter_.key(), iter_.rid());
  return true;
}

ScanPosition IndexScanCursor::CurrentPosition() const {
  assert(last_.has_value() && "CurrentPosition before first Next");
  return *last_;
}

Status IndexScanCursor::ResumeFrom(const ScanPosition& pos) {
  if (pos.order != ScanOrder::kKeyRidOrder) {
    return Status::InvalidArgument(
        "IndexScanCursor resume needs a (key,RID)-order position");
  }
  started_ = true;
  range_idx_ = 0;
  last_ = pos;
  pending_ = tree_->SeekAfter(pos.key, pos.rid, nullptr);
  return Status::OK();
}

void IndexProbe::Seek(const Value& key, WorkCounter* wc) {
  key_ = key;
  iter_ = tree_->Seek(key, /*inclusive=*/true, wc);
}

bool IndexProbe::Next(WorkCounter* wc, Rid* rid) {
  if (!iter_.Valid()) return false;
  if (iter_.key().Compare(key_) != 0) return false;
  *rid = iter_.rid();
  iter_.Next(wc);
  return true;
}

}  // namespace ajr

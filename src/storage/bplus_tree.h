// BPlusTree: an in-memory B+-tree secondary index over (key, RID) pairs.
//
// Entries are ordered lexicographically by (key, RID), so duplicate keys are
// supported and every scan — full, range, or point probe — yields RIDs in
// the deterministic (key, RID) order the paper's positional predicates rely
// on ("age > 35 OR (age = 35 AND RID > cur_RID)").
//
// Key representation: every stored key is one uint64 slot. Numeric keys use
// the order-preserving encodings from types/row_layout.h, so comparisons on
// the probe path are single integer compares — no Value is constructed.
// String keys store a StringPool id (ids are unordered) and compare through
// the pool; catalog indexes share the indexed table's pool, standalone trees
// own a private one. Probes come in as IndexKey (see key_codec.h), which
// carries string bytes so cross-pool probes and un-interned literals work.
//
// The tree charges work units (node visits, entry scans) to an optional
// WorkCounter so probe costs can be measured deterministically.
//
// Thread safety: every traversal entry point (SeekFirst/Seek/SeekAfter, the
// Count* statistics, CheckInvariants) is const and mutates nothing inside
// the tree; concurrent readers over a loaded tree are race-free, and each
// Iterator is private to its caller (it holds the position, the tree holds
// none). Insert/BulkLoad restructure nodes in place and require exclusive
// access — build indexes before sharing the tree with the query runtime.
// Per-query WorkCounters must not be shared across threads.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/work_counter.h"
#include "storage/heap_table.h"
#include "storage/index.h"
#include "storage/key_codec.h"
#include "types/string_pool.h"
#include "types/value.h"

namespace ajr {

/// One index entry in external (Value) form: tests and BulkLoad compat.
struct IndexEntry {
  Value key;
  Rid rid;

  /// Lexicographic (key, rid) three-way compare.
  int Compare(const IndexEntry& other) const {
    int c = key.Compare(other.key);
    if (c != 0) return c;
    return rid < other.rid ? -1 : (rid > other.rid ? 1 : 0);
  }
  bool operator<(const IndexEntry& o) const { return Compare(o) < 0; }
  bool operator==(const IndexEntry& o) const { return Compare(o) == 0; }
};

/// B+-tree index with leaf chaining. Keys are uint64 slots of one DataType.
/// The full-capability Index backend: ranges, positional resume, probes.
class BPlusTree final : public Index {
 public:
  /// One entry in stored form: encoded key slot + RID.
  struct EncodedEntry {
    uint64_t key;
    Rid rid;
  };

  /// Creates an empty tree. `fanout` is the max entries per leaf and max
  /// children per internal node (minimum 4). String trees resolve ids
  /// through `pool` when given (catalog indexes share the table pool) and
  /// own a private pool otherwise (standalone trees interning on Insert).
  explicit BPlusTree(DataType key_type, size_t fanout = 64,
                     const StringPool* pool = nullptr);
  ~BPlusTree() override;

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  DataType key_type() const override { return key_type_; }
  size_t size() const override { return size_; }
  /// Tree height in levels (1 = just a leaf).
  size_t height() const override { return height_; }

  // ---- Index interface (storage/index.h) ----
  IndexBackend backend() const override { return IndexBackend::kBTree; }
  bool SupportsRangeScan() const override { return true; }
  bool SupportsPositional() const override { return true; }
  void Probe(const IndexKey& key, WorkCounter* wc,
             std::vector<Rid>* out) const override;
  std::unique_ptr<ProbeState> NewProbeState() const override;
  bool ProbeHinted(const IndexKey& key, ProbeState* state, WorkCounter* wc,
                   std::vector<Rid>* out) const override;

  /// The pool string key slots resolve through (null for non-string trees).
  /// Shared-pool trees point at the table pool; standalone string trees
  /// return their private pool.
  const StringPool* pool() const { return pool_; }

  /// Physical leaf sizes in chain order — the canonical shape the ART twin
  /// replays for work-unit parity (empty for an empty tree).
  std::vector<size_t> LeafSizes() const;

  /// Inserts one entry. Duplicate keys allowed; duplicate (key, rid) pairs
  /// are legal but the workload never produces them. String keys intern
  /// into the private pool; on shared-pool trees they must already be
  /// interned (catalog trees are bulk-loaded from table cells).
  void Insert(const Value& key, Rid rid);

  /// Replaces the tree contents from entries sorted by (key, rid).
  /// InvalidArgument if the entries are not sorted.
  Status BulkLoad(std::vector<IndexEntry> sorted_entries);

  /// BulkLoad in stored form: `sorted_entries` must already be encoded for
  /// this tree (order encoding / shared-pool ids) and sorted by the tree's
  /// (key, rid) order. The catalog's index build uses this to go straight
  /// from page cells to the tree with no Value materialization.
  Status BulkLoadEncoded(std::vector<EncodedEntry> sorted_entries);

  /// Three-way compare of a probe key against a stored key slot.
  int CompareProbe(const IndexKey& key, uint64_t stored) const {
    if (key_type_ != DataType::kString) {
      return key.enc < stored ? -1 : (key.enc > stored ? 1 : 0);
    }
    int c = key.str.compare(pool_->Get(static_cast<uint32_t>(stored)));
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }

  /// True if a probe key equals a stored key slot.
  bool ProbeEquals(const IndexKey& key, uint64_t stored) const {
    if (key_type_ != DataType::kString) return key.enc == stored;
    return key.str == pool_->Get(static_cast<uint32_t>(stored));
  }

  /// Materializes a stored key slot as an owned Value.
  Value DecodeKey(uint64_t stored) const;

  /// Descent memory for batched probes: remembers the leaf a previous
  /// Seek landed on so a later Seek for a nearby, not-smaller key can
  /// resume from that leaf (a few leaf-chain hops) instead of descending
  /// from the root. Opaque to callers; updated by every SeekHinted /
  /// SeekAfterHinted call. Like an Iterator, a hint is invalidated by any
  /// tree mutation (Insert / BulkLoad) — discard it before mutating.
  class SeekHint {
   public:
    SeekHint() = default;
    /// Forgets the remembered leaf; the next hinted seek descends fresh.
    void Reset() { leaf_ = nullptr; }

   private:
    friend class BPlusTree;
    void* leaf_ = nullptr;  // LeafNode*
  };

  /// Forward iterator over leaf entries. Obtained from the Seek* methods;
  /// walking past the last entry makes it invalid.
  class Iterator {
   public:
    Iterator() = default;

    bool Valid() const { return leaf_ != nullptr; }
    /// Stored key slot (compare via the owning tree's CompareProbe).
    uint64_t key_slot() const;
    /// Materialized key (tests / diagnostics; allocates for strings).
    Value key() const;
    Rid rid() const;

    /// Advances one entry, charging kIndexEntryScan (plus kIndexNodeVisit
    /// when hopping to the next leaf).
    void Next(WorkCounter* wc);

   private:
    friend class BPlusTree;
    const BPlusTree* tree_ = nullptr;
    void* leaf_ = nullptr;  // LeafNode*
    size_t slot_ = 0;
  };

  /// First entry of the whole tree.
  Iterator SeekFirst(WorkCounter* wc) const;

  /// First entry with key >= `key` (inclusive) or key > `key` (exclusive).
  Iterator Seek(const IndexKey& key, bool inclusive, WorkCounter* wc) const;
  Iterator Seek(const Value& key, bool inclusive, WorkCounter* wc) const;

  /// First entry strictly after (key, rid) — used to resume a saved cursor.
  Iterator SeekAfter(const IndexKey& key, Rid rid, WorkCounter* wc) const;
  Iterator SeekAfter(const Value& key, Rid rid, WorkCounter* wc) const;

  /// Hint-resuming Seek: returns the same iterator position and charges the
  /// same work units as Seek(key, inclusive, wc) — the charge is always the
  /// as-if cost of a fresh root-to-leaf descent, so work-unit accounting is
  /// independent of the physical path taken — but when `hint` already sits
  /// at or shortly before the target leaf the physical walk is a handful of
  /// leaf-chain hops (with the next leaf software-prefetched) instead of a
  /// full descent. Keys below the hint or far past it fall back to a fresh
  /// descent, so arbitrary key sequences are safe; sorted batches are what
  /// make the hint pay off. `*used_hint` (optional) reports whether the
  /// root descent was skipped.
  Iterator SeekHinted(const IndexKey& key, bool inclusive, SeekHint* hint,
                      WorkCounter* wc, bool* used_hint = nullptr) const;

  /// Hinted SeekAfter with the same contract as SeekHinted vs Seek.
  Iterator SeekAfterHinted(const IndexKey& key, Rid rid, SeekHint* hint,
                           WorkCounter* wc, bool* used_hint = nullptr) const;

  /// Number of entries with key strictly less than `key`. O(height) via
  /// per-child subtree counts (the "key range cardinality" statistic
  /// commercial indexes expose; used for remaining-scan estimates).
  size_t CountKeyLess(const IndexKey& key) const;
  size_t CountKeyLess(const Value& key) const { return CountKeyLess(EncodeKey(key)); }

  /// Number of entries with key <= `key`.
  size_t CountKeyLessEqual(const IndexKey& key) const;
  size_t CountKeyLessEqual(const Value& key) const {
    return CountKeyLessEqual(EncodeKey(key));
  }

  /// Number of entries strictly after (key, rid) in (key, RID) order.
  size_t CountEntriesAfter(const IndexKey& key, Rid rid) const;
  size_t CountEntriesAfter(const Value& key, Rid rid) const {
    return CountEntriesAfter(EncodeKey(key), rid);
  }

  /// Validates structural invariants (test hook): sorted leaves, consistent
  /// separators, uniform depth, complete leaf chain, subtree counts.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct LeafNode;
  struct InternalNode;

  /// Three-way compare of two stored entries.
  int CompareEntries(const EncodedEntry& a, const EncodedEntry& b) const;
  /// Three-way compare of a stored entry against a probe (key, rid) target.
  int CompareToProbe(const EncodedEntry& e, const IndexKey& key, Rid rid) const;
  size_t ChildIndexFor(const std::vector<EncodedEntry>& separators,
                       const IndexKey& key, Rid rid) const;

  /// Encodes a probe key for storage (Insert path; interns into the private
  /// pool when owned).
  uint64_t EncodeForStore(const Value& key);

  Iterator SeekEntry(const IndexKey& key, Rid rid, WorkCounter* wc) const;
  Iterator SeekEntryHinted(const IndexKey& key, Rid rid, SeekHint* hint,
                           WorkCounter* wc, bool* used_hint) const;
  size_t CountBefore(const IndexKey& key, Rid rid) const;

  DataType key_type_;
  size_t fanout_;
  size_t size_ = 0;
  size_t height_ = 1;
  std::unique_ptr<Node> root_;
  const StringPool* pool_ = nullptr;        ///< id resolver (string trees)
  std::unique_ptr<StringPool> owned_pool_;  ///< backing for standalone trees
};

}  // namespace ajr

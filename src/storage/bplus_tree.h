// BPlusTree: an in-memory B+-tree secondary index over (key, RID) pairs.
//
// Entries are ordered lexicographically by (key, RID), so duplicate keys are
// supported and every scan — full, range, or point probe — yields RIDs in
// the deterministic (key, RID) order the paper's positional predicates rely
// on ("age > 35 OR (age = 35 AND RID > cur_RID)").
//
// The tree charges work units (node visits, entry scans) to an optional
// WorkCounter so probe costs can be measured deterministically.
//
// Thread safety: every traversal entry point (SeekFirst/Seek/SeekAfter, the
// Count* statistics, CheckInvariants) is const and mutates nothing inside
// the tree; concurrent readers over a loaded tree are race-free, and each
// Iterator is private to its caller (it holds the position, the tree holds
// none). Insert/BulkLoad restructure nodes in place and require exclusive
// access — build indexes before sharing the tree with the query runtime.
// Per-query WorkCounters must not be shared across threads.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/work_counter.h"
#include "storage/heap_table.h"
#include "types/value.h"

namespace ajr {

/// One index entry: key value plus the RID of the indexed row.
struct IndexEntry {
  Value key;
  Rid rid;

  /// Lexicographic (key, rid) three-way compare.
  int Compare(const IndexEntry& other) const {
    int c = key.Compare(other.key);
    if (c != 0) return c;
    return rid < other.rid ? -1 : (rid > other.rid ? 1 : 0);
  }
  bool operator<(const IndexEntry& o) const { return Compare(o) < 0; }
  bool operator==(const IndexEntry& o) const { return Compare(o) == 0; }
};

/// B+-tree index with leaf chaining. Keys are Values of one DataType.
class BPlusTree {
 public:
  /// Creates an empty tree. `fanout` is the max entries per leaf and max
  /// children per internal node (minimum 4).
  explicit BPlusTree(DataType key_type, size_t fanout = 64);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  DataType key_type() const { return key_type_; }
  size_t size() const { return size_; }
  /// Tree height in levels (1 = just a leaf).
  size_t height() const { return height_; }

  /// Inserts one entry. Duplicate keys allowed; duplicate (key, rid) pairs
  /// are legal but the workload never produces them.
  void Insert(const Value& key, Rid rid);

  /// Replaces the tree contents from entries sorted by (key, rid).
  /// InvalidArgument if the entries are not sorted.
  Status BulkLoad(std::vector<IndexEntry> sorted_entries);

  /// Forward iterator over leaf entries. Obtained from the Seek* methods;
  /// walking past the last entry makes it invalid.
  class Iterator {
   public:
    Iterator() = default;

    bool Valid() const { return leaf_ != nullptr; }
    const Value& key() const;
    Rid rid() const;

    /// Advances one entry, charging kIndexEntryScan (plus kIndexNodeVisit
    /// when hopping to the next leaf).
    void Next(WorkCounter* wc);

   private:
    friend class BPlusTree;
    void* leaf_ = nullptr;  // LeafNode*
    size_t slot_ = 0;
  };

  /// First entry of the whole tree.
  Iterator SeekFirst(WorkCounter* wc) const;

  /// First entry with key >= `key` (inclusive) or key > `key` (exclusive).
  Iterator Seek(const Value& key, bool inclusive, WorkCounter* wc) const;

  /// First entry strictly after (key, rid) — used to resume a saved cursor.
  Iterator SeekAfter(const Value& key, Rid rid, WorkCounter* wc) const;

  /// Number of entries with key strictly less than `key`. O(height) via
  /// per-child subtree counts (the "key range cardinality" statistic
  /// commercial indexes expose; used for remaining-scan estimates).
  size_t CountKeyLess(const Value& key) const;

  /// Number of entries with key <= `key`.
  size_t CountKeyLessEqual(const Value& key) const;

  /// Number of entries strictly after (key, rid) in (key, RID) order.
  size_t CountEntriesAfter(const Value& key, Rid rid) const;

  /// Validates structural invariants (test hook): sorted leaves, consistent
  /// separators, uniform depth, complete leaf chain, subtree counts.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct LeafNode;
  struct InternalNode;

  Iterator SeekEntry(const IndexEntry& target, WorkCounter* wc) const;
  size_t CountBefore(const IndexEntry& target) const;

  DataType key_type_;
  size_t fanout_;
  size_t size_ = 0;
  size_t height_ = 1;
  std::unique_ptr<Node> root_;
};

}  // namespace ajr

#include "storage/art_index.h"

#include <algorithm>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/check.h"
#include "common/string_util.h"

namespace ajr {

namespace {

// Appends the escaped, terminated byte image of a string key: 0x00 escapes
// to {0x00, 0xFF}, then a {0x00, 0x00} terminator. Order-preserving and
// prefix-free (the terminator cannot collide with any escaped interior).
void AppendEscapedString(std::string_view s, std::vector<uint8_t>* out) {
  for (unsigned char c : s) {
    out->push_back(c);
    if (c == 0x00) out->push_back(0xFF);
  }
  out->push_back(0x00);
  out->push_back(0x00);
}

// Appends the 8-byte big-endian image of an order encoding, so byte order
// equals encoding order.
void AppendBigEndian64(uint64_t v, std::vector<uint8_t>* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<uint8_t>(v >> shift));
  }
}

/// Descent memory for ArtIndex::ProbeHinted: the group the previous probe
/// landed at (its key <= the previous probe key), so sorted batches resolve
/// by walking a few groups forward instead of descending the radix tree.
class ArtProbeState final : public Index::ProbeState {
 public:
  void Reset() override { valid = false; }
  bool valid = false;
  uint32_t group = 0;
};

}  // namespace

ArtIndex::~ArtIndex() = default;

std::unique_ptr<ArtIndex> ArtIndex::BuildFromTree(const BPlusTree& tree) {
  std::unique_ptr<ArtIndex> art(new ArtIndex());
  art->key_type_ = tree.key_type();
  art->size_ = tree.size();
  art->height_ = tree.height();
  art->pool_ = tree.pool();

  // Capture the sibling's canonical leaf shape for the charge model.
  // Bulk-loaded trees pack every leaf but the last to the same size, so
  // leaf-start ordinals are multiples of per_leaf_; insert-built trees keep
  // the explicit start list.
  std::vector<size_t> sizes = tree.LeafSizes();
  bool uniform = !sizes.empty() && sizes.back() <= sizes.front();
  for (size_t i = 0; i + 1 < sizes.size() && uniform; ++i) {
    uniform = sizes[i] == sizes.front();
  }
  if (sizes.empty()) {
    art->per_leaf_ = 1;
  } else if (uniform) {
    art->per_leaf_ = sizes.front();
  } else {
    art->leaf_start_.reserve(sizes.size());
    size_t acc = 0;
    for (size_t s : sizes) {
      art->leaf_start_.push_back(acc);
      acc += s;
    }
  }

  // Flatten the tree's entries into (distinct key, RID span) groups.
  art->rids_.reserve(art->size_);
  for (auto it = tree.SeekFirst(nullptr); it.Valid(); it.Next(nullptr)) {
    uint64_t slot = it.key_slot();
    bool new_group = art->group_slot_.empty();
    if (!new_group && slot != art->group_slot_.back()) {
      // Distinct slots imply distinct keys for every type: numeric slots
      // are the order encoding itself, and one pool never interns the same
      // bytes under two ids. Compare through the pool anyway for strings —
      // it is cheap at build time and robust to future pool changes.
      new_group =
          art->key_type_ != DataType::kString ||
          art->pool_->Compare(static_cast<uint32_t>(art->group_slot_.back()),
                              static_cast<uint32_t>(slot)) != 0;
    }
    if (new_group) {
      art->group_start_.push_back(static_cast<uint32_t>(art->rids_.size()));
      art->group_slot_.push_back(slot);
    }
    art->rids_.push_back(it.rid());
  }
  art->group_start_.push_back(static_cast<uint32_t>(art->rids_.size()));

  // Materialize every group's escaped byte image into one arena; node
  // prefixes are spans of it.
  art->group_key_off_.reserve(art->group_slot_.size() + 1);
  art->group_key_off_.push_back(0);
  for (uint64_t slot : art->group_slot_) {
    if (art->key_type_ == DataType::kString) {
      AppendEscapedString(art->pool_->Get(static_cast<uint32_t>(slot)),
                          &art->key_bytes_);
    } else {
      AppendBigEndian64(slot, &art->key_bytes_);
    }
    art->group_key_off_.push_back(static_cast<uint32_t>(art->key_bytes_.size()));
  }

  if (!art->group_slot_.empty()) {
    art->root_ =
        art->BuildRange(0, static_cast<uint32_t>(art->group_slot_.size()), 0);
  }
  return art;
}

ArtIndex::Ref ArtIndex::BuildRange(uint32_t lo, uint32_t hi, size_t depth) {
  AJR_CHECK(lo < hi);
  if (hi - lo == 1) return MakeRef(kTagLeaf, lo);

  const uint8_t* arena = key_bytes_.data();
  const uint8_t* first = arena + group_key_off_[lo] + depth;
  const uint8_t* last = arena + group_key_off_[hi - 1] + depth;
  size_t first_len = group_key_off_[lo + 1] - group_key_off_[lo] - depth;
  size_t last_len = group_key_off_[hi] - group_key_off_[hi - 1] - depth;
  // Keys are sorted, so lcp(first, last) is the lcp of the whole range.
  size_t max_lcp = std::min(first_len, last_len);
  size_t lcp = 0;
  while (lcp < max_lcp && first[lcp] == last[lcp]) ++lcp;
  // Prefix-free keys cannot end inside a shared prefix of >= 2 keys.
  AJR_CHECK(lcp < max_lcp);
  size_t branch_depth = depth + lcp;

  // Partition [lo, hi) by the byte at branch_depth and build children.
  struct Part {
    uint8_t byte;
    uint32_t lo, hi;
  };
  std::vector<Part> parts;
  uint32_t g = lo;
  while (g < hi) {
    uint8_t b = arena[group_key_off_[g] + branch_depth];
    uint32_t start = g;
    while (g < hi && arena[group_key_off_[g] + branch_depth] == b) ++g;
    parts.push_back({b, start, g});
  }
  AJR_CHECK(parts.size() >= 2);
  std::vector<Ref> child_refs(parts.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    child_refs[i] = BuildRange(parts[i].lo, parts[i].hi, branch_depth + 1);
  }

  NodeHeader h;
  h.prefix_off = static_cast<uint32_t>(group_key_off_[lo] + depth);
  h.prefix_len = static_cast<uint32_t>(lcp);
  h.first_group = lo;
  h.last_group = hi - 1;

  size_t n = parts.size();
  if (n <= 4) {
    Node4 nd;
    nd.h = h;
    nd.count = static_cast<uint8_t>(n);
    for (size_t i = 0; i < n; ++i) {
      nd.keys[i] = parts[i].byte;
      nd.children[i] = child_refs[i];
    }
    node4_.push_back(nd);
    return MakeRef(kTagNode4, static_cast<uint32_t>(node4_.size() - 1));
  }
  if (n <= 16) {
    Node16 nd;
    nd.h = h;
    nd.count = static_cast<uint8_t>(n);
    for (size_t i = 0; i < n; ++i) {
      nd.keys[i] = parts[i].byte;
      nd.children[i] = child_refs[i];
    }
    node16_.push_back(nd);
    return MakeRef(kTagNode16, static_cast<uint32_t>(node16_.size() - 1));
  }
  if (n <= 48) {
    Node48 nd;
    nd.h = h;
    std::memset(nd.child_index, 0xFF, sizeof(nd.child_index));
    nd.count = static_cast<uint8_t>(n);
    for (size_t i = 0; i < n; ++i) {
      nd.child_index[parts[i].byte] = static_cast<uint8_t>(i);
      nd.children[i] = child_refs[i];
    }
    node48_.push_back(nd);
    return MakeRef(kTagNode48, static_cast<uint32_t>(node48_.size() - 1));
  }
  Node256 nd;
  nd.h = h;
  nd.count = static_cast<uint16_t>(n);
  for (size_t i = 0; i < n; ++i) {
    nd.children[parts[i].byte] = child_refs[i];
  }
  node256_.push_back(nd);
  return MakeRef(kTagNode256, static_cast<uint32_t>(node256_.size() - 1));
}

const ArtIndex::NodeHeader& ArtIndex::HeaderOf(Ref r) const {
  switch (RefTag(r)) {
    case kTagNode4:
      return node4_[RefPayload(r)].h;
    case kTagNode16:
      return node16_[RefPayload(r)].h;
    case kTagNode48:
      return node48_[RefPayload(r)].h;
    case kTagNode256:
      return node256_[RefPayload(r)].h;
  }
  CheckFailed("unreachable Ref tag in HeaderOf", __FILE__, __LINE__);
}

uint32_t ArtIndex::LastGroupOf(Ref r) const {
  if (RefTag(r) == kTagLeaf) return RefPayload(r);
  return HeaderOf(r).last_group;
}

int ArtIndex::CompareToGroup(const IndexKey& key, size_t g) const {
  uint64_t stored = group_slot_[g];
  if (key_type_ != DataType::kString) {
    return key.enc < stored ? -1 : (key.enc > stored ? 1 : 0);
  }
  int c = key.str.compare(pool_->Get(static_cast<uint32_t>(stored)));
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

uint32_t ArtIndex::Node16LowerBoundScalar(const uint8_t* keys, uint32_t count,
                                          uint8_t b) {
  for (uint32_t i = 0; i < count; ++i) {
    if (keys[i] >= b) return i;
  }
  return count;
}

uint32_t ArtIndex::Node16LowerBound(const uint8_t* keys, uint32_t count,
                                    uint8_t b) {
#if defined(__SSE2__)
  // SSE2 has only signed byte compares; XOR-ing both sides with 0x80 maps
  // unsigned order onto signed order. The keys ascend, so the lanes below b
  // form a contiguous low run and the lower bound is their popcount.
  const __m128i bias = _mm_set1_epi8(static_cast<char>(0x80));
  const __m128i k =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys));
  const __m128i lt =
      _mm_cmplt_epi8(_mm_xor_si128(k, bias),
                     _mm_xor_si128(_mm_set1_epi8(static_cast<char>(b)), bias));
  const uint32_t mask = static_cast<uint32_t>(_mm_movemask_epi8(lt)) &
                        ((1u << count) - 1);
  return static_cast<uint32_t>(__builtin_popcount(mask));
#else
  return Node16LowerBoundScalar(keys, count, b);
#endif
}

ArtIndex::Descent ArtIndex::Descend(const IndexKey& key, const uint8_t* bytes,
                                    size_t len) const {
  Descent d;
  const uint8_t* arena = key_bytes_.data();
  Ref ref = root_;
  size_t depth = 0;
  for (;;) {
    uint32_t tag = RefTag(ref);
    if (tag == kTagLeaf) {
      uint32_t g = RefPayload(ref);
      int cmp = CompareToGroup(key, g);
      if (cmp == 0) {
        d.hit = true;
        d.group = g;
      } else {
        d.group = cmp < 0 ? g : g + 1;
      }
      return d;
    }
    const NodeHeader& h = HeaderOf(ref);
    for (uint32_t i = 0; i < h.prefix_len; ++i) {
      uint8_t nb = arena[h.prefix_off + i];
      if (depth + i >= len || bytes[depth + i] < nb) {
        d.group = h.first_group;  // probe < every key below this node
        return d;
      }
      if (bytes[depth + i] > nb) {
        d.group = h.last_group + 1;  // probe > every key below this node
        return d;
      }
    }
    depth += h.prefix_len;
    if (depth >= len) {
      // Unreachable for the prefix-free codec (the probe's terminator or
      // fixed width always yields a decisive byte); treat as probe < all.
      d.group = h.first_group;
      return d;
    }
    uint8_t b = bytes[depth];
    Ref child = kNullRef;
    Ref pred = kNullRef;
    switch (tag) {
      case kTagNode4: {
        const Node4& nd = node4_[RefPayload(ref)];
        uint32_t idx = nd.count;
        for (uint32_t i = 0; i < nd.count; ++i) {
          if (nd.keys[i] >= b) {
            idx = i;
            break;
          }
        }
        if (idx < nd.count && nd.keys[idx] == b) {
          child = nd.children[idx];
        } else if (idx > 0) {
          pred = nd.children[idx - 1];
        }
        break;
      }
      case kTagNode16: {
        const Node16& nd = node16_[RefPayload(ref)];
        uint32_t idx = Node16LowerBound(nd.keys, nd.count, b);
        if (idx < nd.count && nd.keys[idx] == b) {
          child = nd.children[idx];
        } else if (idx > 0) {
          pred = nd.children[idx - 1];
        }
        break;
      }
      case kTagNode48: {
        const Node48& nd = node48_[RefPayload(ref)];
        if (nd.child_index[b] != 0xFF) {
          child = nd.children[nd.child_index[b]];
        } else {
          for (int bb = static_cast<int>(b) - 1; bb >= 0; --bb) {
            if (nd.child_index[bb] != 0xFF) {
              pred = nd.children[nd.child_index[bb]];
              break;
            }
          }
        }
        break;
      }
      default: {
        const Node256& nd = node256_[RefPayload(ref)];
        if (nd.children[b] != kNullRef) {
          child = nd.children[b];
        } else {
          for (int bb = static_cast<int>(b) - 1; bb >= 0; --bb) {
            if (nd.children[bb] != kNullRef) {
              pred = nd.children[bb];
              break;
            }
          }
        }
        break;
      }
    }
    if (child != kNullRef) {
      ref = child;
      ++depth;
      continue;
    }
    // No child for this byte: the successor is the first group after the
    // predecessor child's subtree, or the node's first group if the probe
    // byte sorts before every child.
    d.group = pred != kNullRef ? LastGroupOf(pred) + 1 : h.first_group;
    return d;
  }
}

ArtIndex::Descent ArtIndex::DescendKey(const IndexKey& key) const {
  if (key_type_ != DataType::kString) {
    uint8_t numeric[8];
    for (int i = 0; i < 8; ++i) {
      numeric[i] = static_cast<uint8_t>(key.enc >> (56 - 8 * i));
    }
    return Descend(key, numeric, sizeof(numeric));
  }
  thread_local std::vector<uint8_t> scratch;
  scratch.clear();
  AppendEscapedString(key.str, &scratch);
  return Descend(key, scratch.data(), scratch.size());
}

size_t ArtIndex::LeafStartsThrough(size_t x) const {
  if (leaf_start_.empty()) return x / per_leaf_;
  // Count starts q with 1 <= q <= x (leaf_start_ begins with ordinal 0).
  return static_cast<size_t>(
             std::upper_bound(leaf_start_.begin(), leaf_start_.end(), x) -
             leaf_start_.begin()) -
         1;
}

bool ArtIndex::IsLeafStart(size_t p) const {
  if (leaf_start_.empty()) return p % per_leaf_ == 0;
  return std::binary_search(leaf_start_.begin(), leaf_start_.end(), p);
}

void ArtIndex::ChargeCanonical(size_t p, size_t m, bool entry_gt,
                               WorkCounter* wc) const {
  if (wc == nullptr) return;
  // Seek: one node visit per level, plus one extra when the canonical
  // descent routes into the predecessor leaf (the landed-on entry starts a
  // leaf and exceeds the (key, rid=0) target) or walks off the end.
  uint64_t units = height_ * WorkCounter::kIndexNodeVisit;
  if (p == size_) {
    units += WorkCounter::kIndexNodeVisit;
  } else if (p > 0 && entry_gt && IsLeafStart(p)) {
    units += WorkCounter::kIndexNodeVisit;
  }
  // Iteration: one entry scan per match, one node visit per canonical leaf
  // boundary crossed, plus the hop off the last leaf when the matches end
  // exactly at the last entry.
  if (m > 0) {
    units += m * WorkCounter::kIndexEntryScan;
    size_t end = p + m;
    size_t upper = end == size_ ? size_ - 1 : end;
    size_t crossings = LeafStartsThrough(upper) - LeafStartsThrough(p);
    if (end == size_) crossings += 1;
    units += crossings * WorkCounter::kIndexNodeVisit;
  }
  ChargeWork(wc, units);
}

void ArtIndex::Resolve(const Descent& d, WorkCounter* wc,
                       std::vector<Rid>* out) const {
  size_t p = group_start_[d.group];
  if (!d.hit) {
    ChargeCanonical(p, 0, /*entry_gt=*/true, wc);
    return;
  }
  size_t end = group_start_[d.group + 1];
  ChargeCanonical(p, end - p, /*entry_gt=*/rids_[p] > 0, wc);
  out->insert(out->end(), rids_.begin() + p, rids_.begin() + end);
}

void ArtIndex::Probe(const IndexKey& key, WorkCounter* wc,
                     std::vector<Rid>* out) const {
  AJR_CHECK(key.type == key_type_);
  if (root_ == kNullRef) {
    // Empty index: the canonical probe descends to the empty root leaf and
    // hops off its end.
    ChargeCanonical(0, 0, /*entry_gt=*/true, wc);
    return;
  }
  Resolve(DescendKey(key), wc, out);
}

std::unique_ptr<Index::ProbeState> ArtIndex::NewProbeState() const {
  return std::make_unique<ArtProbeState>();
}

bool ArtIndex::ProbeHinted(const IndexKey& key, ProbeState* state,
                           WorkCounter* wc, std::vector<Rid>* out) const {
  AJR_CHECK(key.type == key_type_);
  auto* st = static_cast<ArtProbeState*>(state);
  if (root_ == kNullRef) {
    ChargeCanonical(0, 0, /*entry_gt=*/true, wc);
    return false;
  }
  // How many groups past the hint the target may sit before a fresh radix
  // descent beats the walk (mirrors the B+-tree's kMaxHintHops intent).
  constexpr uint32_t kMaxHintGroups = 16;
  const uint32_t num_groups = static_cast<uint32_t>(group_slot_.size());
  if (st->valid) {
    uint32_t g = st->group;
    int cmp = CompareToGroup(key, g);
    if (cmp >= 0) {
      // The hint group's key <= probe: walk forward group by group.
      Descent d;
      bool resolved = false;
      uint32_t hops = 0;
      for (;;) {
        if (cmp == 0) {
          d.hit = true;
          d.group = g;
          resolved = true;
          break;
        }
        if (g + 1 == num_groups) {
          d.group = num_groups;  // probe past every key
          resolved = true;
          break;
        }
        if (++hops > kMaxHintGroups) break;
        ++g;
        cmp = CompareToGroup(key, g);
        if (cmp < 0) {
          d.group = g;  // miss between g-1 and g
          resolved = true;
          break;
        }
      }
      if (resolved) {
        st->group = d.hit ? d.group : (d.group > 0 ? d.group - 1 : 0);
        Resolve(d, wc, out);
        return true;
      }
    }
    // Probe below the hint or too far past it: fall through to a descent.
  }
  Descent d = DescendKey(key);
  st->valid = true;
  st->group = d.hit ? d.group : (d.group > 0 ? d.group - 1 : 0);
  Resolve(d, wc, out);
  return false;
}

Value ArtIndex::GroupKey(size_t g) const {
  uint64_t stored = group_slot_[g];
  switch (key_type_) {
    case DataType::kBool:
      return Value(stored != 0);
    case DataType::kInt64:
      return Value(OrderDecodeInt64(stored));
    case DataType::kDouble:
      return Value(OrderDecodeDouble(stored));
    case DataType::kString:
      return Value(std::string(pool_->Get(static_cast<uint32_t>(stored))));
  }
  CheckFailed("unreachable DataType in GroupKey", __FILE__, __LINE__);
}

std::vector<Rid> ArtIndex::GroupRids(size_t g) const {
  return std::vector<Rid>(rids_.begin() + group_start_[g],
                          rids_.begin() + group_start_[g + 1]);
}

ArtIndex::NodeCounts ArtIndex::node_counts() const {
  return NodeCounts{node4_.size(), node16_.size(), node48_.size(),
                    node256_.size()};
}

Status ArtIndex::CheckInvariants() const {
  const size_t num_groups = group_slot_.size();
  if (group_start_.size() != num_groups + 1) {
    return Status::Internal("ART group_start length mismatch");
  }
  if (group_start_.front() != 0 || group_start_.back() != size_ ||
      rids_.size() != size_) {
    return Status::Internal("ART group spans do not cover size()");
  }
  if (group_key_off_.size() != num_groups + 1) {
    return Status::Internal("ART key arena offsets length mismatch");
  }
  for (size_t g = 0; g < num_groups; ++g) {
    if (group_start_[g] >= group_start_[g + 1]) {
      return Status::Internal("ART empty or inverted group span");
    }
    for (uint32_t i = group_start_[g] + 1; i < group_start_[g + 1]; ++i) {
      if (rids_[i - 1] > rids_[i]) {
        return Status::Internal("ART RIDs out of order within group");
      }
    }
    if (g > 0) {
      int c;
      if (key_type_ != DataType::kString) {
        uint64_t a = group_slot_[g - 1], b = group_slot_[g];
        c = a < b ? -1 : (a > b ? 1 : 0);
      } else {
        c = pool_->Compare(static_cast<uint32_t>(group_slot_[g - 1]),
                           static_cast<uint32_t>(group_slot_[g]));
      }
      if (c >= 0) return Status::Internal("ART groups out of key order");
      // Escaped byte images must sort the same way.
      auto bytes_of = [&](size_t gg) {
        return std::basic_string_view<uint8_t>(
            key_bytes_.data() + group_key_off_[gg],
            group_key_off_[gg + 1] - group_key_off_[gg]);
      };
      if (!(bytes_of(g - 1) < bytes_of(g))) {
        return Status::Internal("ART escaped keys out of byte order");
      }
    }
  }
  // Canonical leaf shape.
  if (leaf_start_.empty()) {
    if (per_leaf_ == 0) return Status::Internal("ART per_leaf is zero");
  } else {
    if (leaf_start_.front() != 0) {
      return Status::Internal("ART leaf_start must begin at 0");
    }
    for (size_t i = 1; i < leaf_start_.size(); ++i) {
      if (leaf_start_[i - 1] >= leaf_start_[i] || leaf_start_[i] >= size_) {
        return Status::Internal("ART leaf_start out of order");
      }
    }
  }
  // Radix structure: every subtree covers exactly its group range, spells
  // its first group's bytes, and keeps child bytes strictly ascending.
  struct Walker {
    const ArtIndex* art;
    Status Walk(Ref ref, size_t depth, uint32_t lo, uint32_t hi) const {
      if (RefTag(ref) == kTagLeaf) {
        if (RefPayload(ref) != lo || lo != hi) {
          return Status::Internal("ART leaf group out of place");
        }
        return Status::OK();
      }
      const NodeHeader& h = art->HeaderOf(ref);
      if (h.first_group != lo || h.last_group != hi || lo >= hi) {
        return Status::Internal("ART node group range mismatch");
      }
      size_t key_len =
          art->group_key_off_[lo + 1] - art->group_key_off_[lo];
      if (depth + h.prefix_len >= key_len) {
        return Status::Internal("ART prefix overruns key");
      }
      const uint8_t* key = art->key_bytes_.data() + art->group_key_off_[lo];
      for (uint32_t i = 0; i < h.prefix_len; ++i) {
        if (art->key_bytes_[h.prefix_off + i] != key[depth + i]) {
          return Status::Internal("ART prefix differs from first key");
        }
      }
      size_t branch_depth = depth + h.prefix_len;
      std::vector<std::pair<uint8_t, Ref>> children;
      switch (RefTag(ref)) {
        case kTagNode4: {
          const Node4& nd = art->node4_[RefPayload(ref)];
          for (uint32_t i = 0; i < nd.count; ++i) {
            children.push_back({nd.keys[i], nd.children[i]});
          }
          break;
        }
        case kTagNode16: {
          const Node16& nd = art->node16_[RefPayload(ref)];
          for (uint32_t i = 0; i < nd.count; ++i) {
            children.push_back({nd.keys[i], nd.children[i]});
          }
          break;
        }
        case kTagNode48: {
          const Node48& nd = art->node48_[RefPayload(ref)];
          for (int b = 0; b < 256; ++b) {
            if (nd.child_index[b] != 0xFF) {
              children.push_back(
                  {static_cast<uint8_t>(b), nd.children[nd.child_index[b]]});
            }
          }
          if (children.size() != nd.count) {
            return Status::Internal("ART Node48 count mismatch");
          }
          break;
        }
        default: {
          const Node256& nd = art->node256_[RefPayload(ref)];
          for (int b = 0; b < 256; ++b) {
            if (nd.children[b] != kNullRef) {
              children.push_back({static_cast<uint8_t>(b), nd.children[b]});
            }
          }
          if (children.size() != nd.count) {
            return Status::Internal("ART Node256 count mismatch");
          }
          break;
        }
      }
      if (children.size() < 2) {
        return Status::Internal("ART inner node with < 2 children");
      }
      uint32_t next = lo;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0 && children[i - 1].first >= children[i].first) {
          return Status::Internal("ART child bytes out of order");
        }
        uint32_t child_lo = next;
        uint32_t child_hi = art->LastGroupOf(children[i].second);
        if (child_lo > child_hi || child_hi > hi) {
          return Status::Internal("ART child range out of bounds");
        }
        const uint8_t* ck =
            art->key_bytes_.data() + art->group_key_off_[child_lo];
        if (ck[branch_depth] != children[i].first) {
          return Status::Internal("ART child byte differs from child key");
        }
        AJR_RETURN_IF_ERROR(
            Walk(children[i].second, branch_depth + 1, child_lo, child_hi));
        next = child_hi + 1;
      }
      if (next != hi + 1) {
        return Status::Internal("ART children do not cover group range");
      }
      return Status::OK();
    }
  } walker{this};
  if (num_groups == 0) {
    if (root_ != kNullRef) return Status::Internal("ART empty index has root");
    return Status::OK();
  }
  return walker.Walk(root_, 0, 0, static_cast<uint32_t>(num_groups - 1));
}

}  // namespace ajr

// ArtIndex: an Adaptive Radix Tree point-probe backend (Leis et al., ICDE
// 2013) built as a read-only twin of a loaded BPlusTree.
//
// Structure. Keys are radix-searched as byte strings: numeric keys are the
// 8-byte big-endian image of their order encoding (types/row_layout.h), so
// byte order equals key order; string keys are the raw bytes with 0x00
// escaped as {0x00, 0xFF} and a {0x00, 0x00} terminator appended, which is
// both order-preserving and prefix-free (no stored key is a prefix of
// another — every descent ends at a decisive byte). Inner nodes come in the
// four classic arities (Node4/16/48/256) and carry path-compressed prefixes
// pointing into a shared key-byte arena. Distinct keys form "groups"; the
// RIDs of all entries live in one flat array in (key, RID) order, so a hit
// resolves to a contiguous RID span with no per-entry pointer chasing.
//
// Capabilities. Point probes only: SupportsRangeScan() and
// SupportsPositional() are false, so driving scans, range cursors,
// remaining-cardinality statistics, and positional-predicate resume all stay
// on the B+-tree (the planner/executor gate on these capabilities). This is
// the honest trade: the ART wins on point-probe latency, the B+-tree keeps
// everything ordered-scan shaped.
//
// Work-unit parity. Every probe charges the CANONICAL cost of the sibling
// B+-tree it was built from — height node visits for the descent, one entry
// scan per match, one node visit per canonical leaf boundary crossed —
// computed arithmetically from the sibling's leaf shape (captured at build
// time via BPlusTree::LeafSizes()). Work units, monitor statistics, and
// adaptation decision traces are therefore bit-identical across backends;
// only wall time differs. See Index in storage/index.h for the contract.
//
// Thread safety: build-then-serve. BuildFromTree is the only writer; the
// built index is immutable and every probe entry point is const, so any
// number of concurrent readers are race-free (string probes use a
// thread-local escape buffer). ProbeState objects are single-owner.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/work_counter.h"
#include "storage/bplus_tree.h"
#include "storage/index.h"
#include "storage/key_codec.h"
#include "types/string_pool.h"

namespace ajr {

/// Read-only ART over the contents of a loaded B+-tree (see file comment).
class ArtIndex final : public Index {
 public:
  /// Builds an ART holding exactly the (key, RID) entries of `tree`, taking
  /// the canonical height and leaf shape from it for work-unit parity. The
  /// tree must outlive the ArtIndex for string key types (the pool is
  /// borrowed); numeric trees impose no lifetime coupling.
  static std::unique_ptr<ArtIndex> BuildFromTree(const BPlusTree& tree);

  ~ArtIndex() override;
  ArtIndex(const ArtIndex&) = delete;
  ArtIndex& operator=(const ArtIndex&) = delete;

  // ---- Index interface ----
  IndexBackend backend() const override { return IndexBackend::kArt; }
  DataType key_type() const override { return key_type_; }
  size_t size() const override { return size_; }
  size_t height() const override { return height_; }
  bool SupportsRangeScan() const override { return false; }
  bool SupportsPositional() const override { return false; }
  void Probe(const IndexKey& key, WorkCounter* wc,
             std::vector<Rid>* out) const override;
  std::unique_ptr<ProbeState> NewProbeState() const override;
  bool ProbeHinted(const IndexKey& key, ProbeState* state, WorkCounter* wc,
                   std::vector<Rid>* out) const override;

  // ---- Introspection (tests / diagnostics) ----

  /// Number of distinct keys.
  size_t num_groups() const { return group_slot_.size(); }
  /// Key of distinct-key group `g`, materialized (groups ascend in key
  /// order, so iterating g = 0..num_groups()-1 yields IndexKey order).
  Value GroupKey(size_t g) const;
  /// RIDs of group `g` in ascending order.
  std::vector<Rid> GroupRids(size_t g) const;

  /// Inner-node population by arity — the Node4 -> 16 -> 48 -> 256 growth
  /// tests assert on these.
  struct NodeCounts {
    size_t n4 = 0, n16 = 0, n48 = 0, n256 = 0;
  };
  NodeCounts node_counts() const;

  /// Structural validation (test hook): groups strictly ascend in key
  /// order, radix paths spell exactly each group's escaped bytes, child
  /// bytes ascend within every node, first/last group ranges are exact,
  /// RID spans ascend, and the canonical leaf shape covers size() entries.
  Status CheckInvariants() const;

  /// Index of the first key in keys[0..count) with keys[i] >= b, or `count`
  /// when every key is below b. Keys ascend and are unique (Node16's layout
  /// invariant); `keys` must be readable for a full 16 bytes regardless of
  /// count, exactly like Node16::keys. SSE2 when the target has it, scalar
  /// otherwise — art_index_test asserts the two agree on every (keys, b).
  static uint32_t Node16LowerBound(const uint8_t* keys, uint32_t count,
                                   uint8_t b);
  /// Portable reference implementation of Node16LowerBound.
  static uint32_t Node16LowerBoundScalar(const uint8_t* keys, uint32_t count,
                                         uint8_t b);

 private:
  ArtIndex() = default;

  // A child reference packs {tag, payload} into 32 bits: tag 0 = none,
  // 1 = leaf (payload = group id), 2..5 = Node4/16/48/256 (payload = index
  // into the per-arity store). 29 payload bits bound the index at ~536M
  // distinct keys / nodes — far above anything the engine loads.
  using Ref = uint32_t;
  static constexpr Ref kNullRef = 0;
  static constexpr uint32_t kTagLeaf = 1;
  static constexpr uint32_t kTagNode4 = 2;
  static constexpr uint32_t kTagNode16 = 3;
  static constexpr uint32_t kTagNode48 = 4;
  static constexpr uint32_t kTagNode256 = 5;

  static Ref MakeRef(uint32_t tag, uint32_t payload) {
    return (payload << 3) | tag;
  }
  static uint32_t RefTag(Ref r) { return r & 7u; }
  static uint32_t RefPayload(Ref r) { return r >> 3; }

  /// Shared inner-node fields: the compressed prefix (a span of the key
  /// arena) and the inclusive group range the subtree covers. The range is
  /// what makes misses cheap: the successor group of a mismatch is computed
  /// locally (first_group / last_group + 1) with no backtracking stack and
  /// zero cost on the hit path.
  struct NodeHeader {
    uint32_t prefix_off = 0;
    uint32_t prefix_len = 0;
    uint32_t first_group = 0;
    uint32_t last_group = 0;
  };
  struct Node4 {
    NodeHeader h;
    uint8_t count = 0;
    uint8_t keys[4] = {};
    Ref children[4] = {};
  };
  struct Node16 {
    NodeHeader h;
    uint8_t count = 0;
    uint8_t keys[16] = {};
    Ref children[16] = {};
  };
  struct Node48 {
    NodeHeader h;
    uint8_t child_index[256];  // 0xFF = empty
    Ref children[48] = {};
    uint8_t count = 0;
  };
  struct Node256 {
    NodeHeader h;
    Ref children[256] = {};
    uint16_t count = 0;
  };

  /// Outcome of a radix descent: a hit on group `group`, or a miss whose
  /// key-order successor is group `group` (== num_groups when the probe is
  /// past every key).
  struct Descent {
    bool hit = false;
    uint32_t group = 0;
  };

  Descent Descend(const IndexKey& key, const uint8_t* bytes,
                  size_t len) const;
  /// Descend after materializing the probe's byte image (stack buffer for
  /// numerics, thread-local escape scratch for strings).
  Descent DescendKey(const IndexKey& key) const;
  /// Three-way compare of the probe against group `g`'s key.
  int CompareToGroup(const IndexKey& key, size_t g) const;
  /// Charges the canonical B+-tree cost of a probe that lands at global
  /// entry ordinal `p` with `m` matches; `entry_gt` = the landed-on entry
  /// compares greater than the (key, rid=0) seek target.
  void ChargeCanonical(size_t p, size_t m, bool entry_gt, WorkCounter* wc) const;
  /// Resolves a descent to (RID span, canonical charge) and appends to out.
  void Resolve(const Descent& d, WorkCounter* wc, std::vector<Rid>* out) const;

  const NodeHeader& HeaderOf(Ref r) const;
  uint32_t LastGroupOf(Ref r) const;

  /// Number of canonical leaf-start ordinals q with 1 <= q <= x.
  size_t LeafStartsThrough(size_t x) const;
  bool IsLeafStart(size_t p) const;

  Ref BuildRange(uint32_t lo, uint32_t hi, size_t depth);

  DataType key_type_ = DataType::kInt64;
  size_t size_ = 0;    ///< total (key, RID) entries
  size_t height_ = 1;  ///< sibling B+-tree height (charge parameter)
  const StringPool* pool_ = nullptr;  ///< borrowed from the source tree

  // Canonical leaf shape of the sibling tree. Bulk-loaded trees pack
  // uniformly (leaf starts at multiples of per_leaf_, O(1) arithmetic);
  // insert-built trees fall back to the explicit start-ordinal list.
  size_t per_leaf_ = 1;
  std::vector<size_t> leaf_start_;  ///< non-uniform shapes only; starts with 0

  std::vector<uint64_t> group_slot_;   ///< distinct key slots, ascending
  std::vector<uint32_t> group_start_;  ///< num_groups+1; [g, g+1) spans rids_
  std::vector<Rid> rids_;              ///< all RIDs in (key, RID) order

  std::vector<uint8_t> key_bytes_;     ///< escaped-key arena (prefix spans)
  std::vector<uint32_t> group_key_off_;  ///< num_groups+1 offsets into arena
  std::vector<Node4> node4_;
  std::vector<Node16> node16_;
  std::vector<Node48> node48_;
  std::vector<Node256> node256_;
  Ref root_ = kNullRef;
};

}  // namespace ajr

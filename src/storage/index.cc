#include "storage/index.h"

#include "common/check.h"

namespace ajr {

const char* IndexBackendName(IndexBackend backend) {
  switch (backend) {
    case IndexBackend::kBTree:
      return "btree";
    case IndexBackend::kArt:
      return "art";
  }
  CheckFailed("unreachable IndexBackend in IndexBackendName", __FILE__, __LINE__);
}

std::optional<IndexBackend> ParseIndexBackend(const std::string& name) {
  if (name == "btree") return IndexBackend::kBTree;
  if (name == "art") return IndexBackend::kArt;
  return std::nullopt;
}

}  // namespace ajr

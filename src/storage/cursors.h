// Scan cursors: the access paths of driving legs.
//
// A ScanCursor yields the RIDs of one table in a deterministic scan order,
// remembers the position of the last row it returned (so a demoted driving
// leg can build its positional predicate), and can be resumed from a saved
// position (so a re-promoted driving leg continues its original scan —
// Sec 4.2's "the original cursor is also needed").
//
// Range bounds are encoded to probe form (IndexKey) once at construction;
// per-row range checks and the remembered position are integer compares on
// key slots, not Value comparisons.
//
// Thread safety: cursors and probes are stateful per-query objects — one
// owner thread each, never shared. They only *read* the underlying
// HeapTable/BPlusTree (const pointers), so any number of cursors on any
// number of threads may scan the same storage concurrently.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/work_counter.h"
#include "expr/range_extraction.h"
#include "storage/bplus_tree.h"
#include "storage/heap_table.h"
#include "storage/key_codec.h"
#include "storage/scan_position.h"

namespace ajr {

/// Entries of `tree` within `range` (bounds in Value form, as produced by
/// ExtractRanges).
size_t CountRangeEntries(const BPlusTree& tree, const KeyRange& range);

/// Entries of `tree` within `ranges`, restricted to strictly after `pos`
/// (nullopt = no restriction): the cardinality behind a driving scan's
/// positional predicate. Shared by the executor's remaining-cost inputs and
/// the morsel driver's exact per-leg accounting.
size_t CountRangeEntriesAfter(const BPlusTree& tree,
                              const std::vector<KeyRange>& ranges,
                              const std::optional<ScanPosition>& pos);

/// Iterates the RIDs of a table in a well-defined scan order.
class ScanCursor {
 public:
  virtual ~ScanCursor() = default;

  /// Yields the next RID; false at end of scan.
  virtual bool Next(WorkCounter* wc, Rid* rid) = 0;

  /// Position of the most recently returned row. Invalid before the first
  /// Next(); callers must not ask for it then.
  virtual ScanPosition CurrentPosition() const = 0;

  /// Restarts the scan from the beginning.
  virtual void Reset() = 0;

  /// Continues the scan strictly after `pos` (which must match order()).
  virtual Status ResumeFrom(const ScanPosition& pos) = 0;

  /// The scan order this cursor produces.
  virtual ScanOrder order() const = 0;
};

/// Full scan in RID order.
class TableScanCursor final : public ScanCursor {
 public:
  explicit TableScanCursor(const HeapTable* table) : table_(table) {}

  bool Next(WorkCounter* wc, Rid* rid) override;
  ScanPosition CurrentPosition() const override;
  void Reset() override { next_rid_ = 0; }
  Status ResumeFrom(const ScanPosition& pos) override;
  ScanOrder order() const override { return ScanOrder::kRidOrder; }

 private:
  const HeapTable* table_;
  Rid next_rid_ = 0;
};

/// Multi-range scan over a B+-tree in (key, RID) order. `ranges` must be
/// sorted and disjoint (as produced by ExtractRanges / NormalizeRanges).
class IndexScanCursor final : public ScanCursor {
 public:
  IndexScanCursor(const BPlusTree* tree, std::vector<KeyRange> ranges);

  bool Next(WorkCounter* wc, Rid* rid) override;
  ScanPosition CurrentPosition() const override;
  void Reset() override;
  Status ResumeFrom(const ScanPosition& pos) override;
  ScanOrder order() const override { return ScanOrder::kKeyRidOrder; }

 private:
  /// One range bound in probe form; str views point into ranges_ (owned by
  /// this cursor), so they are stable for the cursor's lifetime.
  struct Bound {
    bool present = false;
    IndexKey key;
    bool inclusive = false;
  };

  // Moves iter_ forward until it sits inside some range (possibly reseeking
  // at range lower bounds); leaves it invalid when all ranges are exhausted.
  void AlignToRanges(WorkCounter* wc);
  // True if iter_'s key is below / inside / above ranges_[range_idx_].
  bool BeforeRangeLo() const;
  bool PastRangeHi() const;

  const BPlusTree* tree_;
  std::vector<KeyRange> ranges_;
  std::vector<Bound> lo_, hi_;  ///< encoded bounds, parallel to ranges_
  BPlusTree::Iterator iter_;
  size_t range_idx_ = 0;
  bool started_ = false;
  // Set by ResumeFrom: the next Next() consumes this iterator rather than
  // advancing.
  std::optional<BPlusTree::Iterator> pending_;
  // Last-returned entry (cheap slot form; materialized by CurrentPosition).
  uint64_t last_key_ = 0;
  Rid last_rid_ = 0;
  bool has_last_ = false;
  // Position handed to ResumeFrom, reported until the next row is produced.
  std::optional<ScanPosition> resumed_;
};

/// Point-probe helper for inner legs: for one join-key value, yields all
/// matching RIDs in RID order.
class IndexProbe {
 public:
  explicit IndexProbe(const BPlusTree* tree) : tree_(tree) {}

  /// Starts a probe for `key` (charges the traversal). The caller keeps the
  /// key's string bytes alive until the probe is re-seeked or destroyed.
  void Seek(const IndexKey& key, WorkCounter* wc);

  /// Value-form Seek (tests / cold paths): copies string bytes locally.
  void Seek(const Value& key, WorkCounter* wc);

  /// Yields the next RID whose entry key equals the probed key.
  bool Next(WorkCounter* wc, Rid* rid);

 private:
  const BPlusTree* tree_;
  BPlusTree::Iterator iter_;
  IndexKey key_;
  std::string owned_str_;  ///< backing for Value-form string seeks
};

/// IndexProbe variant for batched probing: carries a BPlusTree::SeekHint
/// across Seeks so sorted probe batches resume descent from the previous
/// leaf instead of paying a fresh root-to-leaf walk per key. Work-unit
/// charges are identical to IndexProbe (SeekHinted's as-if contract), so
/// the two are interchangeable for accounting.
class HintedIndexProbe {
 public:
  explicit HintedIndexProbe(const BPlusTree* tree) : tree_(tree) {}

  /// Starts a probe for `key`; returns true when the root descent was
  /// skipped (hint reuse). Same lifetime rule as IndexProbe::Seek.
  bool Seek(const IndexKey& key, WorkCounter* wc);

  /// Yields the next RID whose entry key equals the probed key.
  bool Next(WorkCounter* wc, Rid* rid);

  /// Forgets the remembered leaf (e.g. before the tree mutates).
  void ResetHint() { hint_.Reset(); }

  const BPlusTree* tree() const { return tree_; }

 private:
  const BPlusTree* tree_;
  BPlusTree::SeekHint hint_;
  BPlusTree::Iterator iter_;
  IndexKey key_;
};

}  // namespace ajr

// HeapTable: append-only in-memory row store addressed by RID.
//
// RIDs are assigned in insertion order (0, 1, 2, ...), which gives the table
// a well-defined physical scan order — the property the paper's
// driving-table switch exploits to build positional predicates for table
// scans ("RID > 100").
//
// Thread safety: the read path (num_rows, Get, Fetch, schema, name) is
// const, touches no hidden mutable state, and is safe for any number of
// concurrent readers — the concurrent query runtime shares one HeapTable
// across all workers. Append/Reserve are writers and must not run
// concurrently with anything else; the engine's contract is load first,
// serve after (see runtime/query_engine.h).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/work_counter.h"
#include "types/schema.h"

namespace ajr {

/// Row identifier: the slot number within a HeapTable, dense from 0.
using Rid = uint64_t;

/// Append-only in-memory table.
class HeapTable {
 public:
  HeapTable(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }

  /// Appends a row; returns its RID. InvalidArgument if the row does not
  /// match the schema.
  StatusOr<Rid> Append(Row row);

  /// Unchecked row access (rid must be < num_rows()).
  const Row& Get(Rid rid) const { return rows_[rid]; }

  /// Row access that charges kRowFetch work units.
  const Row& Fetch(Rid rid, WorkCounter* wc) const {
    ChargeWork(wc, WorkCounter::kRowFetch);
    return rows_[rid];
  }

  /// Reserves capacity for bulk loading.
  void Reserve(size_t n) { rows_.reserve(n); }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace ajr

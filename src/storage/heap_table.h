// HeapTable: append-only in-memory row store addressed by RID.
//
// RIDs are assigned in insertion order (0, 1, 2, ...), which gives the table
// a well-defined physical scan order — the property the paper's
// driving-table switch exploits to build positional predicates for table
// scans ("RID > 100").
//
// Storage format: rows live in fixed-stride typed pages, not vectors of
// Values. Each row is schema.num_columns() contiguous 8-byte cells (see
// types/row_layout.h for the cell codec); strings are interned once in a
// per-table StringPool and stored as 32-bit ids. Pages hold kPageRows rows
// each and are never reallocated, so a RowView stays valid for the table's
// lifetime. The hot read path hands out zero-copy RowViews; owned Rows are
// materialized only by the compat accessor Get().
//
// Thread safety: the read path (num_rows, Get, View, Fetch, schema, name,
// pool, layout) is const, touches no hidden mutable state, and is safe for
// any number of concurrent readers — the concurrent query runtime shares one
// HeapTable across all workers. Append/NewRow/Reserve are writers and must
// not run concurrently with anything else; the engine's contract is load
// first, serve after (see runtime/query_engine.h).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/work_counter.h"
#include "types/row_layout.h"
#include "types/row_view.h"
#include "types/schema.h"

namespace ajr {

/// Row identifier: the slot number within a HeapTable, dense from 0.
using Rid = uint64_t;

/// Append-only in-memory table over typed pages.
class HeapTable {
 public:
  /// Rows per page; power of two so rid -> (page, offset) is shift + mask.
  static constexpr size_t kPageRows = 4096;

  HeapTable(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)), layout_(schema_) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const RowLayout& layout() const { return layout_; }
  const StringPool& pool() const { return pool_; }
  size_t num_rows() const { return num_rows_; }

  /// Appends a row of Values; returns its RID. InvalidArgument if the row
  /// does not match the schema.
  StatusOr<Rid> Append(const Row& row);

  /// Streaming typed appender: writes cells straight into the page with no
  /// Value materialization. Slots must be written in schema order; Finish()
  /// checks arity and returns the RID. One open writer at a time.
  ///
  ///   Rid rid = table.NewRow().I64(id).Str("Mazda").F64(1.5).Finish();
  class RowWriter {
   public:
    RowWriter& I64(int64_t v) { return Put(DataType::kInt64, CellFromInt64(v)); }
    RowWriter& F64(double v) { return Put(DataType::kDouble, CellFromDouble(v)); }
    RowWriter& Bool(bool v) { return Put(DataType::kBool, CellFromBool(v)); }
    RowWriter& Str(std::string_view v) {
      return Put(DataType::kString, CellFromStringId(table_->pool_.Intern(v)));
    }
    Rid Finish();

   private:
    friend class HeapTable;
    RowWriter(HeapTable* table, uint64_t* cells) : table_(table), cells_(cells) {}
    RowWriter& Put(DataType t, uint64_t cell);

    HeapTable* table_;
    uint64_t* cells_;
    size_t slot_ = 0;
  };
  RowWriter NewRow();

  /// Zero-copy typed view of a row. Always bounds-checked (a stale Rid must
  /// abort, not read garbage — the check is one predictable branch).
  RowView View(Rid rid) const {
    AJR_CHECK(rid < num_rows_);
    return RowView(CellsFor(rid), &layout_, &pool_);
  }

  /// View access that charges kRowFetch work units (the executor hot path).
  RowView Fetch(Rid rid, WorkCounter* wc) const {
    ChargeWork(wc, WorkCounter::kRowFetch);
    AJR_CHECK(rid < num_rows_);
    return RowView(CellsFor(rid), &layout_, &pool_);
  }

  /// Materializes a row as owned Values (compat / cold paths; bounds-checked).
  Row Get(Rid rid) const { return View(rid).ToRow(); }

  /// Reserves page capacity for bulk loading.
  void Reserve(size_t n) { pages_.reserve((n + kPageRows - 1) / kPageRows); }

 private:
  static constexpr size_t kPageShift = 12;  // log2(kPageRows)
  static_assert(kPageRows == size_t{1} << kPageShift);
  static constexpr size_t kPageMask = kPageRows - 1;

  const uint64_t* CellsFor(Rid rid) const {
    return pages_[rid >> kPageShift].get() + (rid & kPageMask) * layout_.num_slots();
  }
  /// Cell span for the next row, growing pages as needed (write path).
  uint64_t* AllocRow();

  std::string name_;
  Schema schema_;
  RowLayout layout_;
  StringPool pool_;
  std::vector<std::unique_ptr<uint64_t[]>> pages_;
  size_t num_rows_ = 0;
  bool writer_open_ = false;
};

}  // namespace ajr

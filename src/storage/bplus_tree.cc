#include "storage/bplus_tree.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "common/check.h"
#include "common/string_util.h"

namespace ajr {

struct BPlusTree::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
  /// Total entries in this subtree. O(1) for leaves, O(children) for
  /// internal nodes — only used when rebuilding child_sizes at splits.
  virtual size_t TotalEntries() const = 0;
  bool is_leaf;
};

struct BPlusTree::LeafNode final : Node {
  LeafNode() : Node(true) {}
  size_t TotalEntries() const override { return entries.size(); }
  std::vector<EncodedEntry> entries;
  LeafNode* next = nullptr;
  // Lower separator bound of this leaf: the smallest entry the internal
  // levels can route here (has_low == false for the leftmost leaf, whose
  // bound is -inf). Lets a hinted seek decide whether a fresh root descent
  // would have reached this leaf directly or hopped from its predecessor —
  // the one bit needed to charge hinted probes exactly like fresh ones.
  EncodedEntry low{0, 0};
  bool has_low = false;
};

struct BPlusTree::InternalNode final : Node {
  InternalNode() : Node(false) {}
  size_t TotalEntries() const override {
    size_t total = 0;
    for (size_t s : child_sizes) total += s;
    return total;
  }
  // children.size() == separators.size() + 1; child i holds entries in
  // [separators[i-1], separators[i]).
  std::vector<EncodedEntry> separators;
  std::vector<std::unique_ptr<Node>> children;
  // child_sizes[i] == number of entries in children[i]'s subtree; kept
  // exact so key-range cardinalities cost O(height).
  std::vector<size_t> child_sizes;
};

int BPlusTree::CompareEntries(const EncodedEntry& a, const EncodedEntry& b) const {
  int c;
  if (key_type_ != DataType::kString) {
    c = a.key < b.key ? -1 : (a.key > b.key ? 1 : 0);
  } else {
    c = pool_->Compare(static_cast<uint32_t>(a.key), static_cast<uint32_t>(b.key));
  }
  if (c != 0) return c;
  return a.rid < b.rid ? -1 : (a.rid > b.rid ? 1 : 0);
}

int BPlusTree::CompareToProbe(const EncodedEntry& e, const IndexKey& key,
                              Rid rid) const {
  int c = -CompareProbe(key, e.key);
  if (c != 0) return c;
  return e.rid < rid ? -1 : (e.rid > rid ? 1 : 0);
}

// Index of the child a probe target belongs to: number of separators <= it.
size_t BPlusTree::ChildIndexFor(const std::vector<EncodedEntry>& separators,
                                const IndexKey& key, Rid rid) const {
  size_t lo = 0, hi = separators.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (CompareToProbe(separators[mid], key, rid) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

BPlusTree::BPlusTree(DataType key_type, size_t fanout, const StringPool* pool)
    : key_type_(key_type), fanout_(std::max<size_t>(fanout, 4)), pool_(pool) {
  if (key_type_ == DataType::kString && pool_ == nullptr) {
    owned_pool_ = std::make_unique<StringPool>();
    pool_ = owned_pool_.get();
  }
  root_ = std::make_unique<LeafNode>();
}

BPlusTree::~BPlusTree() = default;
BPlusTree::BPlusTree(BPlusTree&&) noexcept = default;
BPlusTree& BPlusTree::operator=(BPlusTree&&) noexcept = default;

uint64_t BPlusTree::EncodeForStore(const Value& key) {
  AJR_CHECK(key.type() == key_type_);
  switch (key_type_) {
    case DataType::kBool:
      return OrderEncodeBool(key.AsBool());
    case DataType::kInt64:
      return OrderEncodeInt64(key.AsInt64());
    case DataType::kDouble:
      return OrderEncodeDouble(key.AsDouble());
    case DataType::kString: {
      if (owned_pool_ != nullptr) return owned_pool_->Intern(key.AsString());
      // Shared-pool trees are built from table cells; every key must
      // already be interned.
      auto id = pool_->Find(key.AsString());
      AJR_CHECK(id.has_value());
      return *id;
    }
  }
  CheckFailed("unreachable DataType in EncodeForStore", __FILE__, __LINE__);
}

Value BPlusTree::DecodeKey(uint64_t stored) const {
  switch (key_type_) {
    case DataType::kBool:
      return Value(stored != 0);
    case DataType::kInt64:
      return Value(OrderDecodeInt64(stored));
    case DataType::kDouble:
      return Value(OrderDecodeDouble(stored));
    case DataType::kString:
      return Value(std::string(pool_->Get(static_cast<uint32_t>(stored))));
  }
  CheckFailed("unreachable DataType in DecodeKey", __FILE__, __LINE__);
}

void BPlusTree::Insert(const Value& key, Rid rid) {
  EncodedEntry entry{EncodeForStore(key), rid};

  // Recursive insert that reports a split (separator + new right sibling).
  struct SplitResult {
    EncodedEntry separator;
    std::unique_ptr<Node> right;
  };
  struct Inserter {
    const BPlusTree* tree;
    size_t fanout;
    std::optional<SplitResult> operator()(Node* node, EncodedEntry e) {
      if (node->is_leaf) {
        auto* leaf = static_cast<LeafNode*>(node);
        auto it = std::upper_bound(
            leaf->entries.begin(), leaf->entries.end(), e,
            [this](const EncodedEntry& a, const EncodedEntry& b) {
              return tree->CompareEntries(a, b) < 0;
            });
        leaf->entries.insert(it, e);
        if (leaf->entries.size() <= fanout) return std::nullopt;
        // Split the leaf in half; right half moves to a new node.
        auto right = std::make_unique<LeafNode>();
        size_t mid = leaf->entries.size() / 2;
        right->entries.assign(leaf->entries.begin() + mid, leaf->entries.end());
        leaf->entries.resize(mid);
        right->next = leaf->next;
        leaf->next = right.get();
        EncodedEntry sep = right->entries.front();
        right->low = sep;
        right->has_low = true;
        return SplitResult{sep, std::move(right)};
      }
      auto* inner = static_cast<InternalNode*>(node);
      size_t ci = ChildIndexForEntry(inner->separators, e);
      auto split = (*this)(inner->children[ci].get(), e);
      if (!split.has_value()) {
        inner->child_sizes[ci] += 1;
        return std::nullopt;
      }
      size_t right_size = split->right->TotalEntries();
      inner->separators.insert(inner->separators.begin() + ci, split->separator);
      inner->children.insert(inner->children.begin() + ci + 1,
                             std::move(split->right));
      inner->child_sizes[ci] = inner->children[ci]->TotalEntries();
      inner->child_sizes.insert(inner->child_sizes.begin() + ci + 1, right_size);
      if (inner->children.size() <= fanout) return std::nullopt;
      // Split the internal node; middle separator moves up.
      auto right = std::make_unique<InternalNode>();
      size_t mid_child = inner->children.size() / 2;  // first child of right node
      EncodedEntry up = inner->separators[mid_child - 1];
      right->separators.assign(inner->separators.begin() + mid_child,
                               inner->separators.end());
      for (size_t i = mid_child; i < inner->children.size(); ++i) {
        right->children.push_back(std::move(inner->children[i]));
        right->child_sizes.push_back(inner->child_sizes[i]);
      }
      inner->separators.resize(mid_child - 1);
      inner->children.resize(mid_child);
      inner->child_sizes.resize(mid_child);
      return SplitResult{up, std::move(right)};
    }
    // Entry-form ChildIndexFor (separators <= e).
    size_t ChildIndexForEntry(const std::vector<EncodedEntry>& separators,
                              const EncodedEntry& e) const {
      size_t lo = 0, hi = separators.size();
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (tree->CompareEntries(separators[mid], e) <= 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    }
  } inserter{this, fanout_};

  auto split = inserter(root_.get(), entry);
  if (split.has_value()) {
    auto new_root = std::make_unique<InternalNode>();
    new_root->child_sizes.push_back(root_->TotalEntries());
    new_root->child_sizes.push_back(split->right->TotalEntries());
    new_root->separators.push_back(split->separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
    ++height_;
  }
  ++size_;
}

Status BPlusTree::BulkLoad(std::vector<IndexEntry> sorted_entries) {
  std::vector<EncodedEntry> encoded;
  encoded.reserve(sorted_entries.size());
  for (const IndexEntry& e : sorted_entries) {
    if (e.key.type() != key_type_) {
      return Status::InvalidArgument(
          StrCat("BulkLoad key type ", DataTypeName(e.key.type()), " != index type ",
                 DataTypeName(key_type_)));
    }
    encoded.push_back({EncodeForStore(e.key), e.rid});
  }
  return BulkLoadEncoded(std::move(encoded));
}

Status BPlusTree::BulkLoadEncoded(std::vector<EncodedEntry> sorted_entries) {
  for (size_t i = 1; i < sorted_entries.size(); ++i) {
    if (CompareEntries(sorted_entries[i], sorted_entries[i - 1]) < 0) {
      return Status::InvalidArgument("BulkLoad input not sorted by (key, rid)");
    }
  }
  size_ = sorted_entries.size();
  // Build the leaf level.
  std::vector<std::unique_ptr<Node>> level;
  std::vector<EncodedEntry> level_firsts;
  const size_t per_leaf = std::max<size_t>(fanout_ * 2 / 3, 2);
  LeafNode* prev = nullptr;
  for (size_t i = 0; i < sorted_entries.size(); i += per_leaf) {
    auto leaf = std::make_unique<LeafNode>();
    size_t end = std::min(i + per_leaf, sorted_entries.size());
    leaf->entries.assign(sorted_entries.begin() + i, sorted_entries.begin() + end);
    if (i > 0) {
      leaf->low = leaf->entries.front();
      leaf->has_low = true;
    }
    if (prev != nullptr) prev->next = leaf.get();
    prev = leaf.get();
    level_firsts.push_back(leaf->entries.front());
    level.push_back(std::move(leaf));
  }
  if (level.empty()) {
    root_ = std::make_unique<LeafNode>();
    height_ = 1;
    return Status::OK();
  }
  // Build internal levels bottom-up.
  height_ = 1;
  const size_t per_node = std::max<size_t>(fanout_ * 2 / 3, 2);
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> next_level;
    std::vector<EncodedEntry> next_firsts;
    size_t i = 0;
    while (i < level.size()) {
      size_t end = std::min(i + per_node, level.size());
      // Avoid a degenerate 1-child trailing node by shrinking this group.
      if (end < level.size() && level.size() - end == 1 && end - i >= 2) end -= 1;
      auto inner = std::make_unique<InternalNode>();
      for (size_t j = i; j < end; ++j) {
        if (j > i) inner->separators.push_back(level_firsts[j]);
        inner->child_sizes.push_back(level[j]->TotalEntries());
        inner->children.push_back(std::move(level[j]));
      }
      next_firsts.push_back(level_firsts[i]);
      next_level.push_back(std::move(inner));
      i = end;
    }
    level = std::move(next_level);
    level_firsts = std::move(next_firsts);
    ++height_;
  }
  root_ = std::move(level.front());
  return Status::OK();
}

std::vector<size_t> BPlusTree::LeafSizes() const {
  std::vector<size_t> sizes;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = static_cast<const InternalNode*>(node)->children.front().get();
  }
  for (const auto* leaf = static_cast<const LeafNode*>(node); leaf != nullptr;
       leaf = leaf->next) {
    if (!leaf->entries.empty()) sizes.push_back(leaf->entries.size());
  }
  return sizes;
}

void BPlusTree::Probe(const IndexKey& key, WorkCounter* wc,
                      std::vector<Rid>* out) const {
  AJR_CHECK(key.type == key_type_);
  // Identical charge sequence to IndexProbe: one seek, then one charged
  // Next per returned match (the failing match test charges nothing).
  Iterator it = SeekEntry(key, /*rid=*/0, wc);
  while (it.Valid() && ProbeEquals(key, it.key_slot())) {
    out->push_back(it.rid());
    it.Next(wc);
  }
}

namespace {
/// Descent memory for the B+-tree's ProbeHinted: a SeekHint leaf.
class BtreeProbeState final : public Index::ProbeState {
 public:
  void Reset() override { hint.Reset(); }
  BPlusTree::SeekHint hint;
};
}  // namespace

std::unique_ptr<Index::ProbeState> BPlusTree::NewProbeState() const {
  return std::make_unique<BtreeProbeState>();
}

bool BPlusTree::ProbeHinted(const IndexKey& key, ProbeState* state,
                            WorkCounter* wc, std::vector<Rid>* out) const {
  AJR_CHECK(key.type == key_type_);
  auto* st = static_cast<BtreeProbeState*>(state);
  bool used_hint = false;
  Iterator it = SeekEntryHinted(key, /*rid=*/0, &st->hint, wc, &used_hint);
  while (it.Valid() && ProbeEquals(key, it.key_slot())) {
    out->push_back(it.rid());
    it.Next(wc);
  }
  return used_hint;
}

uint64_t BPlusTree::Iterator::key_slot() const {
  assert(Valid());
  return static_cast<const LeafNode*>(leaf_)->entries[slot_].key;
}

Value BPlusTree::Iterator::key() const {
  assert(Valid());
  return tree_->DecodeKey(key_slot());
}

Rid BPlusTree::Iterator::rid() const {
  assert(Valid());
  return static_cast<const LeafNode*>(leaf_)->entries[slot_].rid;
}

void BPlusTree::Iterator::Next(WorkCounter* wc) {
  assert(Valid());
  ChargeWork(wc, WorkCounter::kIndexEntryScan);
  auto* leaf = static_cast<LeafNode*>(leaf_);
  ++slot_;
  while (leaf != nullptr && slot_ >= leaf->entries.size()) {
    leaf = leaf->next;
    slot_ = 0;
    ChargeWork(wc, WorkCounter::kIndexNodeVisit);
  }
  leaf_ = leaf;
}

BPlusTree::Iterator BPlusTree::SeekFirst(WorkCounter* wc) const {
  const Node* node = root_.get();
  while (!node->is_leaf) {
    ChargeWork(wc, WorkCounter::kIndexNodeVisit);
    node = static_cast<const InternalNode*>(node)->children.front().get();
  }
  ChargeWork(wc, WorkCounter::kIndexNodeVisit);
  Iterator it;
  it.tree_ = this;
  auto* leaf = static_cast<const LeafNode*>(node);
  // Skip empty leaves (only the root can be empty).
  while (leaf != nullptr && leaf->entries.empty()) leaf = leaf->next;
  it.leaf_ = const_cast<LeafNode*>(leaf);
  it.slot_ = 0;
  return it;
}

BPlusTree::Iterator BPlusTree::SeekEntry(const IndexKey& key, Rid rid,
                                         WorkCounter* wc) const {
  const Node* node = root_.get();
  while (!node->is_leaf) {
    ChargeWork(wc, WorkCounter::kIndexNodeVisit);
    const auto* inner = static_cast<const InternalNode*>(node);
    node = inner->children[ChildIndexFor(inner->separators, key, rid)].get();
  }
  ChargeWork(wc, WorkCounter::kIndexNodeVisit);
  const auto* leaf = static_cast<const LeafNode*>(node);
  // First entry >= (key, rid).
  size_t lo = 0, hi = leaf->entries.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (CompareToProbe(leaf->entries[mid], key, rid) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  size_t slot = lo;
  while (leaf != nullptr && slot >= leaf->entries.size()) {
    leaf = leaf->next;
    slot = 0;
    ChargeWork(wc, WorkCounter::kIndexNodeVisit);
  }
  Iterator it;
  it.tree_ = this;
  it.leaf_ = const_cast<LeafNode*>(leaf);
  it.slot_ = slot;
  return it;
}

BPlusTree::Iterator BPlusTree::SeekEntryHinted(const IndexKey& key, Rid rid,
                                               SeekHint* hint, WorkCounter* wc,
                                               bool* used_hint) const {
  if (used_hint != nullptr) *used_hint = false;
  // How far past the hint leaf the target may sit before resuming costs
  // more than it saves; beyond it, descend fresh.
  constexpr size_t kMaxHintHops = 4;

  auto* leaf = static_cast<const LeafNode*>(hint->leaf_);
  if (leaf == nullptr || leaf->entries.empty() ||
      (leaf->has_low && CompareToProbe(leaf->low, key, rid) > 0)) {
    // No hint, or the target lies before the hint leaf's key range.
    Iterator it = SeekEntry(key, rid, wc);
    hint->leaf_ = it.leaf_;
    return it;
  }
  // Walk the leaf chain while the target is past the current leaf.
  size_t hops = 0;
  while (leaf != nullptr && CompareToProbe(leaf->entries.back(), key, rid) < 0) {
    if (++hops > kMaxHintHops) {
      Iterator it = SeekEntry(key, rid, wc);
      hint->leaf_ = it.leaf_;
      return it;
    }
#if defined(__GNUC__) || defined(__clang__)
    if (leaf->next != nullptr) __builtin_prefetch(leaf->next->entries.data());
#endif
    leaf = leaf->next;
  }
  Iterator it;
  it.tree_ = this;
  uint64_t as_if = height_ * WorkCounter::kIndexNodeVisit;
  if (leaf == nullptr) {
    // Past the last entry: a fresh descent would have reached the last leaf
    // and hopped off its end (one extra node visit).
    as_if += WorkCounter::kIndexNodeVisit;
  } else {
    // First entry >= (key, rid); it exists because the hop loop stopped with
    // the leaf's last entry >= the target.
    size_t lo = 0, hi = leaf->entries.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (CompareToProbe(leaf->entries[mid], key, rid) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    it.leaf_ = const_cast<LeafNode*>(leaf);
    it.slot_ = lo;
    // A fresh descent routes the target into the predecessor leaf exactly
    // when the target is below this leaf's lower separator bound; it then
    // hops here, charging one extra node visit.
    if (lo == 0 && leaf->has_low && CompareToProbe(leaf->low, key, rid) > 0) {
      as_if += WorkCounter::kIndexNodeVisit;
    }
  }
  ChargeWork(wc, as_if);
  hint->leaf_ = it.leaf_;
  if (used_hint != nullptr) *used_hint = true;
  return it;
}

BPlusTree::Iterator BPlusTree::SeekHinted(const IndexKey& key, bool inclusive,
                                          SeekHint* hint, WorkCounter* wc,
                                          bool* used_hint) const {
  AJR_CHECK(key.type == key_type_);
  return SeekEntryHinted(key, inclusive ? 0 : UINT64_MAX, hint, wc, used_hint);
}

BPlusTree::Iterator BPlusTree::SeekAfterHinted(const IndexKey& key, Rid rid,
                                               SeekHint* hint, WorkCounter* wc,
                                               bool* used_hint) const {
  AJR_CHECK(key.type == key_type_);
  if (rid == UINT64_MAX) return SeekHinted(key, /*inclusive=*/false, hint, wc, used_hint);
  return SeekEntryHinted(key, rid + 1, hint, wc, used_hint);
}

BPlusTree::Iterator BPlusTree::Seek(const IndexKey& key, bool inclusive,
                                    WorkCounter* wc) const {
  AJR_CHECK(key.type == key_type_);
  if (inclusive) return SeekEntry(key, 0, wc);
  return SeekEntry(key, UINT64_MAX, wc);
}

BPlusTree::Iterator BPlusTree::Seek(const Value& key, bool inclusive,
                                    WorkCounter* wc) const {
  return Seek(EncodeKey(key), inclusive, wc);
}

BPlusTree::Iterator BPlusTree::SeekAfter(const IndexKey& key, Rid rid,
                                         WorkCounter* wc) const {
  AJR_CHECK(key.type == key_type_);
  if (rid == UINT64_MAX) return Seek(key, /*inclusive=*/false, wc);
  return SeekEntry(key, rid + 1, wc);
}

BPlusTree::Iterator BPlusTree::SeekAfter(const Value& key, Rid rid,
                                         WorkCounter* wc) const {
  return SeekAfter(EncodeKey(key), rid, wc);
}

size_t BPlusTree::CountBefore(const IndexKey& key, Rid rid) const {
  size_t count = 0;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    const auto* inner = static_cast<const InternalNode*>(node);
    size_t ci = ChildIndexFor(inner->separators, key, rid);
    for (size_t i = 0; i < ci; ++i) count += inner->child_sizes[i];
    node = inner->children[ci].get();
  }
  const auto* leaf = static_cast<const LeafNode*>(node);
  size_t lo = 0, hi = leaf->entries.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (CompareToProbe(leaf->entries[mid], key, rid) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return count + lo;
}

size_t BPlusTree::CountKeyLess(const IndexKey& key) const {
  AJR_CHECK(key.type == key_type_);
  return CountBefore(key, 0);
}

size_t BPlusTree::CountKeyLessEqual(const IndexKey& key) const {
  AJR_CHECK(key.type == key_type_);
  return CountBefore(key, UINT64_MAX);
}

size_t BPlusTree::CountEntriesAfter(const IndexKey& key, Rid rid) const {
  AJR_CHECK(key.type == key_type_);
  size_t at_or_before =
      rid == UINT64_MAX ? CountKeyLessEqual(key) : CountBefore(key, rid + 1);
  return size_ - at_or_before;
}

Status BPlusTree::CheckInvariants() const {
  struct Checker {
    const BPlusTree* tree;
    size_t fanout;
    size_t expected_depth = 0;
    const LeafNode* first_leaf = nullptr;

    Status Check(const Node* node, size_t depth, const EncodedEntry* lo,
                 const EncodedEntry* hi) {
      if (node->is_leaf) {
        const auto* leaf = static_cast<const LeafNode*>(node);
        if (expected_depth == 0) expected_depth = depth;
        if (depth != expected_depth) return Status::Internal("leaves at unequal depth");
        if (first_leaf == nullptr) first_leaf = leaf;
        // The cached lower separator bound must mirror the separator chain:
        // absent on the leftmost leaf, equal to the routing bound elsewhere
        // (hinted seeks charge fresh-descent costs from it).
        if (leaf->has_low != (lo != nullptr)) {
          return Status::Internal("leaf low-bound presence out of sync");
        }
        if (lo != nullptr && tree->CompareEntries(leaf->low, *lo) != 0) {
          return Status::Internal("leaf low-bound differs from separator");
        }
        for (size_t i = 0; i < leaf->entries.size(); ++i) {
          if (i > 0 && tree->CompareEntries(leaf->entries[i], leaf->entries[i - 1]) < 0) {
            return Status::Internal("leaf entries out of order");
          }
          if (lo != nullptr && tree->CompareEntries(leaf->entries[i], *lo) < 0) {
            return Status::Internal("leaf entry below lower separator");
          }
          if (hi != nullptr && tree->CompareEntries(leaf->entries[i], *hi) >= 0) {
            return Status::Internal("leaf entry not below upper separator");
          }
        }
        return Status::OK();
      }
      const auto* inner = static_cast<const InternalNode*>(node);
      if (inner->children.size() != inner->separators.size() + 1) {
        return Status::Internal("separator/child count mismatch");
      }
      if (inner->children.size() > fanout) {
        return Status::Internal("internal node overfull");
      }
      if (inner->child_sizes.size() != inner->children.size()) {
        return Status::Internal("child_sizes/children count mismatch");
      }
      for (size_t i = 0; i < inner->children.size(); ++i) {
        if (inner->child_sizes[i] != inner->children[i]->TotalEntries()) {
          return Status::Internal("child_sizes out of sync with subtree");
        }
      }
      for (size_t i = 0; i < inner->children.size(); ++i) {
        const EncodedEntry* child_lo = i == 0 ? lo : &inner->separators[i - 1];
        const EncodedEntry* child_hi =
            i == inner->separators.size() ? hi : &inner->separators[i];
        AJR_RETURN_IF_ERROR(Check(inner->children[i].get(), depth + 1, child_lo, child_hi));
      }
      return Status::OK();
    }
  } checker{this, fanout_};

  AJR_RETURN_IF_ERROR(checker.Check(root_.get(), 1, nullptr, nullptr));

  // Leaf chain must enumerate exactly size_ entries in order.
  size_t count = 0;
  const LeafNode* leaf = checker.first_leaf;
  const EncodedEntry* prev = nullptr;
  while (leaf != nullptr) {
    for (const auto& e : leaf->entries) {
      if (prev != nullptr && CompareEntries(e, *prev) < 0) {
        return Status::Internal("leaf chain out of order");
      }
      prev = &e;
      ++count;
    }
    leaf = leaf->next;
  }
  if (count != size_) {
    return Status::Internal(
        StrCat("leaf chain has ", count, " entries, expected ", size_));
  }
  return Status::OK();
}

}  // namespace ajr

// IndexKey: a typed probe key for B+-tree traversals.
//
// The tree stores every key as one uint64 slot — order-encoded bits for
// numeric types (compare as plain integers), a StringPool id for strings
// (compare through the pool, ids carry no order). An IndexKey is the
// external form a probe hands to the tree: the numeric encoding plus, for
// strings, a view of the key bytes. String probes compare bytes against the
// tree's pool, so a probe built from one table's row can search another
// table's index (the join hot path) and literals need not be interned.
//
// The string_view is borrowed; the caller keeps the bytes alive for the
// duration of the tree call (probe keys from RowViews point into a table
// pool and are stable, keys from Values borrow the Value's buffer).

#pragma once

#include <cstdint>
#include <string_view>

#include "types/row_layout.h"
#include "types/row_view.h"
#include "types/value.h"

namespace ajr {

/// A typed key in probe form (see file comment for lifetime rules).
struct IndexKey {
  DataType type = DataType::kInt64;
  uint64_t enc = 0;       ///< order encoding (non-string types)
  std::string_view str;   ///< key bytes (string type)

  static IndexKey Int64(int64_t v) {
    return {DataType::kInt64, OrderEncodeInt64(v), {}};
  }
  static IndexKey Double(double v) {
    return {DataType::kDouble, OrderEncodeDouble(v), {}};
  }
  static IndexKey Bool(bool v) { return {DataType::kBool, OrderEncodeBool(v), {}}; }
  static IndexKey String(std::string_view s) { return {DataType::kString, 0, s}; }
};

/// Probe key for `v`; borrows the string buffer for string Values.
inline IndexKey EncodeKey(const Value& v) {
  switch (v.type()) {
    case DataType::kBool:
      return IndexKey::Bool(v.AsBool());
    case DataType::kInt64:
      return IndexKey::Int64(v.AsInt64());
    case DataType::kDouble:
      return IndexKey::Double(v.AsDouble());
    case DataType::kString:
      return IndexKey::String(v.AsString());
  }
  CheckFailed("unreachable DataType in EncodeKey", __FILE__, __LINE__);
}

/// Probe key for one cell of `row`; string bytes point into the row's pool.
inline IndexKey EncodeKeyFromCell(const RowView& row, size_t slot) {
  DataType t = row.type(slot);
  if (t == DataType::kString) return IndexKey::String(row.GetString(slot));
  return {t, OrderEncodeCell(row.raw(slot), t), {}};
}

}  // namespace ajr

// Column statistics, in two tiers mirroring Sec 5 of the paper:
//
//  * base stats — cardinality, min/max, number of distinct values. These are
//    the "simple and reliable statistics" (Sec 1) the static optimizer uses
//    with uniformity + independence assumptions.
//  * rich stats — top-k frequent values and an equi-depth histogram, the
//    "more sophisticated statistics, such as data distributions and frequent
//    values" of Sec 5.3. Optional; collected only when requested.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "types/value.h"

namespace ajr {

/// One (value, occurrence count) pair in a frequent-values sketch.
struct FrequentValue {
  Value value;
  size_t count = 0;
};

/// Equi-depth histogram: `bounds` has num_buckets+1 entries; bucket i covers
/// [bounds[i], bounds[i+1]] and holds ~rows/num_buckets rows. Only built for
/// orderable columns (all types are orderable here).
struct EquiDepthHistogram {
  std::vector<Value> bounds;
  size_t rows = 0;

  size_t num_buckets() const { return bounds.empty() ? 0 : bounds.size() - 1; }

  /// Estimated fraction of rows with value <= v (linear interpolation for
  /// numeric bucket interiors; bucket-granular for strings).
  double EstimateFractionLe(const Value& v) const;
};

/// Per-column statistics.
struct ColumnStats {
  std::optional<Value> min;
  std::optional<Value> max;
  /// Exact number of distinct values at ANALYZE time.
  size_t ndv = 0;

  /// Rich tier (empty unless ANALYZE ran with rich=true).
  std::vector<FrequentValue> frequent;  ///< sorted by count descending
  std::optional<EquiDepthHistogram> histogram;

  bool has_rich() const { return !frequent.empty() || histogram.has_value(); }
};

}  // namespace ajr

// Catalog: tables, indexes, and statistics.
//
// The catalog owns all storage objects. Indexes are built with BulkLoad
// after table population (BuildIndex), matching the paper's setting where
// "proper indexes are built on join columns" (Sec 3.1). ANALYZE computes
// per-column statistics in two tiers (see column_stats.h).
//
// Thread safety: the catalog follows a build-then-serve lifecycle. During
// the build phase (CreateTable / Append / BuildIndex / Analyze) it must be
// confined to one thread. Once built, the entire read surface — const
// GetTable, TableEntry's index/stats/schema lookups, and everything
// reachable from them (HeapTable/BPlusTree reads, see storage/) — is const
// with no interior mutability, so the concurrent query runtime shares one
// catalog across all workers without locking. DDL while queries are in
// flight is not supported.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/column_stats.h"
#include "common/status.h"
#include "storage/art_index.h"
#include "storage/bplus_tree.h"
#include "storage/heap_table.h"

namespace ajr {

/// A secondary index registered in the catalog. Both physical backends are
/// built over the same entries: the B+-tree is authoritative (ranges,
/// positional predicates, driving scans) and the ART serves point probes
/// when a query selects IndexBackend::kArt.
struct IndexInfo {
  std::string name;
  std::string column;      ///< indexed column name
  size_t column_idx = 0;   ///< resolved position in the table schema
  std::unique_ptr<BPlusTree> tree;
  std::unique_ptr<ArtIndex> art;  ///< point-probe twin of `tree`

  /// The Index serving point probes under `backend`, falling back to the
  /// B+-tree when the requested backend is unavailable. Legs needing
  /// ranges or positional predicates must use `tree` regardless (check
  /// SupportsRangeScan / SupportsPositional).
  const Index* ProbeIndex(IndexBackend backend) const {
    if (backend == IndexBackend::kArt && art != nullptr) return art.get();
    return tree.get();
  }
};

/// A table plus its indexes and statistics.
class TableEntry {
 public:
  TableEntry(std::string name, Schema schema)
      : table_(std::move(name), std::move(schema)) {}

  HeapTable& table() { return table_; }
  const HeapTable& table() const { return table_; }
  const std::string& name() const { return table_.name(); }
  const Schema& schema() const { return table_.schema(); }

  const std::vector<std::unique_ptr<IndexInfo>>& indexes() const { return indexes_; }

  /// The index on `column`, or nullptr if none exists.
  const IndexInfo* FindIndexOnColumn(const std::string& column) const;

  /// The index named `name`, or nullptr.
  const IndexInfo* FindIndexByName(const std::string& name) const;

  /// Statistics for `column`; nullptr before ANALYZE.
  const ColumnStats* GetColumnStats(const std::string& column) const;

  /// Table cardinality as known to the statistics subsystem (exact row
  /// count; the paper assumes base cardinalities are reliable, Sec 4.3.3).
  size_t StatsCardinality() const { return table_.num_rows(); }

 private:
  friend class Catalog;
  HeapTable table_;
  std::vector<std::unique_ptr<IndexInfo>> indexes_;
  std::unordered_map<std::string, ColumnStats> column_stats_;
};

/// Options for Catalog::Analyze.
struct AnalyzeOptions {
  /// Collect the rich tier (frequent values + histogram), Sec 5.3.
  bool rich = false;
  /// Number of frequent values kept per column (rich tier).
  size_t top_k = 10;
  /// Equi-depth histogram buckets per column (rich tier).
  size_t histogram_buckets = 20;
};

/// Owns every table; entry point for DDL, index builds, and ANALYZE.
class Catalog {
 public:
  /// Creates an empty table. AlreadyExists if the name is taken.
  StatusOr<TableEntry*> CreateTable(const std::string& name, Schema schema);

  /// Looks up a table. NotFound if absent.
  StatusOr<TableEntry*> GetTable(const std::string& name);
  StatusOr<const TableEntry*> GetTable(const std::string& name) const;

  /// Builds (or rebuilds) a B+-tree index on `column` of `table_name` from
  /// current table contents via bulk load.
  Status BuildIndex(const std::string& table_name, const std::string& column,
                    const std::string& index_name, size_t fanout = 64);

  /// Computes column statistics for one table.
  Status Analyze(const std::string& table_name, const AnalyzeOptions& options = {});

  /// Computes column statistics for every table.
  Status AnalyzeAll(const AnalyzeOptions& options = {});

  std::vector<std::string> TableNames() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<TableEntry>> tables_;
};

}  // namespace ajr

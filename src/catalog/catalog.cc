#include "catalog/catalog.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"

namespace ajr {

const IndexInfo* TableEntry::FindIndexOnColumn(const std::string& column) const {
  for (const auto& idx : indexes_) {
    if (idx->column == column) return idx.get();
  }
  return nullptr;
}

const IndexInfo* TableEntry::FindIndexByName(const std::string& name) const {
  for (const auto& idx : indexes_) {
    if (idx->name == name) return idx.get();
  }
  return nullptr;
}

const ColumnStats* TableEntry::GetColumnStats(const std::string& column) const {
  auto it = column_stats_.find(column);
  return it == column_stats_.end() ? nullptr : &it->second;
}

StatusOr<TableEntry*> Catalog::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists(StrCat("table '", name, "' already exists"));
  }
  auto entry = std::make_unique<TableEntry>(name, std::move(schema));
  TableEntry* raw = entry.get();
  tables_.emplace(name, std::move(entry));
  return raw;
}

StatusOr<TableEntry*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table '", name, "' does not exist"));
  }
  return it->second.get();
}

StatusOr<const TableEntry*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table '", name, "' does not exist"));
  }
  return static_cast<const TableEntry*>(it->second.get());
}

Status Catalog::BuildIndex(const std::string& table_name, const std::string& column,
                           const std::string& index_name, size_t fanout) {
  AJR_ASSIGN_OR_RETURN(TableEntry * entry, GetTable(table_name));
  if (entry->FindIndexByName(index_name) != nullptr) {
    return Status::AlreadyExists(StrCat("index '", index_name, "' already exists"));
  }
  AJR_ASSIGN_OR_RETURN(size_t col_idx, entry->schema().ColumnIndex(column));

  const HeapTable& table = entry->table();
  DataType key_type = entry->schema().column(col_idx).type;

  // Build entries straight from page cells: numeric keys order-encode, and
  // string keys reuse the table pool's ids (the tree shares the pool), so
  // no Value is materialized per row.
  std::vector<BPlusTree::EncodedEntry> entries;
  entries.reserve(table.num_rows());
  if (key_type == DataType::kString) {
    for (Rid rid = 0; rid < table.num_rows(); ++rid) {
      entries.push_back({table.View(rid).GetStringId(col_idx), rid});
    }
    const StringPool& pool = table.pool();
    std::sort(entries.begin(), entries.end(),
              [&pool](const BPlusTree::EncodedEntry& a, const BPlusTree::EncodedEntry& b) {
                int c = pool.Compare(static_cast<uint32_t>(a.key),
                                     static_cast<uint32_t>(b.key));
                if (c != 0) return c < 0;
                return a.rid < b.rid;
              });
  } else {
    for (Rid rid = 0; rid < table.num_rows(); ++rid) {
      entries.push_back({OrderEncodeCell(table.View(rid).raw(col_idx), key_type), rid});
    }
    std::sort(entries.begin(), entries.end(),
              [](const BPlusTree::EncodedEntry& a, const BPlusTree::EncodedEntry& b) {
                if (a.key != b.key) return a.key < b.key;
                return a.rid < b.rid;
              });
  }

  auto info = std::make_unique<IndexInfo>();
  info->name = index_name;
  info->column = column;
  info->column_idx = col_idx;
  info->tree = std::make_unique<BPlusTree>(
      key_type, fanout, key_type == DataType::kString ? &table.pool() : nullptr);
  AJR_RETURN_IF_ERROR(info->tree->BulkLoadEncoded(std::move(entries)));
  // The ART twin is read-only over the loaded tree; building it here keeps
  // the build-then-serve lifecycle (no runtime mutation, so concurrent
  // readers stay race-free on either backend).
  info->art = ArtIndex::BuildFromTree(*info->tree);
  entry->indexes_.push_back(std::move(info));
  return Status::OK();
}

namespace {

ColumnStats ComputeColumnStats(const HeapTable& table, size_t col_idx,
                               const AnalyzeOptions& options) {
  ColumnStats stats;
  std::unordered_map<Value, size_t, ValueHash> counts;
  for (Rid rid = 0; rid < table.num_rows(); ++rid) {
    Value v = table.View(rid).GetValue(col_idx);
    if (!stats.min.has_value() || v < *stats.min) stats.min = v;
    if (!stats.max.has_value() || v > *stats.max) stats.max = v;
    counts[std::move(v)]++;
  }
  stats.ndv = counts.size();
  if (!options.rich || counts.empty()) return stats;

  // Frequent values: top-k by count.
  std::vector<FrequentValue> freq;
  freq.reserve(counts.size());
  for (const auto& [v, c] : counts) freq.push_back({v, c});
  std::sort(freq.begin(), freq.end(), [](const FrequentValue& a, const FrequentValue& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.value < b.value;  // deterministic tie-break
  });
  if (freq.size() > options.top_k) freq.resize(options.top_k);
  stats.frequent = std::move(freq);

  // Equi-depth histogram over the sorted multiset of values.
  std::vector<Value> sorted;
  sorted.reserve(table.num_rows());
  for (Rid rid = 0; rid < table.num_rows(); ++rid) {
    sorted.push_back(table.View(rid).GetValue(col_idx));
  }
  std::sort(sorted.begin(), sorted.end());
  size_t buckets = std::min(options.histogram_buckets, sorted.size());
  if (buckets > 0) {
    EquiDepthHistogram hist;
    hist.rows = sorted.size();
    hist.bounds.push_back(sorted.front());
    for (size_t b = 1; b < buckets; ++b) {
      size_t pos = b * sorted.size() / buckets;
      hist.bounds.push_back(sorted[pos]);
    }
    hist.bounds.push_back(sorted.back());
    stats.histogram = std::move(hist);
  }
  return stats;
}

}  // namespace

Status Catalog::Analyze(const std::string& table_name, const AnalyzeOptions& options) {
  AJR_ASSIGN_OR_RETURN(TableEntry * entry, GetTable(table_name));
  entry->column_stats_.clear();
  const Schema& schema = entry->schema();
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    entry->column_stats_[schema.column(i).name] =
        ComputeColumnStats(entry->table(), i, options);
  }
  return Status::OK();
}

Status Catalog::AnalyzeAll(const AnalyzeOptions& options) {
  for (const auto& [name, entry] : tables_) {
    AJR_RETURN_IF_ERROR(Analyze(name, options));
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

double EquiDepthHistogram::EstimateFractionLe(const Value& v) const {
  if (bounds.size() < 2 || rows == 0) return 0.5;
  if (v < bounds.front()) return 0.0;
  if (v >= bounds.back()) return 1.0;
  size_t buckets = bounds.size() - 1;
  // Find the bucket containing v.
  for (size_t b = 0; b < buckets; ++b) {
    if (v >= bounds[b] && v < bounds[b + 1]) {
      double base = static_cast<double>(b) / buckets;
      double within = 0.5;  // default: half the bucket
      // Linear interpolation for numeric keys with distinct bounds.
      DataType t = bounds[b].type();
      if ((t == DataType::kInt64 || t == DataType::kDouble) &&
          bounds[b + 1].AsNumeric() > bounds[b].AsNumeric()) {
        within = (v.AsNumeric() - bounds[b].AsNumeric()) /
                 (bounds[b + 1].AsNumeric() - bounds[b].AsNumeric());
      }
      return base + within / buckets;
    }
  }
  return 1.0;
}

}  // namespace ajr

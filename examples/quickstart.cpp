// Quickstart: build a tiny database, declare a join query, plan it, and run
// it with adaptive join reordering.
//
//   $ ./build/examples/quickstart
//
// The example walks the whole public API surface: Catalog -> tables ->
// indexes -> statistics -> JoinQuery -> Planner -> PipelineExecutor.

#include <cstdio>

#include "adaptive/controller.h"
#include "catalog/catalog.h"
#include "exec/pipeline_executor.h"
#include "optimize/planner.h"

using namespace ajr;

namespace {

Status Run() {
  // 1. Create a catalog with two tables.
  Catalog catalog;
  AJR_ASSIGN_OR_RETURN(
      TableEntry * users,
      catalog.CreateTable("users", Schema({{"id", DataType::kInt64},
                                           {"name", DataType::kString},
                                           {"city", DataType::kString}})));
  AJR_ASSIGN_OR_RETURN(
      TableEntry * orders,
      catalog.CreateTable("orders", Schema({{"id", DataType::kInt64},
                                            {"userid", DataType::kInt64},
                                            {"amount", DataType::kInt64}})));

  // 2. Load rows (RIDs are assigned in insertion order).
  const char* cities[] = {"Berlin", "Paris", "Tokyo"};
  for (int i = 0; i < 300; ++i) {
    AJR_RETURN_IF_ERROR(users->table()
                            .Append({Value(i), Value("user_" + std::to_string(i)),
                                     Value(cities[i % 3])})
                            .status());
  }
  for (int i = 0; i < 900; ++i) {
    AJR_RETURN_IF_ERROR(
        orders->table()
            .Append({Value(i), Value(i % 300), Value(int64_t{10} + i % 490)})
            .status());
  }

  // 3. Build B+-tree indexes on join and predicate columns, then ANALYZE.
  AJR_RETURN_IF_ERROR(catalog.BuildIndex("users", "id", "users_id"));
  AJR_RETURN_IF_ERROR(catalog.BuildIndex("users", "city", "users_city"));
  AJR_RETURN_IF_ERROR(catalog.BuildIndex("orders", "userid", "orders_userid"));
  AJR_RETURN_IF_ERROR(catalog.BuildIndex("orders", "amount", "orders_amount"));
  AJR_RETURN_IF_ERROR(catalog.AnalyzeAll());

  // 4. Declare the query:
  //    SELECT u.name, o.amount FROM users u, orders o
  //    WHERE o.userid = u.id AND u.city = 'Paris' AND o.amount < 50.
  JoinQuery query;
  query.name = "quickstart";
  query.tables = {{"u", "users"}, {"o", "orders"}};
  query.edges = {{1, "userid", 0, "id", 0}};
  query.local_predicates = {ColCmp("city", CompareOp::kEq, Value("Paris")),
                            ColCmp("amount", CompareOp::kLt, Value(int64_t{50}))};
  query.output = {{0, "name"}, {1, "amount"}};

  // 5. Plan (one pipelined NLJN plan + switchable access plans) and execute
  //    with run-time adaptation enabled (the defaults: c = 10, w = 1000).
  Planner planner(&catalog);
  AJR_ASSIGN_OR_RETURN(auto plan, planner.Plan(query));
  std::printf("initial join order:");
  for (size_t t : plan->initial_order) {
    std::printf(" %s", plan->query.tables[t].alias.c_str());
  }
  std::printf("  (estimated cost %.0f work units)\n", plan->est_cost);

  PipelineExecutor executor(plan.get(), AdaptiveOptions{});
  size_t shown = 0;
  AJR_ASSIGN_OR_RETURN(ExecStats stats, executor.Execute([&](const Row& row) {
    if (shown++ < 5) {
      std::printf("  %s paid %s\n", row[0].ToString().c_str(),
                  row[1].ToString().c_str());
    }
  }));
  std::printf("... %lu rows total, %lu work units, %lu adaptive moves\n",
              static_cast<unsigned long>(stats.rows_out),
              static_cast<unsigned long>(stats.work_units),
              static_cast<unsigned long>(stats.order_switches()));
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

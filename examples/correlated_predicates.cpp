// Example 2 from the paper: correlated predicates break the independence
// assumption, and run-time monitoring fixes the estimate.
//
//   SELECT o.Name, c.Year FROM OWNER o, CAR c
//   WHERE c.OwnerID = o.ID AND c.Make = 'Mazda' AND c.Model = '323'
//     AND o.Country3 = 'EG' AND o.City = 'Cairo';
//
// '323' is only built by Mazda, and Cairo is only in Egypt, so the actual
// combined selectivities equal the single-column ones — the optimizer's
// product rule underestimates by an order of magnitude (the paper reports
// ~13x for its DMV instance). This example prints estimate-vs-actual for
// each statistics tier and then shows the adaptive executor correcting the
// resulting plan at run-time.
//
//   $ ./build/examples/correlated_predicates [owners]

#include <cstdio>
#include <cstdlib>

#include "exec/pipeline_executor.h"
#include "expr/evaluator.h"
#include "optimize/planner.h"
#include "workload/dmv.h"
#include "workload/templates.h"

using namespace ajr;

namespace {

// Actual fraction of rows of `entry` satisfying `predicate`.
double ActualSelectivity(const TableEntry& entry, const ExprPtr& predicate) {
  auto bound = BindPredicate(predicate, entry.schema());
  if (!bound.ok()) return 0;
  size_t hits = 0;
  for (Rid r = 0; r < entry.table().num_rows(); ++r) {
    if ((*bound)->Eval(entry.table().Get(r))) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(entry.table().num_rows());
}

}  // namespace

int main(int argc, char** argv) {
  DmvConfig config;
  config.num_owners = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  config.rich_stats = true;  // so the kRich tier has something to consult
  Catalog catalog;
  auto cards = GenerateDmv(&catalog, config);
  if (!cards.ok()) {
    std::fprintf(stderr, "%s\n", cards.status().ToString().c_str());
    return 1;
  }

  JoinQuery query = DmvQueryGenerator::Example2();
  std::printf("%s\n\n", query.ToString().c_str());

  const TableEntry& car = **catalog.GetTable("car");
  const TableEntry& owner = **catalog.GetTable("owner");

  std::printf("%-34s %10s %10s %10s %10s\n", "predicate", "minimal", "base", "rich",
              "actual");
  struct Case {
    const char* label;
    const TableEntry* table;
    ExprPtr predicate;
  };
  const Case cases[] = {
      {"c.make='Mazda' AND c.model='323'", &car, query.local_predicates[1]},
      {"o.country3='EG' AND o.city='Cairo'", &owner, query.local_predicates[0]},
  };
  for (const auto& c : cases) {
    double actual = ActualSelectivity(*c.table, c.predicate);
    std::printf("%-34s %9.4f%% %9.4f%% %9.4f%% %9.4f%%\n", c.label,
                100 * SelectivityEstimator(StatsTier::kMinimal)
                          .EstimateLocal(*c.table, c.predicate),
                100 * SelectivityEstimator(StatsTier::kBase)
                          .EstimateLocal(*c.table, c.predicate),
                100 * SelectivityEstimator(StatsTier::kRich)
                          .EstimateLocal(*c.table, c.predicate),
                100 * actual);
  }
  std::printf("\nEvery tier multiplies the conjunct selectivities "
              "(independence), so all of them\nunderestimate the correlated "
              "pairs; only the run-time monitors see the truth.\n\n");

  // Show the executor discovering the correct selectivities.
  Planner planner(&catalog, PlannerOptions{StatsTier::kMinimal});
  auto plan = planner.Plan(query);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  for (bool adaptive : {false, true}) {
    AdaptiveOptions options;
    options.reorder_inners = adaptive;
    options.reorder_driving = adaptive;
    PipelineExecutor exec(plan->get(), options);
    auto stats = exec.Execute(nullptr);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8s: %8.2f ms, %8lu work units, %4lu rows, %lu adaptive moves\n",
                adaptive ? "adaptive" : "static", stats->wall_seconds * 1e3,
                static_cast<unsigned long>(stats->work_units),
                static_cast<unsigned long>(stats->rows_out),
                static_cast<unsigned long>(stats->order_switches()));
    for (const auto& event : stats->events) {
      std::printf("    %s\n", event.c_str());
    }
  }
  return 0;
}

// Example 1 from the paper, end to end: accidents involving Chevrolets and
// Mercedes in Germany.
//
//   SELECT o.name, a.driver FROM Owner o, Car c, Demographics d, Accidents a
//   WHERE c.ownerid = o.id AND o.id = d.ownerid AND c.id = a.carid
//     AND (c.make = 'Chevrolet' OR c.make = 'Mercedes')
//     AND o.country1 = 'Germany' AND d.salary < 50000;
//
// The paper's point: while scanning Chevrolets, the Owner predicate filters
// best; while scanning Mercedes (luxury cars, wealthy owners), the
// Demographics salary predicate filters best — no static order is right for
// the whole scan. This example runs the query on the synthetic DMV data set
// with and without adaptation and prints the adaptation event log.
//
//   $ ./build/examples/accident_analysis [owners]

#include <cstdio>
#include <cstdlib>

#include "exec/pipeline_executor.h"
#include "optimize/planner.h"
#include "workload/dmv.h"
#include "workload/templates.h"

using namespace ajr;

int main(int argc, char** argv) {
  DmvConfig config;
  config.num_owners = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  std::printf("Generating DMV data set (%zu owners)...\n", config.num_owners);
  Catalog catalog;
  auto cards = GenerateDmv(&catalog, config);
  if (!cards.ok()) {
    std::fprintf(stderr, "%s\n", cards.status().ToString().c_str());
    return 1;
  }
  std::printf("  owner=%zu car=%zu demographics=%zu accidents=%zu\n\n", cards->owner,
              cards->car, cards->demographics, cards->accidents);

  JoinQuery query = DmvQueryGenerator::Example1();
  std::printf("%s\n\n", query.ToString().c_str());

  // The paper's baseline: the optimizer knows table sizes only.
  Planner planner(&catalog, PlannerOptions{StatsTier::kMinimal});
  auto plan = planner.Plan(query);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }

  auto run = [&](const char* label, AdaptiveOptions options) {
    PipelineExecutor exec(plan->get(), options);
    auto stats = exec.Execute(nullptr);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("%-10s: %8.2f ms  %9lu work units  %5lu rows  order", label,
                stats->wall_seconds * 1e3, static_cast<unsigned long>(stats->work_units),
                static_cast<unsigned long>(stats->rows_out));
    for (size_t t : stats->final_order) {
      std::printf(" %s", plan->get()->query.tables[t].alias.c_str());
    }
    std::printf("\n");
    for (const auto& event : stats->events) {
      std::printf("    %s\n", event.c_str());
    }
    return stats->work_units;
  };

  AdaptiveOptions off;
  off.reorder_inners = false;
  off.reorder_driving = false;
  uint64_t base = run("static", off);
  uint64_t adaptive = run("adaptive", AdaptiveOptions{});
  if (adaptive < base) {
    std::printf("\nAdaptive reordering did %.1f%% less work than the static plan.\n",
                100.0 * (1.0 - static_cast<double>(adaptive) / base));
  } else {
    std::printf("\nNo improvement on this instance (static plan was already good).\n");
  }
  return 0;
}

// Mid-scan adaptation under value-dependent skew (the "moment of symmetry"
// demo): a driving index scan whose optimal inner order CHANGES PARTWAY
// through the scan.
//
// We build a two-segment table: rows with grp = 'A' join heavily with T1
// and barely with T2; rows with grp = 'B' do the opposite. A static plan
// must pick one inner order for the whole scan; the adaptive executor
// reorders at a depleted state when the scan crosses from the A-segment to
// the B-segment — the paper's extension of Eddies' moments of symmetry to
// indexed nested-loop joins (Sec 4.1).
//
//   $ ./build/examples/streaming_skew

#include <cstdio>

#include "exec/pipeline_executor.h"
#include "optimize/planner.h"

using namespace ajr;

namespace {

Status Run() {
  Catalog catalog;
  AJR_ASSIGN_OR_RETURN(TableEntry * facts,
                       catalog.CreateTable("facts", Schema({{"id", DataType::kInt64},
                                                            {"grp", DataType::kString},
                                                            {"k1", DataType::kInt64},
                                                            {"k2", DataType::kInt64}})));
  AJR_ASSIGN_OR_RETURN(TableEntry * dim1,
                       catalog.CreateTable("dim1", Schema({{"k", DataType::kInt64}})));
  AJR_ASSIGN_OR_RETURN(TableEntry * dim2,
                       catalog.CreateTable("dim2", Schema({{"k", DataType::kInt64}})));

  // Each dim holds keys 0..19999 once (large, so the planner drives facts).
  for (int i = 0; i < 20000; ++i) {
    AJR_RETURN_IF_ERROR(dim1->table().Append({Value(i)}).status());
    AJR_RETURN_IF_ERROR(dim2->table().Append({Value(i)}).status());
  }
  // Segment A (ids 0..4999): k1 always hits dim1; k2 misses dim2 except for
  // every 10th row (k2 = 90000+i otherwise). Segment B flips the roles.
  // The selective join therefore changes sides exactly at id 5000.
  for (int i = 0; i < 10000; ++i) {
    bool segment_a = i < 5000;
    int64_t hit = i % 1000;
    int64_t mostly_miss = i % 10 == 0 ? i % 1000 : 90000 + i;
    AJR_RETURN_IF_ERROR(facts->table()
                            .Append({Value(i), Value(segment_a ? "A" : "B"),
                                     Value(segment_a ? hit : mostly_miss),
                                     Value(segment_a ? mostly_miss : hit)})
                            .status());
  }
  AJR_RETURN_IF_ERROR(catalog.BuildIndex("facts", "id", "facts_id"));
  AJR_RETURN_IF_ERROR(catalog.BuildIndex("facts", "k1", "facts_k1"));
  AJR_RETURN_IF_ERROR(catalog.BuildIndex("facts", "k2", "facts_k2"));
  AJR_RETURN_IF_ERROR(catalog.BuildIndex("dim1", "k", "dim1_k"));
  AJR_RETURN_IF_ERROR(catalog.BuildIndex("dim2", "k", "dim2_k"));
  AJR_RETURN_IF_ERROR(catalog.AnalyzeAll());

  // SELECT f.id FROM facts f, dim1 x, dim2 y
  // WHERE f.k1 = x.k AND f.k2 = y.k AND f.id >= 0   (drives facts in order)
  JoinQuery query;
  query.name = "streaming_skew";
  query.tables = {{"f", "facts"}, {"x", "dim1"}, {"y", "dim2"}};
  query.edges = {{0, "k1", 1, "k", 0}, {0, "k2", 2, "k", 1}};
  query.local_predicates = {ColCmp("id", CompareOp::kGe, Value(int64_t{0})), nullptr,
                            nullptr};
  query.output = {{0, "id"}};

  Planner planner(&catalog);
  AJR_ASSIGN_OR_RETURN(auto plan, planner.Plan(query));

  for (bool adaptive : {false, true}) {
    AdaptiveOptions options;
    options.reorder_inners = adaptive;
    options.reorder_driving = false;  // isolate the inner-reorder effect
    PipelineExecutor exec(plan.get(), options);
    AJR_ASSIGN_OR_RETURN(ExecStats stats, exec.Execute(nullptr));
    std::printf("%-8s: %8lu work units, %lu rows, %lu inner reorders\n",
                adaptive ? "adaptive" : "static",
                static_cast<unsigned long>(stats.work_units),
                static_cast<unsigned long>(stats.rows_out),
                static_cast<unsigned long>(stats.inner_reorders));
    for (const auto& event : stats.events) {
      std::printf("    %s\n", event.c_str());
    }
  }
  std::printf("\nThe reorder events should cluster around driving row ~5000, where\n"
              "the scan crosses from the A-segment into the B-segment.\n");
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

// Engine server demo: the concurrent query runtime end to end.
//
//   $ ./build/examples/engine_server [--dop=N] [--policy=rank|regret|static]
//                                    [--index=btree|art]
//                                    [--share=off|scan|cache|both]
//
// Builds a small DMV database, starts a QueryEngine with four workers, and
// plays a short serving scenario: a burst of template queries answered
// concurrently, one query cancelled mid-flight, one submitted with a
// deadline it cannot meet. With --dop=N each query additionally runs
// morsel-parallel: N worker pipelines split the driving scan and share
// run-time reoptimization through a common coordinator. With --share the
// burst's queries attach to the engine's cross-query sharing surfaces:
// `scan` rides one physical driving-scan pass per table across concurrent
// queries (runtime/shared_scan.h), `cache` pools probe results in the
// striped SharedProbeCache, `both` enables the two together. Finishes with
// the engine's metrics snapshot — the process-wide view of everything that
// just happened, including how often the adaptive executor reordered
// joins across the workload and how effective parallelism and sharing were.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "adaptive/policy.h"
#include "storage/index.h"
#include "common/metrics.h"
#include "runtime/query_engine.h"
#include "workload/dmv.h"
#include "workload/templates.h"

using namespace ajr;

namespace {

Status Run(size_t dop, PolicyKind policy, IndexBackend backend,
           bool share_scan, bool share_cache) {
  // 1. Build phase: load the catalog before serving (the engine's
  //    thread-safety contract: no catalog writes while queries run).
  std::printf("loading DMV data set...\n");
  Catalog catalog;
  DmvConfig config;
  config.num_owners = 20000;
  AJR_RETURN_IF_ERROR(GenerateDmv(&catalog, config).status());

  // 2. Serve phase: a four-worker engine with a private metrics registry.
  MetricsRegistry metrics;
  QueryEngineOptions options;
  options.num_workers = 4;
  options.metrics = &metrics;
  QueryEngine engine(&catalog, options);
  DmvQueryGenerator gen(&catalog);

  // 3. A burst of concurrent queries: two instances of each template.
  const char* share_name = share_scan && share_cache ? "both"
                           : share_scan              ? "scan"
                           : share_cache             ? "cache"
                                                     : "off";
  std::printf("serving a burst of 10 template queries on %zu workers"
              " (intra-query dop=%zu, policy=%s, index=%s, share=%s)...\n",
              engine.num_workers(), dop, PolicyKindName(policy),
              IndexBackendName(backend), share_name);
  std::vector<QueryHandle> burst;
  for (int template_id = 1; template_id <= kNumFourTableTemplates; ++template_id) {
    for (size_t variant = 0; variant < 2; ++variant) {
      // With sharing on, the two instances of a template are identical —
      // concurrent identical queries are the traffic shape scan/cache
      // sharing exists for (a dashboard refreshed by many clients).
      const size_t v = share_scan || share_cache ? 0 : variant;
      AJR_ASSIGN_OR_RETURN(JoinQuery q, gen.Generate(template_id, v));
      QuerySpec spec;
      spec.query = std::move(q);
      spec.adaptive.policy = policy;
      spec.adaptive.index_backend = backend;
      spec.dop = dop;
      spec.share_scan = share_scan;
      spec.share_cache = share_cache;
      AJR_ASSIGN_OR_RETURN(QueryHandle h, engine.Submit(std::move(spec)));
      burst.push_back(std::move(h));
    }
  }
  for (const QueryHandle& h : burst) {
    const QueryResult& r = h.Wait();
    std::printf("  %-7s %-18s rows=%-7llu switches=%llu\n", h.name().c_str(),
                r.status.ToString().c_str(),
                static_cast<unsigned long long>(r.stats.rows_out),
                static_cast<unsigned long long>(r.stats.order_switches()));
  }

  // 4. Cancellation: stop a running query from the submitting thread.
  AJR_ASSIGN_OR_RETURN(JoinQuery cancel_me, gen.Generate(3, 7));
  QuerySpec cancel_spec;
  cancel_spec.query = std::move(cancel_me);
  cancel_spec.adaptive.policy = policy;
  cancel_spec.adaptive.index_backend = backend;
  AJR_ASSIGN_OR_RETURN(QueryHandle cancelled, engine.Submit(std::move(cancel_spec)));
  cancelled.Cancel();
  std::printf("cancelled query  -> %s\n",
              cancelled.Wait().status.ToString().c_str());

  // 5. Deadline: a query that cannot finish in 1 microsecond times out with
  //    a distinct status.
  AJR_ASSIGN_OR_RETURN(JoinQuery slow, gen.Generate(1, 11));
  QuerySpec deadline_spec;
  deadline_spec.query = std::move(slow);
  deadline_spec.adaptive.policy = policy;
  deadline_spec.adaptive.index_backend = backend;
  deadline_spec.timeout = std::chrono::milliseconds(0);
  AJR_ASSIGN_OR_RETURN(QueryHandle timed_out, engine.Submit(std::move(deadline_spec)));
  std::printf("deadline query   -> %s\n",
              timed_out.Wait().status.ToString().c_str());

  engine.Shutdown();
  std::printf("\nmetrics snapshot:\n%s", metrics.Snapshot().c_str());

  // 6. Probe-path effectiveness: the exec.probe_* counters the executors
  //    flushed above, folded into the two numbers an operator would watch —
  //    memoization hit rate and root-to-leaf descents avoided per batch key.
  auto counter = [&metrics](const char* name) -> uint64_t {
    const Counter* c = metrics.FindCounter(name);
    return c != nullptr ? c->value() : 0;
  };
  uint64_t hits = counter("exec.probe_cache_hits");
  uint64_t misses = counter("exec.probe_cache_misses");
  uint64_t keys = counter("exec.probe_batch_keys");
  uint64_t saved = counter("exec.probe_descents_saved");
  std::printf("\nprobe path [%s]: %llu batch keys, cache hit rate %.1f%%, "
              "%.1f%% of descents avoided\n",
              IndexBackendName(backend), (unsigned long long)keys,
              hits + misses > 0 ? 100.0 * hits / (hits + misses) : 0.0,
              keys > 0 ? 100.0 * saved / keys : 0.0);

  // 7. Parallel effectiveness: how much intra-query parallelism the fleet
  //    actually achieved. parallel_workers counts workers that processed
  //    at least one morsel, so workers-per-query below the configured dop
  //    means the pool was busy (the lease degrades instead of blocking) or
  //    the scans were too short to split.
  uint64_t pqueries = counter("exec.parallel_queries");
  uint64_t pworkers = counter("exec.parallel_workers");
  uint64_t pmorsels = counter("exec.parallel_morsels");
  uint64_t pfolds = counter("exec.parallel_monitor_folds");
  if (pqueries > 0) {
    std::printf("parallel path: %llu morsel-parallel queries, "
                "%.1f workers/query (dop=%zu), %.1f morsels/query, "
                "%llu monitor folds\n",
                (unsigned long long)pqueries,
                static_cast<double>(pworkers) / static_cast<double>(pqueries),
                dop,
                static_cast<double>(pmorsels) / static_cast<double>(pqueries),
                (unsigned long long)pfolds);
    if (dop > 1 && std::thread::hardware_concurrency() <= 1) {
      std::printf("WARNING: hardware_concurrency=1, speedups not meaningful\n");
    }
  } else {
    std::printf("parallel path: unused (dop=%zu); rerun with --dop=4 to "
                "split each driving scan across the worker pool\n", dop);
  }

  // 8. Sharing effectiveness: how much of the burst's physical work the
  //    cross-query surfaces absorbed. Scan passes per query < 1.0 means
  //    concurrent (or repeated) queries rode passes someone else produced;
  //    the shared-cache hit rate is probes answered without any descent.
  if (share_scan || share_cache) {
    uint64_t attaches = counter("exec.shared_scan_attaches");
    uint64_t passes_saved = counter("exec.shared_scan_passes_saved");
    uint64_t produced = counter("exec.shared_scan_morsels_produced");
    uint64_t consumed = counter("exec.shared_scan_morsels_consumed");
    uint64_t shits = counter("exec.probe_cache_shared_hits");
    uint64_t smisses = counter("exec.probe_cache_shared_misses");
    uint64_t sconf = counter("exec.probe_cache_shared_stripe_conflicts");
    std::printf("sharing [%s]: %llu scan attaches, %llu full passes saved, "
                "%.2f scan passes/query",
                share_name, (unsigned long long)attaches,
                (unsigned long long)passes_saved,
                consumed > 0 ? static_cast<double>(produced) /
                                   static_cast<double>(consumed)
                             : 0.0);
    if (share_cache) {
      std::printf(", shared-cache hit rate %.1f%% (%llu stripe conflicts)",
                  shits + smisses > 0
                      ? 100.0 * static_cast<double>(shits) /
                            static_cast<double>(shits + smisses)
                      : 0.0,
                  (unsigned long long)sconf);
    }
    std::printf("\n");
  } else {
    std::printf("sharing: off; rerun with --share=both to pool driving-scan "
                "passes and probe results across the burst\n");
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  size_t dop = 1;
  PolicyKind policy = PolicyKind::kRank;
  IndexBackend backend = IndexBackend::kBTree;
  bool share_scan = false, share_cache = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dop=", 6) == 0) {
      dop = static_cast<size_t>(std::strtoull(argv[i] + 6, nullptr, 10));
      if (dop == 0) dop = 1;
    } else if (std::strncmp(argv[i], "--policy=", 9) == 0) {
      auto parsed = ParsePolicyKind(argv[i] + 9);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "unknown policy: %s (rank|regret|static)\n",
                     argv[i] + 9);
        return 2;
      }
      policy = *parsed;
    } else if (std::strncmp(argv[i], "--index=", 8) == 0) {
      auto parsed = ParseIndexBackend(argv[i] + 8);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "unknown index backend: %s (btree|art)\n",
                     argv[i] + 8);
        return 2;
      }
      backend = *parsed;
    } else if (std::strncmp(argv[i], "--share=", 8) == 0) {
      const char* mode = argv[i] + 8;
      if (std::strcmp(mode, "off") == 0) {
        share_scan = share_cache = false;
      } else if (std::strcmp(mode, "scan") == 0) {
        share_scan = true;
        share_cache = false;
      } else if (std::strcmp(mode, "cache") == 0) {
        share_scan = false;
        share_cache = true;
      } else if (std::strcmp(mode, "both") == 0) {
        share_scan = share_cache = true;
      } else {
        std::fprintf(stderr, "unknown share mode: %s (off|scan|cache|both)\n",
                     mode);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "unknown flag: %s (usage: %s [--dop=N]"
                   " [--policy=rank|regret|static] [--index=btree|art]"
                   " [--share=off|scan|cache|both])\n",
                   argv[i], argv[0]);
      return 2;
    }
  }
  Status status = Run(dop, policy, backend, share_scan, share_cache);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

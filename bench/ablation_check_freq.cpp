// Ablation (ours; motivated by Sec 4.1's description of c as "a tunable
// parameter used to balance the optimality and the run-time overhead"):
// sweep the check frequency c and report adaptation quality vs overhead.

#include <cstdio>

#include "bench/harness_util.h"

using namespace ajr;
using namespace ajr::bench;

int main(int argc, char** argv) {
  HarnessFlags flags = HarnessFlags::Parse(argc, argv);
  if (flags.per_template == 60) flags.per_template = 12;
  std::printf("== Ablation: check frequency c (optimality vs overhead) ==\n");
  std::printf("DMV owners=%zu, %zu queries/template, w=1000\n\n", flags.owners,
              flags.per_template);
  Workbench bench(flags);
  DmvQueryGenerator gen(&bench.catalog(), flags.seed);
  auto queries = gen.GenerateMix(flags.per_template);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  double base_ms = 0;
  for (const JoinQuery& q : *queries) {
    base_ms += bench.Run(q, Workbench::NoSwitch()).wall_ms;
  }

  const size_t freqs[] = {1, 2, 5, 10, 20, 50, 100, 500, 1000};
  std::printf("%8s %14s %16s %14s\n", "c", "time_ratio", "avg_switches",
              "avg_checks");
  JsonReport report("ablation_check_freq", flags);
  for (size_t c : freqs) {
    AdaptiveOptions options = Workbench::SwitchBoth();
    options.check_frequency = c;
    double ms = 0;
    uint64_t switches = 0, checks = 0;
    for (const JoinQuery& q : *queries) {
      QueryRun run = bench.Run(q, options);
      ms += run.wall_ms;
      switches += run.stats.order_switches();
      checks += run.stats.inner_checks + run.stats.driving_checks;
    }
    std::printf("%8zu %13.1f%% %16.2f %14.1f\n", c, 100.0 * ms / base_ms,
                static_cast<double>(switches) / queries->size(),
                static_cast<double>(checks) / queries->size());
    std::string prefix = "c" + std::to_string(c);
    report.AddMetric(prefix + "_time_ratio", ms / base_ms);
    report.AddMetric(prefix + "_avg_switches",
                     static_cast<double>(switches) / queries->size());
    report.AddMetric(prefix + "_avg_checks",
                     static_cast<double>(checks) / queries->size());
  }
  std::printf("\nExpected: very small c adds check overhead; very large c "
              "reacts too slowly;\nthe paper's default c=10 sits in the flat "
              "middle.\n");
  return 0;
}

// Diagnostic harness: plans and executes one template query and prints the
// optimizer's estimates against the actual values, plus the full adaptation
// event log. Usage:
//   inspect_query --template=3 --variant=0 [--owners=N] [--six-table]

#include <cstdio>
#include <cstring>

#include "bench/harness_util.h"
#include "exec/reference_executor.h"

using namespace ajr;
using namespace ajr::bench;

int main(int argc, char** argv) {
  int template_id = 1;
  size_t variant = 0;
  bool six_table = false;
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--template=", 11) == 0) {
      template_id = std::atoi(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--variant=", 10) == 0) {
      variant = static_cast<size_t>(std::atoll(argv[i] + 10));
    } else if (std::strcmp(argv[i], "--six-table") == 0) {
      six_table = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  HarnessFlags flags = HarnessFlags::Parse(static_cast<int>(rest.size()), rest.data());
  Workbench bench(flags);
  DmvQueryGenerator gen(&bench.catalog(), flags.seed);
  auto q = six_table ? gen.GenerateSixTable(template_id, variant)
                     : gen.Generate(template_id, variant);
  if (!q.ok()) {
    std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n%s\n\n", q->name.c_str(), q->ToString().c_str());

  auto plan = bench.planner().Plan(*q);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  const PipelinePlan& p = **plan;

  // Per-table estimate vs actual leg cardinality.
  std::printf("%-6s %10s %12s %12s %12s  %s\n", "leg", "C(T)", "est CLEG",
              "actual CLEG", "est S_LPI", "driving access");
  for (size_t t = 0; t < p.query.tables.size(); ++t) {
    const TableEntry& entry = *p.entries[t];
    auto bound = BindPredicate(p.query.local_predicates[t], entry.schema());
    size_t actual = 0;
    for (Rid r = 0; r < entry.table().num_rows(); ++r) {
      if ((*bound)->Eval(entry.table().Get(r))) ++actual;
    }
    const DrivingAccess& acc = p.access[t].driving;
    std::printf("%-6s %10zu %12.1f %12zu %12.4f  %s\n",
                p.query.tables[t].alias.c_str(), entry.table().num_rows(),
                p.est_local_sel[t] * entry.table().num_rows(), actual, acc.est_slpi,
                acc.index != nullptr ? acc.index->name.c_str() : "table scan");
  }
  std::printf("\ninitial order:");
  for (size_t t : p.initial_order) std::printf(" %s", p.query.tables[t].alias.c_str());
  std::printf("  (est cost %.0f wu)\n\n", p.est_cost);

  struct Mode {
    const char* label;
    AdaptiveOptions options;
  };
  const Mode modes[] = {{"no-switch", Workbench::NoSwitch()},
                        {"inner-only", Workbench::InnerOnly()},
                        {"driving-only", Workbench::DrivingOnly()},
                        {"switch-both", Workbench::SwitchBoth()}};
  for (const Mode& mode : modes) {
    QueryRun run = bench.Run(*q, mode.options);
    std::printf("%-12s: %8.3f ms, %10lu wu, %6lu rows, %lu inner + %lu driving moves\n",
                mode.label, run.wall_ms, static_cast<unsigned long>(run.work_units),
                static_cast<unsigned long>(run.rows_out),
                static_cast<unsigned long>(run.stats.inner_reorders),
                static_cast<unsigned long>(run.stats.driving_switches));
    for (const auto& event : run.stats.events) {
      std::printf("  %s\n", event.c_str());
    }
  }
  return 0;
}

// Figure 7 (Sec 5.1): scatter of elapsed time, NO SWITCH vs SWITCH DRIVING
// & INNER LEGS, over the ~300-query 5-template mix.
//
// The paper reports: almost all queries at or below the diagonal, speedups
// up to 7-8x, >20% total elapsed improvement, ~30% over queries whose join
// order changed.

#include <cstdio>

#include "bench/harness_util.h"

using namespace ajr;
using namespace ajr::bench;

int main(int argc, char** argv) {
  HarnessFlags flags = HarnessFlags::Parse(argc, argv);
  std::printf("== Figure 7: elapsed time scatter, no-switch vs switch both ==\n");
  std::printf("DMV owners=%zu, %zu queries/template, c=10, w=1000\n\n", flags.owners,
              flags.per_template);
  Workbench bench(flags);

  DmvQueryGenerator gen(&bench.catalog(), flags.seed);
  auto queries = gen.GenerateMix(flags.per_template);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  std::printf("%-10s %12s %12s %8s %9s %9s %6s\n", "query", "noswitch_ms",
              "switch_ms", "speedup", "wu_base", "wu_adapt", "moves");
  ScatterSummary summary;
  JsonReport report("fig7_scatter", flags);
  for (const JoinQuery& q : *queries) {
    auto [base, adaptive] = bench.RunPair(q, Workbench::NoSwitch(), Workbench::SwitchBoth());
    summary.Add(base, adaptive);
    report.AddRun("noswitch", base);
    report.AddRun("switch_both", adaptive);
    std::printf("%-10s %12.3f %12.3f %8.2f %9lu %9lu %6lu\n", q.name.c_str(),
                base.wall_ms, adaptive.wall_ms,
                adaptive.wall_ms > 0 ? base.wall_ms / adaptive.wall_ms : 0.0,
                static_cast<unsigned long>(base.work_units / 1000),
                static_cast<unsigned long>(adaptive.work_units / 1000),
                static_cast<unsigned long>(adaptive.stats.order_switches()));
  }
  summary.Print("NO SWITCH", "SWITCH DRIVING & INNER");
  std::printf("\nPaper's Fig 7 claims: nearly all points below the diagonal; "
              "speedup up to 7-8x;\n>20%% total improvement; ~30%% over changed "
              "queries.\n");
  return 0;
}

#include "bench/harness_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "adaptive/policy.h"
#include "storage/index.h"

namespace ajr {
namespace bench {

HarnessFlags HarnessFlags::Parse(int argc, char** argv) {
  HarnessFlags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
    };
    if (const char* v = value("--owners=")) {
      flags.owners = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--per-template=")) {
      flags.per_template = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--reps=")) {
      flags.reps = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--seed=")) {
      flags.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--dop=")) {
      flags.dop = std::max<size_t>(1, std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(arg, "--json") == 0) {
      flags.json = true;
    } else if (const char* v = value("--json=")) {
      flags.json = true;
      flags.json_path = v;
    } else if (const char* v = value("--policy=")) {
      auto parsed = ParsePolicyKind(v);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "unknown policy: %s (rank|regret|static)\n", v);
        std::exit(2);
      }
      flags.policy = *parsed;
    } else if (const char* v = value("--index=")) {
      auto parsed = ParseIndexBackend(v);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "unknown index backend: %s (btree|art)\n", v);
        std::exit(2);
      }
      flags.index_backend = *parsed;
    } else if (std::strcmp(arg, "--stats=minimal") == 0) {
      flags.stats_tier = StatsTier::kMinimal;
    } else if (std::strcmp(arg, "--stats=base") == 0) {
      flags.stats_tier = StatsTier::kBase;
    } else if (std::strcmp(arg, "--stats=rich") == 0) {
      flags.stats_tier = StatsTier::kRich;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::exit(2);
    }
  }
  return flags;
}

Workbench::Workbench(const HarnessFlags& flags) : flags_(flags) {
  DmvConfig config;
  config.num_owners = flags.owners;
  config.seed = flags.seed;
  config.rich_stats = flags.stats_tier == StatsTier::kRich;
  auto cards = GenerateDmv(&catalog_, config);
  if (!cards.ok()) {
    std::fprintf(stderr, "DMV generation failed: %s\n",
                 cards.status().ToString().c_str());
    std::exit(1);
  }
  cards_ = *cards;
  PlannerOptions popts;
  popts.stats_tier = flags.stats_tier;
  planner_ = std::make_unique<Planner>(&catalog_, popts);
}

namespace {

// One timed execution; aborts the harness on failure.
ExecStats ExecuteOnce(const PipelinePlan& plan, const AdaptiveOptions& options,
                      const std::string& name) {
  PipelineExecutor exec(&plan, options);
  auto stats = exec.Execute(nullptr);
  if (!stats.ok()) {
    std::fprintf(stderr, "executing %s failed: %s\n", name.c_str(),
                 stats.status().ToString().c_str());
    std::exit(1);
  }
  return *stats;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

QueryRun Workbench::Run(const JoinQuery& query, const AdaptiveOptions& options) const {
  QueryRun run;
  run.name = query.name;
  AdaptiveOptions effective = options;
  effective.policy = flags_.policy;
  effective.index_backend = flags_.index_backend;
  auto plan = planner_->Plan(query);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning %s failed: %s\n", query.name.c_str(),
                 plan.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<double> times;
  for (size_t rep = 0; rep < std::max<size_t>(flags_.reps, 1); ++rep) {
    run.stats = ExecuteOnce(**plan, effective, query.name);
    times.push_back(run.stats.wall_seconds * 1000.0);
  }
  run.wall_ms = Median(times);
  run.work_units = run.stats.work_units;
  run.rows_out = run.stats.rows_out;
  return run;
}

std::pair<QueryRun, QueryRun> Workbench::RunPair(const JoinQuery& query,
                                                 const AdaptiveOptions& options_a,
                                                 const AdaptiveOptions& options_b) const {
  QueryRun a, b;
  a.name = query.name;
  b.name = query.name;
  AdaptiveOptions effective_a = options_a;
  effective_a.policy = flags_.policy;
  effective_a.index_backend = flags_.index_backend;
  AdaptiveOptions effective_b = options_b;
  effective_b.policy = flags_.policy;
  effective_b.index_backend = flags_.index_backend;
  auto plan = planner_->Plan(query);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning %s failed: %s\n", query.name.c_str(),
                 plan.status().ToString().c_str());
    std::exit(1);
  }
  // Untimed warm-up touches the relevant data once for both sides.
  ExecuteOnce(**plan, effective_a, query.name);
  std::vector<double> times_a, times_b;
  for (size_t rep = 0; rep < std::max<size_t>(flags_.reps, 1); ++rep) {
    a.stats = ExecuteOnce(**plan, effective_a, query.name);
    times_a.push_back(a.stats.wall_seconds * 1000.0);
    b.stats = ExecuteOnce(**plan, effective_b, query.name);
    times_b.push_back(b.stats.wall_seconds * 1000.0);
  }
  a.wall_ms = Median(times_a);
  b.wall_ms = Median(times_b);
  a.work_units = a.stats.work_units;
  b.work_units = b.stats.work_units;
  a.rows_out = a.stats.rows_out;
  b.rows_out = b.stats.rows_out;
  return {a, b};
}

AdaptiveOptions Workbench::NoSwitch() {
  AdaptiveOptions o;
  o.reorder_inners = false;
  o.reorder_driving = false;
  return o;
}

AdaptiveOptions Workbench::SwitchBoth() {
  AdaptiveOptions o;  // defaults are the paper's: c = 10, w = 1000
  return o;
}

AdaptiveOptions Workbench::InnerOnly() {
  AdaptiveOptions o;
  o.reorder_driving = false;
  return o;
}

AdaptiveOptions Workbench::DrivingOnly() {
  AdaptiveOptions o;
  o.reorder_inners = false;
  return o;
}

AdaptiveOptions Workbench::PaperStrict() {
  AdaptiveOptions o;
  o.check_backoff = false;
  o.inner_benefit_epsilon = 0.0;
  o.switch_benefit_threshold = 1.0;
  o.min_edge_pairs = 1.0;
  o.min_leg_samples = 4;
  return o;
}

namespace {

// Minimal JSON string escaping (query/config names are plain ASCII, but a
// malformed file on odd input would be worse than the extra loop).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

JsonReport::JsonReport(std::string name, const HarnessFlags& flags)
    : name_(std::move(name)), enabled_(flags.json), flags_(flags) {
  if (!enabled_) return;
  path_ = flags.json_path.empty() ? "BENCH_" + name_ + ".json" : flags.json_path;
}

JsonReport::~JsonReport() { Finish(); }

void JsonReport::AddRun(const std::string& config, const QueryRun& run) {
  if (!enabled_) return;
  std::string obj = "{\"query\":\"" + JsonEscape(run.name) + "\",\"config\":\"" +
                    JsonEscape(config) + "\",\"wall_ms\":" + JsonNumber(run.wall_ms) +
                    ",\"work_units\":" + std::to_string(run.work_units) +
                    ",\"rows_out\":" + std::to_string(run.rows_out) +
                    ",\"order_switches\":" + std::to_string(run.stats.order_switches()) +
                    ",\"inner_reorders\":" + std::to_string(run.stats.inner_reorders) +
                    ",\"driving_switches\":" + std::to_string(run.stats.driving_switches) +
                    "}";
  runs_.push_back(std::move(obj));
}

void JsonReport::AddMetric(const std::string& name, double value) {
  if (!enabled_) return;
  metrics_.push_back("{\"name\":\"" + JsonEscape(name) +
                     "\",\"value\":" + JsonNumber(value) + "}");
}

void JsonReport::Finish() {
  if (!enabled_ || written_) return;
  written_ = true;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path_.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n", JsonEscape(name_).c_str());
#ifndef AJR_GIT_SHA
#define AJR_GIT_SHA "unknown"
#endif
#ifndef AJR_BUILD_TYPE
#define AJR_BUILD_TYPE "unspecified"
#endif
  std::fprintf(f, "  \"git_sha\": \"%s\",\n  \"build_type\": \"%s\",\n",
               JsonEscape(AJR_GIT_SHA).c_str(), JsonEscape(AJR_BUILD_TYPE).c_str());
  std::fprintf(f, "  \"owners\": %zu,\n  \"per_template\": %zu,\n  \"reps\": %zu,\n",
               flags_.owners, flags_.per_template, flags_.reps);
  std::fprintf(f,
               "  \"seed\": %llu,\n  \"dop\": %zu,\n  \"policy\": \"%s\",\n"
               "  \"backend\": \"%s\",\n",
               static_cast<unsigned long long>(flags_.seed), flags_.dop,
               PolicyKindName(flags_.policy),
               IndexBackendName(flags_.index_backend));
  std::fprintf(f, "  \"runs\": [");
  for (size_t i = 0; i < runs_.size(); ++i) {
    std::fprintf(f, "%s\n    %s", i == 0 ? "" : ",", runs_[i].c_str());
  }
  std::fprintf(f, "%s],\n", runs_.empty() ? "" : "\n  ");
  std::fprintf(f, "  \"metrics\": [");
  for (size_t i = 0; i < metrics_.size(); ++i) {
    std::fprintf(f, "%s\n    %s", i == 0 ? "" : ",", metrics_[i].c_str());
  }
  std::fprintf(f, "%s]\n}\n", metrics_.empty() ? "" : "\n  ");
  std::fclose(f);
  std::printf("\nJSON results written to %s\n", path_.c_str());
}

void ScatterSummary::Add(const QueryRun& base, const QueryRun& adaptive) {
  ++queries;
  total_base_ms += base.wall_ms;
  total_adaptive_ms += adaptive.wall_ms;
  total_base_wu += static_cast<double>(base.work_units);
  total_adaptive_wu += static_cast<double>(adaptive.work_units);
  bool did_change = adaptive.stats.order_switches() > 0;
  if (did_change) {
    ++changed;
    total_base_changed_ms += base.wall_ms;
    total_adaptive_changed_ms += adaptive.wall_ms;
  }
  if (adaptive.wall_ms < base.wall_ms) ++improved;
  if (adaptive.wall_ms > base.wall_ms * 1.05) ++degraded;
  if (adaptive.wall_ms > 0) {
    max_speedup = std::max(max_speedup, base.wall_ms / adaptive.wall_ms);
  }
  if (adaptive.work_units > 0) {
    max_wu_speedup =
        std::max(max_wu_speedup, static_cast<double>(base.work_units) /
                                     static_cast<double>(adaptive.work_units));
  }
}

void ScatterSummary::Print(const char* base_label, const char* adaptive_label) const {
  std::printf("\nSummary (%zu queries; baseline=%s, adaptive=%s)\n", queries,
              base_label, adaptive_label);
  std::printf("  queries with order changes : %zu\n", changed);
  std::printf("  improved                   : %zu\n", improved);
  std::printf("  degraded >5%%               : %zu\n", degraded);
  std::printf("  max speedup                : %.2fx wall, %.2fx work units\n",
              max_speedup, max_wu_speedup);
  if (total_base_ms > 0) {
    std::printf("  total elapsed improvement  : %.1f%%  (%.1f ms -> %.1f ms)\n",
                100.0 * (1.0 - total_adaptive_ms / total_base_ms), total_base_ms,
                total_adaptive_ms);
  }
  if (total_base_changed_ms > 0) {
    std::printf(
        "  improvement (changed only) : %.1f%%  (%.1f ms -> %.1f ms)\n",
        100.0 * (1.0 - total_adaptive_changed_ms / total_base_changed_ms),
        total_base_changed_ms, total_adaptive_changed_ms);
  }
  if (total_base_wu > 0) {
    std::printf("  work-unit improvement      : %.1f%%  (deterministic)\n",
                100.0 * (1.0 - total_adaptive_wu / total_base_wu));
  }
}

}  // namespace bench
}  // namespace ajr
